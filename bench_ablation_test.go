// Ablation benchmarks for the systems beyond the paper's headline
// formats: classic-format comparators (§III-A), reordering synergy,
// symmetric storage, multi-vector SpMM, mixed precision, and value
// stream compression.
package spmv_test

import (
	"math/rand"
	"testing"

	"spmv"
	"spmv/internal/matgen"
)

// BenchmarkAblationClassicFormats compares the related-work formats on
// the matrix class each was designed for: CDS and ELL on a banded
// stencil, JDS on power-law rows.
func BenchmarkAblationClassicFormats(b *testing.B) {
	benchSetup()
	stencil := benchMats.stencil
	b.Run("stencil/csr", func(b *testing.B) { runFormat(b, mustFmt(spmv.NewCSR(stencil)), 1) })
	b.Run("stencil/cds", func(b *testing.B) { runFormat(b, mustFmt(spmv.NewCDS(stencil)), 1) })
	b.Run("stencil/ell", func(b *testing.B) { runFormat(b, mustFmt(spmv.NewELL(stencil)), 1) })
	b.Run("stencil/jds", func(b *testing.B) { runFormat(b, mustFmt(spmv.NewJDS(stencil)), 1) })
	b.Run("powerlaw/csr", func(b *testing.B) { runFormat(b, mustFmt(spmv.NewCSR(benchMats.powerlaw)), 1) })
	b.Run("powerlaw/jds", func(b *testing.B) { runFormat(b, mustFmt(spmv.NewJDS(benchMats.powerlaw)), 1) })
}

// BenchmarkAblationRCM measures CSR-DU before and after reverse
// Cuthill-McKee reordering of a scattered symmetric matrix: smaller
// deltas, smaller ctl stream, faster kernel.
func BenchmarkAblationRCM(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	mess := matgen.Symmetrize(matgen.FEMLike(rng, 60000, 5, matgen.Values{}))
	perm, err := spmv.RCM(mess)
	if err != nil {
		b.Fatal(err)
	}
	tidy, err := spmv.PermuteMatrix(mess, perm)
	if err != nil {
		b.Fatal(err)
	}
	before := mustFmt(spmv.NewCSRDU(mess))
	after := mustFmt(spmv.NewCSRDU(tidy))
	b.Logf("csr-du size: %.1f%% -> %.1f%% of CSR after RCM",
		100*spmv.CompressionRatio(before), 100*spmv.CompressionRatio(after))
	b.Run("original", func(b *testing.B) { runFormat(b, before, 1) })
	b.Run("rcm", func(b *testing.B) { runFormat(b, after, 1) })
}

// BenchmarkAblationSym measures symmetric one-triangle storage against
// full CSR: half the stream, two FLOPs per stored element.
func BenchmarkAblationSym(b *testing.B) {
	benchSetup()
	s, err := spmv.NewSymCSR(benchMats.stencil, 1e-12)
	if err != nil {
		b.Fatal(err)
	}
	full := mustFmt(spmv.NewCSR(benchMats.stencil))
	b.Run("csr", func(b *testing.B) { runFormat(b, full, 1) })
	b.Run("sym-csr", func(b *testing.B) { runFormat(b, s, 1) })
}

// BenchmarkAblationSpMM measures the multi-vector kernel: matrix bytes
// amortize over k vectors, so bytes/FLOP — the paper's bottleneck —
// drops by k.
func BenchmarkAblationSpMM(b *testing.B) {
	benchSetup()
	m := mustFmt(spmv.NewCSR(benchMats.large)).(*spmv.CSR)
	for _, k := range []int{1, 2, 4, 8} {
		k := k
		x := make([]float64, m.Cols()*k)
		y := make([]float64, m.Rows()*k)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		b.Run(bname("k", k), func(b *testing.B) {
			b.SetBytes(m.SizeBytes())
			for i := 0; i < b.N; i++ {
				if k == 1 {
					m.SpMV(y, x)
				} else {
					m.SpMM(y, x, k)
				}
			}
		})
	}
}

// BenchmarkAblationMixedPrecision measures csr32 (half value bytes)
// against csr at 8 threads on a memory-bound matrix.
func BenchmarkAblationMixedPrecision(b *testing.B) {
	benchSetup()
	full := mustFmt(spmv.NewCSR(benchMats.large))
	low := mustFmt(spmv.NewCSR32(benchMats.large))
	b.Run("csr-8t", func(b *testing.B) { runFormat(b, full, 8) })
	b.Run("csr32-8t", func(b *testing.B) { runFormat(b, low, 8) })
}

// BenchmarkFPC measures the value-stream compressor's throughput and
// reports ratios on redundant vs random values.
func BenchmarkFPC(b *testing.B) {
	benchSetup()
	vals := make([]float64, benchMats.stencil.Len())
	for k := range vals {
		_, _, vals[k] = benchMats.stencil.At(k)
	}
	b.Run("compress-stencil", func(b *testing.B) {
		b.SetBytes(int64(8 * len(vals)))
		for i := 0; i < b.N; i++ {
			fpcSink = spmv.CompressValues(vals)
		}
	})
	b.Run("decompress-stencil", func(b *testing.B) {
		comp := spmv.CompressValues(vals)
		b.SetBytes(int64(8 * len(vals)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := spmv.DecompressValues(comp)
			if err != nil {
				b.Fatal(err)
			}
			fpcLen = len(out)
		}
	})
}

var (
	fpcSink []byte
	fpcLen  int
)

// BenchmarkEncoders measures construction cost: the paper claims O(nnz)
// encoding with no asymptotic overhead over CSR assembly.
func BenchmarkEncoders(b *testing.B) {
	benchSetup()
	c := benchMats.large
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustFmt(spmv.NewCSR(c))
		}
	})
	b.Run("csr-du", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustFmt(spmv.NewCSRDU(c))
		}
	})
	b.Run("csr-vi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustFmt(spmv.NewCSRVI(c))
		}
	})
	b.Run("dcsr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustFmt(spmv.NewDCSR(c))
		}
	})
}
