// Wall-clock benchmarks, one family per table/figure of the paper's
// evaluation (§VI). These measure the real Go kernels with goroutine
// row partitioning on the host machine; the deterministic reproduction
// of the paper's exact tables on the modeled Clovertown is
// cmd/spmvsim (see EXPERIMENTS.md). Ratios between sub-benchmarks
// mirror the corresponding table cells: e.g. Table III @ 8 threads is
// BenchmarkTable3/csr-8t versus BenchmarkTable3/csr-du-8t.
package spmv_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"spmv"
	"spmv/internal/core"
	"spmv/internal/matgen"
)

// Benchmark matrices, built once. Sizes are chosen so the working set
// (~25MB) exceeds typical L2/L3 slices, keeping the kernels
// memory-bound as in the paper's M_L class.
var benchOnce sync.Once
var benchMats struct {
	large    *core.COO // banded, M_L-like, index-compressible
	largeQ   *core.COO // same shape, 128 unique values (ttu >> 5)
	random   *core.COO // scattered, worst case for delta encoding
	stencil  *core.COO // 5-point Poisson, both schemes shine
	blocky   *core.COO // dense blocks: BCSR/RLE territory
	powerlaw *core.COO // skewed row lengths
}

func benchSetup() {
	benchOnce.Do(func() {
		benchMats.large = matgen.Banded(rand.New(rand.NewSource(1)), 200000, 60, 8, matgen.Values{})
		benchMats.largeQ = matgen.Banded(rand.New(rand.NewSource(2)), 200000, 60, 8, matgen.Values{Unique: 128})
		benchMats.random = matgen.RandomUniform(rand.New(rand.NewSource(3)), 150000, 150000, 7, matgen.Values{})
		benchMats.stencil = matgen.Stencil2D(450)
		benchMats.blocky = matgen.BlockDiag(rand.New(rand.NewSource(4)), 25000, 8, matgen.Values{Unique: 8})
		benchMats.powerlaw = matgen.PowerLaw(rand.New(rand.NewSource(5)), 250000, 8, 0.7, matgen.Values{})
	})
}

// runFormat benchmarks one (format, threads) cell.
func runFormat(b *testing.B, f spmv.Format, threads int) {
	b.Helper()
	x := make([]float64, f.Cols())
	y := make([]float64, f.Rows())
	for i := range x {
		x[i] = float64(i%9) - 4
	}
	b.SetBytes(f.SizeBytes())
	if threads == 1 {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.SpMV(y, x)
		}
		return
	}
	e, err := spmv.NewExecutor(f, threads)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	e.Run(y, x) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(y, x)
	}
}

func mustFmt[F spmv.Format](f F, err error) spmv.Format {
	if err != nil {
		panic(err)
	}
	return f
}

// BenchmarkTable2 regenerates Table II's rows: CSR at 1/2/4/8 threads
// on a memory-bound matrix. Speedups = ns(1t)/ns(Nt).
func BenchmarkTable2(b *testing.B) {
	benchSetup()
	f := mustFmt(spmv.NewCSR(benchMats.large))
	for _, th := range []int{1, 2, 4, 8} {
		b.Run(bname("csr", th), func(b *testing.B) { runFormat(b, f, th) })
	}
}

// BenchmarkTable3 regenerates Table III's cells: CSR vs CSR-DU at each
// thread count (ratio at equal threads = the table's speedup).
func BenchmarkTable3(b *testing.B) {
	benchSetup()
	base := mustFmt(spmv.NewCSR(benchMats.large))
	du := mustFmt(spmv.NewCSRDU(benchMats.large))
	for _, th := range []int{1, 2, 4, 8} {
		b.Run(bname("csr", th), func(b *testing.B) { runFormat(b, base, th) })
		b.Run(bname("csr-du", th), func(b *testing.B) { runFormat(b, du, th) })
	}
}

// BenchmarkTable4 regenerates Table IV's cells: CSR vs CSR-VI at each
// thread count on a ttu>5 matrix.
func BenchmarkTable4(b *testing.B) {
	benchSetup()
	base := mustFmt(spmv.NewCSR(benchMats.largeQ))
	vi := mustFmt(spmv.NewCSRVI(benchMats.largeQ))
	for _, th := range []int{1, 2, 4, 8} {
		b.Run(bname("csr", th), func(b *testing.B) { runFormat(b, base, th) })
		b.Run(bname("csr-vi", th), func(b *testing.B) { runFormat(b, vi, th) })
	}
}

// BenchmarkFig7 regenerates Fig 7's per-matrix series: CSR-DU across
// matrix types at 8 threads (bars) with CSR alongside (squares).
func BenchmarkFig7(b *testing.B) {
	benchSetup()
	mats := map[string]*core.COO{
		"banded":   benchMats.large,
		"random":   benchMats.random,
		"stencil":  benchMats.stencil,
		"powerlaw": benchMats.powerlaw,
	}
	for name, c := range mats {
		base := mustFmt(spmv.NewCSR(c))
		du := mustFmt(spmv.NewCSRDU(c))
		b.Run(name+"/csr-8t", func(b *testing.B) { runFormat(b, base, 8) })
		b.Run(name+"/csr-du-8t", func(b *testing.B) { runFormat(b, du, 8) })
	}
}

// BenchmarkFig8 regenerates Fig 8's per-matrix series: CSR-VI across
// ttu>5 matrices at 8 threads.
func BenchmarkFig8(b *testing.B) {
	benchSetup()
	mats := map[string]*core.COO{
		"banded-q": benchMats.largeQ,
		"stencil":  benchMats.stencil,
		"blocky":   benchMats.blocky,
	}
	for name, c := range mats {
		base := mustFmt(spmv.NewCSR(c))
		vi := mustFmt(spmv.NewCSRVI(c))
		b.Run(name+"/csr-8t", func(b *testing.B) { runFormat(b, base, 8) })
		b.Run(name+"/csr-vi-8t", func(b *testing.B) { runFormat(b, vi, 8) })
	}
}

// BenchmarkAblationDCSR compares the paper's CSR-DU against the DCSR
// comparator (§III-B): similar compression, coarser decode.
func BenchmarkAblationDCSR(b *testing.B) {
	benchSetup()
	du := mustFmt(spmv.NewCSRDU(benchMats.large))
	dc := mustFmt(spmv.NewDCSR(benchMats.large))
	b.Run("csr-du-1t", func(b *testing.B) { runFormat(b, du, 1) })
	b.Run("dcsr-1t", func(b *testing.B) { runFormat(b, dc, 1) })
	b.Run("csr-du-8t", func(b *testing.B) { runFormat(b, du, 8) })
	b.Run("dcsr-8t", func(b *testing.B) { runFormat(b, dc, 8) })
}

// BenchmarkAblationRLE measures the CSR-DU RLE extension on its target
// (dense runs) and off-target (scattered) matrices.
func BenchmarkAblationRLE(b *testing.B) {
	benchSetup()
	for name, c := range map[string]*core.COO{"blocky": benchMats.blocky, "banded": benchMats.large} {
		plain := mustFmt(spmv.NewCSRDU(c))
		rle := mustFmt(spmv.NewCSRDUOpts(c, spmv.DUOptions{RLE: true}))
		b.Run(name+"/plain", func(b *testing.B) { runFormat(b, plain, 1) })
		b.Run(name+"/rle", func(b *testing.B) { runFormat(b, rle, 1) })
	}
}

// BenchmarkAblationDUVI compares the combined format against its
// parents on a matrix where both compressions apply.
func BenchmarkAblationDUVI(b *testing.B) {
	benchSetup()
	c := benchMats.largeQ
	for name, f := range map[string]spmv.Format{
		"csr":       mustFmt(spmv.NewCSR(c)),
		"csr-du":    mustFmt(spmv.NewCSRDU(c)),
		"csr-vi":    mustFmt(spmv.NewCSRVI(c)),
		"csr-du-vi": mustFmt(spmv.NewCSRDUVI(c)),
	} {
		b.Run(name+"-8t", func(b *testing.B) { runFormat(b, f, 8) })
	}
}

// BenchmarkAblationCSR16 compares the simple 16-bit index reduction
// (Williams et al.) against CSR-DU on a narrow matrix.
func BenchmarkAblationCSR16(b *testing.B) {
	c := matgen.Banded(rand.New(rand.NewSource(6)), 60000, 50, 10, matgen.Values{})
	base := mustFmt(spmv.NewCSR(c))
	c16 := mustFmt(spmv.NewCSR16(c))
	du := mustFmt(spmv.NewCSRDU(c))
	b.Run("csr-1t", func(b *testing.B) { runFormat(b, base, 1) })
	b.Run("csr16-1t", func(b *testing.B) { runFormat(b, c16, 1) })
	b.Run("csr-du-1t", func(b *testing.B) { runFormat(b, du, 1) })
}

// BenchmarkAblationBCSR measures register blocking on and off its
// target structure.
func BenchmarkAblationBCSR(b *testing.B) {
	benchSetup()
	blocky := mustFmt(spmv.NewBCSR(benchMats.blocky, 4, 4))
	csrB := mustFmt(spmv.NewCSR(benchMats.blocky))
	b.Run("blocky/bcsr4x4", func(b *testing.B) { runFormat(b, blocky, 1) })
	b.Run("blocky/csr", func(b *testing.B) { runFormat(b, csrB, 1) })
}

// BenchmarkAblationPartitioning compares the three partitioning schemes
// of §II-C on the same matrix at 8 threads.
func BenchmarkAblationPartitioning(b *testing.B) {
	benchSetup()
	c := benchMats.large
	x := make([]float64, c.Cols())
	y := make([]float64, c.Rows())
	for i := range x {
		x[i] = 1
	}
	b.Run("row-8t", func(b *testing.B) {
		f := mustFmt(spmv.NewCSR(c))
		runFormat(b, f, 8)
	})
	b.Run("col-8t", func(b *testing.B) {
		f, err := spmv.NewCSC(c)
		if err != nil {
			b.Fatal(err)
		}
		e, err := spmv.NewColExecutor(f, 8)
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Run(y, x)
		}
	})
	b.Run("block-4x2", func(b *testing.B) {
		e, err := spmv.NewBlockExecutor(c, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Run(y, x)
		}
	})
}

// BenchmarkSolverCG measures end-to-end solver throughput per format:
// the paper's motivating workload.
func BenchmarkSolverCG(b *testing.B) {
	c := matgen.Stencil2D(300)
	for name, f := range map[string]spmv.Format{
		"csr":    mustFmt(spmv.NewCSR(c)),
		"csr-vi": mustFmt(spmv.NewCSRVI(c)),
	} {
		b.Run(name, func(b *testing.B) {
			op, err := spmv.NewOperator(f)
			if err != nil {
				b.Fatal(err)
			}
			bb := make([]float64, op.N)
			for i := range bb {
				bb[i] = 1
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x := make([]float64, op.N)
				if _, err := spmv.CG(op, bb, x, 1e-6, 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchRHS measures the batched multi-vector kernels: one
// pass over the matrix stream feeding k result vectors. Each cell
// reports ns/vector and the modeled bytes/vector — the figure that
// must fall with k, since the matrix stream is read once regardless of
// panel width. The amortization argument is per-thread, so the cells
// run the serial fused kernels; RunBatch parallelizes the same loops.
func BenchmarkBatchRHS(b *testing.B) {
	benchSetup()
	c := benchMats.largeQ // ttu >> 5: both index and value compression apply
	for _, entry := range []struct {
		name string
		f    spmv.Format
	}{
		{"csr", mustFmt(spmv.NewCSR(c))},
		{"csr-du", mustFmt(spmv.NewCSRDU(c))},
		{"csr-vi", mustFmt(spmv.NewCSRVI(c))},
		{"csr-du-vi", mustFmt(spmv.NewCSRDUVI(c))},
	} {
		f := entry.f
		for _, k := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/k=%d", entry.name, k), func(b *testing.B) {
				x := make([]float64, f.Cols()*k)
				y := make([]float64, f.Rows()*k)
				for i := range x {
					x[i] = float64(i%9) - 4
				}
				b.SetBytes(spmv.BytesPerSpMM(f, k))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					spmv.SpMVBatch(f, y, x, k)
				}
				b.ReportMetric(spmv.BytesPerVector(f, k), "bytes/vector")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/vector")
			})
		}
	}
}

func bname(format string, threads int) string {
	return format + "-" + string(rune('0'+threads)) + "t"
}
