package spmv_test

import (
	"bytes"
	"math"
	"testing"

	"spmv"
)

// assembleFig1 builds the paper's Fig 1 example matrix.
func assembleFig1() *spmv.COO {
	vals := [][]float64{
		{5.4, 1.1, 0, 0, 0, 0},
		{0, 6.3, 0, 7.7, 0, 8.8},
		{0, 0, 1.1, 0, 0, 0},
		{0, 0, 2.9, 0, 3.7, 2.9},
		{9.0, 0, 0, 1.1, 4.5, 0},
		{1.1, 0, 2.9, 3.7, 0, 1.1},
	}
	c := spmv.NewCOO(6, 6)
	for i, row := range vals {
		for j, v := range row {
			if v != 0 {
				c.Add(i, j, v)
			}
		}
	}
	return c
}

func TestAllConstructorsAgree(t *testing.T) {
	c := assembleFig1()
	x := []float64{1, -2, 3, 0.5, -1, 2}
	want := make([]float64, 6)
	ref, err := spmv.NewCSR(c)
	if err != nil {
		t.Fatal(err)
	}
	ref.SpMV(want, x)

	formats := []spmv.Format{}
	add := func(f spmv.Format, err error) {
		if err != nil {
			t.Fatal(err)
		}
		formats = append(formats, f)
	}
	add(spmv.NewCSR16(c))
	add(spmv.NewCSRDU(c))
	add(spmv.NewCSRDUOpts(c, spmv.DUOptions{RLE: true}))
	add(spmv.NewCSRVI(c))
	add(spmv.NewCSRDUVI(c))
	add(spmv.NewDCSR(c))
	add(spmv.NewBCSR(c, 2, 2))
	add(spmv.NewCSC(c))
	for _, f := range formats {
		got := make([]float64, 6)
		f.SpMV(got, x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Errorf("%s: y[%d] = %v, want %v", f.Name(), i, got[i], want[i])
			}
		}
		if f.NNZ() != 16 {
			t.Errorf("%s: NNZ = %d", f.Name(), f.NNZ())
		}
	}
}

func TestExecutorQuickstart(t *testing.T) {
	c := assembleFig1()
	m, err := spmv.NewCSRDU(c)
	if err != nil {
		t.Fatal(err)
	}
	e, err := spmv.NewExecutor(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	x := []float64{1, 1, 1, 1, 1, 1}
	y := make([]float64, 6)
	e.Run(y, x)
	want := []float64{6.5, 22.8, 1.1, 9.5, 14.6, 8.8}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestSolverQuickstart(t *testing.T) {
	// 1D Laplacian, solve with CG through the public API.
	n := 64
	c := spmv.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	m, _ := spmv.NewCSRVI(c)
	op, err := spmv.NewOperator(m)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	res, err := spmv.CG(op, b, x, 1e-10, 10*n)
	if err != nil || !res.Converged {
		t.Fatalf("CG: %v %+v", err, res)
	}
	// Check A*x = b.
	ax := make([]float64, n)
	m.SpMV(ax, x)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-7 {
			t.Fatalf("residual at %d: %v", i, ax[i]-b[i])
		}
	}
}

func TestMatrixMarketRoundTripPublic(t *testing.T) {
	c := assembleFig1()
	c.Finalize()
	var buf bytes.Buffer
	if err := spmv.WriteMatrixMarket(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := spmv.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Errorf("nnz %d vs %d", back.Len(), c.Len())
	}
}

func TestCompressionReporting(t *testing.T) {
	c := assembleFig1()
	if ws := spmv.WorkingSet(c); ws <= 0 {
		t.Errorf("WorkingSet = %d", ws)
	}
	vi, _ := spmv.NewCSRVI(c)
	if r := spmv.CompressionRatio(vi); r <= 0 || r >= 1.5 {
		t.Errorf("CompressionRatio = %v", r)
	}
	if vi.TTU() != 16.0/9.0 {
		t.Errorf("TTU = %v", vi.TTU())
	}
	// Fig 1's row 3 has a zero diagonal, so Jacobi must refuse it...
	if _, err := spmv.JacobiInvDiag(c); err == nil {
		t.Error("JacobiInvDiag accepted zero diagonal")
	}
	// ...and accept a diagonally complete matrix.
	d := spmv.NewCOO(3, 3)
	for i := 0; i < 3; i++ {
		d.Add(i, i, float64(i+2))
	}
	d.Finalize()
	invD, err := spmv.JacobiInvDiag(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(invD) != 3 || invD[0] != 0.5 {
		t.Errorf("invDiag = %v", invD)
	}
}
