package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSliceBasic(t *testing.T) {
	c := NewCOO(4, 4)
	c.Add(0, 0, 1)
	c.Add(1, 2, 2)
	c.Add(2, 1, 3)
	c.Add(3, 3, 4)
	c.Finalize()
	s := c.Slice(1, 3, 1, 4)
	if s.Rows() != 2 || s.Cols() != 3 {
		t.Fatalf("slice dims %dx%d", s.Rows(), s.Cols())
	}
	if s.Len() != 2 {
		t.Fatalf("slice nnz %d", s.Len())
	}
	i, j, v := s.At(0)
	if i != 0 || j != 1 || v != 2 {
		t.Errorf("entry 0 = (%d,%d,%v)", i, j, v)
	}
	i, j, v = s.At(1)
	if i != 1 || j != 0 || v != 3 {
		t.Errorf("entry 1 = (%d,%d,%v)", i, j, v)
	}
}

func TestSliceEmptyRange(t *testing.T) {
	c := NewCOO(4, 4)
	c.Add(1, 1, 1)
	c.Finalize()
	s := c.Slice(2, 2, 0, 4)
	if s.Len() != 0 {
		t.Errorf("empty row range has %d entries", s.Len())
	}
	s2 := c.Slice(0, 4, 3, 3)
	if s2.Len() != 0 {
		t.Errorf("empty col range has %d entries", s2.Len())
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	c := NewCOO(3, 3)
	c.Finalize()
	for _, r := range [][4]int{{-1, 2, 0, 2}, {0, 4, 0, 2}, {2, 1, 0, 2}, {0, 2, -1, 2}, {0, 2, 0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%v) did not panic", r)
				}
			}()
			c.Slice(r[0], r[1], r[2], r[3])
		}()
	}
}

func TestSliceTilesCoverMatrix(t *testing.T) {
	// Quick property: slicing into a grid and re-assembling reproduces
	// the matrix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(20), 2+rng.Intn(20)
		c := RandomCOO(rng, rows, cols, 3*rows)
		gr, gc := 1+rng.Intn(3), 1+rng.Intn(3)
		total := 0
		re := NewCOO(rows, cols)
		for bi := 0; bi < gr; bi++ {
			r0, r1 := bi*rows/gr, (bi+1)*rows/gr
			for bj := 0; bj < gc; bj++ {
				c0, c1 := bj*cols/gc, (bj+1)*cols/gc
				if r0 == r1 || c0 == c1 {
					continue
				}
				s := c.Slice(r0, r1, c0, c1)
				total += s.Len()
				for k := 0; k < s.Len(); k++ {
					i, j, v := s.At(k)
					re.Add(i+r0, j+c0, v)
				}
			}
		}
		if total != c.Len() {
			return false
		}
		re.Finalize()
		if re.Len() != c.Len() {
			return false
		}
		for k := 0; k < c.Len(); k++ {
			i1, j1, v1 := c.At(k)
			i2, j2, v2 := re.At(k)
			if i1 != i2 || j1 != j2 || v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
