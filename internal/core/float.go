package core

import "math"

// IsZero reports whether x is exactly ±0. Spelled on the bit pattern
// rather than x == 0 so the intent — exact zero sentinel, not "small"
// — is explicit at every call site; NaN is not zero. Use this for
// division guards and unset-value sentinels; use a tolerance for
// numerical closeness.
func IsZero(x float64) bool {
	return math.Float64bits(x)<<1 == 0
}

// SameBits reports bit-identical equality. Unlike ==, NaN equals
// itself and +0 differs from -0: this is the distinctness relation the
// value-compression schemes (CSR-VI's unique-value table) are built
// on, and the right equality for structural matrix comparison.
func SameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
