package core

// Batched (multi-vector) SpMV, also called SpMM: Y = A*X where X packs
// k right-hand-side vectors as a row-major cols×k panel (X[j*k+c] is
// element j of vector c) and Y is the row-major rows×k result panel.
//
// Batching attacks the bandwidth wall from the workload side: the
// matrix stream — the term the compression formats shrink — is read
// once per multiplication regardless of k, so its cost is amortized
// over k vectors. Every decoded CSR-DU ctl unit and every loaded
// CSR-VI val_ind entry feeds k FMAs instead of one. The per-vector
// traffic of one batched multiplication is
//
//	bytes_per_vector = SizeBytes(A)/k + 8*(rows+cols)
//
// which falls toward the irreducible vector traffic as k grows.

// BatchFormat is a format with a fused batched kernel: one pass over
// the matrix stream computes all k columns of the result panel. The
// compressed formats implement it so their decode work, like their
// stream bytes, is paid once per multiplication rather than once per
// vector.
type BatchFormat interface {
	Format
	// SpMVBatch computes Y = A*X over row-major panels, overwriting y.
	// len(x) >= Cols()*k, len(y) >= Rows()*k, k >= 1. With k = 1 the
	// result is bitwise identical to SpMV (same operations, same order).
	SpMVBatch(y, x []float64, k int)
}

// BatchChunk is a row-partitioned chunk with a fused batched kernel.
// Like Chunk.SpMV, SpMVBatch must only write the panel rows in the
// chunk's row range, so disjoint chunks may run concurrently.
type BatchChunk interface {
	Chunk
	SpMVBatch(y, x []float64, k int)
}

// CheckPanelDims validates batched operand shapes: k positive and the
// panels long enough for the matrix dimensions. Errors wrap ErrUsage
// (bad k) or ErrShape (short panels).
func CheckPanelDims(rows, cols int, y, x []float64, k int) error {
	if k <= 0 {
		return Usagef("non-positive batch vector count %d", k)
	}
	if len(y) < rows*k {
		return Shapef("len(y) %d < %d rows x %d vectors", len(y), rows, k)
	}
	if len(x) < cols*k {
		return Shapef("len(x) %d < %d cols x %d vectors", len(x), cols, k)
	}
	return nil
}

// SpMVBatch computes Y = A*X over row-major panels, using f's fused
// kernel when it implements BatchFormat and the per-column fallback
// otherwise. Operands are trusted, as with Format.SpMV; use
// SafeSpMVBatch at trust boundaries.
func SpMVBatch(f Format, y, x []float64, k int) {
	if bf, ok := f.(BatchFormat); ok {
		bf.SpMVBatch(y, x, k)
		return
	}
	BatchFallback(f, y, x, k)
}

// BatchFallback computes Y = A*X by running f's scalar kernel once per
// panel column, gathering each right-hand side into a contiguous
// vector and scattering the result back. It preserves SpMV's exact
// arithmetic (so k = 1 matches SpMV bitwise) but re-streams the matrix
// k times — correctness for every format, amortization for none.
func BatchFallback(f Format, y, x []float64, k int) {
	if k <= 0 {
		panic(Usagef("core: batch with non-positive vector count %d", k))
	}
	rows, cols := f.Rows(), f.Cols()
	if k == 1 {
		f.SpMV(y[:rows], x[:cols])
		return
	}
	xc := make([]float64, cols)
	yc := make([]float64, rows)
	for c := 0; c < k; c++ {
		for j := range xc {
			xc[j] = x[j*k+c]
		}
		f.SpMV(yc, xc)
		for i, v := range yc {
			y[i*k+c] = v
		}
	}
}

// SafeSpMVBatch is the batched analogue of SafeSpMV: panel shapes are
// validated first and any kernel panic is converted to an error.
func SafeSpMVBatch(f Format, y, x []float64, k int) (err error) {
	if err := CheckPanelDims(f.Rows(), f.Cols(), y, x, k); err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			err = PanicError(r)
		}
	}()
	SpMVBatch(f, y, x, k)
	return nil
}
