package core

// Dense is a row-major dense matrix used as the correctness reference
// for every sparse kernel in the library's tests. It is deliberately
// simple and unoptimized.
type Dense struct {
	R, C int
	V    []float64 // len R*C, row-major
}

// NewDense returns a zeroed r×c dense matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(Usagef("core: invalid Dense dimensions %dx%d", r, c))
	}
	return &Dense{R: r, C: c, V: make([]float64, r*c)}
}

// DenseFromCOO materializes a finalized COO.
func DenseFromCOO(coo *COO) *Dense {
	coo.mustFinal("DenseFromCOO")
	d := NewDense(coo.Rows(), coo.Cols())
	for k := 0; k < coo.Len(); k++ {
		i, j, v := coo.At(k)
		d.V[i*d.C+j] += v
	}
	return d
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.V[i*d.C+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.V[i*d.C+j] = v }

// SpMV computes y = A*x with the naive triple loop.
func (d *Dense) SpMV(y, x []float64) {
	for i := 0; i < d.R; i++ {
		sum := 0.0
		row := d.V[i*d.C : (i+1)*d.C]
		for j, a := range row {
			sum += a * x[j]
		}
		y[i] = sum
	}
}
