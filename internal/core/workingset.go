package core

// Working-set accounting, paper §II-B:
//
//	ws = csr_size + vectors_size
//	   = (nnz*(idx_s+val_s) + (nrows+1)*idx_s) + (nrows+ncols)*val_s
//
// With the paper's 4-byte indices and 8-byte values the value data is
// 2/3 of the col_ind+values portion, which is why CSR-VI (value
// compression) has more headroom than CSR-DU (index compression).

// Default storage sizes used throughout the paper's evaluation (§VI-A).
const (
	IdxSize = 4 // bytes per index (32-bit)
	ValSize = 8 // bytes per value (64-bit float)
)

// CSRBytes returns the size of the CSR matrix data (values + col_ind +
// row_ptr) for the given shape, with idxSize-byte indices and
// valSize-byte values.
func CSRBytes(rows, nnz int, idxSize, valSize int) int64 {
	return int64(nnz)*int64(idxSize+valSize) + int64(rows+1)*int64(idxSize)
}

// VectorBytes returns the size of the dense x and y vectors.
func VectorBytes(rows, cols int, valSize int) int64 {
	return int64(rows+cols) * int64(valSize)
}

// WorkingSet returns the full SpMV working set of a matrix stored in
// standard CSR with the paper's default index/value sizes.
func WorkingSet(rows, cols, nnz int) int64 {
	return CSRBytes(rows, nnz, IdxSize, ValSize) + VectorBytes(rows, cols, ValSize)
}

// WorkingSetOf returns the SpMV working set of a concrete format:
// its matrix data plus the vectors.
func WorkingSetOf(f Format) int64 {
	return f.SizeBytes() + VectorBytes(f.Rows(), f.Cols(), ValSize)
}

// CompressionRatio returns SizeBytes(f) / CSRBytes(baseline) for the
// same matrix: < 1 means f is smaller than standard CSR.
func CompressionRatio(f Format) float64 {
	base := CSRBytes(f.Rows(), f.NNZ(), IdxSize, ValSize)
	return float64(f.SizeBytes()) / float64(base)
}

// BytesPerNNZ returns the matrix-stream bytes per stored non-zero —
// the per-element traffic cost the compression schemes attack.
// Standard CSR pays IdxSize+ValSize = 12 plus the amortized row
// pointer; CSR-DU/CSR-VI push the figure toward ValSize and below.
// Returns 0 for an empty matrix.
func BytesPerNNZ(f Format) float64 {
	if f.NNZ() == 0 {
		return 0
	}
	return float64(f.SizeBytes()) / float64(f.NNZ())
}
