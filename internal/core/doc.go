// Package core defines the common vocabulary of the SpMV compression
// library: the Format interface that every sparse-matrix storage scheme
// implements, the Chunk/Splitter interfaces used by the multithreaded
// runtime, the COO triplet builder that all format constructors consume,
// a dense reference matrix used for correctness checking, working-set
// accounting (the quantity the paper's compression schemes minimize),
// and the memory-access tracing primitives that feed the machine
// simulator.
//
// The package corresponds to the framework glue of Kourtis, Goumas and
// Koziris, "Improving the Performance of Multithreaded Sparse
// Matrix-Vector Multiplication Using Index and Value Compression"
// (ICPP 2008): everything that the CSR, CSR-DU and CSR-VI storage
// schemes have in common lives here, so that kernels, partitioners,
// solvers, benchmarks and the simulator can treat formats uniformly.
package core
