package core

import (
	"errors"
	"math"
	"testing"
)

// stubFormat wraps a Dense as a Format that does NOT implement
// BatchFormat, to exercise the fallback paths.
type stubFormat struct{ d *Dense }

func (s *stubFormat) Name() string        { return "stub" }
func (s *stubFormat) Rows() int           { return s.d.R }
func (s *stubFormat) Cols() int           { return s.d.C }
func (s *stubFormat) NNZ() int            { return s.d.R * s.d.C }
func (s *stubFormat) SizeBytes() int64    { return int64(len(s.d.V)) * ValSize }
func (s *stubFormat) SpMV(y, x []float64) { s.d.SpMV(y, x) }

func stubFrom(rows, cols int, vals []float64) *stubFormat {
	d := NewDense(rows, cols)
	copy(d.V, vals)
	return &stubFormat{d: d}
}

func TestCheckPanelDims(t *testing.T) {
	y := make([]float64, 6)
	x := make([]float64, 4)
	cases := []struct {
		name    string
		y, x    []float64
		k       int
		wantErr error
	}{
		{"ok", y, x, 2, nil},
		{"zero k", y, x, 0, ErrUsage},
		{"negative k", y, x, -3, ErrUsage},
		{"short y", y[:5], x, 2, ErrShape},
		{"short x", y, x[:3], 2, ErrShape},
	}
	for _, tc := range cases {
		err := CheckPanelDims(3, 2, tc.y, tc.x, tc.k)
		if tc.wantErr == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		} else if !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: got %v, want errors.Is(%v)", tc.name, err, tc.wantErr)
		}
	}
}

// TestBatchFallback checks the gather/scatter fallback against an
// explicit per-column product, and the bitwise k=1 contract.
func TestBatchFallback(t *testing.T) {
	f := stubFrom(3, 2, []float64{
		1, 2,
		0, 3,
		4, 0,
	})
	const k = 3
	x := []float64{ // 2x3 panel: column c is [x[c], x[k+c]]
		1, 2, 3,
		10, 20, 30,
	}
	y := make([]float64, 3*k)
	BatchFallback(f, y, x, k)
	for c := 0; c < k; c++ {
		xc := []float64{x[c], x[k+c]}
		yc := make([]float64, 3)
		f.SpMV(yc, xc)
		for i := range yc {
			if got := y[i*k+c]; got != yc[i] {
				t.Errorf("column %d row %d: got %g, want %g", c, i, got, yc[i])
			}
		}
	}

	// k=1 must hit the scalar kernel directly: bitwise equality.
	x1 := []float64{math.Pi, math.E}
	y1 := make([]float64, 3)
	yref := make([]float64, 3)
	BatchFallback(f, y1, x1, 1)
	f.SpMV(yref, x1)
	for i := range y1 {
		if !SameBits(y1[i], yref[i]) {
			t.Errorf("k=1 row %d: %x != SpMV %x",
				i, math.Float64bits(y1[i]), math.Float64bits(yref[i]))
		}
	}
}

func TestSpMVBatchDispatch(t *testing.T) {
	// stubFormat does not implement BatchFormat, so the package-level
	// helper must take the fallback path and still fill the panel.
	f := stubFrom(2, 2, []float64{1, 2, 3, 4})
	x := []float64{1, 0, 0, 1} // identity panel, k=2
	y := make([]float64, 4)
	SpMVBatch(f, y, x, 2)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestSafeSpMVBatch(t *testing.T) {
	f := stubFrom(2, 2, []float64{1, 0, 0, 1})
	y := make([]float64, 4)
	x := make([]float64, 4)
	if err := SafeSpMVBatch(f, y, x, 2); err != nil {
		t.Fatalf("valid panel: %v", err)
	}
	if err := SafeSpMVBatch(f, y, x, 0); !errors.Is(err, ErrUsage) {
		t.Errorf("k=0: got %v, want ErrUsage", err)
	}
	if err := SafeSpMVBatch(f, y[:3], x, 2); !errors.Is(err, ErrShape) {
		t.Errorf("short y: got %v, want ErrShape", err)
	}
}
