package core

// Format is a concrete, immutable in-memory sparse matrix representation
// together with its serial SpMV kernel. All storage schemes in this
// library (CSR, CSR-DU, CSR-VI, DCSR, BCSR, ...) implement Format.
type Format interface {
	// Name identifies the storage scheme, e.g. "csr", "csr-du", "csr-vi".
	Name() string
	// Rows and Cols are the matrix dimensions.
	Rows() int
	Cols() int
	// NNZ is the number of stored non-zero elements. For blocked formats
	// this is the number of logical non-zeros, not the padded count.
	NNZ() int
	// SizeBytes is the in-memory size of the matrix data (index data plus
	// value data), excluding the x and y vectors. This is the quantity
	// the compression schemes reduce.
	SizeBytes() int64
	// SpMV computes y = A*x, overwriting y. len(x) >= Cols(),
	// len(y) >= Rows().
	SpMV(y, x []float64)
}

// Chunk is a contiguous row range of a partitioned matrix, processed by
// one worker of the multithreaded runtime. A chunk's SpMV only writes
// y[lo:hi] for its row range, so disjoint chunks may run concurrently
// (row partitioning, paper §II-C).
type Chunk interface {
	// RowRange returns the half-open row interval [lo, hi) this chunk covers.
	RowRange() (lo, hi int)
	// NNZ is the number of non-zeros in the chunk (load-balance weight).
	NNZ() int
	// SpMV computes y[lo:hi] = A[lo:hi, :]*x. It must not touch y outside
	// the chunk's row range.
	SpMV(y, x []float64)
}

// Splitter is implemented by formats that support row partitioning into
// nnz-balanced chunks (the static balancing scheme of §II-C: each thread
// gets approximately the same number of non-zero elements).
type Splitter interface {
	// Split partitions the matrix into at most n chunks. It returns fewer
	// chunks when the matrix has fewer rows than n. Chunks are ordered by
	// row range and cover all rows exactly once.
	Split(n int) []Chunk
}

// ColChunk is a contiguous column range of a partitioned matrix
// (column partitioning, paper §II-C). Every chunk may touch all of y,
// so the parallel runtime gives each worker a private y and reduces —
// the paper's prescription for avoiding cache-line ping-pong.
type ColChunk interface {
	// ColRange returns the half-open column interval [lo, hi).
	ColRange() (lo, hi int)
	// NNZ is the number of non-zeros in the chunk.
	NNZ() int
	// SpMVAdd accumulates the chunk's contribution into y (y += A[:, lo:hi]*x).
	SpMVAdd(y, x []float64)
}

// ColSplitter is implemented by formats that support nnz-balanced
// column partitioning.
type ColSplitter interface {
	SplitCols(n int) []ColChunk
}

// SpMVAdd is implemented by formats whose kernel can accumulate into y
// (y += A*x) instead of overwriting. Column-partitioned execution needs
// this to reduce per-thread partial vectors.
type SpMVAdd interface {
	SpMVAdd(y, x []float64)
}
