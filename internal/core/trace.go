package core

// Memory-access tracing: formats that implement Tracer can replay the
// exact memory reference stream of their SpMV kernel against the machine
// simulator (internal/memsim). This substitutes for the paper's
// hardware testbed: the simulator charges each access against a modeled
// cache hierarchy and shared front-side bus, which is the resource the
// compression schemes are designed to relieve.

// Access is one memory reference of a kernel, annotated with the compute
// work (in CPU cycles) the kernel performs before issuing it. Sequential
// streaming accesses may be pre-coalesced to cache-line granularity by
// the trace generator; gather accesses (x[col_ind[j]]) must be emitted
// individually.
type Access struct {
	Addr  uint64 // virtual byte address
	Size  uint32 // bytes touched starting at Addr
	Write bool   // store rather than load
	Comp  uint16 // CPU cycles of compute preceding this access
}

// EmitFunc receives the access stream of a traced kernel in program order.
type EmitFunc func(Access)

// Tracer is implemented by chunks whose SpMV memory behaviour can be
// replayed. xBase and yBase are the virtual base addresses of the dense
// vectors; the chunk knows the base addresses of its own arrays from its
// format's Place call.
type Tracer interface {
	TraceSpMV(xBase, yBase uint64, emit EmitFunc)
}

// Placer is implemented by formats that support tracing: Place assigns
// virtual base addresses to each of the format's arrays from the arena.
// It must be called once before TraceSpMV on any chunk of the format.
type Placer interface {
	Place(a *Arena)
}

// Arena hands out disjoint, cache-line-aligned virtual address ranges
// for the arrays of a traced computation. Addresses start well above
// zero so that a zero Addr is recognizably "unplaced".
type Arena struct {
	next uint64
}

// LineSize is the cache-line size assumed by trace coalescing and by the
// default machine models.
const LineSize = 64

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{next: 1 << 20}
}

// Alloc reserves n bytes and returns the (line-aligned) base address.
// A guard line is left between allocations so distinct arrays never
// share a cache line.
func (a *Arena) Alloc(n int64) uint64 {
	if n < 0 {
		panic(Usagef("core: Arena.Alloc with negative size"))
	}
	base := a.next
	a.next += uint64(n)
	a.next = (a.next + 2*LineSize - 1) &^ (LineSize - 1)
	return base
}

// StreamCursor tracks a sequential scan over one array and emits one
// line-granular Access each time the scan enters a new cache line. It
// lets a kernel trace interleave several streamed arrays in program
// order (row_ptr, col_ind, values, ctl, ...) without emitting an access
// per element.
type StreamCursor struct {
	base     uint64
	lastLine uint64
}

// NewStreamCursor returns a cursor over the array at base.
func NewStreamCursor(base uint64) StreamCursor {
	return StreamCursor{base: base, lastLine: ^uint64(0)}
}

// Touch records an access of size bytes at byte offset off into the
// array. If the access enters a cache line the cursor has not yet
// visited, one line-sized Access is emitted with the given compute
// cost; otherwise the access is absorbed into the previously emitted
// line (its compute cost is dropped — attach per-element compute to the
// gather accesses instead).
func (c *StreamCursor) Touch(emit EmitFunc, off int64, size int, write bool, comp uint16) {
	line := (c.base + uint64(off)) / LineSize
	if line != c.lastLine {
		c.lastLine = line
		emit(Access{Addr: line * LineSize, Size: LineSize, Write: write, Comp: comp})
	}
}

// EmitStream coalesces a sequential scan of nbytes starting at base into
// one Access per cache line, charging compPerByte×LineSize compute
// cycles to each (rounded up). This models streaming over values,
// col_ind, ctl, val_ind, and similar arrays.
func EmitStream(emit EmitFunc, base uint64, nbytes int64, write bool, compPerLine uint16) {
	if nbytes <= 0 {
		return
	}
	first := base &^ (LineSize - 1)
	last := (base + uint64(nbytes) - 1) &^ (LineSize - 1)
	for addr := first; addr <= last; addr += LineSize {
		emit(Access{Addr: addr, Size: LineSize, Write: write, Comp: compPerLine})
	}
}
