package core

import (
	"math"
	"sort"
)

// COO is a coordinate-format (triplet) sparse matrix. It is the exchange
// representation of the library: the Matrix Market reader and the
// synthetic generators produce COO, and every Format constructor
// consumes a finalized COO.
//
// A COO is "finalized" when its entries are sorted row-major (row, then
// column) and contain no duplicate coordinates. Format constructors
// require a finalized COO; call Finalize after the last Add.
type COO struct {
	rows, cols int
	I, J       []int32
	V          []float64
	finalized  bool
}

// NewCOO returns an empty rows×cols triplet matrix.
// It panics if either dimension is not positive or exceeds the 32-bit
// index range the library's formats use.
func NewCOO(rows, cols int) *COO {
	const maxDim = 1 << 31
	if rows <= 0 || cols <= 0 || rows >= maxDim || cols >= maxDim {
		panic(Usagef("core: invalid COO dimensions %dx%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Rows returns the number of rows.
func (c *COO) Rows() int { return c.rows }

// Cols returns the number of columns.
func (c *COO) Cols() int { return c.cols }

// Len returns the number of stored triplets (duplicates included until
// Finalize folds them).
func (c *COO) Len() int { return len(c.V) }

// Finalized reports whether Finalize has been called since the last Add.
func (c *COO) Finalized() bool { return c.finalized }

// Add appends the triplet (i, j, v). Duplicate coordinates are allowed
// and are summed by Finalize, matching Matrix Market assembly semantics.
// Add panics if the coordinate is out of range.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(Usagef("core: COO.Add(%d, %d) out of range for %dx%d matrix", i, j, c.rows, c.cols))
	}
	c.I = append(c.I, int32(i))
	c.J = append(c.J, int32(j))
	c.V = append(c.V, v)
	c.finalized = false
}

// At returns the k-th stored triplet.
func (c *COO) At(k int) (i, j int, v float64) {
	return int(c.I[k]), int(c.J[k]), c.V[k]
}

// Finalize sorts the triplets row-major and folds duplicate coordinates
// by summing their values. Explicit zeros that result from cancellation
// are kept: they are stored non-zeros, exactly as in CSR assembly.
// Finalize is idempotent.
func (c *COO) Finalize() {
	if c.finalized {
		return
	}
	sort.Sort((*cooSort)(c))
	// Fold duplicates in place.
	w := 0
	for k := 0; k < len(c.V); k++ {
		if w > 0 && c.I[k] == c.I[w-1] && c.J[k] == c.J[w-1] {
			c.V[w-1] += c.V[k]
			continue
		}
		c.I[w], c.J[w], c.V[w] = c.I[k], c.J[k], c.V[k]
		w++
	}
	c.I = c.I[:w]
	c.J = c.J[:w]
	c.V = c.V[:w]
	c.finalized = true
}

// RowCounts returns the number of non-zeros in each row of a finalized
// COO. It panics if the COO is not finalized.
func (c *COO) RowCounts() []int {
	c.mustFinal("RowCounts")
	counts := make([]int, c.rows)
	for _, i := range c.I {
		counts[i]++
	}
	return counts
}

// Clone returns a deep copy.
func (c *COO) Clone() *COO {
	out := &COO{
		rows: c.rows, cols: c.cols, finalized: c.finalized,
		I: append([]int32(nil), c.I...),
		J: append([]int32(nil), c.J...),
		V: append([]float64(nil), c.V...),
	}
	return out
}

// Transpose returns a finalized transpose of a finalized COO.
func (c *COO) Transpose() *COO {
	c.mustFinal("Transpose")
	t := NewCOO(c.cols, c.rows)
	for k := range c.V {
		t.Add(int(c.J[k]), int(c.I[k]), c.V[k])
	}
	t.Finalize()
	return t
}

// AddCOO returns the finalized sum A + B of two same-shaped finalized
// matrices (entries with equal coordinates fold).
func (c *COO) AddCOO(other *COO) *COO {
	c.mustFinal("AddCOO")
	other.mustFinal("AddCOO")
	if c.rows != other.rows || c.cols != other.cols {
		panic(Usagef("core: AddCOO shape mismatch: %dx%d vs %dx%d", c.rows, c.cols, other.rows, other.cols))
	}
	out := NewCOO(c.rows, c.cols)
	for k := range c.V {
		out.Add(int(c.I[k]), int(c.J[k]), c.V[k])
	}
	for k := range other.V {
		out.Add(int(other.I[k]), int(other.J[k]), other.V[k])
	}
	out.Finalize()
	return out
}

// Prune removes stored entries with |value| <= eps from a finalized
// COO in place and returns the number removed. Assembly cancellation
// commonly leaves explicit zeros; pruning them shrinks every downstream
// format.
func (c *COO) Prune(eps float64) int {
	c.mustFinal("Prune")
	w := 0
	for k := range c.V {
		// Keep anything NOT provably small — NaN survives, so a broken
		// assembly stays visible instead of being silently dropped.
		if !(math.Abs(c.V[k]) <= eps) {
			c.I[w], c.J[w], c.V[w] = c.I[k], c.J[k], c.V[k]
			w++
		}
	}
	removed := len(c.V) - w
	c.I = c.I[:w]
	c.J = c.J[:w]
	c.V = c.V[:w]
	return removed
}

// Scale multiplies every stored value by alpha in place.
func (c *COO) Scale(alpha float64) {
	for k := range c.V {
		c.V[k] *= alpha
	}
}

// Equal reports entry-wise equality of two finalized matrices
// (dimensions, coordinates and exact values).
func (c *COO) Equal(other *COO) bool {
	c.mustFinal("Equal")
	other.mustFinal("Equal")
	if c.rows != other.rows || c.cols != other.cols || len(c.V) != len(other.V) {
		return false
	}
	for k := range c.V {
		if c.I[k] != other.I[k] || c.J[k] != other.J[k] || !SameBits(c.V[k], other.V[k]) {
			return false
		}
	}
	return true
}

// Slice returns a finalized (r1-r0)×(c1-c0) submatrix of a finalized
// COO containing the entries with r0 <= i < r1 and c0 <= j < c1,
// re-based to local coordinates. Used by the block-partitioned
// executor (§II-C) to hand each thread a two-dimensional block.
func (c *COO) Slice(r0, r1, c0, c1 int) *COO {
	c.mustFinal("Slice")
	if r0 < 0 || r1 > c.rows || r0 > r1 || c0 < 0 || c1 > c.cols || c0 > c1 {
		panic(Usagef("core: COO.Slice(%d,%d,%d,%d) out of range for %dx%d", r0, r1, c0, c1, c.rows, c.cols))
	}
	if r0 == r1 || c0 == c1 {
		out := NewCOO(max(r1-r0, 1), max(c1-c0, 1))
		out.Finalize()
		return out
	}
	out := NewCOO(r1-r0, c1-c0)
	for k := range c.V {
		i, j := int(c.I[k]), int(c.J[k])
		if i >= r0 && i < r1 && j >= c0 && j < c1 {
			out.Add(i-r0, j-c0, c.V[k])
		}
	}
	out.Finalize()
	return out
}

// SpMV computes y = A*x directly from the triplets (reference kernel;
// formats have much faster ones). Requires a finalized COO only so that
// duplicates have been folded.
func (c *COO) SpMV(y, x []float64) {
	c.mustFinal("SpMV")
	for i := range y[:c.rows] {
		y[i] = 0
	}
	for k := range c.V {
		y[c.I[k]] += c.V[k] * x[c.J[k]]
	}
}

func (c *COO) mustFinal(op string) {
	if !c.finalized {
		panic(Usagef("core: COO.%s requires a finalized COO; call Finalize first", op))
	}
}

// cooSort sorts a COO row-major by (i, j).
type cooSort COO

func (s *cooSort) Len() int { return len(s.V) }
func (s *cooSort) Less(a, b int) bool {
	if s.I[a] != s.I[b] {
		return s.I[a] < s.I[b]
	}
	return s.J[a] < s.J[b]
}
func (s *cooSort) Swap(a, b int) {
	s.I[a], s.I[b] = s.I[b], s.I[a]
	s.J[a], s.J[b] = s.J[b], s.J[a]
	s.V[a], s.V[b] = s.V[b], s.V[a]
}
