package core

import (
	"errors"
	"fmt"
	"runtime"
)

// Verifier is implemented by formats that can check their own
// structural invariants in O(nnz): monotone row pointers, in-range
// column indices, control streams that decode to exactly nnz elements
// without crossing row or chunk boundaries, value indirections that
// stay inside the unique table, and so on.
//
// The compressed formats are effectively bytecodes executed by their
// SpMV kernels, and the kernels trust the encoder completely: a
// corrupted stream reads out of bounds or silently produces a wrong y.
// Verify is the gate that restores safety for data that did not come
// from this process's own encoder — anything loaded from disk, the
// network, or shared memory. The contract, enforced by fuzzing:
//
//	if Verify returns nil, SpMV never reads out of bounds and its
//	result equals the reference CSR result of the decoded triplets.
//
// Errors returned by Verify wrap ErrCorrupt, ErrTruncated or ErrShape
// and respond to errors.Is.
type Verifier interface {
	Verify() error
}

// Sentinel error categories for data validation, tested with errors.Is.
var (
	// ErrCorrupt marks structurally invalid matrix data: out-of-range
	// indices, non-monotone pointers, invalid opcodes, checksum
	// mismatches.
	ErrCorrupt = errors.New("corrupt matrix data")
	// ErrTruncated marks data that ends mid-structure: a varint without
	// its terminator, a unit header without its payload, a short
	// section.
	ErrTruncated = errors.New("truncated matrix data")
	// ErrShape marks dimension mismatches: negative sizes, vectors
	// shorter than the matrix dimensions, section sizes inconsistent
	// with the declared shape.
	ErrShape = errors.New("matrix shape mismatch")
	// ErrUsage marks API misuse by the caller: invalid constructor
	// arguments, operations on an unfinalized COO, tracing before
	// placement. Library code panics with Usagef for these — they are
	// programmer errors, not data errors — and the typed value lets
	// recovering executors distinguish them from corruption traps.
	ErrUsage = errors.New("api misuse")
)

// Corruptf returns an error wrapping ErrCorrupt.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
}

// Truncatedf returns an error wrapping ErrTruncated.
func Truncatedf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrTruncated)...)
}

// Shapef returns an error wrapping ErrShape.
func Shapef(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrShape)...)
}

// Usagef returns an error wrapping ErrUsage, for panicking on
// programmer misuse of the API.
func Usagef(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrUsage)...)
}

// Verify checks f's structural invariants if it implements Verifier;
// formats without a verifier pass trivially (they are plain-array
// formats whose kernels bounds-check naturally, or test fakes).
func Verify(f Format) error {
	if v, ok := f.(Verifier); ok {
		return v.Verify()
	}
	return nil
}

// CheckVectors validates the SpMV operand lengths against the matrix
// dimensions: len(y) >= Rows() and len(x) >= Cols(). The kernels index
// x by decoded column positions and y by decoded rows, so a short
// vector turns a dimension mistake into an out-of-bounds panic deep in
// a worker; this makes it a clean typed error at the API boundary.
func CheckVectors(f Format, y, x []float64) error {
	return CheckVectorDims(f.Rows(), f.Cols(), y, x)
}

// CheckVectorDims is CheckVectors for callers that know the dimensions
// but hold no Format (the block-partitioned executor assembles its
// grid from raw triplets).
func CheckVectorDims(rows, cols int, y, x []float64) error {
	if len(y) < rows {
		return Shapef("len(y) %d < %d rows", len(y), rows)
	}
	if len(x) < cols {
		return Shapef("len(x) %d < %d cols", len(x), cols)
	}
	return nil
}

// SafeSpMV runs f.SpMV with the operand lengths validated first and
// any kernel panic converted to an error. The compressed-format
// kernels trust their streams completely and panic (with errors
// wrapping ErrCorrupt) when they hit bytes that Verify would have
// rejected; SafeSpMV is the serial-path containment for that, matching
// what the parallel executors do per worker.
func SafeSpMV(f Format, y, x []float64) (err error) {
	if err := CheckVectors(f, y, x); err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			err = PanicError(r)
		}
	}()
	f.SpMV(y, x)
	return nil
}

// PanicError converts a recovered panic value into an error. Typed
// error panics keep their sentinel chain; runtime faults (the
// out-of-bounds accesses corrupt data causes in trusting kernels) are
// tagged as corruption.
func PanicError(r any) error {
	switch v := r.(type) {
	case runtime.Error:
		return Corruptf("kernel fault: %v", v)
	case error:
		return v
	default:
		return Corruptf("kernel panic: %v", v)
	}
}

// CheckRowPtr validates a CSR-style row pointer: starts at 0, is
// monotone non-decreasing, and ends exactly at nnz.
func CheckRowPtr(rowPtr []int32, nnz int) error {
	if len(rowPtr) == 0 {
		return Truncatedf("empty row pointer")
	}
	if rowPtr[0] != 0 {
		return Corruptf("row pointer starts at %d, want 0", rowPtr[0])
	}
	for i := 1; i < len(rowPtr); i++ {
		if rowPtr[i] < rowPtr[i-1] {
			return Corruptf("row pointer not monotone at row %d (%d < %d)", i-1, rowPtr[i], rowPtr[i-1])
		}
	}
	if int(rowPtr[len(rowPtr)-1]) != nnz {
		return Shapef("row pointer spans %d elements, want %d", rowPtr[len(rowPtr)-1], nnz)
	}
	return nil
}

// CheckColInd validates that every column index is inside [0, cols).
func CheckColInd(colInd []int32, cols int) error {
	for k, j := range colInd {
		if j < 0 || int(j) >= cols {
			return Corruptf("column index %d at position %d out of range [0,%d)", j, k, cols)
		}
	}
	return nil
}
