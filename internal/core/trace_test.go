package core

import "testing"

func TestArenaAllocAlignedDisjoint(t *testing.T) {
	a := NewArena()
	b1 := a.Alloc(100)
	b2 := a.Alloc(1)
	b3 := a.Alloc(0)
	b4 := a.Alloc(64)
	for _, b := range []uint64{b1, b2, b3, b4} {
		if b%LineSize != 0 {
			t.Errorf("allocation base %#x not line-aligned", b)
		}
		if b == 0 {
			t.Error("allocation base is zero (reserved for unplaced)")
		}
	}
	// Guard line: no two allocations may share a cache line.
	if b2 < b1+100+LineSize-1 && b2/LineSize == (b1+99)/LineSize {
		t.Errorf("allocations share a line: %#x after %#x+100", b2, b1)
	}
	if b2 <= b1 || b3 <= b2 || b4 <= b3 {
		t.Error("allocations not strictly increasing")
	}
}

func TestArenaAllocPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Alloc(-1) did not panic")
		}
	}()
	NewArena().Alloc(-1)
}

func TestEmitStreamCoalescesToLines(t *testing.T) {
	var got []Access
	emit := func(a Access) { got = append(got, a) }
	// 130 bytes starting 10 bytes into a line spans 3 lines.
	base := uint64(1<<20) + 10
	EmitStream(emit, base, 130, false, 7)
	if len(got) != 3 {
		t.Fatalf("emitted %d accesses, want 3", len(got))
	}
	for k, a := range got {
		if a.Addr%LineSize != 0 {
			t.Errorf("access %d addr %#x not line-aligned", k, a.Addr)
		}
		if a.Size != LineSize || a.Write || a.Comp != 7 {
			t.Errorf("access %d = %+v, want full-line read with Comp=7", k, a)
		}
	}
	if got[1].Addr != got[0].Addr+LineSize || got[2].Addr != got[1].Addr+LineSize {
		t.Error("accesses not consecutive lines")
	}
}

func TestEmitStreamZeroAndNegative(t *testing.T) {
	calls := 0
	emit := func(Access) { calls++ }
	EmitStream(emit, 1<<20, 0, false, 0)
	EmitStream(emit, 1<<20, -5, false, 0)
	if calls != 0 {
		t.Errorf("EmitStream emitted %d accesses for empty stream", calls)
	}
}

func TestEmitStreamExactLine(t *testing.T) {
	calls := 0
	EmitStream(func(Access) { calls++ }, 1<<20, LineSize, true, 0)
	if calls != 1 {
		t.Errorf("exactly one line should emit 1 access, got %d", calls)
	}
}
