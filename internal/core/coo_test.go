package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCOOPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 5}, {5, -1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCOO(%d, %d) did not panic", dims[0], dims[1])
				}
			}()
			NewCOO(dims[0], dims[1])
		}()
	}
}

func TestCOOAddPanicsOutOfRange(t *testing.T) {
	c := NewCOO(3, 4)
	for _, p := range [][2]int{{-1, 0}, {3, 0}, {0, -1}, {0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d, %d) did not panic", p[0], p[1])
				}
			}()
			c.Add(p[0], p[1], 1)
		}()
	}
}

func TestCOOFinalizeSortsRowMajor(t *testing.T) {
	c := NewCOO(4, 4)
	c.Add(3, 1, 1)
	c.Add(0, 2, 2)
	c.Add(3, 0, 3)
	c.Add(0, 0, 4)
	c.Add(2, 3, 5)
	c.Finalize()
	want := [][3]float64{{0, 0, 4}, {0, 2, 2}, {2, 3, 5}, {3, 0, 3}, {3, 1, 1}}
	if c.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(want))
	}
	for k, w := range want {
		i, j, v := c.At(k)
		if float64(i) != w[0] || float64(j) != w[1] || v != w[2] {
			t.Errorf("entry %d = (%d,%d,%v), want (%v,%v,%v)", k, i, j, v, w[0], w[1], w[2])
		}
	}
}

func TestCOOFinalizeFoldsDuplicates(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(1, 1, 1.5)
	c.Add(1, 1, 2.5)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1)
	c.Finalize()
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	i, j, v := c.At(1)
	if i != 1 || j != 1 || v != 3.0 {
		t.Errorf("folded entry = (%d,%d,%v), want (1,1,3)", i, j, v)
	}
}

func TestCOOFinalizeIdempotent(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 1, 2)
	c.Add(1, 0, 3)
	c.Finalize()
	n := c.Len()
	c.Finalize()
	if c.Len() != n {
		t.Errorf("second Finalize changed Len: %d -> %d", n, c.Len())
	}
	if !c.Finalized() {
		t.Error("Finalized() = false after Finalize")
	}
}

func TestCOOAddResetsFinalized(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Finalize()
	c.Add(1, 1, 1)
	if c.Finalized() {
		t.Error("Finalized() = true after Add")
	}
}

func TestCOOUnfinalizedOpsPanic(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	for name, f := range map[string]func(){
		"RowCounts": func() { c.RowCounts() },
		"Transpose": func() { c.Transpose() },
		"SpMV":      func() { c.SpMV(make([]float64, 2), make([]float64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on unfinalized COO did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCOORowCounts(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(0, 1, 1)
	c.Add(2, 2, 1)
	c.Finalize()
	got := c.RowCounts()
	want := []int{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RowCounts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCOOTranspose(t *testing.T) {
	c := RandomCOO(rand.New(rand.NewSource(1)), 13, 7, 40)
	tr := c.Transpose()
	if tr.Rows() != 7 || tr.Cols() != 13 {
		t.Fatalf("transpose dims = %dx%d, want 7x13", tr.Rows(), tr.Cols())
	}
	d := DenseFromCOO(c)
	dt := DenseFromCOO(tr)
	for i := 0; i < d.R; i++ {
		for j := 0; j < d.C; j++ {
			if d.At(i, j) != dt.At(j, i) {
				t.Fatalf("A[%d,%d]=%v but A^T[%d,%d]=%v", i, j, d.At(i, j), j, i, dt.At(j, i))
			}
		}
	}
}

func TestCOOTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCOO(rng, 1+rng.Intn(20), 1+rng.Intn(20), 30)
		tt := c.Transpose().Transpose()
		if tt.Len() != c.Len() {
			return false
		}
		for k := 0; k < c.Len(); k++ {
			i1, j1, v1 := c.At(k)
			i2, j2, v2 := tt.At(k)
			if i1 != i2 || j1 != j2 || v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCOOClone(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Finalize()
	cl := c.Clone()
	cl.Add(1, 1, 5)
	if c.Len() != 1 {
		t.Error("Clone shares storage with original")
	}
	if !c.Finalized() {
		t.Error("original lost finalized state")
	}
}

func TestCOOSpMVMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, cc := 1+rng.Intn(30), 1+rng.Intn(30)
		c := RandomCOO(rng, r, cc, 2*r)
		d := DenseFromCOO(c)
		x := randVec(rng, cc)
		y1 := make([]float64, r)
		y2 := make([]float64, r)
		c.SpMV(y1, x)
		d.SpMV(y2, x)
		return maxAbsDiff(y1, y2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// RandomCOO builds a finalized random matrix with about n entries
// (duplicates fold). Exported to sibling test files in this package only.
func RandomCOO(rng *rand.Rand, rows, cols, n int) *COO {
	c := NewCOO(rows, cols)
	for k := 0; k < n; k++ {
		c.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
	}
	c.Finalize()
	return c
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

func TestAddCOO(t *testing.T) {
	a := NewCOO(2, 2)
	a.Add(0, 0, 1)
	a.Add(1, 1, 2)
	a.Finalize()
	b := NewCOO(2, 2)
	b.Add(0, 0, 3)
	b.Add(0, 1, 4)
	b.Finalize()
	s := a.AddCOO(b)
	d := DenseFromCOO(s)
	if d.At(0, 0) != 4 || d.At(0, 1) != 4 || d.At(1, 1) != 2 {
		t.Errorf("sum = %v", d.V)
	}
	// Shape mismatch panics.
	c := NewCOO(3, 2)
	c.Finalize()
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	a.AddCOO(c)
}

func TestScaleAndEqual(t *testing.T) {
	a := NewCOO(2, 2)
	a.Add(0, 1, 2)
	a.Finalize()
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Scale(0.5)
	if a.Equal(b) {
		t.Error("scaled matrix still equal")
	}
	_, _, v := b.At(0)
	if v != 1 {
		t.Errorf("scaled value = %v", v)
	}
	c := NewCOO(2, 3)
	c.Finalize()
	if a.Equal(c) {
		t.Error("different shapes equal")
	}
}

func TestPrune(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(0, 1, 1e-15)
	c.Add(1, 1, -1e-15)
	c.Add(2, 2, -2)
	c.Add(1, 0, 0)
	c.Finalize()
	removed := c.Prune(1e-12)
	if removed != 3 {
		t.Errorf("removed = %d, want 3", removed)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	if !c.Finalized() {
		t.Error("Prune lost finalized state")
	}
	// NaN values are never pruned (comparisons fail).
	n := NewCOO(1, 1)
	n.Add(0, 0, math.NaN())
	n.Finalize()
	if n.Prune(1) != 0 {
		t.Error("NaN pruned")
	}
}
