package core

// NNZChunk is a half-open range of a matrix's stored non-zeros,
// processed by one worker of the multithreaded runtime. Unlike Chunk,
// whose boundaries sit on row edges, an NNZChunk's boundaries may fall
// mid-row: a single row longer than nnz/parts — the pathology that
// defeats row-granular balancing — is split across several chunks.
//
// Rows owned entirely by one chunk are written to y directly, exactly
// as with row partitioning. The at-most-two boundary rows a chunk
// shares with its neighbours are privatized instead: each chunk
// accumulates its piece of a shared row into its own partial slots, and
// the scheduler runs a fix-up pass summing the pieces into y after the
// parallel region — O(parts) work, no atomics in the kernel.
type NNZChunk interface {
	// NNZRange returns the half-open stored-non-zero interval [lo, hi)
	// this chunk owns.
	NNZRange() (lo, hi int)
	// RowRange returns the half-open row interval the chunk touches.
	// The first and last rows may be shared with neighbouring chunks;
	// all rows strictly inside the interval are exclusively owned.
	RowRange() (lo, hi int)
	// NNZ is the chunk's stored-non-zero count (its load weight).
	NNZ() int
	// Boundary returns the indices of the rows this chunk shares with
	// its neighbours: head is the partially-owned first row, tail the
	// partially-owned last row, -1 when the respective edge lands on a
	// row boundary. A chunk lying strictly inside one row reports
	// head == tail and uses only its head partial slot.
	Boundary() (head, tail int)
	// SpMVPartial computes the chunk's share of y = A*x: fully-owned
	// rows are written to y (and only those — shared rows are left
	// untouched), while the head and tail boundary pieces are written
	// to partial[0] and partial[1]. Both slots are always stored, so
	// the caller need not clear them. len(partial) >= 2.
	SpMVPartial(y, x, partial []float64)
}

// NNZSplitter is implemented by formats that support non-zero-granular
// partitioning: boundaries are placed every nnz/parts stored elements
// regardless of row structure, so the static imbalance is bounded by
// one element per part even under extreme row-length skew. The
// scheduler pairs it with a fix-up pass over the split rows (see
// NNZChunk).
type NNZSplitter interface {
	// SplitNNZ partitions the matrix's stored non-zeros into at most n
	// chunks of nearly equal count. Chunks are ordered by non-zero
	// range and cover all stored non-zeros exactly once; fewer than n
	// chunks are returned when the matrix holds fewer non-zeros.
	SplitNNZ(n int) []NNZChunk
}
