package core

import (
	"errors"
	"testing"
)

func TestSentinelWrapping(t *testing.T) {
	cases := []struct {
		err  error
		want error
	}{
		{Corruptf("bad opcode %d", 7), ErrCorrupt},
		{Truncatedf("varint at %d", 3), ErrTruncated},
		{Shapef("%d != %d", 1, 2), ErrShape},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("errors.Is(%v, %v) = false", c.err, c.want)
		}
	}
	if errors.Is(Corruptf("x"), ErrTruncated) {
		t.Error("ErrCorrupt matched ErrTruncated")
	}
}

func TestCheckRowPtr(t *testing.T) {
	if err := CheckRowPtr([]int32{0, 2, 2, 5}, 5); err != nil {
		t.Errorf("valid row ptr rejected: %v", err)
	}
	if err := CheckRowPtr(nil, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty row ptr: got %v, want ErrTruncated", err)
	}
	if err := CheckRowPtr([]int32{1, 2}, 2); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nonzero start: got %v, want ErrCorrupt", err)
	}
	if err := CheckRowPtr([]int32{0, 3, 2}, 2); !errors.Is(err, ErrCorrupt) {
		t.Errorf("non-monotone: got %v, want ErrCorrupt", err)
	}
	if err := CheckRowPtr([]int32{0, 2, 4}, 5); !errors.Is(err, ErrShape) {
		t.Errorf("wrong span: got %v, want ErrShape", err)
	}
}

func TestCheckColInd(t *testing.T) {
	if err := CheckColInd([]int32{0, 4, 2}, 5); err != nil {
		t.Errorf("valid col ind rejected: %v", err)
	}
	if err := CheckColInd([]int32{0, 5}, 5); !errors.Is(err, ErrCorrupt) {
		t.Errorf("out-of-range col: got %v, want ErrCorrupt", err)
	}
	if err := CheckColInd([]int32{-1}, 5); !errors.Is(err, ErrCorrupt) {
		t.Errorf("negative col: got %v, want ErrCorrupt", err)
	}
}

// verifierFake extends workingset_test's fakeFormat with a Verifier.
type verifierFake struct {
	fakeFormat
	err error
}

func (v verifierFake) Verify() error { return v.err }

func TestVerifyDispatch(t *testing.T) {
	want := Corruptf("fake")
	if got := Verify(verifierFake{err: want}); !errors.Is(got, ErrCorrupt) {
		t.Errorf("Verify on Verifier = %v", got)
	}
	if got := Verify(fakeFormat{}); got != nil {
		t.Errorf("Verify on non-Verifier = %v, want nil", got)
	}
}

func TestCheckVectors(t *testing.T) {
	f := fakeFormat{rows: 3, cols: 4}
	if err := CheckVectors(f, make([]float64, 3), make([]float64, 4)); err != nil {
		t.Errorf("exact lengths rejected: %v", err)
	}
	if err := CheckVectors(f, make([]float64, 2), make([]float64, 4)); !errors.Is(err, ErrShape) {
		t.Errorf("short y: got %v, want ErrShape", err)
	}
	if err := CheckVectors(f, make([]float64, 3), make([]float64, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("short x: got %v, want ErrShape", err)
	}
}
