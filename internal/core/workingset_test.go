package core

import "testing"

func TestCSRBytesFormula(t *testing.T) {
	// Fig 1 example: 6x6 matrix, 16 nnz, 4-byte indices, 8-byte values.
	// values: 16*8, col_ind: 16*4, row_ptr: 7*4.
	got := CSRBytes(6, 16, 4, 8)
	want := int64(16*8 + 16*4 + 7*4)
	if got != want {
		t.Errorf("CSRBytes = %d, want %d", got, want)
	}
}

func TestWorkingSetFormula(t *testing.T) {
	// ws = csr_size + (nrows+ncols)*val_s   (paper §II-B)
	got := WorkingSet(6, 6, 16)
	want := CSRBytes(6, 16, IdxSize, ValSize) + 12*8
	if got != want {
		t.Errorf("WorkingSet = %d, want %d", got, want)
	}
}

func TestValueDataDominates(t *testing.T) {
	// With 4-byte indices and 8-byte values, values are 2/3 of the
	// col_ind+values portion (paper §II-B).
	nnz := 1_000_000
	valPart := int64(nnz) * ValSize
	colPart := int64(nnz) * IdxSize
	frac := float64(valPart) / float64(valPart+colPart)
	if frac < 0.666 || frac > 0.667 {
		t.Errorf("value fraction = %v, want 2/3", frac)
	}
}

type fakeFormat struct {
	rows, cols, nnz int
	size            int64
}

func (f fakeFormat) Name() string        { return "fake" }
func (f fakeFormat) Rows() int           { return f.rows }
func (f fakeFormat) Cols() int           { return f.cols }
func (f fakeFormat) NNZ() int            { return f.nnz }
func (f fakeFormat) SizeBytes() int64    { return f.size }
func (f fakeFormat) SpMV(y, x []float64) {}

func TestCompressionRatio(t *testing.T) {
	f := fakeFormat{rows: 100, cols: 100, nnz: 1000, size: CSRBytes(100, 1000, IdxSize, ValSize) / 2}
	r := CompressionRatio(f)
	if r < 0.49 || r > 0.51 {
		t.Errorf("CompressionRatio = %v, want ~0.5", r)
	}
}

func TestWorkingSetOf(t *testing.T) {
	f := fakeFormat{rows: 10, cols: 20, nnz: 5, size: 1000}
	got := WorkingSetOf(f)
	want := int64(1000) + 30*8
	if got != want {
		t.Errorf("WorkingSetOf = %d, want %d", got, want)
	}
}
