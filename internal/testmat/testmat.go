// Package testmat provides shared conformance checks for Format
// implementations: every storage scheme's test suite runs the same
// correctness battery (SpMV vs dense reference, Split invariants,
// parallel-equals-serial, trace sanity) over the same corpus of tricky
// matrices, so a new format gets full coverage by calling two functions.
package testmat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

// Builder constructs a format from a finalized COO (the signature all
// format constructors share).
type Builder func(c *core.COO) (core.Format, error)

// Case is one corpus matrix.
type Case struct {
	Name string
	COO  *core.COO
}

// Corpus returns the standard battery of matrices exercising the edge
// cases formats must handle: empty rows, single elements, full rows,
// huge column jumps, long dense runs, duplicate-heavy assembly, skewed
// row lengths, and low-unique-value matrices.
func Corpus() []Case {
	rng := rand.New(rand.NewSource(20080415)) // ICPP'08 submission-era seed
	var cases []Case
	add := func(name string, c *core.COO) { cases = append(cases, Case{name, c}) }

	add("empty", emptyCOO(5, 7))
	add("single", singleEntry(6, 6, 3, 4, 2.5))
	add("diag", diag(17))
	add("dense-row", denseRow(9, 33))
	add("empty-rows-mixed", emptyRowsMixed(rng))
	add("first-last-col", firstLastCol(40))
	add("one-row", oneRow(rng, 300))
	add("one-col", oneCol(rng, 300))
	add("stencil5", matgen.Stencil2D(13))
	add("stencil9", matgen.Stencil2D9(9))
	add("banded", matgen.Banded(rng, 250, 7, 6, matgen.Values{}))
	add("banded-unique8", matgen.Banded(rng, 250, 7, 6, matgen.Values{Unique: 8}))
	add("random", matgen.RandomUniform(rng, 180, 260, 7, matgen.Values{}))
	add("random-wide", matgen.RandomUniform(rng, 50, 5000, 9, matgen.Values{}))
	add("powerlaw", matgen.PowerLaw(rng, 400, 6, 0.8, matgen.Values{}))
	add("blockdiag", matgen.BlockDiag(rng, 12, 5, matgen.Values{Unique: 3}))
	add("femlike", matgen.FEMLike(rng, 220, 5, matgen.Values{Unique: 50}))
	add("long-rows-255plus", longRows(rng, 8, 700))
	return cases
}

func emptyCOO(r, c int) *core.COO {
	m := core.NewCOO(r, c)
	m.Finalize()
	return m
}

func singleEntry(r, c, i, j int, v float64) *core.COO {
	m := core.NewCOO(r, c)
	m.Add(i, j, v)
	m.Finalize()
	return m
}

func diag(n int) *core.COO {
	m := core.NewCOO(n, n)
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(i+1))
	}
	m.Finalize()
	return m
}

func denseRow(rows, cols int) *core.COO {
	m := core.NewCOO(rows, cols)
	for j := 0; j < cols; j++ {
		m.Add(rows/2, j, float64(j)-3.5)
	}
	m.Add(0, 0, 1)
	m.Finalize()
	return m
}

func emptyRowsMixed(rng *rand.Rand) *core.COO {
	m := core.NewCOO(60, 60)
	for i := 0; i < 60; i += 3 { // rows ≡ 1,2 mod 3 stay empty
		for k := 0; k < 4; k++ {
			m.Add(i, rng.Intn(60), rng.NormFloat64())
		}
	}
	m.Finalize()
	return m
}

func firstLastCol(n int) *core.COO {
	m := core.NewCOO(n, n)
	for i := 0; i < n; i++ {
		m.Add(i, 0, 1.5)
		m.Add(i, n-1, -2.5) // max column jump in every row
	}
	m.Finalize()
	return m
}

func oneRow(rng *rand.Rand, n int) *core.COO {
	m := core.NewCOO(1, n)
	for j := 0; j < n; j += 1 + rng.Intn(3) {
		m.Add(0, j, rng.NormFloat64())
	}
	m.Finalize()
	return m
}

func oneCol(rng *rand.Rand, n int) *core.COO {
	m := core.NewCOO(n, 1)
	for i := 0; i < n; i += 1 + rng.Intn(2) {
		m.Add(i, 0, rng.NormFloat64())
	}
	m.Finalize()
	return m
}

// longRows builds rows longer than 255 nnz to exercise CSR-DU's 1-byte
// usize limit (units must split within a row).
func longRows(rng *rand.Rand, rows, perRow int) *core.COO {
	m := core.NewCOO(rows, 4*perRow)
	for i := 0; i < rows; i++ {
		for k := 0; k < perRow; k++ {
			m.Add(i, rng.Intn(4*perRow), rng.NormFloat64())
		}
	}
	m.Finalize()
	return m
}

// CheckFormat runs the full conformance battery for one format builder.
func CheckFormat(t *testing.T, build Builder) {
	t.Helper()
	for _, tc := range Corpus() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			f, err := build(tc.COO)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			checkMeta(t, f, tc.COO)
			checkSpMV(t, f, tc.COO)
			checkBatch(t, f, tc.COO)
			if s, ok := f.(core.Splitter); ok {
				checkSplit(t, f, s, tc.COO)
			}
			if p, ok := f.(core.Placer); ok {
				checkTrace(t, f, p)
			}
		})
	}
}

func checkMeta(t *testing.T, f core.Format, c *core.COO) {
	t.Helper()
	if f.Rows() != c.Rows() || f.Cols() != c.Cols() {
		t.Errorf("dims = %dx%d, want %dx%d", f.Rows(), f.Cols(), c.Rows(), c.Cols())
	}
	if f.NNZ() != c.Len() {
		t.Errorf("NNZ = %d, want %d", f.NNZ(), c.Len())
	}
	if f.SizeBytes() < 0 {
		t.Errorf("SizeBytes = %d", f.SizeBytes())
	}
	if f.Name() == "" {
		t.Error("empty Name")
	}
}

func checkSpMV(t *testing.T, f core.Format, c *core.COO) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	d := core.DenseFromCOO(c)
	x := RandVec(rng, c.Cols())
	want := make([]float64, c.Rows())
	d.SpMV(want, x)

	// y must be fully overwritten: poison it first.
	got := make([]float64, c.Rows())
	for i := range got {
		got[i] = math.NaN()
	}
	f.SpMV(got, x)
	AssertClose(t, "SpMV", got, want, 1e-10)

	if fa, ok := f.(core.SpMVAdd); ok {
		acc := RandVec(rng, c.Rows())
		wantAcc := make([]float64, c.Rows())
		copy(wantAcc, acc)
		for i := range wantAcc {
			wantAcc[i] += want[i]
		}
		fa.SpMVAdd(acc, x)
		AssertClose(t, "SpMVAdd", acc, wantAcc, 1e-10)
	}
}

// checkBatch verifies the batched path (core.SpMVBatch: the format's
// fused kernel when it implements core.BatchFormat, the per-column
// fallback otherwise) against the dense reference, including the
// bitwise k=1 contract and the batched chunk kernels.
func checkBatch(t *testing.T, f core.Format, c *core.COO) {
	t.Helper()
	rng := rand.New(rand.NewSource(101))
	d := core.DenseFromCOO(c)
	rows, cols := c.Rows(), c.Cols()

	// k = 1: the panel degenerates to the vector, and the contract is
	// bitwise equality with the scalar kernel.
	x1 := RandVec(rng, cols)
	wantScalar := make([]float64, rows)
	f.SpMV(wantScalar, x1)
	got1 := make([]float64, rows)
	for i := range got1 {
		got1[i] = math.NaN()
	}
	core.SpMVBatch(f, got1, x1, 1)
	for i := range got1 {
		if !core.SameBits(got1[i], wantScalar[i]) {
			t.Fatalf("SpMVBatch k=1: element %d = %v, scalar SpMV = %v (must match bitwise)",
				i, got1[i], wantScalar[i])
		}
	}

	for _, k := range []int{2, 3, 4, 8} {
		x := RandVec(rng, cols*k)
		want := batchReference(d, x, k)
		got := make([]float64, rows*k)
		for i := range got {
			got[i] = math.NaN()
		}
		core.SpMVBatch(f, got, x, k)
		AssertClose(t, fmt.Sprintf("SpMVBatch k=%d", k), got, want, 1e-10)

		// Batched chunk kernels: running every chunk must reproduce the
		// full panel (rows no chunk covers are the executor's to zero).
		s, ok := f.(core.Splitter)
		if !ok {
			continue
		}
		chunks := s.Split(3)
		batched := len(chunks) > 0
		for _, ch := range chunks {
			if _, ok := ch.(core.BatchChunk); !ok {
				batched = false
			}
		}
		if !batched {
			continue
		}
		cgot := make([]float64, rows*k)
		for i := range cgot {
			cgot[i] = math.NaN()
		}
		covered := make([]bool, rows)
		for _, ch := range chunks {
			ch.(core.BatchChunk).SpMVBatch(cgot, x, k)
			lo, hi := ch.RowRange()
			for i := lo; i < hi; i++ {
				covered[i] = true
			}
		}
		for i := range covered {
			if covered[i] {
				continue
			}
			for cc := 0; cc < k; cc++ {
				if !core.IsZero(want[i*k+cc]) {
					t.Fatalf("Split batch k=%d: uncovered row %d has non-zero result", k, i)
				}
				cgot[i*k+cc] = 0
			}
		}
		AssertClose(t, fmt.Sprintf("chunked SpMVBatch k=%d", k), cgot, want, 1e-10)
	}
}

// batchReference computes the dense reference panel column by column.
func batchReference(d *core.Dense, x []float64, k int) []float64 {
	want := make([]float64, d.R*k)
	xc := make([]float64, d.C)
	yc := make([]float64, d.R)
	for c := 0; c < k; c++ {
		for j := range xc {
			xc[j] = x[j*k+c]
		}
		d.SpMV(yc, xc)
		for i, v := range yc {
			want[i*k+c] = v
		}
	}
	return want
}

func checkSplit(t *testing.T, f core.Format, s core.Splitter, c *core.COO) {
	t.Helper()
	rng := rand.New(rand.NewSource(100))
	d := core.DenseFromCOO(c)
	x := RandVec(rng, c.Cols())
	want := make([]float64, c.Rows())
	d.SpMV(want, x)

	for _, n := range []int{1, 2, 3, 8, 64} {
		chunks := s.Split(n)
		if len(chunks) > n {
			t.Fatalf("Split(%d) returned %d chunks", n, len(chunks))
		}
		// Chunks are ordered, disjoint, and cover all non-empty rows.
		next := 0
		total := 0
		for _, ch := range chunks {
			lo, hi := ch.RowRange()
			if lo < next || hi <= lo || hi > c.Rows() {
				t.Fatalf("Split(%d): bad chunk range [%d,%d) after %d", n, lo, hi, next)
			}
			next = hi
			total += ch.NNZ()
		}
		if total != c.Len() {
			t.Fatalf("Split(%d): chunk NNZs sum to %d, want %d", n, total, c.Len())
		}
		// Running every chunk serially must reproduce the full SpMV.
		got := make([]float64, c.Rows())
		for i := range got {
			got[i] = math.NaN()
		}
		for _, ch := range chunks {
			ch.SpMV(got, x)
		}
		// Rows not covered by any chunk (all-empty tail) stay NaN; the
		// executor zeroes those. Zero them here the same way.
		covered := make([]bool, c.Rows())
		for _, ch := range chunks {
			lo, hi := ch.RowRange()
			for i := lo; i < hi; i++ {
				covered[i] = true
			}
		}
		for i := range got {
			if !covered[i] {
				if !core.IsZero(want[i]) {
					t.Fatalf("Split(%d): uncovered row %d has non-zero result", n, i)
				}
				got[i] = 0
			}
		}
		AssertClose(t, "chunked SpMV", got, want, 1e-10)
	}
}

func checkTrace(t *testing.T, f core.Format, p core.Placer) {
	t.Helper()
	s, ok := f.(core.Splitter)
	if !ok {
		return
	}
	a := core.NewArena()
	p.Place(a)
	xBase := a.Alloc(int64(f.Cols()) * 8)
	yBase := a.Alloc(int64(f.Rows()) * 8)
	var accesses, writes, xGathers int
	for _, ch := range s.Split(3) {
		tr, ok := ch.(core.Tracer)
		if !ok {
			t.Fatalf("format %s is a Placer but chunk is not a Tracer", f.Name())
		}
		tr.TraceSpMV(xBase, yBase, func(acc core.Access) {
			accesses++
			if acc.Write {
				writes++
			}
			if acc.Addr >= xBase && acc.Addr < xBase+uint64(f.Cols())*8 {
				xGathers++
			}
			if acc.Size == 0 {
				t.Error("zero-size access")
			}
		})
	}
	if f.NNZ() > 0 {
		// Gather formats emit one x access per stored element; streaming
		// formats (CDS) legitimately coalesce x to cache lines. Require
		// only that x is touched at all — exact per-nnz counts are
		// asserted in the gather formats' own tests.
		if xGathers == 0 {
			t.Error("trace emitted no x accesses")
		}
		if writes == 0 {
			t.Error("trace emitted no writes (y stores missing)")
		}
	}
	if f.NNZ() == 0 && accesses > f.Rows()+2 {
		t.Errorf("empty matrix traced %d accesses", accesses)
	}
}

// RandVec returns a deterministic random vector.
func RandVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// AssertClose fails if any |got-want| exceeds tol·(1+|want|).
func AssertClose(t *testing.T, what string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		diff := math.Abs(got[i] - want[i])
		if diff > tol*(1+math.Abs(want[i])) || math.IsNaN(got[i]) {
			t.Fatalf("%s: element %d = %v, want %v (diff %v)", what, i, got[i], want[i], diff)
		}
	}
}
