package solver

import (
	"math"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrvi"
	"spmv/internal/matgen"
	"spmv/internal/parallel"
	"spmv/internal/testmat"
)

func poissonOp(t *testing.T, n int) (Operator, *core.COO) {
	t.Helper()
	c := matgen.Stencil2D(n)
	f, err := csr.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	op, err := FromFormat(f)
	if err != nil {
		t.Fatal(err)
	}
	return op, c
}

func residual(c *core.COO, x, b []float64) float64 {
	ax := make([]float64, c.Rows())
	c.SpMV(ax, x)
	s, nb := 0.0, 0.0
	for i := range ax {
		d := b[i] - ax[i]
		s += d * d
		nb += b[i] * b[i]
	}
	if nb == 0 {
		nb = 1
	}
	return math.Sqrt(s / nb)
}

func TestCGSolvesPoisson(t *testing.T) {
	op, c := poissonOp(t, 16)
	rng := rand.New(rand.NewSource(1))
	b := testmat.RandVec(rng, op.N)
	x := make([]float64, op.N)
	res, err := CG(op, b, x, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	if r := residual(c, x, b); r > 1e-8 {
		t.Errorf("true residual = %v", r)
	}
}

func TestCGZeroRHS(t *testing.T) {
	op, _ := poissonOp(t, 8)
	x := make([]float64, op.N)
	res, err := CG(op, make([]float64, op.N), x, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("zero RHS: %+v", res)
	}
}

func TestCGWarmStartFasterThanCold(t *testing.T) {
	op, _ := poissonOp(t, 12)
	rng := rand.New(rand.NewSource(2))
	b := testmat.RandVec(rng, op.N)
	cold := make([]float64, op.N)
	resCold, _ := CG(op, b, cold, 1e-10, 2000)
	// Warm start from the solution: should converge immediately.
	resWarm, _ := CG(op, b, cold, 1e-10, 2000)
	if resWarm.Iterations > 1 {
		t.Errorf("warm start took %d iterations", resWarm.Iterations)
	}
	if resCold.Iterations < 5 {
		t.Errorf("cold start suspiciously fast: %d", resCold.Iterations)
	}
}

func TestCGBreakdownOnIndefinite(t *testing.T) {
	// -I is negative definite: CG must report breakdown, not loop.
	c := core.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, -1)
	}
	c.Finalize()
	f, _ := csr.FromCOO(c)
	op, _ := FromFormat(f)
	b := []float64{1, 2, 3, 4}
	x := make([]float64, 4)
	if _, err := CG(op, b, x, 1e-10, 100); err == nil {
		t.Error("no breakdown error on negative definite matrix")
	}
}

func TestPCGBeatsOrMatchesCG(t *testing.T) {
	// Scale the Poisson rows to make Jacobi meaningful.
	n := 14
	c := matgen.Stencil2D(n)
	scaled := core.NewCOO(c.Rows(), c.Cols())
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		scale := 1.0 + 10*float64(i%7)
		scaled.Add(i, j, v*scale)
	}
	// Symmetrize to keep SPD: A' = D*A is not symmetric, so build
	// D^(1/2) A D^(1/2) instead.
	scaled = core.NewCOO(c.Rows(), c.Cols())
	d := func(i int) float64 { return math.Sqrt(1.0 + 10*float64(i%7)) }
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		scaled.Add(i, j, v*d(i)*d(j))
	}
	scaled.Finalize()
	f, _ := csr.FromCOO(scaled)
	op, _ := FromFormat(f)
	invD, err := InvDiag(scaled)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b := testmat.RandVec(rng, op.N)

	x1 := make([]float64, op.N)
	plain, err := CG(op, b, x1, 1e-8, 5000)
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, op.N)
	pre, err := PCG(op, invD, b, x2, 1e-8, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !pre.Converged {
		t.Fatalf("convergence: plain %+v, pcg %+v", plain, pre)
	}
	if pre.Iterations > plain.Iterations {
		t.Errorf("PCG (%d iters) worse than CG (%d iters) on badly scaled system",
			pre.Iterations, plain.Iterations)
	}
}

func TestInvDiagErrors(t *testing.T) {
	c := core.NewCOO(2, 3)
	c.Finalize()
	if _, err := InvDiag(c); err == nil {
		t.Error("non-square accepted")
	}
	c2 := core.NewCOO(2, 2)
	c2.Add(0, 0, 1)
	c2.Finalize()
	if _, err := InvDiag(c2); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestGMRESSolvesNonsymmetric(t *testing.T) {
	// Convection-diffusion-like: Poisson plus an asymmetric shift.
	n := 12
	c := matgen.Stencil2D(n)
	ns := core.NewCOO(c.Rows(), c.Cols())
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		if j == i+1 {
			v += 0.3 // convection term breaks symmetry
		}
		ns.Add(i, j, v)
	}
	ns.Finalize()
	f, _ := csr.FromCOO(ns)
	op, _ := FromFormat(f)
	rng := rand.New(rand.NewSource(4))
	b := testmat.RandVec(rng, op.N)
	x := make([]float64, op.N)
	res, err := GMRES(op, b, x, 30, 1e-9, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("GMRES did not converge: %+v", res)
	}
	if r := residual(ns, x, b); r > 1e-7 {
		t.Errorf("true residual = %v", r)
	}
}

func TestGMRESIdentityOneIteration(t *testing.T) {
	c := core.NewCOO(5, 5)
	for i := 0; i < 5; i++ {
		c.Add(i, i, 1)
	}
	c.Finalize()
	f, _ := csr.FromCOO(c)
	op, _ := FromFormat(f)
	b := []float64{1, 2, 3, 4, 5}
	x := make([]float64, 5)
	res, err := GMRES(op, b, x, 5, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 1 {
		t.Errorf("identity solve: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-b[i]) > 1e-10 {
			t.Errorf("x[%d] = %v", i, x[i])
		}
	}
}

func TestGMRESBadArgs(t *testing.T) {
	op, _ := poissonOp(t, 4)
	b := make([]float64, op.N)
	x := make([]float64, op.N)
	if _, err := GMRES(op, b, x, 0, 1e-9, 10); err == nil {
		t.Error("restart 0 accepted")
	}
	if _, err := GMRES(op, b[:2], x, 5, 1e-9, 10); err == nil {
		t.Error("short b accepted")
	}
}

func TestFromFormatRejectsRectangular(t *testing.T) {
	c := core.NewCOO(3, 4)
	c.Add(0, 0, 1)
	c.Finalize()
	f, _ := csr.FromCOO(c)
	if _, err := FromFormat(f); err == nil {
		t.Error("rectangular accepted")
	}
}

func TestCGSameAnswerAcrossFormats(t *testing.T) {
	// The solver must be format-agnostic: CSR, CSR-DU and CSR-VI give
	// the same iterates (bitwise-identical kernels up to fp ordering,
	// which is identical here since all traverse row-major).
	c := matgen.Stencil2D(10)
	rng := rand.New(rand.NewSource(5))
	b := testmat.RandVec(rng, c.Rows())
	solve := func(f core.Format) []float64 {
		op, err := FromFormat(f)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, op.N)
		res, err := CG(op, b, x, 1e-10, 2000)
		if err != nil || !res.Converged {
			t.Fatalf("solve failed: %v %+v", err, res)
		}
		return x
	}
	x1 := solve(mustF(csr.FromCOO(c)))
	x2 := solve(mustF(csrdu.FromCOO(c)))
	x3 := solve(mustF(csrvi.FromCOO(c)))
	testmat.AssertClose(t, "du vs csr", x2, x1, 1e-8)
	testmat.AssertClose(t, "vi vs csr", x3, x1, 1e-8)
}

func mustF(f core.Format, err error) core.Format {
	if err != nil {
		panic(err)
	}
	return f
}

func TestCGWithParallelExecutor(t *testing.T) {
	c := matgen.Stencil2D(14)
	f, _ := csr.FromCOO(c)
	e, err := parallel.NewExecutor(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	op := FromRunner(e, f.Rows())
	rng := rand.New(rand.NewSource(6))
	b := testmat.RandVec(rng, op.N)
	x := make([]float64, op.N)
	res, err := CG(op, b, x, 1e-10, 2000)
	if err != nil || !res.Converged {
		t.Fatalf("parallel CG: %v %+v", err, res)
	}
	if r := residual(c, x, b); r > 1e-8 {
		t.Errorf("true residual = %v", r)
	}
}
