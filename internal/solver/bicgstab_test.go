package solver

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func convectionDiffusion(t *testing.T, n int) (*core.COO, Operator) {
	t.Helper()
	c := matgen.Stencil2D(n)
	ns := core.NewCOO(c.Rows(), c.Cols())
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		if j == i+1 {
			v += 0.4
		}
		if j == i-1 {
			v -= 0.2
		}
		ns.Add(i, j, v)
	}
	ns.Finalize()
	f, _ := csr.FromCOO(ns)
	op, err := FromFormat(f)
	if err != nil {
		t.Fatal(err)
	}
	return ns, op
}

func TestBiCGSTABSolvesNonsymmetric(t *testing.T) {
	c, op := convectionDiffusion(t, 14)
	rng := rand.New(rand.NewSource(1))
	b := testmat.RandVec(rng, op.N)
	x := make([]float64, op.N)
	res, err := BiCGSTAB(op, b, x, 1e-10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if r := residual(c, x, b); r > 1e-8 {
		t.Errorf("true residual = %v", r)
	}
}

func TestBiCGSTABAgreesWithGMRES(t *testing.T) {
	_, op := convectionDiffusion(t, 10)
	rng := rand.New(rand.NewSource(2))
	b := testmat.RandVec(rng, op.N)
	x1 := make([]float64, op.N)
	x2 := make([]float64, op.N)
	if _, err := BiCGSTAB(op, b, x1, 1e-11, 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := GMRES(op, b, x2, 40, 1e-11, 5000); err != nil {
		t.Fatal(err)
	}
	testmat.AssertClose(t, "bicgstab vs gmres", x1, x2, 1e-7)
}

func TestBiCGSTABZeroRHS(t *testing.T) {
	_, op := convectionDiffusion(t, 6)
	x := make([]float64, op.N)
	res, err := BiCGSTAB(op, make([]float64, op.N), x, 1e-12, 100)
	if err != nil || !res.Converged || res.Iterations != 0 {
		t.Errorf("zero RHS: %v %+v", err, res)
	}
}

func TestBiCGSTABBadArgs(t *testing.T) {
	_, op := convectionDiffusion(t, 4)
	if _, err := BiCGSTAB(op, make([]float64, 2), make([]float64, op.N), 1e-9, 10); err == nil {
		t.Error("short b accepted")
	}
}

func TestSpMVTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := matgen.RandomUniform(rng, 40, 70, 5, matgen.Values{})
	m, _ := csr.FromCOO(c)
	mt, _ := csr.FromCOO(c.Transpose())
	x := testmat.RandVec(rng, 40)
	y1 := make([]float64, 70)
	y2 := make([]float64, 70)
	m.SpMVT(y1, x)
	mt.SpMV(y2, x)
	testmat.AssertClose(t, "SpMVT", y1, y2, 1e-12)
}

func TestSpMMMatchesRepeatedSpMV(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := matgen.FEMLike(rng, 120, 5, matgen.Values{})
	m, _ := csr.FromCOO(c)
	for _, k := range []int{1, 3, 4, 7} {
		x := testmat.RandVec(rng, m.Cols()*k)
		y := make([]float64, m.Rows()*k)
		m.SpMM(y, x, k)
		// Compare column c against a plain SpMV.
		for col := 0; col < k; col++ {
			xc := make([]float64, m.Cols())
			for j := range xc {
				xc[j] = x[j*k+col]
			}
			want := make([]float64, m.Rows())
			m.SpMV(want, xc)
			got := make([]float64, m.Rows())
			for i := range got {
				got[i] = y[i*k+col]
			}
			testmat.AssertClose(t, "SpMM column", got, want, 1e-12)
		}
	}
}

func TestSpMMPanicsOnBadK(t *testing.T) {
	c := matgen.Stencil2D(3)
	m, _ := csr.FromCOO(c)
	defer func() {
		if recover() == nil {
			t.Error("SpMM(k=0) did not panic")
		}
	}()
	m.SpMM(nil, nil, 0)
}
