package solver

import (
	"fmt"

	"spmv/internal/core"
)

// Preconditioner applies z = M^{-1} r.
type Preconditioner interface {
	Apply(z, r []float64)
}

// CGPrec is preconditioned conjugate gradients with a general
// (symmetric positive definite) preconditioner. PCG's Jacobi variant is
// the special case M = diag(A).
func CGPrec(a Operator, m Preconditioner, b, x []float64, tol float64, maxIter int) (Result, error) {
	if err := checkDims(a, b, x); err != nil {
		return Result{}, err
	}
	if m == nil {
		return Result{}, fmt.Errorf("solver: nil preconditioner")
	}
	n := a.N
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	if err := a.Mul(r, x); err != nil {
		return Result{}, fmt.Errorf("solver: SpMV: %w", err)
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	m.Apply(z, r)
	copy(p, z)
	normB := norm(b)
	if core.IsZero(normB) {
		normB = 1
	}
	rz := dot(r, z)
	res := Result{Residual: norm(r) / normB}
	if res.Residual <= tol {
		res.Converged = true
		return res, nil
	}
	for k := 0; k < maxIter; k++ {
		if err := a.Mul(ap, p); err != nil {
			return res, fmt.Errorf("solver: SpMV: %w", err)
		}
		pap := dot(p, ap)
		if pap <= 0 {
			return res, fmt.Errorf("solver: CGPrec breakdown: p'Ap = %v", pap)
		}
		alpha := rz / pap
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		res.Iterations = k + 1
		res.Residual = norm(r) / normB
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
		m.Apply(z, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		rz = rzNew
	}
	return res, nil
}

// RightPreconditioned wraps a as A·M^{-1} for right-preconditioned
// GMRES/BiCGSTAB: solve the returned operator for u, then call finish
// on u to recover x = M^{-1} u. Right preconditioning keeps the
// residual of the preconditioned system equal to the true residual, so
// the solvers' stopping tests remain meaningful.
func RightPreconditioned(a Operator, m Preconditioner) (Operator, func(u []float64) []float64) {
	tmp := make([]float64, a.N)
	op := Operator{
		N: a.N,
		Mul: func(y, u []float64) error {
			m.Apply(tmp, u)
			return a.Mul(y, tmp)
		},
	}
	finish := func(u []float64) []float64 {
		x := make([]float64, a.N)
		m.Apply(x, u)
		return x
	}
	return op, finish
}
