package solver

import (
	"fmt"
	"math"

	"spmv/internal/core"
)

// GMRES solves A*x = b for general (nonsymmetric) A by restarted
// GMRES(m), overwriting x. restart is the Krylov subspace dimension
// between restarts; maxIter bounds the total matrix-vector products.
func GMRES(a Operator, b, x []float64, restart int, tol float64, maxIter int) (Result, error) {
	if err := checkDims(a, b, x); err != nil {
		return Result{}, err
	}
	if restart <= 0 {
		return Result{}, fmt.Errorf("solver: invalid restart %d", restart)
	}
	n := a.N
	m := restart
	if m > n {
		m = n
	}
	normB := norm(b)
	if core.IsZero(normB) {
		normB = 1
	}

	// Krylov basis and Hessenberg matrix (column-major H[(m+1)×m]).
	v := make([][]float64, m+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, m+1)
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)
	w := make([]float64, n)
	r := make([]float64, n)

	res := Result{}
	for res.Iterations < maxIter {
		// r = b - A*x
		if err := a.Mul(r, x); err != nil {
			return res, fmt.Errorf("solver: SpMV: %w", err)
		}
		for i := range r {
			r[i] = b[i] - r[i]
		}
		beta := norm(r)
		res.Residual = beta / normB
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
		for i := range r {
			v[0][i] = r[i] / beta
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < m && res.Iterations < maxIter; k++ {
			// Arnoldi step with modified Gram-Schmidt.
			if err := a.Mul(w, v[k]); err != nil {
				return res, fmt.Errorf("solver: SpMV: %w", err)
			}
			res.Iterations++
			for i := 0; i <= k; i++ {
				h[i][k] = dot(w, v[i])
				axpy(-h[i][k], v[i], w)
			}
			h[k+1][k] = norm(w)
			if h[k+1][k] > 1e-300 {
				for i := range w {
					v[k+1][i] = w[i] / h[k+1][k]
				}
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation to annihilate h[k+1][k].
			cs[k], sn[k] = givens(h[k][k], h[k+1][k])
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]
			res.Residual = math.Abs(g[k+1]) / normB
			if res.Residual <= tol {
				k++
				break
			}
		}
		// Solve the upper triangular system H[:k,:k] y = g[:k].
		y := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			sum := g[i]
			for j := i + 1; j < k; j++ {
				sum -= h[i][j] * y[j]
			}
			if core.IsZero(h[i][i]) {
				return res, fmt.Errorf("solver: GMRES breakdown: singular Hessenberg")
			}
			y[i] = sum / h[i][i]
		}
		for j := 0; j < k; j++ {
			axpy(y[j], v[j], x)
		}
		if res.Residual <= tol {
			// Recompute the true residual to confirm convergence.
			if err := a.Mul(r, x); err != nil {
				return res, fmt.Errorf("solver: SpMV: %w", err)
			}
			for i := range r {
				r[i] = b[i] - r[i]
			}
			res.Residual = norm(r) / normB
			if res.Residual <= tol {
				res.Converged = true
				return res, nil
			}
		}
	}
	return res, nil
}

// givens returns (c, s) with c*a + s*b = r, -s*a + c*b = 0.
func givens(a, b float64) (c, s float64) {
	if core.IsZero(b) {
		return 1, 0
	}
	if math.Abs(b) > math.Abs(a) {
		t := a / b
		s = 1 / math.Sqrt(1+t*t)
		return s * t, s
	}
	t := b / a
	c = 1 / math.Sqrt(1+t*t)
	return c, c * t
}
