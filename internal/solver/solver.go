// Package solver implements the iterative Krylov solvers that motivate
// the paper (§I): Conjugate Gradient for symmetric positive definite
// systems and restarted GMRES for general systems, both built solely on
// the y = A*x operation, so any storage format (CSR, CSR-DU, CSR-VI,
// ...) and any executor (serial or multithreaded) can drive them. SpMV
// dominates the runtime of these solvers, which is why the paper's
// working-set compression translates directly into solver throughput.
package solver

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/vec"
)

// Operator is a square linear operator y = A*x. Mul reports failures —
// short vectors, corrupt compressed streams caught by an executor —
// as errors, which the solvers propagate instead of crashing mid-solve.
type Operator struct {
	N   int
	Mul func(y, x []float64) error
}

// FromFormat wraps a square Format as an Operator. The multiply runs
// through core.SafeSpMV, so operand lengths are validated and kernel
// panics on corrupt streams surface as solver errors.
func FromFormat(f core.Format) (Operator, error) {
	if f.Rows() != f.Cols() {
		return Operator{}, fmt.Errorf("solver: operator must be square, got %dx%d", f.Rows(), f.Cols())
	}
	return Operator{N: f.Rows(), Mul: func(y, x []float64) error {
		return core.SafeSpMV(f, y, x)
	}}, nil
}

// Runner abstracts the multithreaded executors (they all have
// Run(y, x) error).
type Runner interface {
	Run(y, x []float64) error
}

// FromRunner wraps a parallel executor as an n×n Operator.
func FromRunner(r Runner, n int) Operator {
	return Operator{N: n, Mul: r.Run}
}

// Result reports the outcome of an iterative solve.
type Result struct {
	Iterations int     // matrix-vector products consumed
	Residual   float64 // final ||b - A*x|| / ||b||
	Converged  bool
}

// CG solves A*x = b for symmetric positive definite A by the conjugate
// gradient method, overwriting x (which supplies the initial guess).
// It stops when the relative residual drops below tol or after maxIter
// matrix-vector products.
func CG(a Operator, b, x []float64, tol float64, maxIter int) (Result, error) {
	if err := checkDims(a, b, x); err != nil {
		return Result{}, err
	}
	n := a.N
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	if err := a.Mul(r, x); err != nil {
		return Result{}, fmt.Errorf("solver: SpMV: %w", err)
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	copy(p, r)
	normB := norm(b)
	if core.IsZero(normB) {
		normB = 1
	}
	rr := dot(r, r)
	res := Result{Residual: math.Sqrt(rr) / normB}
	if res.Residual <= tol {
		res.Converged = true
		return res, nil
	}
	for k := 0; k < maxIter; k++ {
		if err := a.Mul(ap, p); err != nil {
			return res, fmt.Errorf("solver: SpMV: %w", err)
		}
		pap := dot(p, ap)
		if pap <= 0 {
			return res, fmt.Errorf("solver: CG breakdown: p'Ap = %v (matrix not SPD?)", pap)
		}
		alpha := rr / pap
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		rrNew := dot(r, r)
		res.Iterations = k + 1
		res.Residual = math.Sqrt(rrNew) / normB
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	return res, nil
}

// PCG is CG with a Jacobi (diagonal) preconditioner: invDiag holds
// 1/A[i][i]. It is the standard pairing for the stencil systems in the
// matrix suite.
func PCG(a Operator, invDiag, b, x []float64, tol float64, maxIter int) (Result, error) {
	if err := checkDims(a, b, x); err != nil {
		return Result{}, err
	}
	if len(invDiag) < a.N {
		return Result{}, fmt.Errorf("solver: invDiag length %d < n %d", len(invDiag), a.N)
	}
	n := a.N
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	if err := a.Mul(r, x); err != nil {
		return Result{}, fmt.Errorf("solver: SpMV: %w", err)
	}
	for i := range r {
		r[i] = b[i] - r[i]
		z[i] = invDiag[i] * r[i]
	}
	copy(p, z)
	normB := norm(b)
	if core.IsZero(normB) {
		normB = 1
	}
	rz := dot(r, z)
	res := Result{Residual: norm(r) / normB}
	if res.Residual <= tol {
		res.Converged = true
		return res, nil
	}
	for k := 0; k < maxIter; k++ {
		if err := a.Mul(ap, p); err != nil {
			return res, fmt.Errorf("solver: SpMV: %w", err)
		}
		pap := dot(p, ap)
		if pap <= 0 {
			return res, fmt.Errorf("solver: PCG breakdown: p'Ap = %v", pap)
		}
		alpha := rz / pap
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		res.Iterations = k + 1
		res.Residual = norm(r) / normB
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
		for i := range z {
			z[i] = invDiag[i] * r[i]
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		rz = rzNew
	}
	return res, nil
}

// InvDiag extracts 1/diagonal from a finalized COO for PCG. Zero
// diagonal entries yield an error.
func InvDiag(c *core.COO) ([]float64, error) {
	if c.Rows() != c.Cols() {
		return nil, fmt.Errorf("solver: matrix not square")
	}
	d := make([]float64, c.Rows())
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		if i == j {
			d[i] += v
		}
	}
	for i, v := range d {
		if core.IsZero(v) {
			return nil, fmt.Errorf("solver: zero diagonal at row %d", i)
		}
		d[i] = 1 / v
	}
	return d, nil
}

func checkDims(a Operator, b, x []float64) error {
	if a.Mul == nil || a.N <= 0 {
		return fmt.Errorf("solver: invalid operator")
	}
	if len(b) < a.N || len(x) < a.N {
		return fmt.Errorf("solver: vector lengths %d/%d < n %d", len(b), len(x), a.N)
	}
	return nil
}

// The vector kernels live in internal/vec; these aliases keep the
// solver bodies readable.
func dot(a, b []float64) float64         { return vec.Dot(a, b) }
func norm(a []float64) float64           { return vec.Norm2(a) }
func axpy(alpha float64, x, y []float64) { vec.Axpy(alpha, x, y) }
