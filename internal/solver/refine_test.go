package solver

import (
	"math/rand"
	"testing"

	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestRefineReachesDoublePrecision(t *testing.T) {
	// Inner solves on float32 coefficients, outer residuals in double:
	// the combination must reach a tolerance far below float32 epsilon.
	c := matgen.Stencil2D(14)
	full, _ := csr.FromCOO(c)
	inner, err := csr.From32(c)
	if err != nil {
		t.Fatal(err)
	}
	opFull, _ := FromFormat(full)
	opInner, _ := FromFormat(inner)
	rng := rand.New(rand.NewSource(1))
	b := testmat.RandVec(rng, opFull.N)
	x := make([]float64, opFull.N)
	res, err := Refine(opFull, opInner, b, x, 1e-12, 60, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.Residual > 1e-12 {
		t.Errorf("residual = %v, beyond float32 epsilon it is not", res.Residual)
	}
}

func TestRefineMatchesPlainCGSolution(t *testing.T) {
	c := matgen.Stencil2D(10)
	full, _ := csr.FromCOO(c)
	inner, _ := csr.From32(c)
	opFull, _ := FromFormat(full)
	opInner, _ := FromFormat(inner)
	rng := rand.New(rand.NewSource(2))
	b := testmat.RandVec(rng, opFull.N)

	x1 := make([]float64, opFull.N)
	if _, err := CG(opFull, b, x1, 1e-12, 5000); err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, opFull.N)
	if _, err := Refine(opFull, opInner, b, x2, 1e-12, 60, 2000); err != nil {
		t.Fatal(err)
	}
	testmat.AssertClose(t, "refined vs direct", x2, x1, 1e-8)
}

func TestRefineSameOperatorDegeneratesToCG(t *testing.T) {
	// With aInner == aFull refinement is just restarted CG: must work.
	c := matgen.Stencil2D(8)
	full, _ := csr.FromCOO(c)
	op, _ := FromFormat(full)
	b := make([]float64, op.N)
	b[0] = 1
	x := make([]float64, op.N)
	res, err := Refine(op, op, b, x, 1e-10, 40, 1000)
	if err != nil || !res.Converged {
		t.Fatalf("%v %+v", err, res)
	}
}

func TestRefineRejectsMismatchedOperators(t *testing.T) {
	c := matgen.Stencil2D(6)
	full, _ := csr.FromCOO(c)
	op, _ := FromFormat(full)
	bad := Operator{N: op.N + 1, Mul: op.Mul}
	b := make([]float64, op.N)
	x := make([]float64, op.N)
	if _, err := Refine(op, bad, b, x, 1e-10, 10, 100); err == nil {
		t.Error("mismatched inner operator accepted")
	}
	if _, err := Refine(op, Operator{}, b, x, 1e-10, 10, 100); err == nil {
		t.Error("nil inner operator accepted")
	}
}
