package solver

import (
	"fmt"
	"math"

	"spmv/internal/core"
)

// BiCGSTAB solves A*x = b for general square A by the stabilized
// bi-conjugate gradient method, overwriting x. It needs only y = A*x
// (no transpose products), two matrix-vector products per iteration,
// and converges smoothly where plain CG requires symmetry.
func BiCGSTAB(a Operator, b, x []float64, tol float64, maxIter int) (Result, error) {
	if err := checkDims(a, b, x); err != nil {
		return Result{}, err
	}
	n := a.N
	r := make([]float64, n)
	rHat := make([]float64, n)
	v := make([]float64, n)
	p := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)

	if err := a.Mul(r, x); err != nil {
		return Result{}, fmt.Errorf("solver: SpMV: %w", err)
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	copy(rHat, r)
	normB := norm(b)
	if core.IsZero(normB) {
		normB = 1
	}
	res := Result{Residual: norm(r) / normB}
	if res.Residual <= tol {
		res.Converged = true
		return res, nil
	}
	rho, alpha, omega := 1.0, 1.0, 1.0
	for k := 0; k < maxIter; k++ {
		rhoNew := dot(rHat, r)
		if core.IsZero(rhoNew) {
			return res, fmt.Errorf("solver: BiCGSTAB breakdown: rho = 0")
		}
		if k == 0 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew
		if err := a.Mul(v, p); err != nil {
			return res, fmt.Errorf("solver: SpMV: %w", err)
		}
		res.Iterations++
		den := dot(rHat, v)
		if core.IsZero(den) {
			return res, fmt.Errorf("solver: BiCGSTAB breakdown: rHat'v = 0")
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if sn := norm(s) / normB; sn <= tol {
			axpy(alpha, p, x)
			res.Residual = sn
			res.Converged = true
			return res, nil
		}
		if err := a.Mul(t, s); err != nil {
			return res, fmt.Errorf("solver: SpMV: %w", err)
		}
		res.Iterations++
		tt := dot(t, t)
		if core.IsZero(tt) {
			return res, fmt.Errorf("solver: BiCGSTAB breakdown: t = 0")
		}
		omega = dot(t, s) / tt
		if core.IsZero(omega) {
			return res, fmt.Errorf("solver: BiCGSTAB breakdown: omega = 0")
		}
		for i := range x {
			x[i] += alpha*p[i] + omega*s[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		res.Residual = norm(r) / normB
		if math.IsNaN(res.Residual) {
			return res, fmt.Errorf("solver: BiCGSTAB diverged")
		}
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}
