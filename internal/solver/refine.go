package solver

import (
	"fmt"
	"math"

	"spmv/internal/core"
)

// Refine implements mixed-precision iterative refinement (Langou et
// al., cited in the paper's §III-C): the bulk of the work — inner CG
// solves — runs against a reduced-precision operator (e.g. a csr32 or
// csr-vi matrix), while an outer loop computes true double-precision
// residuals against the full operator and corrects. The inner operator
// streams half the value bytes, so each inner iteration costs half the
// bandwidth; the outer loop restores double-precision accuracy.
//
// aFull must be the accurate operator; aInner the cheap one (they may
// be the same matrix in different formats). x holds the initial guess
// and the solution.
func Refine(aFull, aInner Operator, b, x []float64, tol float64, maxOuter, innerIter int) (Result, error) {
	if err := checkDims(aFull, b, x); err != nil {
		return Result{}, err
	}
	if aInner.N != aFull.N || aInner.Mul == nil {
		return Result{}, fmt.Errorf("solver: inner operator mismatched")
	}
	n := aFull.N
	r := make([]float64, n)
	d := make([]float64, n)
	normB := norm(b)
	if core.IsZero(normB) {
		normB = 1
	}
	var res Result
	for outer := 0; outer < maxOuter; outer++ {
		// True residual in full precision.
		if err := aFull.Mul(r, x); err != nil {
			return res, fmt.Errorf("solver: SpMV: %w", err)
		}
		for i := range r {
			r[i] = b[i] - r[i]
		}
		res.Residual = norm(r) / normB
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
		// Inner correction solve at reduced precision: loose tolerance —
		// one digit of progress per outer iteration suffices.
		for i := range d {
			d[i] = 0
		}
		inner, err := CG(aInner, r, d, 1e-4, innerIter)
		if err != nil {
			return res, fmt.Errorf("solver: inner solve: %w", err)
		}
		res.Iterations += inner.Iterations + 1 // +1 for the residual SpMV
		if inner.Residual > 0.9 && !inner.Converged {
			return res, fmt.Errorf("solver: inner solve stagnated (residual %v)", inner.Residual)
		}
		axpy(1, d, x)
		if math.IsNaN(res.Residual) || math.IsInf(res.Residual, 0) {
			return res, fmt.Errorf("solver: refinement diverged")
		}
	}
	return res, nil
}
