package reorder

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

// shuffled returns a banded matrix whose rows/cols have been randomly
// permuted, destroying its bandedness.
func shuffled(rng *rand.Rand, n int) *core.COO {
	banded := matgen.Symmetrize(matgen.Banded(rng, n, 6, 5, matgen.Values{}))
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
	out, err := Permute(banded, perm)
	if err != nil {
		panic(err)
	}
	return out
}

func TestRCMRecoversBandedness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 400
	mess := shuffled(rng, n)
	bwBefore := Bandwidth(mess)
	perm, err := RCM(mess)
	if err != nil {
		t.Fatal(err)
	}
	tidy, err := Permute(mess, perm)
	if err != nil {
		t.Fatal(err)
	}
	bwAfter := Bandwidth(tidy)
	if bwAfter >= bwBefore/4 {
		t.Errorf("bandwidth %d -> %d: RCM should recover near-banded structure", bwBefore, bwAfter)
	}
	if Profile(tidy) >= Profile(mess) {
		t.Errorf("profile did not shrink: %d -> %d", Profile(mess), Profile(tidy))
	}
}

func TestRCMPermutationIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := matgen.Symmetrize(matgen.FEMLike(rng, 300, 4, matgen.Values{}))
	perm, err := RCM(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != c.Rows() {
		t.Fatalf("perm length %d", len(perm))
	}
	seen := make([]bool, c.Rows())
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("duplicate entry %d", p)
		}
		seen[p] = true
	}
}

func TestPermutedSpMVConsistent(t *testing.T) {
	// y = A x  ==>  P y = (P A P^T)(P x): solving in permuted space and
	// unpermuting must give the original result.
	rng := rand.New(rand.NewSource(3))
	c := matgen.Symmetrize(matgen.FEMLike(rng, 200, 5, matgen.Values{}))
	perm, _ := RCM(c)
	pc, _ := Permute(c, perm)

	x := testmat.RandVec(rng, c.Cols())
	want := make([]float64, c.Rows())
	ref, _ := csr.FromCOO(c)
	ref.SpMV(want, x)

	px := PermuteVec(x, perm)
	py := make([]float64, c.Rows())
	pm, _ := csr.FromCOO(pc)
	pm.SpMV(py, px)
	got := UnpermuteVec(py, perm)
	testmat.AssertClose(t, "permuted SpMV", got, want, 1e-10)
}

func TestRCMImprovesCSRDUCompression(t *testing.T) {
	// The synergy claim: smaller column deltas after RCM → smaller ctl.
	rng := rand.New(rand.NewSource(4))
	mess := shuffled(rng, 2000)
	perm, _ := RCM(mess)
	tidy, _ := Permute(mess, perm)
	before, _ := csrdu.FromCOO(mess)
	after, _ := csrdu.FromCOO(tidy)
	if after.SizeBytes() >= before.SizeBytes() {
		t.Errorf("CSR-DU size %d -> %d: RCM should shrink the ctl stream",
			before.SizeBytes(), after.SizeBytes())
	}
	st1, st2 := before.Stats(), after.Stats()
	if st2.PerClass[csrdu.ClassU8] <= st1.PerClass[csrdu.ClassU8] {
		t.Errorf("u8 units %d -> %d: expected more narrow units after RCM",
			st1.PerClass[csrdu.ClassU8], st2.PerClass[csrdu.ClassU8])
	}
}

func TestDisconnectedComponents(t *testing.T) {
	c := core.NewCOO(6, 6)
	// Two disjoint triangles plus an isolated node.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		c.Add(e[0], e[1], 1)
		c.Add(e[1], e[0], 1)
	}
	c.Finalize()
	perm, err := RCM(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != 6 {
		t.Fatalf("perm covers %d of 6 nodes", len(perm))
	}
}

func TestPermuteValidation(t *testing.T) {
	c := matgen.Stencil2D(3)
	if _, err := Permute(c, []int32{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	bad := make([]int32, 9)
	for i := range bad {
		bad[i] = 0 // duplicate
	}
	if _, err := Permute(c, bad); err == nil {
		t.Error("duplicate permutation accepted")
	}
	r := core.NewCOO(2, 3)
	r.Finalize()
	if _, err := RCM(r); err == nil {
		t.Error("rectangular accepted")
	}
}

func TestBandwidthAndProfileBasics(t *testing.T) {
	c := core.NewCOO(4, 4)
	c.Add(0, 0, 1)
	c.Add(0, 3, 1)
	c.Add(2, 1, 1)
	c.Finalize()
	if bw := Bandwidth(c); bw != 3 {
		t.Errorf("Bandwidth = %d, want 3", bw)
	}
	if p := Profile(c); p != 3 {
		t.Errorf("Profile = %d, want 3", p)
	}
	empty := core.NewCOO(2, 2)
	empty.Finalize()
	if Bandwidth(empty) != 0 || Profile(empty) != 0 {
		t.Error("empty matrix bandwidth/profile not 0")
	}
}
