// Package reorder implements reverse Cuthill-McKee (RCM) bandwidth
// reduction — the matrix-reordering optimization the paper's §III-A
// surveys. Reordering pulls non-zeros toward the diagonal, which (a)
// improves x-vector locality, the classic motivation, and (b) shrinks
// the column deltas CSR-DU encodes, so a reordered matrix compresses
// strictly better — a synergy this library measures in its ablations.
package reorder

import (
	"fmt"
	"sort"

	"spmv/internal/core"
)

// RCM returns a reverse Cuthill-McKee permutation of a square matrix's
// symmetrized pattern. perm[new] = old: row/column old of the input
// becomes row/column new of the permuted matrix. Disconnected
// components are each ordered from a minimum-degree start node.
func RCM(c *core.COO) ([]int32, error) {
	c.Finalize()
	if c.Rows() != c.Cols() {
		return nil, fmt.Errorf("reorder: RCM needs a square matrix, got %dx%d", c.Rows(), c.Cols())
	}
	n := c.Rows()
	adj := buildAdjacency(c)

	perm := make([]int32, 0, n)
	visited := make([]bool, n)
	// Nodes sorted by degree once; used to pick component start nodes.
	byDegree := make([]int32, n)
	for i := range byDegree {
		byDegree[i] = int32(i)
	}
	sort.SliceStable(byDegree, func(a, b int) bool {
		return len(adj[byDegree[a]]) < len(adj[byDegree[b]])
	})

	queue := make([]int32, 0, n)
	for _, start := range byDegree {
		if visited[start] {
			continue
		}
		// BFS from the minimum-degree unvisited node, neighbors in
		// increasing degree order (the Cuthill-McKee rule).
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			perm = append(perm, v)
			nbrs := adj[v]
			sort.SliceStable(nbrs, func(a, b int) bool {
				return len(adj[nbrs[a]]) < len(adj[nbrs[b]])
			})
			for _, w := range nbrs {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	// Reverse (the "R" in RCM): reduces profile over plain CM.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}

// buildAdjacency returns the symmetrized adjacency lists (self-loops
// dropped).
func buildAdjacency(c *core.COO) [][]int32 {
	n := c.Rows()
	adj := make([][]int32, n)
	seen := make(map[[2]int32]struct{}, c.Len())
	addEdge := func(a, b int32) {
		if a == b {
			return
		}
		if _, ok := seen[[2]int32{a, b}]; ok {
			return
		}
		seen[[2]int32{a, b}] = struct{}{}
		adj[a] = append(adj[a], b)
	}
	for k := 0; k < c.Len(); k++ {
		i, j, _ := c.At(k)
		addEdge(int32(i), int32(j))
		addEdge(int32(j), int32(i))
	}
	return adj
}

// Permute applies a symmetric permutation: result[new(i), new(j)] =
// A[i, j] where new is the inverse of perm (perm[new] = old).
func Permute(c *core.COO, perm []int32) (*core.COO, error) {
	c.Finalize()
	n := c.Rows()
	if len(perm) != n || c.Cols() != n {
		return nil, fmt.Errorf("reorder: permutation length %d for %dx%d matrix", len(perm), c.Rows(), c.Cols())
	}
	inv := make([]int32, n)
	seen := make([]bool, n)
	for newIdx, old := range perm {
		if old < 0 || int(old) >= n || seen[old] {
			return nil, fmt.Errorf("reorder: invalid permutation (entry %d = %d)", newIdx, old)
		}
		seen[old] = true
		inv[old] = int32(newIdx)
	}
	out := core.NewCOO(n, n)
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		out.Add(int(inv[i]), int(inv[j]), v)
	}
	out.Finalize()
	return out, nil
}

// PermuteVec gathers x into permuted order: out[new] = x[perm[new]].
func PermuteVec(x []float64, perm []int32) []float64 {
	out := make([]float64, len(perm))
	for newIdx, old := range perm {
		out[newIdx] = x[old]
	}
	return out
}

// UnpermuteVec scatters a permuted vector back: out[perm[new]] = y[new].
func UnpermuteVec(y []float64, perm []int32) []float64 {
	out := make([]float64, len(perm))
	for newIdx, old := range perm {
		out[old] = y[newIdx]
	}
	return out
}

// Bandwidth returns max |i-j| over the non-zeros (0 for diagonal or
// empty matrices).
func Bandwidth(c *core.COO) int {
	c.Finalize()
	bw := 0
	for k := 0; k < c.Len(); k++ {
		i, j, _ := c.At(k)
		d := i - j
		if d < 0 {
			d = -d
		}
		if d > bw {
			bw = d
		}
	}
	return bw
}

// Profile returns the sum over rows of the distance from the first
// non-zero to the diagonal column — the quantity RCM minimizes more
// robustly than bandwidth.
func Profile(c *core.COO) int64 {
	c.Finalize()
	var sum int64
	n := c.Len()
	for k := 0; k < n; {
		i, j0, _ := c.At(k)
		minJ, maxJ := j0, j0
		for k < n {
			i2, j, _ := c.At(k)
			if i2 != i {
				break
			}
			if j < minJ {
				minJ = j
			}
			if j > maxJ {
				maxJ = j
			}
			k++
		}
		if maxJ > minJ {
			sum += int64(maxJ - minJ)
		}
	}
	return sum
}
