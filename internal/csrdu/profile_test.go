package csrdu

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

func profileMatrices(t *testing.T) map[string]*Matrix {
	t.Helper()
	out := map[string]*Matrix{}
	cases := []struct {
		name string
		gen  func() *Matrix
	}{
		{"banded", func() *Matrix {
			m, err := FromCOO(matgen.Banded(rand.New(rand.NewSource(1)), 3000, 30, 6, matgen.Values{}))
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"random", func() *Matrix {
			m, err := FromCOO(matgen.RandomUniform(rand.New(rand.NewSource(2)), 2000, 2000, 5, matgen.Values{}))
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"stencil-rle", func() *Matrix {
			m, err := FromCOOOpts(matgen.Stencil2D(50), Options{RLE: true, RLEMin: 3})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"powerlaw", func() *Matrix {
			m, err := FromCOO(matgen.PowerLaw(rand.New(rand.NewSource(3)), 3000, 4, 0.7, matgen.Values{}))
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
	}
	for _, c := range cases {
		out[c.name] = c.gen()
	}
	return out
}

// TestProfileAgreesWithStats pins the acceptance criterion that the
// profile's unit-type histogram totals equal the encoder's unit count:
// Profile and Stats walk the same stream and must agree exactly.
func TestProfileAgreesWithStats(t *testing.T) {
	for name, m := range profileMatrices(t) {
		s := m.Stats()
		p := m.Profile(8)
		if p.Units != s.Units {
			t.Errorf("%s: Profile units %d != Stats units %d", name, p.Units, s.Units)
		}
		if p.PerClass != s.PerClass {
			t.Errorf("%s: Profile PerClass %v != Stats %v", name, p.PerClass, s.PerClass)
		}
		if p.RLEUnits != s.RLEUnits {
			t.Errorf("%s: Profile RLEUnits %d != Stats %d", name, p.RLEUnits, s.RLEUnits)
		}
		if p.CtlBytes != s.CtlBytes {
			t.Errorf("%s: Profile CtlBytes %d != Stats %d", name, p.CtlBytes, s.CtlBytes)
		}
		if p.AvgUnitSize != s.AvgSize {
			t.Errorf("%s: Profile AvgUnitSize %v != Stats %v", name, p.AvgUnitSize, s.AvgSize)
		}
	}
}

// TestProfileInvariants checks the internal accounting: the byte
// partition sums to the ctl stream, every histogram totals the unit
// count, and the region breakdown covers all rows, units and non-zeros.
func TestProfileInvariants(t *testing.T) {
	for name, m := range profileMatrices(t) {
		p := m.Profile(8)
		if got := p.HeaderBytes + p.JumpBytes + p.DeltaBytes; got != p.CtlBytes {
			t.Errorf("%s: header %d + jump %d + delta %d = %d, want CtlBytes %d",
				name, p.HeaderBytes, p.JumpBytes, p.DeltaBytes, got, p.CtlBytes)
		}
		sum := func(h []int) int {
			n := 0
			for _, v := range h {
				n += v
			}
			return n
		}
		if got := sum(p.USizeHist); got != p.Units {
			t.Errorf("%s: usize hist total %d != units %d", name, got, p.Units)
		}
		if got := sum(p.UJmpWidthHist); got != p.Units {
			t.Errorf("%s: ujmp width hist total %d != units %d", name, got, p.Units)
		}
		if got := sum(p.RLERunHist); got != p.RLEUnits {
			t.Errorf("%s: rle run hist total %d != rle units %d", name, got, p.RLEUnits)
		}
		classTotal := 0
		for _, n := range p.PerClass {
			classTotal += n
		}
		if classTotal+p.RLEUnits != p.Units {
			t.Errorf("%s: class total %d + rle %d != units %d", name, classTotal, p.RLEUnits, p.Units)
		}

		var regUnits, regNNZ int
		var regClass [4]int
		for i, r := range p.Regions {
			if r.RowLo < 0 || r.RowHi > m.Rows() || r.RowLo > r.RowHi {
				t.Errorf("%s: region %d bad row range [%d,%d)", name, i, r.RowLo, r.RowHi)
			}
			for c, n := range r.PerClass {
				regClass[c] += n
				regUnits += n
			}
			regUnits += r.RLEUnits
			regNNZ += r.NNZ
		}
		if regUnits != p.Units {
			t.Errorf("%s: region unit total %d != units %d", name, regUnits, p.Units)
		}
		if regClass != p.PerClass {
			t.Errorf("%s: region class totals %v != PerClass %v", name, regClass, p.PerClass)
		}
		if regNNZ != m.NNZ() {
			t.Errorf("%s: region nnz total %d != nnz %d", name, regNNZ, m.NNZ())
		}
	}
}

// TestProfileNoRegions checks that nregions <= 0 disables the
// per-region breakdown and that an empty matrix profiles cleanly.
func TestProfileNoRegions(t *testing.T) {
	m, err := FromCOO(matgen.Stencil2D(20))
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Profile(0); p.Regions != nil {
		t.Errorf("Profile(0) produced %d regions, want none", len(p.Regions))
	}
	empty, err := FromCOO(core.NewCOO(40, 40))
	if err != nil {
		t.Fatal(err)
	}
	p := empty.Profile(4)
	if p.Units != 0 || p.CtlBytes != 0 {
		t.Errorf("empty matrix profile: units=%d ctl=%d, want 0,0", p.Units, p.CtlBytes)
	}
}

func TestSizeBucket(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {128, 7}, {129, 8}, {255, 8},
	} {
		if got := sizeBucket(tc.n); got != tc.want {
			t.Errorf("sizeBucket(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
