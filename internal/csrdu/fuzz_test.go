package csrdu

import (
	"testing"

	"spmv/internal/matgen"
)

// FuzzFromRaw feeds arbitrary ctl streams to the validating
// deserializer: it must reject or accept without panicking, and
// anything it accepts must survive an SpMV without out-of-bounds
// access.
func FuzzFromRaw(f *testing.F) {
	// Seed with real streams.
	m, _ := FromCOO(matgen.Stencil2D(5))
	f.Add(m.Ctl, 25, 25, len(m.Values))
	rle, _ := FromCOOOpts(matgen.Stencil2D(5), Options{RLE: true, RLEMin: 3})
	f.Add(rle.Ctl, 25, 25, len(rle.Values))
	f.Add([]byte{FlagNR | ClassU8, 1, 0}, 1, 1, 1)
	f.Add([]byte{}, 3, 3, 0)
	f.Fuzz(func(t *testing.T, ctl []byte, rows, cols, nvals int) {
		if rows <= 0 || cols <= 0 || rows > 1000 || cols > 1000 || nvals < 0 || nvals > 10000 {
			return
		}
		values := make([]float64, nvals)
		for i := range values {
			values[i] = float64(i + 1)
		}
		mat, err := FromRaw(ctl, values, rows, cols)
		if err != nil {
			return
		}
		// Accepted: the kernel must run in bounds.
		x := make([]float64, cols)
		y := make([]float64, rows)
		for i := range x {
			x[i] = 1
		}
		mat.SpMV(y, x)
		// And the decode walk must agree with nnz.
		count := 0
		mat.ForEach(func(i, j int, v float64) {
			if i < 0 || i >= rows || j < 0 || j >= cols {
				t.Fatalf("ForEach out of range: (%d,%d)", i, j)
			}
			count++
		})
		if count != len(values) {
			t.Fatalf("decoded %d elements, expected %d", count, len(values))
		}
	})
}
