package csrdu

import (
	"errors"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
)

func verifyFixtures(t *testing.T) map[string]*Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	fix := map[string]*core.COO{
		"stencil": matgen.Stencil2D(6),
		"banded":  matgen.Banded(rng, 40, 8, 5, matgen.Values{}),
		"random":  matgen.RandomUniform(rng, 30, 50, 4, matgen.Values{}),
	}
	out := make(map[string]*Matrix)
	for name, c := range fix {
		m, err := FromCOO(c)
		if err != nil {
			t.Fatalf("%s: FromCOO: %v", name, err)
		}
		out[name] = m
		rle, err := FromCOOOpts(c, Options{RLE: true, RLEMin: 3})
		if err != nil {
			t.Fatalf("%s: FromCOOOpts(RLE): %v", name, err)
		}
		out[name+"-rle"] = rle
	}
	return out
}

func TestVerifyClean(t *testing.T) {
	for name, m := range verifyFixtures(t) {
		if err := m.Verify(); err != nil {
			t.Errorf("%s: Verify on freshly encoded matrix: %v", name, err)
		}
	}
	empty, err := FromCOO(core.NewCOO(3, 3))
	if err != nil {
		t.Fatalf("empty FromCOO: %v", err)
	}
	if err := empty.Verify(); err != nil {
		t.Errorf("empty matrix: %v", err)
	}
}

func TestVerifyDetectsMarkTamper(t *testing.T) {
	m, _ := FromCOO(matgen.Stencil2D(5))
	m.marks[1].val++
	err := m.Verify()
	if !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("tampered row mark: got %v, want ErrCorrupt", err)
	}
}

func TestVerifyDetectsTruncation(t *testing.T) {
	m, _ := FromCOO(matgen.Stencil2D(5))
	m.Ctl = m.Ctl[:len(m.Ctl)-1]
	err := m.Verify()
	if err == nil {
		t.Fatal("truncated ctl stream passed Verify")
	}
	if !errors.Is(err, core.ErrCorrupt) && !errors.Is(err, core.ErrTruncated) && !errors.Is(err, core.ErrShape) {
		t.Fatalf("truncated ctl stream: error %v does not wrap a core sentinel", err)
	}
}

// TestCtlSingleByteFlips exercises the robustness contract on the raw
// index stream: for every single-byte flip of a real ctl stream,
// FromRaw either rejects the stream with a typed error, or the
// accepted matrix is self-consistent — its kernel stays in bounds and
// agrees with a reference CSR built from its own decode. (Byte-exact
// flip *detection* is the container's CRC job; structure alone cannot
// distinguish a flipped delta that still lands in range.)
func TestCtlSingleByteFlips(t *testing.T) {
	orig, _ := FromCOO(matgen.Stencil2D(5))
	rows, cols := orig.Rows(), orig.Cols()
	x := make([]float64, cols)
	for i := range x {
		x[i] = float64(i%7) + 0.5
	}
	for pos := 0; pos < len(orig.Ctl); pos++ {
		for _, bit := range []byte{0x01, 0x10, 0x80} {
			ctl := make([]byte, len(orig.Ctl))
			copy(ctl, orig.Ctl)
			ctl[pos] ^= bit
			m, err := FromRaw(ctl, orig.Values, rows, cols)
			if err != nil {
				if !errors.Is(err, core.ErrCorrupt) && !errors.Is(err, core.ErrTruncated) && !errors.Is(err, core.ErrShape) {
					t.Fatalf("flip byte %d bit %#x: error %v does not wrap a core sentinel", pos, bit, err)
				}
				continue
			}
			if verr := m.Verify(); verr != nil {
				t.Fatalf("flip byte %d bit %#x: FromRaw accepted but Verify rejects: %v", pos, bit, verr)
			}
			ref, err := csr.FromCOO(m.Triplets())
			if err != nil {
				t.Fatalf("flip byte %d bit %#x: reference CSR: %v", pos, bit, err)
			}
			y := make([]float64, rows)
			yref := make([]float64, rows)
			m.SpMV(y, x)
			ref.SpMV(yref, x)
			for i := range y {
				if y[i] != yref[i] {
					t.Fatalf("flip byte %d bit %#x: row %d: kernel %v, reference %v", pos, bit, i, y[i], yref[i])
				}
			}
		}
	}
}
