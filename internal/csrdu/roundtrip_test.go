package csrdu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

// sameCOO reports entry-wise equality of two finalized COOs.
func sameCOO(a, b *core.COO) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.Len() != b.Len() {
		return false
	}
	for k := 0; k < a.Len(); k++ {
		i1, j1, v1 := a.At(k)
		i2, j2, v2 := b.At(k)
		if i1 != i2 || j1 != j2 || v1 != v2 {
			return false
		}
	}
	return true
}

// TestEncodeDecodeRoundTripQuick: FromCOO followed by Triplets is the
// identity on finalized COOs, for random shapes and all option sets.
func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	opts := []Options{{}, {RLE: true}, {MinSwitch: 1}, {RLE: true, RLEMin: 3}}
	f := func(seed int64, optIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(80)
		cols := 1 + rng.Intn(3000) // wide: exercises u16 deltas
		c := core.NewCOO(rows, cols)
		n := rng.Intn(4 * rows)
		for k := 0; k < n; k++ {
			c.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		c.Finalize()
		m, err := FromCOOOpts(c, opts[int(optIdx)%len(opts)])
		if err != nil {
			return false
		}
		return sameCOO(c, m.Triplets())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, c := range map[string]*core.COO{
		"stencil":   matgen.Stencil2D(20),
		"blockdiag": matgen.BlockDiag(rng, 10, 16, matgen.Values{}),
		"random":    matgen.RandomUniform(rng, 100, 1<<20, 6, matgen.Values{}), // u32 deltas
		"powerlaw":  matgen.PowerLaw(rng, 300, 6, 0.9, matgen.Values{}),
	} {
		for _, o := range []Options{{}, {RLE: true}} {
			m, err := FromCOOOpts(c, o)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !sameCOO(c, m.Triplets()) {
				t.Errorf("%s (RLE=%v): round trip mismatch", name, o.RLE)
			}
		}
	}
}

func TestForEachCountsMatchNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := matgen.FEMLike(rng, 200, 5, matgen.Values{})
	m, _ := FromCOO(c)
	count := 0
	lastI, lastJ := -1, -1
	m.ForEach(func(i, j int, v float64) {
		count++
		if i < lastI || (i == lastI && j <= lastJ) {
			t.Fatalf("ForEach not strictly row-major: (%d,%d) after (%d,%d)", i, j, lastI, lastJ)
		}
		lastI, lastJ = i, j
	})
	if count != m.NNZ() {
		t.Errorf("ForEach visited %d, want %d", count, m.NNZ())
	}
}
