package csrdu

import (
	"bytes"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestParallelEncodeByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mats := map[string]*core.COO{
		"banded":     matgen.Banded(rng, 30000, 20, 8, matgen.Values{}),
		"powerlaw":   matgen.PowerLaw(rng, 20000, 6, 0.8, matgen.Values{}),
		"empty-rows": sparseWithGaps(rng, 20000),
		"stencil":    matgen.Stencil2D(150),
	}
	for name, c := range mats {
		for _, opts := range []Options{{}, {RLE: true}} {
			serial, err := FromCOOOpts(c, opts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, workers := range []int{2, 3, 8} {
				par, err := FromCOOParallel(c, opts, workers)
				if err != nil {
					t.Fatalf("%s/%d: %v", name, workers, err)
				}
				if !bytes.Equal(par.Ctl, serial.Ctl) {
					t.Fatalf("%s/%d workers (RLE=%v): ctl streams differ (%d vs %d bytes)",
						name, workers, opts.RLE, len(par.Ctl), len(serial.Ctl))
				}
				if len(par.Values) != len(serial.Values) {
					t.Fatalf("%s/%d: value counts differ", name, workers)
				}
				if len(par.marks) != len(serial.marks) {
					t.Fatalf("%s/%d: mark counts differ: %d vs %d",
						name, workers, len(par.marks), len(serial.marks))
				}
				for i := range par.marks {
					if par.marks[i] != serial.marks[i] {
						t.Fatalf("%s/%d: mark %d differs: %+v vs %+v",
							name, workers, i, par.marks[i], serial.marks[i])
					}
				}
			}
		}
	}
}

// sparseWithGaps leaves multi-row gaps so block seams land next to
// empty rows (the case that breaks naive concatenation).
func sparseWithGaps(rng *rand.Rand, n int) *core.COO {
	c := core.NewCOO(n, n)
	for i := 0; i < n; i += 3 + rng.Intn(5) {
		for k := 0; k < 1+rng.Intn(4); k++ {
			c.Add(i, rng.Intn(n), rng.NormFloat64())
		}
	}
	c.Finalize()
	return c
}

func TestParallelEncodeSpMVCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := sparseWithGaps(rng, 5000)
	m, err := FromCOOParallel(c, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := core.DenseFromCOO(c)
	x := testmat.RandVec(rng, c.Cols())
	want := make([]float64, c.Rows())
	got := make([]float64, c.Rows())
	d.SpMV(want, x)
	m.SpMV(got, x)
	testmat.AssertClose(t, "parallel-encoded SpMV", got, want, 1e-10)
	// Chunked decode works with the rebased marks.
	got2 := make([]float64, c.Rows())
	for _, ch := range m.Split(6) {
		ch.SpMV(got2, x)
	}
	testmat.AssertClose(t, "parallel-encoded chunks", got2, want, 1e-10)
}

func TestParallelEncodeSmallFallsBack(t *testing.T) {
	c := matgen.Stencil2D(5)
	m, err := FromCOOParallel(c, Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := FromCOO(c)
	if !bytes.Equal(m.Ctl, serial.Ctl) {
		t.Error("small-matrix fallback differs from serial")
	}
}

func BenchmarkEncodeParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := matgen.Banded(rng, 200000, 40, 10, matgen.Values{})
	for _, w := range []int{1, 4} {
		w := w
		b.Run(map[int]string{1: "serial", 4: "4-workers"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FromCOOParallel(c, Options{}, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
