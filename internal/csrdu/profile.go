package csrdu

import (
	"math/bits"

	"spmv/internal/varint"
)

// Profile is the detailed structural profile of an encoded CSR-DU
// matrix: where the ctl bytes go (headers, jumps, deltas), how unit
// sizes and jump widths distribute, and how the delta-class mix varies
// across row regions. It extends UnitStats — which the paper's §IV
// argument needs in aggregate — with the histograms a tuner needs to
// see *why* a matrix compresses well or badly.
type Profile struct {
	// Units is the total unit count; PerClass splits the non-RLE units
	// by delta width class (ClassU8..ClassU64).
	Units    int    `json:"units"`
	PerClass [4]int `json:"units_per_class"`
	// RLEUnits, NRUnits and RJMPUnits count units with the respective
	// flag set (an RLE run, a new-row start, a multi-row jump).
	RLEUnits  int `json:"rle_units"`
	NRUnits   int `json:"nr_units"`
	RJMPUnits int `json:"rjmp_units"`
	// AvgUnitSize is the mean non-zeros per unit; large units mean few
	// decode branches per non-zero.
	AvgUnitSize float64 `json:"avg_unit_size"`
	// CtlBytes = HeaderBytes + JumpBytes + DeltaBytes: the ctl stream
	// partitioned into the 2-byte unit headers, the rjmp/ujmp/RLE-delta
	// varints, and the fixed-width delta payloads.
	CtlBytes    int `json:"ctl_bytes"`
	HeaderBytes int `json:"header_bytes"`
	JumpBytes   int `json:"jump_bytes"`
	DeltaBytes  int `json:"delta_bytes"`
	// USizeHist buckets unit sizes (non-zeros per unit) by powers of
	// two: bucket b holds sizes in (2^(b-1), 2^b], so bucket 0 is size
	// 1, bucket 1 size 2, bucket 2 sizes 3-4, ... bucket 8 sizes
	// 129-255.
	USizeHist []int `json:"usize_hist"`
	// UJmpWidthHist buckets the encoded ujmp varints by byte width
	// (index 0 = 1 byte). Wide jumps mean scattered rows.
	UJmpWidthHist []int `json:"ujmp_width_hist"`
	// RLERunHist buckets RLE unit sizes like USizeHist; empty unless
	// the encoder ran with Options.RLE.
	RLERunHist []int `json:"rle_run_hist"`
	// Regions splits the rows into equal bands and reports the unit mix
	// per band, exposing structure drift down the matrix (a banded head
	// and a scattered tail profile differently).
	Regions []RegionProfile `json:"regions,omitempty"`
}

// RegionProfile is the unit mix of one horizontal band of rows.
type RegionProfile struct {
	RowLo    int    `json:"row_lo"`
	RowHi    int    `json:"row_hi"`
	PerClass [4]int `json:"units_per_class"`
	RLEUnits int    `json:"rle_units"`
	NNZ      int    `json:"nnz"`
}

// sizeBucket maps a unit size n >= 1 to its power-of-two histogram
// bucket: 1→0, 2→1, 3-4→2, 5-8→3, ..., 129-255→8.
func sizeBucket(n int) int {
	return bits.Len(uint(n - 1))
}

// Profile walks the ctl stream and returns the structural profile,
// splitting rows into nregions equal bands (0 disables the per-region
// breakdown). The totals agree with Stats(): same Units, PerClass,
// RLEUnits and CtlBytes.
func (m *Matrix) Profile(nregions int) *Profile {
	p := &Profile{
		CtlBytes:      len(m.Ctl),
		USizeHist:     make([]int, 9),
		UJmpWidthHist: make([]int, 10),
		RLERunHist:    make([]int, 9),
	}
	if nregions > 0 && m.rows > 0 {
		if nregions > m.rows {
			nregions = m.rows
		}
		p.Regions = make([]RegionProfile, nregions)
		for i := range p.Regions {
			p.Regions[i].RowLo = i * m.rows / nregions
			p.Regions[i].RowHi = (i + 1) * m.rows / nregions
		}
	}
	ctl := m.Ctl
	pos := 0
	yi := -1
	total := 0
	for pos < len(ctl) {
		flags := ctl[pos]
		size := int(ctl[pos+1])
		pos += 2
		p.HeaderBytes += 2
		if flags&FlagNR != 0 {
			p.NRUnits++
			var skip uint64 = 1
			if flags&FlagRJMP != 0 {
				p.RJMPUnits++
				start := pos
				skip, pos = varint.DecodeAt(ctl, pos)
				p.JumpBytes += pos - start
			}
			yi += int(skip)
		}
		start := pos
		_, pos = varint.DecodeAt(ctl, pos) // ujmp
		p.JumpBytes += pos - start
		p.UJmpWidthHist[pos-start-1]++
		var reg *RegionProfile
		if len(p.Regions) > 0 {
			reg = &p.Regions[yi*len(p.Regions)/m.rows]
		}
		if flags&FlagRLE != 0 {
			start = pos
			_, pos = varint.DecodeAt(ctl, pos)
			p.JumpBytes += pos - start
			p.RLEUnits++
			p.RLERunHist[sizeBucket(size)]++
			if reg != nil {
				reg.RLEUnits++
			}
		} else {
			cls := int(flags & TypeMask)
			p.PerClass[cls]++
			db := (size - 1) << cls
			p.DeltaBytes += db
			pos += db
			if reg != nil {
				reg.PerClass[cls]++
			}
		}
		if reg != nil {
			reg.NNZ += size
		}
		p.USizeHist[sizeBucket(size)]++
		p.Units++
		total += size
	}
	if p.Units > 0 {
		p.AvgUnitSize = float64(total) / float64(p.Units)
	}
	return p
}
