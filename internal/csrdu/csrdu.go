// Package csrdu implements CSR-DU (CSR Delta Unit), the index
// compression scheme of the paper's §IV.
//
// The col_ind array of CSR is replaced by a byte stream called ctl.
// The matrix is divided into units — runs of non-zeros within one row —
// and each unit stores its column information as deltas between
// consecutive column indices, using the narrowest of 1/2/4/8-byte
// integers that fits every delta in the unit. Each unit contributes to
// ctl:
//
//	uflags  1 byte   delta width (bits 0-1), NR new-row flag (bit 6),
//	                 RJMP multi-row jump flag (bit 5), RLE flag (bit 7)
//	usize   1 byte   number of non-zeros in the unit (1..255)
//	[rjmp]  varint   rows skipped, present only when RJMP is set
//	ujmp    varint   column distance from the previous position
//	ucis    usize-1 fixed-width deltas (absent for RLE units, which
//	                 instead store one varint: the constant delta)
//
// Because the width is fixed per unit, the SpMV kernel decodes with a
// single switch per unit and tight branch-free inner loops — the paper's
// answer to DCSR's per-element decode branches. Units never span rows.
//
// The RLE unit type is the constant-delta extension from the authors'
// companion paper (CF'08, reference [8]); it is off by default and
// enabled with Options.RLE.
package csrdu

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/partition"
	"spmv/internal/varint"
)

// uflags bits.
const (
	TypeMask = 0x03 // bits 0-1: log2 of delta width in bytes
	FlagRJMP = 0x20 // a varint row jump follows usize (NR must be set)
	FlagNR   = 0x40 // unit starts a new row
	FlagRLE  = 0x80 // constant-delta unit: one varint delta, no ucis
)

// Delta width classes.
const (
	ClassU8 = iota
	ClassU16
	ClassU32
	ClassU64
)

// Options control the encoder.
type Options struct {
	// RLE enables constant-delta run units (CSR-DU+RLE).
	RLE bool
	// RLEMin is the minimum run length (in non-zeros) for an RLE unit.
	// Zero means the default of 6.
	RLEMin int
	// MinSwitch is the unit length below which the encoder widens the
	// current unit's delta class instead of starting a new unit when it
	// meets a wider delta. Zero means the default of 4. Larger values
	// produce fewer, wider units; smaller values produce more, tighter
	// units.
	MinSwitch int
	// Workers is the number of concurrent encoder workers. 0 or 1
	// encodes serially (the zero value keeps the historical behaviour);
	// n > 1 uses n workers; negative means GOMAXPROCS. The parallel
	// encoder's output is byte-identical to the serial encoder's, so
	// Workers is purely a construction-time knob. Small matrices encode
	// serially regardless.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.RLEMin == 0 {
		o.RLEMin = 6
	}
	if o.MinSwitch == 0 {
		o.MinSwitch = 4
	}
	return o
}

// Matrix is a sparse matrix in CSR-DU form.
type Matrix struct {
	rows, cols int
	Ctl        []byte
	Values     []float64
	opts       Options

	// marks locate the first unit of every non-empty row; they exist
	// only to support partitioning and are not part of the working set
	// (a production encoder would emit per-thread streams directly, as
	// the paper describes).
	marks []mark

	ctlBase, valBase uint64
}

type mark struct {
	row int // matrix row
	ctl int // offset of the row's first unit in Ctl
	val int // offset of the row's first value in Values
}

var (
	_ core.Format   = (*Matrix)(nil)
	_ core.Splitter = (*Matrix)(nil)
	_ core.Placer   = (*Matrix)(nil)
)

// FromCOO encodes a triplet matrix into CSR-DU with default options.
func FromCOO(c *core.COO) (*Matrix, error) { return FromCOOOpts(c, Options{}) }

// FromCOOOpts encodes a triplet matrix into CSR-DU. The COO is finalized
// in place if needed. Encoding is a single O(nnz) scan, matching the
// paper's claim that construction has no asymptotic overhead over CSR;
// Options.Workers spreads that scan over concurrent row-block encoders
// with byte-identical output.
func FromCOOOpts(c *core.COO, opts Options) (*Matrix, error) {
	if opts.Workers != 0 && opts.Workers != 1 {
		return fromCOOParallel(c, opts)
	}
	return fromCOOSerial(c, opts)
}

// fromCOOSerial is the single-threaded encoder.
func fromCOOSerial(c *core.COO, opts Options) (*Matrix, error) {
	c.Finalize()
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("csrdu: %d non-zeros exceed supported range", c.Len())
	}
	m := &Matrix{
		rows:   c.Rows(),
		cols:   c.Cols(),
		opts:   opts.withDefaults(),
		Values: make([]float64, 0, c.Len()),
		Ctl:    make([]byte, 0, c.Len()+c.Rows()/4),
	}
	enc := encoder{m: m, prevRow: -1}
	// Walk the finalized COO row by row.
	n := c.Len()
	for k := 0; k < n; {
		i0, _, _ := c.At(k)
		end := k
		for end < n {
			i, _, _ := c.At(end)
			if i != i0 {
				break
			}
			end++
		}
		cols := make([]int32, 0, end-k)
		for t := k; t < end; t++ {
			_, j, v := c.At(t)
			cols = append(cols, int32(j))
			m.Values = append(m.Values, v)
		}
		enc.encodeRow(i0, cols)
		k = end
	}
	return m, nil
}

// encoder carries per-matrix encoding state.
type encoder struct {
	m       *Matrix
	prevRow int
}

// encodeRow emits the units of one non-empty row. cols are the sorted
// column indices of the row's non-zeros.
func (e *encoder) encodeRow(row int, cols []int32) {
	m := e.m
	opts := m.opts
	m.marks = append(m.marks, mark{row: row, ctl: len(m.Ctl), val: len(m.Values) - len(cols)})

	newRow := true
	prevCol := int32(0) // x_indx resets to 0 on NR
	t := 0
	for t < len(cols) {
		// Candidate RLE run: elements t.. with equal deltas.
		if opts.RLE {
			run := 1
			for t+run < len(cols) && run < 255 &&
				cols[t+run]-cols[t+run-1] == cols[t+1]-cols[t] {
				run++
			}
			if run >= opts.RLEMin {
				delta := uint64(cols[t+1] - cols[t])
				e.emitUnit(FlagRLE, run, newRow, row, uint64(cols[t]-prevCol), nil, delta)
				prevCol = cols[t+run-1]
				t += run
				newRow = false
				continue
			}
		}
		// Normal unit: greedy class extension.
		start := t
		cls := ClassU8
		t++ // first element is carried by ujmp, not ucis
		for t < len(cols) && t-start < 255 {
			if opts.RLE {
				// Stop before a viable RLE run so it gets its own unit.
				run := 1
				for t+run < len(cols) && run < 255 &&
					cols[t+run]-cols[t+run-1] == cols[t+1]-cols[t] {
					run++
				}
				if run >= opts.RLEMin {
					break
				}
			}
			c := deltaClass(uint64(cols[t] - cols[t-1]))
			if c > cls {
				if t-start >= opts.MinSwitch {
					break // close unit; wider deltas start fresh
				}
				cls = c // unit still small: widen instead of splitting
			}
			t++
		}
		deltas := make([]uint64, 0, t-start-1)
		for k := start + 1; k < t; k++ {
			deltas = append(deltas, uint64(cols[k]-cols[k-1]))
		}
		e.emitNormal(cls, newRow, row, uint64(cols[start]-prevCol), deltas)
		prevCol = cols[t-1]
		newRow = false
	}
	e.prevRow = row
}

// emitNormal writes a delta unit with the given class.
func (e *encoder) emitNormal(cls int, newRow bool, row int, ujmp uint64, deltas []uint64) {
	e.emitUnit(byte(cls), len(deltas)+1, newRow, row, ujmp, deltas, 0)
}

// emitUnit writes one unit's bytes. For RLE units pass FlagRLE in flags
// and the constant delta in rleDelta; deltas must be nil.
func (e *encoder) emitUnit(flags byte, size int, newRow bool, row int, ujmp uint64, deltas []uint64, rleDelta uint64) {
	m := e.m
	var rjmp uint64
	if newRow {
		flags |= FlagNR
		skip := row - e.prevRow
		if skip > 1 {
			flags |= FlagRJMP
			rjmp = uint64(skip)
		}
	}
	m.Ctl = append(m.Ctl, flags, byte(size))
	if flags&FlagRJMP != 0 {
		m.Ctl = varint.Append(m.Ctl, rjmp)
	}
	m.Ctl = varint.Append(m.Ctl, ujmp)
	if flags&FlagRLE != 0 {
		m.Ctl = varint.Append(m.Ctl, rleDelta)
		return
	}
	switch flags & TypeMask {
	case ClassU8:
		for _, d := range deltas {
			m.Ctl = append(m.Ctl, byte(d))
		}
	case ClassU16:
		for _, d := range deltas {
			m.Ctl = append(m.Ctl, byte(d), byte(d>>8))
		}
	case ClassU32:
		for _, d := range deltas {
			m.Ctl = append(m.Ctl, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
		}
	default:
		for _, d := range deltas {
			m.Ctl = append(m.Ctl,
				byte(d), byte(d>>8), byte(d>>16), byte(d>>24),
				byte(d>>32), byte(d>>40), byte(d>>48), byte(d>>56))
		}
	}
}

// deltaClass returns the narrowest width class that holds d.
func deltaClass(d uint64) int {
	switch {
	case d < 1<<8:
		return ClassU8
	case d < 1<<16:
		return ClassU16
	case d < 1<<32:
		return ClassU32
	default:
		return ClassU64
	}
}

// RowMark locates the first unit of a non-empty row within the ctl and
// values streams. The marks are exposed so that derived formats (the
// combined CSR-DU-VI) can partition and anchor their own decoders on
// the same stream.
type RowMark struct {
	Row int // matrix row
	Ctl int // offset of the row's first unit in Ctl
	Val int // offset of the row's first value in Values
}

// RowMarks returns one mark per non-empty row, in row order.
func (m *Matrix) RowMarks() []RowMark {
	out := make([]RowMark, len(m.marks))
	for i, mk := range m.marks {
		out[i] = RowMark{Row: mk.row, Ctl: mk.ctl, Val: mk.val}
	}
	return out
}

// Name implements core.Format.
func (m *Matrix) Name() string {
	if m.opts.RLE {
		return "csr-du-rle"
	}
	return "csr-du"
}

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.cols }

// NNZ implements core.Format.
func (m *Matrix) NNZ() int { return len(m.Values) }

// SizeBytes implements core.Format: the ctl stream plus the values.
func (m *Matrix) SizeBytes() int64 {
	return int64(len(m.Ctl)) + int64(len(m.Values))*core.ValSize
}

// SpMV computes y = A*x.
func (m *Matrix) SpMV(y, x []float64) {
	(&chunk{m: m, lo: 0, hi: m.rows, ctlLo: 0, ctlHi: len(m.Ctl),
		valLo: 0, valHi: len(m.Values), startMark: 0}).SpMV(y, x)
}

// Split implements core.Splitter: nnz-balanced partitioning at row
// boundaries (every row boundary is a unit boundary, so each thread gets
// an offset into ctl, values and y — exactly the per-thread state the
// paper describes).
func (m *Matrix) Split(n int) []core.Chunk {
	if len(m.marks) == 0 {
		if m.rows == 0 {
			return nil
		}
		// All-empty matrix: one chunk that just zeroes y.
		return []core.Chunk{&chunk{m: m, lo: 0, hi: m.rows, startMark: -1}}
	}
	prefix := make([]int64, len(m.marks)+1)
	for i, mk := range m.marks {
		prefix[i] = int64(mk.val)
	}
	prefix[len(m.marks)] = int64(len(m.Values))
	bounds := partition.SplitPrefix(prefix, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		if a == b {
			continue
		}
		ch := &chunk{m: m, startMark: a}
		ch.lo = m.marks[a].row
		ch.ctlLo = m.marks[a].ctl
		ch.valLo = m.marks[a].val
		if b < len(m.marks) {
			ch.hi = m.marks[b].row
			ch.ctlHi = m.marks[b].ctl
			ch.valHi = m.marks[b].val
		} else {
			ch.hi = m.rows
			ch.ctlHi = len(m.Ctl)
			ch.valHi = len(m.Values)
		}
		if len(chunks) == 0 {
			ch.lo = 0 // cover leading empty rows
		}
		chunks = append(chunks, ch)
	}
	return chunks
}
