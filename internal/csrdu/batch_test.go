package csrdu

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

// countBatchDecodes installs the decode-counter hook for the duration
// of the test and returns the accumulated unit count.
func countBatchDecodes(t *testing.T) *int {
	t.Helper()
	total := new(int)
	batchDecodeHook = func(units int) { *total += units }
	t.Cleanup(func() { batchDecodeHook = nil })
	return total
}

// TestBatchDecodesOncePerUnit is the amortization guarantee behind the
// batched kernel: a k-column multiplication decodes the ctl stream
// exactly once — the unit count equals Stats().Units, independent of k.
func TestBatchDecodesOncePerUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := matgen.Banded(rng, 800, 30, 9, matgen.Values{})
	m, err := FromCOOOpts(c, Options{RLE: true})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Stats().Units
	if want == 0 {
		t.Fatal("degenerate test matrix: no units")
	}
	for _, k := range []int{2, 4, 8} {
		total := countBatchDecodes(t)
		y := make([]float64, m.Rows()*k)
		x := make([]float64, m.Cols()*k)
		for i := range x {
			x[i] = rng.Float64()
		}
		m.SpMVBatch(y, x, k)
		if *total != want {
			t.Errorf("k=%d: decoded %d units, want %d (one decode per unit)", k, *total, want)
		}
	}
}

// TestBatchChunksDecodeOncePerUnit runs the batched kernel over a row
// partition: the chunks' unit counts must sum to the whole matrix's.
func TestBatchChunksDecodeOncePerUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := matgen.Banded(rng, 800, 30, 9, matgen.Values{})
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	total := countBatchDecodes(t)
	y := make([]float64, m.Rows()*k)
	x := make([]float64, m.Cols()*k)
	for i := range x {
		x[i] = rng.Float64()
	}
	for _, ch := range m.Split(5) {
		ch.(core.BatchChunk).SpMVBatch(y, x, k)
	}
	if want := m.Stats().Units; *total != want {
		t.Errorf("chunks decoded %d units total, want %d", *total, want)
	}
}
