package csrdu

import (
	"spmv/internal/core"
	"spmv/internal/varint"
)

// Batched SpMV (SpMM) for CSR-DU: the ctl bytecode is decoded once per
// unit and the decoded deltas drive k FMA columns. Decode work — the
// price CSR-DU pays for its smaller stream — is a per-multiplication
// cost, so batching amortizes it together with the stream bytes: per
// vector, both fall by 1/k.

var (
	_ core.BatchFormat = (*Matrix)(nil)
	_ core.BatchChunk  = (*chunk)(nil)
)

// batchDecodeHook, when non-nil, receives the number of ctl units one
// batch-kernel call decoded. It is the test hook behind the
// amortization claim: a k-column batch must decode each unit once
// (units == Stats().Units), not once per column. Nil outside tests;
// the kernel pays one nil check per call.
var batchDecodeHook func(units int)

// SpMVBatch implements core.BatchFormat. len(x) >= Cols()*k,
// len(y) >= Rows()*k; k = 1 is bitwise identical to SpMV.
func (m *Matrix) SpMVBatch(y, x []float64, k int) {
	(&chunk{m: m, lo: 0, hi: m.rows, ctlLo: 0, ctlHi: len(m.Ctl),
		valLo: 0, valHi: len(m.Values), startMark: 0}).SpMVBatch(y, x, k)
}

// SpMVBatch implements core.BatchChunk: only panel rows [lo, hi) are
// written, so disjoint chunks may run concurrently.
func (c *chunk) SpMVBatch(y, x []float64, k int) {
	switch {
	case k == 1:
		// The panel degenerates to the vector; the scalar kernel's
		// operation order is the bitwise-k=1 contract.
		c.SpMV(y, x)
		return
	case k <= 0:
		panic(core.Usagef("csrdu: batch with non-positive vector count %d", k))
	}
	yr := y[c.lo*k : c.hi*k]
	for i := range yr {
		yr[i] = 0
	}
	if c.startMark < 0 {
		return
	}
	var units int
	if k == 4 {
		units = c.spmvBatch4(y, x)
	} else {
		units = c.spmvBatchK(y, x, k)
	}
	if batchDecodeHook != nil {
		batchDecodeHook(units)
	}
}

// spmvBatch4 is the k=4 kernel: the four row accumulators stay in
// registers across the whole unit, flushed once per row like the scalar
// kernel's sum. Returns the number of units decoded.
func (c *chunk) spmvBatch4(y, x []float64) int {
	m := c.m
	ctl := m.Ctl
	values := m.Values
	pos := c.ctlLo
	vi := c.valLo
	yi := -1
	xi := 0
	var s0, s1, s2, s3 float64
	first := true
	units := 0

	for pos < c.ctlHi {
		units++
		flags := ctl[pos]
		size := int(ctl[pos+1])
		pos += 2
		if flags&FlagNR != 0 {
			var skip uint64 = 1
			if flags&FlagRJMP != 0 {
				skip, pos = varint.DecodeAt(ctl, pos)
			}
			if first {
				// Anchor on the chunk's first row: the encoded row jump
				// is relative to the previous chunk's last row.
				yi = m.marks[c.startMark].row
				first = false
			} else {
				yr := y[yi*4:]
				yr = yr[:4]
				yr[0] += s0
				yr[1] += s1
				yr[2] += s2
				yr[3] += s3
				s0, s1, s2, s3 = 0, 0, 0, 0
				yi += int(skip)
			}
			xi = 0
		}
		var j uint64
		j, pos = varint.DecodeAt(ctl, pos)
		xi += int(j)
		{
			v := values[vi]
			xr := x[xi*4:]
			xr = xr[:4]
			s0 += v * xr[0]
			s1 += v * xr[1]
			s2 += v * xr[2]
			s3 += v * xr[3]
		}
		vi++

		n := size - 1
		if flags&FlagRLE != 0 {
			var d uint64
			d, pos = varint.DecodeAt(ctl, pos)
			delta := int(d)
			for _, v := range values[vi : vi+n] {
				xi += delta
				xr := x[xi*4:]
				xr = xr[:4]
				s0 += v * xr[0]
				s1 += v * xr[1]
				s2 += v * xr[2]
				s3 += v * xr[3]
			}
			vi += n
			continue
		}
		vals := values[vi : vi+n]
		vi += n
		switch flags & TypeMask {
		case ClassU8:
			deltas := ctl[pos : pos+n]
			pos += n
			deltas = deltas[:len(vals)]
			for p, v := range vals {
				xi += int(deltas[p])
				xr := x[xi*4:]
				xr = xr[:4]
				s0 += v * xr[0]
				s1 += v * xr[1]
				s2 += v * xr[2]
				s3 += v * xr[3]
			}
		case ClassU16:
			b := ctl[pos : pos+2*n]
			pos += 2 * n
			for p, v := range vals {
				d := b[2*p:]
				_ = d[1]
				xi += int(uint16(d[0]) | uint16(d[1])<<8)
				xr := x[xi*4:]
				xr = xr[:4]
				s0 += v * xr[0]
				s1 += v * xr[1]
				s2 += v * xr[2]
				s3 += v * xr[3]
			}
		case ClassU32:
			b := ctl[pos : pos+4*n]
			pos += 4 * n
			for p, v := range vals {
				d := b[4*p:]
				_ = d[3]
				xi += int(uint32(d[0]) | uint32(d[1])<<8 |
					uint32(d[2])<<16 | uint32(d[3])<<24)
				xr := x[xi*4:]
				xr = xr[:4]
				s0 += v * xr[0]
				s1 += v * xr[1]
				s2 += v * xr[2]
				s3 += v * xr[3]
			}
		default:
			b := ctl[pos : pos+8*n]
			pos += 8 * n
			for p, v := range vals {
				d := b[8*p:]
				_ = d[7]
				xi += int(uint64(d[0]) | uint64(d[1])<<8 |
					uint64(d[2])<<16 | uint64(d[3])<<24 |
					uint64(d[4])<<32 | uint64(d[5])<<40 |
					uint64(d[6])<<48 | uint64(d[7])<<56)
				xr := x[xi*4:]
				xr = xr[:4]
				s0 += v * xr[0]
				s1 += v * xr[1]
				s2 += v * xr[2]
				s3 += v * xr[3]
			}
		}
	}
	if !first {
		yr := y[yi*4:]
		yr = yr[:4]
		yr[0] += s0
		yr[1] += s1
		yr[2] += s2
		yr[3] += s3
	}
	return units
}

// spmvBatchK is the generic-width kernel: one heap-allocated accumulator
// row of k sums, flushed into the output panel on each row change.
// Returns the number of units decoded.
func (c *chunk) spmvBatchK(y, x []float64, k int) int {
	m := c.m
	ctl := m.Ctl
	values := m.Values
	pos := c.ctlLo
	vi := c.valLo
	yi := -1
	xi := 0
	acc := make([]float64, k)
	first := true
	units := 0

	for pos < c.ctlHi {
		units++
		flags := ctl[pos]
		size := int(ctl[pos+1])
		pos += 2
		if flags&FlagNR != 0 {
			var skip uint64 = 1
			if flags&FlagRJMP != 0 {
				skip, pos = varint.DecodeAt(ctl, pos)
			}
			if first {
				yi = m.marks[c.startMark].row
				first = false
			} else {
				yr := y[yi*k:]
				yr = yr[:len(acc)]
				for cc, s := range acc {
					yr[cc] += s
					acc[cc] = 0
				}
				yi += int(skip)
			}
			xi = 0
		}
		var j uint64
		j, pos = varint.DecodeAt(ctl, pos)
		xi += int(j)
		{
			v := values[vi]
			xr := x[xi*k:]
			xr = xr[:len(acc)]
			for cc, xv := range xr {
				acc[cc] += v * xv
			}
		}
		vi++

		n := size - 1
		if flags&FlagRLE != 0 {
			var d uint64
			d, pos = varint.DecodeAt(ctl, pos)
			delta := int(d)
			for _, v := range values[vi : vi+n] {
				xi += delta
				xr := x[xi*k:]
				xr = xr[:len(acc)]
				for cc, xv := range xr {
					acc[cc] += v * xv
				}
			}
			vi += n
			continue
		}
		vals := values[vi : vi+n]
		vi += n
		switch flags & TypeMask {
		case ClassU8:
			deltas := ctl[pos : pos+n]
			pos += n
			deltas = deltas[:len(vals)]
			for p, v := range vals {
				xi += int(deltas[p])
				xr := x[xi*k:]
				xr = xr[:len(acc)]
				for cc, xv := range xr {
					acc[cc] += v * xv
				}
			}
		case ClassU16:
			b := ctl[pos : pos+2*n]
			pos += 2 * n
			for p, v := range vals {
				d := b[2*p:]
				_ = d[1]
				xi += int(uint16(d[0]) | uint16(d[1])<<8)
				xr := x[xi*k:]
				xr = xr[:len(acc)]
				for cc, xv := range xr {
					acc[cc] += v * xv
				}
			}
		case ClassU32:
			b := ctl[pos : pos+4*n]
			pos += 4 * n
			for p, v := range vals {
				d := b[4*p:]
				_ = d[3]
				xi += int(uint32(d[0]) | uint32(d[1])<<8 |
					uint32(d[2])<<16 | uint32(d[3])<<24)
				xr := x[xi*k:]
				xr = xr[:len(acc)]
				for cc, xv := range xr {
					acc[cc] += v * xv
				}
			}
		default:
			b := ctl[pos : pos+8*n]
			pos += 8 * n
			for p, v := range vals {
				d := b[8*p:]
				_ = d[7]
				xi += int(uint64(d[0]) | uint64(d[1])<<8 |
					uint64(d[2])<<16 | uint64(d[3])<<24 |
					uint64(d[4])<<32 | uint64(d[5])<<40 |
					uint64(d[6])<<48 | uint64(d[7])<<56)
				xr := x[xi*k:]
				xr = xr[:len(acc)]
				for cc, xv := range xr {
					acc[cc] += v * xv
				}
			}
		}
	}
	if !first {
		yr := y[yi*k:]
		yr = yr[:len(acc)]
		for cc, s := range acc {
			yr[cc] += s
		}
	}
	return units
}
