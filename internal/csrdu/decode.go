package csrdu

import (
	"spmv/internal/core"
	"spmv/internal/varint"
)

// chunk is a contiguous row range of a CSR-DU matrix with its own
// offsets into the ctl and values streams. startMark indexes the first
// row mark of the chunk (-1 for the empty-matrix chunk) so the decoder
// can anchor its row counter without depending on state from preceding
// chunks.
type chunk struct {
	m            *Matrix
	lo, hi       int // row range [lo, hi)
	ctlLo, ctlHi int
	valLo, valHi int
	startMark    int
}

var _ core.Tracer = (*chunk)(nil)

func (c *chunk) RowRange() (int, int) { return c.lo, c.hi }
func (c *chunk) NNZ() int             { return c.valHi - c.valLo }

// SpMV runs the CSR-DU kernel (paper Fig 3) over the chunk. The row
// accumulator is kept in a register; per-unit inner loops are free of
// decode branches — the decode switch executes once per unit.
func (c *chunk) SpMV(y, x []float64) {
	for i := c.lo; i < c.hi; i++ {
		y[i] = 0
	}
	if c.startMark < 0 {
		return
	}
	m := c.m
	ctl := m.Ctl
	values := m.Values
	pos := c.ctlLo
	vi := c.valLo
	yi := -1
	xi := 0
	sum := 0.0
	first := true

	for pos < c.ctlHi {
		flags := ctl[pos]
		size := int(ctl[pos+1])
		pos += 2
		if flags&FlagNR != 0 {
			var skip uint64 = 1
			if flags&FlagRJMP != 0 {
				skip, pos = varint.DecodeAt(ctl, pos)
			}
			if first {
				// Anchor on the chunk's first row: the encoded row jump
				// is relative to the previous chunk's last row.
				yi = m.marks[c.startMark].row
				first = false
			} else {
				y[yi] += sum
				yi += int(skip)
			}
			sum = 0
			xi = 0
		}
		var j uint64
		j, pos = varint.DecodeAt(ctl, pos)
		xi += int(j)
		sum += values[vi] * x[xi]
		vi++

		// Subslice the unit's remaining values (and delta bytes) once
		// so the per-nnz loops index equal-length slices: the bounds
		// checks inside the loops collapse to the data-dependent
		// gather x[xi] plus one check per multi-byte delta load.
		n := size - 1
		if flags&FlagRLE != 0 {
			var d uint64
			d, pos = varint.DecodeAt(ctl, pos)
			delta := int(d)
			for _, v := range values[vi : vi+n] {
				xi += delta
				sum += v * x[xi]
			}
			vi += n
			continue
		}
		vals := values[vi : vi+n]
		vi += n
		switch flags & TypeMask {
		case ClassU8:
			deltas := ctl[pos : pos+n]
			pos += n
			deltas = deltas[:len(vals)]
			for k, v := range vals {
				xi += int(deltas[k])
				sum += v * x[xi]
			}
		case ClassU16:
			b := ctl[pos : pos+2*n]
			pos += 2 * n
			for k, v := range vals {
				d := b[2*k:]
				_ = d[1]
				xi += int(uint16(d[0]) | uint16(d[1])<<8)
				sum += v * x[xi]
			}
		case ClassU32:
			b := ctl[pos : pos+4*n]
			pos += 4 * n
			for k, v := range vals {
				d := b[4*k:]
				_ = d[3]
				xi += int(uint32(d[0]) | uint32(d[1])<<8 |
					uint32(d[2])<<16 | uint32(d[3])<<24)
				sum += v * x[xi]
			}
		default:
			b := ctl[pos : pos+8*n]
			pos += 8 * n
			for k, v := range vals {
				d := b[8*k:]
				_ = d[7]
				xi += int(uint64(d[0]) | uint64(d[1])<<8 |
					uint64(d[2])<<16 | uint64(d[3])<<24 |
					uint64(d[4])<<32 | uint64(d[5])<<40 |
					uint64(d[6])<<48 | uint64(d[7])<<56)
				sum += v * x[xi]
			}
		}
	}
	if !first {
		y[yi] += sum
	}
}

// ForEach decodes the ctl stream and calls fn for every non-zero in
// row-major order. It is the exact inverse of the encoder and the basis
// of the encode/decode round-trip property tests.
func (m *Matrix) ForEach(fn func(i, j int, v float64)) {
	ctl := m.Ctl
	pos := 0
	vi := 0
	yi := -1
	xi := 0
	for pos < len(ctl) {
		flags := ctl[pos]
		size := int(ctl[pos+1])
		pos += 2
		if flags&FlagNR != 0 {
			var skip uint64 = 1
			if flags&FlagRJMP != 0 {
				skip, pos = varint.DecodeAt(ctl, pos)
			}
			yi += int(skip)
			xi = 0
		}
		var j uint64
		j, pos = varint.DecodeAt(ctl, pos)
		xi += int(j)
		fn(yi, xi, m.Values[vi])
		vi++
		if flags&FlagRLE != 0 {
			var d uint64
			d, pos = varint.DecodeAt(ctl, pos)
			for k := 1; k < size; k++ {
				xi += int(d)
				fn(yi, xi, m.Values[vi])
				vi++
			}
			continue
		}
		cls := uint(flags & TypeMask)
		for k := 1; k < size; k++ {
			var d uint64
			switch cls {
			case ClassU8:
				d = uint64(ctl[pos])
			case ClassU16:
				d = uint64(ctl[pos]) | uint64(ctl[pos+1])<<8
			case ClassU32:
				d = uint64(ctl[pos]) | uint64(ctl[pos+1])<<8 |
					uint64(ctl[pos+2])<<16 | uint64(ctl[pos+3])<<24
			default:
				d = uint64(ctl[pos]) | uint64(ctl[pos+1])<<8 |
					uint64(ctl[pos+2])<<16 | uint64(ctl[pos+3])<<24 |
					uint64(ctl[pos+4])<<32 | uint64(ctl[pos+5])<<40 |
					uint64(ctl[pos+6])<<48 | uint64(ctl[pos+7])<<56
			}
			pos += 1 << cls
			xi += int(d)
			fn(yi, xi, m.Values[vi])
			vi++
		}
	}
}

// Triplets decodes the matrix back to finalized COO form: the inverse
// of FromCOO.
func (m *Matrix) Triplets() *core.COO {
	c := core.NewCOO(m.rows, m.cols)
	m.ForEach(func(i, j int, v float64) { c.Add(i, j, v) })
	c.Finalize()
	return c
}

// UnitStats summarizes the unit mix of an encoded matrix: how many
// units of each delta class and how many RLE units, plus the average
// unit size. The paper's performance argument rests on units being
// large (few decode branches) and narrow (few index bytes).
type UnitStats struct {
	Units    int
	PerClass [4]int // indexed by ClassU8..ClassU64 (RLE units excluded)
	RLEUnits int
	AvgSize  float64
	CtlBytes int
}

// Stats decodes the ctl stream and returns the unit statistics.
func (m *Matrix) Stats() UnitStats {
	var s UnitStats
	s.CtlBytes = len(m.Ctl)
	pos := 0
	total := 0
	for pos < len(m.Ctl) {
		flags := m.Ctl[pos]
		size := int(m.Ctl[pos+1])
		pos += 2
		if flags&FlagRJMP != 0 {
			_, pos = varint.DecodeAt(m.Ctl, pos)
		}
		_, pos = varint.DecodeAt(m.Ctl, pos) // ujmp
		if flags&FlagRLE != 0 {
			_, pos = varint.DecodeAt(m.Ctl, pos)
			s.RLEUnits++
		} else {
			cls := int(flags & TypeMask)
			s.PerClass[cls]++
			pos += (size - 1) << cls
		}
		s.Units++
		total += size
	}
	if s.Units > 0 {
		s.AvgSize = float64(total) / float64(s.Units)
	}
	return s
}
