package csrdu

import (
	"spmv/internal/core"
	"spmv/internal/varint"
)

// scanStream walks a ctl stream trusting nothing: every unit header,
// varint, fixed-width delta block and row/column position is bounds-
// checked. It returns the row marks the partitioner needs and whether
// any RLE unit was seen. nvals is the expected element count; the scan
// fails unless the stream decodes to exactly that many elements.
// Errors wrap core.ErrCorrupt / core.ErrTruncated / core.ErrShape.
func scanStream(ctl []byte, nvals, rows, cols int) (marks []mark, sawRLE bool, err error) {
	pos := 0
	vi := 0
	yi := -1
	xi := 0
	readVarint := func() (uint64, error) {
		v, n := varint.Decode(ctl[pos:])
		if n == 0 {
			return 0, core.Truncatedf("csrdu: varint at offset %d", pos)
		}
		if n < 0 {
			return 0, core.Corruptf("csrdu: varint overflow at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	for pos < len(ctl) {
		if pos+2 > len(ctl) {
			return nil, false, core.Truncatedf("csrdu: unit header at offset %d", pos)
		}
		flags := ctl[pos]
		size := int(ctl[pos+1])
		unitStart := pos
		pos += 2
		if size == 0 {
			return nil, false, core.Corruptf("csrdu: zero-size unit at offset %d", unitStart)
		}
		if flags&FlagNR != 0 {
			var skip uint64 = 1
			if flags&FlagRJMP != 0 {
				if skip, err = readVarint(); err != nil {
					return nil, false, err
				}
				if skip == 0 {
					return nil, false, core.Corruptf("csrdu: zero row jump at offset %d", unitStart)
				}
			}
			if skip > uint64(rows) {
				return nil, false, core.Corruptf("csrdu: row jump %d exceeds %d rows at offset %d", skip, rows, unitStart)
			}
			yi += int(skip)
			if yi >= rows {
				return nil, false, core.Corruptf("csrdu: row %d out of range (%d rows)", yi, rows)
			}
			xi = 0
			marks = append(marks, mark{row: yi, ctl: unitStart, val: vi})
		} else if yi < 0 {
			return nil, false, core.Corruptf("csrdu: first unit lacks NR flag")
		}
		j, err := readVarint()
		if err != nil {
			return nil, false, err
		}
		if j > uint64(cols) {
			return nil, false, core.Corruptf("csrdu: column jump %d exceeds %d cols at offset %d", j, cols, unitStart)
		}
		xi += int(j)
		vi += size
		if vi > nvals {
			return nil, false, core.Shapef("csrdu: unit at %d overruns %d values", unitStart, nvals)
		}
		if flags&FlagRLE != 0 {
			sawRLE = true
			d, err := readVarint()
			if err != nil {
				return nil, false, err
			}
			if d > uint64(cols) {
				return nil, false, core.Corruptf("csrdu: RLE delta %d exceeds %d cols at offset %d", d, cols, unitStart)
			}
			xi += int(d) * (size - 1)
			if xi < 0 || xi >= cols {
				return nil, false, core.Corruptf("csrdu: column position %d out of range (%d cols) at offset %d", xi, cols, unitStart)
			}
		} else {
			cls := uint(flags & TypeMask)
			need := (size - 1) << cls
			if pos+need > len(ctl) {
				return nil, false, core.Truncatedf("csrdu: ucis at offset %d", pos)
			}
			for k := 1; k < size; k++ {
				var d uint64
				switch cls {
				case ClassU8:
					d = uint64(ctl[pos])
				case ClassU16:
					d = uint64(ctl[pos]) | uint64(ctl[pos+1])<<8
				case ClassU32:
					d = uint64(ctl[pos]) | uint64(ctl[pos+1])<<8 |
						uint64(ctl[pos+2])<<16 | uint64(ctl[pos+3])<<24
				default:
					d = uint64(ctl[pos]) | uint64(ctl[pos+1])<<8 |
						uint64(ctl[pos+2])<<16 | uint64(ctl[pos+3])<<24 |
						uint64(ctl[pos+4])<<32 | uint64(ctl[pos+5])<<40 |
						uint64(ctl[pos+6])<<48 | uint64(ctl[pos+7])<<56
				}
				pos += 1 << cls
				if d > uint64(cols) {
					return nil, false, core.Corruptf("csrdu: delta %d exceeds %d cols at offset %d", d, cols, unitStart)
				}
				xi += int(d)
				if xi >= cols {
					return nil, false, core.Corruptf("csrdu: column position %d out of range (%d cols) at offset %d", xi, cols, unitStart)
				}
			}
		}
		if xi < 0 || xi >= cols {
			return nil, false, core.Corruptf("csrdu: column position %d out of range (%d cols) at offset %d", xi, cols, unitStart)
		}
	}
	if vi != nvals {
		return nil, false, core.Shapef("csrdu: stream encodes %d elements, %d values given", vi, nvals)
	}
	return marks, sawRLE, nil
}

// FromRaw reconstructs a Matrix from a serialized ctl stream and values
// array (the inverse of reading m.Ctl/m.Values, used by the matfile
// container). The stream is scanned once to validate its structure —
// bounds of every row and column position, value-count consistency —
// and to rebuild the row marks that partitioning needs. Unlike the hot
// SpMV decoder, this scan trusts nothing about the input.
func FromRaw(ctl []byte, values []float64, rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, core.Shapef("csrdu: invalid dimensions %dx%d", rows, cols)
	}
	marks, sawRLE, err := scanStream(ctl, len(values), rows, cols)
	if err != nil {
		return nil, err
	}
	m := &Matrix{rows: rows, cols: cols, Ctl: ctl, Values: values, opts: Options{}.withDefaults()}
	m.marks = marks
	m.opts.RLE = sawRLE
	return m, nil
}

// Verify implements core.Verifier: the full untrusting scan of the ctl
// stream (the kernel's preconditions exactly — if Verify passes, SpMV
// cannot read out of bounds), plus a consistency check of the row marks
// the partitioner uses against the stream's actual row starts.
func (m *Matrix) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("csrdu: negative dimensions %dx%d", m.rows, m.cols)
	}
	if len(m.Ctl) > 0 && (m.rows == 0 || m.cols == 0) {
		return core.Shapef("csrdu: non-empty stream for %dx%d matrix", m.rows, m.cols)
	}
	marks, _, err := scanStream(m.Ctl, len(m.Values), m.rows, m.cols)
	if err != nil {
		return err
	}
	if len(marks) != len(m.marks) {
		return core.Corruptf("csrdu: %d row marks stored, stream has %d rows", len(m.marks), len(marks))
	}
	for i := range marks {
		if marks[i] != m.marks[i] {
			return core.Corruptf("csrdu: row mark %d (%+v) disagrees with stream (%+v)", i, m.marks[i], marks[i])
		}
	}
	return nil
}
