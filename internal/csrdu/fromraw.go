package csrdu

import (
	"fmt"

	"spmv/internal/varint"
)

// FromRaw reconstructs a Matrix from a serialized ctl stream and values
// array (the inverse of reading m.Ctl/m.Values, used by the matfile
// container). The stream is scanned once to validate its structure —
// bounds of every row and column position, value-count consistency —
// and to rebuild the row marks that partitioning needs. Unlike the hot
// SpMV decoder, this scan trusts nothing about the input.
func FromRaw(ctl []byte, values []float64, rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("csrdu: invalid dimensions %dx%d", rows, cols)
	}
	m := &Matrix{rows: rows, cols: cols, Ctl: ctl, Values: values, opts: Options{}.withDefaults()}
	pos := 0
	vi := 0
	yi := -1
	xi := 0
	sawRLE := false
	readVarint := func() (uint64, error) {
		v, n := varint.Decode(ctl[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("csrdu: truncated varint at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	for pos < len(ctl) {
		if pos+2 > len(ctl) {
			return nil, fmt.Errorf("csrdu: truncated unit header at offset %d", pos)
		}
		flags := ctl[pos]
		size := int(ctl[pos+1])
		unitStart := pos
		pos += 2
		if size == 0 {
			return nil, fmt.Errorf("csrdu: zero-size unit at offset %d", unitStart)
		}
		if flags&FlagNR != 0 {
			var skip uint64 = 1
			if flags&FlagRJMP != 0 {
				var err error
				if skip, err = readVarint(); err != nil {
					return nil, err
				}
				if skip == 0 {
					return nil, fmt.Errorf("csrdu: zero row jump at offset %d", unitStart)
				}
			}
			yi += int(skip)
			if yi >= rows {
				return nil, fmt.Errorf("csrdu: row %d out of range (%d rows)", yi, rows)
			}
			xi = 0
			m.marks = append(m.marks, mark{row: yi, ctl: unitStart, val: vi})
		} else if yi < 0 {
			return nil, fmt.Errorf("csrdu: first unit lacks NR flag")
		}
		j, err := readVarint()
		if err != nil {
			return nil, err
		}
		xi += int(j)
		vi += size
		if vi > len(values) {
			return nil, fmt.Errorf("csrdu: unit at %d overruns %d values", unitStart, len(values))
		}
		if flags&FlagRLE != 0 {
			sawRLE = true
			d, err := readVarint()
			if err != nil {
				return nil, err
			}
			xi += int(d) * (size - 1)
		} else {
			cls := uint(flags & TypeMask)
			need := (size - 1) << cls
			if pos+need > len(ctl) {
				return nil, fmt.Errorf("csrdu: truncated ucis at offset %d", pos)
			}
			for k := 1; k < size; k++ {
				var d uint64
				switch cls {
				case ClassU8:
					d = uint64(ctl[pos])
				case ClassU16:
					d = uint64(ctl[pos]) | uint64(ctl[pos+1])<<8
				case ClassU32:
					d = uint64(ctl[pos]) | uint64(ctl[pos+1])<<8 |
						uint64(ctl[pos+2])<<16 | uint64(ctl[pos+3])<<24
				default:
					d = uint64(ctl[pos]) | uint64(ctl[pos+1])<<8 |
						uint64(ctl[pos+2])<<16 | uint64(ctl[pos+3])<<24 |
						uint64(ctl[pos+4])<<32 | uint64(ctl[pos+5])<<40 |
						uint64(ctl[pos+6])<<48 | uint64(ctl[pos+7])<<56
				}
				pos += 1 << cls
				xi += int(d)
			}
		}
		if xi < 0 || xi >= cols {
			return nil, fmt.Errorf("csrdu: column position %d out of range (%d cols) at offset %d", xi, cols, unitStart)
		}
	}
	if vi != len(values) {
		return nil, fmt.Errorf("csrdu: stream encodes %d elements, %d values given", vi, len(values))
	}
	m.opts.RLE = sawRLE
	return m, nil
}
