package csrdu

import (
	"runtime"
	"sync"

	"spmv/internal/core"
)

// FromCOOParallel encodes with nworkers concurrent encoders (0 means
// GOMAXPROCS).
//
// Deprecated: set Options.Workers and call FromCOOOpts instead; the
// worker count is an encoder option, not a separate constructor. This
// wrapper remains for compatibility and maps nworkers <= 0 to
// Workers = -1 (GOMAXPROCS).
func FromCOOParallel(c *core.COO, opts Options, nworkers int) (*Matrix, error) {
	if nworkers <= 0 {
		nworkers = -1
	}
	opts.Workers = nworkers
	return FromCOOOpts(c, opts)
}

// fromCOOParallel is the multi-worker encoder behind Options.Workers.
// The matrix is cut into row blocks, each encoded independently
// (CSR-DU units never span rows, so block streams concatenate
// losslessly after the marks are rebased), giving near-linear
// construction speedup on multicores. Each block's encoder is seeded
// with the previous block's last row, so the concatenated stream is
// byte-identical to the serial encoder's output.
func fromCOOParallel(c *core.COO, opts Options) (*Matrix, error) {
	c.Finalize()
	nworkers := opts.Workers
	if nworkers <= 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}
	n := c.Len()
	if nworkers == 1 || n < 1<<14 {
		return fromCOOSerial(c, opts)
	}

	// Block boundaries at row edges, near-equal nnz.
	bounds := rowBlockBounds(c, nworkers)
	parts := make([]*Matrix, len(bounds)-1)
	errs := make([]error, len(bounds)-1)
	var wg sync.WaitGroup
	for w := 0; w+1 < len(bounds); w++ {
		w := w
		prevRow := -1
		if bounds[w] > 0 {
			// The entry before the block start ends the previous
			// non-empty row, which anchors this block's first row jump.
			r, _, _ := c.At(bounds[w] - 1)
			prevRow = r
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts[w], errs[w] = encodeBlock(c, bounds[w], bounds[w+1], prevRow, opts)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Concatenate: streams are self-delimiting; marks need offsets.
	out := &Matrix{rows: c.Rows(), cols: c.Cols(), opts: opts.withDefaults()}
	for _, p := range parts {
		ctlOff := len(out.Ctl)
		valOff := len(out.Values)
		out.Ctl = append(out.Ctl, p.Ctl...)
		out.Values = append(out.Values, p.Values...)
		for _, mk := range p.marks {
			out.marks = append(out.marks, mark{row: mk.row, ctl: mk.ctl + ctlOff, val: mk.val + valOff})
		}
	}
	return out, nil
}

// rowBlockBounds returns entry indices of block starts, aligned to row
// boundaries.
func rowBlockBounds(c *core.COO, nworkers int) []int {
	n := c.Len()
	bounds := []int{0}
	for w := 1; w < nworkers; w++ {
		k := w * n / nworkers
		if k <= bounds[len(bounds)-1] {
			continue
		}
		// Advance to the next row boundary.
		row, _, _ := c.At(k)
		for k < n {
			r, _, _ := c.At(k)
			if r != row {
				break
			}
			k++
		}
		if k > bounds[len(bounds)-1] && k < n {
			bounds = append(bounds, k)
		}
	}
	return append(bounds, n)
}

// encodeBlock encodes entries [from, to) — whole rows — into a
// standalone Matrix whose marks carry absolute row numbers. prevRow is
// the last non-empty row before the block (-1 for the first block), so
// the block's first row jump matches the serial encoding.
func encodeBlock(c *core.COO, from, to, prevRow int, opts Options) (*Matrix, error) {
	m := &Matrix{
		rows: c.Rows(), cols: c.Cols(), opts: opts.withDefaults(),
		Values: make([]float64, 0, to-from),
		Ctl:    make([]byte, 0, (to-from)+16),
	}
	enc := encoder{m: m, prevRow: prevRow}
	for k := from; k < to; {
		i0, _, _ := c.At(k)
		end := k
		for end < to {
			i, _, _ := c.At(end)
			if i != i0 {
				break
			}
			end++
		}
		cols := make([]int32, 0, end-k)
		for t := k; t < end; t++ {
			_, j, v := c.At(t)
			cols = append(cols, int32(j))
			m.Values = append(m.Values, v)
		}
		enc.encodeRow(i0, cols)
		k = end
	}
	return m, nil
}
