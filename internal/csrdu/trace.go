package csrdu

import (
	"spmv/internal/core"
	"spmv/internal/varint"
)

// Compute-cost model: CSR-DU trades CPU work for bandwidth. Each
// non-zero costs the CSR work plus the delta add; each unit costs a
// decode switch. The costs are attached to the per-nnz x gathers and to
// the ctl stream lines respectively.
// The per-element cost matches CSR's: the paper's point is that unit
// decoding adds only one branch per unit, so the per-element delta add
// disappears into the same multiply-accumulate slot.
const (
	duCompPerNNZ  = 3
	duCompPerUnit = 8
)

// Place implements core.Placer.
func (m *Matrix) Place(a *core.Arena) {
	m.ctlBase = a.Alloc(int64(len(m.Ctl)))
	m.valBase = a.Alloc(int64(len(m.Values)) * 8)
}

// TraceSpMV implements core.Tracer: it replays the kernel's memory
// stream — the ctl bytes and values are sequential (coalesced to lines),
// the x gathers are per non-zero, y stores once per row.
func (c *chunk) TraceSpMV(xBase, yBase uint64, emit core.EmitFunc) {
	m := c.m
	if m.ctlBase == 0 && len(m.Ctl) > 0 {
		panic(core.Usagef("csrdu: TraceSpMV before Place"))
	}
	if c.startMark < 0 {
		return
	}
	ctl := m.Ctl
	cs := core.NewStreamCursor(m.ctlBase)
	vs := core.NewStreamCursor(m.valBase)
	yw := core.NewStreamCursor(yBase)

	pos := c.ctlLo
	vi := c.valLo
	yi := -1
	xi := 0
	first := true
	touchX := func() {
		vs.Touch(emit, int64(vi)*8, 8, false, 0)
		emit(core.Access{Addr: xBase + uint64(xi)*8, Size: 8, Comp: duCompPerNNZ})
		vi++
	}
	for pos < c.ctlHi {
		unitStart := pos
		flags := ctl[pos]
		size := int(ctl[pos+1])
		pos += 2
		if flags&FlagNR != 0 {
			var skip uint64 = 1
			if flags&FlagRJMP != 0 {
				skip, pos = varint.DecodeAt(ctl, pos)
			}
			if first {
				yi = m.marks[c.startMark].row
				first = false
			} else {
				yw.Touch(emit, int64(yi)*8, 8, true, 0)
				yi += int(skip)
			}
			xi = 0
		}
		var j uint64
		j, pos = varint.DecodeAt(ctl, pos)
		xi += int(j)
		cs.Touch(emit, int64(unitStart), 1, false, duCompPerUnit)
		touchX()
		if flags&FlagRLE != 0 {
			var d uint64
			d, pos = varint.DecodeAt(ctl, pos)
			for k := 1; k < size; k++ {
				xi += int(d)
				touchX()
			}
		} else {
			cls := uint(flags & TypeMask)
			for k := 1; k < size; k++ {
				var d int
				switch cls {
				case ClassU8:
					d = int(ctl[pos])
				case ClassU16:
					d = int(uint16(ctl[pos]) | uint16(ctl[pos+1])<<8)
				case ClassU32:
					d = int(uint32(ctl[pos]) | uint32(ctl[pos+1])<<8 |
						uint32(ctl[pos+2])<<16 | uint32(ctl[pos+3])<<24)
				default:
					d = int(uint64(ctl[pos]) | uint64(ctl[pos+1])<<8 |
						uint64(ctl[pos+2])<<16 | uint64(ctl[pos+3])<<24 |
						uint64(ctl[pos+4])<<32 | uint64(ctl[pos+5])<<40 |
						uint64(ctl[pos+6])<<48 | uint64(ctl[pos+7])<<56)
				}
				cs.Touch(emit, int64(pos), 1<<cls, false, 0)
				pos += 1 << cls
				xi += d
				touchX()
			}
		}
	}
	if !first {
		yw.Touch(emit, int64(yi)*8, 8, true, 0)
	}
}
