package csrdu

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func fig1Matrix() *core.COO {
	vals := [][]float64{
		{5.4, 1.1, 0, 0, 0, 0},
		{0, 6.3, 0, 7.7, 0, 8.8},
		{0, 0, 1.1, 0, 0, 0},
		{0, 0, 2.9, 0, 3.7, 2.9},
		{9.0, 0, 0, 1.1, 4.5, 0},
		{1.1, 0, 2.9, 3.7, 0, 1.1},
	}
	c := core.NewCOO(6, 6)
	for i, row := range vals {
		for j, v := range row {
			if v != 0 {
				c.Add(i, j, v)
			}
		}
	}
	c.Finalize()
	return c
}

func TestConformance(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return FromCOO(c) })
}

func TestConformanceRLE(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) {
		return FromCOOOpts(c, Options{RLE: true})
	})
}

func TestConformanceTinyUnits(t *testing.T) {
	// MinSwitch 1 forces a new unit on every class change.
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) {
		return FromCOOOpts(c, Options{MinSwitch: 1})
	})
}

// TestTableIExample checks the encoded stream against the paper's
// Table I: six u8+NR units with sizes {2,3,1,3,3,4}, ujmp
// {0,1,2,2,0,0} and ucis {1 | 2,2 | — | 2,1 | 3,1 | 2,1,2}.
func TestTableIExample(t *testing.T) {
	m, err := FromCOO(fig1Matrix())
	if err != nil {
		t.Fatal(err)
	}
	type unit struct {
		size byte
		ujmp byte
		ucis []byte
	}
	want := []unit{
		{2, 0, []byte{1}},
		{3, 1, []byte{2, 2}},
		{1, 2, nil},
		{3, 2, []byte{2, 1}},
		{3, 0, []byte{3, 1}},
		{4, 0, []byte{2, 1, 2}},
	}
	var wantCtl []byte
	for _, u := range want {
		wantCtl = append(wantCtl, FlagNR|ClassU8, u.size, u.ujmp)
		wantCtl = append(wantCtl, u.ucis...)
	}
	if len(m.Ctl) != len(wantCtl) {
		t.Fatalf("ctl = %v (%d bytes), want %v (%d bytes)", m.Ctl, len(m.Ctl), wantCtl, len(wantCtl))
	}
	for i := range wantCtl {
		if m.Ctl[i] != wantCtl[i] {
			t.Fatalf("ctl[%d] = %#x, want %#x\nctl  = %v\nwant = %v", i, m.Ctl[i], wantCtl[i], m.Ctl, wantCtl)
		}
	}
	st := m.Stats()
	if st.Units != 6 || st.PerClass[ClassU8] != 6 || st.RLEUnits != 0 {
		t.Errorf("Stats = %+v, want 6 u8 units", st)
	}
}

func TestCompressionOnBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := matgen.Banded(rng, 5000, 40, 12, matgen.Values{})
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	ratio := core.CompressionRatio(m)
	if ratio >= 1 {
		t.Errorf("CSR-DU did not compress banded matrix: ratio %v", ratio)
	}
	// Deltas fit in one byte: ctl should be well under col_ind's 4 bytes/nnz.
	ctlPerNNZ := float64(len(m.Ctl)) / float64(m.NNZ())
	if ctlPerNNZ > 2.0 {
		t.Errorf("ctl bytes per nnz = %v, want < 2 for banded", ctlPerNNZ)
	}
}

func TestCompressionWorstCaseStillBounded(t *testing.T) {
	// Uniform random wide matrix: deltas need u16/u32, compression poor
	// but ctl must stay below ~4.5 bytes/nnz (header amortized).
	rng := rand.New(rand.NewSource(2))
	c := matgen.RandomUniform(rng, 2000, 1<<20, 8, matgen.Values{})
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	ctlPerNNZ := float64(len(m.Ctl)) / float64(m.NNZ())
	if ctlPerNNZ > 4.5 {
		t.Errorf("ctl bytes per nnz = %v on worst case", ctlPerNNZ)
	}
}

func TestRLEShrinksDenseRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := matgen.BlockDiag(rng, 200, 32, matgen.Values{})
	plain, _ := FromCOO(c)
	rle, err := FromCOOOpts(c, Options{RLE: true})
	if err != nil {
		t.Fatal(err)
	}
	if rle.SizeBytes() >= plain.SizeBytes() {
		t.Errorf("RLE (%d) not smaller than plain (%d) on dense blocks",
			rle.SizeBytes(), plain.SizeBytes())
	}
	st := rle.Stats()
	if st.RLEUnits == 0 {
		t.Error("no RLE units on dense-run matrix")
	}
}

func TestUnitsNeverSpanRows(t *testing.T) {
	// Decode the ctl stream of a corpus matrix and verify each row's
	// element count matches CSR, i.e. NR flags appear exactly at row
	// boundaries.
	rng := rand.New(rand.NewSource(4))
	c := matgen.PowerLaw(rng, 500, 7, 0.8, matgen.Values{})
	m, _ := FromCOO(c)
	ref, _ := csr.FromCOO(c)
	// Count nnz per row via a traced SpMV on a y-per-row basis: easier
	// to just run SpMV and compare against CSR on a basis vector per
	// block of rows.
	x := testmat.RandVec(rng, m.Cols())
	y1 := make([]float64, m.Rows())
	y2 := make([]float64, m.Rows())
	m.SpMV(y1, x)
	ref.SpMV(y2, x)
	testmat.AssertClose(t, "SpMV vs CSR", y1, y2, 1e-12)
	// Unit sizes must each be <= 255 and rows with >255 nnz must split.
	st := m.Stats()
	if st.AvgSize <= 0 || st.AvgSize > 255 {
		t.Errorf("AvgSize = %v", st.AvgSize)
	}
}

func TestLongRowSplitsAt255(t *testing.T) {
	c := core.NewCOO(1, 1000)
	for j := 0; j < 600; j++ {
		c.Add(0, j, float64(j+1))
	}
	c.Finalize()
	m, _ := FromCOO(c)
	st := m.Stats()
	if st.Units < 3 {
		t.Errorf("600-nnz row encoded in %d units, want >= 3 (255 cap)", st.Units)
	}
	x := make([]float64, 1000)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, 1)
	m.SpMV(y, x)
	want := float64(600*601) / 2
	if y[0] != want {
		t.Errorf("SpMV over split units = %v, want %v", y[0], want)
	}
}

func TestEmptyLeadingAndTrailingRows(t *testing.T) {
	c := core.NewCOO(10, 10)
	c.Add(4, 2, 3)
	c.Add(6, 1, 2)
	c.Finalize()
	m, _ := FromCOO(c)
	x := make([]float64, 10)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, 10)
	for i := range y {
		y[i] = 99
	}
	m.SpMV(y, x)
	for i := range y {
		want := 0.0
		if i == 4 {
			want = 3
		}
		if i == 6 {
			want = 2
		}
		if y[i] != want {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want)
		}
	}
	// The row jump from row 4 to 6 must use RJMP.
	st := m.Stats()
	if st.Units != 2 {
		t.Errorf("units = %d, want 2", st.Units)
	}
}

func TestSplitChunksSelfContained(t *testing.T) {
	// Chunks must decode independently of each other: run them in
	// reverse order and compare.
	rng := rand.New(rand.NewSource(5))
	c := matgen.FEMLike(rng, 400, 6, matgen.Values{})
	m, _ := FromCOO(c)
	x := testmat.RandVec(rng, m.Cols())
	want := make([]float64, m.Rows())
	m.SpMV(want, x)
	got := make([]float64, m.Rows())
	chunks := m.Split(5)
	for i := len(chunks) - 1; i >= 0; i-- {
		chunks[i].SpMV(got, x)
	}
	testmat.AssertClose(t, "reverse chunk decode", got, want, 1e-12)
}

func TestMinSwitchTradeoff(t *testing.T) {
	// Larger MinSwitch must not increase the unit count.
	rng := rand.New(rand.NewSource(6))
	c := matgen.FEMLike(rng, 600, 7, matgen.Values{})
	small, _ := FromCOOOpts(c, Options{MinSwitch: 1})
	large, _ := FromCOOOpts(c, Options{MinSwitch: 16})
	if large.Stats().Units > small.Stats().Units {
		t.Errorf("MinSwitch=16 produced more units (%d) than MinSwitch=1 (%d)",
			large.Stats().Units, small.Stats().Units)
	}
}

func TestNameReflectsOptions(t *testing.T) {
	c := fig1Matrix()
	plain, _ := FromCOO(c)
	rle, _ := FromCOOOpts(c, Options{RLE: true})
	if plain.Name() != "csr-du" || rle.Name() != "csr-du-rle" {
		t.Errorf("names = %q, %q", plain.Name(), rle.Name())
	}
}

func TestStatsCtlBytesMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := matgen.Banded(rng, 300, 9, 5, matgen.Values{})
	m, _ := FromCOO(c)
	if st := m.Stats(); st.CtlBytes != len(m.Ctl) {
		t.Errorf("Stats.CtlBytes = %d, want %d", st.CtlBytes, len(m.Ctl))
	}
}

func BenchmarkSpMVBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	c := matgen.Banded(rng, 20000, 50, 16, matgen.Values{})
	m, _ := FromCOO(c)
	x := make([]float64, m.Cols())
	y := make([]float64, m.Rows())
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	b.SetBytes(m.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SpMV(y, x)
	}
}
