package bcsr

import "spmv/internal/core"

// Verify implements core.Verifier: block row pointer monotone and
// spanning the block list, block columns inside the block grid, the
// padded value array sized exactly R*C per block, and the logical-nnz
// prefix (chunk weights) monotone and consistent. O(blocks + brows).
func (m *Matrix) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("bcsr: negative dimensions %dx%d", m.rows, m.cols)
	}
	if m.R <= 0 || m.C <= 0 || m.R*m.C > 64 {
		return core.Shapef("bcsr: invalid block size %dx%d", m.R, m.C)
	}
	brows := (m.rows + m.R - 1) / m.R
	if len(m.BRowPtr) != brows+1 {
		return core.Shapef("bcsr: block row pointer length %d, want %d", len(m.BRowPtr), brows+1)
	}
	if err := core.CheckRowPtr(m.BRowPtr, len(m.BColInd)); err != nil {
		return err
	}
	bcols := (m.cols + m.C - 1) / m.C
	if err := core.CheckColInd(m.BColInd, bcols); err != nil {
		return err
	}
	if len(m.Values) != len(m.BColInd)*m.R*m.C {
		return core.Shapef("bcsr: %d values for %d blocks of %dx%d", len(m.Values), len(m.BColInd), m.R, m.C)
	}
	if m.nnz < 0 || m.nnz > len(m.Values) {
		return core.Shapef("bcsr: logical nnz %d outside [0,%d]", m.nnz, len(m.Values))
	}
	if len(m.logPrefix) != brows+1 {
		return core.Shapef("bcsr: logical prefix length %d, want %d", len(m.logPrefix), brows+1)
	}
	if m.logPrefix[0] != 0 || m.logPrefix[brows] != int64(m.nnz) {
		return core.Corruptf("bcsr: logical prefix spans [%d,%d], want [0,%d]", m.logPrefix[0], m.logPrefix[brows], m.nnz)
	}
	for i := 1; i <= brows; i++ {
		if m.logPrefix[i] < m.logPrefix[i-1] {
			return core.Corruptf("bcsr: logical prefix not monotone at block row %d", i-1)
		}
	}
	return nil
}
