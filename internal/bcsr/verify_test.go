package bcsr

import (
	"errors"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

func TestVerifyClean(t *testing.T) {
	for _, bs := range [][2]int{{2, 2}, {3, 3}, {4, 2}} {
		m, err := FromCOO(matgen.Stencil2D(5), bs[0], bs[1])
		if err != nil {
			t.Fatalf("FromCOO %dx%d: %v", bs[0], bs[1], err)
		}
		if err := m.Verify(); err != nil {
			t.Errorf("%dx%d blocks: %v", bs[0], bs[1], err)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	build := func(t *testing.T) *Matrix {
		t.Helper()
		m, err := FromCOO(matgen.Stencil2D(5), 2, 2)
		if err != nil {
			t.Fatalf("FromCOO: %v", err)
		}
		return m
	}
	t.Run("block column out of range", func(t *testing.T) {
		m := build(t)
		m.BColInd[0] = int32((m.Cols() + m.C - 1) / m.C)
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("non-monotone block row pointer", func(t *testing.T) {
		m := build(t)
		m.BRowPtr[1], m.BRowPtr[2] = m.BRowPtr[2], m.BRowPtr[1]
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("short value array", func(t *testing.T) {
		m := build(t)
		m.Values = m.Values[:len(m.Values)-1]
		if err := m.Verify(); !errors.Is(err, core.ErrShape) {
			t.Fatalf("got %v, want ErrShape", err)
		}
	})
}
