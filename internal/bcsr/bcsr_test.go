package bcsr

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestConformance2x2(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return FromCOO(c, 2, 2) })
}

func TestConformance3x3(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return FromCOO(c, 3, 3) })
}

func TestConformance4x1(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return FromCOO(c, 4, 1) })
}

func TestConformance1x4(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return FromCOO(c, 1, 4) })
}

func TestRejectsBadBlocks(t *testing.T) {
	c := core.NewCOO(4, 4)
	c.Add(0, 0, 1)
	c.Finalize()
	for _, rc := range [][2]int{{0, 2}, {2, 0}, {-1, 2}, {9, 9}} {
		if _, err := FromCOO(c, rc[0], rc[1]); err == nil {
			t.Errorf("FromCOO accepted block %dx%d", rc[0], rc[1])
		}
	}
}

func TestPerfectBlocksNoFill(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := matgen.BlockDiag(rng, 20, 4, matgen.Values{})
	m, err := FromCOO(c, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fill() != 1.0 {
		t.Errorf("Fill = %v on perfectly blocked matrix", m.Fill())
	}
	if m.Blocks() != 20 {
		t.Errorf("Blocks = %d, want 20", m.Blocks())
	}
	// Index data: one 4-byte index per 16 values vs 4 bytes per value
	// in CSR: BCSR must be smaller.
	ref, _ := csr.FromCOO(c)
	if m.SizeBytes() >= ref.SizeBytes() {
		t.Errorf("bcsr %d >= csr %d on blocky matrix", m.SizeBytes(), ref.SizeBytes())
	}
}

func TestFillExplodesOnScattered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := matgen.RandomUniform(rng, 500, 500, 4, matgen.Values{})
	m, _ := FromCOO(c, 4, 4)
	if m.Fill() < 2 {
		t.Errorf("Fill = %v, expected heavy fill on scattered matrix", m.Fill())
	}
	ref, _ := csr.FromCOO(c)
	if m.SizeBytes() <= ref.SizeBytes() {
		t.Errorf("bcsr %d <= csr %d: fill should have inflated it", m.SizeBytes(), ref.SizeBytes())
	}
}

func TestDimsNotMultipleOfBlock(t *testing.T) {
	// 7x5 matrix with 2x2 blocks: ragged edges.
	c := core.NewCOO(7, 5)
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			if (i+j)%2 == 0 {
				c.Add(i, j, float64(i*5+j+1))
			}
		}
	}
	c.Finalize()
	m, err := FromCOO(c, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := core.DenseFromCOO(c)
	x := testmat.RandVec(rand.New(rand.NewSource(3)), 5)
	want := make([]float64, 7)
	got := make([]float64, 7)
	d.SpMV(want, x)
	m.SpMV(got, x)
	testmat.AssertClose(t, "ragged bcsr", got, want, 1e-12)
}

func TestFillEmptyMatrix(t *testing.T) {
	c := core.NewCOO(3, 3)
	c.Finalize()
	m, _ := FromCOO(c, 2, 2)
	if m.Fill() != 1 {
		t.Errorf("Fill on empty = %v", m.Fill())
	}
}

func BenchmarkSpMVBlockDiag(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	c := matgen.BlockDiag(rng, 5000, 4, matgen.Values{})
	m, _ := FromCOO(c, 4, 4)
	x := make([]float64, m.Cols())
	y := make([]float64, m.Rows())
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(m.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SpMV(y, x)
	}
}
