// Package bcsr implements BCSR (Blocked CSR) with fixed r×c register
// blocks — the classic index-reduction-by-blocking format the paper's
// related work discusses (§III-A/B): per-block rather than per-element
// column indices, at the price of explicitly stored zeros inside
// partially filled blocks.
//
// BCSR serves as an ablation baseline: on matrices with natural dense
// blocks its fill ratio approaches 1 and it wins; on scattered matrices
// fill explodes and the "compression" inflates the value stream instead.
package bcsr

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/partition"
)

// Matrix is a sparse matrix in BCSR form with R×C blocks. Blocks are
// stored row-major within BRowPtr/BColInd; each block's R*C values are
// stored row-major in Values (zero-filled).
type Matrix struct {
	rows, cols int
	R, C       int
	nnz        int // logical non-zeros (pre-padding)
	BRowPtr    []int32
	BColInd    []int32 // block-column index (column of block's first element / C)
	Values     []float64
	logPrefix  []int64 // logical nnz prefix per block row (for chunk weights)

	browBase, bcolBase, valBase uint64
}

var (
	_ core.Format   = (*Matrix)(nil)
	_ core.Splitter = (*Matrix)(nil)
	_ core.Placer   = (*Matrix)(nil)
)

// FromCOO encodes a triplet matrix into BCSR with r×c blocks.
func FromCOO(coo *core.COO, r, c int) (*Matrix, error) {
	if r <= 0 || c <= 0 || r*c > 64 {
		return nil, fmt.Errorf("bcsr: invalid block size %dx%d", r, c)
	}
	coo.Finalize()
	if coo.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("bcsr: %d non-zeros exceed supported range", coo.Len())
	}
	m := &Matrix{rows: coo.Rows(), cols: coo.Cols(), R: r, C: c, nnz: coo.Len()}
	brows := (coo.Rows() + r - 1) / r
	m.BRowPtr = make([]int32, brows+1)

	// Pass 1: count distinct blocks per block-row. Entries are sorted by
	// (row, col), so within a block-row blocks are not contiguous in the
	// input; collect block columns per block-row in a set.
	type blockKey struct{ br, bc int32 }
	blockOf := make(map[blockKey]int32) // -> index into block list, per pass 2
	// Collect blocks in order: iterate entries, record first-seen order
	// per block-row, then sort per block-row by block column.
	perBRow := make([][]int32, brows)
	for k := 0; k < coo.Len(); k++ {
		i, j, _ := coo.At(k)
		br, bc := int32(i/r), int32(j/c)
		key := blockKey{br, bc}
		if _, ok := blockOf[key]; !ok {
			blockOf[key] = 0 // placeholder; assigned after sorting
			perBRow[br] = append(perBRow[br], bc)
		}
	}
	nblocks := 0
	for br := range perBRow {
		sortInt32(perBRow[br])
		m.BRowPtr[br] = int32(nblocks)
		for _, bc := range perBRow[br] {
			blockOf[blockKey{int32(br), bc}] = int32(nblocks)
			nblocks++
		}
	}
	m.BRowPtr[brows] = int32(nblocks)
	m.BColInd = make([]int32, nblocks)
	m.Values = make([]float64, nblocks*r*c)
	for br := range perBRow {
		for _, bc := range perBRow[br] {
			m.BColInd[blockOf[blockKey{int32(br), bc}]] = bc
		}
	}
	// Pass 2: scatter values into blocks and count logical nnz per
	// block row.
	m.logPrefix = make([]int64, brows+1)
	for k := 0; k < coo.Len(); k++ {
		i, j, v := coo.At(k)
		b := blockOf[blockKey{int32(i / r), int32(j / c)}]
		m.Values[int(b)*r*c+(i%r)*c+(j%c)] += v
		m.logPrefix[i/r+1]++
	}
	for br := 0; br < brows; br++ {
		m.logPrefix[br+1] += m.logPrefix[br]
	}
	return m, nil
}

func sortInt32(s []int32) {
	// Insertion sort: per-block-row lists are short.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Name implements core.Format.
func (m *Matrix) Name() string { return fmt.Sprintf("bcsr%dx%d", m.R, m.C) }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.cols }

// NNZ implements core.Format: logical non-zeros, excluding fill.
func (m *Matrix) NNZ() int { return m.nnz }

// Blocks returns the stored block count.
func (m *Matrix) Blocks() int { return len(m.BColInd) }

// PaddedNNZ returns the stored value count including the explicit
// zeros that pad partially filled blocks (Blocks()*R*C).
func (m *Matrix) PaddedNNZ() int { return len(m.Values) }

// Fill returns the fill ratio: stored values (including explicit
// zeros) per logical non-zero. 1.0 is perfect blocking.
func (m *Matrix) Fill() float64 {
	if m.nnz == 0 {
		return 1
	}
	return float64(len(m.Values)) / float64(m.nnz)
}

// SizeBytes implements core.Format: block row pointer + block column
// indices + padded values.
func (m *Matrix) SizeBytes() int64 {
	return int64(len(m.BRowPtr))*core.IdxSize +
		int64(len(m.BColInd))*core.IdxSize +
		int64(len(m.Values))*core.ValSize
}

// SpMV computes y = A*x.
func (m *Matrix) SpMV(y, x []float64) {
	m.spmvRange(y, x, 0, len(m.BRowPtr)-1)
}

// spmvRange processes block rows [blo, bhi).
func (m *Matrix) spmvRange(y, x []float64, blo, bhi int) {
	r, c := m.R, m.C
	for br := blo; br < bhi; br++ {
		i0 := br * r
		rmax := r
		if i0+rmax > m.rows {
			rmax = m.rows - i0
		}
		// Accumulate the block row in a small register tile (r*c <= 64
		// implies r <= 64).
		var acc [64]float64
		for b := m.BRowPtr[br]; b < m.BRowPtr[br+1]; b++ {
			j0 := int(m.BColInd[b]) * c
			cmax := c
			if j0+cmax > m.cols {
				cmax = m.cols - j0
			}
			vals := m.Values[int(b)*r*c : (int(b)+1)*r*c]
			for bi := 0; bi < rmax; bi++ {
				sum := acc[bi]
				row := vals[bi*c : bi*c+cmax]
				for bj, v := range row {
					sum += v * x[j0+bj]
				}
				acc[bi] = sum
			}
		}
		for bi := 0; bi < rmax; bi++ {
			y[i0+bi] = acc[bi]
			acc[bi] = 0
		}
	}
}

// Split implements core.Splitter at block-row granularity, balanced by
// stored (padded) values, which is what determines per-thread work.
func (m *Matrix) Split(n int) []core.Chunk {
	brows := len(m.BRowPtr) - 1
	prefix := make([]int64, brows+1)
	for i := 0; i <= brows; i++ {
		prefix[i] = int64(m.BRowPtr[i]) * int64(m.R*m.C)
	}
	bounds := partition.SplitPrefix(prefix, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		chunks = append(chunks, &chunk{m: m, blo: bounds[i], bhi: bounds[i+1]})
	}
	return chunks
}

type chunk struct {
	m        *Matrix
	blo, bhi int // block-row range
}

func (c *chunk) RowRange() (int, int) {
	lo := c.blo * c.m.R
	hi := c.bhi * c.m.R
	if hi > c.m.rows {
		hi = c.m.rows
	}
	return lo, hi
}

// NNZ returns the logical non-zero count of the chunk's block rows.
func (c *chunk) NNZ() int {
	return int(c.m.logPrefix[c.bhi] - c.m.logPrefix[c.blo])
}

func (c *chunk) SpMV(y, x []float64) { c.m.spmvRange(y, x, c.blo, c.bhi) }
