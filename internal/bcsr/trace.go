package bcsr

import "spmv/internal/core"

// Compute-cost model: blocked kernels amortize index handling over the
// whole block, so per-stored-value compute is lower than CSR's — but
// stored values include fill.
const (
	bcsrCompPerVal   = 2
	bcsrCompPerBlock = 4
)

// Place implements core.Placer.
func (m *Matrix) Place(a *core.Arena) {
	m.browBase = a.Alloc(int64(len(m.BRowPtr)) * 4)
	m.bcolBase = a.Alloc(int64(len(m.BColInd)) * 4)
	m.valBase = a.Alloc(int64(len(m.Values)) * 8)
}

var _ core.Tracer = (*chunk)(nil)

// TraceSpMV implements core.Tracer. Each stored value (fill included)
// costs a value load and an x access; x accesses within a block column
// repeat across the block's rows and hit the cache, which is why BCSR
// tolerates its fill on blocky matrices.
func (c *chunk) TraceSpMV(xBase, yBase uint64, emit core.EmitFunc) {
	m := c.m
	if m.browBase == 0 {
		panic(core.Usagef("bcsr: TraceSpMV before Place"))
	}
	r, cw := m.R, m.C
	bp := core.NewStreamCursor(m.browBase)
	bc := core.NewStreamCursor(m.bcolBase)
	vs := core.NewStreamCursor(m.valBase)
	yw := core.NewStreamCursor(yBase)
	for br := c.blo; br < c.bhi; br++ {
		bp.Touch(emit, int64(br)*4, 8, false, 2)
		i0 := br * r
		rmax := r
		if i0+rmax > m.rows {
			rmax = m.rows - i0
		}
		for b := m.BRowPtr[br]; b < m.BRowPtr[br+1]; b++ {
			bc.Touch(emit, int64(b)*4, 4, false, bcsrCompPerBlock)
			j0 := int(m.BColInd[b]) * cw
			cmax := cw
			if j0+cmax > m.cols {
				cmax = m.cols - j0
			}
			for bi := 0; bi < rmax; bi++ {
				for bj := 0; bj < cmax; bj++ {
					vs.Touch(emit, (int64(b)*int64(r*cw)+int64(bi*cw+bj))*8, 8, false, 0)
					emit(core.Access{Addr: xBase + uint64(j0+bj)*8, Size: 8, Comp: bcsrCompPerVal})
				}
			}
		}
		for bi := 0; bi < rmax; bi++ {
			yw.Touch(emit, int64(i0+bi)*8, 8, true, 0)
		}
	}
}
