// Package sym implements symmetric CSR storage: only the diagonal and
// the strictly lower triangle are stored, halving both index and value
// data — the symmetry exploitation of Lee et al. that the paper's
// §III-C cites as the main prior work on value-data reduction.
//
// The SpMV kernel applies each stored off-diagonal element twice
// (y[i] += v*x[j] and y[j] += v*x[i]), so the kernel scatters into y.
// Serial execution is straightforward; the multithreaded version gives
// each worker a private y and reduces, exactly like column partitioning
// (the format implements core.ColSplitter for that reason).
package sym

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/partition"
)

// Matrix is a symmetric sparse matrix storing its lower triangle.
type Matrix struct {
	n       int
	Diag    []float64
	RowPtr  []int32 // strictly-lower-triangle CSR
	ColInd  []int32
	Values  []float64
	nnzFull int // logical nnz of the full (expanded) matrix
}

var (
	_ core.Format      = (*Matrix)(nil)
	_ core.SpMVAdd     = (*Matrix)(nil)
	_ core.ColSplitter = (*Matrix)(nil)
)

// FromCOO builds symmetric storage from a finalized COO, verifying that
// the matrix is numerically symmetric (within tol, relative) first.
func FromCOO(c *core.COO, tol float64) (*Matrix, error) {
	c.Finalize()
	if c.Rows() != c.Cols() {
		return nil, fmt.Errorf("sym: matrix not square (%dx%d)", c.Rows(), c.Cols())
	}
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("sym: %d non-zeros exceed supported range", c.Len())
	}
	// Symmetry check against the transpose (both finalized => same order).
	t := c.Transpose()
	if t.Len() != c.Len() {
		return nil, fmt.Errorf("sym: pattern not symmetric")
	}
	for k := 0; k < c.Len(); k++ {
		i1, j1, v1 := c.At(k)
		i2, j2, v2 := t.At(k)
		if i1 != i2 || j1 != j2 {
			return nil, fmt.Errorf("sym: pattern not symmetric at entry %d", k)
		}
		// The tolerance must be symmetric in (v1, v2): scaling by |v1|
		// alone accepted (v1, v2) while rejecting the same matrix built
		// with the entries swapped — whether a borderline pair passed
		// depended on which triangle held the larger value.
		if math.Abs(v1-v2) > tol*(1+math.Max(math.Abs(v1), math.Abs(v2))) {
			return nil, fmt.Errorf("sym: values not symmetric at (%d,%d): %v vs %v", i1, j1, v1, v2)
		}
	}
	n := c.Rows()
	m := &Matrix{n: n, Diag: make([]float64, n), RowPtr: make([]int32, n+1), nnzFull: c.Len()}
	for k := 0; k < c.Len(); k++ {
		i, j, _ := c.At(k)
		if j < i {
			m.RowPtr[i+1]++
		}
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	lower := int(m.RowPtr[n])
	m.ColInd = make([]int32, lower)
	m.Values = make([]float64, lower)
	next := make([]int32, n)
	copy(next, m.RowPtr[:n])
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		switch {
		case i == j:
			m.Diag[i] = v
		case j < i:
			p := next[i]
			next[i]++
			m.ColInd[p] = int32(j)
			m.Values[p] = v
		}
	}
	return m, nil
}

// Name implements core.Format.
func (m *Matrix) Name() string { return "sym-csr" }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.n }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.n }

// NNZ implements core.Format: the logical (full-matrix) count.
func (m *Matrix) NNZ() int { return m.nnzFull }

// Stored returns the stored element count (diagonal + lower triangle).
func (m *Matrix) Stored() int { return m.n + len(m.Values) }

// SizeBytes implements core.Format: half the off-diagonal data of CSR.
func (m *Matrix) SizeBytes() int64 {
	return int64(m.n)*core.ValSize + // diagonal
		int64(len(m.Values))*(core.IdxSize+core.ValSize) +
		int64(m.n+1)*core.IdxSize
}

// SpMV computes y = A*x.
func (m *Matrix) SpMV(y, x []float64) {
	for i := 0; i < m.n; i++ {
		y[i] = 0
	}
	m.addRange(y, x, 0, m.n)
}

// SpMVAdd computes y += A*x.
func (m *Matrix) SpMVAdd(y, x []float64) { m.addRange(y, x, 0, m.n) }

// addRange applies rows [lo, hi) of the stored triangle, scattering the
// transposed contributions into y[j] for j < lo as well.
func (m *Matrix) addRange(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := m.Diag[i] * x[i]
		xi := x[i]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColInd[k]
			v := m.Values[k]
			sum += v * x[j]
			y[j] += v * xi
		}
		y[i] += sum
	}
}

// SplitCols implements core.ColSplitter. The "column" ranges are row
// ranges of the stored triangle; every chunk may scatter into all of y
// (for j < lo), which is precisely the ColChunk contract, so the
// column-partitioned executor's private-y reduction applies unchanged.
func (m *Matrix) SplitCols(n int) []core.ColChunk {
	prefix := make([]int64, m.n+1)
	for i := 0; i < m.n; i++ {
		// Weight: stored elements (each does two FMAs) plus diagonal.
		prefix[i+1] = prefix[i] + int64(m.RowPtr[i+1]-m.RowPtr[i]) + 1
	}
	bounds := partition.SplitPrefix(prefix, n)
	var chunks []core.ColChunk
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		chunks = append(chunks, &chunk{m: m, lo: bounds[i], hi: bounds[i+1]})
	}
	return chunks
}

type chunk struct {
	m      *Matrix
	lo, hi int
}

func (c *chunk) ColRange() (int, int) { return c.lo, c.hi }
func (c *chunk) NNZ() int {
	return int(c.m.RowPtr[c.hi]-c.m.RowPtr[c.lo])*2 + (c.hi - c.lo)
}
func (c *chunk) SpMVAdd(y, x []float64) { c.m.addRange(y, x, c.lo, c.hi) }
