package sym

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/parallel"
	"spmv/internal/testmat"
)

func symCorpus(t *testing.T) map[string]*core.COO {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	return map[string]*core.COO{
		"stencil": matgen.Stencil2D(14),
		"femlike": matgen.Symmetrize(matgen.FEMLike(rng, 250, 5, matgen.Values{})),
		"banded":  matgen.Symmetrize(matgen.Banded(rng, 300, 8, 6, matgen.Values{})),
		"diag":    diagCOO(20),
	}
}

func diagCOO(n int) *core.COO {
	c := core.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, float64(i+1))
	}
	c.Finalize()
	return c
}

func TestSpMVMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for name, c := range symCorpus(t) {
		m, err := FromCOO(c, 1e-12)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, _ := csr.FromCOO(c)
		x := testmat.RandVec(rng, c.Cols())
		y1 := make([]float64, c.Rows())
		y2 := make([]float64, c.Rows())
		m.SpMV(y1, x)
		ref.SpMV(y2, x)
		testmat.AssertClose(t, name, y1, y2, 1e-10)
		if m.NNZ() != c.Len() {
			t.Errorf("%s: NNZ = %d, want %d", name, m.NNZ(), c.Len())
		}
	}
}

func TestHalvesStorage(t *testing.T) {
	c := matgen.Stencil2D(40)
	m, err := FromCOO(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := csr.FromCOO(c)
	ratio := float64(m.SizeBytes()) / float64(ref.SizeBytes())
	// Diagonal kept in full, off-diagonals halved: ratio ~ 0.55-0.65.
	if ratio > 0.70 {
		t.Errorf("sym/csr size ratio = %v, want < 0.70", ratio)
	}
	if m.Stored() >= m.NNZ() {
		t.Errorf("Stored = %d not below logical %d", m.Stored(), m.NNZ())
	}
}

func TestRejectsAsymmetric(t *testing.T) {
	c := core.NewCOO(3, 3)
	c.Add(0, 1, 1)
	c.Add(1, 0, 2) // value mismatch
	c.Finalize()
	if _, err := FromCOO(c, 1e-12); err == nil {
		t.Error("asymmetric values accepted")
	}
	p := core.NewCOO(3, 3)
	p.Add(0, 2, 1) // no mirror at all
	p.Finalize()
	if _, err := FromCOO(p, 1e-12); err == nil {
		t.Error("asymmetric pattern accepted")
	}
	r := core.NewCOO(2, 3)
	r.Finalize()
	if _, err := FromCOO(r, 0); err == nil {
		t.Error("rectangular accepted")
	}
}

func TestToleranceAllowsRounding(t *testing.T) {
	c := core.NewCOO(2, 2)
	c.Add(0, 1, 1.0)
	c.Add(1, 0, 1.0+1e-14)
	c.Finalize()
	if _, err := FromCOO(c, 1e-12); err != nil {
		t.Errorf("tiny asymmetry rejected: %v", err)
	}
	if _, err := FromCOO(c, 0); err == nil {
		t.Error("exact mode accepted rounding")
	}
}

func TestParallelViaColExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := matgen.Symmetrize(matgen.FEMLike(rng, 400, 5, matgen.Values{}))
	m, err := FromCOO(c, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, c.Rows())
	x := testmat.RandVec(rng, c.Cols())
	m.SpMV(want, x)
	for _, threads := range []int{1, 2, 4, 8} {
		e, err := parallel.NewColExecutor(m, threads)
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, c.Rows())
		e.Run(y, x)
		testmat.AssertClose(t, "sym parallel", y, want, 1e-10)
		e.Close()
	}
}

func TestChunksCoverStoredWork(t *testing.T) {
	c := matgen.Stencil2D(12)
	m, _ := FromCOO(c, 0)
	chunks := m.SplitCols(4)
	total := 0
	for _, ch := range chunks {
		total += ch.NNZ()
	}
	// Each stored off-diagonal counts twice plus one per diagonal row.
	want := 2*len(m.Values) + m.Rows()
	if total != want {
		t.Errorf("chunk weights sum to %d, want %d", total, want)
	}
}

// TestToleranceSymmetricInArguments pins the satellite bugfix: the
// check scaled the tolerance by |v1| only, so a borderline pair passed
// or failed depending on which triangle held the larger value — the
// same matrix could be accepted via one entry and rejected via its
// mirror. The fixed check scales by max(|v1|, |v2|) and is symmetric.
func TestToleranceSymmetricInArguments(t *testing.T) {
	// diff = 1.15, tol = 0.1: tol*(1+min) = 1.1 < diff <= tol*(1+max)
	// = 1.215. The old check rejected the pair when iterating from the
	// smaller side; the symmetric check accepts it both ways.
	build := func(a, b float64) *core.COO {
		c := core.NewCOO(2, 2)
		c.Add(0, 1, a)
		c.Add(1, 0, b)
		c.Finalize()
		return c
	}
	const tol = 0.1
	if _, err := FromCOO(build(10, 11.15), tol); err != nil {
		t.Errorf("within-tolerance pair rejected: %v", err)
	}
	if _, err := FromCOO(build(11.15, 10), tol); err != nil {
		t.Errorf("swapped within-tolerance pair rejected: %v", err)
	}
	// Outside tol*(1+max) must still fail, from either side.
	if _, err := FromCOO(build(10, 11.25), tol); err == nil {
		t.Error("out-of-tolerance pair accepted")
	}
	if _, err := FromCOO(build(11.25, 10), tol); err == nil {
		t.Error("swapped out-of-tolerance pair accepted")
	}
}

// TestSymExecutorMatchesSerial checks the tree-reduced parallel kernel
// against the serial one on the whole corpus.
func TestSymExecutorMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for name, c := range symCorpus(t) {
		m, err := FromCOO(c, 1e-12)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := make([]float64, c.Rows())
		x := testmat.RandVec(rng, c.Cols())
		m.SpMV(want, x)
		for _, threads := range []int{1, 2, 3, 4, 5, 8} {
			e, err := parallel.NewSymExecutor(m, threads)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, threads, err)
			}
			y := make([]float64, c.Rows())
			for iter := 0; iter < 2; iter++ {
				if err := e.Run(y, x); err != nil {
					t.Fatalf("%s/%d: %v", name, threads, err)
				}
				testmat.AssertClose(t, name, y, want, 1e-10)
			}
			e.Close()
		}
	}
}

// TestSymExecutorBitwise checks the acceptance criterion: on an
// integer-valued matrix (stencil values {4, -1}) with small-integer x,
// every floating-point sum is exact, so association order cannot show
// — any numeric difference between the tree-reduced parallel kernel
// and the serial kernel would be a real indexing or ownership bug.
// Each thread count must reproduce the serial result bit for bit.
func TestSymExecutorBitwise(t *testing.T) {
	c := matgen.Stencil2D(18)
	m, err := FromCOO(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, c.Cols())
	for i := range x {
		x[i] = float64(rng.Intn(17) - 8)
	}
	want := make([]float64, c.Rows())
	m.SpMV(want, x)
	for _, threads := range []int{1, 2, 3, 4, 6, 8, 9} {
		e, err := parallel.NewSymExecutor(m, threads)
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, c.Rows())
		if err := e.Run(y, x); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if y[i] != want[i] {
				t.Fatalf("threads=%d: y[%d] = %v, serial %v (bitwise mismatch)",
					threads, i, y[i], want[i])
			}
		}
		e.Close()
	}
}
