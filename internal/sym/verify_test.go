package sym

import (
	"errors"
	"testing"

	"spmv/internal/core"
)

func buildVerifyFixture(t *testing.T) *Matrix {
	t.Helper()
	c := core.NewCOO(6, 6)
	for i := 0; i < 6; i++ {
		c.Add(i, i, 4)
		if i+1 < 6 {
			c.Add(i, i+1, -1)
			c.Add(i+1, i, -1)
		}
	}
	m, err := FromCOO(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVerifyClean(t *testing.T) {
	if err := buildVerifyFixture(t).Verify(); err != nil {
		t.Fatalf("Verify on valid matrix: %v", err)
	}
}

func TestVerifyCorrupt(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Matrix)
	}{
		{"diag-short", func(m *Matrix) { m.Diag = m.Diag[:4] }},
		{"upper-triangle-index", func(m *Matrix) { m.ColInd[0] = 5 }},
		{"negative-index", func(m *Matrix) { m.ColInd[0] = -2 }},
		{"rowptr-short", func(m *Matrix) { m.RowPtr = m.RowPtr[:4] }},
		{"nnz-underflow", func(m *Matrix) { m.nnzFull = 1 }},
		{"nnz-overflow", func(m *Matrix) { m.nnzFull = 1000 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := buildVerifyFixture(t)
			tc.corrupt(m)
			err := m.Verify()
			if err == nil {
				t.Fatal("Verify accepted corrupted matrix")
			}
			if !errors.Is(err, core.ErrCorrupt) && !errors.Is(err, core.ErrShape) {
				t.Fatalf("Verify error %v is not typed", err)
			}
		})
	}
}
