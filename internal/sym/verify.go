package sym

import "spmv/internal/core"

// Verify implements core.Verifier: the stored triangle is a valid CSR
// whose column indices are strictly below the diagonal, and the
// logical count is consistent with the stored data. O(stored).
func (m *Matrix) Verify() error {
	if m.n < 0 {
		return core.Shapef("sym: negative dimension %d", m.n)
	}
	if len(m.Diag) != m.n {
		return core.Shapef("sym: diagonal length %d, want %d", len(m.Diag), m.n)
	}
	if len(m.RowPtr) != m.n+1 {
		return core.Shapef("sym: row pointer length %d, want %d", len(m.RowPtr), m.n+1)
	}
	if len(m.ColInd) != len(m.Values) {
		return core.Shapef("sym: %d column indices for %d values", len(m.ColInd), len(m.Values))
	}
	if err := core.CheckRowPtr(m.RowPtr, len(m.Values)); err != nil {
		return err
	}
	for i := 0; i < m.n; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if j := m.ColInd[k]; j < 0 || int(j) >= i {
				return core.Corruptf("sym: column index %d at row %d not strictly lower-triangular", j, i)
			}
		}
	}
	// nnzFull counts lower + mirrored upper entries plus whichever
	// diagonal entries the assembly actually stored.
	lo, hi := 2*len(m.Values), 2*len(m.Values)+m.n
	if m.nnzFull < lo || m.nnzFull > hi {
		return core.Corruptf("sym: logical nnz %d outside [%d,%d] implied by %d stored off-diagonals",
			m.nnzFull, lo, hi, len(m.Values))
	}
	return nil
}
