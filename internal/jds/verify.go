package jds

import "spmv/internal/core"

// Verify implements core.Verifier: Perm must be a permutation of the
// rows (the kernel scatters through it), JdPtr monotone and spanning
// the element arrays, every jagged diagonal no longer than the rows,
// diagonal lengths non-increasing (rows are sorted by length), and
// column indices in range. O(nnz + rows).
func (m *Matrix) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("jds: negative dimensions %dx%d", m.rows, m.cols)
	}
	if len(m.Perm) != m.rows {
		return core.Shapef("jds: permutation length %d, want %d", len(m.Perm), m.rows)
	}
	seen := make([]bool, m.rows)
	for r, p := range m.Perm {
		if p < 0 || int(p) >= m.rows {
			return core.Corruptf("jds: permutation entry %d at position %d out of range [0,%d)", p, r, m.rows)
		}
		if seen[p] {
			return core.Corruptf("jds: permutation repeats row %d", p)
		}
		seen[p] = true
	}
	if len(m.ColInd) != len(m.Values) {
		return core.Shapef("jds: %d column indices for %d values", len(m.ColInd), len(m.Values))
	}
	if len(m.JdPtr) == 0 {
		if len(m.Values) != 0 {
			return core.Truncatedf("jds: empty jd pointer for %d values", len(m.Values))
		}
		return nil
	}
	if err := core.CheckRowPtr(m.JdPtr, len(m.Values)); err != nil {
		return err
	}
	prevLen := int32(m.rows) + 1
	for d := 0; d+1 < len(m.JdPtr); d++ {
		l := m.JdPtr[d+1] - m.JdPtr[d]
		if int(l) > m.rows {
			return core.Corruptf("jds: diagonal %d has %d entries for %d rows", d, l, m.rows)
		}
		if l > prevLen {
			return core.Corruptf("jds: diagonal %d longer than its predecessor (%d > %d)", d, l, prevLen)
		}
		prevLen = l
	}
	return core.CheckColInd(m.ColInd, m.cols)
}
