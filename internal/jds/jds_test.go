package jds

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestConformance(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return FromCOO(c) })
}

func TestPermSortedByLength(t *testing.T) {
	c := core.NewCOO(4, 8)
	c.Add(0, 0, 1) // len 1
	for j := 0; j < 4; j++ {
		c.Add(1, j, 1) // len 4
	}
	for j := 0; j < 2; j++ {
		c.Add(3, j, 1) // len 2
	}
	c.Finalize()
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 3, 0, 2} // stable: equal lengths keep order
	for i, w := range want {
		if m.Perm[i] != w {
			t.Fatalf("Perm = %v, want %v", m.Perm, want)
		}
	}
	if m.MaxLen() != 4 {
		t.Errorf("MaxLen = %d", m.MaxLen())
	}
	// Jagged diagonal widths shrink: 3 rows have a 1st element, 2 a 2nd...
	widths := []int32{3, 2, 1, 1}
	for d := 0; d < 4; d++ {
		if got := m.JdPtr[d+1] - m.JdPtr[d]; got != widths[d] {
			t.Errorf("diagonal %d width = %d, want %d", d, got, widths[d])
		}
	}
}

func TestPowerLawFriendly(t *testing.T) {
	// JDS was designed for exactly the skewed matrices that break
	// ELLPACK: no padding regardless of skew.
	rng := rand.New(rand.NewSource(1))
	c := matgen.PowerLaw(rng, 2000, 5, 1.1, matgen.Values{})
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != c.Len() {
		t.Errorf("NNZ = %d, want %d (no padding)", m.NNZ(), c.Len())
	}
	d := core.DenseFromCOO(c)
	x := testmat.RandVec(rng, c.Cols())
	want := make([]float64, c.Rows())
	got := make([]float64, c.Rows())
	d.SpMV(want, x)
	m.SpMV(got, x)
	testmat.AssertClose(t, "jds powerlaw", got, want, 1e-10)
}

func TestNotASplitter(t *testing.T) {
	c := matgen.Stencil2D(4)
	m, _ := FromCOO(c)
	var f core.Format = m
	if _, ok := f.(core.Splitter); ok {
		t.Error("JDS should not claim contiguous row partitioning")
	}
}
