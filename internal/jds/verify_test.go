package jds

import (
	"errors"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

func TestVerifyClean(t *testing.T) {
	m, err := FromCOO(matgen.Stencil2D(5))
	if err != nil {
		t.Fatalf("FromCOO: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Errorf("Verify on freshly encoded matrix: %v", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	build := func(t *testing.T) *Matrix {
		t.Helper()
		m, err := FromCOO(matgen.Stencil2D(5))
		if err != nil {
			t.Fatalf("FromCOO: %v", err)
		}
		return m
	}
	t.Run("permutation repeats a row", func(t *testing.T) {
		m := build(t)
		m.Perm[0] = m.Perm[1]
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("permutation out of range", func(t *testing.T) {
		m := build(t)
		m.Perm[0] = int32(m.Rows())
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("column out of range", func(t *testing.T) {
		m := build(t)
		m.ColInd[0] = int32(m.Cols())
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("non-monotone jd pointer", func(t *testing.T) {
		m := build(t)
		if len(m.JdPtr) < 3 {
			t.Skip("not enough diagonals")
		}
		m.JdPtr[1], m.JdPtr[2] = m.JdPtr[2], m.JdPtr[1]
		if err := m.Verify(); err == nil {
			t.Fatal("non-monotone jd pointer passed Verify")
		}
	})
}
