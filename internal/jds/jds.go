// Package jds implements the Jagged Diagonal Storage format (JD in the
// paper's related-work survey, §III-A), the classic vector-machine
// format: rows are sorted by decreasing length and stored as "jagged
// diagonals" — the k-th non-zero of every row that has one. Each jagged
// diagonal is a dense unit-stride stream, so the kernel is a sequence
// of long vectorizable loops, at the price of a row permutation on y.
//
// The row permutation scatters output rows, so JDS does not support the
// library's contiguous row partitioning (it implements Format only);
// the paper's multithreaded evaluation likewise uses CSR-derived
// formats.
package jds

import (
	"fmt"
	"math"
	"sort"

	"spmv/internal/core"
)

// Matrix is a sparse matrix in JDS form.
type Matrix struct {
	rows, cols int
	Perm       []int32 // Perm[r] = original row of sorted position r
	JdPtr      []int32 // offset of each jagged diagonal (len = maxLen+1)
	ColInd     []int32
	Values     []float64
}

var _ core.Format = (*Matrix)(nil)

// FromCOO builds a JDS matrix.
func FromCOO(c *core.COO) (*Matrix, error) {
	c.Finalize()
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("jds: %d non-zeros exceed supported range", c.Len())
	}
	rows := c.Rows()
	counts := c.RowCounts()
	m := &Matrix{rows: rows, cols: c.Cols()}
	m.Perm = make([]int32, rows)
	for i := range m.Perm {
		m.Perm[i] = int32(i)
	}
	// Stable sort by decreasing row length keeps deterministic layout.
	sort.SliceStable(m.Perm, func(a, b int) bool {
		return counts[m.Perm[a]] > counts[m.Perm[b]]
	})
	maxLen := 0
	if rows > 0 {
		maxLen = counts[m.Perm[0]]
	}
	// Row start offsets within the original (finalized, row-major) COO.
	starts := make([]int32, rows+1)
	for i := 0; i < rows; i++ {
		starts[i+1] = starts[i] + int32(counts[i])
	}
	m.JdPtr = make([]int32, maxLen+1)
	m.ColInd = make([]int32, 0, c.Len())
	m.Values = make([]float64, 0, c.Len())
	for d := 0; d < maxLen; d++ {
		m.JdPtr[d] = int32(len(m.Values))
		for r := 0; r < rows; r++ {
			orig := m.Perm[r]
			if counts[orig] <= d {
				break // rows sorted by length: the rest are shorter
			}
			k := int(starts[orig]) + d
			_, j, v := c.At(k)
			m.ColInd = append(m.ColInd, int32(j))
			m.Values = append(m.Values, v)
		}
	}
	m.JdPtr[maxLen] = int32(len(m.Values))
	return m, nil
}

// Name implements core.Format.
func (m *Matrix) Name() string { return "jds" }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.cols }

// NNZ implements core.Format.
func (m *Matrix) NNZ() int { return len(m.Values) }

// MaxLen returns the number of jagged diagonals (longest row length).
func (m *Matrix) MaxLen() int { return len(m.JdPtr) - 1 }

// SizeBytes implements core.Format: values, col_ind, jd_ptr and the
// permutation.
func (m *Matrix) SizeBytes() int64 {
	return int64(m.NNZ())*(core.IdxSize+core.ValSize) +
		int64(len(m.JdPtr))*core.IdxSize +
		int64(m.rows)*core.IdxSize
}

// SpMV computes y = A*x: one dense pass per jagged diagonal.
func (m *Matrix) SpMV(y, x []float64) {
	for i := 0; i < m.rows; i++ {
		y[i] = 0
	}
	for d := 0; d < len(m.JdPtr)-1; d++ {
		lo, hi := m.JdPtr[d], m.JdPtr[d+1]
		for t := lo; t < hi; t++ {
			r := t - lo // sorted row position
			y[m.Perm[r]] += m.Values[t] * x[m.ColInd[t]]
		}
	}
}
