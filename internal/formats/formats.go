// Package formats is the registry of storage schemes by name: one
// place where a format string ("csr-du", "csr-vi", ...) becomes a
// constructor call. The experiment harness, the empirical autotuner and
// the command-line tools all build formats through it.
package formats

import (
	"strings"

	"spmv/internal/bcsr"
	"spmv/internal/cds"
	"spmv/internal/core"
	"spmv/internal/csc"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrduvi"
	"spmv/internal/csrvi"
	"spmv/internal/dcsr"
	"spmv/internal/ell"
	"spmv/internal/hybrid"
	"spmv/internal/jds"
	"spmv/internal/sym"
	"spmv/internal/vbr"
)

// Options configure BuildOpts. The zero value reproduces Build's
// defaults exactly.
type Options struct {
	// DU carries encoder options for the CSR-DU family ("csr-du",
	// "csr-du-rle", "csr-du-vi"). Other formats ignore it. For
	// "csr-du-rle" the RLE flag is forced on regardless.
	DU csrdu.Options
	// Workers is the construction worker count for formats with a
	// parallel builder (currently the CSR-DU family); it overrides
	// DU.Workers when non-zero. 0 keeps DU.Workers, 1 forces serial,
	// negative means GOMAXPROCS.
	Workers int
}

// du resolves the CSR-DU encoder options, folding Workers in.
func (o Options) du() csrdu.Options {
	opts := o.DU
	if o.Workers != 0 {
		opts.Workers = o.Workers
	}
	return opts
}

// Spec is one complete build candidate: the format name, the encoder
// options it takes, and the scheduler hints that should accompany the
// built format at execution time. The autotuner ranks Specs, the bench
// harness measures them and the server records them — one struct
// instead of three call sites re-plumbing (name, DU, partition/steal)
// separately. The scheduler fields are carried as plain data: this
// package does not depend on the executor, callers map them onto
// parallel.ExecOptions themselves.
type Spec struct {
	// Format is the registry name ("csr", "csr-du", ...). Empty means
	// "csr".
	Format string `json:"format"`
	// DU carries encoder options for the CSR-DU family; other formats
	// ignore it.
	DU csrdu.Options `json:"du,omitempty"`
	// Workers is the construction worker count (see Options.Workers).
	Workers int `json:"workers,omitempty"`
	// Partition is the execution-time work split: "" or "row" for
	// row-balanced chunks, "nnz" for non-zero-balanced chunks, "col"
	// for column partitioning (CSC/backward formats).
	Partition string `json:"partition,omitempty"`
	// Steal enables work stealing between executor workers.
	Steal bool `json:"steal,omitempty"`
}

// Name returns the effective format name ("csr" when unset).
func (s Spec) Name() string {
	if s.Format == "" {
		return "csr"
	}
	return s.Format
}

// options folds the Spec's build-time fields into Options.
func (s Spec) options() Options { return Options{DU: s.DU, Workers: s.Workers} }

// Build constructs the named format from a triplet matrix with default
// options.
func Build(name string, c *core.COO) (core.Format, error) {
	return BuildOpts(name, c, Options{})
}

// BuildSpec constructs the Spec's format from a triplet matrix. The
// scheduler hints (Partition, Steal) do not affect construction; they
// ride along for the caller's executor setup. An unknown format name
// returns an error wrapping core.ErrUsage that lists the valid names.
func BuildSpec(c *core.COO, s Spec) (core.Format, error) {
	return BuildOpts(s.Name(), c, s.options())
}

// BuildOpts constructs the named format from a triplet matrix. An
// unknown name returns an error wrapping core.ErrUsage that lists the
// valid names.
func BuildOpts(name string, c *core.COO, o Options) (core.Format, error) {
	switch name {
	case "csr":
		return csr.FromCOO(c)
	case "csr16":
		return csr.From16(c)
	case "csr32":
		return csr.From32(c)
	case "csr-du":
		return csrdu.FromCOOOpts(c, o.du())
	case "csr-du-rle":
		opts := o.du()
		opts.RLE = true
		return csrdu.FromCOOOpts(c, opts)
	case "csr-vi":
		return csrvi.FromCOO(c)
	case "csr-du-vi":
		return csrduvi.FromCOOOpts(c, o.du())
	case "dcsr":
		return dcsr.FromCOO(c)
	case "csc":
		return csc.FromCOO(c)
	case "bcsr2x2":
		return bcsr.FromCOO(c, 2, 2)
	case "bcsr4x4":
		return bcsr.FromCOO(c, 4, 4)
	case "ell":
		return ell.FromCOO(c)
	case "jds":
		return jds.FromCOO(c)
	case "cds":
		return cds.FromCOO(c)
	case "vbr":
		return vbr.FromCOOAuto(c)
	case "hybrid":
		return hybrid.FromCOO(c)
	case "sym-csr":
		return sym.FromCOO(c, 1e-12)
	default:
		return nil, core.Usagef("formats: unknown format %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
}

// Names returns every registered format name.
func Names() []string {
	return []string{
		"csr", "csr16", "csr32",
		"csr-du", "csr-du-rle", "csr-vi", "csr-du-vi",
		"dcsr", "csc", "bcsr2x2", "bcsr4x4",
		"ell", "jds", "cds", "vbr", "sym-csr", "hybrid",
	}
}
