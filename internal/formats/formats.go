// Package formats is the registry of storage schemes by name: one
// place where a format string ("csr-du", "csr-vi", ...) becomes a
// constructor call. The experiment harness, the empirical autotuner and
// the command-line tools all build formats through it.
package formats

import (
	"fmt"

	"spmv/internal/bcsr"
	"spmv/internal/cds"
	"spmv/internal/core"
	"spmv/internal/csc"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrduvi"
	"spmv/internal/csrvi"
	"spmv/internal/dcsr"
	"spmv/internal/ell"
	"spmv/internal/hybrid"
	"spmv/internal/jds"
	"spmv/internal/sym"
	"spmv/internal/vbr"
)

// Build constructs the named format from a triplet matrix.
func Build(name string, c *core.COO) (core.Format, error) {
	switch name {
	case "csr":
		return csr.FromCOO(c)
	case "csr16":
		return csr.From16(c)
	case "csr32":
		return csr.From32(c)
	case "csr-du":
		return csrdu.FromCOO(c)
	case "csr-du-rle":
		return csrdu.FromCOOOpts(c, csrdu.Options{RLE: true})
	case "csr-vi":
		return csrvi.FromCOO(c)
	case "csr-du-vi":
		return csrduvi.FromCOO(c)
	case "dcsr":
		return dcsr.FromCOO(c)
	case "csc":
		return csc.FromCOO(c)
	case "bcsr2x2":
		return bcsr.FromCOO(c, 2, 2)
	case "bcsr4x4":
		return bcsr.FromCOO(c, 4, 4)
	case "ell":
		return ell.FromCOO(c)
	case "jds":
		return jds.FromCOO(c)
	case "cds":
		return cds.FromCOO(c)
	case "vbr":
		return vbr.FromCOOAuto(c)
	case "hybrid":
		return hybrid.FromCOO(c)
	case "sym-csr":
		return sym.FromCOO(c, 1e-12)
	default:
		return nil, fmt.Errorf("formats: unknown format %q", name)
	}
}

// Names returns every registered format name.
func Names() []string {
	return []string{
		"csr", "csr16", "csr32",
		"csr-du", "csr-du-rle", "csr-vi", "csr-du-vi",
		"dcsr", "csc", "bcsr2x2", "bcsr4x4",
		"ell", "jds", "cds", "vbr", "sym-csr", "hybrid",
	}
}
