package formats

import (
	"errors"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csrdu"
	"spmv/internal/matgen"
)

func TestBuildSpecMatchesBuildOpts(t *testing.T) {
	c := matgen.Stencil2D(20)
	for _, name := range Names() {
		a, errA := BuildOpts(name, c, Options{})
		b, errB := BuildSpec(c, Spec{Format: name, Partition: "nnz", Steal: false})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: BuildOpts err=%v BuildSpec err=%v", name, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.SizeBytes() != b.SizeBytes() || a.Name() != b.Name() {
			t.Errorf("%s: BuildSpec diverged from BuildOpts (%d vs %d bytes)",
				name, b.SizeBytes(), a.SizeBytes())
		}
	}
}

func TestBuildSpecDefaultsToCSR(t *testing.T) {
	c := matgen.Stencil2D(10)
	f, err := BuildSpec(c, Spec{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if f.Name() != "csr" {
		t.Errorf("zero Spec built %q, want csr", f.Name())
	}
}

func TestBuildSpecUnknownIsUsageError(t *testing.T) {
	c := matgen.Stencil2D(10)
	_, err := BuildSpec(c, Spec{Format: "no-such-format"})
	if !errors.Is(err, core.ErrUsage) {
		t.Fatalf("unknown spec: got %v, want ErrUsage", err)
	}
	for _, name := range Names() {
		if !containsSub(err.Error(), name) {
			t.Errorf("error should list %q: %s", name, err)
		}
	}
}

func TestBuildSpecCarriesDUOptions(t *testing.T) {
	// Dense 16-wide blocks produce unit-stride runs long enough for
	// RLE units, so the RLE flag visibly shrinks the control stream.
	s := matgen.BlockDiag(rand.New(rand.NewSource(1)), 8, 16, matgen.Values{})
	plain, err := BuildSpec(s, Spec{Format: "csr-du"})
	if err != nil {
		t.Fatalf("%v", err)
	}
	rle, err := BuildSpec(s, Spec{Format: "csr-du", DU: csrdu.Options{RLE: true}})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if rle.SizeBytes() >= plain.SizeBytes() {
		t.Errorf("DU options did not reach the encoder: rle %d vs plain %d bytes",
			rle.SizeBytes(), plain.SizeBytes())
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
