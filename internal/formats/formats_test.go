package formats

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csrdu"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestEveryRegisteredFormatBuildsOnStencil(t *testing.T) {
	// The stencil is symmetric, banded, low-unique and uniform-row:
	// every registered format can represent it.
	c := matgen.Stencil2D(10)
	x := testmat.RandVec(rand.New(rand.NewSource(1)), c.Cols())
	ref, err := Build("csr", c)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, c.Rows())
	ref.SpMV(want, x)
	for _, name := range Names() {
		f, err := Build(name, c)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		got := make([]float64, c.Rows())
		f.SpMV(got, x)
		testmat.AssertClose(t, name, got, want, 1e-10)
		if f.NNZ() != c.Len() {
			t.Errorf("%s: NNZ %d != %d", name, f.NNZ(), c.Len())
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	c := matgen.Stencil2D(3)
	_, err := Build("nope", c)
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	// The error must be the typed usage sentinel and actionable: it
	// lists every valid name so a CLI user can fix the flag without
	// reading source.
	if !errors.Is(err, core.ErrUsage) {
		t.Errorf("error %v does not wrap core.ErrUsage", err)
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention valid name %q", err, name)
		}
	}
}

func TestBuildOptsDUOptionsApply(t *testing.T) {
	// Wide matrix with uniform-random columns: per-row deltas span u8
	// through u32, so the MinSwitch widen-vs-split policy has work to do.
	rng := rand.New(rand.NewSource(4))
	c := matgen.RandomUniform(rng, 400, 1<<18, 16, matgen.Values{})

	// MinSwitch=1 produces a different (more fragmented) unit stream
	// than the default: proof the options reach the encoder.
	def, err := BuildOpts("csr-du", c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := BuildOpts("csr-du", c, Options{DU: csrdu.Options{MinSwitch: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.(*csrdu.Matrix).Stats().Units <= def.(*csrdu.Matrix).Stats().Units {
		t.Errorf("MinSwitch=1 units %d not greater than default %d",
			tiny.(*csrdu.Matrix).Stats().Units, def.(*csrdu.Matrix).Stats().Units)
	}

	// csr-du-rle forces RLE on even with zero options.
	rle, err := BuildOpts("csr-du-rle", c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rle.(*csrdu.Matrix).Stats().Units == 0 {
		t.Error("csr-du-rle built an empty stream")
	}

	// Workers routes through the parallel encoder with byte-identical
	// output.
	par, err := BuildOpts("csr-du", c, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(par.(*csrdu.Matrix).Ctl, def.(*csrdu.Matrix).Ctl) {
		t.Error("Workers=4 ctl stream differs from serial encoding")
	}
}
