package formats

import (
	"math/rand"
	"testing"

	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestEveryRegisteredFormatBuildsOnStencil(t *testing.T) {
	// The stencil is symmetric, banded, low-unique and uniform-row:
	// every registered format can represent it.
	c := matgen.Stencil2D(10)
	x := testmat.RandVec(rand.New(rand.NewSource(1)), c.Cols())
	ref, err := Build("csr", c)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, c.Rows())
	ref.SpMV(want, x)
	for _, name := range Names() {
		f, err := Build(name, c)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		got := make([]float64, c.Rows())
		f.SpMV(got, x)
		testmat.AssertClose(t, name, got, want, 1e-10)
		if f.NNZ() != c.Len() {
			t.Errorf("%s: NNZ %d != %d", name, f.NNZ(), c.Len())
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	c := matgen.Stencil2D(3)
	if _, err := Build("nope", c); err == nil {
		t.Error("unknown name accepted")
	}
}
