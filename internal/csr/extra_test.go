package csr

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestTripletsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := matgen.FEMLike(rng, 150, 5, matgen.Values{})
	m, _ := FromCOO(c)
	back := m.Triplets()
	if back.Len() != c.Len() || back.Rows() != c.Rows() || back.Cols() != c.Cols() {
		t.Fatalf("shape mismatch")
	}
	for k := 0; k < c.Len(); k++ {
		i1, j1, v1 := c.At(k)
		i2, j2, v2 := back.At(k)
		if i1 != i2 || j1 != j2 || v1 != v2 {
			t.Fatalf("entry %d differs", k)
		}
	}
}

func TestForEachRowMajorOrder(t *testing.T) {
	c := matgen.Stencil2D(7)
	m, _ := FromCOO(c)
	lastI, lastJ, count := -1, -1, 0
	m.ForEach(func(i, j int, v float64) {
		if i < lastI || (i == lastI && j <= lastJ) {
			t.Fatalf("order violation at (%d,%d)", i, j)
		}
		lastI, lastJ = i, j
		count++
	})
	if count != m.NNZ() {
		t.Errorf("visited %d of %d", count, m.NNZ())
	}
}

func TestSpMMInPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := matgen.Banded(rng, 80, 5, 4, matgen.Values{})
	m, _ := FromCOO(c)
	k := 4
	x := testmat.RandVec(rng, m.Cols()*k)
	y := make([]float64, m.Rows()*k)
	m.SpMM(y, x, k)
	for col := 0; col < k; col++ {
		xc := make([]float64, m.Cols())
		for j := range xc {
			xc[j] = x[j*k+col]
		}
		want := make([]float64, m.Rows())
		m.SpMV(want, xc)
		for i := range want {
			if diff := y[i*k+col] - want[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("col %d row %d: %v vs %v", col, i, y[i*k+col], want[i])
			}
		}
	}
}

func TestSpMVTInPackage(t *testing.T) {
	c := core.NewCOO(2, 3)
	c.Add(0, 0, 1)
	c.Add(0, 2, 2)
	c.Add(1, 1, 3)
	m, _ := FromCOO(c)
	y := make([]float64, 3)
	m.SpMVT(y, []float64{2, 5})
	want := []float64{2, 15, 4}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("SpMVT = %v, want %v", y, want)
		}
	}
}

func TestCSR32Trace(t *testing.T) {
	c := matgen.Stencil2D(10)
	m, _ := From32(c)
	a := core.NewArena()
	m.Place(a)
	xBase := a.Alloc(int64(m.Cols()) * 8)
	yBase := a.Alloc(int64(m.Rows()) * 8)
	var xGathers, writes, valLines int
	for _, ch := range m.Split(2) {
		ch.(core.Tracer).TraceSpMV(xBase, yBase, func(acc core.Access) {
			if acc.Addr >= xBase && acc.Addr < xBase+uint64(m.Cols())*8 {
				xGathers++
			}
			if acc.Write {
				writes++
			}
			if acc.Addr >= m.valBase && acc.Addr < m.valBase+uint64(m.NNZ())*4 {
				valLines++
			}
		})
	}
	if xGathers != m.NNZ() {
		t.Errorf("x gathers = %d, want %d", xGathers, m.NNZ())
	}
	if writes == 0 {
		t.Error("no y writes traced")
	}
	// 4-byte values: about half the lines of the 8-byte stream.
	maxLines := m.NNZ()*4/core.LineSize + 2
	if valLines > maxLines {
		t.Errorf("value stream lines = %d, want <= %d", valLines, maxLines)
	}
}

func TestCSR32MetaAccessors(t *testing.T) {
	c := matgen.Stencil2D(4)
	m, _ := From32(c)
	if m.Rows() != 16 || m.Cols() != 16 || m.NNZ() != c.Len() {
		t.Errorf("meta: %d %d %d", m.Rows(), m.Cols(), m.NNZ())
	}
}
