package csr

import "spmv/internal/core"

// Compute-cost model for traced kernels, in CPU cycles. One CSR
// iteration does an index load, a multiply and an add; the cost is
// attached to the x gather access since there is exactly one per
// non-zero. Compressed formats charge more here (decode work) — that is
// the paper's storage-for-computation tradeoff made explicit.
const (
	csrCompPerNNZ = 3
	rowOverhead   = 2 // loop bookkeeping per row, attached to the row_ptr stream
)

// Place implements core.Placer for CSR.
func (m *Matrix) Place(a *core.Arena) {
	m.rowPtrBase = a.Alloc(int64(len(m.RowPtr)) * 4)
	m.colIndBase = a.Alloc(int64(len(m.ColInd)) * 4)
	m.valBase = a.Alloc(int64(len(m.Values)) * 8)
}

// TraceSpMV implements core.Tracer: it replays the memory reference
// stream of the chunk's SpMV kernel in program order. The sequential
// arrays (row_ptr, col_ind, values, y) are coalesced to cache-line
// granularity; the x gathers are emitted per element.
func (c *chunk) TraceSpMV(xBase, yBase uint64, emit core.EmitFunc) {
	m := c.m
	if m.rowPtrBase == 0 {
		panic(core.Usagef("csr: TraceSpMV before Place"))
	}
	rp := core.NewStreamCursor(m.rowPtrBase)
	ci := core.NewStreamCursor(m.colIndBase)
	vs := core.NewStreamCursor(m.valBase)
	yw := core.NewStreamCursor(yBase)
	for i := c.lo; i < c.hi; i++ {
		rp.Touch(emit, int64(i)*4, 8, false, rowOverhead)
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			ci.Touch(emit, int64(j)*4, 4, false, 0)
			vs.Touch(emit, int64(j)*8, 8, false, 0)
			emit(core.Access{
				Addr: xBase + uint64(m.ColInd[j])*8, Size: 8,
				Comp: csrCompPerNNZ,
			})
		}
		yw.Touch(emit, int64(i)*8, 8, true, 0)
	}
}
