package csr

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestCSRConformance(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return FromCOO(c) })
}

func TestCSR16Conformance(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return From16(c) })
}

func TestFromCOOPaperExample(t *testing.T) {
	// The 6x6 matrix of the paper's Fig 1 with its published CSR arrays.
	vals := [][]float64{
		{5.4, 1.1, 0, 0, 0, 0},
		{0, 6.3, 0, 7.7, 0, 8.8},
		{0, 0, 1.1, 0, 0, 0},
		{0, 0, 2.9, 0, 3.7, 2.9},
		{9.0, 0, 0, 1.1, 4.5, 0},
		{1.1, 0, 2.9, 3.7, 0, 1.1},
	}
	c := core.NewCOO(6, 6)
	for i, row := range vals {
		for j, v := range row {
			if v != 0 {
				c.Add(i, j, v)
			}
		}
	}
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	wantRowPtr := []int32{0, 2, 5, 6, 9, 12, 16}
	wantColInd := []int32{0, 1, 1, 3, 5, 2, 2, 4, 5, 0, 3, 4, 0, 2, 3, 5}
	wantValues := []float64{5.4, 1.1, 6.3, 7.7, 8.8, 1.1, 2.9, 3.7, 2.9, 9.0, 1.1, 4.5, 1.1, 2.9, 3.7, 1.1}
	for i, w := range wantRowPtr {
		if m.RowPtr[i] != w {
			t.Fatalf("RowPtr = %v, want %v", m.RowPtr, wantRowPtr)
		}
	}
	for i, w := range wantColInd {
		if m.ColInd[i] != w {
			t.Fatalf("ColInd = %v, want %v", m.ColInd, wantColInd)
		}
	}
	for i, w := range wantValues {
		if m.Values[i] != w {
			t.Fatalf("Values = %v, want %v", m.Values, wantValues)
		}
	}
}

func TestSizeBytesMatchesPaperFormula(t *testing.T) {
	c := matgen.Stencil2D(10)
	m, _ := FromCOO(c)
	want := int64(m.NNZ())*(4+8) + int64(m.Rows()+1)*4
	if m.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", m.SizeBytes(), want)
	}
}

func TestCSR16SizeIsSmaller(t *testing.T) {
	c := matgen.Stencil2D(20) // 400 cols < 2^16
	m32, _ := FromCOO(c)
	m16, err := From16(c)
	if err != nil {
		t.Fatal(err)
	}
	if m16.SizeBytes() >= m32.SizeBytes() {
		t.Errorf("csr16 (%d bytes) not smaller than csr (%d bytes)", m16.SizeBytes(), m32.SizeBytes())
	}
	// Index portion exactly halves.
	wantDelta := int64(m32.NNZ()) * 2
	if m32.SizeBytes()-m16.SizeBytes() != wantDelta {
		t.Errorf("size delta = %d, want %d", m32.SizeBytes()-m16.SizeBytes(), wantDelta)
	}
}

func TestFrom16RejectsWideMatrix(t *testing.T) {
	c := core.NewCOO(2, MaxCols16+1)
	c.Add(0, MaxCols16, 1)
	c.Finalize()
	if _, err := From16(c); err == nil {
		t.Error("From16 accepted a matrix wider than 2^16")
	}
}

func TestSplitBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := matgen.RandomUniform(rng, 4000, 4000, 16, matgen.Values{})
	m, _ := FromCOO(c)
	for _, n := range []int{2, 4, 8} {
		chunks := m.Split(n)
		if len(chunks) != n {
			t.Fatalf("Split(%d) gave %d chunks", n, len(chunks))
		}
		avg := float64(m.NNZ()) / float64(n)
		for _, ch := range chunks {
			ratio := float64(ch.NNZ()) / avg
			if ratio < 0.9 || ratio > 1.1 {
				t.Errorf("Split(%d): chunk nnz ratio %v outside [0.9,1.1]", n, ratio)
			}
		}
	}
}

func TestChunkSpMVDoesNotTouchOtherRows(t *testing.T) {
	c := matgen.Stencil2D(8)
	m, _ := FromCOO(c)
	chunks := m.Split(4)
	x := testmat.RandVec(rand.New(rand.NewSource(1)), m.Cols())
	y := make([]float64, m.Rows())
	const sentinel = 12345.0
	for i := range y {
		y[i] = sentinel
	}
	lo, hi := chunks[1].RowRange()
	chunks[1].SpMV(y, x)
	for i := range y {
		inside := i >= lo && i < hi
		if !inside && y[i] != sentinel {
			t.Fatalf("chunk [%d,%d) wrote y[%d]", lo, hi, i)
		}
		if inside && y[i] == sentinel {
			t.Fatalf("chunk [%d,%d) did not write y[%d]", lo, hi, i)
		}
	}
}

func TestRowNNZ(t *testing.T) {
	c := core.NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(0, 2, 1)
	c.Add(2, 1, 1)
	m, _ := FromCOO(c)
	for i, want := range []int{2, 0, 1} {
		if got := m.RowNNZ(i); got != want {
			t.Errorf("RowNNZ(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestTraceStreamsAreCoalesced(t *testing.T) {
	c := matgen.Stencil2D(12)
	m, _ := FromCOO(c)
	a := core.NewArena()
	m.Place(a)
	xBase := a.Alloc(int64(m.Cols()) * 8)
	yBase := a.Alloc(int64(m.Rows()) * 8)
	var colIndLines int
	for _, ch := range m.Split(1) {
		ch.(core.Tracer).TraceSpMV(xBase, yBase, func(acc core.Access) {
			if acc.Addr >= m.colIndBase && acc.Addr < m.colIndBase+uint64(m.NNZ())*4 {
				colIndLines++
			}
		})
	}
	// col_ind is streamed: ~nnz*4/64 lines, not nnz accesses.
	maxLines := m.NNZ()*4/core.LineSize + 2
	if colIndLines > maxLines {
		t.Errorf("col_ind emitted %d accesses, want <= %d line-granular", colIndLines, maxLines)
	}
	if colIndLines == 0 {
		t.Error("no col_ind accesses traced")
	}
}

func BenchmarkSpMVStencil(b *testing.B) {
	m, _ := FromCOO(matgen.Stencil2D(128))
	x := make([]float64, m.Cols())
	y := make([]float64, m.Rows())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.SetBytes(m.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SpMV(y, x)
	}
}
