package csr

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/partition"
)

// Matrix32 is CSR with single-precision values: the lower-precision
// value representation of Keyes that the paper's §III-C cites. It
// halves the value stream (4 bytes instead of 8 per non-zero) at the
// cost of rounding every coefficient to float32; pair it with
// solver.Refine to recover double-precision solutions (Langou et al.'s
// mixed-precision scheme, also cited in §III-C).
type Matrix32 struct {
	rows, cols int
	RowPtr     []int32
	ColInd     []int32
	Values     []float32

	rowPtrBase, colIndBase, valBase uint64
}

var (
	_ core.Format   = (*Matrix32)(nil)
	_ core.Splitter = (*Matrix32)(nil)
	_ core.Placer   = (*Matrix32)(nil)
)

// From32 builds a single-precision-value CSR matrix; values are rounded
// to float32.
func From32(c *core.COO) (*Matrix32, error) {
	c.Finalize()
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("csr: %d non-zeros exceed 32-bit index range", c.Len())
	}
	m := &Matrix32{
		rows:   c.Rows(),
		cols:   c.Cols(),
		RowPtr: make([]int32, c.Rows()+1),
		ColInd: make([]int32, c.Len()),
		Values: make([]float32, c.Len()),
	}
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		m.RowPtr[i+1]++
		m.ColInd[k] = int32(j)
		m.Values[k] = float32(v)
	}
	for i := 0; i < c.Rows(); i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m, nil
}

// Name implements core.Format.
func (m *Matrix32) Name() string { return "csr32" }

// Rows implements core.Format.
func (m *Matrix32) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix32) Cols() int { return m.cols }

// NNZ implements core.Format.
func (m *Matrix32) NNZ() int { return len(m.Values) }

// SizeBytes implements core.Format: 4-byte values.
func (m *Matrix32) SizeBytes() int64 {
	return int64(m.NNZ())*(core.IdxSize+4) + int64(m.rows+1)*core.IdxSize
}

// SpMV computes y = A*x; the accumulation runs in double precision, as
// in the mixed-precision kernels the paper cites.
func (m *Matrix32) SpMV(y, x []float64) { m.spmvRange(y, x, 0, m.rows) }

func (m *Matrix32) spmvRange(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			sum += float64(m.Values[j]) * x[m.ColInd[j]]
		}
		y[i] = sum
	}
}

// Split implements core.Splitter.
func (m *Matrix32) Split(n int) []core.Chunk {
	bounds := partition.SplitRowsByNNZ(m.RowPtr, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		chunks = append(chunks, &chunk32{m: m, lo: bounds[i], hi: bounds[i+1]})
	}
	return chunks
}

// Place implements core.Placer.
func (m *Matrix32) Place(a *core.Arena) {
	m.rowPtrBase = a.Alloc(int64(len(m.RowPtr)) * 4)
	m.colIndBase = a.Alloc(int64(len(m.ColInd)) * 4)
	m.valBase = a.Alloc(int64(len(m.Values)) * 4)
}

type chunk32 struct {
	m      *Matrix32
	lo, hi int
}

var _ core.Tracer = (*chunk32)(nil)

func (c *chunk32) RowRange() (int, int) { return c.lo, c.hi }
func (c *chunk32) NNZ() int             { return int(c.m.RowPtr[c.hi] - c.m.RowPtr[c.lo]) }
func (c *chunk32) SpMV(y, x []float64)  { c.m.spmvRange(y, x, c.lo, c.hi) }

// TraceSpMV implements core.Tracer: like CSR but with a 4-byte value
// stream.
func (c *chunk32) TraceSpMV(xBase, yBase uint64, emit core.EmitFunc) {
	m := c.m
	if m.rowPtrBase == 0 {
		panic(core.Usagef("csr: TraceSpMV before Place"))
	}
	rp := core.NewStreamCursor(m.rowPtrBase)
	ci := core.NewStreamCursor(m.colIndBase)
	vs := core.NewStreamCursor(m.valBase)
	yw := core.NewStreamCursor(yBase)
	for i := c.lo; i < c.hi; i++ {
		rp.Touch(emit, int64(i)*4, 8, false, rowOverhead)
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			ci.Touch(emit, int64(j)*4, 4, false, 0)
			vs.Touch(emit, int64(j)*4, 4, false, 0)
			emit(core.Access{
				Addr: xBase + uint64(m.ColInd[j])*8, Size: 8,
				Comp: csrCompPerNNZ + 1, // float32->float64 convert
			})
		}
		yw.Touch(emit, int64(i)*8, 8, true, 0)
	}
}
