package csr

import (
	"errors"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

func TestVerifyClean(t *testing.T) {
	c := matgen.Stencil2D(5)
	m, _ := FromCOO(c)
	if err := m.Verify(); err != nil {
		t.Errorf("Matrix: %v", err)
	}
	m16, err := From16(c)
	if err != nil {
		t.Fatalf("From16: %v", err)
	}
	if err := m16.Verify(); err != nil {
		t.Errorf("Matrix16: %v", err)
	}
	m32, err := From32(c)
	if err != nil {
		t.Fatalf("From32: %v", err)
	}
	if err := m32.Verify(); err != nil {
		t.Errorf("Matrix32: %v", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	t.Run("non-monotone row pointer", func(t *testing.T) {
		m, _ := FromCOO(matgen.Stencil2D(5))
		m.RowPtr[2], m.RowPtr[3] = m.RowPtr[3], m.RowPtr[2]
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("column out of range", func(t *testing.T) {
		m, _ := FromCOO(matgen.Stencil2D(5))
		m.ColInd[0] = int32(m.Cols())
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("row pointer span mismatch", func(t *testing.T) {
		m, _ := FromCOO(matgen.Stencil2D(5))
		m.RowPtr[len(m.RowPtr)-1]--
		if err := m.Verify(); err == nil {
			t.Fatal("shrunk row pointer span passed Verify")
		}
	})
	t.Run("csr16 column out of range", func(t *testing.T) {
		m, _ := From16(matgen.Stencil2D(5))
		m.ColInd[0] = uint16(m.Cols())
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("values length mismatch", func(t *testing.T) {
		m, _ := FromCOO(matgen.Stencil2D(5))
		m.Values = m.Values[:len(m.Values)-1]
		if err := m.Verify(); err == nil {
			t.Fatal("short values array passed Verify")
		}
	})
}
