package csr

import (
	"sort"

	"spmv/internal/core"
	"spmv/internal/partition"
)

var _ core.NNZSplitter = (*Matrix)(nil)

// SplitNNZ implements core.NNZSplitter: boundaries are placed every
// nnz/parts stored elements — mid-row when a row straddles a target —
// so one worker can never inherit more than an even share plus one
// element, no matter how skewed the row lengths are. This is the
// merge/nonzero-split partitioning of Bergmans et al. applied to CSR:
// the row-granular Split keeps a long row whole (its owner then carries
// the whole row's weight), while SplitNNZ privatizes the at-most-two
// boundary rows per chunk for the scheduler's fix-up pass.
func (m *Matrix) SplitNNZ(n int) []core.NNZChunk {
	if n <= 0 {
		panic(core.Usagef("csr: SplitNNZ with n=%d", n))
	}
	nnz := m.NNZ()
	bounds := partition.Even(nnz, n)
	var chunks []core.NNZChunk
	for i := 0; i+1 < len(bounds); i++ {
		klo, khi := bounds[i], bounds[i+1]
		if klo == khi {
			continue
		}
		chunks = append(chunks, m.nnzChunk(klo, khi))
	}
	return chunks
}

// nnzChunk locates the rows of the half-open non-zero range [klo, khi)
// and classifies its edges: a boundary strictly inside a row makes that
// row a shared ("split") row whose piece is privatized.
func (m *Matrix) nnzChunk(klo, khi int) *nnzChunk {
	rFirst := m.rowOf(klo)
	rLast := m.rowOf(khi - 1)
	c := &nnzChunk{m: m, klo: klo, khi: khi, head: -1, tail: -1}
	headSplit := klo > int(m.RowPtr[rFirst])
	tailSplit := khi < int(m.RowPtr[rLast+1])
	if rFirst == rLast {
		// Single-row chunk: either it owns the whole row, or the whole
		// chunk is one privatized piece (reported via the head slot).
		if headSplit || tailSplit {
			c.head, c.tail = rFirst, rFirst
			c.fullLo, c.fullHi = rFirst, rFirst
		} else {
			c.fullLo, c.fullHi = rFirst, rLast+1
		}
		return c
	}
	c.fullLo, c.fullHi = rFirst, rLast+1
	if headSplit {
		c.head = rFirst
		c.fullLo = rFirst + 1
	}
	if tailSplit {
		c.tail = rLast
		c.fullHi = rLast
	}
	return c
}

// rowOf returns the row containing stored non-zero k: the unique r with
// RowPtr[r] <= k < RowPtr[r+1] (empty rows have no non-zeros and are
// never returned).
func (m *Matrix) rowOf(k int) int {
	return sort.Search(m.rows, func(r int) bool { return int(m.RowPtr[r+1]) > k })
}

// nnzChunk is a contiguous stored-non-zero range of a CSR matrix.
// Rows [fullLo, fullHi) are exclusively owned; head and tail are the
// shared boundary rows (-1 when the edge falls on a row boundary).
type nnzChunk struct {
	m              *Matrix
	klo, khi       int
	fullLo, fullHi int
	head, tail     int
}

func (c *nnzChunk) NNZRange() (int, int) { return c.klo, c.khi }
func (c *nnzChunk) NNZ() int             { return c.khi - c.klo }
func (c *nnzChunk) Boundary() (int, int) { return c.head, c.tail }

// RowRange returns the touched rows: from the head split row (or first
// full row) through the tail split row (or last full row), half-open.
func (c *nnzChunk) RowRange() (int, int) {
	lo, hi := c.fullLo, c.fullHi
	if c.head >= 0 {
		lo = c.head
	}
	if c.tail >= 0 {
		hi = c.tail + 1
	}
	return lo, hi
}

// SpMVPartial implements core.NNZChunk. Fully-owned rows run the same
// BCE-friendly range kernel as row partitioning; the at-most-two
// boundary pieces accumulate into the chunk's private partial slots.
func (c *nnzChunk) SpMVPartial(y, x, partial []float64) {
	partial[0] = 0
	partial[1] = 0
	m := c.m
	if c.head >= 0 {
		end := int(m.RowPtr[c.head+1])
		if end > c.khi {
			end = c.khi
		}
		partial[0] = dotRange(x, m.ColInd, m.Values, c.klo, end)
	}
	spmvRange(y, x, m.RowPtr, m.ColInd, m.Values, c.fullLo, c.fullHi, false)
	if c.tail >= 0 && c.tail != c.head {
		partial[1] = dotRange(x, m.ColInd, m.Values, int(m.RowPtr[c.tail]), c.khi)
	}
}

// dotRange computes the partial row sum over stored non-zeros [lo, hi):
// the privatized piece of a split row. Same subslice shape as
// spmvRange, so the per-nnz bounds checks fold into one.
func dotRange(x []float64, colInd []int32, values []float64, lo, hi int) float64 {
	vals := values[lo:hi]
	cols := colInd[lo:hi]
	cols = cols[:len(vals)]
	sum := 0.0
	for k, v := range vals {
		sum += v * x[cols[k]]
	}
	return sum
}
