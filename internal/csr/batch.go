package csr

import "spmv/internal/core"

// Batched SpMV (SpMM): Y = A*X over row-major n×k panels. CSR streams
// its full col_ind/values arrays once per multiplication, so every
// loaded (column, value) pair feeds k FMAs instead of one — the
// matrix-stream traffic per right-hand side falls by 1/k, the same
// bandwidth relief the compressed formats buy with decode work.

var (
	_ core.BatchFormat = (*Matrix)(nil)
	_ core.BatchChunk  = (*chunk)(nil)
)

// SpMVBatch implements core.BatchFormat. len(x) >= Cols()*k,
// len(y) >= Rows()*k; k = 1 is bitwise identical to SpMV.
func (m *Matrix) SpMVBatch(y, x []float64, k int) {
	spmvBatchRange(y, x, m.RowPtr, m.ColInd, m.Values, 0, m.rows, k)
}

// SpMVBatch implements core.BatchChunk: only panel rows [lo, hi) are
// written, so disjoint chunks may run concurrently.
func (c *chunk) SpMVBatch(y, x []float64, k int) {
	spmvBatchRange(y, x, c.m.RowPtr, c.m.ColInd, c.m.Values, c.lo, c.hi, k)
}

func spmvBatchRange(y, x []float64, rowPtr, colInd []int32, values []float64, lo, hi, k int) {
	switch k {
	case 1:
		// The panel degenerates to the vector; reuse the scalar kernel
		// (and its exact operation order — the bitwise-k=1 contract).
		spmvRange(y, x, rowPtr, colInd, values, lo, hi, false)
	case 4:
		// Fixed-width accumulators for the common case: four row sums
		// stay in registers, written once per row.
		for i := lo; i < hi; i++ {
			vals := values[rowPtr[i]:rowPtr[i+1]]
			cols := colInd[rowPtr[i]:rowPtr[i+1]]
			cols = cols[:len(vals)]
			var s0, s1, s2, s3 float64
			for p, v := range vals {
				xr := x[int(cols[p])*4:]
				xr = xr[:4]
				s0 += v * xr[0]
				s1 += v * xr[1]
				s2 += v * xr[2]
				s3 += v * xr[3]
			}
			yr := y[i*4:]
			yr = yr[:4]
			yr[0], yr[1], yr[2], yr[3] = s0, s1, s2, s3
		}
	default:
		if k <= 0 {
			panic(core.Usagef("csr: batch with non-positive vector count %d", k))
		}
		// Generic width: accumulate directly into the (zeroed) output
		// row, which the row's stores keep cache-resident.
		for i := lo; i < hi; i++ {
			vals := values[rowPtr[i]:rowPtr[i+1]]
			cols := colInd[rowPtr[i]:rowPtr[i+1]]
			cols = cols[:len(vals)]
			yr := y[i*k:]
			yr = yr[:k]
			for c := range yr {
				yr[c] = 0
			}
			for p, v := range vals {
				xr := x[int(cols[p])*k:]
				xr = xr[:len(yr)]
				for c, xv := range xr {
					yr[c] += v * xv
				}
			}
		}
	}
}
