package csr

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

// testMatrices builds the nnz-split test corpus: a regular stencil, a
// scattered random matrix, a power-law matrix and the isolated
// heavy-row pathology.
func testMatrices(t *testing.T) map[string]*Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	coos := map[string]*core.COO{
		"stencil2d":  matgen.Stencil2D(8),
		"random":     matgen.RandomUniform(rng, 60, 60, 5, matgen.Values{}),
		"powerlaw":   matgen.PowerLaw(rng, 200, 4, 0.9, matgen.Values{}),
		"skewed":     matgen.SkewedRows(rng, 100, 3, 50, 0.4, matgen.Values{}),
		"denserow":   matgen.SkewedRows(rng, 40, 1, 20, 0.9, matgen.Values{}),
		"first-skew": matgen.SkewedRows(rng, 64, 2, 0, 0.5, matgen.Values{}),
		"last-skew":  matgen.SkewedRows(rng, 64, 2, 63, 0.5, matgen.Values{}),
	}
	ms := make(map[string]*Matrix, len(coos))
	for name, c := range coos {
		m, err := FromCOO(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ms[name] = m
	}
	return ms
}

// TestSplitNNZContract checks the NNZSplitter contract on every test
// matrix: chunks are ordered, cover the stored non-zeros exactly once,
// are balanced to within one element, and classify their boundary rows
// consistently with the row pointer.
func TestSplitNNZContract(t *testing.T) {
	for name, m := range testMatrices(t) {
		for _, parts := range []int{1, 2, 3, 4, 7, 8, 16, 64} {
			chunks := m.SplitNNZ(parts)
			if len(chunks) > parts {
				t.Fatalf("%s/%d: %d chunks", name, parts, len(chunks))
			}
			next := 0
			for ci, ch := range chunks {
				klo, khi := ch.NNZRange()
				if klo != next || khi <= klo {
					t.Fatalf("%s/%d: chunk %d range [%d,%d), want start %d",
						name, parts, ci, klo, khi, next)
				}
				next = khi
				if ch.NNZ() != khi-klo {
					t.Errorf("%s/%d: chunk %d NNZ %d != %d", name, parts, ci, ch.NNZ(), khi-klo)
				}
				if ch.NNZ() > m.NNZ()/parts+1 {
					t.Errorf("%s/%d: chunk %d holds %d nnz, above the even share %d",
						name, parts, ci, ch.NNZ(), m.NNZ()/parts+1)
				}

				rFirst, rLast := m.rowOf(klo), m.rowOf(khi-1)
				head, tail := ch.Boundary()
				wantHead, wantTail := -1, -1
				if klo > int(m.RowPtr[rFirst]) {
					wantHead = rFirst
				}
				if khi < int(m.RowPtr[rLast+1]) {
					wantTail = rLast
				}
				if rFirst == rLast && (wantHead >= 0 || wantTail >= 0) {
					// Chunk inside one row: both slots name it, head only.
					wantHead, wantTail = rFirst, rFirst
				}
				if head != wantHead || tail != wantTail {
					t.Errorf("%s/%d: chunk %d Boundary() = (%d,%d), want (%d,%d)",
						name, parts, ci, head, tail, wantHead, wantTail)
				}
				lo, hi := ch.RowRange()
				if lo != rFirst || hi != rLast+1 {
					t.Errorf("%s/%d: chunk %d RowRange() = [%d,%d), want [%d,%d)",
						name, parts, ci, lo, hi, rFirst, rLast+1)
				}
			}
			if next != m.NNZ() {
				t.Fatalf("%s/%d: chunks cover %d of %d nnz", name, parts, next, m.NNZ())
			}
		}
	}
}

// TestSpMVPartialReconstruction runs each chunk's partial kernel and
// the scheduler's fix-up recipe by hand, and checks the assembled y
// against the serial kernel. Split-row pieces are added in chunk order
// — contiguous sub-ranges of the row left to right — so the only
// difference from the serial sum is association, bounded well inside
// 1e-12 relative on these sizes.
func TestSpMVPartialReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, m := range testMatrices(t) {
		x := make([]float64, m.Cols())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, m.Rows())
		m.SpMV(want, x)
		for _, parts := range []int{1, 2, 3, 5, 8, 16} {
			chunks := m.SplitNNZ(parts)
			got := make([]float64, m.Rows())
			sums := make(map[int]float64)
			partial := make([]float64, 2)
			for _, ch := range chunks {
				ch.SpMVPartial(got, x, partial)
				head, tail := ch.Boundary()
				if head >= 0 {
					sums[head] += partial[0]
				}
				if tail >= 0 && tail != head {
					sums[tail] += partial[1]
				}
			}
			for r, s := range sums {
				got[r] = s
			}
			for i := range want {
				if d := math.Abs(got[i] - want[i]); d > 1e-12*(1+math.Abs(want[i])) {
					t.Fatalf("%s/%d: y[%d] = %v, want %v", name, parts, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSplitNNZDenseRowSpans pins the whole point of nnz splitting: a
// row holding 90% of the matrix is shared by several chunks (the
// middle ones strictly inside it report head == tail), instead of
// landing whole on one worker.
func TestSplitNNZDenseRowSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := FromCOO(matgen.SkewedRows(rng, 40, 1, 20, 0.9, matgen.Values{}))
	if err != nil {
		t.Fatal(err)
	}
	const parts = 8
	chunks := m.SplitNNZ(parts)
	inside := 0
	owners := 0
	for _, ch := range chunks {
		head, tail := ch.Boundary()
		if head == 20 || tail == 20 {
			owners++
		}
		if head == 20 && tail == 20 {
			inside++
		}
	}
	if owners < 4 {
		t.Errorf("dense row shared by %d of %d chunks, want most of them", owners, parts)
	}
	if inside == 0 {
		t.Errorf("no chunk lies strictly inside the dense row (chunks %d)", len(chunks))
	}
}

// TestSplitNNZUsage checks the usage panic on a non-positive part
// count, matching the splitters' convention.
func TestSplitNNZUsage(t *testing.T) {
	m, err := FromCOO(matgen.Stencil2D(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SplitNNZ(0) did not panic")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, core.ErrUsage) {
			t.Fatalf("SplitNNZ(0) panicked with %v, want core.ErrUsage", r)
		}
	}()
	m.SplitNNZ(0)
}
