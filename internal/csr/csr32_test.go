package csr

import (
	"math"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestCSR32Conformance(t *testing.T) {
	// The conformance battery's tolerance (1e-10 relative) is too tight
	// for float32 coefficients, so run a float32-friendly version of the
	// checks over the corpus: compare against a dense reference computed
	// from the *rounded* values.
	for _, tc := range testmat.Corpus() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			m, err := From32(tc.COO)
			if err != nil {
				t.Fatal(err)
			}
			// Reference with identically rounded values.
			rounded := core.NewCOO(tc.COO.Rows(), tc.COO.Cols())
			for k := 0; k < tc.COO.Len(); k++ {
				i, j, v := tc.COO.At(k)
				rounded.Add(i, j, float64(float32(v)))
			}
			rounded.Finalize()
			d := core.DenseFromCOO(rounded)
			rng := rand.New(rand.NewSource(4))
			x := testmat.RandVec(rng, tc.COO.Cols())
			want := make([]float64, tc.COO.Rows())
			got := make([]float64, tc.COO.Rows())
			d.SpMV(want, x)
			m.SpMV(got, x)
			testmat.AssertClose(t, "csr32", got, want, 1e-10)

			// Chunked equals serial.
			got2 := make([]float64, tc.COO.Rows())
			for i := range got2 {
				got2[i] = math.NaN()
			}
			covered := make([]bool, tc.COO.Rows())
			for _, ch := range m.Split(3) {
				ch.SpMV(got2, x)
				lo, hi := ch.RowRange()
				for i := lo; i < hi; i++ {
					covered[i] = true
				}
			}
			for i := range got2 {
				if !covered[i] {
					got2[i] = 0
				}
			}
			testmat.AssertClose(t, "csr32 chunks", got2, want, 1e-10)
		})
	}
}

func TestCSR32HalvesValueBytes(t *testing.T) {
	c := matgen.Stencil2D(30)
	m64, _ := FromCOO(c)
	m32, err := From32(c)
	if err != nil {
		t.Fatal(err)
	}
	if diff := m64.SizeBytes() - m32.SizeBytes(); diff != int64(4*m64.NNZ()) {
		t.Errorf("size delta = %d, want %d", diff, 4*m64.NNZ())
	}
	if m32.Name() != "csr32" {
		t.Errorf("Name = %q", m32.Name())
	}
}

func TestCSR32RoundsValues(t *testing.T) {
	c := core.NewCOO(1, 1)
	c.Add(0, 0, 1+1e-12) // not representable in float32
	c.Finalize()
	m, _ := From32(c)
	if m.Values[0] != 1.0 {
		t.Errorf("value = %v, want rounded to 1", m.Values[0])
	}
}
