package csr

import "spmv/internal/core"

// Verify implements core.Verifier: row pointer monotone and spanning
// exactly nnz, column indices inside [0, cols), index and value arrays
// the same length. O(nnz).
func (m *Matrix) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("csr: negative dimensions %dx%d", m.rows, m.cols)
	}
	if len(m.RowPtr) != m.rows+1 {
		return core.Shapef("csr: row pointer length %d, want %d", len(m.RowPtr), m.rows+1)
	}
	if len(m.ColInd) != len(m.Values) {
		return core.Shapef("csr: %d column indices for %d values", len(m.ColInd), len(m.Values))
	}
	if err := core.CheckRowPtr(m.RowPtr, len(m.Values)); err != nil {
		return err
	}
	return core.CheckColInd(m.ColInd, m.cols)
}

// Verify implements core.Verifier for the 16-bit-index variant.
func (m *Matrix16) Verify() error {
	if m.rows < 0 || m.cols < 0 || m.cols > MaxCols16 {
		return core.Shapef("csr16: invalid dimensions %dx%d", m.rows, m.cols)
	}
	if len(m.RowPtr) != m.rows+1 {
		return core.Shapef("csr16: row pointer length %d, want %d", len(m.RowPtr), m.rows+1)
	}
	if len(m.ColInd) != len(m.Values) {
		return core.Shapef("csr16: %d column indices for %d values", len(m.ColInd), len(m.Values))
	}
	if err := core.CheckRowPtr(m.RowPtr, len(m.Values)); err != nil {
		return err
	}
	for k, j := range m.ColInd {
		if int(j) >= m.cols {
			return core.Corruptf("csr16: column index %d at position %d out of range [0,%d)", j, k, m.cols)
		}
	}
	return nil
}

// Verify implements core.Verifier for the single-precision variant.
func (m *Matrix32) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("csr32: negative dimensions %dx%d", m.rows, m.cols)
	}
	if len(m.RowPtr) != m.rows+1 {
		return core.Shapef("csr32: row pointer length %d, want %d", len(m.RowPtr), m.rows+1)
	}
	if len(m.ColInd) != len(m.Values) {
		return core.Shapef("csr32: %d column indices for %d values", len(m.ColInd), len(m.Values))
	}
	if err := core.CheckRowPtr(m.RowPtr, len(m.Values)); err != nil {
		return err
	}
	return core.CheckColInd(m.ColInd, m.cols)
}
