// Package csr implements the Compressed Sparse Row storage format with
// 32-bit indices and 64-bit values — the baseline of the paper's
// evaluation (§II-B, Fig 1) — together with a 16-bit-index variant
// (CSR16, the index-reduction optimization of Williams et al. that the
// paper's §III-D mentions).
//
// Both formats provide the serial SpMV kernel with a register
// accumulator (the paper's optimized CSR code), nnz-balanced row
// partitioning for the multithreaded runtime, and memory-access tracing
// for the machine simulator.
package csr

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/partition"
)

// Matrix is a sparse matrix in CSR form: Values holds the non-zeros in
// row-major order, ColInd the column of each non-zero, and RowPtr the
// offset of each row's first non-zero (len rows+1).
type Matrix struct {
	rows, cols int
	RowPtr     []int32
	ColInd     []int32
	Values     []float64

	// Virtual base addresses for tracing; zero until Place is called.
	rowPtrBase, colIndBase, valBase uint64
}

var (
	_ core.Format   = (*Matrix)(nil)
	_ core.Splitter = (*Matrix)(nil)
	_ core.SpMVAdd  = (*Matrix)(nil)
	_ core.Placer   = (*Matrix)(nil)
)

// FromCOO builds a CSR matrix from a triplet matrix. The COO is
// finalized in place if it is not already. It returns an error if the
// non-zero count exceeds the 32-bit index range.
func FromCOO(c *core.COO) (*Matrix, error) {
	c.Finalize()
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("csr: %d non-zeros exceed 32-bit index range", c.Len())
	}
	m := &Matrix{
		rows:   c.Rows(),
		cols:   c.Cols(),
		RowPtr: make([]int32, c.Rows()+1),
		ColInd: make([]int32, c.Len()),
		Values: make([]float64, c.Len()),
	}
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		m.RowPtr[i+1]++
		m.ColInd[k] = int32(j)
		m.Values[k] = v
	}
	for i := 0; i < c.Rows(); i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m, nil
}

// Name implements core.Format.
func (m *Matrix) Name() string { return "csr" }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.cols }

// NNZ implements core.Format.
func (m *Matrix) NNZ() int { return len(m.Values) }

// SizeBytes implements core.Format: values + col_ind + row_ptr.
func (m *Matrix) SizeBytes() int64 {
	return core.CSRBytes(m.rows, m.NNZ(), core.IdxSize, core.ValSize)
}

// SpMV computes y = A*x with the paper's optimized kernel: the row sum
// is kept in a register and written to y[i] once per row.
func (m *Matrix) SpMV(y, x []float64) {
	spmvRange(y, x, m.RowPtr, m.ColInd, m.Values, 0, m.rows, false)
}

// SpMVAdd computes y += A*x.
func (m *Matrix) SpMVAdd(y, x []float64) {
	spmvRange(y, x, m.RowPtr, m.ColInd, m.Values, 0, m.rows, true)
}

func spmvRange(y, x []float64, rowPtr, colInd []int32, values []float64, lo, hi int, add bool) {
	for i := lo; i < hi; i++ {
		// Subslice the row once so the inner loop indexes two
		// equal-length slices: the compiler drops the per-nnz bounds
		// checks on vals and cols, leaving only the data-dependent
		// gather x[cols[k]].
		vals := values[rowPtr[i]:rowPtr[i+1]]
		cols := colInd[rowPtr[i]:rowPtr[i+1]]
		cols = cols[:len(vals)]
		sum := 0.0
		for k, v := range vals {
			sum += v * x[cols[k]]
		}
		if add {
			y[i] += sum
		} else {
			y[i] = sum
		}
	}
}

// Split implements core.Splitter with nnz-balanced row partitioning.
func (m *Matrix) Split(n int) []core.Chunk {
	bounds := partition.SplitRowsByNNZ(m.RowPtr, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		chunks = append(chunks, &chunk{m: m, lo: bounds[i], hi: bounds[i+1]})
	}
	return chunks
}

// RowNNZ returns the number of non-zeros in row i.
func (m *Matrix) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// SpMVT computes y = A^T * x (y has Cols() elements, x has Rows()),
// by scattering each row's contribution — the product BiCG-type
// methods and normal-equation solvers need without building an
// explicit transpose.
func (m *Matrix) SpMVT(y, x []float64) {
	for j := 0; j < m.cols; j++ {
		y[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			y[m.ColInd[k]] += m.Values[k] * xi
		}
	}
}

// SpMM computes k simultaneous products Y = A*X, where X packs k
// right-hand vectors interleaved (X[j*k+c] is element j of vector c)
// and Y likewise. Blocking the vectors amortizes every matrix byte over
// k FLOP pairs, raising arithmetic intensity — the same
// bandwidth-relief goal as the paper's compression, achieved on the
// workload side when the application has multiple vectors. SpMM is the
// historical name of SpMVBatch (core.BatchFormat); both run the same
// fused kernel.
func (m *Matrix) SpMM(y, x []float64, k int) {
	m.SpMVBatch(y, x, k)
}

// ForEach calls fn for every non-zero in row-major order.
func (m *Matrix) ForEach(fn func(i, j int, v float64)) {
	for i := 0; i < m.rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			fn(i, int(m.ColInd[k]), m.Values[k])
		}
	}
}

// Triplets converts back to finalized COO form: the inverse of FromCOO.
func (m *Matrix) Triplets() *core.COO {
	c := core.NewCOO(m.rows, m.cols)
	m.ForEach(func(i, j int, v float64) { c.Add(i, j, v) })
	c.Finalize()
	return c
}

// chunk is a contiguous row range of a CSR matrix.
type chunk struct {
	m      *Matrix
	lo, hi int
}

var _ core.Tracer = (*chunk)(nil)

func (c *chunk) RowRange() (int, int) { return c.lo, c.hi }
func (c *chunk) NNZ() int             { return int(c.m.RowPtr[c.hi] - c.m.RowPtr[c.lo]) }
func (c *chunk) SpMV(y, x []float64) {
	spmvRange(y, x, c.m.RowPtr, c.m.ColInd, c.m.Values, c.lo, c.hi, false)
}
