package csr

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/partition"
)

// Matrix16 is CSR with 16-bit column indices: the simple index-reduction
// optimization applied by Williams et al. when the column count permits
// (paper §III-D). It halves the col_ind array relative to CSR and serves
// as an ablation point against CSR-DU's delta encoding.
type Matrix16 struct {
	rows, cols int
	RowPtr     []int32
	ColInd     []uint16
	Values     []float64

	rowPtrBase, colIndBase, valBase uint64
}

var (
	_ core.Format   = (*Matrix16)(nil)
	_ core.Splitter = (*Matrix16)(nil)
	_ core.SpMVAdd  = (*Matrix16)(nil)
	_ core.Placer   = (*Matrix16)(nil)
)

// MaxCols16 is the largest column count Matrix16 can index.
const MaxCols16 = 1 << 16

// From16 builds a 16-bit-index CSR matrix from a triplet matrix. It
// returns an error if the matrix has too many columns for 16-bit
// indices or too many non-zeros for 32-bit row pointers.
func From16(c *core.COO) (*Matrix16, error) {
	c.Finalize()
	if c.Cols() > MaxCols16 {
		return nil, fmt.Errorf("csr: %d columns exceed 16-bit index range", c.Cols())
	}
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("csr: %d non-zeros exceed 32-bit index range", c.Len())
	}
	m := &Matrix16{
		rows:   c.Rows(),
		cols:   c.Cols(),
		RowPtr: make([]int32, c.Rows()+1),
		ColInd: make([]uint16, c.Len()),
		Values: make([]float64, c.Len()),
	}
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		m.RowPtr[i+1]++
		m.ColInd[k] = uint16(j)
		m.Values[k] = v
	}
	for i := 0; i < c.Rows(); i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m, nil
}

// Name implements core.Format.
func (m *Matrix16) Name() string { return "csr16" }

// Rows implements core.Format.
func (m *Matrix16) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix16) Cols() int { return m.cols }

// NNZ implements core.Format.
func (m *Matrix16) NNZ() int { return len(m.Values) }

// SizeBytes implements core.Format: 2-byte column indices.
func (m *Matrix16) SizeBytes() int64 {
	return int64(m.NNZ())*(2+core.ValSize) + int64(m.rows+1)*core.IdxSize
}

// SpMV computes y = A*x.
func (m *Matrix16) SpMV(y, x []float64) { m.spmvRange(y, x, 0, m.rows, false) }

// SpMVAdd computes y += A*x.
func (m *Matrix16) SpMVAdd(y, x []float64) { m.spmvRange(y, x, 0, m.rows, true) }

func (m *Matrix16) spmvRange(y, x []float64, lo, hi int, add bool) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			sum += m.Values[j] * x[m.ColInd[j]]
		}
		if add {
			y[i] += sum
		} else {
			y[i] = sum
		}
	}
}

// Split implements core.Splitter with nnz-balanced row partitioning.
func (m *Matrix16) Split(n int) []core.Chunk {
	bounds := partition.SplitRowsByNNZ(m.RowPtr, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		chunks = append(chunks, &chunk16{m: m, lo: bounds[i], hi: bounds[i+1]})
	}
	return chunks
}

// Place implements core.Placer.
func (m *Matrix16) Place(a *core.Arena) {
	m.rowPtrBase = a.Alloc(int64(len(m.RowPtr)) * 4)
	m.colIndBase = a.Alloc(int64(len(m.ColInd)) * 2)
	m.valBase = a.Alloc(int64(len(m.Values)) * 8)
}

type chunk16 struct {
	m      *Matrix16
	lo, hi int
}

var _ core.Tracer = (*chunk16)(nil)

func (c *chunk16) RowRange() (int, int) { return c.lo, c.hi }
func (c *chunk16) NNZ() int             { return int(c.m.RowPtr[c.hi] - c.m.RowPtr[c.lo]) }
func (c *chunk16) SpMV(y, x []float64)  { c.m.spmvRange(y, x, c.lo, c.hi, false) }

// TraceSpMV implements core.Tracer.
func (c *chunk16) TraceSpMV(xBase, yBase uint64, emit core.EmitFunc) {
	m := c.m
	if m.rowPtrBase == 0 {
		panic(core.Usagef("csr: TraceSpMV before Place"))
	}
	rp := core.NewStreamCursor(m.rowPtrBase)
	ci := core.NewStreamCursor(m.colIndBase)
	vs := core.NewStreamCursor(m.valBase)
	yw := core.NewStreamCursor(yBase)
	for i := c.lo; i < c.hi; i++ {
		rp.Touch(emit, int64(i)*4, 8, false, rowOverhead)
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			ci.Touch(emit, int64(j)*2, 2, false, 0)
			vs.Touch(emit, int64(j)*8, 8, false, 0)
			emit(core.Access{
				Addr: xBase + uint64(m.ColInd[j])*8, Size: 8,
				Comp: csrCompPerNNZ,
			})
		}
		yw.Touch(emit, int64(i)*8, 8, true, 0)
	}
}
