package varint

import (
	"bytes"
	"testing"
)

// FuzzDecode checks that Decode never panics and that successfully
// decoded prefixes re-encode to the same bytes.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x80, 0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x80})
	f.Add(bytes.Repeat([]byte{0xff}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n := Decode(data)
		if n <= 0 {
			return // truncated or overflowing: fine, just must not panic
		}
		re := Append(nil, v)
		if !bytes.Equal(re, data[:n]) {
			// The encoding is canonical, so a non-canonical input (e.g.
			// redundant continuation bytes like 0x80 0x00) may decode to
			// a value whose re-encoding is shorter. That is acceptable
			// as long as the value round-trips.
			v2, n2 := Decode(re)
			if n2 <= 0 || v2 != v {
				t.Fatalf("re-encode of %d failed: %v", v, re)
			}
		}
	})
}
