// Package varint implements the variable-length unsigned integer
// encoding used for the ujmp field of the CSR-DU control stream
// (paper §IV): LEB128-style base-128 groups, least significant first,
// with the high bit of each byte marking continuation.
//
// The stdlib encoding/binary has Uvarint, but the CSR-DU decoder is the
// innermost hot loop of the SpMV kernel, so this package provides an
// append-style encoder and an inlined cursor-based decoder tuned for
// that use, plus exact size accounting for the compression-ratio
// reports.
package varint

// MaxLen is the maximum encoded length of a 64-bit value.
const MaxLen = 10

// Append appends the encoding of v to dst and returns the extended slice.
func Append(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Decode reads a varint from buf and returns the value and the number of
// bytes consumed. It returns n == 0 if buf is empty or the varint is
// truncated, and n < 0 if the value overflows 64 bits.
func Decode(buf []byte) (v uint64, n int) {
	var shift uint
	for i, b := range buf {
		if i == MaxLen {
			return 0, -(i + 1) // overflow
		}
		if b < 0x80 {
			if i == MaxLen-1 && b > 1 {
				return 0, -(i + 1) // overflow past 64 bits
			}
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0 // truncated
}

// DecodeAt decodes a varint from buf starting at offset pos, returning
// the value and the offset just past it. It is the hot-loop form used by
// the CSR-DU kernel: no slicing, no error return — the encoder guarantees
// well-formed streams, so malformed input is a programming error and
// out-of-bounds access will panic via the bounds check.
func DecodeAt(buf []byte, pos int) (v uint64, next int) {
	var shift uint
	for {
		b := buf[pos]
		pos++
		if b < 0x80 {
			return v | uint64(b)<<shift, pos
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// Len returns the encoded length of v in bytes (1..MaxLen).
func Len(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
