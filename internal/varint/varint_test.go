package varint

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripKnownValues(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 129, 255, 256, 16383, 16384,
		1<<21 - 1, 1 << 21, 1<<28 - 1, 1 << 28, 1<<35 - 1,
		1<<63 - 1, math.MaxUint64}
	for _, v := range cases {
		buf := Append(nil, v)
		got, n := Decode(buf)
		if n != len(buf) || got != v {
			t.Errorf("Decode(Append(%d)) = %d (n=%d, len=%d)", v, got, n, len(buf))
		}
		if Len(v) != len(buf) {
			t.Errorf("Len(%d) = %d, encoded length %d", v, Len(v), len(buf))
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		buf := Append(nil, v)
		got, n := Decode(buf)
		if n != len(buf) || got != v {
			return false
		}
		got2, next := DecodeAt(buf, 0)
		return got2 == v && next == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchesStdlibUvarint(t *testing.T) {
	f := func(v uint64) bool {
		ours := Append(nil, v)
		std := binary.AppendUvarint(nil, v)
		return bytes.Equal(ours, std)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := Append(nil, 1<<40)
	for cut := 0; cut < len(full); cut++ {
		if _, n := Decode(full[:cut]); n != 0 {
			t.Errorf("Decode of %d-byte truncation returned n=%d, want 0", cut, n)
		}
	}
}

func TestDecodeOverflow(t *testing.T) {
	// 11 continuation bytes: longer than any valid 64-bit varint.
	buf := bytes.Repeat([]byte{0x80}, 11)
	buf = append(buf, 0x01)
	if _, n := Decode(buf); n >= 0 {
		t.Errorf("Decode of overlong varint returned n=%d, want negative", n)
	}
	// 10 bytes but top value bits exceed 64.
	buf2 := bytes.Repeat([]byte{0xff}, 9)
	buf2 = append(buf2, 0x7f)
	if _, n := Decode(buf2); n >= 0 {
		t.Errorf("Decode of 64-bit-overflowing varint returned n=%d, want negative", n)
	}
}

func TestDecodeAtSequence(t *testing.T) {
	vals := []uint64{0, 300, 7, 1 << 50, 127, 128}
	var buf []byte
	for _, v := range vals {
		buf = Append(buf, v)
	}
	pos := 0
	for i, want := range vals {
		var got uint64
		got, pos = DecodeAt(buf, pos)
		if got != want {
			t.Errorf("value %d = %d, want %d", i, got, want)
		}
	}
	if pos != len(buf) {
		t.Errorf("final pos = %d, want %d", pos, len(buf))
	}
}

func TestLenBoundaries(t *testing.T) {
	for k := 1; k <= 9; k++ {
		hi := uint64(1)<<(7*k) - 1
		if Len(hi) != k {
			t.Errorf("Len(2^%d-1) = %d, want %d", 7*k, Len(hi), k)
		}
		if Len(hi+1) != k+1 {
			t.Errorf("Len(2^%d) = %d, want %d", 7*k, Len(hi+1), k+1)
		}
	}
	if Len(math.MaxUint64) != MaxLen {
		t.Errorf("Len(MaxUint64) = %d, want %d", Len(math.MaxUint64), MaxLen)
	}
}

func BenchmarkDecodeAtSmall(b *testing.B) {
	var buf []byte
	for i := 0; i < 1024; i++ {
		buf = Append(buf, uint64(i%128))
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := 0
		var s uint64
		for pos < len(buf) {
			var v uint64
			v, pos = DecodeAt(buf, pos)
			s += v
		}
		sink = s
	}
}

var sink uint64
