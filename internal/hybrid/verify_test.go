package hybrid

import (
	"errors"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
)

func buildVerifyFixture(t *testing.T) *Matrix {
	t.Helper()
	c := core.NewCOO(64, 64)
	for i := 0; i < 64; i++ {
		c.Add(i, i, 2)
		c.Add(i, (i+7)%64, -1)
	}
	m, err := FromCOOBlock(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVerifyClean(t *testing.T) {
	if err := buildVerifyFixture(t).Verify(); err != nil {
		t.Fatalf("Verify on valid matrix: %v", err)
	}
}

func TestVerifyCorrupt(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Matrix)
	}{
		{"nil-subformat", func(m *Matrix) { m.blocks[1].f = nil }},
		{"gap-between-blocks", func(m *Matrix) { m.blocks[1].lo++ }},
		{"short-coverage", func(m *Matrix) { m.blocks = m.blocks[:len(m.blocks)-1] }},
		{"nnz-mismatch", func(m *Matrix) { m.nnz += 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := buildVerifyFixture(t)
			tc.corrupt(m)
			err := m.Verify()
			if err == nil {
				t.Fatal("Verify accepted corrupted matrix")
			}
			if !errors.Is(err, core.ErrCorrupt) && !errors.Is(err, core.ErrShape) {
				t.Fatalf("Verify error %v is not typed", err)
			}
		})
	}
}

// TestVerifyRecursesIntoBlocks swaps one block's sub-format for a
// corrupted CSR of the same shape and expects the hybrid Verify to
// surface it.
func TestVerifyRecursesIntoBlocks(t *testing.T) {
	m := buildVerifyFixture(t)
	b := &m.blocks[0]
	sub := core.NewCOO(b.hi-b.lo, m.cols)
	for i := 0; i < b.hi-b.lo; i++ {
		sub.Add(i, i, 1)
		sub.Add(i, (i+7)%m.cols, 1)
	}
	bad, err := csr.FromCOO(sub)
	if err != nil {
		t.Fatal(err)
	}
	bad.ColInd[0] = int32(m.cols + 40) // out of range
	b.f = bad
	if err := m.Verify(); err == nil {
		t.Fatal("Verify accepted matrix with corrupt block")
	} else if !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("Verify error %v is not ErrCorrupt", err)
	}
}
