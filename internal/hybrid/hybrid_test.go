package hybrid

import (
	"math/rand"
	"strings"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/matgen"
	"spmv/internal/parallel"
	"spmv/internal/testmat"
)

func TestConformance(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) {
		return FromCOOBlock(c, 16) // small blocks so the corpus exercises many
	})
}

// mixedMatrix glues a pure stencil region (dense diagonals: CDS wins)
// on top of a widely scattered region (CSR-DU wins): no single format
// is best for both. side is the stencil grid side; each region has
// side*side rows.
func mixedMatrix(rng *rand.Rand, side int) *core.COO {
	n := side * side
	cols := 1 << 20
	c := core.NewCOO(2*n, cols)
	stencil := matgen.Stencil2D(side)
	for k := 0; k < stencil.Len(); k++ {
		i, j, v := stencil.At(k)
		c.Add(i, j, v)
	}
	scattered := matgen.RandomUniform(rng, n, cols, 6, matgen.Values{})
	for k := 0; k < scattered.Len(); k++ {
		i, j, v := scattered.At(k)
		c.Add(n+i, j, v)
	}
	c.Finalize()
	return c
}

func TestPicksDifferentFormatsPerRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := mixedMatrix(rng, 64)
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	mix := m.Mix()
	if !strings.Contains(mix, ":") {
		t.Fatalf("Mix = %q", mix)
	}
	// The banded half must not be stored as plain CSR, and the format
	// mix must contain at least two formats.
	if !strings.Contains(mix, "cds") || !strings.Contains(mix, "csr-du") {
		t.Errorf("expected cds for the stencil region and csr-du for the scattered one, got %s", mix)
	}
	if len(strings.Fields(mix)) < 2 {
		t.Errorf("expected a mixed selection, got %s", mix)
	}
	// Hybrid must beat both single whole-matrix formats on size.
	whole, _ := csr.FromCOO(c)
	du, _ := csrdu.FromCOO(c)
	if m.SizeBytes() >= whole.SizeBytes() {
		t.Errorf("hybrid %d >= csr %d", m.SizeBytes(), whole.SizeBytes())
	}
	if m.SizeBytes() > du.SizeBytes() {
		t.Errorf("hybrid %d > csr-du %d: per-region choice should not lose", m.SizeBytes(), du.SizeBytes())
	}
}

func TestMatchesCSRNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := mixedMatrix(rng, 24)
	m, _ := FromCOO(c)
	ref, _ := csr.FromCOO(c)
	x := testmat.RandVec(rng, c.Cols())
	y1 := make([]float64, c.Rows())
	y2 := make([]float64, c.Rows())
	m.SpMV(y1, x)
	ref.SpMV(y2, x)
	testmat.AssertClose(t, "hybrid", y1, y2, 1e-10)
}

func TestParallelExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := mixedMatrix(rng, 32)
	m, _ := FromCOOBlock(c, 512)
	e, err := parallel.NewExecutor(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	x := testmat.RandVec(rng, c.Cols())
	want := make([]float64, c.Rows())
	m.SpMV(want, x)
	got := make([]float64, c.Rows())
	e.Run(got, x)
	testmat.AssertClose(t, "parallel hybrid", got, want, 1e-10)
}

func TestBadBlockHeight(t *testing.T) {
	c := matgen.Stencil2D(4)
	if _, err := FromCOOBlock(c, 0); err == nil {
		t.Error("block height 0 accepted")
	}
}

func TestStencilAllCompressed(t *testing.T) {
	c := matgen.Stencil2D(64)
	m, _ := FromCOOBlock(c, 1024)
	if strings.Contains(m.Mix(), "csr:") {
		t.Errorf("stencil blocks fell back to plain CSR: %s", m.Mix())
	}
}
