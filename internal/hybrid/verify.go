package hybrid

import "spmv/internal/core"

// Verify implements core.Verifier: blocks tile [0, rows) contiguously,
// each sub-format has the block's shape, the logical non-zeros add up,
// and every sub-format that can verify itself does. Cost is the sum of
// the sub-format verifications.
func (m *Matrix) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("hybrid: negative dimensions %dx%d", m.rows, m.cols)
	}
	if len(m.blocks) == 0 && m.rows > 0 {
		return core.Shapef("hybrid: no blocks for %d rows", m.rows)
	}
	next := 0
	total := 0
	for k, b := range m.blocks {
		if b.f == nil {
			return core.Corruptf("hybrid: block %d has no sub-format", k)
		}
		if b.lo != next || b.hi <= b.lo {
			return core.Corruptf("hybrid: block %d spans [%d,%d), want start %d", k, b.lo, b.hi, next)
		}
		if b.f.Rows() != b.hi-b.lo || b.f.Cols() != m.cols {
			return core.Shapef("hybrid: block %d sub-format is %dx%d, want %dx%d",
				k, b.f.Rows(), b.f.Cols(), b.hi-b.lo, m.cols)
		}
		if err := core.Verify(b.f); err != nil {
			return core.Corruptf("hybrid: block %d (%s): %w", k, b.f.Name(), err)
		}
		total += b.f.NNZ()
		next = b.hi
	}
	if next != m.rows {
		return core.Shapef("hybrid: blocks cover %d rows, want %d", next, m.rows)
	}
	if total != m.nnz {
		return core.Corruptf("hybrid: block non-zeros sum to %d, want %d", total, m.nnz)
	}
	return nil
}
