// Package hybrid implements per-region format selection: the matrix is
// cut into row blocks and each block is stored in whichever format
// encodes it smallest (CSR-DU for small-delta regions, CDS for purely
// banded ones, CSR where nothing compresses). This is a simplified
// realization of the direction the paper's authors took next — their
// CSX follow-up work generalizes exactly this "exploit whatever
// regularity each region has" idea beyond whole-matrix formats.
package hybrid

import (
	"fmt"
	"strings"

	"spmv/internal/cds"
	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/partition"
)

// DefaultBlockRows is the row-block granularity of format selection.
const DefaultBlockRows = 4096

// Matrix is a sparse matrix stored as independently formatted row
// blocks.
type Matrix struct {
	rows, cols int
	nnz        int
	blocks     []block
}

// block is one row range with its chosen sub-format. The sub-format is
// built over local row indices [0, hi-lo) and the full column range.
type block struct {
	lo, hi int
	f      core.Format
}

var (
	_ core.Format   = (*Matrix)(nil)
	_ core.Splitter = (*Matrix)(nil)
)

// Selector chooses the storage format for one row block. The sub-COO
// is indexed over local rows [0, blockRows); the returned format must
// be built from it. The default selector builds CSR, CSR-DU and CDS
// and keeps the smallest; the autotuner substitutes its analytic
// cost-model pick.
type Selector func(sub *core.COO) (core.Format, error)

// FromCOO builds a hybrid matrix with DefaultBlockRows-row blocks.
func FromCOO(c *core.COO) (*Matrix, error) { return FromCOOBlock(c, DefaultBlockRows) }

// FromCOOBlock builds a hybrid matrix with the given block height. Per
// block, the candidates are CSR, CSR-DU and (when its fill bound
// admits) CDS; the smallest encoding wins.
func FromCOOBlock(c *core.COO, blockRows int) (*Matrix, error) {
	return FromCOOSelect(c, blockRows, pickFormat)
}

// FromCOOSelect builds a hybrid matrix with the given block height,
// delegating per-region format choice to the selector.
func FromCOOSelect(c *core.COO, blockRows int, pick Selector) (*Matrix, error) {
	if blockRows <= 0 {
		return nil, fmt.Errorf("hybrid: invalid block height %d", blockRows)
	}
	if pick == nil {
		pick = pickFormat
	}
	c.Finalize()
	m := &Matrix{rows: c.Rows(), cols: c.Cols(), nnz: c.Len()}
	for lo := 0; lo < c.Rows(); lo += blockRows {
		hi := lo + blockRows
		if hi > c.Rows() {
			hi = c.Rows()
		}
		sub := c.Slice(lo, hi, 0, c.Cols())
		best, err := pick(sub)
		if err != nil {
			return nil, fmt.Errorf("hybrid: rows [%d,%d): %w", lo, hi, err)
		}
		m.blocks = append(m.blocks, block{lo: lo, hi: hi, f: best})
	}
	return m, nil
}

// pickFormat returns the smallest encoding of the block.
func pickFormat(sub *core.COO) (core.Format, error) {
	base, err := csr.FromCOO(sub)
	if err != nil {
		return nil, err
	}
	var best core.Format = base
	if du, err := csrdu.FromCOO(sub); err == nil && du.SizeBytes() < best.SizeBytes() {
		best = du
	}
	if cd, err := cds.FromCOO(sub); err == nil && cd.SizeBytes() < best.SizeBytes() {
		best = cd
	}
	return best, nil
}

// Name implements core.Format.
func (m *Matrix) Name() string { return "hybrid" }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.cols }

// NNZ implements core.Format.
func (m *Matrix) NNZ() int { return m.nnz }

// SizeBytes implements core.Format: the sum of the chosen encodings.
func (m *Matrix) SizeBytes() int64 {
	var s int64
	for _, b := range m.blocks {
		s += b.f.SizeBytes()
	}
	return s
}

// Mix reports how many blocks chose each sub-format, e.g.
// "csr-du:12 cds:3 csr:1".
func (m *Matrix) Mix() string {
	counts := map[string]int{}
	order := []string{}
	for _, b := range m.blocks {
		if counts[b.f.Name()] == 0 {
			order = append(order, b.f.Name())
		}
		counts[b.f.Name()]++
	}
	parts := make([]string, 0, len(order))
	for _, name := range order {
		parts = append(parts, fmt.Sprintf("%s:%d", name, counts[name]))
	}
	return strings.Join(parts, " ")
}

// SpMV computes y = A*x block by block.
func (m *Matrix) SpMV(y, x []float64) {
	for _, b := range m.blocks {
		b.f.SpMV(y[b.lo:b.hi], x)
	}
}

// Split implements core.Splitter: chunks are runs of whole blocks with
// balanced non-zero counts.
func (m *Matrix) Split(n int) []core.Chunk {
	prefix := make([]int64, len(m.blocks)+1)
	for i, b := range m.blocks {
		prefix[i+1] = prefix[i] + int64(b.f.NNZ())
	}
	bounds := partition.SplitPrefix(prefix, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		chunks = append(chunks, &chunk{m: m, blo: bounds[i], bhi: bounds[i+1]})
	}
	return chunks
}

type chunk struct {
	m        *Matrix
	blo, bhi int
}

func (c *chunk) RowRange() (int, int) {
	return c.m.blocks[c.blo].lo, c.m.blocks[c.bhi-1].hi
}

func (c *chunk) NNZ() int {
	n := 0
	for _, b := range c.m.blocks[c.blo:c.bhi] {
		n += b.f.NNZ()
	}
	return n
}

func (c *chunk) SpMV(y, x []float64) {
	for _, b := range c.m.blocks[c.blo:c.bhi] {
		b.f.SpMV(y[b.lo:b.hi], x)
	}
}
