package bench

import (
	"io"

	"spmv/internal/memsim"
	"spmv/internal/simtrace"
)

// FreqPoint is one core-frequency setting: the clock and each format's
// serial speedup over serial CSR.
type FreqPoint struct {
	FreqGHz  float64
	RelSpeed map[string]float64
}

// FrequencyStudy reproduces the paper's §VI-D observation: the authors
// measured smaller serial CSR-DU/VI gains on the 2GHz Clovertown than
// on their earlier 3GHz Woodcrest and attributed it to clock frequency
// — a slower core makes the decode cycles relatively more expensive and
// the saved memory cycles relatively cheaper. They verified by
// downclocking a Woodcrest to 2GHz; we verify by scaling the modeled
// core clock against a fixed-bandwidth memory system (bus cycles per
// line and miss latency scale with frequency) and measuring the serial
// speedup of each compressed format.
func FrequencyStudy(cfg Config, matrix string, freqsGHz []float64) ([]FreqPoint, error) {
	spec, err := findSpec(matrix)
	if err != nil {
		return nil, err
	}
	c := spec.Gen(cfg.Scale)
	if cfg.WarmIters <= 0 {
		cfg.WarmIters = 2
	}
	base, err := buildFormat("csr", c)
	if err != nil {
		return nil, err
	}
	baseTraces, err := simtrace.Collect(base, 1)
	if err != nil {
		return nil, err
	}
	type prepared struct {
		name   string
		traces [][]memsim.PackedAccess
	}
	var formats []prepared
	for _, name := range cfg.Formats {
		f, err := buildFormat(name, c)
		if err != nil {
			return nil, err
		}
		tr, err := simtrace.Collect(f, 1)
		if err != nil {
			return nil, err
		}
		formats = append(formats, prepared{name, tr})
	}

	warm := func(m memsim.Machine, traces [][]memsim.PackedAccess) (float64, error) {
		placement := memsim.ClosePlacement(len(traces))
		cold, err := memsim.Simulate(m, traces, placement, 1)
		if err != nil {
			return 0, err
		}
		full, err := memsim.Simulate(m, traces, placement, 1+cfg.WarmIters)
		if err != nil {
			return 0, err
		}
		// Seconds, not cycles: the clock differs between points.
		return float64(full.Cycles-cold.Cycles) / float64(cfg.WarmIters) / m.FreqHz, nil
	}

	ref := cfg.Machine
	var points []FreqPoint
	for _, ghz := range freqsGHz {
		m := ref
		scale := ghz * 1e9 / ref.FreqHz
		m.FreqHz = ghz * 1e9
		// Memory speed is fixed in wall-clock terms, so its cost in
		// core cycles scales with the clock.
		m.BusPerLine = uint64(float64(ref.BusPerLine)*scale + 0.5)
		m.MemLat = uint64(float64(ref.MemLat)*scale + 0.5)
		if m.BusPerLine == 0 {
			m.BusPerLine = 1
		}
		p := FreqPoint{FreqGHz: ghz, RelSpeed: map[string]float64{}}
		csrSec, err := warm(m, baseTraces)
		if err != nil {
			return nil, err
		}
		for _, f := range formats {
			sec, err := warm(m, f.traces)
			if err != nil {
				return nil, err
			}
			p.RelSpeed[f.name] = csrSec / sec
		}
		points = append(points, p)
	}
	return points, nil
}

// PrintFreq writes the frequency study as a text series.
func PrintFreq(w io.Writer, points []FreqPoint, formats []string, matrix string) error {
	pr := &printer{w: w}
	pr.f("Frequency study (§VI-D): %s, serial speedup vs serial CSR\n", matrix)
	pr.f("%10s", "core GHz")
	for _, f := range formats {
		pr.f("%12s", f)
	}
	pr.ln()
	for _, p := range points {
		pr.f("%10.1f", p.FreqGHz)
		for _, f := range formats {
			pr.f("%12.2f", p.RelSpeed[f])
		}
		pr.ln()
	}
	return pr.err
}
