package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"spmv/internal/core"
	"spmv/internal/formats"
	"spmv/internal/matgen"
	"spmv/internal/memsim"
	"spmv/internal/obs"
	"spmv/internal/parallel"
	"spmv/internal/roofline"
	"spmv/internal/simtrace"
	"spmv/internal/stats"
)

// Config controls an experiment run.
type Config struct {
	// Machine is the simulated platform (simulation mode only).
	Machine memsim.Machine
	// Scale multiplies matrix sizes; 1.0 reproduces paper-scale working
	// sets, smaller values speed up tests.
	Scale float64
	// WarmIters is the number of steady-state iterations measured
	// (after one cold iteration, mirroring the paper's warm-cache
	// 128-iteration loop). Both modes honor it exactly: simulation
	// measures WarmIters warm iterations, and native mode times
	// WarmIters iterations after a warmUpIters warm-up. (Earlier
	// versions silently raised the native measured count to at least 3,
	// so native and simulated seconds-per-SpMV averaged over different
	// iteration counts.)
	WarmIters int
	// Threads are the thread counts exercised (paper: 1, 2, 4, 8).
	Threads []int
	// Formats selects compressed formats to run beyond CSR. Valid:
	// "csr-du", "csr-vi", "csr-du-vi", "dcsr", "csr-du-rle".
	Formats []string
	// Native switches from simulation to wall-clock goroutine timing.
	Native bool
	// Verify structurally checks every built format (core.Verify) before
	// it is timed, failing the run on corruption.
	Verify bool
	// Verbose, if non-nil, receives progress lines.
	Verbose io.Writer
	// Metrics enables the observability layer: native-mode runs attach
	// an obs.Recorder to every executor and fill MatrixRuns.Metrics
	// with per-chunk timings, measured load imbalance and effective
	// bandwidth (sim mode fills the timing-derived fields only).
	Metrics bool
	// Recorder, if non-nil, additionally receives every native run's
	// telemetry across the whole collection — the live sink a debug
	// endpoint (expvar) reads while the benchmark is running.
	Recorder *obs.Recorder
	// Collector, if non-nil, is a further telemetry sink teed into every
	// native run — e.g. a prof.Series recording the per-iteration
	// timeline of the measured loop.
	Collector obs.Collector
	// Samples repeats each native cell measurement this many times and
	// stores the individual timings in MatrixRuns.SecsSamples, giving
	// the regression archive a spread to test against. Values below 2
	// measure once and record no samples. Simulation mode ignores it —
	// the simulator is deterministic, repeats would be identical.
	Samples int
	// Partition selects the native execution scheme ("row", "col",
	// "nnz"); empty means row. Formats that do not support the
	// requested scheme (nnz is CSR-only) fall back to row partitioning
	// so mixed-format sweeps still complete.
	Partition string
	// Steal enables the work-stealing row executor in native mode
	// (parallel.ExecOptions.Steal).
	Steal bool
	// Roofline, if non-nil, anchors every measured cell's bandwidth to
	// the host's roofline: RunMetrics gains CeilingGBps and PctRoofline
	// (GBps / ceiling at the cell's thread count), and report tables can
	// print the %roof column. Nil leaves the roofline fields zero.
	Roofline *roofline.Model
}

// DefaultConfig returns the paper-reproduction configuration.
func DefaultConfig() Config {
	return Config{
		Machine:   memsim.Clovertown(),
		Scale:     1.0,
		WarmIters: 2,
		Threads:   []int{1, 2, 4, 8},
		Formats:   []string{"csr-du", "csr-vi"},
	}
}

// MatrixRuns holds all measurements for one matrix: steady-state
// seconds per SpMV, per format and thread count.
type MatrixRuns struct {
	Name  string
	Rows  int
	Cols  int
	NNZ   int
	WS    int64 // CSR working set (§II-B)
	TTU   float64
	Class string // "S" or "L" by ws

	// Secs[format][threads] is the steady-state seconds per SpMV with
	// close placement. CSRSpread2 is the 2-thread separate-L2 run
	// (simulation mode only; 0 in native mode).
	Secs       map[string]map[int]float64
	CSRSpread2 float64

	// SizeRatio[format] is SizeBytes(format)/SizeBytes(csr).
	SizeRatio map[string]float64

	// Metrics[format][threads] is the observability record of the run,
	// populated only when Config.Metrics is set.
	Metrics map[string]map[int]*RunMetrics

	// SecsSamples[format][threads] holds the individual repeated
	// timings behind Secs when Config.Samples >= 2 (native mode only);
	// Secs then stores their mean.
	SecsSamples map[string]map[int][]float64
}

// Sec returns the measured seconds per SpMV for one cell and whether
// that cell was actually measured. A missing format or thread entry —
// or a zero timing, which a real measurement cannot produce — reports
// ok = false.
func (r *MatrixRuns) Sec(format string, threads int) (secs float64, ok bool) {
	secs, ok = r.Secs[format][threads]
	return secs, ok && !core.IsZero(secs)
}

// SpeedupOK returns serial-CSR time / the given configuration's time,
// with ok = false when either cell was never measured.
func (r *MatrixRuns) SpeedupOK(format string, threads int) (float64, bool) {
	base, ok1 := r.Sec("csr", 1)
	t, ok2 := r.Sec(format, threads)
	if !ok1 || !ok2 {
		return math.NaN(), false
	}
	return base / t, true
}

// Speedup returns serial-CSR time / the given configuration's time.
// A cell that was never measured yields NaN, never a fabricated 0 —
// nil-map lookups used to surface here as zero "speedups" in report
// tables. Printers flag NaN cells as missing; use SpeedupOK to branch.
func (r *MatrixRuns) Speedup(format string, threads int) float64 {
	s, _ := r.SpeedupOK(format, threads)
	return s
}

// RelSpeedupOK returns CSR time / format time at equal thread count,
// with ok = false when either cell was never measured.
func (r *MatrixRuns) RelSpeedupOK(format string, threads int) (float64, bool) {
	base, ok1 := r.Sec("csr", threads)
	t, ok2 := r.Sec(format, threads)
	if !ok1 || !ok2 {
		return math.NaN(), false
	}
	return base / t, true
}

// RelSpeedup returns CSR time / format time at equal thread count
// (the paper's Tables III/IV metric). Unmeasured cells yield NaN, as
// with Speedup.
func (r *MatrixRuns) RelSpeedup(format string, threads int) float64 {
	s, _ := r.RelSpeedupOK(format, threads)
	return s
}

// buildFormat constructs a named format from a COO via the registry.
func buildFormat(name string, c *core.COO) (core.Format, error) {
	return formats.Build(name, c)
}

// Collect generates every suite matrix at cfg.Scale and measures CSR
// plus each requested format at each thread count. Matrices whose
// working set falls below the (scaled) admission threshold are skipped,
// mirroring the paper's ws >= 3MB rejection.
func Collect(cfg Config) ([]*MatrixRuns, error) {
	if cfg.WarmIters <= 0 {
		cfg.WarmIters = 2
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = []int{1, 2, 4, 8}
	}
	minWS := int64(float64(MinWS) * cfg.Scale)
	largeWS := int64(float64(LargeWS) * cfg.Scale)

	var out []*MatrixRuns
	for _, spec := range Suite() {
		c := spec.Gen(cfg.Scale)
		ws := core.WorkingSet(c.Rows(), c.Cols(), c.Len())
		if ws < minWS {
			continue
		}
		r := &MatrixRuns{
			Name: spec.Name, Rows: c.Rows(), Cols: c.Cols(), NNZ: c.Len(),
			WS: ws, TTU: matgen.TTU(c),
			Secs:      map[string]map[int]float64{},
			SizeRatio: map[string]float64{},
		}
		if cfg.Metrics {
			r.Metrics = map[string]map[int]*RunMetrics{}
		}
		if ws >= largeWS {
			r.Class = "L"
		} else {
			r.Class = "S"
		}
		base, err := buildFormat("csr", c)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", spec.Name, err)
		}
		if cfg.Verify {
			if err := core.Verify(base); err != nil {
				return nil, fmt.Errorf("bench: %s/csr: verify: %w", spec.Name, err)
			}
		}
		if err := measureFormat(cfg, r, base, true); err != nil {
			return nil, fmt.Errorf("bench: %s/csr: %w", spec.Name, err)
		}
		for _, name := range cfg.Formats {
			f, err := buildFormat(name, c)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", spec.Name, name, err)
			}
			if cfg.Verify {
				if err := core.Verify(f); err != nil {
					return nil, fmt.Errorf("bench: %s/%s: verify: %w", spec.Name, name, err)
				}
			}
			r.SizeRatio[name] = float64(f.SizeBytes()) / float64(base.SizeBytes())
			if err := measureFormat(cfg, r, f, false); err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", spec.Name, name, err)
			}
		}
		if cfg.Verbose != nil {
			if _, err := fmt.Fprintf(cfg.Verbose, "%-16s class=%s nnz=%-9d ws=%5.1fMB ttu=%8.1f csr1=%.4gs\n",
				r.Name, r.Class, r.NNZ, float64(r.WS)/(1<<20), r.TTU, r.Secs["csr"][1]); err != nil {
				return nil, fmt.Errorf("bench: verbose output: %w", err)
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// measureFormat fills r.Secs[f.Name()] for every thread count, plus the
// spread-placement 2-thread run for CSR in simulation mode. With
// Config.Metrics set it also fills r.Metrics[f.Name()].
func measureFormat(cfg Config, r *MatrixRuns, f core.Format, isCSR bool) error {
	secs := map[int]float64{}
	for _, th := range cfg.Threads {
		var rec *obs.Recorder
		if cfg.Metrics && cfg.Native {
			rec = obs.NewRecorder()
		}
		s, err := measure(cfg, f, th, nil, rec)
		if err != nil {
			return err
		}
		// Repeated sampling (native only): keep every timing so the
		// archive can report a spread, and let the mean stand in for the
		// single measurement everywhere else.
		if cfg.Native && cfg.Samples >= 2 {
			samples := make([]float64, 0, cfg.Samples)
			samples = append(samples, s)
			for n := 1; n < cfg.Samples; n++ {
				si, err := measure(cfg, f, th, nil, nil)
				if err != nil {
					return err
				}
				samples = append(samples, si)
			}
			s, _ = stats.MeanStddev(samples)
			if r.SecsSamples == nil {
				r.SecsSamples = map[string]map[int][]float64{}
			}
			if r.SecsSamples[f.Name()] == nil {
				r.SecsSamples[f.Name()] = map[int][]float64{}
			}
			r.SecsSamples[f.Name()][th] = samples
		}
		secs[th] = s
		if cfg.Metrics {
			if r.Metrics[f.Name()] == nil {
				r.Metrics[f.Name()] = map[int]*RunMetrics{}
			}
			r.Metrics[f.Name()][th] = newRunMetrics(cfg, f, th, s, rec)
		}
	}
	r.Secs[f.Name()] = secs
	if isCSR && !cfg.Native {
		s, err := measure(cfg, f, 2, memsim.SpreadPlacement(2, cfg.Machine.L2SharedBy), nil)
		if err != nil {
			return err
		}
		r.CSRSpread2 = s
	}
	return nil
}

// measure returns steady-state seconds per SpMV. rec, when non-nil, is
// attached to the native executor to capture per-chunk telemetry.
func measure(cfg Config, f core.Format, threads int, placement memsim.Placement, rec *obs.Recorder) (float64, error) {
	if cfg.Native {
		return measureNative(cfg, f, threads, rec)
	}
	// Simulated: subtract the cold iteration so only warm, steady-state
	// iterations count (the paper measures 128 warm iterations).
	traces, err := simtrace.Collect(f, threads)
	if err != nil {
		return 0, err
	}
	if placement == nil {
		placement = memsim.ClosePlacement(len(traces))
	}
	if len(placement) > len(traces) {
		placement = placement[:len(traces)]
	}
	cold, err := memsim.Simulate(cfg.Machine, traces, placement, 1)
	if err != nil {
		return 0, err
	}
	full, err := memsim.Simulate(cfg.Machine, traces, placement, 1+cfg.WarmIters)
	if err != nil {
		return 0, err
	}
	warm := float64(full.Cycles-cold.Cycles) / float64(cfg.WarmIters)
	return warm / cfg.Machine.FreqHz, nil
}

// collectorOrNil converts a possibly-nil *Recorder to a Collector
// without producing the non-nil-interface-around-nil-pointer trap.
func collectorOrNil(r *obs.Recorder) obs.Collector {
	if r == nil {
		return nil
	}
	return r
}

// warmUpIters is the fixed, untimed native warm-up (cache fill, page
// faults, goroutine scheduling settle) that precedes the measured loop
// — the native analogue of the simulator's one cold iteration.
const warmUpIters = 3

// measureNative times RunIters with goroutines on the host. The timed
// loop runs exactly cfg.WarmIters iterations, matching the iteration
// count the simulated path averages over; it used to silently raise
// the count to at least 3, making native and simulated "seconds per
// SpMV" averages incomparable at small WarmIters. rec, when non-nil,
// observes only the measured iterations, not the warm-up.
func measureNative(cfg Config, f core.Format, threads int, rec *obs.Recorder) (float64, error) {
	opts := parallel.ExecOptions{Threads: threads, Partition: cfg.Partition, Steal: cfg.Steal}
	if opts.Partition == "nnz" {
		if _, ok := f.(core.NNZSplitter); !ok {
			opts.Partition = "" // no nnz splitting for this format: row
		}
	}
	e, err := parallel.New(f, opts)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	x := make([]float64, f.Cols())
	y := make([]float64, f.Rows())
	for i := range x {
		x[i] = float64(i%9) - 4
	}
	if err := e.RunIters(warmUpIters, y, x); err != nil {
		return 0, err
	}
	if c := obs.Tee(collectorOrNil(rec), collectorOrNil(cfg.Recorder), cfg.Collector); c != nil {
		e.SetCollector(c)
	}
	start := time.Now()
	if err := e.RunIters(cfg.WarmIters, y, x); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds() / float64(cfg.WarmIters), nil
}
