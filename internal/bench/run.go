package bench

import (
	"fmt"
	"io"
	"time"

	"spmv/internal/core"
	"spmv/internal/formats"
	"spmv/internal/matgen"
	"spmv/internal/memsim"
	"spmv/internal/parallel"
	"spmv/internal/simtrace"
)

// Config controls an experiment run.
type Config struct {
	// Machine is the simulated platform (simulation mode only).
	Machine memsim.Machine
	// Scale multiplies matrix sizes; 1.0 reproduces paper-scale working
	// sets, smaller values speed up tests.
	Scale float64
	// WarmIters is the number of steady-state iterations measured
	// (after one cold iteration, mirroring the paper's warm-cache
	// 128-iteration loop).
	WarmIters int
	// Threads are the thread counts exercised (paper: 1, 2, 4, 8).
	Threads []int
	// Formats selects compressed formats to run beyond CSR. Valid:
	// "csr-du", "csr-vi", "csr-du-vi", "dcsr", "csr-du-rle".
	Formats []string
	// Native switches from simulation to wall-clock goroutine timing.
	Native bool
	// Verify structurally checks every built format (core.Verify) before
	// it is timed, failing the run on corruption.
	Verify bool
	// Verbose, if non-nil, receives progress lines.
	Verbose io.Writer
}

// DefaultConfig returns the paper-reproduction configuration.
func DefaultConfig() Config {
	return Config{
		Machine:   memsim.Clovertown(),
		Scale:     1.0,
		WarmIters: 2,
		Threads:   []int{1, 2, 4, 8},
		Formats:   []string{"csr-du", "csr-vi"},
	}
}

// MatrixRuns holds all measurements for one matrix: steady-state
// seconds per SpMV, per format and thread count.
type MatrixRuns struct {
	Name  string
	Rows  int
	Cols  int
	NNZ   int
	WS    int64 // CSR working set (§II-B)
	TTU   float64
	Class string // "S" or "L" by ws

	// Secs[format][threads] is the steady-state seconds per SpMV with
	// close placement. CSRSpread2 is the 2-thread separate-L2 run
	// (simulation mode only; 0 in native mode).
	Secs       map[string]map[int]float64
	CSRSpread2 float64

	// SizeRatio[format] is SizeBytes(format)/SizeBytes(csr).
	SizeRatio map[string]float64
}

// Speedup returns serial-CSR time / the given configuration's time.
func (r *MatrixRuns) Speedup(format string, threads int) float64 {
	base := r.Secs["csr"][1]
	t := r.Secs[format][threads]
	if core.IsZero(t) {
		return 0
	}
	return base / t
}

// RelSpeedup returns CSR time / format time at equal thread count
// (the paper's Tables III/IV metric).
func (r *MatrixRuns) RelSpeedup(format string, threads int) float64 {
	base := r.Secs["csr"][threads]
	t := r.Secs[format][threads]
	if core.IsZero(t) {
		return 0
	}
	return base / t
}

// buildFormat constructs a named format from a COO via the registry.
func buildFormat(name string, c *core.COO) (core.Format, error) {
	return formats.Build(name, c)
}

// Collect generates every suite matrix at cfg.Scale and measures CSR
// plus each requested format at each thread count. Matrices whose
// working set falls below the (scaled) admission threshold are skipped,
// mirroring the paper's ws >= 3MB rejection.
func Collect(cfg Config) ([]*MatrixRuns, error) {
	if cfg.WarmIters <= 0 {
		cfg.WarmIters = 2
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = []int{1, 2, 4, 8}
	}
	minWS := int64(float64(MinWS) * cfg.Scale)
	largeWS := int64(float64(LargeWS) * cfg.Scale)

	var out []*MatrixRuns
	for _, spec := range Suite() {
		c := spec.Gen(cfg.Scale)
		ws := core.WorkingSet(c.Rows(), c.Cols(), c.Len())
		if ws < minWS {
			continue
		}
		r := &MatrixRuns{
			Name: spec.Name, Rows: c.Rows(), Cols: c.Cols(), NNZ: c.Len(),
			WS: ws, TTU: matgen.TTU(c),
			Secs:      map[string]map[int]float64{},
			SizeRatio: map[string]float64{},
		}
		if ws >= largeWS {
			r.Class = "L"
		} else {
			r.Class = "S"
		}
		base, err := buildFormat("csr", c)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", spec.Name, err)
		}
		if cfg.Verify {
			if err := core.Verify(base); err != nil {
				return nil, fmt.Errorf("bench: %s/csr: verify: %w", spec.Name, err)
			}
		}
		if err := measureFormat(cfg, r, base, true); err != nil {
			return nil, fmt.Errorf("bench: %s/csr: %w", spec.Name, err)
		}
		for _, name := range cfg.Formats {
			f, err := buildFormat(name, c)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", spec.Name, name, err)
			}
			if cfg.Verify {
				if err := core.Verify(f); err != nil {
					return nil, fmt.Errorf("bench: %s/%s: verify: %w", spec.Name, name, err)
				}
			}
			r.SizeRatio[name] = float64(f.SizeBytes()) / float64(base.SizeBytes())
			if err := measureFormat(cfg, r, f, false); err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", spec.Name, name, err)
			}
		}
		if cfg.Verbose != nil {
			if _, err := fmt.Fprintf(cfg.Verbose, "%-16s class=%s nnz=%-9d ws=%5.1fMB ttu=%8.1f csr1=%.4gs\n",
				r.Name, r.Class, r.NNZ, float64(r.WS)/(1<<20), r.TTU, r.Secs["csr"][1]); err != nil {
				return nil, fmt.Errorf("bench: verbose output: %w", err)
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// measureFormat fills r.Secs[f.Name()] for every thread count, plus the
// spread-placement 2-thread run for CSR in simulation mode.
func measureFormat(cfg Config, r *MatrixRuns, f core.Format, isCSR bool) error {
	secs := map[int]float64{}
	for _, th := range cfg.Threads {
		s, err := measure(cfg, f, th, nil)
		if err != nil {
			return err
		}
		secs[th] = s
	}
	r.Secs[f.Name()] = secs
	if isCSR && !cfg.Native {
		s, err := measure(cfg, f, 2, memsim.SpreadPlacement(2, cfg.Machine.L2SharedBy))
		if err != nil {
			return err
		}
		r.CSRSpread2 = s
	}
	return nil
}

// measure returns steady-state seconds per SpMV.
func measure(cfg Config, f core.Format, threads int, placement memsim.Placement) (float64, error) {
	if cfg.Native {
		return measureNative(cfg, f, threads)
	}
	// Simulated: subtract the cold iteration so only warm, steady-state
	// iterations count (the paper measures 128 warm iterations).
	traces, err := simtrace.Collect(f, threads)
	if err != nil {
		return 0, err
	}
	if placement == nil {
		placement = memsim.ClosePlacement(len(traces))
	}
	if len(placement) > len(traces) {
		placement = placement[:len(traces)]
	}
	cold, err := memsim.Simulate(cfg.Machine, traces, placement, 1)
	if err != nil {
		return 0, err
	}
	full, err := memsim.Simulate(cfg.Machine, traces, placement, 1+cfg.WarmIters)
	if err != nil {
		return 0, err
	}
	warm := float64(full.Cycles-cold.Cycles) / float64(cfg.WarmIters)
	return warm / cfg.Machine.FreqHz, nil
}

// measureNative times RunIters with goroutines on the host.
func measureNative(cfg Config, f core.Format, threads int) (float64, error) {
	e, err := parallel.NewExecutor(f, threads)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	x := make([]float64, f.Cols())
	y := make([]float64, f.Rows())
	for i := range x {
		x[i] = float64(i%9) - 4
	}
	if err := e.RunIters(3, y, x); err != nil { // warm caches, page in
		return 0, err
	}
	iters := cfg.WarmIters
	if iters < 3 {
		iters = 3
	}
	start := time.Now()
	if err := e.RunIters(iters, y, x); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds() / float64(iters), nil
}
