package bench

import (
	"bytes"
	"strings"
	"testing"

	"spmv/internal/memsim"
)

// testConfig returns a heavily scaled-down configuration so the full
// pipeline runs in seconds. Shape assertions at paper scale live in
// cmd/spmvsim runs and EXPERIMENTS.md; these tests exercise the
// harness machinery.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.01
	cfg.WarmIters = 1
	cfg.Threads = []int{1, 2, 4}
	cfg.Formats = []string{"csr-du", "csr-vi"}
	return cfg
}

func TestSuiteSpecsGenerate(t *testing.T) {
	for _, spec := range Suite() {
		c := spec.Gen(0.005)
		if c.Len() == 0 {
			t.Errorf("%s: empty matrix", spec.Name)
		}
		if !c.Finalized() {
			t.Errorf("%s: not finalized", spec.Name)
		}
	}
}

func TestSuiteClassesAtScale1(t *testing.T) {
	// At scale 1 the suite must populate both classes per its design,
	// and every matrix must clear the 3MB admission threshold.
	var nS, nL, nVI int
	for _, spec := range Suite() {
		c := spec.Gen(1.0)
		ws := int64(c.Len())*12 + int64(c.Rows()+1)*4 + int64(c.Rows()+c.Cols())*8
		if ws < MinWS {
			t.Errorf("%s: ws %.1fMB below admission threshold", spec.Name, float64(ws)/(1<<20))
		}
		got := Classify(ws)
		if got != spec.WantClass {
			t.Errorf("%s: class %s at scale 1, spec says %s (ws %.1fMB)",
				spec.Name, got, spec.WantClass, float64(ws)/(1<<20))
		}
		if got == "S" {
			nS++
		} else {
			nL++
		}
	}
	if nS < 5 || nL < 5 {
		t.Errorf("unbalanced suite: %d S, %d L", nS, nL)
	}
	_ = nVI
}

func TestSuiteHasVIEligibleMatrices(t *testing.T) {
	// Enough matrices with ttu > 5 to make Table IV meaningful (the
	// paper had 30 of 77 ≈ 39%).
	runs := collectForTest(t)
	n := 0
	for _, r := range runs {
		if r.TTU > 5 {
			n++
		}
	}
	if n < 5 {
		t.Errorf("only %d ttu>5 matrices in scaled suite", n)
	}
}

var cachedRuns []*MatrixRuns

func collectForTest(t *testing.T) []*MatrixRuns {
	t.Helper()
	if cachedRuns != nil {
		return cachedRuns
	}
	runs, err := Collect(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("no runs collected")
	}
	cachedRuns = runs
	return runs
}

func TestCollectPopulatesAllCells(t *testing.T) {
	runs := collectForTest(t)
	cfg := testConfig()
	for _, r := range runs {
		for _, f := range append([]string{"csr"}, cfg.Formats...) {
			for _, th := range cfg.Threads {
				if r.Secs[f][th] <= 0 {
					t.Errorf("%s/%s/%d: no timing", r.Name, f, th)
				}
			}
		}
		if r.CSRSpread2 <= 0 {
			t.Errorf("%s: no spread-placement run", r.Name)
		}
		for _, f := range cfg.Formats {
			if r.SizeRatio[f] <= 0 {
				t.Errorf("%s/%s: no size ratio", r.Name, f)
			}
		}
	}
}

func TestTable2Build(t *testing.T) {
	runs := collectForTest(t)
	cfg := testConfig()
	tab := BuildTable2(runs, cfg.Threads)
	if tab.NS+tab.NL != len(runs) {
		t.Errorf("class counts %d+%d != %d", tab.NS, tab.NL, len(runs))
	}
	if tab.Serial0 <= 0 {
		t.Error("no serial MFLOPS")
	}
	// Rows: 2(1xL2), 2(2xL2), 4 for threads {1,2,4}.
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Table II", "2 (1xL2)", "2 (2xL2)", "MFLOPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("printout missing %q:\n%s", want, out)
		}
	}
}

func TestRelTableBuild(t *testing.T) {
	runs := collectForTest(t)
	cfg := testConfig()
	t3 := BuildRelTable(runs, "csr-du", cfg.Threads, 0)
	if t3.NS+t3.NL != len(runs) {
		t.Errorf("Table III covers %d+%d of %d", t3.NS, t3.NL, len(runs))
	}
	if len(t3.Rows) != len(cfg.Threads) {
		t.Errorf("rows = %d", len(t3.Rows))
	}
	t4 := BuildRelTable(runs, "csr-vi", cfg.Threads, 5)
	if t4.NS+t4.NL >= len(runs) {
		t.Errorf("Table IV did not filter by ttu: %d+%d", t4.NS, t4.NL)
	}
	for _, row := range t4.Rows {
		if row.AllAvg <= 0 {
			t.Errorf("Table IV empty row for %d threads", row.Threads)
		}
	}
	var buf bytes.Buffer
	t4.Print(&buf, "Table IV")
	if !strings.Contains(buf.String(), "<0.98") {
		t.Error("printout missing slowdown column")
	}
}

func TestFigBuildSortedAndComplete(t *testing.T) {
	runs := collectForTest(t)
	cfg := testConfig()
	entries := BuildFig(runs, "csr-du", cfg.Threads, 0)
	if len(entries) != len(runs) {
		t.Fatalf("fig entries = %d, want %d", len(entries), len(runs))
	}
	maxTh := cfg.Threads[len(cfg.Threads)-1]
	for i := 1; i < len(entries); i++ {
		if entries[i].Fmt[maxTh] < entries[i-1].Fmt[maxTh] {
			t.Error("entries not sorted by speedup")
		}
	}
	var buf bytes.Buffer
	PrintFig(&buf, "Fig 7", entries, cfg.Threads)
	if !strings.Contains(buf.String(), "-- 2 threads --") {
		t.Error("fig printout missing thread block")
	}
}

func TestCollectNativeMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig()
	cfg.Native = true
	cfg.Threads = []int{1, 2}
	cfg.Formats = []string{"csr-du"}
	runs, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Secs["csr"][1] <= 0 || r.Secs["csr-du"][2] <= 0 {
			t.Errorf("%s: missing native timing", r.Name)
		}
	}
}

func TestBuildFormatUnknown(t *testing.T) {
	if _, err := buildFormat("nope", nil); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRelSpeedupZeroSafe(t *testing.T) {
	r := &MatrixRuns{Secs: map[string]map[int]float64{"csr": {1: 1}}}
	if r.RelSpeedup("missing", 1) != 0 {
		t.Error("missing format should yield 0")
	}
	if r.Speedup("missing", 8) != 0 {
		t.Error("missing speedup should yield 0")
	}
}

func TestBandwidthSweepShape(t *testing.T) {
	cfg := testConfig()
	points, err := BandwidthSweep(cfg, "banded-l-q128", 4, []float64{0.5, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Bus GB/s decreases as the factor grows.
	if points[0].BusGBs <= points[2].BusGBs {
		t.Errorf("bus bandwidth not decreasing: %v", points)
	}
	// The compression win must not shrink when bandwidth tightens:
	// the last point (slowest bus) should show at least the first
	// point's relative speedup for csr-vi.
	first := points[0].RelSpeed["csr-vi"]
	last := points[len(points)-1].RelSpeed["csr-vi"]
	if last < first*0.95 {
		t.Errorf("csr-vi gain fell from %.2f to %.2f as bandwidth tightened", first, last)
	}
}

func TestBandwidthSweepUnknownMatrix(t *testing.T) {
	if _, err := BandwidthSweep(testConfig(), "nope", 2, []float64{1}); err == nil {
		t.Error("unknown matrix accepted")
	}
}

func TestFrequencyStudyShape(t *testing.T) {
	cfg := testConfig()
	points, err := FrequencyStudy(cfg, "banded-l", []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// §VI-D: a faster core makes compression relatively more valuable
	// serially (memory cycles dominate), so the 4GHz speedup must be at
	// least the 1GHz one.
	for _, f := range cfg.Formats {
		if points[1].RelSpeed[f] < points[0].RelSpeed[f]-0.02 {
			t.Errorf("%s: serial speedup fell with frequency: %.3f -> %.3f",
				f, points[0].RelSpeed[f], points[1].RelSpeed[f])
		}
	}
}

func TestMachineStudyShape(t *testing.T) {
	cfg := testConfig()
	points, err := MachineStudy(cfg, "banded-l", []memsim.Machine{memsim.Clovertown(), memsim.Opteron8()}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.CSRSpeedup[1] != 1 {
			t.Errorf("%s: serial speedup = %v, want 1", p.Name, p.CSRSpeedup[1])
		}
		if p.CSRSpeedup[4] <= 0 {
			t.Errorf("%s: missing 4-thread speedup", p.Name)
		}
		for _, f := range cfg.Formats {
			if p.RelSpeed[f][4] <= 0 {
				t.Errorf("%s/%s: missing rel speedup", p.Name, f)
			}
		}
	}
}
