package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"spmv/internal/memsim"
	"spmv/internal/obs"
)

// testConfig returns a heavily scaled-down configuration so the full
// pipeline runs in seconds. Shape assertions at paper scale live in
// cmd/spmvsim runs and EXPERIMENTS.md; these tests exercise the
// harness machinery.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.01
	cfg.WarmIters = 1
	cfg.Threads = []int{1, 2, 4}
	cfg.Formats = []string{"csr-du", "csr-vi"}
	return cfg
}

func TestSuiteSpecsGenerate(t *testing.T) {
	for _, spec := range Suite() {
		c := spec.Gen(0.005)
		if c.Len() == 0 {
			t.Errorf("%s: empty matrix", spec.Name)
		}
		if !c.Finalized() {
			t.Errorf("%s: not finalized", spec.Name)
		}
	}
}

func TestSuiteClassesAtScale1(t *testing.T) {
	// At scale 1 the suite must populate both classes per its design,
	// and every matrix must clear the 3MB admission threshold.
	var nS, nL, nVI int
	for _, spec := range Suite() {
		c := spec.Gen(1.0)
		ws := int64(c.Len())*12 + int64(c.Rows()+1)*4 + int64(c.Rows()+c.Cols())*8
		if ws < MinWS {
			t.Errorf("%s: ws %.1fMB below admission threshold", spec.Name, float64(ws)/(1<<20))
		}
		got := Classify(ws)
		if got != spec.WantClass {
			t.Errorf("%s: class %s at scale 1, spec says %s (ws %.1fMB)",
				spec.Name, got, spec.WantClass, float64(ws)/(1<<20))
		}
		if got == "S" {
			nS++
		} else {
			nL++
		}
	}
	if nS < 5 || nL < 5 {
		t.Errorf("unbalanced suite: %d S, %d L", nS, nL)
	}
	_ = nVI
}

func TestSuiteHasVIEligibleMatrices(t *testing.T) {
	// Enough matrices with ttu > 5 to make Table IV meaningful (the
	// paper had 30 of 77 ≈ 39%).
	runs := collectForTest(t)
	n := 0
	for _, r := range runs {
		if r.TTU > 5 {
			n++
		}
	}
	if n < 5 {
		t.Errorf("only %d ttu>5 matrices in scaled suite", n)
	}
}

var cachedRuns []*MatrixRuns

func collectForTest(t *testing.T) []*MatrixRuns {
	t.Helper()
	if cachedRuns != nil {
		return cachedRuns
	}
	runs, err := Collect(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("no runs collected")
	}
	cachedRuns = runs
	return runs
}

func TestCollectPopulatesAllCells(t *testing.T) {
	runs := collectForTest(t)
	cfg := testConfig()
	for _, r := range runs {
		for _, f := range append([]string{"csr"}, cfg.Formats...) {
			for _, th := range cfg.Threads {
				if r.Secs[f][th] <= 0 {
					t.Errorf("%s/%s/%d: no timing", r.Name, f, th)
				}
			}
		}
		if r.CSRSpread2 <= 0 {
			t.Errorf("%s: no spread-placement run", r.Name)
		}
		for _, f := range cfg.Formats {
			if r.SizeRatio[f] <= 0 {
				t.Errorf("%s/%s: no size ratio", r.Name, f)
			}
		}
	}
}

func TestTable2Build(t *testing.T) {
	runs := collectForTest(t)
	cfg := testConfig()
	tab := BuildTable2(runs, cfg.Threads)
	if tab.NS+tab.NL != len(runs) {
		t.Errorf("class counts %d+%d != %d", tab.NS, tab.NL, len(runs))
	}
	if tab.Serial0 <= 0 {
		t.Error("no serial MFLOPS")
	}
	// Rows: 2(1xL2), 2(2xL2), 4 for threads {1,2,4}.
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Table II", "2 (1xL2)", "2 (2xL2)", "MFLOPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("printout missing %q:\n%s", want, out)
		}
	}
}

func TestRelTableBuild(t *testing.T) {
	runs := collectForTest(t)
	cfg := testConfig()
	t3 := BuildRelTable(runs, "csr-du", cfg.Threads, 0)
	if t3.NS+t3.NL != len(runs) {
		t.Errorf("Table III covers %d+%d of %d", t3.NS, t3.NL, len(runs))
	}
	if len(t3.Rows) != len(cfg.Threads) {
		t.Errorf("rows = %d", len(t3.Rows))
	}
	t4 := BuildRelTable(runs, "csr-vi", cfg.Threads, 5)
	if t4.NS+t4.NL >= len(runs) {
		t.Errorf("Table IV did not filter by ttu: %d+%d", t4.NS, t4.NL)
	}
	for _, row := range t4.Rows {
		if row.AllAvg <= 0 {
			t.Errorf("Table IV empty row for %d threads", row.Threads)
		}
	}
	var buf bytes.Buffer
	t4.Print(&buf, "Table IV")
	if !strings.Contains(buf.String(), "<0.98") {
		t.Error("printout missing slowdown column")
	}
}

func TestFigBuildSortedAndComplete(t *testing.T) {
	runs := collectForTest(t)
	cfg := testConfig()
	entries := BuildFig(runs, "csr-du", cfg.Threads, 0)
	if len(entries) != len(runs) {
		t.Fatalf("fig entries = %d, want %d", len(entries), len(runs))
	}
	maxTh := cfg.Threads[len(cfg.Threads)-1]
	for i := 1; i < len(entries); i++ {
		if entries[i].Fmt[maxTh] < entries[i-1].Fmt[maxTh] {
			t.Error("entries not sorted by speedup")
		}
	}
	var buf bytes.Buffer
	PrintFig(&buf, "Fig 7", entries, cfg.Threads)
	if !strings.Contains(buf.String(), "-- 2 threads --") {
		t.Error("fig printout missing thread block")
	}
}

func TestCollectNativeMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig()
	cfg.Native = true
	cfg.Threads = []int{1, 2}
	cfg.Formats = []string{"csr-du"}
	runs, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Secs["csr"][1] <= 0 || r.Secs["csr-du"][2] <= 0 {
			t.Errorf("%s: missing native timing", r.Name)
		}
	}
}

func TestBuildFormatUnknown(t *testing.T) {
	if _, err := buildFormat("nope", nil); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestSpeedupMissingCellNaN is the regression test for the silent-zero
// bug: Speedup/RelSpeedup on a format or thread count that was never
// measured used to return 0 (a nil map lookup), which downstream
// IsZero checks quietly dropped — indistinguishable from "measured and
// infinitely slow". Missing cells must now be explicit: NaN from the
// plain accessors, ok=false from the OK variants.
func TestSpeedupMissingCellNaN(t *testing.T) {
	r := &MatrixRuns{Secs: map[string]map[int]float64{
		"csr":    {1: 1.0, 8: 0.25},
		"csr-du": {8: 0.2},
	}}
	for _, tc := range []struct {
		name string
		v    float64
		ok   bool
	}{
		{"missing format", r.Speedup("missing", 8), false},
		{"missing threads", r.Speedup("csr-du", 4), false},
		{"rel missing format", r.RelSpeedup("missing", 8), false},
		{"rel missing baseline", func() float64 {
			r2 := &MatrixRuns{Secs: map[string]map[int]float64{"csr-du": {8: 0.2}}}
			return r2.RelSpeedup("csr-du", 8)
		}(), false},
	} {
		if !math.IsNaN(tc.v) {
			t.Errorf("%s: got %v, want NaN", tc.name, tc.v)
		}
	}
	if _, ok := r.SpeedupOK("missing", 8); ok {
		t.Error("SpeedupOK reports ok for a missing format")
	}
	if _, ok := r.RelSpeedupOK("csr-du", 4); ok {
		t.Error("RelSpeedupOK reports ok for a missing thread count")
	}
	// Present cells still compute normally.
	if sp, ok := r.SpeedupOK("csr-du", 8); !ok || sp != 5 {
		t.Errorf("Speedup(csr-du,8) = %v,%v, want 5,true", sp, ok)
	}
	if sp, ok := r.RelSpeedupOK("csr-du", 8); !ok || sp != 1.25 {
		t.Errorf("RelSpeedup(csr-du,8) = %v,%v, want 1.25,true", sp, ok)
	}
}

// TestTablesSkipMissingCells pins that the aggregate tables treat NaN
// cells as "unmeasured" — counted in Missing, excluded from stats —
// rather than polluting averages.
func TestTablesSkipMissingCells(t *testing.T) {
	runs := []*MatrixRuns{
		{Name: "a", Class: "S", Secs: map[string]map[int]float64{
			"csr": {1: 1.0, 2: 0.5}, "csr-du": {1: 0.8, 2: 0.4},
		}},
		{Name: "b", Class: "L", Secs: map[string]map[int]float64{
			"csr": {1: 1.0, 2: 0.5}, // csr-du never measured
		}},
	}
	tb := BuildRelTable(runs, "csr-du", []int{1, 2}, 0)
	for _, row := range tb.Rows {
		if row.Missing != 1 {
			t.Errorf("threads=%d: Missing = %d, want 1", row.Threads, row.Missing)
		}
		if math.IsNaN(row.AllAvg) {
			t.Errorf("threads=%d: NaN leaked into AllAvg", row.Threads)
		}
	}
	var buf bytes.Buffer
	if err := tb.Print(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[1 unmeasured]") {
		t.Errorf("printer does not flag missing cells:\n%s", buf.String())
	}
}

func TestBandwidthSweepShape(t *testing.T) {
	cfg := testConfig()
	points, err := BandwidthSweep(cfg, "banded-l-q128", 4, []float64{0.5, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Bus GB/s decreases as the factor grows.
	if points[0].BusGBs <= points[2].BusGBs {
		t.Errorf("bus bandwidth not decreasing: %v", points)
	}
	// The compression win must not shrink when bandwidth tightens:
	// the last point (slowest bus) should show at least the first
	// point's relative speedup for csr-vi.
	first := points[0].RelSpeed["csr-vi"]
	last := points[len(points)-1].RelSpeed["csr-vi"]
	if last < first*0.95 {
		t.Errorf("csr-vi gain fell from %.2f to %.2f as bandwidth tightened", first, last)
	}
}

func TestBandwidthSweepUnknownMatrix(t *testing.T) {
	if _, err := BandwidthSweep(testConfig(), "nope", 2, []float64{1}); err == nil {
		t.Error("unknown matrix accepted")
	}
}

func TestFrequencyStudyShape(t *testing.T) {
	cfg := testConfig()
	points, err := FrequencyStudy(cfg, "banded-l", []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// §VI-D: a faster core makes compression relatively more valuable
	// serially (memory cycles dominate), so the 4GHz speedup must be at
	// least the 1GHz one.
	for _, f := range cfg.Formats {
		if points[1].RelSpeed[f] < points[0].RelSpeed[f]-0.02 {
			t.Errorf("%s: serial speedup fell with frequency: %.3f -> %.3f",
				f, points[0].RelSpeed[f], points[1].RelSpeed[f])
		}
	}
}

func TestMachineStudyShape(t *testing.T) {
	cfg := testConfig()
	points, err := MachineStudy(cfg, "banded-l", []memsim.Machine{memsim.Clovertown(), memsim.Opteron8()}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.CSRSpeedup[1] != 1 {
			t.Errorf("%s: serial speedup = %v, want 1", p.Name, p.CSRSpeedup[1])
		}
		if p.CSRSpeedup[4] <= 0 {
			t.Errorf("%s: missing 4-thread speedup", p.Name)
		}
		for _, f := range cfg.Formats {
			if p.RelSpeed[f][4] <= 0 {
				t.Errorf("%s/%s: missing rel speedup", p.Name, f)
			}
		}
	}
}

// TestMeasureNativeHonorsIters is the regression test for the
// iteration-count bug: measureNative used to silently bump the measured
// loop to at least 3 iterations, so Config.WarmIters=1 measured three.
// The attached recorder sees exactly the measured iterations (warm-up
// runs before the collector is attached), so it must report precisely
// cfg.WarmIters runs.
func TestMeasureNativeHonorsIters(t *testing.T) {
	cfg := testConfig()
	cfg.Native = true
	cfg.WarmIters = 1
	c := Suite()[0].Gen(cfg.Scale)
	f, err := buildFormat("csr", c)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	if _, err := measureNative(cfg, f, 2, rec); err != nil {
		t.Fatal(err)
	}
	if got := rec.Runs(); got != cfg.WarmIters {
		t.Errorf("measured %d iterations, want exactly WarmIters=%d", got, cfg.WarmIters)
	}
}

// TestMetricsReportNative runs the native pipeline with metrics
// collection and checks the emitted JSON document end to end:
// bandwidth figures, per-chunk telemetry, and imbalance fields.
func TestMetricsReportNative(t *testing.T) {
	cfg := testConfig()
	cfg.Native = true
	cfg.Metrics = true
	cfg.Threads = []int{1, 2}
	runs, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("no matrices admitted")
	}
	rep := BuildMetricsReport(cfg, runs)
	if rep.Mode != "native" {
		t.Errorf("mode = %q", rep.Mode)
	}
	if len(rep.Matrices) != len(runs) {
		t.Fatalf("matrices = %d, want %d", len(rep.Matrices), len(runs))
	}
	for _, mm := range rep.Matrices {
		if len(mm.Formats) != 1+len(cfg.Formats) {
			t.Fatalf("%s: formats = %d, want %d", mm.Name, len(mm.Formats), 1+len(cfg.Formats))
		}
		for _, fm := range mm.Formats {
			if fm.SizeRatio <= 0 {
				t.Errorf("%s/%s: size ratio %v", mm.Name, fm.Format, fm.SizeRatio)
			}
			if len(fm.Runs) != len(cfg.Threads) {
				t.Fatalf("%s/%s: runs = %d, want %d", mm.Name, fm.Format, len(fm.Runs), len(cfg.Threads))
			}
			for _, rm := range fm.Runs {
				if rm.SecsPerIter <= 0 || rm.GBps <= 0 || rm.BytesPerIter <= 0 {
					t.Errorf("%s/%s t=%d: secs=%v gbps=%v bytes=%d",
						mm.Name, fm.Format, rm.Threads, rm.SecsPerIter, rm.GBps, rm.BytesPerIter)
				}
				if rm.Iters != cfg.WarmIters {
					t.Errorf("%s/%s t=%d: iters = %d, want %d", mm.Name, fm.Format, rm.Threads, rm.Iters, cfg.WarmIters)
				}
				if rm.Workers <= 0 || len(rm.Chunks) != rm.Workers {
					t.Errorf("%s/%s t=%d: workers=%d chunks=%d", mm.Name, fm.Format, rm.Threads, rm.Workers, len(rm.Chunks))
				}
				if rm.TimeImbalance < 1 || rm.NNZImbalance < 1 {
					t.Errorf("%s/%s t=%d: imbalance %v/%v below 1", mm.Name, fm.Format, rm.Threads, rm.TimeImbalance, rm.NNZImbalance)
				}
				nnz := 0
				for _, cst := range rm.Chunks {
					nnz += cst.NNZ
				}
				if nnz != mm.NNZ {
					t.Errorf("%s/%s t=%d: chunk nnz %d != matrix nnz %d", mm.Name, fm.Format, rm.Threads, nnz, mm.NNZ)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back MetricsReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not round-trip: %v", err)
	}
	if len(back.Matrices) != len(rep.Matrices) {
		t.Errorf("round-trip lost matrices: %d != %d", len(back.Matrices), len(rep.Matrices))
	}
}

// TestMetricsSimMode pins that simulation-mode metrics still fill the
// timing-derived fields while omitting native-only telemetry.
func TestMetricsSimMode(t *testing.T) {
	cfg := testConfig()
	cfg.Metrics = true
	cfg.Threads = []int{1}
	runs, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildMetricsReport(cfg, runs)
	if rep.Mode != "sim" {
		t.Errorf("mode = %q", rep.Mode)
	}
	for _, mm := range rep.Matrices {
		for _, fm := range mm.Formats {
			for _, rm := range fm.Runs {
				if rm.GBps <= 0 {
					t.Errorf("%s/%s: sim gbps %v", mm.Name, fm.Format, rm.GBps)
				}
				if rm.Workers != 0 || rm.Chunks != nil {
					t.Errorf("%s/%s: native-only fields set in sim mode", mm.Name, fm.Format)
				}
			}
		}
	}
}

func TestRHSSweepShape(t *testing.T) {
	cfg := testConfig()
	cfg.Native = true
	points, err := RHSSweep(cfg, "banded-l-q128", 2, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	// csr + 2 cfg formats, 3 widths each, in order.
	if len(points) != 9 {
		t.Fatalf("points = %d, want 9", len(points))
	}
	byFmt := map[string]map[int]RHSPoint{}
	for _, p := range points {
		if byFmt[p.Format] == nil {
			byFmt[p.Format] = map[int]RHSPoint{}
		}
		byFmt[p.Format][p.K] = p
		if p.SecsPerSpMM <= 0 || p.SecsPerVector <= 0 || p.BytesPerVector <= 0 {
			t.Errorf("%s k=%d: non-positive measurement %+v", p.Format, p.K, p)
		}
	}
	for _, name := range []string{"csr", "csr-du", "csr-vi"} {
		cells := byFmt[name]
		if len(cells) != 3 {
			t.Fatalf("%s: %d cells, want 3", name, len(cells))
		}
		// The modeled traffic must amortize: one matrix stream over k
		// vectors. Timing at test scale is too noisy to assert on.
		if !(cells[8].BytesPerVector < cells[4].BytesPerVector &&
			cells[4].BytesPerVector < cells[1].BytesPerVector) {
			t.Errorf("%s: bytes/vector not falling with k: %v %v %v", name,
				cells[1].BytesPerVector, cells[4].BytesPerVector, cells[8].BytesPerVector)
		}
	}

	var buf strings.Builder
	if err := PrintRHS(&buf, points, "banded-l-q128", 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"csr-du", "bytes/vector", "k"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintRHS output missing %q:\n%s", want, out)
		}
	}
}

func TestRHSSweepErrors(t *testing.T) {
	cfg := testConfig()
	cfg.Native = true
	if _, err := RHSSweep(cfg, "nope", 2, []int{1}); err == nil {
		t.Error("unknown matrix accepted")
	}
	if _, err := RHSSweep(cfg, "banded-l-q128", 2, []int{0}); err == nil {
		t.Error("k=0 accepted")
	}
}
