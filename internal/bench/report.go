package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"spmv/internal/core"
	"spmv/internal/stats"
)

// Table2 reproduces the paper's Table II: overall CSR SpMV performance,
// serial in MFLOPS and multithreaded as speedup over serial CSR, split
// by matrix class.
type Table2 struct {
	NS, NL           int
	SerialS, SerialL stats.Summary // MFLOPS
	Serial0          float64       // M_0 average MFLOPS
	Rows             []Table2Row
}

// Table2Row is one thread configuration of Table II.
type Table2Row struct {
	Label  string
	S, L   stats.Summary // speedups vs serial CSR
	AllAvg float64
	// Missing counts matrices whose cell was never measured (NaN
	// speedup); the printer flags rows where it is non-zero instead of
	// silently averaging over a smaller set.
	Missing int
}

// BuildTable2 derives Table II from collected runs.
func BuildTable2(runs []*MatrixRuns, threads []int) Table2 {
	var t Table2
	var mfS, mfL, mfAll []float64
	for _, r := range runs {
		mf := stats.MFLOPS(r.NNZ, r.Secs["csr"][1])
		mfAll = append(mfAll, mf)
		if r.Class == "S" {
			t.NS++
			mfS = append(mfS, mf)
		} else {
			t.NL++
			mfL = append(mfL, mf)
		}
	}
	t.SerialS = stats.Summarize(mfS)
	t.SerialL = stats.Summarize(mfL)
	t.Serial0 = stats.Summarize(mfAll).Avg

	addRow := func(label string, get func(*MatrixRuns) float64) {
		var sS, sL, sAll []float64
		missing := 0
		for _, r := range runs {
			sp := get(r)
			if math.IsNaN(sp) {
				missing++
				continue
			}
			sAll = append(sAll, sp)
			if r.Class == "S" {
				sS = append(sS, sp)
			} else {
				sL = append(sL, sp)
			}
		}
		t.Rows = append(t.Rows, Table2Row{
			Label: label, S: stats.Summarize(sS), L: stats.Summarize(sL),
			AllAvg: stats.Summarize(sAll).Avg, Missing: missing,
		})
	}
	for _, th := range threads {
		if th == 1 {
			continue
		}
		th := th
		if th == 2 {
			addRow("2 (1xL2)", func(r *MatrixRuns) float64 { return r.Speedup("csr", 2) })
			addRow("2 (2xL2)", func(r *MatrixRuns) float64 {
				base, ok := r.Sec("csr", 1)
				if !ok || core.IsZero(r.CSRSpread2) {
					return math.NaN()
				}
				return base / r.CSRSpread2
			})
			continue
		}
		addRow(fmt.Sprintf("%d", th), func(r *MatrixRuns) float64 { return r.Speedup("csr", th) })
	}
	return t
}

// Print writes the table in the paper's layout, returning the first
// write error.
func (t Table2) Print(w io.Writer) error {
	p := &printer{w: w}
	p.f("Table II: overall CSR SpMxV performance (M_S: %d matrices, M_L: %d matrices)\n", t.NS, t.NL)
	p.f("%-10s | %8s %8s %8s | %8s %8s %8s | %8s\n",
		"core(s)", "S.avg", "S.max", "S.min", "L.avg", "L.max", "L.min", "M0.avg")
	p.f("%-10s | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f | %8.1f   (MFLOPS)\n",
		"1", t.SerialS.Avg, t.SerialS.Max, t.SerialS.Min,
		t.SerialL.Avg, t.SerialL.Max, t.SerialL.Min, t.Serial0)
	for _, row := range t.Rows {
		p.f("%-10s | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | %8.2f%s\n",
			row.Label, row.S.Avg, row.S.Max, row.S.Min,
			row.L.Avg, row.L.Max, row.L.Min, row.AllAvg, missingNote(row.Missing))
	}
	return p.err
}

// missingNote renders the unmeasured-cell marker appended to aggregate
// rows; empty when every cell was measured.
func missingNote(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf("   [%d unmeasured]", n)
}

// RelTable reproduces Tables III/IV: a compressed format's speedup over
// CSR at equal thread count, by class, with the paper's "< 0.98"
// slowdown counters.
type RelTable struct {
	Format string
	NS, NL int
	Rows   []RelRow
}

// RelRow is one thread count of a RelTable.
type RelRow struct {
	Threads      int
	S, L         stats.Summary
	SlowS, SlowL int
	AllAvg       float64
	// Missing counts matrices with no measured cell at this thread
	// count (see Table2Row.Missing).
	Missing int
}

// BuildRelTable derives Table III (minTTU = 0, all matrices) or
// Table IV (minTTU = 5, the ttu-filtered M_0^vi set) for a format.
func BuildRelTable(runs []*MatrixRuns, format string, threads []int, minTTU float64) RelTable {
	t := RelTable{Format: format}
	sel := selectRuns(runs, minTTU)
	for _, r := range sel {
		if r.Class == "S" {
			t.NS++
		} else {
			t.NL++
		}
	}
	for _, th := range threads {
		var sS, sL, sAll []float64
		missing := 0
		for _, r := range sel {
			sp, ok := r.RelSpeedupOK(format, th)
			if !ok {
				missing++
				continue
			}
			sAll = append(sAll, sp)
			if r.Class == "S" {
				sS = append(sS, sp)
			} else {
				sL = append(sL, sp)
			}
		}
		t.Rows = append(t.Rows, RelRow{
			Threads: th,
			S:       stats.Summarize(sS), L: stats.Summarize(sL),
			SlowS:  stats.CountBelow(sS, stats.SlowdownThreshold),
			SlowL:  stats.CountBelow(sL, stats.SlowdownThreshold),
			AllAvg: stats.Summarize(sAll).Avg, Missing: missing,
		})
	}
	return t
}

func selectRuns(runs []*MatrixRuns, minTTU float64) []*MatrixRuns {
	if minTTU <= 0 {
		return runs
	}
	var sel []*MatrixRuns
	for _, r := range runs {
		if r.TTU > minTTU {
			sel = append(sel, r)
		}
	}
	return sel
}

// Print writes the table in the paper's layout, returning the first
// write error.
func (t RelTable) Print(w io.Writer, title string) error {
	p := &printer{w: w}
	p.f("%s: %s vs CSR at equal thread count (M_S: %d, M_L: %d)\n",
		title, t.Format, t.NS, t.NL)
	p.f("%-8s | %6s %6s %6s %6s | %6s %6s %6s %6s | %6s\n",
		"core(s)", "S.avg", "S.max", "S.min", "<0.98", "L.avg", "L.max", "L.min", "<0.98", "M0.avg")
	for _, row := range t.Rows {
		p.f("%-8d | %6.2f %6.2f %6.2f %6d | %6.2f %6.2f %6.2f %6d | %6.2f%s\n",
			row.Threads, row.S.Avg, row.S.Max, row.S.Min, row.SlowS,
			row.L.Avg, row.L.Max, row.L.Min, row.SlowL, row.AllAvg, missingNote(row.Missing))
	}
	return p.err
}

// FigEntry is one matrix of Fig 7/8: the compressed format's speedup
// over *serial* CSR per thread count (the bars), the CSR multithreaded
// speedup (the black squares), and the size reduction (the text labels).
type FigEntry struct {
	Name          string
	Class         string
	SizeReduction float64 // 1 - size(format)/size(csr), as a percentage
	Fmt           map[int]float64
	CSR           map[int]float64
}

// BuildFig derives the Fig 7 (format "csr-du", minTTU 0) or Fig 8
// (format "csr-vi", minTTU 5) per-matrix series, sorted by the
// format's highest-thread speedup as in the paper's plots.
func BuildFig(runs []*MatrixRuns, format string, threads []int, minTTU float64) []FigEntry {
	sel := selectRuns(runs, minTTU)
	entries := make([]FigEntry, 0, len(sel))
	maxTh := threads[len(threads)-1]
	for _, r := range sel {
		e := FigEntry{
			Name: r.Name, Class: r.Class,
			SizeReduction: 100 * (1 - r.SizeRatio[format]),
			Fmt:           map[int]float64{},
			CSR:           map[int]float64{},
		}
		for _, th := range threads {
			e.Fmt[th] = r.Speedup(format, th)
			e.CSR[th] = r.Speedup("csr", th)
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool { return lessNaNFirst(entries[a].Fmt[maxTh], entries[b].Fmt[maxTh]) })
	return entries
}

// lessNaNFirst orders speedups ascending with NaN (unmeasured) cells
// first, keeping the sort deterministic in the presence of missing
// data (NaN comparisons are unordered and would leave entries wherever
// the sort happened to touch them).
func lessNaNFirst(a, b float64) bool {
	switch {
	case math.IsNaN(a):
		return !math.IsNaN(b)
	case math.IsNaN(b):
		return false
	default:
		return a < b
	}
}

// figCell renders one Fig speedup cell, flagging unmeasured cells
// instead of printing a fabricated number.
func figCell(v float64) string {
	if math.IsNaN(v) {
		return "   n/a"
	}
	return fmt.Sprintf("%5.2fx", v)
}

// PrintFig writes the per-matrix series as text (one block per thread
// count, matrices sorted by speedup, as in the paper's bar charts).
func PrintFig(w io.Writer, title string, entries []FigEntry, threads []int) error {
	p := &printer{w: w}
	p.f("%s (speedup vs serial CSR; [squares] = CSR same threads; %%= size reduction)\n", title)
	for _, th := range threads {
		if th == 1 {
			continue
		}
		p.f("-- %d threads --\n", th)
		sorted := append([]FigEntry(nil), entries...)
		sort.Slice(sorted, func(a, b int) bool { return lessNaNFirst(sorted[a].Fmt[th], sorted[b].Fmt[th]) })
		for _, e := range sorted {
			p.f("  %-18s %s  %s  [%s]  %5.1f%%\n",
				e.Name, e.Class, figCell(e.Fmt[th]), figCell(e.CSR[th]), e.SizeReduction)
		}
	}
	return p.err
}
