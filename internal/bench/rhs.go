package bench

import (
	"fmt"
	"io"
	"time"

	"spmv/internal/core"
	"spmv/internal/obs"
	"spmv/internal/parallel"
)

// RHSPoint is one (format, k) cell of the multi-RHS sweep: wall time
// per batched multiplication, the per-vector share of it, and the
// modeled per-vector memory traffic (the quantity batching amortizes).
type RHSPoint struct {
	Format string
	K      int
	// SecsPerSpMM is the steady-state wall seconds of one k-column
	// batched multiplication.
	SecsPerSpMM float64
	// SecsPerVector is SecsPerSpMM/k — the cost attributable to each
	// result vector.
	SecsPerVector float64
	// BytesPerVector is obs.BytesPerVector(f, k): one matrix stream
	// shared by k vector panels.
	BytesPerVector float64
	// GBps is the effective per-vector bandwidth,
	// BytesPerVector / SecsPerVector / 1e9.
	GBps float64
}

// RHSSweep measures batched SpMV on one suite matrix across the given
// panel widths for CSR plus each cfg.Formats entry: the multi-RHS
// analogue of the bandwidth sweep. One pass over the compressed matrix
// stream feeds k result vectors, so BytesPerVector — and, on a
// bandwidth-bound machine, SecsPerVector — must fall as k grows.
// Native (wall-clock) mode only.
func RHSSweep(cfg Config, matrix string, threads int, ks []int) ([]RHSPoint, error) {
	spec, err := findSpec(matrix)
	if err != nil {
		return nil, err
	}
	if cfg.WarmIters <= 0 {
		cfg.WarmIters = 2
	}
	c := spec.Gen(cfg.Scale)
	var points []RHSPoint
	for _, name := range append([]string{"csr"}, cfg.Formats...) {
		f, err := buildFormat(name, c)
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", matrix, name, err)
		}
		for _, k := range ks {
			if k <= 0 {
				return nil, fmt.Errorf("bench: invalid rhs count %d", k)
			}
			s, err := measureBatch(cfg, f, threads, k)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s k=%d: %w", matrix, name, k, err)
			}
			bpv := obs.BytesPerVector(f, k)
			spv := s / float64(k)
			points = append(points, RHSPoint{
				Format: name, K: k,
				SecsPerSpMM:    s,
				SecsPerVector:  spv,
				BytesPerVector: bpv,
				GBps:           obs.GBps(int64(bpv), spv),
			})
		}
	}
	return points, nil
}

// measureBatch times RunBatchIters like measureNative times RunIters:
// a fixed untimed warm-up, then exactly cfg.WarmIters timed batched
// multiplications.
func measureBatch(cfg Config, f core.Format, threads, k int) (float64, error) {
	e, err := parallel.NewExecutor(f, threads)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	x := make([]float64, f.Cols()*k)
	y := make([]float64, f.Rows()*k)
	for i := range x {
		x[i] = float64(i%9) - 4
	}
	if err := e.RunBatchIters(warmUpIters, y, x, k); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := e.RunBatchIters(cfg.WarmIters, y, x, k); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds() / float64(cfg.WarmIters), nil
}

// PrintRHS writes the sweep as a per-format table: one row per panel
// width with per-vector time, modeled traffic and effective bandwidth.
func PrintRHS(w io.Writer, points []RHSPoint, matrix string, threads int) error {
	pr := &printer{w: w}
	pr.f("Multi-RHS sweep: %s, %d threads (row-major panels, batched kernels)\n", matrix, threads)
	pr.f("%10s %4s %14s %14s %16s %10s\n",
		"format", "k", "s/SpMM", "s/vector", "bytes/vector", "GB/s")
	last := ""
	for _, p := range points {
		if last != "" && p.Format != last {
			pr.ln()
		}
		last = p.Format
		pr.f("%10s %4d %14.4g %14.4g %16.0f %10.2f\n",
			p.Format, p.K, p.SecsPerSpMM, p.SecsPerVector, p.BytesPerVector, p.GBps)
	}
	return pr.err
}
