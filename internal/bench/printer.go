package bench

import (
	"fmt"
	"io"
)

// printer lets the report emitters format freely while accumulating
// the first write error, which they surface once via their return
// value instead of checking every Fprintf.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) f(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *printer) ln() {
	if p.err == nil {
		_, p.err = fmt.Fprintln(p.w)
	}
}
