package bench

import (
	"io"

	"spmv/internal/memsim"
	"spmv/internal/simtrace"
)

// MachinePoint is one machine of the machine study.
type MachinePoint struct {
	Name string
	// CSRSpeedup[threads] is CSR's speedup over its own serial run.
	CSRSpeedup map[int]float64
	// RelSpeed[format][threads] is the format's speedup over CSR at
	// equal threads.
	RelSpeed map[string]map[int]float64
}

// MachineStudy runs one memory-bound matrix across different machine
// models (e.g. the single-MCH Clovertown vs a dual-controller NUMA
// box): Williams et al. — the paper's §III-D reference — observed
// exactly this topology dependence, with bandwidth-rich machines
// scaling CSR further and narrowing the compression win.
func MachineStudy(cfg Config, matrix string, machines []memsim.Machine, threads []int) ([]MachinePoint, error) {
	spec, err := findSpec(matrix)
	if err != nil {
		return nil, err
	}
	c := spec.Gen(cfg.Scale)
	if cfg.WarmIters <= 0 {
		cfg.WarmIters = 2
	}
	base, err := buildFormat("csr", c)
	if err != nil {
		return nil, err
	}
	type prepared struct {
		name   string
		traces map[int][][]memsim.PackedAccess
	}
	collect := func(name string) (prepared, error) {
		f, err := buildFormat(name, c)
		if err != nil {
			return prepared{}, err
		}
		p := prepared{name: name, traces: map[int][][]memsim.PackedAccess{}}
		for _, th := range threads {
			tr, err := simtrace.Collect(f, th)
			if err != nil {
				return prepared{}, err
			}
			p.traces[th] = tr
		}
		return p, nil
	}
	baseP := prepared{name: "csr", traces: map[int][][]memsim.PackedAccess{}}
	for _, th := range threads {
		tr, err := simtrace.Collect(base, th)
		if err != nil {
			return nil, err
		}
		baseP.traces[th] = tr
	}
	var fmts []prepared
	for _, name := range cfg.Formats {
		p, err := collect(name)
		if err != nil {
			return nil, err
		}
		fmts = append(fmts, p)
	}

	warm := func(m memsim.Machine, traces [][]memsim.PackedAccess) (float64, error) {
		placement := memsim.ClosePlacement(len(traces))
		cold, err := memsim.Simulate(m, traces, placement, 1)
		if err != nil {
			return 0, err
		}
		full, err := memsim.Simulate(m, traces, placement, 1+cfg.WarmIters)
		if err != nil {
			return 0, err
		}
		return float64(full.Cycles-cold.Cycles) / float64(cfg.WarmIters), nil
	}

	var out []MachinePoint
	for _, m := range machines {
		p := MachinePoint{Name: m.Name, CSRSpeedup: map[int]float64{}, RelSpeed: map[string]map[int]float64{}}
		csrCycles := map[int]float64{}
		for _, th := range threads {
			cyc, err := warm(m, baseP.traces[th])
			if err != nil {
				return nil, err
			}
			csrCycles[th] = cyc
		}
		for _, th := range threads {
			p.CSRSpeedup[th] = csrCycles[threads[0]] / csrCycles[th]
		}
		for _, f := range fmts {
			p.RelSpeed[f.name] = map[int]float64{}
			for _, th := range threads {
				cyc, err := warm(m, f.traces[th])
				if err != nil {
					return nil, err
				}
				p.RelSpeed[f.name][th] = csrCycles[th] / cyc
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// PrintMachines writes the machine study as text.
func PrintMachines(w io.Writer, points []MachinePoint, formats []string, matrix string, threads []int) error {
	pr := &printer{w: w}
	pr.f("Machine study: %s (CSR scaling vs own serial; formats vs CSR at equal threads)\n", matrix)
	for _, p := range points {
		pr.f("-- %s --\n", p.Name)
		pr.f("  %-10s", "threads")
		for _, th := range threads {
			pr.f("%8d", th)
		}
		pr.ln()
		pr.f("  %-10s", "csr")
		for _, th := range threads {
			pr.f("%8.2f", p.CSRSpeedup[th])
		}
		pr.ln()
		for _, f := range formats {
			pr.f("  %-10s", f)
			for _, th := range threads {
				pr.f("%8.2f", p.RelSpeed[f][th])
			}
			pr.ln()
		}
	}
	return pr.err
}
