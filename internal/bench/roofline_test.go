package bench

import (
	"math"
	"strings"
	"testing"

	"spmv/internal/obs"
	"spmv/internal/roofline"
)

func testRooflineModel() *roofline.Model {
	return &roofline.Model{
		Source: roofline.SourceProbe,
		Host:   "test",
		Ceilings: map[int]float64{
			1: 7.25,
			2: 11.5,
		},
	}
}

// TestRooflinePctPinned pins the %roof definition: every cell's
// PctRoofline equals obs.GBps(bytes, secs) / Model.CeilingGBps(threads)
// to 1e-9, through both the RunMetrics path (Config.Roofline) and the
// RooflineTable builder.
func TestRooflinePctPinned(t *testing.T) {
	cfg := testConfig()
	cfg.Native = true
	cfg.Metrics = true
	cfg.Threads = []int{1, 2}
	cfg.Formats = []string{"csr-du"}
	cfg.Roofline = testRooflineModel()
	runs, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("no matrices admitted")
	}

	tab := BuildRooflineTable(runs, cfg.Formats, cfg.Threads, cfg.Roofline)
	wantRows := 0
	for _, r := range runs {
		for _, cells := range r.Metrics {
			wantRows += len(cells)
		}
	}
	if len(tab.Rows) != wantRows {
		t.Fatalf("table rows = %d, want %d", len(tab.Rows), wantRows)
	}

	checked := 0
	for _, row := range tab.Rows {
		want := obs.GBps(row.BytesPerIter, row.SecsPerIter) / cfg.Roofline.CeilingGBps(row.Threads)
		if math.Abs(row.PctRoofline-want) > 1e-9 {
			t.Errorf("%s/%s t=%d: table %%roof %v != GBps/ceiling %v",
				row.Matrix, row.Format, row.Threads, row.PctRoofline, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no rows checked")
	}

	for _, r := range runs {
		for name, cells := range r.Metrics {
			for th, cell := range cells {
				want := obs.GBps(cell.BytesPerIter, cell.SecsPerIter) / cfg.Roofline.CeilingGBps(th)
				if math.Abs(cell.PctRoofline-want) > 1e-9 {
					t.Errorf("%s/%s t=%d: metrics %%roof %v != GBps/ceiling %v",
						r.Name, name, th, cell.PctRoofline, want)
				}
				if math.Abs(cell.CeilingGBps-cfg.Roofline.CeilingGBps(th)) > 1e-12 {
					t.Errorf("%s/%s t=%d: ceiling %v", r.Name, name, th, cell.CeilingGBps)
				}
			}
		}
	}

	var sb strings.Builder
	if err := tab.Print(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "%roof") {
		t.Errorf("table output missing %%roof column:\n%s", out)
	}
	if !strings.Contains(out, "model: probe @test") {
		t.Errorf("table output missing model provenance:\n%s", out)
	}

	rep := BuildMetricsReport(cfg, runs)
	if rep.Roofline == nil || rep.Roofline.Source != roofline.SourceProbe {
		t.Errorf("metrics report lost the roofline model: %+v", rep.Roofline)
	}
}

// TestRooflineNilModel pins the degraded path: without a model, metrics
// carry zero roofline fields and the table prints without ceilings.
func TestRooflineNilModel(t *testing.T) {
	cfg := testConfig()
	cfg.Metrics = true
	cfg.Threads = []int{1}
	cfg.Formats = nil
	runs, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		for name, cells := range r.Metrics {
			for th, cell := range cells {
				if cell.CeilingGBps != 0 || cell.PctRoofline != 0 {
					t.Errorf("%s/%s t=%d: roofline fields set without a model: %+v",
						r.Name, name, th, cell)
				}
			}
		}
	}
	tab := BuildRooflineTable(runs, nil, cfg.Threads, nil)
	for _, row := range tab.Rows {
		if row.CeilingGBps != 0 {
			t.Errorf("nil model produced ceiling %v", row.CeilingGBps)
		}
		if !math.IsNaN(row.PctRoofline) && row.PctRoofline != 0 {
			t.Errorf("nil model produced %%roof %v", row.PctRoofline)
		}
	}
	var sb strings.Builder
	if err := tab.Print(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "model: none") {
		t.Errorf("nil-model header wrong:\n%s", sb.String())
	}
}
