// Package bench is the experiment harness: it defines the synthetic
// matrix suite standing in for the paper's 77-matrix UF-collection set
// (§VI-B) and regenerates every table and figure of the evaluation
// section, either on the simulated Clovertown (cmd/spmvsim) or with
// wall-clock goroutine timing on the host (cmd/spmvbench).
package bench

import (
	"math"
	"math/rand"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

// Spec is one suite matrix: a deterministic generator parameterized by
// a linear scale factor (1.0 = paper-scale working sets of 3-60MB;
// tests use small scales).
type Spec struct {
	Name string
	// Gen builds the matrix at the given scale.
	Gen func(scale float64) *core.COO
	// WantClass is the intended paper class at scale 1 ("S" or "L"),
	// recorded for documentation; the harness classifies by actual ws.
	WantClass string
}

// dim scales a linear dimension: row counts scale linearly with scale,
// so 2D/3D grid sides scale by the appropriate root.
func dim(n int, scale, root float64) int {
	d := int(float64(n) * math.Pow(scale, 1/root))
	if d < 4 {
		d = 4
	}
	return d
}

// Suite returns the matrix set. Classes at scale 1 (modeled Clovertown,
// ws thresholds of §VI-B: reject < 3MB, M_L at >= 17MB):
// ten matrices land in M_S, twelve in M_L; twelve have ttu > 5 and form
// the CSR-VI set.
func Suite() []Spec {
	seed := func(k int64) *rand.Rand { return rand.New(rand.NewSource(k)) }
	return []Spec{
		// --- M_S: 3MB <= ws < 17MB at scale 1 ---
		{"stencil2d-s", func(s float64) *core.COO { return matgen.Stencil2D(dim(250, s, 2)) }, "S"},
		{"stencil2d-m", func(s float64) *core.COO { return matgen.Stencil2D(dim(370, s, 2)) }, "S"},
		{"stencil3d-s", func(s float64) *core.COO { return matgen.Stencil3D(dim(45, s, 3)) }, "S"},
		{"stencil9-s", func(s float64) *core.COO { return matgen.Stencil2D9(dim(200, s, 2)) }, "S"},
		{"banded-s", func(s float64) *core.COO {
			return matgen.Banded(seed(11), dim(100000, s, 1), 30, 6, matgen.Values{})
		}, "S"},
		{"banded-s-q64", func(s float64) *core.COO {
			return matgen.Banded(seed(12), dim(100000, s, 1), 30, 6, matgen.Values{Unique: 64})
		}, "S"},
		{"random-s", func(s float64) *core.COO {
			n := dim(80000, s, 1)
			return matgen.RandomUniform(seed(13), n, n, 6, matgen.Values{})
		}, "S"},
		{"femlike-s-q100", func(s float64) *core.COO {
			return matgen.FEMLike(seed(14), dim(60000, s, 1), 5, matgen.Values{Unique: 100})
		}, "S"},
		{"blockdiag-s-q16", func(s float64) *core.COO {
			return matgen.BlockDiag(seed(15), dim(8000, s, 1), 8, matgen.Values{Unique: 16})
		}, "S"},
		{"powerlaw-s", func(s float64) *core.COO {
			return matgen.PowerLaw(seed(16), dim(150000, s, 1), 4, 0.7, matgen.Values{})
		}, "S"},

		// --- M_L: ws >= 17MB at scale 1 ---
		{"stencil2d-l", func(s float64) *core.COO { return matgen.Stencil2D(dim(700, s, 2)) }, "L"},
		{"stencil3d-l", func(s float64) *core.COO { return matgen.Stencil3D(dim(75, s, 3)) }, "L"},
		{"stencil9-l", func(s float64) *core.COO { return matgen.Stencil2D9(dim(500, s, 2)) }, "L"},
		{"banded-l", func(s float64) *core.COO {
			return matgen.Banded(seed(21), dim(400000, s, 1), 60, 8, matgen.Values{})
		}, "L"},
		{"banded-l-q128", func(s float64) *core.COO {
			return matgen.Banded(seed(22), dim(400000, s, 1), 60, 8, matgen.Values{Unique: 128})
		}, "L"},
		{"random-l", func(s float64) *core.COO {
			n := dim(300000, s, 1)
			return matgen.RandomUniform(seed(23), n, n, 7, matgen.Values{})
		}, "L"},
		{"random-l-q200", func(s float64) *core.COO {
			n := dim(300000, s, 1)
			return matgen.RandomUniform(seed(24), n, n, 7, matgen.Values{Unique: 200})
		}, "L"},
		{"femlike-l-q500", func(s float64) *core.COO {
			return matgen.FEMLike(seed(25), dim(250000, s, 1), 5, matgen.Values{Unique: 500})
		}, "L"},
		{"femlike-l", func(s float64) *core.COO {
			return matgen.FEMLike(seed(26), dim(220000, s, 1), 5, matgen.Values{})
		}, "L"},
		{"blockdiag-l-q8", func(s float64) *core.COO {
			return matgen.BlockDiag(seed(27), dim(40000, s, 1), 8, matgen.Values{Unique: 8})
		}, "L"},
		{"powerlaw-l", func(s float64) *core.COO {
			return matgen.PowerLaw(seed(28), dim(500000, s, 1), 5, 0.7, matgen.Values{})
		}, "L"},
		{"banded-l-wide", func(s float64) *core.COO {
			return matgen.Banded(seed(29), dim(350000, s, 1), 20000, 9, matgen.Values{})
		}, "L"},
	}
}

// MinWS is the paper's admission threshold: matrices with smaller CSR
// working sets are rejected from M_0 (ws >= 3MB for the 4MB L2).
const MinWS = 3 << 20

// LargeWS is the paper's M_L threshold: 4×L2 + 1MB = 17MB.
const LargeWS = 17 << 20

// Classify returns "S" or "L" from the CSR working set per §VI-B.
func Classify(ws int64) string {
	if ws >= LargeWS {
		return "L"
	}
	return "S"
}
