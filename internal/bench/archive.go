package bench

import (
	"spmv/internal/obs"
	"spmv/internal/prof/archive"
	"spmv/internal/stats"
)

// ArchiveMeta carries the provenance fields of an archive file that the
// bench layer cannot discover itself: host identity and git state come
// from the caller (the CLI shells out for the SHA, the library must
// not).
type ArchiveMeta struct {
	Host   string
	GoOS   string
	GoArch string
	GitSHA string
	Date   string
}

// ArchiveRecords flattens a collection's measured cells into archive
// records — one per (matrix, format, thread-count) — ready to write as
// a BENCH_<host>.json file. Cells measured with Config.Samples >= 2
// carry their sample count and spread so the comparator can run a real
// t-test; single-shot cells fall back to the interval heuristic.
func ArchiveRecords(cfg Config, runs []*MatrixRuns, meta ArchiveMeta) *archive.File {
	file := &archive.File{
		Host:   meta.Host,
		GoOS:   meta.GoOS,
		GoArch: meta.GoArch,
		GitSHA: meta.GitSHA,
		Date:   meta.Date,
	}
	formats := append([]string{"csr"}, cfg.Formats...)
	for _, r := range runs {
		for _, name := range formats {
			for _, th := range cfg.Threads {
				s, ok := r.Sec(name, th)
				if !ok {
					continue
				}
				rec := archive.Record{
					Name:     archive.CellName(r.Name, name, th),
					Matrix:   r.Name,
					Format:   name,
					Threads:  th,
					Scale:    cfg.Scale,
					Iters:    cfg.WarmIters,
					Samples:  1,
					MeanSecs: s,
				}
				if samples := r.SecsSamples[name][th]; len(samples) >= 2 {
					rec.Samples = len(samples)
					rec.MeanSecs, rec.StddevSecs = stats.MeanStddev(samples)
				}
				if m := r.Metrics[name][th]; m != nil {
					rec.BytesPerIter = m.BytesPerIter
					rec.GBps = obs.GBps(m.BytesPerIter, rec.MeanSecs)
				}
				file.Records = append(file.Records, rec)
			}
		}
	}
	return file
}
