package bench

import (
	"encoding/json"
	"io"

	"spmv/internal/core"
	"spmv/internal/obs"
	"spmv/internal/roofline"
)

// RunMetrics is the observability record of one (matrix, format,
// thread-count) measurement: the timing restated as effective memory
// bandwidth — the paper's §II bandwidth-bound thesis made directly
// checkable — plus the per-chunk telemetry of the last measured run.
type RunMetrics struct {
	Threads int `json:"threads"`
	// Workers is the executor's actual worker count (≤ Threads for
	// small matrices). 0 in simulation mode.
	Workers int `json:"workers,omitempty"`
	// SecsPerIter is the measured steady-state seconds per SpMV.
	SecsPerIter float64 `json:"secs_per_iter"`
	// Iters is the number of measured iterations behind SecsPerIter.
	Iters int `json:"iters"`
	// BytesPerIter is the cold-cache traffic estimate of one SpMV
	// (matrix stream + x read + y write; obs.BytesPerSpMV).
	BytesPerIter int64 `json:"bytes_per_iter"`
	// GBps is BytesPerIter / SecsPerIter in 10^9 bytes per second: the
	// bandwidth the run effectively sustained. Compression "wins" when
	// a format's seconds drop while its GBps stays near the machine's
	// ceiling — same bandwidth, fewer bytes.
	GBps float64 `json:"gbps"`
	// BytesPerNNZ is the matrix-stream bytes per stored non-zero
	// (core.BytesPerNNZ), the per-element cost compression reduces.
	BytesPerNNZ float64 `json:"bytes_per_nnz"`
	// CeilingGBps and PctRoofline anchor GBps to the host's bandwidth
	// roofline when Config.Roofline was set: PctRoofline is exactly
	// GBps / CeilingGBps(threads), the fraction of the memory wall this
	// cell reached. Zero when no roofline model was supplied.
	CeilingGBps float64 `json:"ceiling_gbps,omitempty"`
	PctRoofline float64 `json:"pct_roofline,omitempty"`
	// TimeImbalance and NNZImbalance are the measured (mean over
	// measured iterations) and static load imbalance, 1.0 = perfect.
	// Native mode only; 0 when unavailable.
	TimeImbalance float64 `json:"time_imbalance,omitempty"`
	NNZImbalance  float64 `json:"nnz_imbalance,omitempty"`
	// Chunks is the last measured iteration's per-worker telemetry
	// (native mode only).
	Chunks []obs.ChunkStat `json:"chunks,omitempty"`
}

// newRunMetrics assembles the metrics record for one measured cell.
// rec may be nil (simulation mode): timing-derived fields still fill.
func newRunMetrics(cfg Config, f core.Format, threads int, secsPerIter float64, rec *obs.Recorder) *RunMetrics {
	m := &RunMetrics{
		Threads:      threads,
		SecsPerIter:  secsPerIter,
		Iters:        cfg.WarmIters,
		BytesPerIter: obs.BytesPerSpMV(f),
		GBps:         obs.GBps(obs.BytesPerSpMV(f), secsPerIter),
		BytesPerNNZ:  core.BytesPerNNZ(f),
	}
	if c := cfg.Roofline.CeilingGBps(threads); c > 0 {
		m.CeilingGBps = c
		m.PctRoofline = m.GBps / c
	}
	if rec != nil {
		snap := rec.Snapshot()
		m.Workers = snap.Last.Threads()
		m.TimeImbalance = snap.MeanTimeImbalance
		m.NNZImbalance = snap.Last.NNZImbalance()
		m.Chunks = snap.Last.Chunks
	}
	return m
}

// MetricsReport is the JSON document `spmvbench -metrics` emits: every
// measured cell of every matrix, flattened for machine consumption.
type MetricsReport struct {
	// Mode is "native" or "sim".
	Mode string `json:"mode"`
	// Scale is the matrix size multiplier of the run.
	Scale float64 `json:"scale"`
	// Threads lists the exercised thread counts.
	Threads []int `json:"threads"`
	// Roofline echoes the bandwidth model the cells' PctRoofline values
	// were computed against (nil when the run had none).
	Roofline *roofline.Model `json:"roofline,omitempty"`
	// Matrices holds one entry per admitted suite matrix.
	Matrices []MatrixMetrics `json:"matrices"`
}

// MatrixMetrics groups one matrix's metrics by format.
type MatrixMetrics struct {
	Name  string  `json:"name"`
	Class string  `json:"class"`
	Rows  int     `json:"rows"`
	Cols  int     `json:"cols"`
	NNZ   int     `json:"nnz"`
	WS    int64   `json:"working_set_bytes"`
	TTU   float64 `json:"ttu"`
	// Formats is ordered CSR first, then Config.Formats order.
	Formats []FormatMetrics `json:"formats"`
}

// FormatMetrics is one format's measured cells for one matrix.
type FormatMetrics struct {
	Format string `json:"format"`
	// SizeRatio is SizeBytes(format)/SizeBytes(csr); 1 for CSR itself.
	SizeRatio float64 `json:"size_ratio"`
	// Runs is ordered by Config.Threads.
	Runs []*RunMetrics `json:"runs"`
}

// BuildMetricsReport assembles the metrics document from collected
// runs. Runs collected without Config.Metrics produce empty Formats
// lists — callers should collect with Metrics set.
func BuildMetricsReport(cfg Config, runs []*MatrixRuns) MetricsReport {
	mode := "sim"
	if cfg.Native {
		mode = "native"
	}
	rep := MetricsReport{Mode: mode, Scale: cfg.Scale, Threads: cfg.Threads, Roofline: cfg.Roofline}
	formats := append([]string{"csr"}, cfg.Formats...)
	for _, r := range runs {
		mm := MatrixMetrics{
			Name: r.Name, Class: r.Class, Rows: r.Rows, Cols: r.Cols,
			NNZ: r.NNZ, WS: r.WS, TTU: r.TTU,
		}
		for _, name := range formats {
			cells := r.Metrics[name]
			if cells == nil {
				continue
			}
			fm := FormatMetrics{Format: name, SizeRatio: 1}
			if name != "csr" {
				fm.SizeRatio = r.SizeRatio[name]
			}
			for _, th := range cfg.Threads {
				if m := cells[th]; m != nil {
					fm.Runs = append(fm.Runs, m)
				}
			}
			mm.Formats = append(mm.Formats, fm)
		}
		rep.Matrices = append(rep.Matrices, mm)
	}
	return rep
}

// WriteMetricsJSON emits the report as indented JSON.
func WriteMetricsJSON(w io.Writer, rep MetricsReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
