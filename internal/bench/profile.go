package bench

import (
	"fmt"

	"spmv/internal/core"
	"spmv/internal/obs"
	"spmv/internal/prof"
)

// FindSpec looks up a suite matrix by name. It is the exported face of
// the sweep's internal lookup so profiling commands can target suite
// matrices by the same names the benchmark tables use.
func FindSpec(name string) (Spec, error) {
	return findSpec(name)
}

// ProfileCell builds one (matrix, format) pair at cfg.Scale and returns
// its structural profile. With cfg.Native set and threads > 0 it also
// measures the cell and attaches a bandwidth attribution: the §II-B
// traffic model split across the format's streams at the measured
// timing, plus the last run's imbalance telemetry. With cfg.Roofline
// set the attribution is additionally anchored to the model's ceiling
// at the measured thread count (ceiling_gbps / pct_roofline).
func ProfileCell(cfg Config, matrix, format string, threads int) (*prof.FormatProfile, error) {
	spec, err := findSpec(matrix)
	if err != nil {
		return nil, err
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.WarmIters <= 0 {
		cfg.WarmIters = 2
	}
	c := spec.Gen(cfg.Scale)
	f, err := buildFormat(format, c)
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s: %w", matrix, format, err)
	}
	if cfg.Verify {
		if err := core.Verify(f); err != nil {
			return nil, fmt.Errorf("bench: %s/%s: verify: %w", matrix, format, err)
		}
	}
	p := prof.New(f)
	if !cfg.Native || threads <= 0 {
		return p, nil
	}
	rec := obs.NewRecorder()
	secs, err := measureNative(cfg, f, threads, rec)
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s: %w", matrix, format, err)
	}
	snap := rec.Snapshot()
	prof.AttributeRoofline(p, secs, &snap.Last, cfg.Roofline, threads)
	return p, nil
}
