package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"spmv/internal/prof/archive"
)

func archiveTestConfig() Config {
	cfg := testConfig()
	cfg.Native = true
	cfg.Metrics = true
	cfg.Threads = []int{1, 2}
	cfg.Formats = []string{"csr-du"}
	cfg.Samples = 3
	return cfg
}

// TestArchiveRecordsFromCollection: a native sampled collection flattens
// into one archive record per measured cell, with sample counts, means
// and traffic-derived bandwidth filled in.
func TestArchiveRecordsFromCollection(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := archiveTestConfig()
	runs, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("no matrices admitted")
	}
	meta := ArchiveMeta{Host: "testhost", GoOS: "linux", GoArch: "amd64",
		GitSHA: "deadbeef", Date: "2026-08-05"}
	file := ArchiveRecords(cfg, runs, meta)
	want := len(runs) * (1 + len(cfg.Formats)) * len(cfg.Threads)
	if len(file.Records) != want {
		t.Fatalf("records = %d, want %d", len(file.Records), want)
	}
	for _, rec := range file.Records {
		if rec.Samples != cfg.Samples {
			t.Errorf("%s: samples = %d, want %d", rec.Name, rec.Samples, cfg.Samples)
		}
		if rec.MeanSecs <= 0 {
			t.Errorf("%s: mean = %v", rec.Name, rec.MeanSecs)
		}
		if rec.BytesPerIter <= 0 || rec.GBps <= 0 {
			t.Errorf("%s: bytes=%d gbps=%v", rec.Name, rec.BytesPerIter, rec.GBps)
		}
		if rec.Name != archive.CellName(rec.Matrix, rec.Format, rec.Threads) {
			t.Errorf("cell name %q does not match its fields", rec.Name)
		}
	}
	// The mean must agree with the stored per-cell samples.
	r := runs[0]
	samples := r.SecsSamples["csr"][1]
	if len(samples) != cfg.Samples {
		t.Fatalf("stored samples = %d, want %d", len(samples), cfg.Samples)
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	if mean := sum / float64(len(samples)); math.Abs(r.Secs["csr"][1]-mean) > 1e-15 {
		t.Errorf("Secs = %v, sample mean = %v", r.Secs["csr"][1], mean)
	}

	// Round-trip: comparing an archive against itself yields no
	// regressions.
	results, err := archive.Compare(file.Records, file.Records, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != want {
		t.Fatalf("self-compare results = %d, want %d", len(results), want)
	}
	if regs := archive.Regressions(results); len(regs) != 0 {
		t.Errorf("self-compare flagged regressions: %+v", regs)
	}
}

// TestArchiveRecordsSingleShot: without Samples the records are
// single-sample with no spread — the comparator's CI-fallback shape.
func TestArchiveRecordsSingleShot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := archiveTestConfig()
	cfg.Samples = 0
	cfg.Threads = []int{1}
	cfg.Formats = nil
	runs, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	file := ArchiveRecords(cfg, runs, ArchiveMeta{})
	for _, rec := range file.Records {
		if rec.Samples != 1 || rec.StddevSecs != 0 {
			t.Errorf("%s: samples=%d stddev=%v, want single-shot", rec.Name, rec.Samples, rec.StddevSecs)
		}
	}
	for _, r := range runs {
		if r.SecsSamples != nil {
			t.Errorf("%s: SecsSamples populated without Samples", r.Name)
		}
	}
}

// TestProfileCellNative: the profile of a measured cell reconciles with
// the traffic model and carries a populated attribution.
func TestProfileCellNative(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig()
	cfg.Native = true
	p, err := ProfileCell(cfg, "banded-l-q128", "csr-du", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Format != "csr-du" || p.DU == nil {
		t.Fatalf("profile shape: format=%q du=%v", p.Format, p.DU)
	}
	var sum int64
	for _, s := range p.Streams {
		sum += s.Bytes
	}
	if sum != p.WorkingSet {
		t.Errorf("streams sum %d != working set %d", sum, p.WorkingSet)
	}
	a := p.Attribution
	if a == nil {
		t.Fatal("no attribution on a measured profile")
	}
	if a.SecsPerIter <= 0 || a.GBps <= 0 || a.Threads != 2 {
		t.Errorf("attribution: %+v", a)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "predicted_bytes_per_iter") {
		t.Error("JSON missing attribution field")
	}
}

// TestProfileCellErrors: unknown matrices and formats are rejected.
func TestProfileCellErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := ProfileCell(cfg, "no-such-matrix", "csr", 1); err == nil {
		t.Error("unknown matrix accepted")
	}
	if _, err := ProfileCell(cfg, "banded-l-q128", "no-such-format", 1); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestMetricsJSONFiniteOnDegenerateTiming: a metrics report built from
// a denormal timing must survive JSON encoding — obs.GBps guards the
// overflow that used to emit +Inf, which encoding/json rejects.
func TestMetricsJSONFiniteOnDegenerateTiming(t *testing.T) {
	cfg := testConfig()
	cfg.Formats = nil
	runs, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("no matrices admitted")
	}
	// Force the degenerate timing into a measured cell's metrics the
	// way a clock glitch would: rebuild the RunMetrics from it.
	f, err := buildFormat("csr", Suite()[0].Gen(cfg.Scale))
	if err != nil {
		t.Fatal(err)
	}
	m := newRunMetrics(cfg, f, 1, 5e-324, nil)
	if m.GBps != 0 {
		t.Errorf("GBps on denormal timing = %v, want 0", m.GBps)
	}
	runs[0].Metrics = map[string]map[int]*RunMetrics{"csr": {1: m}}
	cfg.Metrics = true
	rep := BuildMetricsReport(cfg, runs)
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, rep); err != nil {
		t.Fatalf("metrics JSON with degenerate timing: %v", err)
	}
}
