package bench

import (
	"fmt"
	"io"
	"math"

	"spmv/internal/roofline"
)

// RooflineRow is one measured cell restated against the host's
// bandwidth ceiling: the format's effective GB/s, the ceiling at that
// thread count, and their ratio — the %-of-roofline the run reached.
type RooflineRow struct {
	Matrix  string
	Class   string
	Format  string
	Threads int
	// SecsPerIter and BytesPerIter restate the cell's RunMetrics.
	SecsPerIter  float64
	BytesPerIter int64
	GBps         float64
	CeilingGBps  float64
	// PctRoofline is GBps / CeilingGBps — NaN when the cell was never
	// measured, 0 when the model has no ceiling.
	PctRoofline float64
}

// RooflineTable is the `spmvbench -roofline` view: every measured cell
// against the bandwidth model it was anchored to.
type RooflineTable struct {
	Model *roofline.Model
	Rows  []RooflineRow
}

// BuildRooflineTable derives the roofline view from collected runs.
// Runs must have been collected with Config.Metrics set — cells without
// a RunMetrics record are skipped (they carry no byte model). The rows
// come out in suite order, CSR first then Config.Formats order, thread
// counts ascending within a format, matching the other report tables.
func BuildRooflineTable(runs []*MatrixRuns, formats []string, threads []int, m *roofline.Model) RooflineTable {
	t := RooflineTable{Model: m}
	names := append([]string{"csr"}, formats...)
	for _, r := range runs {
		for _, name := range names {
			cells := r.Metrics[name]
			if cells == nil {
				continue
			}
			for _, th := range threads {
				cell := cells[th]
				if cell == nil {
					continue
				}
				row := RooflineRow{
					Matrix: r.Name, Class: r.Class, Format: name, Threads: th,
					SecsPerIter:  cell.SecsPerIter,
					BytesPerIter: cell.BytesPerIter,
					GBps:         cell.GBps,
					CeilingGBps:  m.CeilingGBps(th),
				}
				switch {
				case cell.SecsPerIter <= 0:
					row.PctRoofline = math.NaN()
				case row.CeilingGBps > 0:
					row.PctRoofline = row.GBps / row.CeilingGBps
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	return t
}

// rooflinePctCell renders a %roof cell, flagging unmeasured cells.
func rooflinePctCell(v float64) string {
	if math.IsNaN(v) {
		return "  n/a"
	}
	return fmt.Sprintf("%4.0f%%", 100*v)
}

// Print writes the roofline table, returning the first write error.
// The header names the model source so readers know whether %roof is
// against a measured probe or an analytic machine peak.
func (t RooflineTable) Print(w io.Writer) error {
	p := &printer{w: w}
	src := "none"
	host := ""
	if t.Model != nil {
		src = t.Model.Source
		host = t.Model.Host
	}
	p.f("Roofline: measured bandwidth vs ceiling (model: %s", src)
	if host != "" {
		p.f(" @%s", host)
	}
	p.f(")\n")
	p.f("%-18s %-2s %-10s %3s | %10s %12s %8s %8s %6s\n",
		"matrix", "cl", "format", "th", "secs/iter", "bytes/iter", "GB/s", "ceil", "%roof")
	for _, row := range t.Rows {
		p.f("%-18s %-2s %-10s %3d | %10.3e %12d %8.3f %8.3f %6s\n",
			row.Matrix, row.Class, row.Format, row.Threads,
			row.SecsPerIter, row.BytesPerIter, row.GBps, row.CeilingGBps,
			rooflinePctCell(row.PctRoofline))
	}
	return p.err
}
