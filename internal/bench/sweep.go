package bench

import (
	"fmt"
	"io"

	"spmv/internal/memsim"
	"spmv/internal/simtrace"
)

// SweepPoint is one bus-bandwidth setting of the sweep: the simulated
// effective bandwidth and the relative speedup of each compressed
// format over CSR at the given thread count.
type SweepPoint struct {
	BusGBs   float64
	RelSpeed map[string]float64
}

// BandwidthSweep runs the paper's core argument as an experiment: it
// scales the machine's bus service time across the given factors
// (1.0 = the Clovertown model) and measures the compressed formats'
// speedup over CSR at the given thread count on one representative
// memory-bound matrix. As bandwidth shrinks relative to compute, the
// compression win must grow — and fade when bandwidth is abundant.
// This ablation generalizes Tables III/IV beyond one machine.
func BandwidthSweep(cfg Config, matrix string, threads int, factors []float64) ([]SweepPoint, error) {
	spec, err := findSpec(matrix)
	if err != nil {
		return nil, err
	}
	c := spec.Gen(cfg.Scale)
	if cfg.WarmIters <= 0 {
		cfg.WarmIters = 2
	}
	base, err := buildFormat("csr", c)
	if err != nil {
		return nil, err
	}
	baseTraces, err := simtrace.Collect(base, threads)
	if err != nil {
		return nil, err
	}
	type prepared struct {
		name   string
		traces [][]memsim.PackedAccess
	}
	var formats []prepared
	for _, name := range cfg.Formats {
		f, err := buildFormat(name, c)
		if err != nil {
			return nil, err
		}
		tr, err := simtrace.Collect(f, threads)
		if err != nil {
			return nil, err
		}
		formats = append(formats, prepared{name: name, traces: tr})
	}

	warm := func(m memsim.Machine, traces [][]memsim.PackedAccess) (float64, error) {
		placement := memsim.ClosePlacement(len(traces))
		cold, err := memsim.Simulate(m, traces, placement, 1)
		if err != nil {
			return 0, err
		}
		full, err := memsim.Simulate(m, traces, placement, 1+cfg.WarmIters)
		if err != nil {
			return 0, err
		}
		return float64(full.Cycles-cold.Cycles) / float64(cfg.WarmIters), nil
	}

	var points []SweepPoint
	for _, fac := range factors {
		m := cfg.Machine
		m.BusPerLine = uint64(float64(m.BusPerLine)*fac + 0.5)
		if m.BusPerLine == 0 {
			m.BusPerLine = 1
		}
		p := SweepPoint{
			BusGBs:   m.FreqHz * float64(m.LineSize) / float64(m.BusPerLine) / 1e9,
			RelSpeed: map[string]float64{},
		}
		csrCycles, err := warm(m, baseTraces)
		if err != nil {
			return nil, err
		}
		for _, f := range formats {
			cyc, err := warm(m, f.traces)
			if err != nil {
				return nil, err
			}
			p.RelSpeed[f.name] = csrCycles / cyc
		}
		points = append(points, p)
	}
	return points, nil
}

func findSpec(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("bench: unknown suite matrix %q", name)
}

// PrintSweep writes the sweep as a text series.
func PrintSweep(w io.Writer, points []SweepPoint, formats []string, matrix string, threads int) error {
	pr := &printer{w: w}
	pr.f("Bandwidth sweep: %s, %d threads (speedup vs CSR at equal threads)\n", matrix, threads)
	pr.f("%10s", "bus GB/s")
	for _, f := range formats {
		pr.f("%12s", f)
	}
	pr.ln()
	for _, p := range points {
		pr.f("%10.2f", p.BusGBs)
		for _, f := range formats {
			pr.f("%12.2f", p.RelSpeed[f])
		}
		pr.ln()
	}
	return pr.err
}
