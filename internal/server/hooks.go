package server

// Hooks are fault-injection points for tests and soak harnesses
// (internal/server/faulttest builds on them). Production configs leave
// them nil; every call site nil-checks both the struct and the field,
// so the hooks cost nothing when unset.
type Hooks struct {
	// BeforeExecute runs in the coalescer's execution goroutine right
	// before a batch of the given width is dispatched. A returned error
	// fails the batch; a panic exercises the graceful-degradation path
	// (recovered, counted in Metrics.PanicsRecovered, surfaced as a 500
	// on the batch's requests while the loop and executor stay healthy).
	BeforeExecute func(matrixID string, width int) error

	// OnIngest observes every upload body after it is read and before
	// it is parsed; tests use it to confirm corrupt payloads reached
	// the parser rather than being filtered earlier.
	OnIngest func(body []byte)
}
