// Package server is the SpMV-as-a-service layer: a long-running HTTP
// server owning a registry of verified, compressed matrices and
// serving y = A·x from shared multithreaded executors.
//
// Every design choice follows from the paper's thesis that SpMV is
// memory-bandwidth-bound: past the bandwidth roof, admitting more
// concurrent requests only adds latency, so the server practices
// admission control — bounded queues that shed load with 429/503
// rather than queue unboundedly — and coalesces concurrent requests on
// the same matrix into SpMM panels, which cost a fraction of the
// per-vector memory traffic (PR 4) and are therefore the
// overload-survival fast path.
//
// The pipeline is admission → coalesce → execute → degrade:
//
//   - admission: per-matrix bounded queues, a per-client in-flight
//     cap, a build-concurrency cap on uploads, and per-request
//     deadlines. Full anything returns 429 with Retry-After.
//   - coalesce: one goroutine per matrix drains up to MaxBatch queued
//     requests into a single RunBatch panel. Width 1 delegates to the
//     scalar kernel bitwise.
//   - execute: the PR-1 panic-recovering executors; kernel panics
//     surface as chunk-scoped errors, never as worker death.
//   - degrade: a failed or panicking batch costs its own requests a
//     500 while the loop, the pool and all other matrices stay
//     healthy. Eviction and drains answer queued requests with 503.
//
// Ingest runs the full PR-1 verification stack (mmio hardening,
// matfile v2 checksums + the ReadSized alloc-bomb guard, core.Verify)
// before a matrix is admitted; builds are content-addressed and
// singleflighted, and the registry LRU-evicts under a byte budget.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"log/slog"

	"spmv/internal/autotune"
	"spmv/internal/core"
	"spmv/internal/formats"
	"spmv/internal/matfile"
	"spmv/internal/mmio"
	"spmv/internal/obs"
	"spmv/internal/parallel"
	"spmv/internal/roofline"
)

var errTooLarge = core.Usagef("server: matrix exceeds the memory budget")

// matfileMagic mirrors the matfile container magic for upload sniffing.
var matfileMagic = []byte("SPMV")

// Config tunes the server. The zero value is usable: every limit has a
// production-shaped default, applied by New.
type Config struct {
	// MemoryBudget bounds the registry's summed matrix bytes; least
	// recently used matrices are evicted past it. Default 256 MiB.
	MemoryBudget int64
	// MaxUploadBytes bounds one upload body. Default 64 MiB.
	MaxUploadBytes int64
	// MaxBatch caps the coalescer's SpMM panel width. Default 8.
	MaxBatch int
	// QueueDepth bounds each matrix's admission queue; a full queue
	// sheds with 429. Default 64.
	QueueDepth int
	// MaxPerClient caps one client's in-flight multiply requests
	// (fairness: one greedy client cannot occupy every queue slot).
	// Default 16.
	MaxPerClient int
	// MaxConcurrentBuilds caps concurrently ingesting uploads; builds
	// are O(nnz) and memory-hungry. Default 2.
	MaxConcurrentBuilds int
	// DefaultDeadline is the per-request deadline when the client sends
	// none, and the cap on client-requested deadlines. Default 10s.
	DefaultDeadline time.Duration
	// WriteTimeout bounds writing a response body to a slow consumer.
	// Default 10s.
	WriteTimeout time.Duration
	// Threads is the executor worker count per matrix; 0 means
	// GOMAXPROCS.
	Threads int
	// DefaultFormat is the format built for mmio uploads that name
	// none. Default "csr-du" — the paper's index-compressed workhorse.
	DefaultFormat string
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives structured records (log/slog): one
	// per failed request with the request id, matrix, client, HTTP
	// status and span timings, plus operational events that previously
	// went only through Logf. A JSON handler makes the stream
	// machine-parseable; nil disables structured logging.
	Logger *slog.Logger
	// Roofline, when non-nil, is the host's bandwidth model; its
	// ceilings are exported as gauges on /metrics.prom so dashboards
	// can plot served bandwidth against the memory wall.
	Roofline *roofline.Model
	// Hooks inject faults for tests; nil in production.
	Hooks *Hooks
}

func (c Config) withDefaults() Config {
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 256 << 20
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxPerClient <= 0 {
		c.MaxPerClient = 16
	}
	if c.MaxConcurrentBuilds <= 0 {
		c.MaxConcurrentBuilds = 2
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.DefaultFormat == "" {
		c.DefaultFormat = "csr-du"
	}
	return c
}

// Server is the SpMV service. Create with New, mount as an
// http.Handler, and shut down with Drain (graceful) or Close (hard).
type Server struct {
	cfg     Config
	reg     *registry
	metrics *Metrics
	mux     *http.ServeMux

	baseCtx context.Context
	cancel  context.CancelFunc

	draining atomic.Bool
	buildSem chan struct{}

	// reqSeq issues the request ids structured log records carry.
	reqSeq atomic.Int64

	clientMu sync.Mutex
	clients  map[string]int
}

// New builds a Server from cfg (zero value fine; see Config).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		reg:      newRegistry(cfg.MemoryBudget),
		metrics:  newMetrics(cfg.MaxBatch),
		mux:      http.NewServeMux(),
		baseCtx:  ctx,
		cancel:   cancel,
		buildSem: make(chan struct{}, cfg.MaxConcurrentBuilds),
		clients:  make(map[string]int),
	}
	s.reg.onEvict = func(*entry) { s.metrics.Evictions.Add(1) }
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /matrices", s.handleUpload)
	s.mux.HandleFunc("GET /matrices", s.handleList)
	s.mux.HandleFunc("GET /matrices/{id}", s.handleInfo)
	s.mux.HandleFunc("DELETE /matrices/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /matrices/{id}/multiply", s.handleMultiply)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.prom", s.handleMetricsProm)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics returns the live counter set (for tests and embedders).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Logf writes one line through the configured Config.Logf; a nil
// logger makes it a no-op. Exported for the daemon wrapper, which
// logs lifecycle events through the same sink as the server's own.
func (s *Server) Logf(format string, args ...any) { s.logf(format, args...) }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	// Without a printf sink, operational lines flow into the structured
	// logger so they are never silently dropped.
	if s.cfg.Logger != nil {
		s.cfg.Logger.Warn(fmt.Sprintf(format, args...))
	}
}

// Drain gracefully shuts the server down: new work is refused with
// 503, every queued request is executed and answered, then the
// executor pools are closed. If ctx expires first, the base context is
// canceled so the backlog fails fast, and Drain still waits for the
// pipeline goroutines to exit — it never leaks them.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, e := range s.reg.drainAll() {
			e.co.drain()
			e.runner.Close()
		}
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel() // abort the backlog; coalescers exit promptly
		<-done
	}
	s.cancel()
	return err
}

// Close hard-stops the server: queued requests are answered 503 and
// the pools are closed. Idempotent, and safe after Drain.
func (s *Server) Close() {
	s.draining.Store(true)
	s.cancel()
	for _, e := range s.reg.drainAll() {
		e.co.stop(errDraining)
		e.runner.Close()
	}
}

// ---- error mapping ----

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) httpError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if encErr := json.NewEncoder(w).Encode(apiError{Error: err.Error()}); encErr != nil {
		s.logf("error response encode: %v", encErr)
	}
}

// statusFor maps pipeline errors to HTTP statuses. Specific sentinels
// come before the generic typed classes they wrap.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining), errors.Is(err, errEvicted):
		return http.StatusServiceUnavailable
	case errors.Is(err, errTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, core.ErrUsage), errors.Is(err, core.ErrCorrupt),
		errors.Is(err, core.ErrTruncated), errors.Is(err, core.ErrShape):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// ---- fairness ----

// clientID attributes a request to a client for the fairness cap: the
// X-Client-ID header when present, else the connection's host part.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// acquireClient admits one in-flight request for id, or reports the
// cap reached.
func (s *Server) acquireClient(id string) bool {
	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	if s.clients[id] >= s.cfg.MaxPerClient {
		return false
	}
	s.clients[id]++
	return true
}

func (s *Server) releaseClient(id string) {
	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	if s.clients[id]--; s.clients[id] <= 0 {
		delete(s.clients, id)
	}
}

// ---- upload / registry handlers ----

// UploadResponse is the JSON answer to a successful upload.
type UploadResponse struct {
	ID        string `json:"id"`
	Format    string `json:"format"`
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	NNZ       int    `json:"nnz"`
	SizeBytes int64  `json:"size_bytes"`
	Cached    bool   `json:"cached"`
}

// failUpload answers a failed upload and emits one structured record,
// mirroring failMultiply for the ingest path.
func (s *Server) failUpload(r *http.Request, w http.ResponseWriter, status int, err error) {
	s.httpError(w, status, err)
	if l := s.cfg.Logger; l != nil {
		l.LogAttrs(r.Context(), slog.LevelWarn, "upload failed",
			slog.String("client", clientID(r)),
			slog.Int("status", status),
			slog.String("error", err.Error()))
	}
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.failUpload(r, w, http.StatusServiceUnavailable, errDraining)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		s.metrics.UploadsRejected.Add(1)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.failUpload(r, w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("server: upload exceeds %d bytes", s.cfg.MaxUploadBytes))
			return
		}
		s.failUpload(r, w, http.StatusBadRequest, fmt.Errorf("server: reading upload: %w", err))
		return
	}
	s.metrics.UploadsTotal.Add(1)
	if h := s.cfg.Hooks; h != nil && h.OnIngest != nil {
		h.OnIngest(body)
	}

	formatName := r.URL.Query().Get("format")
	explicit := formatName != ""
	if !explicit {
		formatName = s.cfg.DefaultFormat
	}
	keyFormat := formatName
	if !explicit && bytes.HasPrefix(body, matfileMagic) {
		// A matfile container stores a built format already; it is
		// admitted as-is, so the cache key ignores the default format.
		// An explicit format request keeps its own key, so the
		// stored-vs-requested match is validated on the build path.
		keyFormat = "asis"
	}
	sum := sha256.Sum256(body)
	key := hex.EncodeToString(sum[:8]) + "-" + keyFormat

	// Cache fast path: no build slot needed.
	if e, ok := s.reg.get(key); ok {
		s.metrics.BuildCacheHits.Add(1)
		s.writeUploadResponse(w, http.StatusOK, e, true)
		return
	}
	select {
	case s.buildSem <- struct{}{}:
		defer func() { <-s.buildSem }()
	default:
		s.metrics.Shed.Add(1)
		s.failUpload(r, w, http.StatusTooManyRequests,
			core.Usagef("server: build concurrency limit reached"))
		return
	}
	e, cached, err := s.reg.getOrBuild(key, func() (*entry, error) {
		return s.ingest(key, body, formatName, explicit)
	})
	if err != nil {
		s.metrics.UploadsRejected.Add(1)
		s.failUpload(r, w, statusFor(err), err)
		return
	}
	if cached {
		s.metrics.BuildCacheHits.Add(1)
		s.writeUploadResponse(w, http.StatusOK, e, true)
		return
	}
	s.metrics.Builds.Add(1)
	s.writeUploadResponse(w, http.StatusCreated, e, false)
}

func (s *Server) writeUploadResponse(w http.ResponseWriter, status int, e *entry, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	resp := UploadResponse{
		ID:        e.id,
		Format:    e.format.Name(),
		Rows:      e.format.Rows(),
		Cols:      e.format.Cols(),
		NNZ:       e.format.NNZ(),
		SizeBytes: e.size,
		Cached:    cached,
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logf("upload response encode: %v", err)
	}
}

// badUpload classifies a parse/verify failure as the client's fault:
// errors already carrying a typed sentinel (and thus a non-500
// mapping) pass through, everything else — older plain-text mmio and
// matfile messages included — is wrapped as corrupt input so the
// handler answers 400, not 500.
func badUpload(err error) error {
	if statusFor(err) != http.StatusInternalServerError {
		return err
	}
	return fmt.Errorf("%w: %w", core.ErrCorrupt, err)
}

// ingest parses, verifies and builds one upload into a registry entry.
// Corrupt bytes fail here with the PR-1 typed sentinels — nothing
// unverified is ever admitted.
func (s *Server) ingest(key string, body []byte, formatName string, explicit bool) (*entry, error) {
	var f core.Format
	var tune *autotune.Report
	if bytes.HasPrefix(body, matfileMagic) {
		// matfile v2: checksum-verified, alloc-bomb-guarded sized read.
		m, err := matfile.ReadSized(bytes.NewReader(body), int64(len(body)))
		if err != nil {
			return nil, badUpload(err)
		}
		// A matfile stores a built format already, so there is nothing
		// for format=auto to tune — it is admitted as-is.
		if explicit && formatName != "auto" && m.Name() != formatName {
			return nil, core.Usagef("server: matfile stores %q, request asked for %q",
				m.Name(), formatName)
		}
		f = m
	} else {
		c, err := mmio.Read(bytes.NewReader(body))
		if err != nil {
			return nil, badUpload(err)
		}
		// Dimension-bomb guard: mmio dims are unchecksummed text, and a
		// header claiming huge rows/cols with few entries would make
		// formats.Build allocate rows-proportional memory (and clients
		// allocate cols-length vectors) before the post-build size check
		// could see it. Estimate the CSR footprint from the claimed dims
		// and reject before building.
		est := int64(c.Rows()+1)*4 + int64(c.Cols())*8 + int64(c.Len())*12
		if est > s.cfg.MemoryBudget {
			return nil, fmt.Errorf("%w (estimated %d > %d bytes)", errTooLarge, est, s.cfg.MemoryBudget)
		}
		if formatName == "auto" {
			// Analytic-only tuning: deterministic, no measured probes on
			// the ingest path. The decision trace lands on the entry and
			// is served by /metrics.
			rep, err := autotune.Tune(c, autotune.Options{Threads: s.cfg.Threads})
			if err != nil {
				return nil, badUpload(err)
			}
			tune = rep
			f, err = autotune.Build(c, rep.Chosen)
			if err != nil {
				return nil, badUpload(err)
			}
		} else if f, err = formats.Build(formatName, c); err != nil {
			return nil, badUpload(err)
		}
		if err := core.Verify(f); err != nil {
			return nil, badUpload(err)
		}
	}
	size := f.SizeBytes()
	if size > s.cfg.MemoryBudget {
		return nil, fmt.Errorf("%w (%d > %d bytes)", errTooLarge, size, s.cfg.MemoryBudget)
	}
	rec := obs.NewRecorder()
	execOpts := parallel.ExecOptions{Threads: s.cfg.Threads, Collector: rec}
	if tune != nil {
		execOpts.Partition = tune.Chosen.Partition
		execOpts.Steal = tune.Chosen.Steal
	}
	runner, err := parallel.New(f, execOpts)
	if err != nil && tune != nil {
		// The tuned scheduler hint may not apply to the built format
		// (e.g. hybrid under nnz partitioning); fall back to the row
		// executor rather than failing the upload.
		runner, err = parallel.New(f, parallel.ExecOptions{Threads: s.cfg.Threads, Collector: rec})
	}
	if err != nil {
		return nil, err
	}
	e := &entry{id: key, format: f, runner: runner, rec: rec, spans: newLifecycleSpans(), size: size, tune: tune}
	e.co = newCoalescer(e, s.cfg.MaxBatch, s.cfg.QueueDepth, s.baseCtx, s.metrics, s.cfg.Hooks)
	return e, nil
}

// MatrixInfo is the JSON shape of GET /matrices and GET /matrices/{id}.
type MatrixInfo struct {
	ID        string `json:"id"`
	Format    string `json:"format"`
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	NNZ       int    `json:"nnz"`
	SizeBytes int64  `json:"size_bytes"`
}

func infoOf(e *entry) MatrixInfo {
	return MatrixInfo{
		ID:        e.id,
		Format:    e.format.Name(),
		Rows:      e.format.Rows(),
		Cols:      e.format.Cols(),
		NNZ:       e.format.NNZ(),
		SizeBytes: e.size,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.snapshot()
	infos := make([]MatrixInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, infoOf(e))
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(infos); err != nil {
		s.logf("list encode: %v", err)
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, fmt.Errorf("server: no matrix %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(infoOf(e)); err != nil {
		s.logf("info encode: %v", err)
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.remove(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, fmt.Errorf("server: no matrix %q", r.PathValue("id")))
		return
	}
	e.co.stop(errEvicted)
	e.runner.Close()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	if _, err := io.WriteString(w, "ok\n"); err != nil {
		s.logf("healthz write: %v", err)
	}
}

// ---- multiply ----

// MultiplyRequest is the JSON body of POST /matrices/{id}/multiply.
type MultiplyRequest struct {
	X []float64 `json:"x"`
}

// MultiplyResponse is its answer.
type MultiplyResponse struct {
	Y []float64 `json:"y"`
}

// requestDeadline resolves the effective deadline: the X-Deadline-Ms
// header when present, capped by the configured default (which is also
// the maximum — a client cannot hold queue slots longer than the
// server is willing to).
func (s *Server) requestDeadline(r *http.Request) time.Duration {
	d := s.cfg.DefaultDeadline
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err == nil && ms > 0 && time.Duration(ms)*time.Millisecond < d {
			d = time.Duration(ms) * time.Millisecond
		}
	}
	return d
}

// failMultiply answers a failed multiply request and emits one
// structured log record for it: the request id, matrix, client, HTTP
// status, error, and span timings (elapsed since handler entry, plus
// the admission span when the request got that far; admissionNs < 0
// means it never was admitted).
func (s *Server) failMultiply(r *http.Request, w http.ResponseWriter, reqID int64, matrix string, status int, err error, start time.Time, admissionNs int64) {
	s.httpError(w, status, err)
	l := s.cfg.Logger
	if l == nil {
		return
	}
	attrs := []slog.Attr{
		slog.Int64("req_id", reqID),
		slog.String("matrix", matrix),
		slog.String("client", clientID(r)),
		slog.Int("status", status),
		slog.String("error", err.Error()),
		slog.Int64("elapsed_ns", int64(time.Since(start))),
	}
	if admissionNs >= 0 {
		attrs = append(attrs, slog.Int64("admission_ns", admissionNs))
	}
	l.LogAttrs(r.Context(), slog.LevelWarn, "multiply failed", attrs...)
}

func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := s.reqSeq.Add(1)
	id := r.PathValue("id")
	s.metrics.RequestsTotal.Add(1)
	if s.draining.Load() {
		s.metrics.Rejected503.Add(1)
		s.failMultiply(r, w, reqID, id, http.StatusServiceUnavailable, errDraining, start, -1)
		return
	}
	e, ok := s.reg.get(id)
	if !ok {
		s.failMultiply(r, w, reqID, id, http.StatusNotFound,
			fmt.Errorf("server: no matrix %q", id), start, -1)
		return
	}

	// Fairness: cap this client's in-flight requests before anything
	// is parsed or queued.
	cid := clientID(r)
	if !s.acquireClient(cid) {
		s.metrics.Shed.Add(1)
		e.shed.Add(1)
		s.failMultiply(r, w, reqID, id, http.StatusTooManyRequests,
			core.Usagef("server: client %q at in-flight cap", cid), start, -1)
		return
	}
	defer s.releaseClient(cid)

	// An n-vector of JSON floats is comfortably under 32 bytes/element.
	maxBody := int64(e.format.Cols())*32 + 4096
	var req MultiplyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		s.failMultiply(r, w, reqID, id, http.StatusBadRequest,
			fmt.Errorf("server: decoding request: %w", err), start, -1)
		return
	}
	if len(req.X) != e.format.Cols() {
		s.failMultiply(r, w, reqID, id, http.StatusBadRequest,
			core.Usagef("server: x has %d elements, matrix has %d columns", len(req.X), e.format.Cols()), start, -1)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestDeadline(r))
	defer cancel()
	mr := &mulReq{ctx: ctx, x: req.X, done: make(chan mulRes, 1)}
	if err := e.co.enqueue(mr); err != nil {
		status := statusFor(err)
		switch status {
		case http.StatusTooManyRequests:
			s.metrics.Shed.Add(1)
			e.shed.Add(1)
		case http.StatusServiceUnavailable:
			s.metrics.Rejected503.Add(1)
		}
		s.failMultiply(r, w, reqID, id, status, err, start, -1)
		return
	}
	// The request is admitted: admission and total record for exactly
	// this set — every path below, success or failure, exits through
	// the deferred total record, so admission <= total holds per
	// request and in aggregate.
	admissionNs := int64(time.Since(start))
	e.spans.admission.Record(admissionNs)
	defer e.spans.total.RecordSince(start)

	select {
	case res := <-mr.done:
		if res.err != nil {
			status := statusFor(res.err)
			switch status {
			case http.StatusGatewayTimeout:
				s.metrics.DeadlineExceeded.Add(1)
			case http.StatusServiceUnavailable:
				s.metrics.Rejected503.Add(1)
			default:
				s.metrics.Failures.Add(1)
			}
			s.failMultiply(r, w, reqID, id, status, res.err, start, admissionNs)
			return
		}
		s.metrics.Served.Add(1)
		e.served.Add(1)
		s.writeVector(w, e.spans, res.y)
	case <-ctx.Done():
		// Deadline or client disconnect while queued or executing. The
		// result channel is buffered, so a late delivery parks there
		// and is collected with the request — no goroutine waits.
		s.metrics.DeadlineExceeded.Add(1)
		s.failMultiply(r, w, reqID, id, http.StatusGatewayTimeout, ctx.Err(), start, admissionNs)
	}
}

// writeVector sends the result with a slow-consumer write deadline: a
// client that stops reading cannot pin the handler past WriteTimeout.
// The write span times the encode — the slice of request latency spent
// pushing bytes to the client rather than computing.
func (s *Server) writeVector(w http.ResponseWriter, spans *lifecycleSpans, y []float64) {
	rc := http.NewResponseController(w)
	if err := rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
		// Recorders and exotic transports don't support deadlines; the
		// response still goes out, just unbounded.
		s.logf("set write deadline: %v", err)
	}
	w.Header().Set("Content-Type", "application/json")
	wstart := time.Now()
	if err := json.NewEncoder(w).Encode(MultiplyResponse{Y: y}); err != nil {
		s.logf("result encode: %v", err)
	}
	spans.write.RecordSince(wstart)
}
