package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"spmv/internal/obs"
)

// This file is the Prometheus text-format (0.0.4) exposition of the
// server's metrics: the same counters /metrics serves as JSON, plus
// the lifecycle span histograms, Go runtime health, and the roofline
// ceilings — hand-rolled against the documented line format rather
// than pulling in a client library. The format is small: HELP/TYPE
// comments per family, then `name{labels} value` samples; histograms
// expose cumulative `_bucket{le=...}` series where the +Inf bucket
// equals `_count`.

// spanBucketNs are the latency bucket upper bounds for the span
// histograms, in nanoseconds: decades from 1µs to 10s — wide enough
// for an in-memory SpMV service where admission is microseconds and a
// deadline-bound execute tops out at seconds.
var spanBucketNs = []int64{
	1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
}

// promWriter emits text-format samples, latching the first write
// error like the repo's other renderers.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) f(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// header emits the HELP/TYPE preamble for a metric family.
func (p *promWriter) header(name, help, typ string) {
	p.f("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// label renders one name="value" pair with escaping.
func label(name, value string) string {
	return name + `="` + promEscape(value) + `"`
}

// sample emits `name{labels} value`; pass no labels for a bare sample.
func (p *promWriter) sample(name string, value string, labels ...string) {
	if len(labels) == 0 {
		p.f("%s %s\n", name, value)
		return
	}
	p.f("%s{%s} %s\n", name, strings.Join(labels, ","), value)
}

func promInt(v int64) string   { return strconv.FormatInt(v, 10) }
func promUint(v uint64) string { return strconv.FormatUint(v, 10) }
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// counter emits a single-sample counter family.
func (p *promWriter) counter(name, help string, v int64) {
	p.header(name, help, "counter")
	p.sample(name, promInt(v))
}

// gauge emits a single-sample gauge family.
func (p *promWriter) gauge(name, help string, v string) {
	p.header(name, help, "gauge")
	p.sample(name, v)
}

// histogram emits one obs.Histogram as a Prometheus histogram series
// under the family name with the given fixed labels. Bucket bounds are
// nanoseconds, exposed in seconds; the +Inf bucket equals _count by
// construction.
func (p *promWriter) histogram(name string, h *obs.Histogram, labels []string) {
	cum := h.CumulativeLE(spanBucketNs)
	for i, bound := range spanBucketNs {
		le := label("le", promFloat(float64(bound)/1e9))
		p.sample(name+"_bucket", promInt(cum[i]), append(append([]string{}, labels...), le)...)
	}
	p.sample(name+"_bucket", promInt(h.Count()), append(append([]string{}, labels...), `le="+Inf"`)...)
	p.sample(name+"_sum", promFloat(float64(h.Sum())/1e9), labels...)
	p.sample(name+"_count", promInt(h.Count()), labels...)
}

// writeProm renders the full exposition document.
func (s *Server) writeProm(w io.Writer) error {
	p := &promWriter{w: w}
	m := s.metrics

	p.counter("spmv_uploads_total", "Upload requests admitted to ingest.", m.UploadsTotal.Load())
	p.counter("spmv_uploads_rejected_total", "Corrupt, oversized or unsupported uploads.", m.UploadsRejected.Load())
	p.counter("spmv_builds_total", "Matrices actually built.", m.Builds.Load())
	p.counter("spmv_build_cache_hits_total", "Uploads answered by the content cache.", m.BuildCacheHits.Load())
	p.counter("spmv_evictions_total", "LRU evictions under the memory budget.", m.Evictions.Load())
	p.counter("spmv_requests_total", "Multiply requests received.", m.RequestsTotal.Load())
	p.counter("spmv_served_total", "Multiply requests answered 200.", m.Served.Load())
	p.counter("spmv_shed_total", "429 responses: queue full or per-client cap.", m.Shed.Load())
	p.counter("spmv_rejected_503_total", "503 responses: draining or evicted mid-queue.", m.Rejected503.Load())
	p.counter("spmv_deadline_exceeded_total", "504 responses: deadline or disconnect.", m.DeadlineExceeded.Load())
	p.counter("spmv_failures_total", "500 responses: execution errors.", m.Failures.Load())
	p.counter("spmv_panics_recovered_total", "Panics contained by the degradation path.", m.PanicsRecovered.Load())

	p.header("spmv_coalesce_batches_total", "Executed SpMM panels by coalesced width.", "counter")
	widths := m.BatchWidths()
	for k := 1; k < len(widths); k++ {
		p.sample("spmv_coalesce_batches_total", promInt(widths[k]), label("width", strconv.Itoa(k)))
	}

	entries, bytes := s.reg.stats()
	p.gauge("spmv_registry_entries", "Matrices resident in the registry.", promInt(int64(entries)))
	p.gauge("spmv_registry_bytes", "Summed matrix bytes in the registry.", promInt(bytes))

	rt := readRuntimeHealth()
	p.gauge("spmv_goroutines", "Live goroutine count.", promInt(int64(rt.Goroutines)))
	p.gauge("spmv_heap_inuse_bytes", "Heap memory in active spans.", promUint(rt.HeapInuseBytes))
	p.gauge("spmv_heap_alloc_bytes", "Live allocated heap bytes.", promUint(rt.HeapAllocBytes))
	p.counter("spmv_gc_cycles_total", "Completed garbage collections.", int64(rt.NumGC))
	p.header("spmv_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", "counter")
	p.sample("spmv_gc_pause_seconds_total", promFloat(float64(rt.GCPauseTotalNs)/1e9))

	if r := s.cfg.Roofline; r != nil && len(r.Ceilings) > 0 {
		p.header("spmv_roofline_ceiling_gbps", "Host memory-bandwidth ceiling by thread count (0 = thread-independent analytic peak).", "gauge")
		threads := make([]int, 0, len(r.Ceilings))
		for t := range r.Ceilings {
			threads = append(threads, t)
		}
		sort.Ints(threads)
		for _, t := range threads {
			p.sample("spmv_roofline_ceiling_gbps", promFloat(r.Ceilings[t]),
				label("source", r.Source), label("threads", strconv.Itoa(t)))
		}
	}

	// Per-matrix series, matrix ids sorted for deterministic output.
	es := s.reg.snapshot()
	sort.Slice(es, func(i, j int) bool { return es[i].id < es[j].id })

	p.header("spmv_matrix_served_total", "Multiply requests served, per matrix.", "counter")
	for _, e := range es {
		p.sample("spmv_matrix_served_total", promInt(e.served.Load()), label("matrix", e.id))
	}
	p.header("spmv_matrix_shed_total", "Multiply requests shed, per matrix.", "counter")
	for _, e := range es {
		p.sample("spmv_matrix_shed_total", promInt(e.shed.Load()), label("matrix", e.id))
	}
	p.header("spmv_matrix_queue_depth", "Admission queue depth, per matrix.", "gauge")
	for _, e := range es {
		p.sample("spmv_matrix_queue_depth", promInt(int64(e.co.depth())), label("matrix", e.id))
	}

	p.header("spmv_request_span_seconds", "Request lifecycle span latency (admission, queue, coalesce, execute, write, total), per matrix.", "histogram")
	for _, e := range es {
		for _, span := range SpanNames() {
			p.histogram("spmv_request_span_seconds", e.spans.byName(span),
				[]string{label("matrix", e.id), label("span", span)})
		}
	}
	return p.err
}

func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.writeProm(w); err != nil {
		// The status line is already out; nothing useful can be sent.
		s.logf("prom metrics write: %v", err)
	}
}
