package server

import (
	"spmv/internal/obs"
)

// Span names, in pipeline order. Each is a per-matrix latency
// histogram over one slice of the request lifecycle:
//
//	admission — handler entry → enqueue accepted (auth, fairness cap,
//	            body decode, validation; only admitted requests record)
//	queue     — enqueue → the coalescer takes the request
//	coalesce  — taken → its batch starts executing (panel assembly)
//	execute   — the batch's kernel execution
//	write     — encoding the result vector to the client
//	total     — handler entry → handler exit, for every admitted
//	            request (success, failure and deadline paths alike)
//
// admission and total are recorded for exactly the same request set,
// and admission's interval is a prefix of total's — so per request,
// and therefore in aggregate (Sum, Max), admission <= total.
const (
	SpanAdmission = "admission"
	SpanQueue     = "queue"
	SpanCoalesce  = "coalesce"
	SpanExecute   = "execute"
	SpanWrite     = "write"
	SpanTotal     = "total"
)

// SpanNames lists the lifecycle spans in pipeline order.
func SpanNames() []string {
	return []string{SpanAdmission, SpanQueue, SpanCoalesce, SpanExecute, SpanWrite, SpanTotal}
}

// lifecycleSpans is one matrix's set of span histograms. Allocated
// once at ingest; recording is lock-free (obs.Histogram) so the
// request path stays allocation-free.
type lifecycleSpans struct {
	admission *obs.Histogram
	queue     *obs.Histogram
	coalesce  *obs.Histogram
	execute   *obs.Histogram
	write     *obs.Histogram
	total     *obs.Histogram
}

func newLifecycleSpans() *lifecycleSpans {
	return &lifecycleSpans{
		admission: obs.NewHistogram(),
		queue:     obs.NewHistogram(),
		coalesce:  obs.NewHistogram(),
		execute:   obs.NewHistogram(),
		write:     obs.NewHistogram(),
		total:     obs.NewHistogram(),
	}
}

// byName returns the histogram for a span name, nil for unknown names.
func (l *lifecycleSpans) byName(name string) *obs.Histogram {
	switch name {
	case SpanAdmission:
		return l.admission
	case SpanQueue:
		return l.queue
	case SpanCoalesce:
		return l.coalesce
	case SpanExecute:
		return l.execute
	case SpanWrite:
		return l.write
	case SpanTotal:
		return l.total
	}
	return nil
}

// snapshot summarizes every span for the metrics document.
func (l *lifecycleSpans) snapshot() map[string]obs.HistogramSnapshot {
	out := make(map[string]obs.HistogramSnapshot, 6)
	for _, name := range SpanNames() {
		out[name] = l.byName(name).SnapshotHist()
	}
	return out
}
