package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"spmv/internal/server/faulttest"
)

// FuzzServeUpload drives arbitrary bytes through the upload endpoint
// and, when one is admitted, through a multiply — the full
// attacker-reachable parse path (sniff, mmio/matfile decode, verify,
// build, execute). The property: the server never crashes, answers
// only sane statuses, and anything admitted serves finite-length
// results. Seeded with the valid payloads and the PR-1-style
// corruption corpus.
func FuzzServeUpload(f *testing.F) {
	mmioSeed := faulttest.ValidMMIO(41, 20)
	f.Add(mmioSeed)
	for _, format := range []string{"csr", "csr-du", "csr-vi", "csr-du-vi", "dcsr"} {
		f.Add(faulttest.ValidMatfile(41, 16, format))
	}
	for _, c := range faulttest.CorruptUploads(mmioSeed) {
		f.Add(c)
	}
	for _, c := range faulttest.CorruptUploads(faulttest.ValidMatfile(42, 16, "csr")) {
		f.Add(c)
	}
	f.Add(faulttest.AllocBombMatfile(faulttest.ValidMatfile(43, 16, "csr")))

	s := New(Config{
		// Tight budget: the fuzzer cannot accumulate matrices, and the
		// eviction path gets fuzzed for free.
		MemoryBudget:   1 << 20,
		MaxUploadBytes: 1 << 20,
		Threads:        1,
	})
	defer s.Close()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/matrices", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusCreated, http.StatusOK:
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusTooManyRequests:
			return
		default:
			t.Fatalf("upload: unexpected status %d: %s", w.Code, w.Body.String())
		}
		var resp UploadResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("accepted upload with undecodable response: %v", err)
		}
		x := make([]float64, resp.Cols)
		for i := range x {
			x[i] = 1
		}
		mb, err := json.Marshal(MultiplyRequest{X: x})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		mreq := httptest.NewRequest("POST", "/matrices/"+resp.ID+"/multiply", bytes.NewReader(mb))
		mw := httptest.NewRecorder()
		s.ServeHTTP(mw, mreq)
		// 404 can follow an eviction under the tight budget; anything
		// else must be a clean 200 with a full-length result.
		if mw.Code == http.StatusNotFound {
			return
		}
		if mw.Code != http.StatusOK {
			t.Fatalf("multiply on admitted matrix: status %d: %s", mw.Code, mw.Body.String())
		}
		var mresp MultiplyResponse
		if err := json.Unmarshal(mw.Body.Bytes(), &mresp); err != nil {
			t.Fatalf("multiply response: %v", err)
		}
		if len(mresp.Y) != resp.Rows {
			t.Fatalf("result has %d rows, matrix has %d", len(mresp.Y), resp.Rows)
		}
	})
}
