package server

import (
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"

	"spmv/internal/obs"
)

// RuntimeHealth is the Go runtime's vital signs, collected only when a
// snapshot is taken (metrics endpoints) — never on the request path,
// so the allocation gate on the handlers is unaffected.
type RuntimeHealth struct {
	// Goroutines is the live goroutine count — a leak in the pipeline
	// (coalescer loops, executor workers) shows up here first.
	Goroutines int `json:"goroutines"`
	// GCPauseTotalNs is the cumulative stop-the-world pause time; its
	// growth rate says how much latency the collector is injecting.
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	// NumGC is the completed collection count.
	NumGC uint32 `json:"num_gc"`
	// HeapInuseBytes is the heap memory in active spans; with the
	// registry's budget it bounds the process footprint.
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	// HeapAllocBytes is the live allocated heap.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
}

func readRuntimeHealth() RuntimeHealth {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeHealth{
		Goroutines:     runtime.NumGoroutine(),
		GCPauseTotalNs: ms.PauseTotalNs,
		NumGC:          ms.NumGC,
		HeapInuseBytes: ms.HeapInuse,
		HeapAllocBytes: ms.HeapAlloc,
	}
}

// Metrics is the server's live counter set, exposed on /metrics and —
// when the host process publishes it — through expvar. All fields are
// atomics: request handlers, the coalescer loops, and the metrics
// endpoint touch them concurrently.
type Metrics struct {
	// Registry traffic.
	UploadsTotal    atomic.Int64 // upload requests admitted to ingest
	UploadsRejected atomic.Int64 // corrupt/oversized/unsupported uploads
	Builds          atomic.Int64 // matrices actually built
	BuildCacheHits  atomic.Int64 // uploads answered by the content cache
	Evictions       atomic.Int64 // LRU evictions under the memory budget

	// Request pipeline.
	RequestsTotal    atomic.Int64 // multiply requests received
	Served           atomic.Int64 // multiply requests answered 200
	Shed             atomic.Int64 // 429s: queue full or per-client cap
	Rejected503      atomic.Int64 // 503s: draining or evicted mid-queue
	DeadlineExceeded atomic.Int64 // 504s: request deadline or disconnect
	Failures         atomic.Int64 // 500s: execution errors
	PanicsRecovered  atomic.Int64 // panics contained by the degradation path

	// widths[k] counts coalesced batches of width k; widths[0] is
	// unused. Sized at construction to the coalescer's MaxBatch.
	widths []atomic.Int64
}

func newMetrics(maxBatch int) *Metrics {
	return &Metrics{widths: make([]atomic.Int64, maxBatch+1)}
}

// BatchWidths returns the coalesced-batch width histogram: index k
// holds the number of executed panels of width k (index 0 is unused).
func (m *Metrics) BatchWidths() []int64 {
	out := make([]int64, len(m.widths))
	for i := range m.widths {
		out[i] = m.widths[i].Load()
	}
	return out
}

func (m *Metrics) recordWidth(k int) {
	if k >= 1 && k < len(m.widths) {
		m.widths[k].Add(1)
	}
}

// MatrixMetrics is the per-matrix slice of a metrics snapshot.
type MatrixMetrics struct {
	Format     string       `json:"format"`
	Rows       int          `json:"rows"`
	Cols       int          `json:"cols"`
	NNZ        int          `json:"nnz"`
	SizeBytes  int64        `json:"size_bytes"`
	QueueDepth int          `json:"queue_depth"`
	Served     int64        `json:"served"`
	Shed       int64        `json:"shed"`
	Obs        obs.Snapshot `json:"obs"`
	// Spans summarizes the request-lifecycle latency histograms
	// (admission, queue, coalesce, execute, write, total), keyed by
	// span name. All values are nanoseconds.
	Spans map[string]obs.HistogramSnapshot `json:"spans"`
	// Tune summarizes the autotuner's decision for format=auto uploads;
	// absent for explicitly-chosen formats.
	Tune *TuneDecision `json:"tune,omitempty"`
}

// TuneDecision is the compact /metrics view of an autotune report: the
// chosen spec and the headline numbers, not the full candidate trace
// (spmvbench -auto emits that).
type TuneDecision struct {
	Format     string `json:"format"`
	Partition  string `json:"partition,omitempty"`
	Steal      bool   `json:"steal,omitempty"`
	PredBytes  int64  `json:"pred_bytes"`
	Candidates int    `json:"candidates"`
	PriorsUsed bool   `json:"priors_used,omitempty"`
	Probed     bool   `json:"probed,omitempty"`
}

// MetricsSnapshot is the JSON document served on /metrics.
type MetricsSnapshot struct {
	UploadsTotal     int64 `json:"uploads_total"`
	UploadsRejected  int64 `json:"uploads_rejected"`
	Builds           int64 `json:"builds"`
	BuildCacheHits   int64 `json:"build_cache_hits"`
	Evictions        int64 `json:"evictions"`
	RequestsTotal    int64 `json:"requests_total"`
	Served           int64 `json:"served"`
	Shed             int64 `json:"shed"`
	Rejected503      int64 `json:"rejected_503"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Failures         int64 `json:"failures"`
	PanicsRecovered  int64 `json:"panics_recovered"`

	RegistryEntries int   `json:"registry_entries"`
	RegistryBytes   int64 `json:"registry_bytes"`

	// Runtime is the Go runtime's health at snapshot time.
	Runtime RuntimeHealth `json:"runtime"`

	// CoalesceWidths maps batch width (as a decimal string, for JSON
	// object keys) to the number of panels executed at that width.
	CoalesceWidths map[string]int64 `json:"coalesce_widths"`

	Matrices map[string]MatrixMetrics `json:"matrices"`
}

// Snapshot assembles the full metrics document.
func (s *Server) Snapshot() MetricsSnapshot {
	m := s.metrics
	snap := MetricsSnapshot{
		UploadsTotal:     m.UploadsTotal.Load(),
		UploadsRejected:  m.UploadsRejected.Load(),
		Builds:           m.Builds.Load(),
		BuildCacheHits:   m.BuildCacheHits.Load(),
		Evictions:        m.Evictions.Load(),
		RequestsTotal:    m.RequestsTotal.Load(),
		Served:           m.Served.Load(),
		Shed:             m.Shed.Load(),
		Rejected503:      m.Rejected503.Load(),
		DeadlineExceeded: m.DeadlineExceeded.Load(),
		Failures:         m.Failures.Load(),
		PanicsRecovered:  m.PanicsRecovered.Load(),
		CoalesceWidths:   map[string]int64{},
		Matrices:         map[string]MatrixMetrics{},
	}
	for k := 1; k < len(m.widths); k++ {
		if n := m.widths[k].Load(); n > 0 {
			snap.CoalesceWidths[strconv.Itoa(k)] = n
		}
	}
	entries, bytes := s.reg.stats()
	snap.RegistryEntries = entries
	snap.RegistryBytes = bytes
	snap.Runtime = readRuntimeHealth()
	for _, e := range s.reg.snapshot() {
		mm := MatrixMetrics{
			Format:     e.format.Name(),
			Rows:       e.format.Rows(),
			Cols:       e.format.Cols(),
			NNZ:        e.format.NNZ(),
			SizeBytes:  e.size,
			QueueDepth: e.co.depth(),
			Served:     e.served.Load(),
			Shed:       e.shed.Load(),
			Obs:        e.rec.Snapshot(),
			Spans:      e.spans.snapshot(),
		}
		if t := e.tune; t != nil {
			mm.Tune = &TuneDecision{
				Format:     t.Chosen.Name(),
				Partition:  t.Chosen.Partition,
				Steal:      t.Chosen.Steal,
				PredBytes:  t.ChosenPredBytes,
				Candidates: len(t.Candidates),
				PriorsUsed: t.PriorsUsed,
				Probed:     t.Probed,
			}
		}
		snap.Matrices[e.id] = mm
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Snapshot()); err != nil {
		// The header is already out; nothing useful can be written.
		s.logf("metrics encode: %v", err)
	}
}
