package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"spmv/internal/server/faulttest"
)

// TestLifecycleSpansRecorded is the span soak: concurrent multiply
// traffic must leave every lifecycle span histogram non-empty, with
// admission and total recorded for the same request set and
// admission <= total both per aggregate sum and at the max.
func TestLifecycleSpansRecorded(t *testing.T) {
	s := newTestServer(t, Config{Threads: 2, MaxBatch: 4})
	body := faulttest.ValidMMIO(3, 40)
	resp := upload(t, s, body, "csr")
	x := testVec(resp.Cols)

	const workers = 4
	const perWorker = 10
	var wg sync.WaitGroup
	var okCount, failCount int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				code, _ := multiply(t, s, resp.ID, x, nil)
				mu.Lock()
				if code == http.StatusOK {
					okCount++
				} else {
					failCount++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if okCount == 0 {
		t.Fatalf("no request succeeded (%d failures)", failCount)
	}

	e, ok := s.reg.get(resp.ID)
	if !ok {
		t.Fatal("entry vanished")
	}
	for _, name := range SpanNames() {
		h := e.spans.byName(name)
		if h == nil {
			t.Fatalf("span %q has no histogram", name)
		}
		if h.Count() == 0 {
			t.Errorf("span %q histogram empty", name)
		}
	}

	adm, tot := e.spans.admission, e.spans.total
	if adm.Count() != tot.Count() {
		t.Errorf("admission count %d != total count %d — recorded for different request sets",
			adm.Count(), tot.Count())
	}
	if adm.Sum() > tot.Sum() {
		t.Errorf("admission sum %d > total sum %d", adm.Sum(), tot.Sum())
	}
	if adm.Max() > tot.Max() {
		t.Errorf("admission max %d > total max %d", adm.Max(), tot.Max())
	}
	// Executed work implies queue/coalesce/execute counts match the
	// taken requests; write records once per 200.
	if got := e.spans.write.Count(); got != okCount {
		t.Errorf("write span count %d, want %d (one per 200)", got, okCount)
	}
	if e.spans.execute.Count() == 0 || e.spans.queue.Count() == 0 {
		t.Errorf("execute/queue spans empty: %d/%d", e.spans.execute.Count(), e.spans.queue.Count())
	}

	// The spans surface per matrix in the JSON snapshot.
	snap := s.Snapshot()
	mm, ok := snap.Matrices[resp.ID]
	if !ok {
		t.Fatal("matrix missing from snapshot")
	}
	for _, name := range SpanNames() {
		hs, ok := mm.Spans[name]
		if !ok {
			t.Errorf("snapshot missing span %q", name)
			continue
		}
		if hs.Count == 0 {
			t.Errorf("snapshot span %q empty", name)
		}
		if hs.Count > 0 && (hs.P50Ns < hs.MinNs || hs.MaxNs < hs.P99Ns) {
			t.Errorf("snapshot span %q quantiles inconsistent: %+v", name, hs)
		}
	}
	if snap.Runtime.Goroutines <= 0 {
		t.Errorf("runtime health missing: %+v", snap.Runtime)
	}
	if snap.Runtime.HeapInuseBytes == 0 {
		t.Errorf("heap in-use reads zero")
	}
}

// syncBuffer serializes writes so the slog JSON handler can be read
// back safely after concurrent handler calls.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for _, l := range strings.Split(b.buf.String(), "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}

// TestFailedRequestsLogStructured pins satellite 1: exactly one
// structured record per failed multiply request, carrying the request
// id, matrix, status and error; successful requests log nothing.
func TestFailedRequestsLogStructured(t *testing.T) {
	var buf syncBuffer
	s := newTestServer(t, Config{
		Threads: 2,
		Logger:  slog.New(slog.NewJSONHandler(&buf, nil)),
		// Operational printf lines (e.g. the recorder's unsupported write
		// deadline) go to Logf so the structured stream holds exactly the
		// per-request failure records.
		Logf: func(string, ...any) {},
	})
	body := faulttest.ValidMMIO(5, 30)
	resp := upload(t, s, body, "csr")

	// A successful request must not log.
	if code, _ := multiply(t, s, resp.ID, testVec(resp.Cols), nil); code != http.StatusOK {
		t.Fatalf("healthy multiply: status %d", code)
	}
	if n := len(buf.Lines()); n != 0 {
		t.Fatalf("successful request produced %d log records: %v", n, buf.Lines())
	}

	// Three failures, three distinct causes.
	fails := 0
	if code, _ := multiply(t, s, "no-such-id", testVec(resp.Cols), nil); code != http.StatusNotFound {
		t.Fatalf("unknown matrix: status %d", code)
	}
	fails++
	if code, _ := multiply(t, s, resp.ID, testVec(resp.Cols+1), nil); code != http.StatusBadRequest {
		t.Fatalf("wrong length: status %d", code)
	}
	fails++
	if w := do(s, "POST", "/matrices/"+resp.ID+"/multiply", []byte("{not json"), nil); w.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", w.Code)
	}
	fails++

	lines := buf.Lines()
	if len(lines) != fails {
		t.Fatalf("%d failures produced %d structured records:\n%s",
			fails, len(lines), strings.Join(lines, "\n"))
	}
	seenIDs := map[float64]bool{}
	for _, l := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("record is not JSON: %v\n%s", err, l)
		}
		if rec["msg"] != "multiply failed" {
			t.Errorf("msg = %v", rec["msg"])
		}
		for _, key := range []string{"req_id", "matrix", "client", "status", "error", "elapsed_ns"} {
			if _, ok := rec[key]; !ok {
				t.Errorf("record missing %q: %s", key, l)
			}
		}
		if id, ok := rec["req_id"].(float64); ok {
			if seenIDs[id] {
				t.Errorf("duplicate req_id %v", id)
			}
			seenIDs[id] = true
		}
		if st, ok := rec["status"].(float64); !ok || st < 400 {
			t.Errorf("status %v not an error status", rec["status"])
		}
	}

	// Upload failures log too.
	before := len(buf.Lines())
	if w := do(s, "POST", "/matrices", []byte("garbage matrix"), nil); w.Code != http.StatusBadRequest {
		t.Fatalf("garbage upload: status %d", w.Code)
	}
	after := buf.Lines()
	if len(after) != before+1 {
		t.Fatalf("garbage upload logged %d records, want 1", len(after)-before)
	}
	if !strings.Contains(after[len(after)-1], "upload failed") {
		t.Errorf("upload failure record: %s", after[len(after)-1])
	}
}
