package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"spmv/internal/core"
)

// Sentinel errors of the request pipeline, mapped to HTTP statuses by
// the handlers.
var (
	errQueueFull = core.Usagef("server: admission queue full")
	errEvicted   = core.Usagef("server: matrix evicted")
	errDraining  = core.Usagef("server: draining")
)

// mulReq is one queued y = A·x request. done is buffered so the
// coalescer's delivery never blocks on a handler that gave up: the
// result lands in the buffer and is garbage-collected with the
// request. The timestamps mark the lifecycle boundaries the span
// histograms measure; enqueuedAt is set by enqueue, takenAt by take.
type mulReq struct {
	ctx        context.Context
	x          []float64
	done       chan mulRes
	enqueuedAt time.Time
	takenAt    time.Time
}

type mulRes struct {
	y   []float64
	err error
}

// coalescer turns concurrent single-vector requests on one matrix into
// SpMM panels. One goroutine per matrix owns the executor: it drains
// up to maxK queued requests at a time and runs them as one RunBatch
// panel, so under load the matrix stream is read once per k results
// (PR 4: k=8 costs 0.25–0.36× the bytes/vector of k=1). The queue is
// the admission bound — enqueue on a full queue fails immediately with
// errQueueFull, which the handler turns into a 429.
type coalescer struct {
	e        *entry
	maxK     int
	queueCap int
	baseCtx  context.Context // canceled only by server Close
	metrics  *Metrics
	hooks    *Hooks

	mu       sync.Mutex
	pending  []*mulReq
	stopped  bool
	stopErr  error
	graceful bool

	wake chan struct{} // buffered 1: "pending is non-empty"
	quit chan struct{}
	done chan struct{} // closed when the loop has exited
}

func newCoalescer(e *entry, maxK, queueCap int, baseCtx context.Context, m *Metrics, h *Hooks) *coalescer {
	c := &coalescer{
		e:        e,
		maxK:     maxK,
		queueCap: queueCap,
		baseCtx:  baseCtx,
		metrics:  m,
		hooks:    h,
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.loop()
	return c
}

// enqueue admits a request or rejects it immediately: errQueueFull
// when the bounded queue is at capacity, the stop error when the
// matrix is shutting down. It never blocks and never spawns.
func (c *coalescer) enqueue(req *mulReq) error {
	c.mu.Lock()
	if c.stopped {
		err := c.stopErr
		c.mu.Unlock()
		return err
	}
	if len(c.pending) >= c.queueCap {
		c.mu.Unlock()
		return errQueueFull
	}
	req.enqueuedAt = time.Now()
	c.pending = append(c.pending, req)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return nil
}

// depth reports the current queue depth.
func (c *coalescer) depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// stop shuts the coalescer down, failing queued requests with cause,
// and waits for the loop to exit. Idempotent.
func (c *coalescer) stop(cause error) {
	c.shutdown(cause, false)
}

// drain shuts the coalescer down gracefully: no new requests are
// admitted, but everything already queued is executed before the loop
// exits. Idempotent against stop (first caller's policy wins).
func (c *coalescer) drain() {
	c.shutdown(errDraining, true)
}

func (c *coalescer) shutdown(cause error, graceful bool) {
	c.mu.Lock()
	if !c.stopped {
		c.stopped = true
		c.stopErr = cause
		c.graceful = graceful
		close(c.quit)
	}
	c.mu.Unlock()
	<-c.done
}

// take removes up to maxK runnable requests from the queue. Requests
// whose context is already done are answered with the context error
// here, before they cost any panel work.
func (c *coalescer) take() []*mulReq {
	c.mu.Lock()
	defer c.mu.Unlock()
	batch := make([]*mulReq, 0, c.maxK)
	now := time.Now()
	for len(c.pending) > 0 && len(batch) < c.maxK {
		req := c.pending[0]
		copy(c.pending, c.pending[1:])
		c.pending[len(c.pending)-1] = nil
		c.pending = c.pending[:len(c.pending)-1]
		if err := req.ctx.Err(); err != nil {
			req.done <- mulRes{err: err}
			continue
		}
		req.takenAt = now
		c.e.spans.queue.Record(int64(now.Sub(req.enqueuedAt)))
		batch = append(batch, req)
	}
	return batch
}

func (c *coalescer) loop() {
	defer close(c.done)
	for {
		select {
		case <-c.wake:
			for {
				batch := c.take()
				if len(batch) == 0 {
					break
				}
				c.execute(batch)
			}
		case <-c.quit:
			// Graceful drain executes the backlog; a hard stop fails it.
			for {
				batch := c.take()
				if len(batch) == 0 {
					return
				}
				if c.graceful {
					c.execute(batch)
				} else {
					for _, req := range batch {
						req.done <- mulRes{err: c.stopErr}
					}
				}
			}
		}
	}
}

// execute runs one coalesced batch and delivers each request's result.
// The whole step is panic-contained: the executors already recover
// kernel panics chunk-by-chunk, and this recover catches everything
// else (fault hooks, panel assembly), so one poisoned batch costs its
// own requests a 500 and nothing more — the loop, the executor pool
// and every other queued request stay healthy.
func (c *coalescer) execute(batch []*mulReq) {
	k := len(batch)
	c.metrics.recordWidth(k)
	execStart := time.Now()
	for _, req := range batch {
		c.e.spans.coalesce.Record(int64(execStart.Sub(req.takenAt)))
	}
	rows, cols := c.e.format.Rows(), c.e.format.Cols()
	ys, err := func() (ys [][]float64, err error) {
		defer func() {
			if r := recover(); r != nil {
				c.metrics.PanicsRecovered.Add(1)
				err = fmt.Errorf("server: recovered panic in batch of %d: %v", k, r)
			}
		}()
		if h := c.hooks; h != nil && h.BeforeExecute != nil {
			if err := h.BeforeExecute(c.e.id, k); err != nil {
				return nil, err
			}
		}
		if k == 1 {
			// Width-1 delegates to the scalar kernel, preserving the
			// bitwise-identical-to-Run guarantee end to end.
			y := make([]float64, rows)
			if err := c.e.runner.RunCtx(batch[0].ctx, y, batch[0].x); err != nil {
				return nil, err
			}
			return [][]float64{y}, nil
		}
		xp := make([]float64, cols*k)
		yp := make([]float64, rows*k)
		for i, req := range batch {
			for j, v := range req.x {
				xp[j*k+i] = v
			}
		}
		// The batch runs under the server's context, not any one
		// request's: a request deadline bounds queueing delay, and a
		// panel in flight completes for the sake of its batchmates.
		if err := c.e.runner.RunBatchCtx(c.baseCtx, yp, xp, k); err != nil {
			return nil, err
		}
		ys = make([][]float64, k)
		for i := range batch {
			y := make([]float64, rows)
			for r := 0; r < rows; r++ {
				y[r] = yp[r*k+i]
			}
			ys[i] = y
		}
		return ys, nil
	}()
	// One execute-span record per request: batchmates share the panel,
	// so each is charged the full panel time it waited through.
	execNs := int64(time.Since(execStart))
	for i, req := range batch {
		c.e.spans.execute.Record(execNs)
		if err != nil {
			req.done <- mulRes{err: err}
			continue
		}
		req.done <- mulRes{y: ys[i]}
	}
}
