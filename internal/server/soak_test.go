package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spmv/internal/server/faulttest"
)

// waitGoroutines polls until the goroutine count drops to at most
// want, or the deadline passes.
func waitGoroutines(want int, d time.Duration) int {
	deadline := time.Now().Add(d)
	for {
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(deadline) {
			return n
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSoakFaultInjection is the acceptance soak: a real HTTP server
// under sustained overload with injected kernel panics, corrupt
// uploads, canceled requests and slow clients must shed load with
// 429/503 (never queue unboundedly), keep answering healthy requests,
// recover every panic, leak no goroutines, and drain cleanly.
func TestSoakFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	// Every 5th batch panics ("kernel panic"), every 7th fails typed,
	// and every batch is slowed so the admission queue genuinely fills.
	hooks := &Hooks{BeforeExecute: faulttest.Chain(
		faulttest.SlowDown(2*time.Millisecond),
		faulttest.PanicEvery(5),
		faulttest.FailEvery(7),
	)}
	s := New(Config{
		Threads:         2,
		MaxBatch:        4,
		QueueDepth:      8,
		MaxPerClient:    4,
		DefaultDeadline: 2 * time.Second,
		Hooks:           hooks,
	})
	ts := httptest.NewServer(s)

	seedBody := faulttest.ValidMMIO(31, 40)
	var seeded UploadResponse
	{
		resp, err := http.Post(ts.URL+"/matrices?format=csr-du", "text/plain", bytes.NewReader(seedBody))
		if err != nil {
			t.Fatalf("seed upload: %v", err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("seed upload: status %d: %s", resp.StatusCode, b)
		}
		if err := json.Unmarshal(b, &seeded); err != nil {
			t.Fatalf("seed decode: %v", err)
		}
	}
	xBody, err := json.Marshal(MultiplyRequest{X: testVec(seeded.Cols)})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	corpus := faulttest.CorruptUploads(seedBody)
	corpus = append(corpus, faulttest.AllocBombMatfile(faulttest.ValidMatfile(31, 30, "csr")))

	var statuses sync.Map // status code -> *atomic.Int64
	count := func(code int) {
		v, _ := statuses.LoadOrStore(code, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}

	const clients = 12
	const perClient = 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &http.Client{Timeout: 5 * time.Second}
			for i := 0; i < perClient; i++ {
				switch {
				case i%10 == 3:
					// Corrupt or hostile upload.
					payload := corpus[(c*perClient+i)%len(corpus)]
					resp, err := cl.Post(ts.URL+"/matrices", "application/octet-stream", bytes.NewReader(payload))
					if err == nil {
						count(resp.StatusCode)
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				case i%10 == 6:
					// Client disconnect: cancel mid-request.
					ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
					req, _ := http.NewRequestWithContext(ctx, "POST",
						ts.URL+"/matrices/"+seeded.ID+"/multiply", bytes.NewReader(xBody))
					req.Header.Set("X-Client-ID", fmt.Sprintf("c%d", c))
					resp, err := cl.Do(req)
					if err == nil {
						count(resp.StatusCode)
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					cancel()
				default:
					req, _ := http.NewRequest("POST",
						ts.URL+"/matrices/"+seeded.ID+"/multiply", bytes.NewReader(xBody))
					req.Header.Set("X-Client-ID", fmt.Sprintf("c%d", c))
					resp, err := cl.Do(req)
					if err != nil {
						continue
					}
					count(resp.StatusCode)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()

	loadInt := func(code int) int64 {
		if v, ok := statuses.Load(code); ok {
			return v.(*atomic.Int64).Load()
		}
		return 0
	}
	allowed := map[int]bool{200: true, 201: true, 400: true, 429: true, 500: true, 503: true, 504: true}
	statuses.Range(func(k, v any) bool {
		if !allowed[k.(int)] {
			t.Errorf("unexpected status %d (%d times)", k, v.(*atomic.Int64).Load())
		}
		return true
	})
	if loadInt(200) == 0 {
		t.Fatalf("no healthy request survived the storm")
	}
	if loadInt(429) == 0 {
		t.Fatalf("overload never shed load with 429 — admission control inactive")
	}
	if loadInt(400) == 0 {
		t.Fatalf("no corrupt upload rejected")
	}

	m := s.Metrics()
	if m.PanicsRecovered.Load() == 0 {
		t.Fatalf("injected kernel panics never hit the recovery path")
	}
	if m.Shed.Load() == 0 {
		t.Fatalf("shed counter is zero despite 429s")
	}
	var snap MetricsSnapshot
	{
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("metrics decode: %v", err)
		}
	}
	var wide int64
	for w, n := range snap.CoalesceWidths {
		if w != "1" {
			wide += n
		}
	}
	if wide == 0 {
		t.Fatalf("no coalesced batches under concurrent load: %v", snap.CoalesceWidths)
	}
	if d := snap.Matrices[seeded.ID].QueueDepth; d > 8 {
		t.Fatalf("queue depth %d exceeds the configured bound 8", d)
	}

	// The pool must still be healthy: disarm faults, serve cleanly.
	hooks.BeforeExecute = nil
	resp, err := http.Post(ts.URL+"/matrices/"+seeded.ID+"/multiply", "application/json", bytes.NewReader(xBody))
	if err != nil {
		t.Fatalf("post-storm multiply: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm multiply: status %d, want 200", resp.StatusCode)
	}

	// Graceful drain, then the goroutine ledger must balance.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	ts.Close()
	if n := waitGoroutines(baseline+2, 5*time.Second); n > baseline+2 {
		t.Fatalf("goroutine leak: %d before, %d after drain", baseline, n)
	}
}
