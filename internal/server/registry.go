package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"spmv/internal/autotune"
	"spmv/internal/core"
	"spmv/internal/obs"
	"spmv/internal/parallel"
)

// entry is one admitted matrix: the verified built format, its shared
// executor, the coalescer that owns the executor, and per-matrix
// telemetry. One entry serves arbitrarily many concurrent clients.
type entry struct {
	id     string
	format core.Format
	runner parallel.Runner
	rec    *obs.Recorder
	spans  *lifecycleSpans
	size   int64 // format.SizeBytes(), the LRU budget unit
	co     *coalescer
	// tune is the autotuner's decision trace for format=auto uploads
	// (nil otherwise); surfaced through /metrics.
	tune *autotune.Report

	served atomic.Int64
	shed   atomic.Int64

	lru *list.Element // registry.order position; nil once evicted
}

// buildCall is one in-flight singleflight build: concurrent uploads of
// the same content+format block on done and share the result.
type buildCall struct {
	done chan struct{}
	e    *entry
	err  error
}

// registry is the matrix store: content-addressed entries, a
// singleflight build table so N concurrent uploads of the same matrix
// build once, and LRU eviction under a byte budget.
type registry struct {
	budget int64
	// onEvict observes each LRU eviction (after the entry is unlinked,
	// before its coalescer is stopped); the server counts them.
	onEvict func(*entry)

	mu      sync.Mutex
	entries map[string]*entry
	order   *list.List // front = most recently used; values are *entry
	bytes   int64
	builds  map[string]*buildCall
}

func newRegistry(budget int64) *registry {
	return &registry{
		budget:  budget,
		entries: make(map[string]*entry),
		order:   list.New(),
		builds:  make(map[string]*buildCall),
	}
}

// get returns the entry for id, marking it most recently used.
func (r *registry) get(id string) (*entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if ok && e.lru != nil {
		r.order.MoveToFront(e.lru)
	}
	return e, ok
}

// getOrBuild returns the cached entry for key or runs build exactly
// once across concurrent callers. The bool reports a cache hit.
// Entries evicted while a caller was waiting surface as a miss on the
// caller's next attempt, never as a half-closed entry.
func (r *registry) getOrBuild(key string, build func() (*entry, error)) (*entry, bool, error) {
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		if e.lru != nil {
			r.order.MoveToFront(e.lru)
		}
		r.mu.Unlock()
		return e, true, nil
	}
	if c, ok := r.builds[key]; ok {
		r.mu.Unlock()
		<-c.done
		return c.e, true, c.err
	}
	c := &buildCall{done: make(chan struct{})}
	r.builds[key] = c
	r.mu.Unlock()

	e, err := build()
	c.e, c.err = e, err

	var evicted []*entry
	r.mu.Lock()
	delete(r.builds, key)
	if err == nil {
		e.lru = r.order.PushFront(e)
		r.entries[key] = e
		r.bytes += e.size
		evicted = r.evictLocked(e)
	}
	r.mu.Unlock()
	close(c.done)
	for _, ev := range evicted {
		if r.onEvict != nil {
			r.onEvict(ev)
		}
		ev.co.stop(errEvicted)
		ev.runner.Close()
	}
	return e, false, err
}

// evictLocked trims least-recently-used entries until the byte budget
// holds, never evicting keep (the entry that just went in). Callers
// stop the returned entries' coalescers outside the lock.
func (r *registry) evictLocked(keep *entry) []*entry {
	var out []*entry
	for r.bytes > r.budget && r.order.Len() > 1 {
		back := r.order.Back()
		e := back.Value.(*entry)
		if e == keep {
			// keep is the only other entry; move on to the next oldest.
			if back.Prev() == nil {
				break
			}
			e = back.Prev().Value.(*entry)
		}
		r.removeLocked(e)
		out = append(out, e)
	}
	return out
}

// removeLocked unlinks e from the map and LRU list.
func (r *registry) removeLocked(e *entry) {
	delete(r.entries, e.id)
	if e.lru != nil {
		r.order.Remove(e.lru)
		e.lru = nil
	}
	r.bytes -= e.size
}

// remove deletes id, returning the entry for the caller to stop.
func (r *registry) remove(id string) (*entry, bool) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if ok {
		r.removeLocked(e)
	}
	r.mu.Unlock()
	return e, ok
}

// snapshot returns the current entries in no particular order.
func (r *registry) snapshot() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	return out
}

// stats returns the entry count and summed bytes.
func (r *registry) stats() (int, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries), r.bytes
}

// drainAll removes every entry and returns them for the caller to
// stop; used by server shutdown.
func (r *registry) drainAll() []*entry {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		r.removeLocked(e)
		out = append(out, e)
	}
	r.mu.Unlock()
	return out
}
