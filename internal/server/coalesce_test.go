package server

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"spmv/internal/core"
	"spmv/internal/server/faulttest"
)

// TestCoalescedBitwiseIdentical is the coalescer-correctness gate:
// k concurrent single-vector requests on one matrix must return
// results bitwise identical to k sequential requests (which run as
// width-1 batches, bitwise-delegating to the scalar kernel per the
// PR-4 guarantee). The slow-down hook keeps the executor busy so
// later requests pile into the queue and actually coalesce.
func TestCoalescedBitwiseIdentical(t *testing.T) {
	for _, format := range []string{"csr", "csr-du", "csr-vi"} {
		t.Run(format, func(t *testing.T) {
			hooks := &Hooks{}
			s := newTestServer(t, Config{MaxBatch: 4, Hooks: hooks})
			body := faulttest.ValidMMIO(21, 48)
			resp := upload(t, s, body, format)

			const k = 12
			xs := make([][]float64, k)
			for i := range xs {
				x := testVec(resp.Cols)
				for j := range x {
					x[j] += float64(i)
				}
				xs[i] = x
			}

			// Sequential pass: one request at a time, each a width-1
			// batch running the scalar kernel.
			want := make([][]float64, k)
			for i, x := range xs {
				code, y := multiply(t, s, resp.ID, x, nil)
				if code != http.StatusOK {
					t.Fatalf("sequential %d: status %d", i, code)
				}
				want[i] = y
			}

			// Concurrent pass: the hook stalls execution so the queue
			// fills and the coalescer drains it in wide panels.
			hooks.BeforeExecute = faulttest.SlowDown(5 * time.Millisecond)
			got := make([][]float64, k)
			codes := make([]int, k)
			var wg sync.WaitGroup
			for i := range xs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					codes[i], got[i] = multiply(t, s, resp.ID, xs[i],
						map[string]string{"X-Client-ID": string(rune('a' + i))})
				}(i)
			}
			wg.Wait()

			for i := range got {
				if codes[i] != http.StatusOK {
					t.Fatalf("concurrent %d: status %d", i, codes[i])
				}
				for j := range got[i] {
					if !core.SameBits(got[i][j], want[i][j]) {
						t.Fatalf("request %d: y[%d] = %x, want %x — coalesced result diverges from sequential",
							i, j, got[i][j], want[i][j])
					}
				}
			}

			widths := s.Metrics().BatchWidths()
			var wide int64
			for w := 2; w < len(widths); w++ {
				wide += widths[w]
			}
			if wide == 0 {
				t.Fatalf("no coalesced batch of width > 1 recorded: %v", widths)
			}
		})
	}
}
