package server

import (
	"fmt"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"spmv/internal/roofline"
	"spmv/internal/server/faulttest"
)

// testServerRoofline is a fixed probe-shaped bandwidth model so the
// exposition test can pin the ceiling gauge series.
func testServerRoofline() *roofline.Model {
	return &roofline.Model{
		Source:   "probe",
		Host:     "test",
		Ceilings: map[int]float64{1: 7.25, 2: 11.5},
	}
}

// This file is a test-local Prometheus text-format (0.0.4) checker:
// enough of the exposition grammar to catch the mistakes a hand-rolled
// writer can make — malformed sample lines, samples without TYPE,
// unescaped label values, and histogram bucket series that are not
// cumulative or whose +Inf bucket disagrees with _count.

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	promLabelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// parseProm parses an exposition body, reporting grammar violations as
// test errors and returning the samples plus the TYPE per family.
func parseProm(t *testing.T, body string) ([]promSample, map[string]string) {
	t.Helper()
	var samples []promSample
	types := map[string]string{}
	for i, line := range strings.Split(body, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("line %d: malformed TYPE comment: %q", lineNo, line)
				continue
			}
			if !promNameRe.MatchString(parts[2]) {
				t.Errorf("line %d: bad metric name %q", lineNo, parts[2])
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: unknown type %q", lineNo, parts[3])
			}
			if _, dup := types[parts[2]]; dup {
				t.Errorf("line %d: duplicate TYPE for %q", lineNo, parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or other comment
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: malformed sample: %q", lineNo, line)
			continue
		}
		s := promSample{name: m[1], labels: map[string]string{}, line: lineNo}
		if m[3] != "" {
			for _, pair := range splitPromLabels(m[3]) {
				lm := promLabelRe.FindStringSubmatch(pair)
				if lm == nil {
					t.Errorf("line %d: malformed label %q", lineNo, pair)
					continue
				}
				s.labels[lm[1]] = lm[2]
			}
		}
		v, err := parsePromValue(m[4])
		if err != nil {
			t.Errorf("line %d: bad value %q: %v", lineNo, m[4], err)
			continue
		}
		s.value = v
		samples = append(samples, s)
	}
	return samples, types
}

// splitPromLabels splits `a="x",b="y"` on commas outside quotes.
func splitPromLabels(s string) []string {
	var out []string
	depth := false // inside a quoted value
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// baseFamily strips histogram/summary suffixes to the family name.
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// labelKey canonicalizes a label set (minus le) for grouping.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%q,", k, labels[k])
	}
	return sb.String()
}

// checkProm runs the full invariant suite on an exposition body.
func checkProm(t *testing.T, body string) {
	t.Helper()
	samples, types := parseProm(t, body)
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}

	// Every sample's family must have a TYPE.
	for _, s := range samples {
		fam := s.name
		if typ, ok := types[baseFamily(s.name)]; ok && typ == "histogram" {
			fam = baseFamily(s.name)
		}
		if _, ok := types[fam]; !ok {
			t.Errorf("line %d: sample %q has no TYPE comment", s.line, s.name)
		}
	}

	// Counters must be non-negative and finite.
	for _, s := range samples {
		if types[baseFamily(s.name)] == "counter" || types[s.name] == "counter" {
			if math.IsNaN(s.value) || s.value < 0 {
				t.Errorf("line %d: counter %s = %v", s.line, s.name, s.value)
			}
		}
	}

	// Histogram invariants per (family, labelset): le buckets sorted
	// and cumulative non-decreasing, +Inf present and equal to _count,
	// _sum present.
	type histSeries struct {
		buckets map[float64]float64
		sum     *float64
		count   *float64
	}
	hists := map[string]map[string]*histSeries{}
	for _, s := range samples {
		fam := baseFamily(s.name)
		if types[fam] != "histogram" {
			continue
		}
		byLabels := hists[fam]
		if byLabels == nil {
			byLabels = map[string]*histSeries{}
			hists[fam] = byLabels
		}
		key := labelKey(s.labels)
		hs := byLabels[key]
		if hs == nil {
			hs = &histSeries{buckets: map[float64]float64{}}
			byLabels[key] = hs
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, ok := s.labels["le"]
			if !ok {
				t.Errorf("line %d: bucket without le label", s.line)
				continue
			}
			bound, err := parsePromValue(le)
			if err != nil {
				t.Errorf("line %d: bad le %q", s.line, le)
				continue
			}
			hs.buckets[bound] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			v := s.value
			hs.sum = &v
		case strings.HasSuffix(s.name, "_count"):
			v := s.value
			hs.count = &v
		}
	}
	for fam, byLabels := range hists {
		for key, hs := range byLabels {
			if hs.sum == nil || hs.count == nil {
				t.Errorf("%s{%s}: missing _sum or _count", fam, key)
				continue
			}
			bounds := make([]float64, 0, len(hs.buckets))
			for b := range hs.buckets {
				bounds = append(bounds, b)
			}
			sort.Float64s(bounds)
			if len(bounds) == 0 || !math.IsInf(bounds[len(bounds)-1], 1) {
				t.Errorf("%s{%s}: no +Inf bucket", fam, key)
				continue
			}
			prev := -1.0
			for _, b := range bounds {
				if hs.buckets[b] < prev {
					t.Errorf("%s{%s}: bucket le=%v count %v < previous %v — not cumulative",
						fam, key, b, hs.buckets[b], prev)
				}
				prev = hs.buckets[b]
			}
			if inf := hs.buckets[math.Inf(1)]; inf != *hs.count {
				t.Errorf("%s{%s}: +Inf bucket %v != _count %v", fam, key, inf, *hs.count)
			}
		}
	}
}

// TestPromExposition drives traffic, fetches /metrics.prom and runs
// the checker, then pins a few concrete series.
func TestPromExposition(t *testing.T) {
	s := newTestServer(t, Config{Threads: 2, Roofline: testServerRoofline()})
	body := faulttest.ValidMMIO(9, 30)
	resp := upload(t, s, body, "csr")
	x := testVec(resp.Cols)
	for i := 0; i < 5; i++ {
		if code, _ := multiply(t, s, resp.ID, x, nil); code != http.StatusOK {
			t.Fatalf("multiply %d: status %d", i, code)
		}
	}
	// One failure so the failure counters are exercised too.
	if code, _ := multiply(t, s, "missing", x, nil); code != http.StatusNotFound {
		t.Fatal("expected 404")
	}

	w := do(s, "GET", "/metrics.prom", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics.prom: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	out := w.Body.String()
	checkProm(t, out)

	for _, want := range []string{
		"spmv_requests_total 6",
		"spmv_served_total 5",
		"spmv_roofline_ceiling_gbps{source=\"probe\",threads=\"2\"}",
		"spmv_request_span_seconds_bucket{matrix=\"" + resp.ID + "\",span=\"total\",le=\"+Inf\"} 5",
		"spmv_goroutines",
		"spmv_gc_pause_seconds_total",
		"spmv_heap_inuse_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The checker itself must reject broken documents.
	bad := "# TYPE x histogram\nx_bucket{le=\"1\"} 5\nx_bucket{le=\"+Inf\"} 3\nx_sum 1\nx_count 3\n"
	tt := &testing.T{}
	checkProm(tt, bad)
	if !tt.Failed() {
		t.Error("checker accepted a non-cumulative histogram")
	}
}
