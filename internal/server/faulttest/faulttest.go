// Package faulttest is the fault-injection harness for the SpMV
// server: generators for corrupt and hostile upload payloads (seeded
// by the PR-1 matfile/mmio corruption work), injectable execution
// faults for the server.Hooks points, and slow-client helpers. The
// soak and fuzz tests in internal/server are built on it.
package faulttest

import (
	"bytes"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"spmv/internal/core"
	"spmv/internal/formats"
	"spmv/internal/matfile"
	"spmv/internal/matgen"
	"spmv/internal/mmio"
)

// ValidMMIO renders an n×n FEM-like test matrix as MatrixMarket text.
func ValidMMIO(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	c := matgen.FEMLike(rng, n, 4, matgen.Values{})
	var buf bytes.Buffer
	if err := mmio.Write(&buf, c); err != nil {
		panic(core.Usagef("faulttest: mmio render: %v", err))
	}
	return buf.Bytes()
}

// ValidMatfile renders an n×n test matrix as a matfile v2 container in
// the named format (one of the matfile-supported names).
func ValidMatfile(seed int64, n int, format string) []byte {
	rng := rand.New(rand.NewSource(seed))
	c := matgen.FEMLike(rng, n, 4, matgen.Values{})
	f, err := formats.Build(format, c)
	if err != nil {
		panic(core.Usagef("faulttest: build %s: %v", format, err))
	}
	var buf bytes.Buffer
	if err := matfile.Write(&buf, f); err != nil {
		panic(core.Usagef("faulttest: matfile render: %v", err))
	}
	return buf.Bytes()
}

// CorruptUploads derives a corpus of corrupt payloads from a valid
// one: single-byte flips across the file (the PR-1 corruption table
// technique), truncations, and a few structural mutations. Every
// returned payload differs from the original.
func CorruptUploads(valid []byte) [][]byte {
	var out [][]byte
	flip := func(off int) {
		if off < len(valid) {
			b := append([]byte(nil), valid...)
			b[off] ^= 0x40
			out = append(out, b)
		}
	}
	// Flips spread over header and body.
	for _, off := range []int{0, 4, 5, 9, 17, 25, len(valid) / 2, len(valid) - 1} {
		flip(off)
	}
	// Truncations: header-only, mid-section, one byte short.
	for _, n := range []int{3, 8, len(valid) / 2, len(valid) - 1} {
		if n >= 0 && n < len(valid) {
			out = append(out, append([]byte(nil), valid[:n]...))
		}
	}
	// Garbage and empty.
	out = append(out, []byte("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n"))
	out = append(out, []byte("not a matrix at all"))
	out = append(out, []byte{})
	return out
}

// AllocBombMatfile is a tiny matfile whose section header claims a
// multi-gigabyte length — the upload-endpoint attack the ReadSized
// guard exists for. It reuses a valid container's header bytes and
// replaces the first section length.
func AllocBombMatfile(valid []byte) []byte {
	// Header: magic(4) + version(1) + nameLen(1) + name + 3*8 dims + 4 CRC.
	if len(valid) < 7 {
		return valid
	}
	nameLen := int(valid[5])
	hdrEnd := 6 + nameLen + 24 + 4
	if hdrEnd+8 > len(valid) {
		return valid
	}
	b := append([]byte(nil), valid[:hdrEnd]...)
	b = append(b, 0, 0, 0, 0, 0, 0, 2, 0) // little-endian 8<<48... huge length
	b = append(b, make([]byte, 32)...)
	return b
}

// PanicEvery returns a BeforeExecute hook that panics on every nth
// call — the injected "kernel panic" of the soak test. Real kernel
// panics (index out of range on corrupt streams) carry runtime.Error
// values, which are errors, so the injected panic is an error value
// too.
func PanicEvery(n int64) func(string, int) error {
	var calls atomic.Int64
	return func(id string, width int) error {
		if calls.Add(1)%n == 0 {
			panic(core.Corruptf("faulttest: injected kernel panic on %s (width %d)", id, width))
		}
		return nil
	}
}

// FailEvery returns a BeforeExecute hook failing every nth call with a
// typed corrupt error — the "matrix went bad in memory" fault.
func FailEvery(n int64) func(string, int) error {
	var calls atomic.Int64
	return func(id string, width int) error {
		if calls.Add(1)%n == 0 {
			return core.Corruptf("faulttest: injected execution fault on %s", id)
		}
		return nil
	}
}

// SlowDown returns a BeforeExecute hook that sleeps d on every call,
// inflating service time so admission queues actually fill under test
// load.
func SlowDown(d time.Duration) func(string, int) error {
	return func(string, int) error {
		time.Sleep(d)
		return nil
	}
}

// Chain composes BeforeExecute hooks left to right, stopping at the
// first error.
func Chain(hooks ...func(string, int) error) func(string, int) error {
	return func(id string, width int) error {
		for _, h := range hooks {
			if h == nil {
				continue
			}
			if err := h(id, width); err != nil {
				return err
			}
		}
		return nil
	}
}

// DribbleReader yields its payload one small chunk at a time with a
// delay between chunks — a slow client on the upload path.
type DribbleReader struct {
	Payload []byte
	Chunk   int
	Delay   time.Duration
	off     int
}

// Read implements io.Reader.
func (d *DribbleReader) Read(p []byte) (int, error) {
	if d.off >= len(d.Payload) {
		return 0, io.EOF
	}
	if d.off > 0 && d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	chunk := d.Chunk
	if chunk <= 0 {
		chunk = 64
	}
	n := copy(p[:min(len(p), chunk)], d.Payload[d.off:])
	d.off += n
	return n, nil
}
