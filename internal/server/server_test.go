package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spmv/internal/core"
	"spmv/internal/formats"
	"spmv/internal/matfile"
	"spmv/internal/mmio"
	"spmv/internal/server/faulttest"
)

// newTestServer builds a Server with test-friendly defaults and
// registers cleanup.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Threads == 0 {
		cfg.Threads = 2
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// do runs one request through the handler stack without a network.
func do(s *Server, method, target string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, bytes.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// upload posts body and decodes the response, failing the test on a
// non-2xx status.
func upload(t *testing.T, s *Server, body []byte, format string) UploadResponse {
	t.Helper()
	target := "/matrices"
	if format != "" {
		target += "?format=" + format
	}
	w := do(s, "POST", target, body, nil)
	if w.Code != http.StatusCreated && w.Code != http.StatusOK {
		t.Fatalf("upload: status %d: %s", w.Code, w.Body.String())
	}
	var resp UploadResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("upload response: %v", err)
	}
	return resp
}

// multiply posts x and returns the status plus decoded y (nil unless 200).
func multiply(t *testing.T, s *Server, id string, x []float64, hdr map[string]string) (int, []float64) {
	t.Helper()
	body, err := json.Marshal(MultiplyRequest{X: x})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	w := do(s, "POST", "/matrices/"+id+"/multiply", body, hdr)
	if w.Code != http.StatusOK {
		return w.Code, nil
	}
	var resp MultiplyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("multiply response: %v", err)
	}
	return w.Code, resp.Y
}

// refMul computes the reference product for an mmio payload.
func refMul(t *testing.T, body []byte, format string, x []float64) []float64 {
	t.Helper()
	c, err := mmio.Read(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("mmio: %v", err)
	}
	f, err := formats.Build(format, c)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	y := make([]float64, f.Rows())
	f.SpMV(y, x)
	return y
}

func testVec(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) - 3.5
	}
	return x
}

func TestUploadAndMultiply(t *testing.T) {
	s := newTestServer(t, Config{})
	body := faulttest.ValidMMIO(1, 40)
	resp := upload(t, s, body, "csr-du")
	if resp.Format != "csr-du" || resp.Cached {
		t.Fatalf("unexpected upload response: %+v", resp)
	}
	x := testVec(resp.Cols)
	code, y := multiply(t, s, resp.ID, x, nil)
	if code != http.StatusOK {
		t.Fatalf("multiply: status %d", code)
	}
	want := refMul(t, body, "csr-du", x)
	for i := range want {
		if !core.SameBits(y[i], want[i]) {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

// TestUploadAutoFormat drives the format=auto path: the tuner picks
// the format at ingest, multiplication matches the COO reference, and
// the decision surfaces in /metrics.
func TestUploadAutoFormat(t *testing.T) {
	s := newTestServer(t, Config{})
	body := faulttest.ValidMMIO(3, 60)
	resp := upload(t, s, body, "auto")
	if resp.Format == "" {
		t.Fatalf("auto upload reported no format: %+v", resp)
	}
	c, err := mmio.Read(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("mmio: %v", err)
	}
	x := testVec(resp.Cols)
	code, y := multiply(t, s, resp.ID, x, nil)
	if code != http.StatusOK {
		t.Fatalf("multiply: status %d", code)
	}
	want := make([]float64, c.Rows())
	c.SpMV(want, x)
	for i := range want {
		d := y[i] - want[i]
		if d < 0 {
			d = -d
		}
		lim := want[i]
		if lim < 0 {
			lim = -lim
		}
		if d > 1e-9*(1+lim) {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}

	snap := s.Snapshot()
	mm, ok := snap.Matrices[resp.ID]
	if !ok {
		t.Fatalf("tuned matrix missing from metrics: %+v", snap.Matrices)
	}
	if mm.Tune == nil {
		t.Fatal("metrics carry no tune decision for a format=auto upload")
	}
	if mm.Tune.Format != resp.Format || mm.Tune.Candidates == 0 || mm.Tune.PredBytes <= 0 {
		t.Errorf("tune decision incomplete: %+v (upload format %q)", mm.Tune, resp.Format)
	}

	// Explicit formats must not grow a tune decision.
	plain := upload(t, s, body, "csr")
	if mmp := s.Snapshot().Matrices[plain.ID]; mmp.Tune != nil {
		t.Errorf("explicit csr upload carries a tune decision: %+v", mmp.Tune)
	}

	// Same content re-uploaded as auto hits the cache.
	again := upload(t, s, body, "auto")
	if !again.Cached || again.ID != resp.ID {
		t.Errorf("auto re-upload missed the cache: %+v", again)
	}
}

func TestUploadMatfile(t *testing.T) {
	s := newTestServer(t, Config{})
	body := faulttest.ValidMatfile(2, 30, "csr-vi")
	resp := upload(t, s, body, "")
	if resp.Format != "csr-vi" {
		t.Fatalf("matfile upload picked format %q, want csr-vi", resp.Format)
	}
	x := testVec(resp.Cols)
	code, y := multiply(t, s, resp.ID, x, nil)
	if code != http.StatusOK || len(y) != resp.Rows {
		t.Fatalf("multiply: status %d, len %d", code, len(y))
	}
	// Explicit mismatching format parameter is a usage error.
	w := do(s, "POST", "/matrices?format=csr", body, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("mismatched format: status %d, want 400", w.Code)
	}
}

func TestUploadCacheAndSingleflight(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrentBuilds: 8})
	body := faulttest.ValidMMIO(3, 40)
	var wg sync.WaitGroup
	ids := make([]string, 8)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := do(s, "POST", "/matrices?format=csr", body, nil)
			if w.Code == http.StatusCreated || w.Code == http.StatusOK {
				var resp UploadResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err == nil {
					ids[i] = resp.ID
				}
			}
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id == "" || id != ids[0] {
			t.Fatalf("upload %d: id %q, want all equal %q", i, id, ids[0])
		}
	}
	if builds := s.Metrics().Builds.Load(); builds != 1 {
		t.Fatalf("concurrent identical uploads built %d times, want 1", builds)
	}
	// A later identical upload is a pure cache hit.
	resp := upload(t, s, body, "csr")
	if !resp.Cached {
		t.Fatalf("re-upload not served from cache")
	}
}

// stillParses reports whether a mutated payload remains a valid
// matrix by the ingest rules — some mmio text mutations (e.g. a
// truncated final digit) legitimately still parse.
func stillParses(body []byte) bool {
	if bytes.HasPrefix(body, []byte("SPMV")) {
		_, err := matfile.ReadSized(bytes.NewReader(body), int64(len(body)))
		return err == nil
	}
	c, err := mmio.Read(bytes.NewReader(body))
	if err != nil {
		return false
	}
	_, err = formats.Build("csr", c)
	return err == nil
}

func TestCorruptUploadsRejected(t *testing.T) {
	s := newTestServer(t, Config{})
	var rejections int
	for _, valid := range [][]byte{
		faulttest.ValidMMIO(4, 30),
		faulttest.ValidMatfile(4, 30, "csr"),
	} {
		for i, corrupt := range faulttest.CorruptUploads(valid) {
			if bytes.Equal(corrupt, valid) {
				continue
			}
			w := do(s, "POST", "/matrices", corrupt, nil)
			if stillParses(corrupt) {
				if w.Code != http.StatusCreated && w.Code != http.StatusOK {
					t.Errorf("benign mutation %d: status %d, want 2xx (%s)",
						i, w.Code, strings.TrimSpace(w.Body.String()))
				}
				continue
			}
			rejections++
			if w.Code != http.StatusBadRequest {
				// A flipped byte inside a matfile payload that still
				// checksums clean is impossible (CRC32); anything
				// accepted here is a hardening hole.
				t.Errorf("corrupt payload %d: status %d, want 400 (%s)",
					i, w.Code, strings.TrimSpace(w.Body.String()))
			}
		}
	}
	if rejections < 20 {
		t.Fatalf("corpus exercised only %d rejections", rejections)
	}
	if rejected := s.Metrics().UploadsRejected.Load(); rejected == 0 {
		t.Fatalf("no rejected uploads counted")
	}
}

func TestAllocBombUploadRejected(t *testing.T) {
	s := newTestServer(t, Config{})
	bomb := faulttest.AllocBombMatfile(faulttest.ValidMatfile(5, 30, "csr"))
	w := do(s, "POST", "/matrices", bomb, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("alloc bomb: status %d, want 400", w.Code)
	}
}

func TestOversizedUploadRejected(t *testing.T) {
	s := newTestServer(t, Config{MaxUploadBytes: 128})
	w := do(s, "POST", "/matrices", faulttest.ValidMMIO(6, 40), nil)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413", w.Code)
	}
}

func TestMultiplyValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	resp := upload(t, s, faulttest.ValidMMIO(7, 30), "csr")
	if code, _ := multiply(t, s, "nope", testVec(resp.Cols), nil); code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", code)
	}
	if code, _ := multiply(t, s, resp.ID, testVec(resp.Cols+1), nil); code != http.StatusBadRequest {
		t.Fatalf("wrong x length: status %d, want 400", code)
	}
	w := do(s, "POST", "/matrices/"+resp.ID+"/multiply", []byte("{not json"), nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad json: status %d, want 400", w.Code)
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(s, "POST", "/matrices?format=no-such-format", faulttest.ValidMMIO(8, 30), nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", w.Code)
	}
}

func TestDeleteMatrix(t *testing.T) {
	s := newTestServer(t, Config{})
	resp := upload(t, s, faulttest.ValidMMIO(9, 30), "csr")
	if w := do(s, "DELETE", "/matrices/"+resp.ID, nil, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", w.Code)
	}
	if code, _ := multiply(t, s, resp.ID, testVec(resp.Cols), nil); code != http.StatusNotFound {
		t.Fatalf("multiply after delete: status %d, want 404", code)
	}
	if w := do(s, "DELETE", "/matrices/"+resp.ID, nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404", w.Code)
	}
}

// matrixBytes builds the csr form of an mmio payload and reports its
// in-memory size — the unit of the registry budget.
func matrixBytes(t *testing.T, body []byte) int64 {
	t.Helper()
	c, err := mmio.Read(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("mmio: %v", err)
	}
	f, err := formats.Build("csr", c)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return f.SizeBytes()
}

func TestSingleMatrixOverBudgetRejected(t *testing.T) {
	s := newTestServer(t, Config{MemoryBudget: 1, Threads: 1})
	w := do(s, "POST", "/matrices?format=csr", faulttest.ValidMMIO(10, 60), nil)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget matrix: status %d, want 413", w.Code)
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget sized to hold roughly two of the three matrices.
	size := matrixBytes(t, faulttest.ValidMMIO(10, 60))
	s2 := newTestServer(t, Config{MemoryBudget: size*2 + size/2, Threads: 1})
	var resps []UploadResponse
	for seed := int64(10); seed < 13; seed++ {
		resps = append(resps, upload(t, s2, faulttest.ValidMMIO(seed, 60), "csr"))
	}
	if ev := s2.Metrics().Evictions.Load(); ev == 0 {
		t.Fatalf("no evictions under budget pressure")
	}
	// The oldest entry is gone; the newest survives.
	if code, _ := multiply(t, s2, resps[0].ID, testVec(resps[0].Cols), nil); code != http.StatusNotFound {
		t.Fatalf("evicted matrix: status %d, want 404", code)
	}
	if code, _ := multiply(t, s2, resps[2].ID, testVec(resps[2].Cols), nil); code != http.StatusOK {
		t.Fatalf("resident matrix: status %d, want 200", code)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	s := newTestServer(t, Config{
		Hooks: &Hooks{BeforeExecute: faulttest.SlowDown(200 * time.Millisecond)},
	})
	resp := upload(t, s, faulttest.ValidMMIO(11, 30), "csr")
	code, _ := multiply(t, s, resp.ID, testVec(resp.Cols), map[string]string{"X-Deadline-Ms": "1"})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("tiny deadline: status %d, want 504", code)
	}
	if n := s.Metrics().DeadlineExceeded.Load(); n == 0 {
		t.Fatalf("deadline not counted")
	}
}

func TestPerClientFairness(t *testing.T) {
	s := newTestServer(t, Config{
		MaxPerClient: 1,
		Hooks:        &Hooks{BeforeExecute: faulttest.SlowDown(100 * time.Millisecond)},
	})
	resp := upload(t, s, faulttest.ValidMMIO(12, 30), "csr")
	x := testVec(resp.Cols)
	var wg sync.WaitGroup
	codes := make([]int, 4)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = multiply(t, s, resp.ID, x, map[string]string{"X-Client-ID": "greedy"})
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("fairness cap: ok=%d shed=%d, want both nonzero", ok, shed)
	}
}

func TestExecutionFaultIs500PoolStaysHealthy(t *testing.T) {
	s := newTestServer(t, Config{
		Hooks: &Hooks{BeforeExecute: faulttest.PanicEvery(1)},
	})
	resp := upload(t, s, faulttest.ValidMMIO(13, 30), "csr")
	x := testVec(resp.Cols)
	if code, _ := multiply(t, s, resp.ID, x, nil); code != http.StatusInternalServerError {
		t.Fatalf("injected panic: status %d, want 500", code)
	}
	if n := s.Metrics().PanicsRecovered.Load(); n != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", n)
	}
	// Disarm the fault: the same matrix keeps serving.
	s.cfg.Hooks.BeforeExecute = nil
	if code, _ := multiply(t, s, resp.ID, x, nil); code != http.StatusOK {
		t.Fatalf("after recovered panic: status %d, want 200", code)
	}
}

func TestDrainRejectsNewServesQueued(t *testing.T) {
	s := newTestServer(t, Config{})
	resp := upload(t, s, faulttest.ValidMMIO(14, 30), "csr")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if code, _ := multiply(t, s, resp.ID, testVec(resp.Cols), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("multiply after drain: status %d, want 503", code)
	}
	if w := do(s, "POST", "/matrices", faulttest.ValidMMIO(15, 30), nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("upload after drain: status %d, want 503", w.Code)
	}
	if w := do(s, "GET", "/healthz", nil, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: status %d, want 503", w.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	resp := upload(t, s, faulttest.ValidMMIO(16, 30), "csr")
	if code, _ := multiply(t, s, resp.ID, testVec(resp.Cols), nil); code != http.StatusOK {
		t.Fatalf("multiply failed")
	}
	w := do(s, "GET", "/metrics", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", w.Code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	if snap.Served != 1 || snap.RegistryEntries != 1 {
		t.Fatalf("snapshot: served=%d entries=%d", snap.Served, snap.RegistryEntries)
	}
	mm, ok := snap.Matrices[resp.ID]
	if !ok || mm.Obs.Runs == 0 {
		t.Fatalf("per-matrix metrics missing or empty: %+v", mm)
	}
	if snap.CoalesceWidths["1"] == 0 {
		t.Fatalf("width-1 batch not recorded: %v", snap.CoalesceWidths)
	}
}

func TestPprofEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(s, "GET", "/debug/pprof/", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("pprof index: status %d", w.Code)
	}
}
