package csrduvi

import (
	"math/rand"
	"testing"

	"spmv/internal/matgen"
)

// TestBatchDecodesOncePerUnit: the combined format inherits both
// amortizations — one ctl decode pass per multiplication (checked here
// via the unit count) with the val_ind load fused into the same pass.
func TestBatchDecodesOncePerUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := matgen.Banded(rng, 700, 25, 8, matgen.Values{Unique: 100})
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Stats().Units
	if want == 0 {
		t.Fatal("degenerate test matrix: no units")
	}
	for _, k := range []int{2, 4, 8} {
		units := 0
		batchDecodeHook = func(n int) { units += n }
		y := make([]float64, m.Rows()*k)
		x := make([]float64, m.Cols()*k)
		for i := range x {
			x[i] = rng.Float64()
		}
		m.SpMVBatch(y, x, k)
		batchDecodeHook = nil
		if units != want {
			t.Errorf("k=%d: decoded %d units, want %d (one decode per unit)", k, units, want)
		}
	}
}
