package csrduvi

import (
	"spmv/internal/core"
	"spmv/internal/csrdu"
	"spmv/internal/varint"
)

// Batched SpMV (SpMM) for CSR-DU-VI: one pass decodes each ctl unit
// once and loads each val_ind entry once, and the resulting (delta,
// value) pair feeds k FMA columns. Both decode overheads — the index
// side's and the value side's — become per-multiplication costs,
// amortized over the panel.

var (
	_ core.BatchFormat = (*Matrix)(nil)
	_ core.BatchChunk  = (*chunk)(nil)
)

// batchDecodeHook, when non-nil, receives the number of ctl units one
// batch-kernel call decoded (units == Stats().Units across a full
// matrix, regardless of k). Nil outside tests; the kernel pays one nil
// check per call.
var batchDecodeHook func(units int)

// SpMVBatch implements core.BatchFormat. len(x) >= Cols()*k,
// len(y) >= Rows()*k; k = 1 is bitwise identical to SpMV.
func (m *Matrix) SpMVBatch(y, x []float64, k int) {
	(&chunk{m: m, lo: 0, hi: m.Rows(), ctlLo: 0, ctlHi: len(m.du.Ctl),
		valLo: 0, valHi: m.NNZ(), startMark: 0}).SpMVBatch(y, x, k)
}

// SpMVBatch implements core.BatchChunk: only panel rows [lo, hi) are
// written, so disjoint chunks may run concurrently.
func (c *chunk) SpMVBatch(y, x []float64, k int) {
	switch {
	case k == 1:
		// The panel degenerates to the vector; the scalar kernel's
		// operation order is the bitwise-k=1 contract.
		c.SpMV(y, x)
		return
	case k <= 0:
		panic(core.Usagef("csrduvi: batch with non-positive vector count %d", k))
	}
	yr := y[c.lo*k : c.hi*k]
	for i := range yr {
		yr[i] = 0
	}
	if c.startMark < 0 {
		return
	}
	var units int
	switch {
	case c.m.VI8 != nil:
		units = spmvBatchDUVI(c, y, x, k, func(vi int) float64 { return c.m.Unique[c.m.VI8[vi]] })
	case c.m.VI16 != nil:
		units = spmvBatchDUVI(c, y, x, k, func(vi int) float64 { return c.m.Unique[c.m.VI16[vi]] })
	default:
		units = spmvBatchDUVI(c, y, x, k, func(vi int) float64 { return c.m.Unique[c.m.VI32[vi]] })
	}
	if batchDecodeHook != nil {
		batchDecodeHook(units)
	}
}

// spmvBatchDUVI is duviKernel widened to a k-column accumulator row,
// parameterized on the value source like the scalar kernel. It returns
// the number of units decoded.
func spmvBatchDUVI(c *chunk, y, x []float64, k int, val func(int) float64) int {
	m := c.m
	ctl := m.du.Ctl
	pos := c.ctlLo
	vi := c.valLo
	yi := -1
	xi := 0
	acc := make([]float64, k)
	first := true
	units := 0
	for pos < c.ctlHi {
		units++
		flags := ctl[pos]
		size := int(ctl[pos+1])
		pos += 2
		if flags&csrdu.FlagNR != 0 {
			var skip uint64 = 1
			if flags&csrdu.FlagRJMP != 0 {
				skip, pos = varint.DecodeAt(ctl, pos)
			}
			if first {
				yi = m.marks[c.startMark].Row
				first = false
			} else {
				yr := y[yi*k:]
				yr = yr[:len(acc)]
				for cc, s := range acc {
					yr[cc] += s
					acc[cc] = 0
				}
				yi += int(skip)
			}
			xi = 0
		}
		var j uint64
		j, pos = varint.DecodeAt(ctl, pos)
		xi += int(j)
		{
			v := val(vi)
			xr := x[xi*k:]
			xr = xr[:len(acc)]
			for cc, xv := range xr {
				acc[cc] += v * xv
			}
		}
		vi++
		if flags&csrdu.FlagRLE != 0 {
			var d uint64
			d, pos = varint.DecodeAt(ctl, pos)
			delta := int(d)
			for p := 1; p < size; p++ {
				xi += delta
				v := val(vi)
				xr := x[xi*k:]
				xr = xr[:len(acc)]
				for cc, xv := range xr {
					acc[cc] += v * xv
				}
				vi++
			}
			continue
		}
		cls := uint(flags & csrdu.TypeMask)
		for p := 1; p < size; p++ {
			var d int
			switch cls {
			case csrdu.ClassU8:
				d = int(ctl[pos])
			case csrdu.ClassU16:
				d = int(uint16(ctl[pos]) | uint16(ctl[pos+1])<<8)
			case csrdu.ClassU32:
				d = int(uint32(ctl[pos]) | uint32(ctl[pos+1])<<8 |
					uint32(ctl[pos+2])<<16 | uint32(ctl[pos+3])<<24)
			default:
				d = int(uint64(ctl[pos]) | uint64(ctl[pos+1])<<8 |
					uint64(ctl[pos+2])<<16 | uint64(ctl[pos+3])<<24 |
					uint64(ctl[pos+4])<<32 | uint64(ctl[pos+5])<<40 |
					uint64(ctl[pos+6])<<48 | uint64(ctl[pos+7])<<56)
			}
			pos += 1 << cls
			xi += d
			v := val(vi)
			xr := x[xi*k:]
			xr = xr[:len(acc)]
			for cc, xv := range xr {
				acc[cc] += v * xv
			}
			vi++
		}
	}
	if !first {
		yr := y[yi*k:]
		yr = yr[:len(acc)]
		for cc, s := range acc {
			yr[cc] += s
		}
	}
	return units
}
