package csrduvi

import (
	"encoding/binary"

	"spmv/internal/core"
	"spmv/internal/csrdu"
)

// FromRaw reconstructs a Matrix from its serialized streams (used by
// the matfile container): the CSR-DU ctl stream, the packed val_ind
// array with its element width, and the unique value table. Everything
// is validated — the ctl stream through csrdu's untrusting scan, the
// value indices against the unique table — before a kernel can touch
// it.
func FromRaw(ctl []byte, viWidth int, vi []byte, unique []float64, rows, cols int) (*Matrix, error) {
	if viWidth != 1 && viWidth != 2 && viWidth != 4 {
		return nil, core.Corruptf("csrduvi: invalid val_ind width %d", viWidth)
	}
	if len(vi)%viWidth != 0 {
		return nil, core.Shapef("csrduvi: val_ind size %d not a multiple of width %d", len(vi), viWidth)
	}
	nnz := len(vi) / viWidth
	values := make([]float64, nnz)
	ind := make([]uint32, nnz)
	for k := 0; k < nnz; k++ {
		var idx uint32
		switch viWidth {
		case 1:
			idx = uint32(vi[k])
		case 2:
			idx = uint32(binary.LittleEndian.Uint16(vi[k*2:]))
		default:
			idx = binary.LittleEndian.Uint32(vi[k*4:])
		}
		if int(idx) >= len(unique) {
			return nil, core.Corruptf("csrduvi: value index %d at position %d outside %d unique values", idx, k, len(unique))
		}
		ind[k] = idx
		values[k] = unique[idx]
	}
	du, err := csrdu.FromRaw(ctl, values, rows, cols)
	if err != nil {
		return nil, err
	}
	m := &Matrix{du: du, marks: du.RowMarks(), Unique: unique}
	switch viWidth {
	case 1:
		m.VI8 = make([]uint8, nnz)
		for k, v := range ind {
			m.VI8[k] = uint8(v)
		}
	case 2:
		m.VI16 = make([]uint16, nnz)
		for k, v := range ind {
			m.VI16[k] = uint16(v)
		}
	default:
		m.VI32 = ind
	}
	return m, nil
}
