package csrduvi

import (
	"spmv/internal/core"
	"spmv/internal/csrdu"
	"spmv/internal/varint"
)

// Compute-cost model: both decode overheads apply.
const (
	duviCompPerNNZ  = 5
	duviCompPerUnit = 8
)

// Place implements core.Placer. The ctl stream gets its own address
// range here (independent of the embedded csrdu matrix, whose values
// stream this format does not use).
func (m *Matrix) Place(a *core.Arena) {
	m.ctlBase = a.Alloc(int64(len(m.du.Ctl)))
	m.viBase = a.Alloc(int64(m.NNZ()) * int64(m.IndexWidth()))
	m.uniqBase = a.Alloc(int64(len(m.Unique)) * 8)
}

var _ core.Tracer = (*chunk)(nil)

// TraceSpMV implements core.Tracer: ctl and val_ind are streamed, the
// unique table and x are gathers, y stores once per row.
func (c *chunk) TraceSpMV(xBase, yBase uint64, emit core.EmitFunc) {
	m := c.m
	if m.ctlBase == 0 && len(m.du.Ctl) > 0 {
		panic(core.Usagef("csrduvi: TraceSpMV before Place"))
	}
	if c.startMark < 0 {
		return
	}
	ctl := m.du.Ctl
	w := int64(m.IndexWidth())
	cs := core.NewStreamCursor(m.ctlBase)
	vs := core.NewStreamCursor(m.viBase)
	yw := core.NewStreamCursor(yBase)
	uniqueIdx := func(vi int) uint64 {
		switch {
		case m.VI8 != nil:
			return uint64(m.VI8[vi])
		case m.VI16 != nil:
			return uint64(m.VI16[vi])
		default:
			return uint64(m.VI32[vi])
		}
	}
	pos := c.ctlLo
	vi := c.valLo
	yi := -1
	xi := 0
	first := true
	touchX := func() {
		vs.Touch(emit, int64(vi)*w, int(w), false, 0)
		emit(core.Access{Addr: m.uniqBase + uniqueIdx(vi)*8, Size: 8})
		emit(core.Access{Addr: xBase + uint64(xi)*8, Size: 8, Comp: duviCompPerNNZ})
		vi++
	}
	for pos < c.ctlHi {
		unitStart := pos
		flags := ctl[pos]
		size := int(ctl[pos+1])
		pos += 2
		if flags&csrdu.FlagNR != 0 {
			var skip uint64 = 1
			if flags&csrdu.FlagRJMP != 0 {
				skip, pos = varint.DecodeAt(ctl, pos)
			}
			if first {
				yi = m.marks[c.startMark].Row
				first = false
			} else {
				yw.Touch(emit, int64(yi)*8, 8, true, 0)
				yi += int(skip)
			}
			xi = 0
		}
		var j uint64
		j, pos = varint.DecodeAt(ctl, pos)
		xi += int(j)
		cs.Touch(emit, int64(unitStart), 1, false, duviCompPerUnit)
		touchX()
		if flags&csrdu.FlagRLE != 0 {
			var d uint64
			d, pos = varint.DecodeAt(ctl, pos)
			for k := 1; k < size; k++ {
				xi += int(d)
				touchX()
			}
			continue
		}
		cls := uint(flags & csrdu.TypeMask)
		for k := 1; k < size; k++ {
			var d int
			switch cls {
			case csrdu.ClassU8:
				d = int(ctl[pos])
			case csrdu.ClassU16:
				d = int(uint16(ctl[pos]) | uint16(ctl[pos+1])<<8)
			case csrdu.ClassU32:
				d = int(uint32(ctl[pos]) | uint32(ctl[pos+1])<<8 |
					uint32(ctl[pos+2])<<16 | uint32(ctl[pos+3])<<24)
			default:
				d = int(uint64(ctl[pos]) | uint64(ctl[pos+1])<<8 |
					uint64(ctl[pos+2])<<16 | uint64(ctl[pos+3])<<24 |
					uint64(ctl[pos+4])<<32 | uint64(ctl[pos+5])<<40 |
					uint64(ctl[pos+6])<<48 | uint64(ctl[pos+7])<<56)
			}
			cs.Touch(emit, int64(pos), 1<<cls, false, 0)
			pos += 1 << cls
			xi += d
			touchX()
		}
	}
	if !first {
		yw.Touch(emit, int64(yi)*8, 8, true, 0)
	}
}
