package csrduvi

import "spmv/internal/core"

// Ctl exposes the underlying CSR-DU control stream (read-only by
// convention), so the binary container can serialize the combined
// format without re-encoding.
func (m *Matrix) Ctl() []byte { return m.du.Ctl }

// Verify implements core.Verifier: the CSR-DU stream checks on the
// index side (delegated to the embedded matrix) plus the CSR-VI
// indirection invariants on the value side. O(nnz).
func (m *Matrix) Verify() error {
	if err := m.du.Verify(); err != nil {
		return err
	}
	if len(m.marks) != len(m.du.RowMarks()) {
		return core.Corruptf("csrduvi: %d row marks stored, index stream has %d", len(m.marks), len(m.du.RowMarks()))
	}
	nnz := m.du.NNZ()
	uv := len(m.Unique)
	narrays := 0
	for _, present := range []bool{m.VI8 != nil, m.VI16 != nil, m.VI32 != nil} {
		if present {
			narrays++
		}
	}
	if narrays != 1 && !(narrays == 0 && nnz == 0) {
		return core.Corruptf("csrduvi: %d val_ind arrays present, want exactly one", narrays)
	}
	switch {
	case m.VI8 != nil:
		if len(m.VI8) != nnz {
			return core.Shapef("csrduvi: %d val_ind entries for %d non-zeros", len(m.VI8), nnz)
		}
		for k, vi := range m.VI8 {
			if int(vi) >= uv {
				return core.Corruptf("csrduvi: value index %d at position %d outside %d unique values", vi, k, uv)
			}
		}
	case m.VI16 != nil:
		if len(m.VI16) != nnz {
			return core.Shapef("csrduvi: %d val_ind entries for %d non-zeros", len(m.VI16), nnz)
		}
		for k, vi := range m.VI16 {
			if int(vi) >= uv {
				return core.Corruptf("csrduvi: value index %d at position %d outside %d unique values", vi, k, uv)
			}
		}
	case m.VI32 != nil:
		if len(m.VI32) != nnz {
			return core.Shapef("csrduvi: %d val_ind entries for %d non-zeros", len(m.VI32), nnz)
		}
		for k, vi := range m.VI32 {
			if int(vi) >= uv {
				return core.Corruptf("csrduvi: value index %d at position %d outside %d unique values", vi, k, uv)
			}
		}
	}
	return nil
}
