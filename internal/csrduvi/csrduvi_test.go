package csrduvi

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csrdu"
	"spmv/internal/csrvi"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestConformance(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return FromCOO(c) })
}

func TestConformanceRLE(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) {
		return FromCOOOpts(c, csrdu.Options{RLE: true})
	})
}

func TestSmallerThanBothParentsOnStencil(t *testing.T) {
	// A stencil matrix compresses on both axes: CSR-DU-VI must beat
	// both CSR-DU (which keeps 8-byte values) and CSR-VI (which keeps
	// 4-byte col_ind).
	c := matgen.Stencil2D(48)
	duvi, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	du, _ := csrdu.FromCOO(c)
	vi, _ := csrvi.FromCOO(c)
	if duvi.SizeBytes() >= du.SizeBytes() {
		t.Errorf("duvi %d >= du %d", duvi.SizeBytes(), du.SizeBytes())
	}
	if duvi.SizeBytes() >= vi.SizeBytes() {
		t.Errorf("duvi %d >= vi %d", duvi.SizeBytes(), vi.SizeBytes())
	}
	// Stencil: 1-byte deltas + 1-byte value indices ≈ 2-3 bytes/nnz vs 12.
	perNNZ := float64(duvi.SizeBytes()) / float64(duvi.NNZ())
	if perNNZ > 3.5 {
		t.Errorf("duvi bytes/nnz = %v, want < 3.5 on stencil", perNNZ)
	}
}

func TestMatchesParentsNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := matgen.FEMLike(rng, 350, 6, matgen.Values{Unique: 40})
	duvi, _ := FromCOO(c)
	du, _ := csrdu.FromCOO(c)
	x := testmat.RandVec(rng, c.Cols())
	y1 := make([]float64, c.Rows())
	y2 := make([]float64, c.Rows())
	duvi.SpMV(y1, x)
	du.SpMV(y2, x)
	testmat.AssertClose(t, "duvi vs du", y1, y2, 1e-12)
}

func TestTTUAndWidth(t *testing.T) {
	c := matgen.Stencil2D(20)
	m, _ := FromCOO(c)
	if len(m.Unique) != 2 {
		t.Fatalf("unique = %d, want 2", len(m.Unique))
	}
	if m.IndexWidth() != 1 {
		t.Errorf("width = %d, want 1", m.IndexWidth())
	}
	if m.TTU() != float64(m.NNZ())/2 {
		t.Errorf("TTU = %v", m.TTU())
	}
	if m.Stats().Units == 0 {
		t.Error("no unit stats")
	}
}

func TestEmptyMatrix(t *testing.T) {
	c := core.NewCOO(4, 4)
	c.Finalize()
	m, _ := FromCOO(c)
	if m.TTU() != 0 {
		t.Errorf("TTU = %v", m.TTU())
	}
	y := []float64{9, 9, 9, 9}
	m.SpMV(y, make([]float64, 4))
	for i, v := range y {
		if v != 0 {
			t.Errorf("y[%d] = %v", i, v)
		}
	}
}

func BenchmarkSpMVStencilDUVI(b *testing.B) {
	m, _ := FromCOO(matgen.Stencil2D(128))
	x := make([]float64, m.Cols())
	y := make([]float64, m.Rows())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.SetBytes(m.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SpMV(y, x)
	}
}
