package csrduvi

import (
	"errors"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

func TestVerifyClean(t *testing.T) {
	m, err := FromCOO(matgen.Stencil2D(5))
	if err != nil {
		t.Fatalf("FromCOO: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Errorf("Verify on freshly encoded matrix: %v", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	build := func(t *testing.T) *Matrix {
		t.Helper()
		m, err := FromCOO(matgen.Stencil2D(5))
		if err != nil {
			t.Fatalf("FromCOO: %v", err)
		}
		return m
	}
	t.Run("val_ind out of range", func(t *testing.T) {
		m := build(t)
		switch {
		case m.VI8 != nil:
			m.VI8[0] = uint8(len(m.Unique))
		case m.VI16 != nil:
			m.VI16[0] = uint16(len(m.Unique))
		default:
			m.VI32[0] = uint32(len(m.Unique))
		}
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("corrupt index stream", func(t *testing.T) {
		m := build(t)
		m.du.Ctl = m.du.Ctl[:len(m.du.Ctl)-1]
		if err := m.Verify(); err == nil {
			t.Fatal("truncated ctl stream passed Verify")
		}
	})
}
