// Package csrduvi implements CSR-DU-VI, the combination of both of the
// paper's compression schemes (an extension explored in the authors'
// companion CF'08 paper, reference [8]): the column indices are encoded
// as CSR-DU delta units and the values are indirected through a unique
// value table as in CSR-VI. The working set shrinks on both the index
// and the value side, at the cost of both decode overheads.
package csrduvi

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/csrdu"
	"spmv/internal/partition"
	"spmv/internal/varint"
)

// Matrix is a sparse matrix with CSR-DU index data and CSR-VI value
// data. The ctl stream, marks and unit semantics are exactly those of
// csrdu.Matrix; the values stream is replaced by val_ind + vals_unique.
type Matrix struct {
	du     *csrdu.Matrix
	marks  []csrdu.RowMark
	Unique []float64
	VI8    []uint8
	VI16   []uint16
	VI32   []uint32

	ctlBase, viBase, uniqBase uint64
}

var (
	_ core.Format   = (*Matrix)(nil)
	_ core.Splitter = (*Matrix)(nil)
	_ core.Placer   = (*Matrix)(nil)
)

// FromCOO encodes with default CSR-DU options.
func FromCOO(c *core.COO) (*Matrix, error) { return FromCOOOpts(c, csrdu.Options{}) }

// FromCOOOpts encodes a triplet matrix into CSR-DU-VI.
func FromCOOOpts(c *core.COO, opts csrdu.Options) (*Matrix, error) {
	du, err := csrdu.FromCOOOpts(c, opts)
	if err != nil {
		return nil, fmt.Errorf("csrduvi: %w", err)
	}
	m := &Matrix{du: du, marks: du.RowMarks()}
	// The CSR-DU values stream is in finalized-COO order, which is the
	// same order FromCOO sees, so indices line up one-to-one.
	index := make(map[uint64]uint32)
	ind := make([]uint32, len(du.Values))
	for k, v := range du.Values {
		bits := math.Float64bits(v)
		vi, ok := index[bits]
		if !ok {
			vi = uint32(len(m.Unique))
			index[bits] = vi
			m.Unique = append(m.Unique, v)
		}
		ind[k] = vi
	}
	switch uv := len(m.Unique); {
	case uv <= 1<<8:
		m.VI8 = make([]uint8, len(ind))
		for k, v := range ind {
			m.VI8[k] = uint8(v)
		}
	case uv <= 1<<16:
		m.VI16 = make([]uint16, len(ind))
		for k, v := range ind {
			m.VI16[k] = uint16(v)
		}
	default:
		m.VI32 = ind
	}
	return m, nil
}

// TTU returns the total-to-unique values ratio.
func (m *Matrix) TTU() float64 {
	if len(m.Unique) == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(len(m.Unique))
}

// IndexWidth returns the val_ind element width in bytes.
func (m *Matrix) IndexWidth() int {
	switch {
	case m.VI8 != nil:
		return 1
	case m.VI16 != nil:
		return 2
	default:
		return 4
	}
}

// Stats returns the CSR-DU unit statistics of the index stream.
func (m *Matrix) Stats() csrdu.UnitStats { return m.du.Stats() }

// Profile returns the detailed structural profile of the CSR-DU index
// stream (unit histograms, byte partition, per-region class mix).
func (m *Matrix) Profile(nregions int) *csrdu.Profile { return m.du.Profile(nregions) }

// CtlBytes returns the size of the ctl (index) stream.
func (m *Matrix) CtlBytes() int { return len(m.du.Ctl) }

// ValIndBytes returns the size of the val_ind stream: one IndexWidth
// entry per non-zero.
func (m *Matrix) ValIndBytes() int64 {
	return int64(m.NNZ()) * int64(m.IndexWidth())
}

// Name implements core.Format.
func (m *Matrix) Name() string { return "csr-du-vi" }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.du.Rows() }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.du.Cols() }

// NNZ implements core.Format.
func (m *Matrix) NNZ() int { return m.du.NNZ() }

// SizeBytes implements core.Format: ctl + val_ind + unique.
func (m *Matrix) SizeBytes() int64 {
	return int64(len(m.du.Ctl)) +
		int64(m.NNZ())*int64(m.IndexWidth()) +
		int64(len(m.Unique))*core.ValSize
}

// SpMV computes y = A*x.
func (m *Matrix) SpMV(y, x []float64) {
	(&chunk{m: m, lo: 0, hi: m.Rows(), ctlLo: 0, ctlHi: len(m.du.Ctl),
		valLo: 0, valHi: m.NNZ(), startMark: 0}).SpMV(y, x)
}

// Split implements core.Splitter, mirroring csrdu's mark-based
// partitioning.
func (m *Matrix) Split(n int) []core.Chunk {
	if len(m.marks) == 0 {
		if m.Rows() == 0 {
			return nil
		}
		return []core.Chunk{&chunk{m: m, lo: 0, hi: m.Rows(), startMark: -1}}
	}
	prefix := make([]int64, len(m.marks)+1)
	for i, mk := range m.marks {
		prefix[i] = int64(mk.Val)
	}
	prefix[len(m.marks)] = int64(m.NNZ())
	bounds := partition.SplitPrefix(prefix, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		if a == b {
			continue
		}
		ch := &chunk{m: m, startMark: a}
		ch.lo = m.marks[a].Row
		ch.ctlLo = m.marks[a].Ctl
		ch.valLo = m.marks[a].Val
		if b < len(m.marks) {
			ch.hi = m.marks[b].Row
			ch.ctlHi = m.marks[b].Ctl
			ch.valHi = m.marks[b].Val
		} else {
			ch.hi = m.Rows()
			ch.ctlHi = len(m.du.Ctl)
			ch.valHi = m.NNZ()
		}
		if len(chunks) == 0 {
			ch.lo = 0
		}
		chunks = append(chunks, ch)
	}
	return chunks
}

type chunk struct {
	m            *Matrix
	lo, hi       int
	ctlLo, ctlHi int
	valLo, valHi int
	startMark    int
}

func (c *chunk) RowRange() (int, int) { return c.lo, c.hi }
func (c *chunk) NNZ() int             { return c.valHi - c.valLo }

// SpMV runs the CSR-DU decode loop with the value fetch indirected
// through the unique table. The three index widths get their own loops
// so the hot path stays monomorphic.
func (c *chunk) SpMV(y, x []float64) {
	for i := c.lo; i < c.hi; i++ {
		y[i] = 0
	}
	if c.startMark < 0 {
		return
	}
	switch {
	case c.m.VI8 != nil:
		duviKernel(c, y, x, func(vi int) float64 { return c.m.Unique[c.m.VI8[vi]] })
	case c.m.VI16 != nil:
		duviKernel(c, y, x, func(vi int) float64 { return c.m.Unique[c.m.VI16[vi]] })
	default:
		duviKernel(c, y, x, func(vi int) float64 { return c.m.Unique[c.m.VI32[vi]] })
	}
}

// duviKernel is the CSR-DU decode loop parameterized on the value
// source. val is called once per non-zero with the running value index.
func duviKernel(c *chunk, y, x []float64, val func(int) float64) {
	m := c.m
	ctl := m.du.Ctl
	pos := c.ctlLo
	vi := c.valLo
	yi := -1
	xi := 0
	sum := 0.0
	first := true
	for pos < c.ctlHi {
		flags := ctl[pos]
		size := int(ctl[pos+1])
		pos += 2
		if flags&csrdu.FlagNR != 0 {
			var skip uint64 = 1
			if flags&csrdu.FlagRJMP != 0 {
				skip, pos = varint.DecodeAt(ctl, pos)
			}
			if first {
				yi = m.marks[c.startMark].Row
				first = false
			} else {
				y[yi] += sum
				yi += int(skip)
			}
			sum = 0
			xi = 0
		}
		var j uint64
		j, pos = varint.DecodeAt(ctl, pos)
		xi += int(j)
		sum += val(vi) * x[xi]
		vi++
		if flags&csrdu.FlagRLE != 0 {
			var d uint64
			d, pos = varint.DecodeAt(ctl, pos)
			delta := int(d)
			for k := 1; k < size; k++ {
				xi += delta
				sum += val(vi) * x[xi]
				vi++
			}
			continue
		}
		cls := uint(flags & csrdu.TypeMask)
		for k := 1; k < size; k++ {
			var d int
			switch cls {
			case csrdu.ClassU8:
				d = int(ctl[pos])
			case csrdu.ClassU16:
				d = int(uint16(ctl[pos]) | uint16(ctl[pos+1])<<8)
			case csrdu.ClassU32:
				d = int(uint32(ctl[pos]) | uint32(ctl[pos+1])<<8 |
					uint32(ctl[pos+2])<<16 | uint32(ctl[pos+3])<<24)
			default:
				d = int(uint64(ctl[pos]) | uint64(ctl[pos+1])<<8 |
					uint64(ctl[pos+2])<<16 | uint64(ctl[pos+3])<<24 |
					uint64(ctl[pos+4])<<32 | uint64(ctl[pos+5])<<40 |
					uint64(ctl[pos+6])<<48 | uint64(ctl[pos+7])<<56)
			}
			pos += 1 << cls
			xi += d
			sum += val(vi) * x[xi]
			vi++
		}
	}
	if !first {
		y[yi] += sum
	}
}
