// Package simtrace connects storage formats to the machine simulator:
// it collects the per-thread memory access traces of a row-partitioned
// multithreaded SpMV and runs them on a memsim.Machine. This is the
// simulated counterpart of parallel.Executor, used by the experiment
// harness to reproduce the paper's tables on the modeled Clovertown.
package simtrace

import (
	"fmt"

	"spmv/internal/core"
	"spmv/internal/memsim"
)

// Collect places f's arrays in a fresh virtual address space, splits it
// into nthreads row chunks, and records each chunk's SpMV access
// stream. The format must implement core.Placer and core.Splitter with
// core.Tracer chunks.
func Collect(f core.Format, nthreads int) ([][]memsim.PackedAccess, error) {
	p, ok := f.(core.Placer)
	if !ok {
		return nil, fmt.Errorf("simtrace: format %s is not traceable", f.Name())
	}
	s, ok := f.(core.Splitter)
	if !ok {
		return nil, fmt.Errorf("simtrace: format %s is not row-splittable", f.Name())
	}
	a := core.NewArena()
	p.Place(a)
	xBase := a.Alloc(int64(f.Cols()) * 8)
	yBase := a.Alloc(int64(f.Rows()) * 8)

	chunks := s.Split(nthreads)
	traces := make([][]memsim.PackedAccess, len(chunks))
	for i, ch := range chunks {
		tr, ok := ch.(core.Tracer)
		if !ok {
			return nil, fmt.Errorf("simtrace: %s chunk is not a Tracer", f.Name())
		}
		// Pre-size: roughly 1.5 accesses per nnz after coalescing.
		buf := make([]memsim.PackedAccess, 0, ch.NNZ()+ch.NNZ()/2+16)
		tr.TraceSpMV(xBase, yBase, func(acc core.Access) {
			buf = append(buf, memsim.Pack(acc.Addr, int(acc.Size), acc.Write, acc.Comp))
		})
		traces[i] = buf
	}
	return traces, nil
}

// SimulateSpMV collects traces for f at the given thread count and runs
// iters warm iterations on m with the given placement. If placement is
// nil, ClosePlacement is used (the paper's default scheduling).
func SimulateSpMV(m memsim.Machine, f core.Format, nthreads int, placement memsim.Placement, iters int) (memsim.Result, error) {
	traces, err := Collect(f, nthreads)
	if err != nil {
		return memsim.Result{}, err
	}
	if placement == nil {
		placement = memsim.ClosePlacement(len(traces))
	}
	if len(placement) != len(traces) {
		// The split may produce fewer chunks than requested threads.
		placement = placement[:len(traces)]
	}
	return memsim.Simulate(m, traces, placement, iters)
}
