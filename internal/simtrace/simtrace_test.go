package simtrace

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csc"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrvi"
	"spmv/internal/matgen"
	"spmv/internal/memsim"
)

func TestCollectSplitsWork(t *testing.T) {
	c := matgen.Stencil2D(32)
	f, _ := csr.FromCOO(c)
	traces, err := Collect(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 4 {
		t.Fatalf("traces = %d", len(traces))
	}
	total := 0
	for i, tr := range traces {
		if len(tr) == 0 {
			t.Errorf("trace %d empty", i)
		}
		total += len(tr)
	}
	// At least one access per nnz (the x gathers).
	if total < f.NNZ() {
		t.Errorf("total accesses %d < nnz %d", total, f.NNZ())
	}
}

func TestCollectRejectsUntraceable(t *testing.T) {
	c := matgen.Stencil2D(8)
	f, _ := csc.FromCOO(c)
	if _, err := Collect(f, 2); err == nil {
		t.Error("CSC accepted (no Placer)")
	}
}

func TestCompressedFormatsMoveFewerBytes(t *testing.T) {
	// The core of the paper: CSR-DU and CSR-VI fetch fewer memory lines
	// than CSR for the same multiply.
	rng := rand.New(rand.NewSource(1))
	c := matgen.Banded(rng, 60000, 60, 16, matgen.Values{Unique: 32})
	m := memsim.Clovertown()

	lines := func(f core.Format) uint64 {
		r, err := SimulateSpMV(m, f, 1, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r.MemLines
	}
	base := lines(mustF(csr.FromCOO(c)))
	du := lines(mustF(csrdu.FromCOO(c)))
	vi := lines(mustF(csrvi.FromCOO(c)))
	if du >= base {
		t.Errorf("csr-du moved %d lines vs csr %d", du, base)
	}
	if vi >= base {
		t.Errorf("csr-vi moved %d lines vs csr %d", vi, base)
	}
}

func mustF(f core.Format, err error) core.Format {
	if err != nil {
		panic(err)
	}
	return f
}

func TestMultithreadedScalingShape(t *testing.T) {
	// A memory-bound matrix (ws >> total L2): 8-thread CSR speedup must
	// be clearly sublinear, and CSR-DU must beat CSR at 8 threads
	// (paper Tables II/III shape).
	rng := rand.New(rand.NewSource(2))
	c := matgen.Banded(rng, 400000, 80, 12, matgen.Values{})
	m := memsim.Clovertown()

	base, _ := csr.FromCOO(c)
	du, _ := csrdu.FromCOO(c)

	run := func(f core.Format, threads int) uint64 {
		r, err := SimulateSpMV(m, f, threads, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	csr1 := run(base, 1)
	csr8 := run(base, 8)
	du8 := run(du, 8)

	speedup8 := float64(csr1) / float64(csr8)
	if speedup8 > 5.0 {
		t.Errorf("CSR 8-thread speedup %.2f too good: matrix should be memory-bound", speedup8)
	}
	if speedup8 < 1.2 {
		t.Errorf("CSR 8-thread speedup %.2f: no scaling at all", speedup8)
	}
	if du8 >= csr8 {
		t.Errorf("CSR-DU at 8 threads (%d cycles) not faster than CSR (%d)", du8, csr8)
	}
}

func TestSharedL2PlacementWorseForBigMatrices(t *testing.T) {
	// Paper Table II: 2 threads on a shared L2 scale worse than on
	// separate L2s. The effect lives near the cache size: each thread's
	// half working set (~3MB here) fits its own 4MB L2 but the two
	// together overflow a shared one.
	rng := rand.New(rand.NewSource(3))
	c := matgen.Banded(rng, 80000, 40, 5, matgen.Values{})
	m := memsim.Clovertown()
	f, _ := csr.FromCOO(c)
	shared, err := SimulateSpMV(m, f, 2, memsim.ClosePlacement(2), 4)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := SimulateSpMV(m, f, 2, memsim.SpreadPlacement(2, m.L2SharedBy), 4)
	if err != nil {
		t.Fatal(err)
	}
	if float64(spread.Cycles) > 0.98*float64(shared.Cycles) {
		t.Errorf("separate L2 (%d) not clearly faster than shared (%d)", spread.Cycles, shared.Cycles)
	}
}

func TestSmallMatrixFitsInCacheAndScales(t *testing.T) {
	// ws below a single L2: after warmup everything hits in cache and
	// multithreading scales well (paper's M_S behaviour).
	c := matgen.Stencil2D(100) // ws ~ 700KB
	m := memsim.Clovertown()
	f, _ := csr.FromCOO(c)
	r1, _ := SimulateSpMV(m, f, 1, nil, 4)
	r8, _ := SimulateSpMV(m, f, 8, nil, 4)
	speedup := float64(r1.Cycles) / float64(r8.Cycles)
	if speedup < 3.5 {
		t.Errorf("cache-resident 8-thread speedup = %.2f, want > 3.5", speedup)
	}
}
