package ell

import "spmv/internal/core"

// Verify implements core.Verifier: both padded arrays sized exactly
// rows×Width, every stored column index (padding included — the kernel
// multiplies padding by x[col]) inside [0, cols), and the logical row
// lengths within the width and summing to nnz. O(rows×Width).
func (m *Matrix) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("ell: negative dimensions %dx%d", m.rows, m.cols)
	}
	if m.Width < 0 {
		return core.Shapef("ell: negative width %d", m.Width)
	}
	n := m.rows * m.Width
	if len(m.ColInd) != n || len(m.Values) != n {
		return core.Shapef("ell: arrays %d/%d values, want %d (rows %d x width %d)",
			len(m.ColInd), len(m.Values), n, m.rows, m.Width)
	}
	if n > 0 && m.cols == 0 {
		return core.Shapef("ell: stored entries for a zero-column matrix")
	}
	if err := core.CheckColInd(m.ColInd, m.cols); err != nil {
		return err
	}
	if len(m.rowLen) != m.rows {
		return core.Shapef("ell: row length array %d, want %d", len(m.rowLen), m.rows)
	}
	total := 0
	for i, l := range m.rowLen {
		if l < 0 || int(l) > m.Width {
			return core.Corruptf("ell: row %d length %d outside [0,%d]", i, l, m.Width)
		}
		total += int(l)
	}
	if total != m.nnz {
		return core.Shapef("ell: row lengths sum to %d, nnz is %d", total, m.nnz)
	}
	return nil
}
