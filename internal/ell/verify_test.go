package ell

import (
	"errors"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

func TestVerifyClean(t *testing.T) {
	m, err := FromCOO(matgen.Stencil2D(5))
	if err != nil {
		t.Fatalf("FromCOO: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Errorf("Verify on freshly encoded matrix: %v", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	build := func(t *testing.T) *Matrix {
		t.Helper()
		m, err := FromCOO(matgen.Stencil2D(5))
		if err != nil {
			t.Fatalf("FromCOO: %v", err)
		}
		return m
	}
	t.Run("column out of range", func(t *testing.T) {
		m := build(t)
		m.ColInd[0] = int32(m.Cols())
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("row length exceeds width", func(t *testing.T) {
		m := build(t)
		m.rowLen[0] = int32(m.Width) + 1
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("short arrays", func(t *testing.T) {
		m := build(t)
		m.Values = m.Values[:len(m.Values)-1]
		if err := m.Verify(); !errors.Is(err, core.ErrShape) {
			t.Fatalf("got %v, want ErrShape", err)
		}
	})
}
