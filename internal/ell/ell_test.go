package ell

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestConformance(t *testing.T) {
	// Unbounded fill so the skewed corpus matrices still build.
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) {
		return FromCOOMaxFill(c, 1e18)
	})
}

func TestWidthAndFill(t *testing.T) {
	c := core.NewCOO(4, 6)
	c.Add(0, 1, 1)
	c.Add(1, 0, 2)
	c.Add(1, 3, 3)
	c.Add(1, 5, 4)
	c.Add(3, 2, 5)
	c.Finalize()
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Width != 3 {
		t.Errorf("Width = %d, want 3", m.Width)
	}
	if got, want := m.Fill(), 12.0/5.0; got != want {
		t.Errorf("Fill = %v, want %v", got, want)
	}
	if m.SizeBytes() != int64(4*3*(4+8)) {
		t.Errorf("SizeBytes = %d", m.SizeBytes())
	}
}

func TestColumnMajorLayout(t *testing.T) {
	// ITPACK layout: entry k of row i lives at k*rows+i.
	c := core.NewCOO(3, 5)
	c.Add(0, 1, 10)
	c.Add(0, 4, 11)
	c.Add(2, 0, 12)
	c.Finalize()
	m, _ := FromCOO(c)
	if m.Values[0*3+0] != 10 || m.Values[1*3+0] != 11 {
		t.Errorf("row 0 misplaced: %v", m.Values)
	}
	if m.Values[0*3+2] != 12 {
		t.Errorf("row 2 misplaced: %v", m.Values)
	}
	// Padding is explicit zero with column 0.
	if m.Values[1*3+2] != 0 || m.ColInd[1*3+2] != 0 {
		t.Errorf("padding wrong: v=%v c=%d", m.Values[1*3+2], m.ColInd[1*3+2])
	}
}

func TestRejectsSkewedFill(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := matgen.PowerLaw(rng, 3000, 3, 1.2, matgen.Values{})
	if _, err := FromCOO(c); err == nil {
		m, _ := FromCOOMaxFill(c, 1e18)
		t.Errorf("power-law accepted with fill %.1f", m.Fill())
	}
}

func TestBandedIsEfficient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := matgen.Banded(rng, 2000, 10, 6, matgen.Values{})
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fill() > 2.5 {
		t.Errorf("Fill = %v on near-uniform rows", m.Fill())
	}
}

func TestEmptyMatrix(t *testing.T) {
	c := core.NewCOO(3, 3)
	c.Finalize()
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Width != 0 || m.Fill() != 1 {
		t.Errorf("Width=%d Fill=%v", m.Width, m.Fill())
	}
	y := []float64{1, 2, 3}
	m.SpMV(y, make([]float64, 3))
	for _, v := range y {
		if v != 0 {
			t.Errorf("y = %v", y)
		}
	}
}
