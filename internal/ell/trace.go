package ell

import "spmv/internal/core"

// Compute-cost model: the padded inner loop has no bounds checks or
// branches, so per-stored-entry compute is the cheapest of all formats
// — ELLPACK's bargain is extra bandwidth (padding) for minimal decode.
const ellCompPerEntry = 2

type placement struct {
	colBase, valBase uint64
}

// Place implements core.Placer.
func (m *Matrix) Place(a *core.Arena) {
	m.colBase = a.Alloc(int64(len(m.ColInd)) * 4)
	m.valBase = a.Alloc(int64(len(m.Values)) * 8)
}

var _ core.Placer = (*Matrix)(nil)
var _ core.Tracer = (*chunk)(nil)

// TraceSpMV implements core.Tracer: column-major passes over the padded
// arrays. Each pass re-touches the chunk's y range, which stays cached;
// the x gathers and the padded streams carry the cost.
func (c *chunk) TraceSpMV(xBase, yBase uint64, emit core.EmitFunc) {
	m := c.m
	if m.valBase == 0 && len(m.Values) > 0 {
		panic(core.Usagef("ell: TraceSpMV before Place"))
	}
	for k := 0; k < m.Width; k++ {
		ci := core.NewStreamCursor(m.colBase)
		vs := core.NewStreamCursor(m.valBase)
		yw := core.NewStreamCursor(yBase)
		base := k * m.rows
		for i := c.lo; i < c.hi; i++ {
			ci.Touch(emit, int64(base+i)*4, 4, false, 0)
			vs.Touch(emit, int64(base+i)*8, 8, false, 0)
			emit(core.Access{Addr: xBase + uint64(m.ColInd[base+i])*8, Size: 8, Comp: ellCompPerEntry})
			yw.Touch(emit, int64(i)*8, 8, true, 0)
		}
	}
}
