// Package ell implements the ELLPACK-ITPACK storage format, one of the
// classic CSR alternatives the paper's related work surveys (§III-A).
//
// Every row is padded to the length of the longest row and the matrix
// is stored as two dense rows×width arrays (values and column indices)
// in column-major order, as in the original ITPACK: the kernel streams
// one "generalized column" at a time with unit stride and no inner-loop
// bounds, which vectorizes trivially — at the price of storing padding.
// On skewed matrices (e.g. power-law) the padding explodes; FromCOO
// refuses to build when the fill exceeds a configurable bound, which is
// exactly the format's documented weakness.
package ell

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/partition"
)

// DefaultMaxFill is the default limit on stored/logical non-zeros.
const DefaultMaxFill = 10.0

// Matrix is a sparse matrix in ELLPACK form. Values and ColInd are
// rows×Width arrays in column-major order: element (i, k) of the padded
// row-block lives at [k*rows + i]. Padding entries have value 0 and
// column index 0.
type Matrix struct {
	rows, cols int
	nnz        int
	Width      int
	ColInd     []int32
	Values     []float64
	rowLen     []int32 // logical length of each row

	colBase, valBase uint64
}

var (
	_ core.Format   = (*Matrix)(nil)
	_ core.Splitter = (*Matrix)(nil)
)

// FromCOO builds an ELLPACK matrix, refusing if the padding would
// exceed DefaultMaxFill times the logical non-zero count.
func FromCOO(c *core.COO) (*Matrix, error) { return FromCOOMaxFill(c, DefaultMaxFill) }

// FromCOOMaxFill builds an ELLPACK matrix with an explicit fill bound.
func FromCOOMaxFill(c *core.COO, maxFill float64) (*Matrix, error) {
	c.Finalize()
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("ell: %d non-zeros exceed supported range", c.Len())
	}
	rows := c.Rows()
	counts := c.RowCounts()
	width := 0
	for _, n := range counts {
		if n > width {
			width = n
		}
	}
	if c.Len() > 0 {
		fill := float64(width) * float64(rows) / float64(c.Len())
		if fill > maxFill {
			return nil, fmt.Errorf("ell: fill %.1f exceeds limit %.1f (width %d, skewed rows)", fill, maxFill, width)
		}
	}
	m := &Matrix{
		rows: rows, cols: c.Cols(), nnz: c.Len(), Width: width,
		ColInd: make([]int32, rows*width),
		Values: make([]float64, rows*width),
		rowLen: make([]int32, rows),
	}
	fillPos := make([]int32, rows)
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		p := fillPos[i]
		fillPos[i]++
		m.ColInd[int(p)*rows+i] = int32(j)
		m.Values[int(p)*rows+i] = v
	}
	copy(m.rowLen, fillPos)
	return m, nil
}

// Name implements core.Format.
func (m *Matrix) Name() string { return "ell" }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.cols }

// NNZ implements core.Format (logical non-zeros, excluding padding).
func (m *Matrix) NNZ() int { return m.nnz }

// Fill returns stored entries (padding included) per logical non-zero.
func (m *Matrix) Fill() float64 {
	if m.nnz == 0 {
		return 1
	}
	return float64(m.rows*m.Width) / float64(m.nnz)
}

// SizeBytes implements core.Format: both padded arrays.
func (m *Matrix) SizeBytes() int64 {
	return int64(m.rows) * int64(m.Width) * (core.IdxSize + core.ValSize)
}

// SpMV computes y = A*x.
func (m *Matrix) SpMV(y, x []float64) { m.spmvRange(y, x, 0, m.rows) }

// spmvRange streams the padded columns over a row range. The padded
// entries contribute 0*x[0], so the kernel has no inner-loop branch.
func (m *Matrix) spmvRange(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		y[i] = 0
	}
	for k := 0; k < m.Width; k++ {
		colBase := k * m.rows
		for i := lo; i < hi; i++ {
			y[i] += m.Values[colBase+i] * x[m.ColInd[colBase+i]]
		}
	}
}

// Split implements core.Splitter (nnz-balanced by logical row lengths).
func (m *Matrix) Split(n int) []core.Chunk {
	prefix := make([]int64, m.rows+1)
	for i, l := range m.rowLen {
		prefix[i+1] = prefix[i] + int64(l)
	}
	bounds := partition.SplitPrefix(prefix, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		chunks = append(chunks, &chunk{m: m, lo: bounds[i], hi: bounds[i+1]})
	}
	return chunks
}

type chunk struct {
	m      *Matrix
	lo, hi int
}

func (c *chunk) RowRange() (int, int) { return c.lo, c.hi }
func (c *chunk) NNZ() int {
	n := 0
	for i := c.lo; i < c.hi; i++ {
		n += int(c.m.rowLen[i])
	}
	return n
}
func (c *chunk) SpMV(y, x []float64) { c.m.spmvRange(y, x, c.lo, c.hi) }
