// Package fpc implements an FPC-style lossless compressor for streams
// of float64 values, after Burtscher and Ratanaworabhan ("High
// Throughput Compression of Double-Precision Floating-Point Data",
// DCC 2007) — the value-compression technique the paper's §III-C cites
// from the network-transfer context.
//
// Two hash-based predictors — fcm (finite context) and dfcm
// (differential finite context) — guess each value from the preceding
// stream; the encoder XORs the value with the better guess and stores
// only the non-zero tail of the XOR plus a 4-bit code (1 bit predictor
// choice, 3 bits leading-zero-byte count). Matrix value streams with
// repeated or slowly varying coefficients compress well; incompressible
// streams expand by at most 1/16.
//
// Unlike CSR-VI this is a storage/transfer compressor, not an SpMV
// kernel format: decompression is sequential. The library uses it to
// report value-stream compressibility (cmd/mtxinfo) and for compact
// matrix files.
package fpc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DefaultTableBits sizes the predictor hash tables (2^bits entries).
const DefaultTableBits = 16

type predictor struct {
	fcm      []uint64
	dfcm     []uint64
	fcmHash  uint64
	dfcmHash uint64
	last     uint64
	mask     uint64
}

func newPredictor(tableBits int) *predictor {
	size := 1 << tableBits
	return &predictor{
		fcm:  make([]uint64, size),
		dfcm: make([]uint64, size),
		mask: uint64(size - 1),
	}
}

// next returns the two predictions for the upcoming value.
func (p *predictor) next() (fcmPred, dfcmPred uint64) {
	return p.fcm[p.fcmHash], p.dfcm[p.dfcmHash] + p.last
}

// update trains both predictors with the actual value.
func (p *predictor) update(v uint64) {
	p.fcm[p.fcmHash] = v
	p.fcmHash = ((p.fcmHash << 6) ^ (v >> 48)) & p.mask
	d := v - p.last
	p.dfcm[p.dfcmHash] = d
	p.dfcmHash = ((p.dfcmHash << 2) ^ (d >> 40)) & p.mask
	p.last = v
}

// Compress encodes values with DefaultTableBits.
func Compress(values []float64) []byte { return CompressBits(values, DefaultTableBits) }

// CompressBits encodes values using 2^tableBits-entry predictor tables.
// Layout: [tableBits:1][count:uvarint][per pair: header byte + residual
// bytes]. Each 4-bit header holds the predictor bit (high) and the
// count of leading zero bytes L (0..7); 8-L residual bytes follow in
// little-endian order (a fully predicted value stores L=7 plus one zero
// byte).
func CompressBits(values []float64, tableBits int) []byte {
	if tableBits < 4 || tableBits > 24 {
		tableBits = DefaultTableBits
	}
	out := make([]byte, 0, len(values)*5+10)
	out = append(out, byte(tableBits))
	out = binary.AppendUvarint(out, uint64(len(values)))
	p := newPredictor(tableBits)

	codes := make([]byte, 2)
	resid := make([]byte, 0, 16)
	for k := 0; k < len(values); k += 2 {
		resid = resid[:0]
		n := 2
		if k+1 >= len(values) {
			n = 1
			codes[1] = 0
		}
		for s := 0; s < n; s++ {
			v := math.Float64bits(values[k+s])
			f, d := p.next()
			p.update(v)
			xf, xd := v^f, v^d
			x := xf
			var predBit byte
			if lzb(xd) > lzb(xf) {
				x = xd
				predBit = 8
			}
			l := lzb(x)
			if l > 7 {
				l = 7
			}
			codes[s] = predBit | byte(l)
			for b := 0; b < 8-l; b++ {
				resid = append(resid, byte(x>>(8*b)))
			}
		}
		out = append(out, codes[0]<<4|codes[1])
		out = append(out, resid...)
	}
	return out
}

// lzb counts leading zero bytes of x (0..8).
func lzb(x uint64) int {
	n := 0
	for n < 8 && x&(0xff<<uint(56-8*n)) == 0 {
		n++
	}
	return n
}

// Decompress decodes a stream produced by CompressBits.
func Decompress(data []byte) ([]float64, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("fpc: truncated header")
	}
	tableBits := int(data[0])
	if tableBits < 4 || tableBits > 24 {
		return nil, fmt.Errorf("fpc: invalid table size %d", tableBits)
	}
	count, n := binary.Uvarint(data[1:])
	if n <= 0 {
		return nil, fmt.Errorf("fpc: bad count")
	}
	// Every pair of values consumes at least one header byte, so a
	// valid stream can never claim more than ~2 values per input byte;
	// reject larger counts before allocating.
	if count > 2*uint64(len(data))+2 {
		return nil, fmt.Errorf("fpc: count %d impossible for %d input bytes", count, len(data))
	}
	pos := 1 + n
	p := newPredictor(tableBits)
	out := make([]float64, 0, count)
	for uint64(len(out)) < count {
		if pos >= len(data) {
			return nil, fmt.Errorf("fpc: truncated at value %d", len(out))
		}
		hdr := data[pos]
		pos++
		n := 2
		if uint64(len(out))+1 == count {
			n = 1
		}
		for s := 0; s < n; s++ {
			code := hdr >> 4
			if s == 1 {
				code = hdr & 0x0f
			}
			l := int(code & 7)
			var x uint64
			for b := 0; b < 8-l; b++ {
				if pos >= len(data) {
					return nil, fmt.Errorf("fpc: truncated residual at value %d", len(out))
				}
				x |= uint64(data[pos]) << (8 * b)
				pos++
			}
			f, d := p.next()
			var v uint64
			if code&8 != 0 {
				v = x ^ d
			} else {
				v = x ^ f
			}
			p.update(v)
			out = append(out, math.Float64frombits(v))
		}
	}
	return out, nil
}

// Ratio returns compressed/uncompressed size for a value stream: a
// quick compressibility probe.
func Ratio(values []float64) float64 {
	if len(values) == 0 {
		return 1
	}
	return float64(len(Compress(values))) / float64(8*len(values))
}
