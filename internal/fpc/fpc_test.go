package fpc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spmv/internal/matgen"
)

func roundTrip(t *testing.T, vals []float64, what string) {
	t.Helper()
	comp := Compress(vals)
	back, err := Decompress(comp)
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if len(back) != len(vals) {
		t.Fatalf("%s: %d values back, want %d", what, len(back), len(vals))
	}
	for i := range vals {
		if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("%s: value %d = %x, want %x (lossless violated)",
				what, i, math.Float64bits(back[i]), math.Float64bits(vals[i]))
		}
	}
}

func TestRoundTripBasics(t *testing.T) {
	roundTrip(t, nil, "empty")
	roundTrip(t, []float64{1.5}, "single")
	roundTrip(t, []float64{1.5, -2.5}, "pair")
	roundTrip(t, []float64{0, 0, 0, 0, 0}, "zeros")
	roundTrip(t, []float64{math.Inf(1), math.Inf(-1), math.NaN(), math.Copysign(0, -1)}, "specials")
	seq := make([]float64, 1001)
	for i := range seq {
		seq[i] = float64(i) * 0.25
	}
	roundTrip(t, seq, "arithmetic sequence")
}

func TestRoundTripQuick(t *testing.T) {
	f := func(vals []float64) bool {
		comp := Compress(vals)
		back, err := Decompress(comp)
		if err != nil || len(back) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompressesRepeatedValues(t *testing.T) {
	// A stencil value stream ({4,-1} pattern) must compress hard.
	c := matgen.Stencil2D(40)
	vals := make([]float64, c.Len())
	for k := range vals {
		_, _, vals[k] = c.At(k)
	}
	if r := Ratio(vals); r > 0.45 {
		t.Errorf("stencil value stream ratio = %v, want < 0.45", r)
	}
}

func TestRandomDataBoundedExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	r := Ratio(vals)
	if r > 1.07 {
		t.Errorf("random stream expanded to %v, bound is 1+1/16", r)
	}
	if r < 0.85 {
		t.Errorf("random stream ratio %v suspiciously small", r)
	}
}

func TestSmoothDataCompresses(t *testing.T) {
	vals := make([]float64, 8192)
	for i := range vals {
		vals[i] = math.Sin(float64(i) / 100)
	}
	rSmooth := Ratio(vals)
	rng := rand.New(rand.NewSource(2))
	rand64 := make([]float64, 8192)
	for i := range rand64 {
		rand64[i] = rng.NormFloat64()
	}
	if rSmooth >= Ratio(rand64) {
		t.Errorf("smooth ratio %v not below random %v", rSmooth, Ratio(rand64))
	}
}

func TestTableBitsVariants(t *testing.T) {
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = float64(i % 17)
	}
	for _, bits := range []int{4, 10, 20} {
		comp := CompressBits(vals, bits)
		back, err := Decompress(comp)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("bits=%d: mismatch at %d", bits, i)
			}
		}
	}
	// Out-of-range bits fall back to the default rather than failing.
	comp := CompressBits(vals[:4], 99)
	if _, err := Decompress(comp); err != nil {
		t.Errorf("fallback table size: %v", err)
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"one byte":    {16},
		"bad bits":    {99, 2, 0},
		"truncated":   Compress([]float64{1, 2, 3, 4, 5})[:6],
		"short resid": {16, 2, 0x00}, // header promises residuals that are missing
	}
	for name, data := range cases {
		if _, err := Decompress(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecompressHugeClaimedCount(t *testing.T) {
	// Regression (found by fuzzing): a count varint claiming billions of
	// values must be rejected before allocation, not OOM.
	if _, err := Decompress([]byte("\x12\xf0\xf0\xf0\xf0O")); err == nil {
		t.Error("implausible count accepted")
	}
}

func TestRatioEmpty(t *testing.T) {
	if Ratio(nil) != 1 {
		t.Errorf("Ratio(nil) = %v", Ratio(nil))
	}
}
