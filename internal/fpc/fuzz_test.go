package fpc

import (
	"math"
	"testing"
)

// FuzzDecompress checks the decoder never panics or over-allocates on
// arbitrary input.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add(Compress([]float64{1, 2, 3}))
	f.Add(Compress(nil))
	f.Add([]byte{16, 200, 200, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := Decompress(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-compress and decode to itself.
		back, err := Decompress(Compress(vals))
		if err != nil {
			t.Fatalf("re-compress failed: %v", err)
		}
		if len(back) != len(vals) {
			t.Fatalf("length changed: %d -> %d", len(vals), len(back))
		}
		for i := range vals {
			if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("value %d changed", i)
			}
		}
	})
}

// FuzzRoundTrip checks lossless compression over arbitrary value bytes.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := make([]float64, len(raw)/8)
		for i := range vals {
			var bits uint64
			for b := 0; b < 8; b++ {
				bits |= uint64(raw[i*8+b]) << (8 * b)
			}
			vals[i] = math.Float64frombits(bits)
		}
		back, err := Decompress(Compress(vals))
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("value %d: %x != %x", i, math.Float64bits(back[i]), math.Float64bits(vals[i]))
			}
		}
	})
}
