package memsim

import "fmt"

// PackedAccess is one memory reference compacted for trace buffers:
// Meta packs size (bits 0-7), write flag (bit 8) and compute cycles
// (bits 16-31).
type PackedAccess struct {
	Addr uint64
	Meta uint32
}

// Pack builds a PackedAccess.
func Pack(addr uint64, size int, write bool, comp uint16) PackedAccess {
	m := uint32(size) & 0xff
	if write {
		m |= 1 << 8
	}
	m |= uint32(comp) << 16
	return PackedAccess{Addr: addr, Meta: m}
}

func (a PackedAccess) size() int    { return int(a.Meta & 0xff) }
func (a PackedAccess) write() bool  { return a.Meta&(1<<8) != 0 }
func (a PackedAccess) comp() uint64 { return uint64(a.Meta >> 16) }

// Result reports a simulation outcome.
type Result struct {
	Cycles    uint64   // wall time: max over threads
	PerThread []uint64 // per-thread finish time
	L1Hits    uint64
	L2Hits    uint64
	MemLines  uint64 // lines fetched over the bus
	Writeback uint64 // dirty lines written back over the bus
	BusBusy   uint64 // total bus occupancy in cycles
	BusWait   uint64 // cycles threads spent queued behind a busy bus
}

// Seconds converts the simulated cycle count to seconds on m.
func (r Result) Seconds(m Machine) float64 { return float64(r.Cycles) / m.FreqHz }

// Simulate runs the per-thread access traces against the machine and
// returns the simulated timing. placement maps each trace to a core.
// iters replays every trace that many times back to back with warm
// caches — the paper's measurement loop of 128 consecutive SpMV
// operations without cache pollution between them.
//
// The scheduler always advances the thread with the smallest local
// time, so bus queueing (the contention the compression schemes
// relieve) is causally consistent across threads.
func Simulate(m Machine, traces [][]PackedAccess, placement Placement, iters int) (Result, error) {
	if err := m.validate(); err != nil {
		return Result{}, err
	}
	if len(traces) > m.Cores {
		return Result{}, fmt.Errorf("memsim: %d traces exceed %d cores", len(traces), m.Cores)
	}
	if len(placement) != len(traces) {
		return Result{}, fmt.Errorf("memsim: placement length %d != traces %d", len(placement), len(traces))
	}
	if iters <= 0 {
		iters = 1
	}
	seen := make(map[int]bool)
	for _, c := range placement {
		if c < 0 || c >= m.Cores || seen[c] {
			return Result{}, fmt.Errorf("memsim: invalid placement %v", placement)
		}
		seen[c] = true
	}

	n := len(traces)
	l1 := make([]*Cache, n)
	l2groups := make(map[int]*Cache)
	l2 := make([]*Cache, n)
	for t := 0; t < n; t++ {
		l1[t] = NewCache(m.L1Size, m.L1Ways, m.LineSize)
		g := placement[t] / m.L2SharedBy
		if l2groups[g] == nil {
			l2groups[g] = NewCache(m.L2Size, m.L2Ways, m.LineSize)
		}
		l2[t] = l2groups[g]
	}

	var res Result
	res.PerThread = make([]uint64, n)
	time := make([]uint64, n)
	pos := make([]int, n)  // index into current iteration's trace
	iter := make([]int, n) // completed iterations
	// One bus per memory controller; cores map to controllers in
	// consecutive groups.
	controllers := m.Controllers
	if controllers <= 0 {
		controllers = 1
	}
	busFree := make([]uint64, controllers)
	ctrlOf := make([]int, n)
	for t := 0; t < n; t++ {
		ctrlOf[t] = placement[t] * controllers / m.Cores
	}

	active := n
	for active > 0 {
		// Advance the thread with the smallest local time.
		t := -1
		var tmin uint64 = ^uint64(0)
		for i := 0; i < n; i++ {
			if iter[i] >= iters {
				continue
			}
			if time[i] <= tmin {
				tmin = time[i]
				t = i
			}
		}
		tr := traces[t]
		if pos[t] >= len(tr) {
			iter[t]++
			pos[t] = 0
			if iter[t] >= iters || len(tr) == 0 {
				iter[t] = iters
				res.PerThread[t] = time[t]
				active--
			}
			continue
		}
		a := tr[pos[t]]
		pos[t]++
		time[t] += a.comp()

		if hit, _ := l1[t].Access(a.Addr, a.write()); hit {
			time[t] += m.L1Lat
			res.L1Hits++
			continue
		}
		hit2, dirtyEvict := l2[t].Access(a.Addr, a.write())
		if hit2 {
			time[t] += m.L2Lat
			res.L2Hits++
			continue
		}
		// Memory: queue on the bus, then pay the latency. The line was
		// allocated in L2 by the Access above; a dirty eviction writes
		// back over the same bus.
		start := time[t]
		bus := ctrlOf[t]
		if busFree[bus] > start {
			res.BusWait += busFree[bus] - start
			start = busFree[bus]
		}
		occupy := m.BusPerLine
		if dirtyEvict {
			occupy += m.BusPerLine
			res.Writeback++
		}
		busFree[bus] = start + occupy
		res.BusBusy += occupy
		time[t] = start + m.MemLat
		res.MemLines++
	}
	for _, ft := range res.PerThread {
		if ft > res.Cycles {
			res.Cycles = ft
		}
	}
	return res, nil
}
