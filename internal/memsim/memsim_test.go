package memsim

import "testing"

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(1<<10, 2, 64)
	if hit, _ := c.Access(0x1000, false); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Error("second access missed")
	}
	if hit, _ := c.Access(0x1030, false); !hit {
		t.Error("same-line access missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("stats: %d hits %d misses", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 64B lines, 2 sets => 256B cache. Addresses mapping to set 0:
	// multiples of 128.
	c := NewCache(256, 2, 64)
	c.Access(0*128, false)
	c.Access(1*128, false)
	c.Access(0*128, false) // refresh 0: now 1*128 is LRU
	c.Access(2*128, false) // evicts 1*128
	if !c.Contains(0 * 128) {
		t.Error("recently used line evicted")
	}
	if c.Contains(1 * 128) {
		t.Error("LRU line not evicted")
	}
	if !c.Contains(2 * 128) {
		t.Error("new line not resident")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := NewCache(128, 1, 64) // direct-mapped, 2 sets
	c.Access(0, true)         // dirty
	if _, dirty := c.Access(128, false); !dirty {
		t.Error("evicting a written line did not report dirty")
	}
	c.Access(256, false)
	if _, dirty := c.Access(0, false); dirty {
		t.Error("evicting a clean line reported dirty")
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	for _, g := range [][3]int{{0, 2, 64}, {1024, 0, 64}, {1024, 2, 63}, {1000, 2, 64}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%v) did not panic", g)
				}
			}()
			NewCache(g[0], g[1], g[2])
		}()
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(1<<10, 2, 64)
	c.Access(0, true)
	c.Reset()
	if c.Contains(0) || c.Hits != 0 || c.Misses != 0 {
		t.Error("Reset incomplete")
	}
}

func TestClovertownGeometry(t *testing.T) {
	m := Clovertown()
	if err := m.validate(); err != nil {
		t.Fatal(err)
	}
	if m.Cores != 8 || m.L2SharedBy != 2 {
		t.Errorf("cores/sharing = %d/%d", m.Cores, m.L2SharedBy)
	}
	if m.TotalL2() != 16<<20 {
		t.Errorf("TotalL2 = %d, want 16MB", m.TotalL2())
	}
}

func TestPlacements(t *testing.T) {
	close2 := ClosePlacement(2)
	if close2[0] != 0 || close2[1] != 1 {
		t.Errorf("ClosePlacement(2) = %v", close2)
	}
	spread2 := SpreadPlacement(2, 2)
	if spread2[0] != 0 || spread2[1] != 2 {
		t.Errorf("SpreadPlacement(2,2) = %v", spread2)
	}
}

func TestPackRoundTrip(t *testing.T) {
	a := Pack(0xdeadbeef, 8, true, 12345)
	if a.size() != 8 || !a.write() || a.comp() != 12345 || a.Addr != 0xdeadbeef {
		t.Errorf("Pack round trip: %+v size=%d write=%v comp=%d", a, a.size(), a.write(), a.comp())
	}
	b := Pack(64, 255, false, 0)
	if b.size() != 255 || b.write() || b.comp() != 0 {
		t.Errorf("Pack edge: size=%d write=%v comp=%d", b.size(), b.write(), b.comp())
	}
}

// streamTrace builds a trace streaming over n distinct lines.
func streamTrace(base uint64, lines int, comp uint16) []PackedAccess {
	tr := make([]PackedAccess, lines)
	for i := range tr {
		tr[i] = Pack(base+uint64(i)*64, 64, false, comp)
	}
	return tr
}

func TestSimulateComputeOnly(t *testing.T) {
	// One access fitting in cache, replayed: time ≈ comp + hit latency.
	m := Clovertown()
	tr := [][]PackedAccess{streamTrace(1<<20, 1, 100)}
	r, err := Simulate(m, tr, ClosePlacement(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 + m.MemLat // one cold miss
	if r.Cycles != want {
		t.Errorf("Cycles = %d, want %d", r.Cycles, want)
	}
	if r.MemLines != 1 {
		t.Errorf("MemLines = %d", r.MemLines)
	}
}

func TestSimulateWarmIterations(t *testing.T) {
	// A working set smaller than L1: second iteration must be all hits.
	m := Clovertown()
	tr := [][]PackedAccess{streamTrace(1<<20, 16, 10)}
	r1, _ := Simulate(m, tr, ClosePlacement(1), 1)
	r2, _ := Simulate(m, tr, ClosePlacement(1), 2)
	coldCost := r1.Cycles
	warmCost := r2.Cycles - r1.Cycles
	if warmCost >= coldCost {
		t.Errorf("warm iteration (%d cycles) not cheaper than cold (%d)", warmCost, coldCost)
	}
	if r2.L1Hits != 16 {
		t.Errorf("L1Hits = %d, want 16 warm hits", r2.L1Hits)
	}
}

func TestSimulateBandwidthContention(t *testing.T) {
	// Streams too large for cache: doubling threads must not double
	// throughput — the bus serializes line transfers.
	m := Clovertown()
	lines := 200000 // 12.8MB per thread > L2 share
	t1 := [][]PackedAccess{streamTrace(1<<24, lines, 1)}
	r1, err := Simulate(m, t1, ClosePlacement(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	t8 := make([][]PackedAccess, 8)
	for i := range t8 {
		t8[i] = streamTrace(uint64(1)<<24+uint64(i)<<28, lines, 1)
	}
	r8, err := Simulate(m, t8, ClosePlacement(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.Cycles) * 8 / float64(r8.Cycles) // work is 8x
	if speedup > 3.0 {
		t.Errorf("8-thread streaming speedup = %.2f, bus should cap it below ~3", speedup)
	}
	if speedup < 0.8 {
		t.Errorf("8-thread streaming slower than serial: %.2f", speedup)
	}
}

func TestSimulateComputeBoundScales(t *testing.T) {
	// Tiny working set, heavy compute: should scale nearly linearly.
	m := Clovertown()
	mk := func(base uint64) []PackedAccess {
		tr := make([]PackedAccess, 10000)
		for i := range tr {
			tr[i] = Pack(base+uint64(i%8)*64, 8, false, 50)
		}
		return tr
	}
	r1, _ := Simulate(m, [][]PackedAccess{mk(1 << 20)}, ClosePlacement(1), 1)
	t8 := make([][]PackedAccess, 8)
	for i := range t8 {
		t8[i] = mk(uint64(1)<<20 + uint64(i)<<16)
	}
	r8, _ := Simulate(m, t8, ClosePlacement(8), 1)
	speedup := float64(r1.Cycles) * 8 / float64(r8.Cycles)
	if speedup < 6 {
		t.Errorf("compute-bound speedup = %.2f, want near 8", speedup)
	}
}

func TestSimulateSharedVsSeparateL2(t *testing.T) {
	// Two threads each streaming ~3MB: together they overflow a shared
	// 4MB L2 but fit two separate L2s. Separate placement must win on
	// the second iteration (paper Table II: 2(2xL2) > 2(1xL2)).
	m := Clovertown()
	lines := 50000 // 3.2MB
	mk := func(base uint64) []PackedAccess { return streamTrace(base, lines, 2) }
	traces := [][]PackedAccess{mk(1 << 24), mk(1 << 28)}
	shared, err := Simulate(m, traces, ClosePlacement(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Simulate(m, traces, SpreadPlacement(2, m.L2SharedBy), 3)
	if err != nil {
		t.Fatal(err)
	}
	if spread.Cycles >= shared.Cycles {
		t.Errorf("separate L2s (%d cycles) not faster than shared (%d)", spread.Cycles, shared.Cycles)
	}
}

func TestSimulateValidation(t *testing.T) {
	m := Clovertown()
	tr := [][]PackedAccess{streamTrace(0, 1, 0)}
	if _, err := Simulate(m, tr, Placement{9}, 1); err == nil {
		t.Error("bad core accepted")
	}
	if _, err := Simulate(m, tr, Placement{0, 0}, 1); err == nil {
		t.Error("mismatched placement length accepted")
	}
	nine := make([][]PackedAccess, 9)
	for i := range nine {
		nine[i] = streamTrace(0, 1, 0)
	}
	if _, err := Simulate(m, nine, ClosePlacement(9), 1); err == nil {
		t.Error("more traces than cores accepted")
	}
	dup := [][]PackedAccess{streamTrace(0, 1, 0), streamTrace(64, 1, 0)}
	if _, err := Simulate(m, dup, Placement{3, 3}, 1); err == nil {
		t.Error("duplicate core accepted")
	}
}

func TestSimulateEmptyTrace(t *testing.T) {
	m := Clovertown()
	r, err := Simulate(m, [][]PackedAccess{nil}, ClosePlacement(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 0 {
		t.Errorf("Cycles = %d for empty trace", r.Cycles)
	}
}

func TestResultSeconds(t *testing.T) {
	m := Clovertown()
	r := Result{Cycles: 2_000_000_000}
	if s := r.Seconds(m); s != 1.0 {
		t.Errorf("Seconds = %v, want 1", s)
	}
}

func TestDualControllerScalesBetter(t *testing.T) {
	// Two memory controllers double aggregate bandwidth: a streaming
	// 8-thread workload must finish faster than on the single-MCH
	// Clovertown (Williams et al.'s Opteron observation).
	single := Clovertown()
	dual := Opteron8()
	mk := func(i int) []PackedAccess {
		return streamTrace(uint64(1)<<24+uint64(i)<<28, 150000, 1)
	}
	traces := make([][]PackedAccess, 8)
	for i := range traces {
		traces[i] = mk(i)
	}
	r1, err := Simulate(single, traces, ClosePlacement(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(dual, traces, ClosePlacement(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if float64(r2.Cycles) > 0.75*float64(r1.Cycles) {
		t.Errorf("dual controller %d cycles vs single %d: expected clear speedup",
			r2.Cycles, r1.Cycles)
	}
}

func TestControllerMapping(t *testing.T) {
	// With 2 controllers on 8 cores, threads on cores 0-3 share bus 0
	// and 4-7 share bus 1. A thread placed on core 7 must not contend
	// with one on core 0: both streaming alone on their bus should
	// finish in (near) the same time as a single-thread run.
	m := Opteron8()
	tr := streamTrace(1<<24, 100000, 1)
	tr2 := streamTrace(1<<28, 100000, 1)
	solo, _ := Simulate(m, [][]PackedAccess{tr}, Placement{0}, 1)
	pair, _ := Simulate(m, [][]PackedAccess{tr, tr2}, Placement{0, 7}, 1)
	if float64(pair.Cycles) > 1.1*float64(solo.Cycles) {
		t.Errorf("cross-socket pair %d cycles vs solo %d: buses should be independent",
			pair.Cycles, solo.Cycles)
	}
}

func TestBusWaitAccounting(t *testing.T) {
	// A lone streaming thread waits only on its own in-flight line
	// (bus service exceeds the overlapped stall); contention from eight
	// threads must dwarf that.
	m := Clovertown()
	solo, _ := Simulate(m, [][]PackedAccess{streamTrace(1<<24, 50000, 1)}, ClosePlacement(1), 1)
	traces := make([][]PackedAccess, 8)
	for i := range traces {
		traces[i] = streamTrace(uint64(1)<<24+uint64(i)<<28, 50000, 1)
	}
	many, _ := Simulate(m, traces, ClosePlacement(8), 1)
	if many.BusWait < 10*solo.BusWait {
		t.Errorf("contended BusWait %d not >> solo %d", many.BusWait, solo.BusWait)
	}
}
