package memsim

import "fmt"

// Machine describes a shared-memory multiprocessor: per-core private
// L1s, L2s shared by fixed groups of cores, and one bandwidth-limited
// bus to memory.
type Machine struct {
	Name  string
	Cores int
	// FreqHz is the core clock; cycles/FreqHz = seconds.
	FreqHz float64

	LineSize int

	L1Size, L1Ways int
	L2Size, L2Ways int
	// L2SharedBy is the number of consecutive cores sharing each L2
	// (2 on Clovertown: each Woodcrest die's pair of cores).
	L2SharedBy int

	// Latencies in core cycles. MemLat is the *effective* demand-miss
	// penalty as seen by a streaming kernel: hardware prefetchers and
	// memory-level parallelism overlap most of the raw ~200-cycle DRAM
	// latency, so the per-miss stall is far smaller than the raw
	// latency while the bus occupancy (BusPerLine) still bounds
	// aggregate bandwidth.
	L1Lat, L2Lat, MemLat uint64
	// BusPerLine is the bus occupancy of one line transfer in core
	// cycles: LineSize / (bus bytes per cycle). It bounds aggregate
	// bandwidth: FreqHz * LineSize / BusPerLine bytes/second.
	BusPerLine uint64
	// Controllers is the number of independent memory controllers;
	// cores are divided into that many consecutive groups, each with
	// its own bus of BusPerLine service time. The Clovertown's single
	// MCH is 1; NUMA systems like dual-socket Opterons (Williams et
	// al., the paper's §III-D) have one per socket. Zero means 1.
	Controllers int
}

// Clovertown returns the paper's platform (Fig 6): 8 cores at 2 GHz,
// 32KB 8-way private L1D, 4MB 16-way L2 per core pair, FSB/MCH modeled
// at ~9 GB/s effective.
func Clovertown() Machine {
	return Machine{
		Name:       "2x Intel Clovertown (paper Fig 6)",
		Cores:      8,
		FreqHz:     2e9,
		LineSize:   64,
		L1Size:     32 << 10,
		L1Ways:     8,
		L2Size:     4 << 20,
		L2Ways:     16,
		L2SharedBy: 2,
		L1Lat:      1, // effective: OOO execution hides most of the 3-cycle L1
		L2Lat:      12,
		MemLat:     16, // effective, prefetch-overlapped (raw ~200)
		BusPerLine: 19, // 64B / (2GHz/19) ≈ 6.7 GB/s effective FSB/MCH
	}
}

// Opteron8 returns an 8-core dual-socket NUMA-style machine: same
// cores and clock as the Clovertown model but per-socket memory
// controllers and smaller per-pair L2s — the topology contrast Williams
// et al. observed to scale SpMV better (paper §III-D). Local-access
// behaviour only; remote-socket penalties are not modeled.
func Opteron8() Machine {
	m := Clovertown()
	m.Name = "2-socket NUMA 8-core (Opteron-like)"
	m.L2Size = 2 << 20
	m.Controllers = 2
	return m
}

// PeakGBps is the machine's analytic memory-bandwidth roofline in
// 10^9 bytes per second: every controller's bus transferring one
// LineSize line per BusPerLine core cycles, flat out. It is the
// ceiling the bus-occupancy simulation converges to under pure
// streaming, and the fallback denominator the roofline model uses on
// hosts that have no measured probe archive.
func (m Machine) PeakGBps() float64 {
	if m.FreqHz <= 0 || m.BusPerLine == 0 {
		return 0
	}
	controllers := m.Controllers
	if controllers < 1 {
		controllers = 1
	}
	perBus := m.FreqHz * float64(m.LineSize) / float64(m.BusPerLine)
	return float64(controllers) * perBus / 1e9
}

// TotalL2 returns the aggregate L2 capacity.
func (m Machine) TotalL2() int64 {
	groups := (m.Cores + m.L2SharedBy - 1) / m.L2SharedBy
	return int64(groups) * int64(m.L2Size)
}

func (m Machine) validate() error {
	if m.Cores <= 0 || m.L2SharedBy <= 0 || m.Cores%m.L2SharedBy != 0 {
		return fmt.Errorf("memsim: invalid core/L2 grouping %d/%d", m.Cores, m.L2SharedBy)
	}
	if m.FreqHz <= 0 || m.LineSize <= 0 {
		return fmt.Errorf("memsim: invalid frequency or line size")
	}
	return nil
}

// Placement maps thread index to core index.
type Placement []int

// ClosePlacement schedules threads on "as close as possible" cores —
// the paper's default: thread pairs share an L2, four threads fill one
// package.
func ClosePlacement(threads int) Placement {
	p := make(Placement, threads)
	for i := range p {
		p[i] = i
	}
	return p
}

// SpreadPlacement schedules threads on cores with separate L2s (the
// paper's 2(2×L2) configuration): thread i goes on core i*sharedBy.
func SpreadPlacement(threads, sharedBy int) Placement {
	p := make(Placement, threads)
	for i := range p {
		p[i] = i * sharedBy
	}
	return p
}
