// Package memsim is a deterministic event-driven model of the paper's
// experimental platform (§VI-A, Fig 6): an 8-core system of two Intel
// Clovertown packages — pairs of cores sharing a 4MB L2 — behind a
// single front-side bus and memory controller. It substitutes for the
// paper's hardware testbed: Go offers no thread pinning or cache
// placement control, and the phenomena the paper measures (bandwidth
// contention, constructive/destructive L2 sharing) are properties of
// exactly this topology.
//
// The model charges each memory access of a traced SpMV kernel against
// private L1s, shared L2s and a bandwidth-limited bus: compute cycles
// come from the trace annotations, hit latencies from the cache
// configuration, and contention emerges from queueing on the bus
// server. It is a throughput model in the spirit of cache simulators
// used for memory-bound kernels, not a cycle-accurate pipeline model —
// the paper's effects live in the memory system.
package memsim

import "spmv/internal/core"

// cacheLine holds the per-way state of one set.
type cacheLine struct {
	tag   uint64
	stamp uint64 // LRU timestamp (0 = invalid)
	dirty bool
}

// Cache is a set-associative write-back, write-allocate cache with LRU
// replacement.
type Cache struct {
	sets     int
	ways     int
	lineBits uint
	lines    []cacheLine // sets × ways
	tick     uint64

	Hits, Misses uint64
}

// NewCache builds a cache of sizeBytes with the given associativity and
// line size (both powers of two).
func NewCache(sizeBytes, ways, lineSize int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineSize <= 0 ||
		lineSize&(lineSize-1) != 0 || sizeBytes%(ways*lineSize) != 0 {
		panic(core.Usagef("memsim: invalid cache geometry size=%d ways=%d line=%d", sizeBytes, ways, lineSize))
	}
	sets := sizeBytes / (ways * lineSize)
	if sets&(sets-1) != 0 {
		panic(core.Usagef("memsim: set count %d not a power of two", sets))
	}
	var lb uint
	for 1<<lb < lineSize {
		lb++
	}
	return &Cache{sets: sets, ways: ways, lineBits: lb, lines: make([]cacheLine, sets*ways)}
}

// Access looks up the line containing addr, allocating it on miss.
// It returns whether the access hit, and whether the allocation evicted
// a dirty line (which costs writeback bus bandwidth at the outermost
// level).
func (c *Cache) Access(addr uint64, write bool) (hit, evictedDirty bool) {
	c.tick++
	lineAddr := addr >> c.lineBits
	set := int(lineAddr) & (c.sets - 1)
	tag := lineAddr >> uint(log2(c.sets))
	ways := c.lines[set*c.ways : (set+1)*c.ways]

	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range ways {
		if ways[i].stamp != 0 && ways[i].tag == tag {
			ways[i].stamp = c.tick
			if write {
				ways[i].dirty = true
			}
			c.Hits++
			return true, false
		}
		if ways[i].stamp < oldest {
			oldest = ways[i].stamp
			victim = i
		}
	}
	c.Misses++
	evictedDirty = ways[victim].stamp != 0 && ways[victim].dirty
	ways[victim] = cacheLine{tag: tag, stamp: c.tick, dirty: write}
	return false, evictedDirty
}

// Contains reports whether addr's line is resident (no LRU update, no
// stat change). Used by tests.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.lineBits
	set := int(lineAddr) & (c.sets - 1)
	tag := lineAddr >> uint(log2(c.sets))
	ways := c.lines[set*c.ways : (set+1)*c.ways]
	for i := range ways {
		if ways[i].stamp != 0 && ways[i].tag == tag {
			return true
		}
	}
	return false
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
	c.tick = 0
	c.Hits = 0
	c.Misses = 0
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
