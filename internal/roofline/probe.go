// Package roofline anchors every bandwidth number this repo reports to
// a measured ceiling. The paper's thesis — SpMV is memory-bandwidth
// bound, and compression wins by shrinking the stream — is only
// checkable against a denominator: the bandwidth the host can actually
// sustain. This package supplies that denominator two ways:
//
//   - a measured probe: STREAM-style copy/scale/triad kernels run at
//     1..P threads, repeated-sample timed (mean/stddev, the same
//     summary shape the benchmark archive's Welch comparator consumes),
//     persisted per host as benchdata/ROOF_<host>.json;
//   - an analytic fallback: memsim.Machine's bus-occupancy peak
//     (PeakGBps), for hosts with no probe archive.
//
// A Model built from either source turns any (bytes/iter, secs/iter,
// threads) measurement into percent-of-roofline — the number that says
// whether a kernel is at the memory wall or leaving bandwidth on the
// table.
package roofline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"spmv/internal/stats"
)

// Schema is the ROOF_<host>.json schema version.
const Schema = 1

// Kernel names, in probe order. Bytes moved per element per sweep:
// copy and scale stream two arrays (read one, write one), triad
// streams three (read two, write one) — the classic STREAM accounting.
const (
	KernelCopy  = "copy"
	KernelScale = "scale"
	KernelTriad = "triad"
)

// Kernels lists the probe kernels in their fixed run order.
func Kernels() []string { return []string{KernelCopy, KernelScale, KernelTriad} }

func kernelBytesPerElem(kernel string) int64 {
	if kernel == KernelTriad {
		return 24
	}
	return 16
}

// Result is one (kernel, threads) probe cell: GB/s summarized over
// repeated samples, the shape the archive comparator tests drift on.
type Result struct {
	Kernel  string `json:"kernel"`
	Threads int    `json:"threads"`
	// ArrayLen is the per-array element count; each sweep moves
	// ArrayLen * bytes-per-element bytes.
	ArrayLen int `json:"array_len"`
	// SweepsPerSample is the timed sweeps behind each sample.
	SweepsPerSample int `json:"sweeps_per_sample"`
	Samples         int `json:"samples"`
	// MeanGBps and StddevGBps summarize the per-sample effective
	// bandwidth (sample stddev, n-1 denominator; 0 when Samples < 2).
	MeanGBps   float64 `json:"mean_gbps"`
	StddevGBps float64 `json:"stddev_gbps"`
}

// File is the persisted per-host probe archive.
type File struct {
	Schema int    `json:"schema"`
	Host   string `json:"host"`
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	Date   string `json:"date,omitempty"`
	// Cores is GOMAXPROCS at probe time.
	Cores   int      `json:"cores"`
	Results []Result `json:"results"`
}

// ProbeOptions tune Probe. The zero value probes 1..GOMAXPROCS threads
// with three samples per cell and a ~32 MiB working set per array.
type ProbeOptions struct {
	// MaxThreads is the highest thread count probed (1..MaxThreads,
	// doubling: 1, 2, 4, ... MaxThreads); 0 means GOMAXPROCS.
	MaxThreads int
	// Samples per (kernel, threads) cell; 0 means 3. Values >= 2 give
	// the archive comparator a spread to Welch-test drift against.
	Samples int
	// ArrayLen is the element count of each float64 array; 0 means
	// 1<<22 (32 MiB per array — far past any L2, so the sweeps stream
	// from memory).
	ArrayLen int
	// Budget bounds the probe's total measured wall time; 0 means no
	// bound. A tight budget shrinks the arrays (never below 1<<16
	// elements) rather than dropping cells, so every (kernel, threads)
	// cell always reports.
	Budget time.Duration
}

func (o ProbeOptions) withDefaults() ProbeOptions {
	if o.MaxThreads <= 0 {
		o.MaxThreads = runtime.GOMAXPROCS(0)
	}
	if o.Samples <= 0 {
		o.Samples = 3
	}
	if o.ArrayLen <= 0 {
		o.ArrayLen = 1 << 22
	}
	return o
}

// threadCounts returns 1, 2, 4, ... max (max always included).
func threadCounts(max int) []int {
	var out []int
	for t := 1; t < max; t *= 2 {
		out = append(out, t)
	}
	return append(out, max)
}

// Probe measures the host's sustainable memory bandwidth with the
// STREAM kernels and returns the per-cell results. It is pure Go: no
// cgo, no assembly — the kernels are simple enough that the compiler
// emits straight streaming loops, and the number it reports is the
// ceiling Go SpMV kernels can actually reach, which is the honest
// roofline for this runtime.
func Probe(opts ProbeOptions) (*File, error) {
	opts = opts.withDefaults()
	n := opts.ArrayLen
	if opts.Budget > 0 {
		n = budgetArrayLen(opts)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = float64(i%17) + 0.5
		c[i] = float64(i%13) + 0.25
	}

	f := &File{
		Schema: Schema,
		Host:   Hostname(),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		Date:   time.Now().UTC().Format(time.RFC3339),
		Cores:  runtime.GOMAXPROCS(0),
	}
	for _, kernel := range Kernels() {
		for _, th := range threadCounts(opts.MaxThreads) {
			r, err := probeCell(kernel, th, a, b, c, opts.Samples)
			if err != nil {
				return nil, err
			}
			f.Results = append(f.Results, r)
		}
	}
	return f, nil
}

// budgetArrayLen shrinks the per-array element count so the whole
// probe (kernels x thread counts x samples, one sweep each plus the
// calibration sweep) fits the wall-clock budget, assuming a
// pessimistic 1 GB/s floor. Never below 1<<16 elements (512 KiB/array)
// so the sweeps still stream past L1/L2.
func budgetArrayLen(opts ProbeOptions) int {
	cells := len(Kernels()) * len(threadCounts(opts.MaxThreads))
	sweeps := cells * (opts.Samples + 1)
	// At >= 1 GB/s, one sweep of n elements costs <= 24n/1e9 seconds.
	n := int(opts.Budget.Seconds() * 1e9 / (24 * float64(sweeps)))
	if n > opts.ArrayLen {
		n = opts.ArrayLen
	}
	if n < 1<<16 {
		n = 1 << 16
	}
	return n
}

// sink defeats dead-code elimination of the probe kernels: every
// sample folds a checksum into it.
var sink float64

// probeCell measures one (kernel, threads) cell: one untimed warm-up
// sweep, then samples timed sweeps, each converted to GB/s.
func probeCell(kernel string, threads int, a, b, c []float64, samples int) (Result, error) {
	sweep, err := kernelFunc(kernel)
	if err != nil {
		return Result{}, err
	}
	n := len(a)
	bytesPerSweep := int64(n) * kernelBytesPerElem(kernel)
	sweep(threads, a, b, c) // warm-up: page faults, scheduler settle
	gbps := make([]float64, 0, samples)
	for s := 0; s < samples; s++ {
		start := time.Now()
		sweep(threads, a, b, c)
		secs := time.Since(start).Seconds()
		if secs <= 0 {
			return Result{}, fmt.Errorf("roofline: %s/t%d: non-positive sweep time", kernel, threads)
		}
		gbps = append(gbps, float64(bytesPerSweep)/secs/1e9)
	}
	sink += b[n/2] + a[n/3]
	mean, stddev := stats.MeanStddev(gbps)
	return Result{
		Kernel:          kernel,
		Threads:         threads,
		ArrayLen:        n,
		SweepsPerSample: 1,
		Samples:         samples,
		MeanGBps:        mean,
		StddevGBps:      stddev,
	}, nil
}

// kernelFunc returns the sweep function for a kernel name: it runs one
// full pass over the arrays with the given number of goroutines on
// disjoint contiguous ranges, returning after all workers finish.
func kernelFunc(kernel string) (func(threads int, a, b, c []float64), error) {
	switch kernel {
	case KernelCopy:
		return func(threads int, a, b, c []float64) {
			parallelRanges(threads, len(a), func(lo, hi int) {
				copyKernel(b[lo:hi], a[lo:hi])
			})
		}, nil
	case KernelScale:
		return func(threads int, a, b, c []float64) {
			parallelRanges(threads, len(a), func(lo, hi int) {
				scaleKernel(b[lo:hi], a[lo:hi], 3.0)
			})
		}, nil
	case KernelTriad:
		return func(threads int, a, b, c []float64) {
			parallelRanges(threads, len(a), func(lo, hi int) {
				triadKernel(a[lo:hi], b[lo:hi], c[lo:hi], 3.0)
			})
		}, nil
	}
	return nil, fmt.Errorf("roofline: unknown kernel %q", kernel)
}

// parallelRanges splits [0, n) into threads contiguous ranges and runs
// body on each from its own goroutine, waiting for all.
func parallelRanges(threads, n int, body func(lo, hi int)) {
	if threads <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo := t * n / threads
		hi := (t + 1) * n / threads
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(lo, hi)
		}()
	}
	wg.Wait()
}

// The kernels keep dst/src as separate slice parameters so the range
// loops compile to straight streaming stores/loads.

func copyKernel(dst, src []float64) {
	for i := range dst {
		dst[i] = src[i]
	}
}

func scaleKernel(dst, src []float64, s float64) {
	for i := range dst {
		dst[i] = s * src[i]
	}
}

func triadKernel(dst, b, c []float64, s float64) {
	for i := range dst {
		dst[i] = b[i] + s*c[i]
	}
}
