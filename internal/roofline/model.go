package roofline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spmv/internal/memsim"
	"spmv/internal/prof/archive"
)

// Sources a Model can be built from.
const (
	SourceProbe    = "probe"
	SourceAnalytic = "analytic"
)

// Model is the bandwidth roofline: per-thread-count ceilings in GB/s.
// Built from a measured probe archive (FromFile/Load) or from a
// memsim.Machine's analytic peak (Analytic). A Model is immutable
// after construction and safe for concurrent readers.
type Model struct {
	// Source is "probe" or "analytic"; Host names the probed machine
	// ("" for analytic models).
	Source string `json:"source"`
	Host   string `json:"host,omitempty"`
	// Ceilings maps thread count to the best sustained GB/s any probe
	// kernel measured at that count. Analytic models hold a single
	// entry at thread count 0, meaning "any".
	Ceilings map[int]float64 `json:"ceilings_gbps"`
}

// FromFile builds a Model from a probe archive: per thread count, the
// ceiling is the best mean GB/s across the three kernels — the most
// bandwidth any streaming access pattern actually sustained.
func FromFile(f *File) (*Model, error) {
	if f == nil || len(f.Results) == 0 {
		return nil, fmt.Errorf("roofline: empty probe file")
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("roofline: unsupported schema %d (want %d)", f.Schema, Schema)
	}
	m := &Model{Source: SourceProbe, Host: f.Host, Ceilings: map[int]float64{}}
	for _, r := range f.Results {
		if r.Threads < 1 || r.MeanGBps <= 0 {
			continue
		}
		if r.MeanGBps > m.Ceilings[r.Threads] {
			m.Ceilings[r.Threads] = r.MeanGBps
		}
	}
	if len(m.Ceilings) == 0 {
		return nil, fmt.Errorf("roofline: probe file has no positive-bandwidth cells")
	}
	return m, nil
}

// Analytic builds a Model from a machine description's bus-occupancy
// peak: one flat ceiling, independent of thread count — the roof the
// memory simulation converges to under pure streaming.
func Analytic(mach memsim.Machine) *Model {
	return &Model{
		Source:   SourceAnalytic,
		Ceilings: map[int]float64{0: mach.PeakGBps()},
	}
}

// CeilingGBps returns the roofline for a run at the given thread
// count: the measured ceiling at the largest probed thread count not
// exceeding threads (bandwidth is monotone-ish in threads until the
// bus saturates, so the nearest-below cell is the conservative
// denominator), the smallest probed count when threads sits below all
// of them, or the flat analytic ceiling. 0 only for an empty model.
func (m *Model) CeilingGBps(threads int) float64 {
	if m == nil || len(m.Ceilings) == 0 {
		return 0
	}
	if c, ok := m.Ceilings[0]; ok {
		return c
	}
	counts := make([]int, 0, len(m.Ceilings))
	for t := range m.Ceilings {
		counts = append(counts, t)
	}
	sort.Ints(counts)
	best := counts[0]
	for _, t := range counts {
		if t > threads {
			break
		}
		best = t
	}
	return m.Ceilings[best]
}

// Pct returns the fraction of the roofline a measured bandwidth
// reached at the given thread count: gbps / CeilingGBps(threads).
// 0 when the model has no ceiling. Multiply by 100 for a percentage.
func (m *Model) Pct(gbps float64, threads int) float64 {
	c := m.CeilingGBps(threads)
	if c <= 0 {
		return 0
	}
	return gbps / c
}

// MaxThreads returns the largest probed thread count (0 for analytic
// models, whose ceiling is thread-independent).
func (m *Model) MaxThreads() int {
	best := 0
	if m == nil {
		return 0
	}
	for t := range m.Ceilings {
		if t > best {
			best = t
		}
	}
	return best
}

// ---- persistence ----

// DefaultPath returns the conventional probe-archive path for a host
// inside dir: ROOF_<host>.json (unsafe characters become '-', an
// empty host becomes "unknown" — the same convention as the benchmark
// archive's BENCH_<host>.json).
func DefaultPath(dir, host string) string {
	host = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, host)
	if host == "" {
		host = "unknown"
	}
	return filepath.Join(dir, "ROOF_"+host+".json")
}

// Hostname returns the host name for archive paths, "unknown" when
// the system call fails — archive paths must always be buildable.
func Hostname() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		return "unknown"
	}
	return host
}

// WriteFile persists a probe archive as indented JSON.
func WriteFile(path string, f *File) error {
	f.Schema = Schema
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("roofline: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("roofline: %w", err)
	}
	return nil
}

// ReadFile loads and validates a probe archive.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("roofline: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("roofline: %s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("roofline: %s: unsupported schema %d (want %d)", path, f.Schema, Schema)
	}
	return &f, nil
}

// Load builds a Model from dir's probe archive for this host.
// Callers fall back to Analytic when it errors (no archive yet).
func Load(dir string) (*Model, error) {
	f, err := ReadFile(DefaultPath(dir, Hostname()))
	if err != nil {
		return nil, err
	}
	return FromFile(f)
}

// ---- drift detection ----

// records converts a probe file into benchmark-archive records, one
// per (kernel, threads) cell with GB/s restated as seconds per sweep,
// so the archive's Welch comparator can test probe-to-probe drift with
// the same machinery the benchmark regression gate uses.
func records(f *File) []archive.Record {
	out := make([]archive.Record, 0, len(f.Results))
	for _, r := range f.Results {
		if r.MeanGBps <= 0 {
			continue
		}
		bytesPerSweep := float64(int64(r.ArrayLen) * kernelBytesPerElem(r.Kernel))
		mean := bytesPerSweep / (r.MeanGBps * 1e9)
		// First-order error propagation: relative spread carries over
		// from GB/s to seconds under inversion.
		stddev := 0.0
		if r.Samples >= 2 {
			stddev = mean * r.StddevGBps / r.MeanGBps
		}
		out = append(out, archive.Record{
			Name:     "roof/" + r.Kernel + "/t" + fmt.Sprint(r.Threads),
			Matrix:   "roof",
			Format:   r.Kernel,
			Threads:  r.Threads,
			Scale:    1,
			Iters:    r.SweepsPerSample,
			Samples:  r.Samples,
			MeanSecs: mean, StddevSecs: stddev,
			BytesPerIter: int64(bytesPerSweep),
			GBps:         r.MeanGBps,
		})
	}
	return out
}

// Drift Welch-compares two probe archives cell by cell and returns the
// cells whose bandwidth changed significantly by more than the given
// fraction (0 means the comparator's 10% default) — the "did this
// host's memory system change under us" check for committed ROOF
// archives.
func Drift(old, cur *File, slowdown float64) ([]archive.Result, error) {
	results, err := archive.Compare(records(old), records(cur), archive.Options{Slowdown: slowdown})
	if err != nil {
		return nil, err
	}
	return archive.Regressions(results), nil
}
