package roofline

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"spmv/internal/memsim"
)

func TestProbeProducesEveryCell(t *testing.T) {
	f, err := Probe(ProbeOptions{
		MaxThreads: 2,
		Samples:    2,
		ArrayLen:   1 << 16,
	})
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	wantCells := len(Kernels()) * len(threadCounts(2))
	if len(f.Results) != wantCells {
		t.Fatalf("got %d cells, want %d", len(f.Results), wantCells)
	}
	seen := map[string]bool{}
	for _, r := range f.Results {
		if r.MeanGBps <= 0 {
			t.Errorf("%s/t%d: non-positive bandwidth %v", r.Kernel, r.Threads, r.MeanGBps)
		}
		if r.Samples != 2 {
			t.Errorf("%s/t%d: %d samples, want 2", r.Kernel, r.Threads, r.Samples)
		}
		seen[r.Kernel] = true
	}
	for _, k := range Kernels() {
		if !seen[k] {
			t.Errorf("kernel %s missing from results", k)
		}
	}
	if f.Schema != Schema || f.Host == "" || f.Cores < 1 {
		t.Errorf("bad provenance: %+v", f)
	}
}

func TestProbeBudgetShrinksArrays(t *testing.T) {
	f, err := Probe(ProbeOptions{
		MaxThreads: 1,
		Samples:    2,
		Budget:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	for _, r := range f.Results {
		if r.ArrayLen >= 1<<22 {
			t.Fatalf("budgeted probe kept full-size arrays (%d elements)", r.ArrayLen)
		}
		if r.ArrayLen < 1<<16 {
			t.Fatalf("budget shrank arrays below the floor (%d elements)", r.ArrayLen)
		}
	}
}

func TestKernelsCompute(t *testing.T) {
	n := 64
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		c[i] = 2
	}
	copyKernel(b, a)
	for i := range b {
		if b[i] != a[i] {
			t.Fatalf("copy: b[%d]=%v", i, b[i])
		}
	}
	scaleKernel(b, a, 3)
	if b[4] != 12 {
		t.Fatalf("scale: b[4]=%v", b[4])
	}
	triadKernel(a, b, c, 3)
	if a[4] != 12+6 {
		t.Fatalf("triad: a[4]=%v", a[4])
	}
}

func TestFromFileCeilings(t *testing.T) {
	f := &File{Schema: Schema, Host: "h", Results: []Result{
		{Kernel: KernelCopy, Threads: 1, MeanGBps: 5},
		{Kernel: KernelTriad, Threads: 1, MeanGBps: 6},
		{Kernel: KernelCopy, Threads: 4, MeanGBps: 9},
		{Kernel: KernelScale, Threads: 4, MeanGBps: 8},
	}}
	m, err := FromFile(f)
	if err != nil {
		t.Fatalf("FromFile: %v", err)
	}
	if m.Source != SourceProbe || m.Host != "h" {
		t.Fatalf("bad model meta: %+v", m)
	}
	// Best kernel per thread count wins.
	if got := m.CeilingGBps(1); got != 6 {
		t.Errorf("CeilingGBps(1) = %v, want 6", got)
	}
	// Nearest probed count at or below the request.
	if got := m.CeilingGBps(3); got != 6 {
		t.Errorf("CeilingGBps(3) = %v, want 6 (t=1 cell)", got)
	}
	if got := m.CeilingGBps(4); got != 9 {
		t.Errorf("CeilingGBps(4) = %v, want 9", got)
	}
	if got := m.CeilingGBps(64); got != 9 {
		t.Errorf("CeilingGBps(64) = %v, want 9 (largest probed)", got)
	}
	// Below all probed counts: the smallest probed cell.
	if got := m.CeilingGBps(0); got != 6 {
		t.Errorf("CeilingGBps(0) = %v, want 6", got)
	}
	if got := m.MaxThreads(); got != 4 {
		t.Errorf("MaxThreads = %d, want 4", got)
	}
	if got := m.Pct(4.5, 4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Pct(4.5, 4) = %v, want 0.5", got)
	}
}

func TestFromFileRejectsEmptyAndBadSchema(t *testing.T) {
	if _, err := FromFile(nil); err == nil {
		t.Error("nil file accepted")
	}
	if _, err := FromFile(&File{Schema: Schema}); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := FromFile(&File{Schema: 99, Results: []Result{{Threads: 1, MeanGBps: 1}}}); err == nil {
		t.Error("bad schema accepted")
	}
}

func TestAnalyticModel(t *testing.T) {
	mach := memsim.Clovertown()
	m := Analytic(mach)
	want := mach.PeakGBps()
	if want <= 0 {
		t.Fatalf("Clovertown PeakGBps = %v", want)
	}
	for _, th := range []int{1, 2, 8, 100} {
		if got := m.CeilingGBps(th); got != want {
			t.Errorf("CeilingGBps(%d) = %v, want flat %v", th, got, want)
		}
	}
	if m.Source != SourceAnalytic {
		t.Errorf("source %q", m.Source)
	}
	// The paper models the Clovertown FSB/MCH at ~6.7 GB/s effective.
	if want < 5 || want > 9 {
		t.Errorf("Clovertown analytic peak %v GB/s outside the paper's ballpark", want)
	}
}

func TestPctZeroCeiling(t *testing.T) {
	var m *Model
	if got := m.Pct(5, 1); got != 0 {
		t.Errorf("nil model Pct = %v", got)
	}
	if got := m.CeilingGBps(1); got != 0 {
		t.Errorf("nil model ceiling = %v", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := &File{Host: "box-1", Cores: 2, Results: []Result{
		{Kernel: KernelTriad, Threads: 2, ArrayLen: 100, SweepsPerSample: 1,
			Samples: 3, MeanGBps: 7.5, StddevGBps: 0.2},
	}}
	path := DefaultPath(dir, f.Host)
	if want := filepath.Join(dir, "ROOF_box-1.json"); path != want {
		t.Fatalf("DefaultPath = %q, want %q", path, want)
	}
	if err := WriteFile(path, f); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Host != f.Host || len(got.Results) != 1 || got.Results[0].MeanGBps != 7.5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file read without error")
	}
}

func TestDefaultPathSanitizes(t *testing.T) {
	if got := DefaultPath("d", "host/with spaces"); got != filepath.Join("d", "ROOF_host-with-spaces.json") {
		t.Errorf("DefaultPath = %q", got)
	}
	if got := DefaultPath("d", ""); got != filepath.Join("d", "ROOF_unknown.json") {
		t.Errorf("DefaultPath(\"\") = %q", got)
	}
}

func TestDriftFlagsBandwidthLoss(t *testing.T) {
	cell := func(gbps, stddev float64) *File {
		return &File{Schema: Schema, Host: "h", Results: []Result{
			{Kernel: KernelTriad, Threads: 2, ArrayLen: 1 << 20, SweepsPerSample: 1,
				Samples: 5, MeanGBps: gbps, StddevGBps: stddev},
		}}
	}
	// 40% bandwidth loss with tight spread: significant regression.
	regs, err := Drift(cell(10, 0.05), cell(6, 0.05), 0.10)
	if err != nil {
		t.Fatalf("Drift: %v", err)
	}
	if len(regs) != 1 {
		t.Fatalf("40%% loss not flagged: %v", regs)
	}
	// Identical distributions: clean.
	regs, err = Drift(cell(10, 0.05), cell(10, 0.05), 0.10)
	if err != nil {
		t.Fatalf("Drift: %v", err)
	}
	if len(regs) != 0 {
		t.Fatalf("stable probe flagged: %+v", regs)
	}
}
