package cds

import "spmv/internal/core"

// Verify implements core.Verifier: offsets strictly increasing and
// inside the band range, one rows-length dense diagonal per offset,
// and per-row logical counts consistent with the total. O(diagonals +
// rows).
func (m *Matrix) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("cds: negative dimensions %dx%d", m.rows, m.cols)
	}
	if len(m.Diags) != len(m.Offsets) {
		return core.Shapef("cds: %d diagonals for %d offsets", len(m.Diags), len(m.Offsets))
	}
	if len(m.rowNNZ) != m.rows {
		return core.Shapef("cds: row count slice length %d, want %d", len(m.rowNNZ), m.rows)
	}
	for k, d := range m.Offsets {
		if k > 0 && d <= m.Offsets[k-1] {
			return core.Corruptf("cds: offsets not strictly increasing at %d (%d after %d)", k, d, m.Offsets[k-1])
		}
		if int(d) <= -m.rows || int(d) >= m.cols {
			return core.Corruptf("cds: offset %d outside band range (-%d, %d)", d, m.rows, m.cols)
		}
		if len(m.Diags[k]) != m.rows {
			return core.Shapef("cds: diagonal %d has length %d, want %d", k, len(m.Diags[k]), m.rows)
		}
	}
	var total int64
	for i, c := range m.rowNNZ {
		if c < 0 {
			return core.Corruptf("cds: negative non-zero count %d at row %d", c, i)
		}
		total += int64(c)
	}
	if total != int64(m.nnz) {
		return core.Corruptf("cds: per-row counts sum to %d, want nnz %d", total, m.nnz)
	}
	return nil
}
