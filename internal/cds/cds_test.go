package cds

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestConformance(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) {
		return FromCOOMaxFill(c, 1e18)
	})
}

func TestStencilUsesFiveDiagonals(t *testing.T) {
	n := 16
	c := matgen.Stencil2D(n)
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Diagonals() != 5 {
		t.Errorf("Diagonals = %d, want 5", m.Diagonals())
	}
	wantOffsets := []int32{int32(-n), -1, 0, 1, int32(n)}
	for i, w := range wantOffsets {
		if m.Offsets[i] != w {
			t.Fatalf("Offsets = %v, want %v", m.Offsets, wantOffsets)
		}
	}
	// No per-element index data: size is ~5*rows values.
	want := int64(5)*int64(m.Rows())*8 + 5*4
	if m.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", m.SizeBytes(), want)
	}
}

func TestIndexDataEliminated(t *testing.T) {
	// On a pure stencil CDS beats even CSR-DU on index bytes: zero.
	c := matgen.Stencil2D(32)
	m, _ := FromCOO(c)
	valueBytes := int64(m.Diagonals()) * int64(m.Rows()) * 8
	if m.SizeBytes()-valueBytes != int64(m.Diagonals())*4 {
		t.Errorf("index data = %d bytes, want %d", m.SizeBytes()-valueBytes, m.Diagonals()*4)
	}
}

func TestRejectsScattered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := matgen.RandomUniform(rng, 500, 500, 5, matgen.Values{})
	if _, err := FromCOO(c); err == nil {
		t.Error("scattered matrix accepted (every nnz adds a diagonal)")
	}
}

func TestRectangularDiagonals(t *testing.T) {
	// Tall and wide rectangular matrices exercise the range clipping.
	for _, dims := range [][2]int{{10, 3}, {3, 10}} {
		c := core.NewCOO(dims[0], dims[1])
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				if (i+j)%3 == 0 {
					c.Add(i, j, float64(i+j+1))
				}
			}
		}
		c.Finalize()
		m, err := FromCOOMaxFill(c, 1e18)
		if err != nil {
			t.Fatal(err)
		}
		d := core.DenseFromCOO(c)
		x := testmat.RandVec(rand.New(rand.NewSource(2)), dims[1])
		want := make([]float64, dims[0])
		got := make([]float64, dims[0])
		d.SpMV(want, x)
		m.SpMV(got, x)
		testmat.AssertClose(t, "rect cds", got, want, 1e-12)
	}
}

func TestSplitMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := matgen.Banded(rng, 600, 4, 5, matgen.Values{})
	m, err := FromCOOMaxFill(c, 20)
	if err != nil {
		t.Fatal(err)
	}
	x := testmat.RandVec(rng, c.Cols())
	want := make([]float64, c.Rows())
	m.SpMV(want, x)
	got := make([]float64, c.Rows())
	for _, ch := range m.Split(5) {
		ch.SpMV(got, x)
	}
	testmat.AssertClose(t, "cds chunks", got, want, 1e-12)
}
