package cds

import "spmv/internal/core"

// Compute-cost model: the diagonal kernel is branch-free with unit
// stride on both the diagonal and x — no index load at all.
const cdsCompPerEntry = 2

// Place implements core.Placer: one address range per diagonal.
func (m *Matrix) Place(a *core.Arena) {
	m.diagBase = make([]uint64, len(m.Diags))
	for k := range m.Diags {
		m.diagBase[k] = a.Alloc(int64(len(m.Diags[k])) * 8)
	}
}

var _ core.Placer = (*Matrix)(nil)
var _ core.Tracer = (*chunk)(nil)

// TraceSpMV implements core.Tracer. Both the diagonal values and the x
// accesses stream with unit stride — CDS moves no index bytes, which is
// the format's entire working-set argument.
func (c *chunk) TraceSpMV(xBase, yBase uint64, emit core.EmitFunc) {
	m := c.m
	if len(m.Diags) > 0 && m.diagBase == nil {
		panic(core.Usagef("cds: TraceSpMV before Place"))
	}
	for k, d := range m.Offsets {
		dg := core.NewStreamCursor(m.diagBase[k])
		xs := core.NewStreamCursor(xBase)
		yw := core.NewStreamCursor(yBase)
		iLo, iHi := c.lo, c.hi
		if d < 0 {
			if low := -int(d); iLo < low {
				iLo = low
			}
		}
		if high := m.cols - int(d); iHi > high {
			iHi = high
		}
		for i := iLo; i < iHi; i++ {
			dg.Touch(emit, int64(i)*8, 8, false, 0)
			xs.Touch(emit, int64(i+int(d))*8, 8, false, cdsCompPerEntry)
			yw.Touch(emit, int64(i)*8, 8, true, 0)
		}
	}
}
