package cds

import (
	"errors"
	"testing"

	"spmv/internal/core"
)

func buildVerifyFixture(t *testing.T) *Matrix {
	t.Helper()
	c := core.NewCOO(6, 6)
	for i := 0; i < 6; i++ {
		c.Add(i, i, 2)
		if i+1 < 6 {
			c.Add(i, i+1, -1)
			c.Add(i+1, i, -1)
		}
	}
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVerifyClean(t *testing.T) {
	if err := buildVerifyFixture(t).Verify(); err != nil {
		t.Fatalf("Verify on valid matrix: %v", err)
	}
}

func TestVerifyCorrupt(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Matrix)
		want    error
	}{
		{"offsets-unsorted", func(m *Matrix) { m.Offsets[0], m.Offsets[2] = m.Offsets[2], m.Offsets[0] }, core.ErrCorrupt},
		{"offset-out-of-band", func(m *Matrix) { m.Offsets[2] = 99 }, core.ErrCorrupt},
		{"short-diagonal", func(m *Matrix) { m.Diags[1] = m.Diags[1][:3] }, core.ErrShape},
		{"count-mismatch", func(m *Matrix) { m.rowNNZ[0] += 5 }, core.ErrCorrupt},
		{"negative-count", func(m *Matrix) { m.rowNNZ[0] = -1; m.rowNNZ[1]++ }, core.ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := buildVerifyFixture(t)
			tc.corrupt(m)
			err := m.Verify()
			if err == nil {
				t.Fatal("Verify accepted corrupted matrix")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Verify = %v, want %v", err, tc.want)
			}
		})
	}
}
