// Package cds implements Compressed Diagonal Storage (CDS, §III-A of
// the paper's related-work survey): the matrix is stored as a set of
// dense diagonals, indexed by their offset from the main diagonal. For
// genuinely banded matrices (stencils, banded FEM) this eliminates
// column indices entirely — the ultimate index compression — but any
// stray off-band non-zero adds a whole n-element diagonal, so FromCOO
// enforces a fill bound like the other padded formats.
package cds

import (
	"fmt"
	"math"
	"sort"

	"spmv/internal/core"
	"spmv/internal/partition"
)

// DefaultMaxFill is the default limit on stored/logical non-zeros.
const DefaultMaxFill = 4.0

// Matrix is a sparse matrix in CDS form. Diagonal k holds elements
// (i, i+Offsets[k]); Diag[k] has length rows with zeros outside the
// valid range.
type Matrix struct {
	rows, cols int
	nnz        int
	Offsets    []int32
	Diags      [][]float64
	rowNNZ     []int32

	diagBase []uint64
}

var (
	_ core.Format   = (*Matrix)(nil)
	_ core.Splitter = (*Matrix)(nil)
)

// FromCOO builds a CDS matrix with the default fill bound.
func FromCOO(c *core.COO) (*Matrix, error) { return FromCOOMaxFill(c, DefaultMaxFill) }

// FromCOOMaxFill builds a CDS matrix with an explicit fill bound.
func FromCOOMaxFill(c *core.COO, maxFill float64) (*Matrix, error) {
	c.Finalize()
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("cds: %d non-zeros exceed supported range", c.Len())
	}
	offsets := map[int32]struct{}{}
	for k := 0; k < c.Len(); k++ {
		i, j, _ := c.At(k)
		offsets[int32(j-i)] = struct{}{}
	}
	if c.Len() > 0 {
		fill := float64(len(offsets)) * float64(c.Rows()) / float64(c.Len())
		if fill > maxFill {
			return nil, fmt.Errorf("cds: %d diagonals for %d nnz (fill %.1f > %.1f)",
				len(offsets), c.Len(), fill, maxFill)
		}
	}
	m := &Matrix{rows: c.Rows(), cols: c.Cols(), nnz: c.Len(), rowNNZ: make([]int32, c.Rows())}
	m.Offsets = make([]int32, 0, len(offsets))
	for d := range offsets {
		m.Offsets = append(m.Offsets, d)
	}
	sort.Slice(m.Offsets, func(a, b int) bool { return m.Offsets[a] < m.Offsets[b] })
	index := make(map[int32]int, len(m.Offsets))
	m.Diags = make([][]float64, len(m.Offsets))
	for k, d := range m.Offsets {
		index[d] = k
		m.Diags[k] = make([]float64, c.Rows())
	}
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		m.Diags[index[int32(j-i)]][i] += v
		m.rowNNZ[i]++
	}
	return m, nil
}

// Name implements core.Format.
func (m *Matrix) Name() string { return "cds" }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.cols }

// NNZ implements core.Format (logical non-zeros).
func (m *Matrix) NNZ() int { return m.nnz }

// Diagonals returns the stored diagonal count.
func (m *Matrix) Diagonals() int { return len(m.Offsets) }

// Fill returns stored entries per logical non-zero.
func (m *Matrix) Fill() float64 {
	if m.nnz == 0 {
		return 1
	}
	return float64(len(m.Offsets)*m.rows) / float64(m.nnz)
}

// SizeBytes implements core.Format: the diagonals plus their offsets —
// note there is no per-element index data at all.
func (m *Matrix) SizeBytes() int64 {
	return int64(len(m.Offsets))*int64(m.rows)*core.ValSize +
		int64(len(m.Offsets))*core.IdxSize
}

// SpMV computes y = A*x, one dense diagonal at a time.
func (m *Matrix) SpMV(y, x []float64) { m.spmvRange(y, x, 0, m.rows) }

func (m *Matrix) spmvRange(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		y[i] = 0
	}
	for k, d := range m.Offsets {
		diag := m.Diags[k]
		iLo, iHi := lo, hi
		if d < 0 {
			if low := -int(d); iLo < low {
				iLo = low
			}
		}
		// Column i+d must stay inside the matrix for any sign of d.
		if high := m.cols - int(d); iHi > high {
			iHi = high
		}
		off := int(d)
		for i := iLo; i < iHi; i++ {
			y[i] += diag[i] * x[i+off]
		}
	}
}

// Split implements core.Splitter.
func (m *Matrix) Split(n int) []core.Chunk {
	prefix := make([]int64, m.rows+1)
	for i, c := range m.rowNNZ {
		prefix[i+1] = prefix[i] + int64(c)
	}
	bounds := partition.SplitPrefix(prefix, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		chunks = append(chunks, &chunk{m: m, lo: bounds[i], hi: bounds[i+1]})
	}
	return chunks
}

type chunk struct {
	m      *Matrix
	lo, hi int
}

func (c *chunk) RowRange() (int, int) { return c.lo, c.hi }
func (c *chunk) NNZ() int {
	n := 0
	for i := c.lo; i < c.hi; i++ {
		n += int(c.m.rowNNZ[i])
	}
	return n
}
func (c *chunk) SpMV(y, x []float64) { c.m.spmvRange(y, x, c.lo, c.hi) }
