package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotBasic(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if Dot(nil, nil) != 0 {
		t.Error("Dot(nil,nil) != 0")
	}
	// Mismatched lengths use the shorter.
	if got := Dot([]float64{1, 2}, []float64{3}); got != 3 {
		t.Errorf("Dot short = %v", got)
	}
}

func TestDotMatchesNaive(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, int(n))
		b := make([]float64, int(n))
		naive := 0.0
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		for i := range a {
			naive += a[i] * b[i]
		}
		return math.Abs(Dot(a, b)-naive) < 1e-9*(1+math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("Axpy = %v, want %v", y, want)
		}
	}
}

func TestNorms(t *testing.T) {
	a := []float64{3, -4}
	if Norm2(a) != 5 {
		t.Errorf("Norm2 = %v", Norm2(a))
	}
	if Norm1(a) != 7 {
		t.Errorf("Norm1 = %v", Norm1(a))
	}
	if NormInf(a) != 4 {
		t.Errorf("NormInf = %v", NormInf(a))
	}
	if NormInf(nil) != 0 || Norm1(nil) != 0 || Norm2(nil) != 0 {
		t.Error("empty norms not 0")
	}
}

func TestNormOrdering(t *testing.T) {
	// ||x||_inf <= ||x||_2 <= ||x||_1 for all x.
	f := func(xs []float64) bool {
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		inf, two, one := NormInf(xs), Norm2(xs), Norm1(xs)
		return inf <= two*(1+1e-12) && two <= one*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleSubZero(t *testing.T) {
	x := []float64{2, 4}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("Scale = %v", x)
	}
	dst := make([]float64, 2)
	Sub(dst, []float64{5, 6}, []float64{1, 4})
	if dst[0] != 4 || dst[1] != 2 {
		t.Errorf("Sub = %v", dst)
	}
	Zero(dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Errorf("Zero = %v", dst)
	}
}

func BenchmarkDot(b *testing.B) {
	n := 1 << 16
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 3)
		y[i] = float64(i % 5)
	}
	b.SetBytes(int64(16 * n))
	var s float64
	for i := 0; i < b.N; i++ {
		s = Dot(x, y)
	}
	dotSink = s
}

var dotSink float64
