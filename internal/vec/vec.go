// Package vec provides the dense vector kernels the iterative solvers
// are built from: dot products, axpy updates and norms. They are the
// non-SpMV remainder of a Krylov iteration — cheap relative to the
// matrix product, but on the hot path of every solver in the library.
package vec

import "math"

// Dot returns the inner product of a and b (shorter length governs).
func Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	// Unrolled accumulation: four independent partial sums let the FPU
	// pipeline overlap the adds.
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x element-wise.
func Axpy(alpha float64, x, y []float64) {
	n := len(y)
	if len(x) < n {
		n = len(x)
	}
	for i := 0; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Norm1 returns the L1 norm of a.
func Norm1(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the maximum absolute element of a (0 for empty).
func NormInf(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Scale computes x *= alpha.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Sub computes dst = a - b element-wise.
func Sub(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Zero clears x.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}
