// Package precond implements preconditioners for the library's Krylov
// solvers. Preconditioning multiplies the SpMV count per solved system
// down and the per-iteration triangular solves stream the factor
// matrices — so the working-set compression story of the paper applies
// to the preconditioned iteration exactly as to plain SpMV.
//
// ILU(0) is the classic zero-fill incomplete LU factorization: L and U
// live on A's sparsity pattern, construction is one O(nnz·row) pass,
// and Apply performs the two triangular solves.
package precond

import (
	"fmt"
	"math"

	"spmv/internal/core"
)

// ILU0 is a zero-fill incomplete LU factorization. L is unit lower
// triangular and U upper triangular, both restricted to A's pattern and
// stored together row-wise.
type ILU0 struct {
	n       int
	rowPtr  []int32
	colInd  []int32
	vals    []float64
	diagPos []int32 // position of the diagonal in each row
}

// NewILU0 factors a square matrix with a full diagonal. It returns an
// error on structural problems (missing or zero pivots).
func NewILU0(c *core.COO) (*ILU0, error) {
	c.Finalize()
	if c.Rows() != c.Cols() {
		return nil, fmt.Errorf("precond: ILU0 needs a square matrix, got %dx%d", c.Rows(), c.Cols())
	}
	n := c.Rows()
	p := &ILU0{n: n, rowPtr: make([]int32, n+1), diagPos: make([]int32, n)}
	// Build CSR arrays (pattern + initial values).
	for k := 0; k < c.Len(); k++ {
		i, _, _ := c.At(k)
		p.rowPtr[i+1]++
	}
	for i := 0; i < n; i++ {
		p.rowPtr[i+1] += p.rowPtr[i]
	}
	p.colInd = make([]int32, c.Len())
	p.vals = make([]float64, c.Len())
	next := make([]int32, n)
	copy(next, p.rowPtr[:n])
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		pos := next[i]
		next[i]++
		p.colInd[pos] = int32(j)
		p.vals[pos] = v
	}
	// Locate diagonals.
	for i := 0; i < n; i++ {
		p.diagPos[i] = -1
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			if int(p.colInd[k]) == i {
				p.diagPos[i] = k
				break
			}
		}
		if p.diagPos[i] < 0 {
			return nil, fmt.Errorf("precond: ILU0 needs a structurally full diagonal (row %d)", i)
		}
	}
	// IKJ factorization with a dense scratch map of the current row.
	pos := make([]int32, n) // column -> position in current row (+1; 0 = absent)
	for i := 0; i < n; i++ {
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			pos[p.colInd[k]] = k + 1
		}
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			j := int(p.colInd[k])
			if j >= i {
				break // columns are sorted: L part exhausted
			}
			piv := p.vals[p.diagPos[j]]
			if core.IsZero(piv) || math.IsNaN(piv) {
				clear32(pos, p.colInd[p.rowPtr[i]:p.rowPtr[i+1]])
				return nil, fmt.Errorf("precond: ILU0 zero pivot at row %d", j)
			}
			lik := p.vals[k] / piv
			p.vals[k] = lik
			// Subtract lik * U-row j from the remainder of row i,
			// restricted to row i's pattern (zero fill).
			for kk := p.diagPos[j] + 1; kk < p.rowPtr[j+1]; kk++ {
				jj := p.colInd[kk]
				if t := pos[jj]; t > 0 {
					p.vals[t-1] -= lik * p.vals[kk]
				}
			}
		}
		if core.IsZero(p.vals[p.diagPos[i]]) {
			clear32(pos, p.colInd[p.rowPtr[i]:p.rowPtr[i+1]])
			return nil, fmt.Errorf("precond: ILU0 zero pivot at row %d", i)
		}
		clear32(pos, p.colInd[p.rowPtr[i]:p.rowPtr[i+1]])
	}
	return p, nil
}

func clear32(pos []int32, cols []int32) {
	for _, j := range cols {
		pos[j] = 0
	}
}

// Apply computes z = (LU)^{-1} r: one forward substitution with the
// unit lower factor, one backward with the upper.
func (p *ILU0) Apply(z, r []float64) {
	n := p.n
	// Forward: L z = r (unit diagonal).
	for i := 0; i < n; i++ {
		sum := r[i]
		for k := p.rowPtr[i]; k < p.diagPos[i]; k++ {
			sum -= p.vals[k] * z[p.colInd[k]]
		}
		z[i] = sum
	}
	// Backward: U z = z.
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := p.diagPos[i] + 1; k < p.rowPtr[i+1]; k++ {
			sum -= p.vals[k] * z[p.colInd[k]]
		}
		z[i] = sum / p.vals[p.diagPos[i]]
	}
}

// N returns the system dimension.
func (p *ILU0) N() int { return p.n }

// FactorBytes returns the in-memory size of the factors (for the
// working-set accounting reports).
func (p *ILU0) FactorBytes() int64 {
	return int64(len(p.vals))*8 + int64(len(p.colInd)+len(p.rowPtr)+len(p.diagPos))*4
}
