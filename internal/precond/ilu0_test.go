package precond

import (
	"math"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/solver"
	"spmv/internal/testmat"
)

func TestILU0OnIdentityIsIdentity(t *testing.T) {
	c := core.NewCOO(5, 5)
	for i := 0; i < 5; i++ {
		c.Add(i, i, 1)
	}
	p, err := NewILU0(c)
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{1, 2, 3, 4, 5}
	z := make([]float64, 5)
	p.Apply(z, r)
	for i := range r {
		if z[i] != r[i] {
			t.Errorf("z = %v", z)
		}
	}
}

func TestILU0ExactForTriangularPattern(t *testing.T) {
	// For a matrix whose LU factors have no fill (e.g. tridiagonal),
	// ILU(0) is the exact LU, so Apply solves A z = r exactly.
	n := 50
	c := core.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2.5)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	c.Finalize()
	p, err := NewILU0(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	r := testmat.RandVec(rng, n)
	z := make([]float64, n)
	p.Apply(z, r)
	// Check A z = r.
	m, _ := csr.FromCOO(c)
	az := make([]float64, n)
	m.SpMV(az, z)
	testmat.AssertClose(t, "exact tridiagonal ILU0", az, r, 1e-10)
}

func TestILU0ErrorsOnBadInput(t *testing.T) {
	rect := core.NewCOO(2, 3)
	rect.Add(0, 0, 1)
	rect.Finalize()
	if _, err := NewILU0(rect); err == nil {
		t.Error("rectangular accepted")
	}
	noDiag := core.NewCOO(2, 2)
	noDiag.Add(0, 1, 1)
	noDiag.Add(1, 0, 1)
	noDiag.Finalize()
	if _, err := NewILU0(noDiag); err == nil {
		t.Error("missing diagonal accepted")
	}
	zeroPivot := core.NewCOO(2, 2)
	zeroPivot.Add(0, 0, 0)
	zeroPivot.Add(0, 1, 1)
	zeroPivot.Add(1, 0, 1)
	zeroPivot.Add(1, 1, 1)
	zeroPivot.Finalize()
	if _, err := NewILU0(zeroPivot); err == nil {
		t.Error("zero pivot accepted")
	}
}

// convectionDiffusion builds a nonsymmetric test system.
func convectionDiffusion(n int) *core.COO {
	base := matgen.Stencil2D(n)
	c := core.NewCOO(base.Rows(), base.Cols())
	for k := 0; k < base.Len(); k++ {
		i, j, v := base.At(k)
		if j == i+1 {
			v += 0.5
		}
		if j == i-1 {
			v -= 0.3
		}
		c.Add(i, j, v)
	}
	c.Finalize()
	return c
}

func TestILU0AcceleratesGMRES(t *testing.T) {
	c := convectionDiffusion(20)
	f, _ := csr.FromCOO(c)
	op, _ := solver.FromFormat(f)
	rng := rand.New(rand.NewSource(2))
	b := testmat.RandVec(rng, op.N)

	plainX := make([]float64, op.N)
	plain, err := solver.GMRES(op, b, plainX, 30, 1e-8, 100000)
	if err != nil {
		t.Fatal(err)
	}

	p, err := NewILU0(c)
	if err != nil {
		t.Fatal(err)
	}
	pop, finish := solver.RightPreconditioned(op, p)
	u := make([]float64, op.N)
	pre, err := solver.GMRES(pop, b, u, 30, 1e-8, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !pre.Converged {
		t.Fatalf("convergence: plain %+v pre %+v", plain, pre)
	}
	if pre.Iterations >= plain.Iterations {
		t.Errorf("ILU0 GMRES used %d iterations vs plain %d", pre.Iterations, plain.Iterations)
	}
	// The recovered solution must solve the original system.
	x := finish(u)
	ax := make([]float64, op.N)
	f.SpMV(ax, x)
	maxDiff := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-6 {
		t.Errorf("true residual after finish: %v", maxDiff)
	}
}

func TestILU0AcceleratesCGPrec(t *testing.T) {
	// SPD system: ILU(0) of a symmetric matrix applied through CGPrec.
	c := matgen.Stencil2D(24)
	f, _ := csr.FromCOO(c)
	op, _ := solver.FromFormat(f)
	rng := rand.New(rand.NewSource(3))
	b := testmat.RandVec(rng, op.N)

	x1 := make([]float64, op.N)
	plain, err := solver.CG(op, b, x1, 1e-9, 100000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewILU0(c)
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, op.N)
	pre, err := solver.CGPrec(op, p, b, x2, 1e-9, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !pre.Converged {
		t.Fatalf("convergence: plain %+v pre %+v", plain, pre)
	}
	if pre.Iterations >= plain.Iterations {
		t.Errorf("ILU0 CG used %d iterations vs plain %d", pre.Iterations, plain.Iterations)
	}
	testmat.AssertClose(t, "solutions agree", x2, x1, 1e-6)
}

func TestFactorBytes(t *testing.T) {
	c := matgen.Stencil2D(8)
	p, _ := NewILU0(c)
	if p.FactorBytes() <= 0 || p.N() != 64 {
		t.Errorf("FactorBytes=%d N=%d", p.FactorBytes(), p.N())
	}
}
