package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvenBasic(t *testing.T) {
	b := Even(10, 4)
	want := []int{0, 2, 5, 7, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("Even(10,4) = %v, want %v", b, want)
		}
	}
}

func TestEvenMorePartsThanItems(t *testing.T) {
	b := Even(2, 5)
	if b[0] != 0 || b[5] != 2 {
		t.Fatalf("Even(2,5) = %v", b)
	}
	for i := 0; i < 5; i++ {
		if b[i+1] < b[i] {
			t.Fatalf("Even(2,5) boundaries decrease: %v", b)
		}
	}
}

func TestEvenPanics(t *testing.T) {
	for _, c := range []struct{ n, p int }{{-1, 2}, {5, 0}, {5, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Even(%d,%d) did not panic", c.n, c.p)
				}
			}()
			Even(c.n, c.p)
		}()
	}
}

func prefixOf(counts []int) []int64 {
	p := make([]int64, len(counts)+1)
	for i, c := range counts {
		p[i+1] = p[i] + int64(c)
	}
	return p
}

func TestSplitPrefixCoversAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		parts := 1 + rng.Intn(16)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(50)
		}
		p := prefixOf(counts)
		b := SplitPrefix(p, parts)
		if len(b) != parts+1 || b[0] != 0 || b[parts] != n {
			return false
		}
		for i := 0; i < parts; i++ {
			if b[i+1] < b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitPrefixBalance(t *testing.T) {
	// Uniform weights must split within one item of perfect balance.
	counts := make([]int, 1000)
	for i := range counts {
		counts[i] = 3
	}
	p := prefixOf(counts)
	for _, parts := range []int{1, 2, 4, 8, 7} {
		b := SplitPrefix(p, parts)
		imb := Imbalance(p, b)
		if imb > 1.02 {
			t.Errorf("parts=%d imbalance = %v, want <= 1.02", parts, imb)
		}
		_ = b
	}
}

func TestSplitPrefixSkewed(t *testing.T) {
	// One huge row: it must end up alone-ish, and all boundaries stay valid.
	counts := []int{1, 1, 1000, 1, 1, 1}
	p := prefixOf(counts)
	b := SplitPrefix(p, 4)
	if b[0] != 0 || b[4] != 6 {
		t.Fatalf("bounds = %v", b)
	}
	// The part containing the huge row carries nearly all weight; others are tiny.
	var bigParts int
	for i := 0; i < 4; i++ {
		if p[b[i+1]]-p[b[i]] >= 1000 {
			bigParts++
		}
	}
	if bigParts != 1 {
		t.Errorf("expected exactly 1 part with the heavy row, got %d (bounds %v)", bigParts, b)
	}
}

func TestSplitPrefixPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SplitPrefix with bad prefix did not panic")
			}
		}()
		SplitPrefix([]int64{5, 6}, 2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SplitPrefix with parts=0 did not panic")
			}
		}()
		SplitPrefix([]int64{0, 1}, 0)
	}()
}

func TestSplitRowsByNNZ(t *testing.T) {
	rowPtr := []int32{0, 4, 4, 8, 12, 12, 16}
	b := SplitRowsByNNZ(rowPtr, 4)
	if b[0] != 0 || b[len(b)-1] != 6 {
		t.Fatalf("bounds = %v", b)
	}
	p := make([]int64, len(rowPtr))
	for i, v := range rowPtr {
		p[i] = int64(v)
	}
	if imb := Imbalance(p, b); imb > 1.01 {
		t.Errorf("imbalance = %v on perfectly divisible input", imb)
	}
}

func TestSplitByCounts(t *testing.T) {
	b := SplitByCounts([]int{10, 0, 0, 10}, 2)
	if b[0] != 0 || b[2] != 4 {
		t.Fatalf("bounds = %v", b)
	}
	if b[1] < 1 || b[1] > 3 {
		t.Errorf("middle boundary = %d, want in [1,3]", b[1])
	}
}

func TestEvenZeroItems(t *testing.T) {
	// n == 0 (an empty matrix) must yield all-zero boundaries, not panic.
	b := Even(0, 4)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("Even(0,4)[%d] = %d, want 0", i, v)
		}
	}
}

func TestSplitPrefixMorePartsThanItems(t *testing.T) {
	// parts > n: extra parts come out empty, boundaries stay monotone.
	p := prefixOf([]int{5, 3})
	b := SplitPrefix(p, 7)
	if len(b) != 8 || b[0] != 0 || b[7] != 2 {
		t.Fatalf("bounds = %v", b)
	}
	for i := 0; i < 7; i++ {
		if b[i+1] < b[i] {
			t.Fatalf("boundaries decrease: %v", b)
		}
	}
}

func TestSplitPrefixEmpty(t *testing.T) {
	// n == 0 with a valid prefix ({0}): every part is the empty range.
	b := SplitPrefix([]int64{0}, 3)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("SplitPrefix(empty,3)[%d] = %d, want 0", i, v)
		}
	}
}

func TestSplitRowsByNNZSingleRow(t *testing.T) {
	// A single-row matrix split over many threads: one part gets the row,
	// the rest are empty, and all weight is accounted for.
	rowPtr := []int32{0, 9}
	b := SplitRowsByNNZ(rowPtr, 4)
	if len(b) != 5 || b[0] != 0 || b[4] != 1 {
		t.Fatalf("bounds = %v", b)
	}
	p := []int64{0, 9}
	var rowParts int
	for i := 0; i < 4; i++ {
		if p[b[i+1]]-p[b[i]] == 9 {
			rowParts++
		}
	}
	if rowParts != 1 {
		t.Errorf("expected exactly 1 part holding the row, bounds %v", b)
	}
}

func TestSplitByCountsEmpty(t *testing.T) {
	b := SplitByCounts(nil, 2)
	if len(b) != 3 || b[0] != 0 || b[2] != 0 {
		t.Fatalf("bounds = %v", b)
	}
}

func TestImbalanceZeroWeight(t *testing.T) {
	p := []int64{0, 0, 0}
	if got := Imbalance(p, []int{0, 1, 2}); got != 1 {
		t.Errorf("Imbalance on zero weight = %v, want 1", got)
	}
}

func TestImbalancePerfect(t *testing.T) {
	p := prefixOf([]int{2, 2, 2, 2})
	if got := Imbalance(p, []int{0, 2, 4}); got != 1 {
		t.Errorf("Imbalance = %v, want 1", got)
	}
}
