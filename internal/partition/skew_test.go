package partition

import (
	"errors"
	"testing"

	"spmv/internal/core"
)

// TestSplitPrefixDenseMiddleRow pins the skew bugfix: a row heavier
// than total/parts used to collapse several consecutive boundaries
// onto its start index (each target inside the row resolved to the
// same "first prefix >= target" position, then clamped), producing
// empty middle parts and one part holding the heavy row plus
// everything before it.
//
// Weights 10,10,10,70,10,10,10,10 over 4 parts: the old round-up
// placement produced bounds [0,4,4,5,8] — parts weighing 100, 0, 10,
// 30, Imbalance 2.857 — even though row granularity permits 2.0 (the
// 70-weight row alone over a mean of 35). Nearer-side placement
// reaches that floor.
func TestSplitPrefixDenseMiddleRow(t *testing.T) {
	counts := []int{10, 10, 10, 70, 10, 10, 10, 10}
	p := prefixOf(counts)
	const parts = 4
	b := SplitPrefix(p, parts)
	if b[0] != 0 || b[parts] != len(counts) {
		t.Fatalf("bounds = %v", b)
	}
	// The row-granular floor: the heavy row must sit alone in its part,
	// so max part weight == 70 and Imbalance == 70*4/140 == 2.0. The
	// pre-fix placement measured 2.857 on this input.
	imb := Imbalance(p, b)
	if imb > 2.0+1e-9 {
		t.Errorf("Imbalance = %v, want 2.0 (the heavy-row floor); bounds %v", imb, b)
	}
	// No part may be empty: the collapse symptom was b[1] == b[2].
	for i := 0; i < parts; i++ {
		if b[i] == b[i+1] {
			t.Errorf("part %d is empty: bounds %v", i, b)
		}
	}
}

// TestSplitPrefixHeavyRowNeverWorse checks, across positions of a
// dominant row, that nearer-side placement never exceeds the
// row-granular imbalance floor by more than one light row's weight.
func TestSplitPrefixHeavyRowNeverWorse(t *testing.T) {
	const n, parts = 16, 4
	for pos := 0; pos < n; pos++ {
		counts := make([]int, n)
		for i := range counts {
			counts[i] = 2
		}
		counts[pos] = 90 // 90 of 120 total: 75% in one row
		p := prefixOf(counts)
		b := SplitPrefix(p, parts)
		total := p[n]
		heavy := int64(counts[pos])
		// Floor: the heavy row alone. Tolerance: one light row.
		floor := float64(heavy+2) * parts / float64(total)
		if imb := Imbalance(p, b); imb > floor+1e-9 {
			t.Errorf("pos %d: Imbalance %v exceeds floor %v (bounds %v)", pos, imb, floor, b)
		}
	}
}

// TestImbalanceValidation pins the satellite bugfix: Imbalance used to
// compute parts = -1 from empty bounds, skip the parts == 0 guard and
// return -0; malformed bounds raised a raw index panic on
// prefix[bounds[i]]. Both now panic with a core.ErrUsage-typed error,
// like the splitters.
func TestImbalanceValidation(t *testing.T) {
	mustUsagePanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s did not panic", name)
				return
			}
			err, ok := r.(error)
			if !ok || !errors.Is(err, core.ErrUsage) {
				t.Errorf("%s panicked with %v, want an error wrapping core.ErrUsage", name, r)
			}
		}()
		fn()
	}
	p := prefixOf([]int{1, 2, 3})
	mustUsagePanic("empty bounds", func() { Imbalance(p, nil) })
	mustUsagePanic("empty prefix", func() { Imbalance(nil, []int{0}) })
	mustUsagePanic("decreasing bounds", func() { Imbalance(p, []int{0, 2, 1, 3}) })
	mustUsagePanic("negative bound", func() { Imbalance(p, []int{-1, 3}) })
	mustUsagePanic("bound past prefix", func() { Imbalance(p, []int{0, 4}) })

	// Valid degenerate inputs still return 1, not -0 or a panic.
	if got := Imbalance(p, []int{0}); got != 1 {
		t.Errorf("Imbalance with zero parts = %v, want 1", got)
	}
	if got := Imbalance([]int64{0}, []int{0, 0}); got != 1 {
		t.Errorf("Imbalance on empty items = %v, want 1", got)
	}
}

// TestSplitterConformance runs every splitter over edge-case inputs and
// checks the shared contract: parts+1 boundaries, non-decreasing,
// covering [0, n) exactly.
func TestSplitterConformance(t *testing.T) {
	cases := []struct {
		name   string
		counts []int
	}{
		{"uniform", []int{3, 3, 3, 3, 3, 3, 3, 3}},
		{"zero-weight-rows", []int{0, 5, 0, 0, 5, 0, 5, 0}},
		{"all-zero", []int{0, 0, 0, 0}},
		{"all-weight-in-last-row", []int{0, 0, 0, 0, 0, 0, 0, 100}},
		{"all-weight-in-first-row", []int{100, 0, 0, 0, 0, 0, 0, 0}},
		{"single-row", []int{7}},
		{"empty", nil},
	}
	partCounts := []int{1, 2, 3, 4, 8, 13}
	check := func(t *testing.T, label string, b []int, n, parts int) {
		t.Helper()
		if len(b) != parts+1 {
			t.Fatalf("%s: %d boundaries, want %d (%v)", label, len(b), parts+1, b)
		}
		if b[0] != 0 || b[parts] != n {
			t.Errorf("%s: bounds %v do not cover [0, %d)", label, b, n)
		}
		for i := 0; i < parts; i++ {
			if b[i+1] < b[i] {
				t.Errorf("%s: bounds decrease: %v", label, b)
			}
		}
	}
	for _, c := range cases {
		for _, parts := range partCounts {
			n := len(c.counts)
			prefix := prefixOf(c.counts)

			check(t, c.name+"/Even", Even(n, parts), n, parts)
			check(t, c.name+"/SplitPrefix", SplitPrefix(prefix, parts), n, parts)
			check(t, c.name+"/SplitByCounts", SplitByCounts(c.counts, parts), n, parts)

			rowPtr := make([]int32, n+1)
			for i, w := range prefix {
				rowPtr[i] = int32(w)
			}
			check(t, c.name+"/SplitRowsByNNZ", SplitRowsByNNZ(rowPtr, parts), n, parts)

			// parts > n is exercised by the smaller cases above; also
			// check the weights are fully accounted for.
			b := SplitPrefix(prefix, parts)
			var sum int64
			for i := 0; i < parts; i++ {
				w := prefix[b[i+1]] - prefix[b[i]]
				if w < 0 {
					t.Errorf("%s/parts=%d: negative part weight (bounds %v)", c.name, parts, b)
				}
				sum += w
			}
			if n > 0 && sum != prefix[n] {
				t.Errorf("%s/parts=%d: part weights sum to %d, want %d", c.name, parts, sum, prefix[n])
			}
		}
	}
}
