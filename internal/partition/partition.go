// Package partition implements the static load-balancing schemes of the
// paper's §II-C: row partitioning balanced by non-zero count (the scheme
// used for all of the paper's experiments), plus the even and
// prefix-weight splitters that the column- and block-partitioned
// executors build on.
package partition

import (
	"sort"
	"spmv/internal/core"
)

// Even returns parts+1 boundaries splitting [0, n) into parts nearly
// equal contiguous ranges. Boundaries are non-decreasing; ranges may be
// empty when parts > n.
func Even(n, parts int) []int {
	if parts <= 0 {
		panic(core.Usagef("partition: Even with parts=%d", parts))
	}
	if n < 0 {
		panic(core.Usagef("partition: Even with n=%d", n))
	}
	b := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		b[i] = i * n / parts
	}
	return b
}

// SplitPrefix splits [0, n) into parts contiguous ranges of
// approximately equal weight, where prefix is the length-(n+1)
// inclusive prefix-sum of per-item weights (prefix[0] == 0,
// prefix[n] == total). Boundary i is placed at the first position whose
// prefix reaches i/parts of the total, which is the paper's "each thread
// is assigned approximately the same number of elements" rule.
func SplitPrefix(prefix []int64, parts int) []int {
	if parts <= 0 {
		panic(core.Usagef("partition: SplitPrefix with parts=%d", parts))
	}
	if len(prefix) == 0 || prefix[0] != 0 {
		panic(core.Usagef("partition: SplitPrefix needs prefix with prefix[0]==0"))
	}
	n := len(prefix) - 1
	total := prefix[n]
	b := make([]int, parts+1)
	b[parts] = n
	for i := 1; i < parts; i++ {
		target := total * int64(i) / int64(parts)
		// First index whose prefix is >= target.
		j := sort.Search(n+1, func(k int) bool { return prefix[k] >= target })
		if j < b[i-1] {
			j = b[i-1]
		}
		if j > n {
			j = n
		}
		b[i] = j
	}
	return b
}

// SplitRowsByNNZ splits the rows of a CSR matrix into parts ranges of
// approximately equal non-zero count. rowPtr is the standard CSR row
// pointer (len rows+1).
func SplitRowsByNNZ(rowPtr []int32, parts int) []int {
	prefix := make([]int64, len(rowPtr))
	for i, p := range rowPtr {
		prefix[i] = int64(p) - int64(rowPtr[0])
	}
	return SplitPrefix(prefix, parts)
}

// SplitByCounts splits [0, len(counts)) into parts ranges of
// approximately equal total count (e.g. per-column nnz for column
// partitioning).
func SplitByCounts(counts []int, parts int) []int {
	prefix := make([]int64, len(counts)+1)
	for i, c := range counts {
		prefix[i+1] = prefix[i] + int64(c)
	}
	return SplitPrefix(prefix, parts)
}

// Imbalance returns max(weight of part) / (total/parts) for the given
// boundaries and prefix weights: 1.0 is a perfect balance. Returns 1 for
// zero total weight.
func Imbalance(prefix []int64, bounds []int) float64 {
	parts := len(bounds) - 1
	total := prefix[len(prefix)-1]
	if total == 0 || parts == 0 {
		return 1
	}
	var maxW int64
	for i := 0; i < parts; i++ {
		w := prefix[bounds[i+1]] - prefix[bounds[i]]
		if w > maxW {
			maxW = w
		}
	}
	return float64(maxW) * float64(parts) / float64(total)
}
