// Package partition implements the static load-balancing schemes of the
// paper's §II-C: row partitioning balanced by non-zero count (the scheme
// used for all of the paper's experiments), plus the even and
// prefix-weight splitters that the column- and block-partitioned
// executors build on.
package partition

import (
	"sort"
	"spmv/internal/core"
)

// Even returns parts+1 boundaries splitting [0, n) into parts nearly
// equal contiguous ranges. Boundaries are non-decreasing; ranges may be
// empty when parts > n.
func Even(n, parts int) []int {
	if parts <= 0 {
		panic(core.Usagef("partition: Even with parts=%d", parts))
	}
	if n < 0 {
		panic(core.Usagef("partition: Even with n=%d", n))
	}
	b := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		b[i] = i * n / parts
	}
	return b
}

// SplitPrefix splits [0, n) into parts contiguous ranges of
// approximately equal weight, where prefix is the length-(n+1)
// inclusive prefix-sum of per-item weights (prefix[0] == 0,
// prefix[n] == total). Boundary i targets i/parts of the total weight
// — the paper's "each thread is assigned approximately the same number
// of elements" rule — and lands on whichever side of the item
// straddling that target is closer to it.
//
// The side choice matters on row-length skew: an item heavier than
// total/parts straddles several consecutive targets, and always
// rounding up (the first prefix >= target) collapses those boundaries
// onto the same index, yielding empty middle parts and a tail part
// holding nearly everything. Rounding to the nearer side keeps each
// boundary as close to its target as row granularity allows, so the
// heavy item's part absorbs only the heavy item's own excess.
func SplitPrefix(prefix []int64, parts int) []int {
	if parts <= 0 {
		panic(core.Usagef("partition: SplitPrefix with parts=%d", parts))
	}
	if len(prefix) == 0 || prefix[0] != 0 {
		panic(core.Usagef("partition: SplitPrefix needs prefix with prefix[0]==0"))
	}
	n := len(prefix) - 1
	total := prefix[n]
	b := make([]int, parts+1)
	b[parts] = n
	for i := 1; i < parts; i++ {
		target := total * int64(i) / int64(parts)
		// First index whose prefix is >= target.
		j := sort.Search(n+1, func(k int) bool { return prefix[k] >= target })
		if j > n {
			j = n
		}
		// prefix[j-1] < target <= prefix[j]: step left when the item
		// ending at j overshoots the target by more than stopping short
		// would undershoot it (ties keep the old round-up placement).
		if j > 0 && prefix[j]-target > target-prefix[j-1] {
			j--
		}
		if j < b[i-1] {
			j = b[i-1]
		}
		b[i] = j
	}
	return b
}

// SplitRowsByNNZ splits the rows of a CSR matrix into parts ranges of
// approximately equal non-zero count. rowPtr is the standard CSR row
// pointer (len rows+1).
func SplitRowsByNNZ(rowPtr []int32, parts int) []int {
	prefix := make([]int64, len(rowPtr))
	for i, p := range rowPtr {
		prefix[i] = int64(p) - int64(rowPtr[0])
	}
	return SplitPrefix(prefix, parts)
}

// SplitByCounts splits [0, len(counts)) into parts ranges of
// approximately equal total count (e.g. per-column nnz for column
// partitioning).
func SplitByCounts(counts []int, parts int) []int {
	prefix := make([]int64, len(counts)+1)
	for i, c := range counts {
		prefix[i+1] = prefix[i] + int64(c)
	}
	return SplitPrefix(prefix, parts)
}

// Imbalance returns max(weight of part) / (total/parts) for the given
// boundaries and prefix weights: 1.0 is a perfect balance. Returns 1 for
// zero total weight or zero parts. It panics with a core.ErrUsage-typed
// error — like the splitters — on an empty prefix or bounds, or on
// bounds that decrease or index outside [0, len(prefix)): before this
// validation an empty bounds slice produced parts = -1, skipped the
// parts == 0 guard and returned -0, and malformed bounds panicked with
// a raw index error on prefix[bounds[i]].
func Imbalance(prefix []int64, bounds []int) float64 {
	if len(prefix) == 0 {
		panic(core.Usagef("partition: Imbalance with empty prefix"))
	}
	if len(bounds) == 0 {
		panic(core.Usagef("partition: Imbalance with empty bounds"))
	}
	prev := 0
	for _, b := range bounds {
		if b < prev || b >= len(prefix) {
			panic(core.Usagef("partition: Imbalance bounds %v not non-decreasing within [0,%d]", bounds, len(prefix)-1))
		}
		prev = b
	}
	parts := len(bounds) - 1
	total := prefix[len(prefix)-1]
	if total == 0 || parts == 0 {
		return 1
	}
	var maxW int64
	for i := 0; i < parts; i++ {
		w := prefix[bounds[i+1]] - prefix[bounds[i]]
		if w > maxW {
			maxW = w
		}
	}
	return float64(maxW) * float64(parts) / float64(total)
}
