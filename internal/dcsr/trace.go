package dcsr

import (
	"spmv/internal/core"
	"spmv/internal/varint"
)

// Compute-cost model: DCSR pays a decode branch per command. Elements
// inside RUNs amortize it; standalone DELTA commands carry the full
// misprediction-prone cost. These constants are deliberately higher
// than CSR-DU's per-unit cost — that asymmetry is the §III-B argument.
const (
	dcsrCompPerElem = 4  // delta add + multiply-accumulate
	dcsrCompPerCmd  = 10 // decode dispatch (mispredicted branch amortized)
)

// Place implements core.Placer.
func (m *Matrix) Place(a *core.Arena) {
	m.cmdBase = a.Alloc(int64(len(m.Cmds)))
	m.valBase = a.Alloc(int64(len(m.Values)) * 8)
}

var _ core.Tracer = (*chunk)(nil)

// TraceSpMV implements core.Tracer.
func (c *chunk) TraceSpMV(xBase, yBase uint64, emit core.EmitFunc) {
	m := c.m
	if m.cmdBase == 0 && len(m.Cmds) > 0 {
		panic(core.Usagef("dcsr: TraceSpMV before Place"))
	}
	if c.startMark < 0 {
		return
	}
	cmds := m.Cmds
	cs := core.NewStreamCursor(m.cmdBase)
	vs := core.NewStreamCursor(m.valBase)
	yw := core.NewStreamCursor(yBase)
	pos := c.cmdLo
	vi := c.valLo
	yi := -1
	xi := 0
	first := true
	elem := func(comp uint16) {
		vs.Touch(emit, int64(vi)*8, 8, false, 0)
		emit(core.Access{Addr: xBase + uint64(xi)*8, Size: 8, Comp: comp})
		vi++
	}
	for pos < c.cmdHi {
		cs.Touch(emit, int64(pos), 1, false, dcsrCompPerCmd)
		op := cmds[pos]
		pos++
		switch op {
		case opDelta8:
			xi += int(cmds[pos])
			pos++
			elem(dcsrCompPerElem)
		case opDelta16:
			xi += int(uint16(cmds[pos]) | uint16(cmds[pos+1])<<8)
			pos += 2
			elem(dcsrCompPerElem)
		case opDelta32:
			xi += int(uint32(cmds[pos]) | uint32(cmds[pos+1])<<8 |
				uint32(cmds[pos+2])<<16 | uint32(cmds[pos+3])<<24)
			pos += 4
			elem(dcsrCompPerElem)
		case opNewRow, opRowJmp:
			var skip uint64 = 1
			if op == opRowJmp {
				skip, pos = varint.DecodeAt(cmds, pos)
			}
			if first {
				yi = m.marks[c.startMark].row
				first = false
			} else {
				yw.Touch(emit, int64(yi)*8, 8, true, 0)
				yi += int(skip)
			}
			xi = 0
		case opRun:
			n := int(cmds[pos])
			pos++
			for k := 0; k < n; k++ {
				cs.Touch(emit, int64(pos), 1, false, 0)
				xi += int(cmds[pos])
				pos++
				elem(dcsrCompPerElem)
			}
		}
	}
	if !first {
		yw.Touch(emit, int64(yi)*8, 8, true, 0)
	}
}
