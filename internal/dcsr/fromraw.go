package dcsr

import (
	"spmv/internal/core"
	"spmv/internal/varint"
)

// scanCmds walks a DCSR command stream trusting nothing: opcode
// validity, varint termination, per-element column bounds, row bounds,
// and the total element count are all checked. It returns the row
// marks the partitioner needs. Errors wrap core.ErrCorrupt /
// core.ErrTruncated / core.ErrShape.
func scanCmds(cmds []byte, nvals, rows, cols int) ([]mark, error) {
	var marks []mark
	pos := 0
	vi := 0
	yi := -1
	xi := 0
	element := func(d uint64, at int) error {
		if d > uint64(cols) {
			return core.Corruptf("dcsr: delta %d exceeds %d cols at offset %d", d, cols, at)
		}
		xi += int(d)
		if xi >= cols {
			return core.Corruptf("dcsr: column %d out of range (%d cols) at offset %d", xi, cols, at)
		}
		vi++
		return nil
	}
	for pos < len(cmds) {
		op := cmds[pos]
		at := pos
		pos++
		if yi < 0 && op != opNewRow && op != opRowJmp {
			return nil, core.Corruptf("dcsr: stream starts with opcode %d, want a row command", op)
		}
		switch op {
		case opDelta8:
			if pos+1 > len(cmds) {
				return nil, core.Truncatedf("dcsr: DELTA8 operand at offset %d", at)
			}
			if err := element(uint64(cmds[pos]), at); err != nil {
				return nil, err
			}
			pos++
		case opDelta16:
			if pos+2 > len(cmds) {
				return nil, core.Truncatedf("dcsr: DELTA16 operand at offset %d", at)
			}
			d := uint64(cmds[pos]) | uint64(cmds[pos+1])<<8
			if err := element(d, at); err != nil {
				return nil, err
			}
			pos += 2
		case opDelta32:
			if pos+4 > len(cmds) {
				return nil, core.Truncatedf("dcsr: DELTA32 operand at offset %d", at)
			}
			d := uint64(cmds[pos]) | uint64(cmds[pos+1])<<8 |
				uint64(cmds[pos+2])<<16 | uint64(cmds[pos+3])<<24
			if err := element(d, at); err != nil {
				return nil, err
			}
			pos += 4
		case opNewRow, opRowJmp:
			var skip uint64 = 1
			if op == opRowJmp {
				var n int
				skip, n = varint.Decode(cmds[pos:])
				if n == 0 {
					return nil, core.Truncatedf("dcsr: ROWJMP varint at offset %d", pos)
				}
				if n < 0 {
					return nil, core.Corruptf("dcsr: ROWJMP varint overflow at offset %d", pos)
				}
				pos += n
				if skip == 0 {
					return nil, core.Corruptf("dcsr: zero row jump at offset %d", at)
				}
			}
			if skip > uint64(rows) {
				return nil, core.Corruptf("dcsr: row jump %d exceeds %d rows at offset %d", skip, rows, at)
			}
			yi += int(skip)
			if yi >= rows {
				return nil, core.Corruptf("dcsr: row %d out of range (%d rows)", yi, rows)
			}
			xi = 0
			marks = append(marks, mark{row: yi, cmd: at, val: vi})
		case opRun:
			if pos+1 > len(cmds) {
				return nil, core.Truncatedf("dcsr: RUN count at offset %d", at)
			}
			n := int(cmds[pos])
			pos++
			if n == 0 {
				return nil, core.Corruptf("dcsr: empty RUN at offset %d", at)
			}
			if pos+n > len(cmds) {
				return nil, core.Truncatedf("dcsr: RUN deltas at offset %d", pos)
			}
			for k := 0; k < n; k++ {
				if err := element(uint64(cmds[pos]), at); err != nil {
					return nil, err
				}
				pos++
			}
		default:
			return nil, core.Corruptf("dcsr: invalid opcode %d at offset %d", op, at)
		}
		if vi > nvals {
			return nil, core.Shapef("dcsr: command at %d overruns %d values", at, nvals)
		}
	}
	if vi != nvals {
		return nil, core.Shapef("dcsr: stream encodes %d elements, %d values given", vi, nvals)
	}
	return marks, nil
}

// FromRaw reconstructs a Matrix from a serialized command stream and
// values array (used by the matfile container). The stream is scanned
// once, trusting nothing, to validate its structure and rebuild the
// row marks that partitioning needs.
func FromRaw(cmds []byte, values []float64, rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, core.Shapef("dcsr: invalid dimensions %dx%d", rows, cols)
	}
	marks, err := scanCmds(cmds, len(values), rows, cols)
	if err != nil {
		return nil, err
	}
	m := &Matrix{rows: rows, cols: cols, Cmds: cmds, Values: values, marks: marks}
	return m, nil
}

// Verify implements core.Verifier: the full untrusting scan of the
// command stream — if Verify passes, the SpMV kernel cannot hit its
// corrupt-opcode panic or read out of bounds — plus a consistency
// check of the stored row marks.
func (m *Matrix) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("dcsr: negative dimensions %dx%d", m.rows, m.cols)
	}
	if len(m.Cmds) > 0 && (m.rows == 0 || m.cols == 0) {
		return core.Shapef("dcsr: non-empty stream for %dx%d matrix", m.rows, m.cols)
	}
	marks, err := scanCmds(m.Cmds, len(m.Values), m.rows, m.cols)
	if err != nil {
		return err
	}
	if len(marks) != len(m.marks) {
		return core.Corruptf("dcsr: %d row marks stored, stream has %d rows", len(m.marks), len(marks))
	}
	for i := range marks {
		if marks[i] != m.marks[i] {
			return core.Corruptf("dcsr: row mark %d (%+v) disagrees with stream (%+v)", i, m.marks[i], marks[i])
		}
	}
	return nil
}

// ForEach decodes the command stream and calls fn for every non-zero
// in row-major order. Like the kernel it trusts the stream; run Verify
// first on untrusted input.
func (m *Matrix) ForEach(fn func(i, j int, v float64)) {
	cmds := m.Cmds
	pos := 0
	vi := 0
	yi := -1
	xi := 0
	for pos < len(cmds) {
		op := cmds[pos]
		pos++
		switch op {
		case opDelta8:
			xi += int(cmds[pos])
			pos++
			fn(yi, xi, m.Values[vi])
			vi++
		case opDelta16:
			xi += int(uint16(cmds[pos]) | uint16(cmds[pos+1])<<8)
			pos += 2
			fn(yi, xi, m.Values[vi])
			vi++
		case opDelta32:
			xi += int(uint32(cmds[pos]) | uint32(cmds[pos+1])<<8 |
				uint32(cmds[pos+2])<<16 | uint32(cmds[pos+3])<<24)
			pos += 4
			fn(yi, xi, m.Values[vi])
			vi++
		case opNewRow:
			yi++
			xi = 0
		case opRowJmp:
			var skip uint64
			skip, pos = varint.DecodeAt(cmds, pos)
			yi += int(skip)
			xi = 0
		case opRun:
			n := int(cmds[pos])
			pos++
			for k := 0; k < n; k++ {
				xi += int(cmds[pos])
				pos++
				fn(yi, xi, m.Values[vi])
				vi++
			}
		}
	}
}

// Triplets decodes the matrix back to finalized COO form: the inverse
// of FromCOO.
func (m *Matrix) Triplets() *core.COO {
	c := core.NewCOO(m.rows, m.cols)
	m.ForEach(func(i, j int, v float64) { c.Add(i, j, v) })
	c.Finalize()
	return c
}
