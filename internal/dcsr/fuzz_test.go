package dcsr

import (
	"testing"

	"spmv/internal/csr"
	"spmv/internal/matgen"
)

// FuzzFromRaw feeds arbitrary command streams to the validating
// deserializer: it must reject or accept without panicking, and for
// anything it accepts the kernel must stay in bounds — it can never
// hit the corrupt-opcode panic — and agree with a reference CSR built
// from the decoded triplets.
func FuzzFromRaw(f *testing.F) {
	m, _ := FromCOO(matgen.Stencil2D(5))
	f.Add(m.Cmds, 25, 25, len(m.Values))
	f.Add([]byte{opNewRow, opDelta8, 0}, 1, 1, 1)
	f.Add([]byte{opRowJmp, 3, opRun, 2, 1, 1}, 5, 5, 2)
	f.Add([]byte{}, 3, 3, 0)
	f.Fuzz(func(t *testing.T, cmds []byte, rows, cols, nvals int) {
		if rows <= 0 || cols <= 0 || rows > 1000 || cols > 1000 || nvals < 0 || nvals > 10000 {
			return
		}
		values := make([]float64, nvals)
		for i := range values {
			values[i] = float64(i + 1)
		}
		mat, err := FromRaw(cmds, values, rows, cols)
		if err != nil {
			return
		}
		if verr := mat.Verify(); verr != nil {
			t.Fatalf("FromRaw accepted but Verify rejects: %v", verr)
		}
		x := make([]float64, cols)
		y := make([]float64, rows)
		for i := range x {
			x[i] = float64(i%5) + 1
		}
		mat.SpMV(y, x)
		count := 0
		mat.ForEach(func(i, j int, v float64) {
			if i < 0 || i >= rows || j < 0 || j >= cols {
				t.Fatalf("ForEach out of range: (%d,%d)", i, j)
			}
			count++
		})
		if count != nvals {
			t.Fatalf("decoded %d elements, expected %d", count, nvals)
		}
		ref, err := csr.FromCOO(mat.Triplets())
		if err != nil {
			t.Fatalf("reference CSR: %v", err)
		}
		yref := make([]float64, rows)
		ref.SpMV(yref, x)
		for i := range y {
			if y[i] != yref[i] {
				t.Fatalf("row %d: kernel %v, reference %v", i, y[i], yref[i])
			}
		}
	})
}
