// Package dcsr implements DCSR, the delta-compressed CSR of Willcock
// and Lumsdaine ("Accelerating sparse matrix computations via data
// compression", ICS 2006) — the comparator against which the paper
// positions CSR-DU (§III-B).
//
// DCSR replaces col_ind and row_ptr with a byte-oriented command
// stream built from six primitive sub-operations. Unlike CSR-DU's
// coarse units (one decode branch per unit), DCSR decodes a command for
// every element or small group, so the kernel takes a data-dependent
// branch per non-zero — the branch-misprediction cost the paper calls
// out. The original mitigates this by unrolling groups of six commands
// drawn from a pattern table; this implementation realizes that
// aggregation with the RUN command (a counted group of one-byte deltas
// executed in a tight loop), which captures the same "frequent pattern
// executed sequentially without branches" effect for the common case.
//
// The six command codes:
//
//	DELTA8  <d:1>          col += d, emit one element
//	DELTA16 <d:2>          col += d, emit one element
//	DELTA32 <d:4>          col += d, emit one element
//	NEWROW                 row++, col = 0
//	ROWJMP  <n:varint>     row += n, col = 0
//	RUN     <n:1> <d:n×1>  n one-byte deltas, emit n elements
package dcsr

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/partition"
	"spmv/internal/varint"
)

// Command opcodes.
const (
	opDelta8 = iota
	opDelta16
	opDelta32
	opNewRow
	opRowJmp
	opRun
)

// minRun is the shortest group of u8 deltas worth a RUN command: a RUN
// costs 2 bytes + n, single DELTA8s cost 2n, so n >= 2 already breaks
// even; require 3 to leave slack for the decode setup.
const minRun = 3

// Matrix is a sparse matrix in DCSR form.
type Matrix struct {
	rows, cols int
	Cmds       []byte
	Values     []float64

	marks []mark // first command of each non-empty row (for Split)

	cmdBase, valBase uint64
}

type mark struct {
	row int
	cmd int
	val int
}

var (
	_ core.Format   = (*Matrix)(nil)
	_ core.Splitter = (*Matrix)(nil)
	_ core.Placer   = (*Matrix)(nil)
)

// FromCOO encodes a triplet matrix into DCSR. The COO is finalized in
// place if needed.
func FromCOO(c *core.COO) (*Matrix, error) {
	c.Finalize()
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("dcsr: %d non-zeros exceed supported range", c.Len())
	}
	m := &Matrix{
		rows:   c.Rows(),
		cols:   c.Cols(),
		Values: make([]float64, 0, c.Len()),
		Cmds:   make([]byte, 0, 2*c.Len()),
	}
	prevRow := -1
	n := c.Len()
	for k := 0; k < n; {
		i0, _, _ := c.At(k)
		end := k
		for end < n {
			i, _, _ := c.At(end)
			if i != i0 {
				break
			}
			end++
		}
		cols := make([]int32, 0, end-k)
		for t := k; t < end; t++ {
			_, j, v := c.At(t)
			cols = append(cols, int32(j))
			m.Values = append(m.Values, v)
		}
		m.encodeRow(i0, prevRow, cols)
		prevRow = i0
		k = end
	}
	return m, nil
}

func (m *Matrix) encodeRow(row, prevRow int, cols []int32) {
	m.marks = append(m.marks, mark{row: row, cmd: len(m.Cmds), val: len(m.Values) - len(cols)})
	if skip := row - prevRow; skip == 1 {
		m.Cmds = append(m.Cmds, opNewRow)
	} else {
		m.Cmds = append(m.Cmds, opRowJmp)
		m.Cmds = varint.Append(m.Cmds, uint64(skip))
	}
	// Deltas from col = 0 at row start.
	prev := int32(0)
	t := 0
	for t < len(cols) {
		// Count the u8-delta run starting here.
		run := 0
		p := prev
		for t+run < len(cols) && run < 255 {
			d := cols[t+run] - p
			if d >= 1<<8 {
				break
			}
			p = cols[t+run]
			run++
		}
		if run >= minRun {
			m.Cmds = append(m.Cmds, opRun, byte(run))
			pp := prev
			for k := 0; k < run; k++ {
				m.Cmds = append(m.Cmds, byte(cols[t+k]-pp))
				pp = cols[t+k]
			}
			prev = p
			t += run
			continue
		}
		d := uint64(cols[t] - prev)
		switch {
		case d < 1<<8:
			m.Cmds = append(m.Cmds, opDelta8, byte(d))
		case d < 1<<16:
			m.Cmds = append(m.Cmds, opDelta16, byte(d), byte(d>>8))
		default:
			m.Cmds = append(m.Cmds, opDelta32, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
		}
		prev = cols[t]
		t++
	}
}

// Name implements core.Format.
func (m *Matrix) Name() string { return "dcsr" }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.cols }

// NNZ implements core.Format.
func (m *Matrix) NNZ() int { return len(m.Values) }

// SizeBytes implements core.Format: command stream plus values.
func (m *Matrix) SizeBytes() int64 {
	return int64(len(m.Cmds)) + int64(len(m.Values))*core.ValSize
}

// SpMV computes y = A*x.
func (m *Matrix) SpMV(y, x []float64) {
	(&chunk{m: m, lo: 0, hi: m.rows, cmdLo: 0, cmdHi: len(m.Cmds),
		valLo: 0, valHi: len(m.Values), startMark: 0}).SpMV(y, x)
}

// Split implements core.Splitter (same mark-based scheme as CSR-DU).
func (m *Matrix) Split(n int) []core.Chunk {
	if len(m.marks) == 0 {
		if m.rows == 0 {
			return nil
		}
		return []core.Chunk{&chunk{m: m, lo: 0, hi: m.rows, startMark: -1}}
	}
	prefix := make([]int64, len(m.marks)+1)
	for i, mk := range m.marks {
		prefix[i] = int64(mk.val)
	}
	prefix[len(m.marks)] = int64(len(m.Values))
	bounds := partition.SplitPrefix(prefix, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		if a == b {
			continue
		}
		ch := &chunk{m: m, startMark: a}
		ch.lo = m.marks[a].row
		ch.cmdLo = m.marks[a].cmd
		ch.valLo = m.marks[a].val
		if b < len(m.marks) {
			ch.hi = m.marks[b].row
			ch.cmdHi = m.marks[b].cmd
			ch.valHi = m.marks[b].val
		} else {
			ch.hi = m.rows
			ch.cmdHi = len(m.Cmds)
			ch.valHi = len(m.Values)
		}
		if len(chunks) == 0 {
			ch.lo = 0
		}
		chunks = append(chunks, ch)
	}
	return chunks
}

type chunk struct {
	m            *Matrix
	lo, hi       int
	cmdLo, cmdHi int
	valLo, valHi int
	startMark    int
}

func (c *chunk) RowRange() (int, int) { return c.lo, c.hi }
func (c *chunk) NNZ() int             { return c.valHi - c.valLo }

// SpMV decodes the command stream. Note the shape of the loop: one
// switch per command, i.e. per element outside RUNs — the fine decode
// granularity that CSR-DU's unit design avoids.
func (c *chunk) SpMV(y, x []float64) {
	for i := c.lo; i < c.hi; i++ {
		y[i] = 0
	}
	if c.startMark < 0 {
		return
	}
	m := c.m
	cmds := m.Cmds
	pos := c.cmdLo
	vi := c.valLo
	yi := -1
	xi := 0
	sum := 0.0
	first := true
	flushRow := func(skip int) {
		if first {
			yi = m.marks[c.startMark].row
			first = false
		} else {
			y[yi] += sum
			yi += skip
		}
		sum = 0
		xi = 0
	}
	for pos < c.cmdHi {
		op := cmds[pos]
		pos++
		switch op {
		case opDelta8:
			xi += int(cmds[pos])
			pos++
			sum += m.Values[vi] * x[xi]
			vi++
		case opDelta16:
			xi += int(uint16(cmds[pos]) | uint16(cmds[pos+1])<<8)
			pos += 2
			sum += m.Values[vi] * x[xi]
			vi++
		case opDelta32:
			xi += int(uint32(cmds[pos]) | uint32(cmds[pos+1])<<8 |
				uint32(cmds[pos+2])<<16 | uint32(cmds[pos+3])<<24)
			pos += 4
			sum += m.Values[vi] * x[xi]
			vi++
		case opNewRow:
			flushRow(1)
		case opRowJmp:
			var skip uint64
			skip, pos = varint.DecodeAt(cmds, pos)
			flushRow(int(skip))
		case opRun:
			n := int(cmds[pos])
			pos++
			for k := 0; k < n; k++ {
				xi += int(cmds[pos])
				pos++
				sum += m.Values[vi] * x[xi]
				vi++
			}
		default:
			// Typed-error panic: Verify rejects such streams before the
			// kernel runs; if a stream corrupts after verification, the
			// parallel executor recovers this into an error that
			// satisfies errors.Is(err, core.ErrCorrupt).
			panic(core.Corruptf("dcsr: corrupt command stream: opcode %d at offset %d", op, pos-1))
		}
	}
	if !first {
		y[yi] += sum
	}
}

// CmdStats summarizes the command mix.
type CmdStats struct {
	PerOp    [6]int
	CmdBytes int
}

// Stats decodes the command stream and counts each opcode.
func (m *Matrix) Stats() CmdStats {
	var s CmdStats
	s.CmdBytes = len(m.Cmds)
	pos := 0
	for pos < len(m.Cmds) {
		op := m.Cmds[pos]
		pos++
		s.PerOp[op]++
		switch op {
		case opDelta8:
			pos++
		case opDelta16:
			pos += 2
		case opDelta32:
			pos += 4
		case opNewRow:
		case opRowJmp:
			_, pos = varint.DecodeAt(m.Cmds, pos)
		case opRun:
			pos += 1 + int(m.Cmds[pos])
		}
	}
	return s
}
