package dcsr

import (
	"errors"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csrdu"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestConformance(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return FromCOO(c) })
}

func TestCommandMixOnBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := matgen.Banded(rng, 2000, 20, 10, matgen.Values{})
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.PerOp[opRun] == 0 {
		t.Error("banded matrix encoded without RUN commands")
	}
	if st.PerOp[opNewRow]+st.PerOp[opRowJmp] == 0 {
		t.Error("no row commands")
	}
	// Small-delta matrix: stream must be well under 4 bytes/nnz.
	perNNZ := float64(len(m.Cmds)) / float64(m.NNZ())
	if perNNZ > 2.5 {
		t.Errorf("cmd bytes/nnz = %v on banded", perNNZ)
	}
}

func TestWideDeltasUseDelta32(t *testing.T) {
	c := core.NewCOO(2, 1<<20)
	c.Add(0, 0, 1)
	c.Add(0, 1<<19, 2)
	c.Add(1, 1<<20-1, 3)
	c.Finalize()
	m, _ := FromCOO(c)
	st := m.Stats()
	if st.PerOp[opDelta32] == 0 {
		t.Errorf("expected DELTA32 commands, got mix %v", st.PerOp)
	}
	x := make([]float64, 1<<20)
	x[0], x[1<<19], x[1<<20-1] = 1, 10, 100
	y := make([]float64, 2)
	m.SpMV(y, x)
	if y[0] != 21 || y[1] != 300 {
		t.Errorf("y = %v, want [21 300]", y)
	}
}

func TestCompressionComparableToCSRDU(t *testing.T) {
	// On a small-delta matrix both DCSR and CSR-DU approach ~1 byte/nnz
	// of index data; neither should be more than ~60% larger than the
	// other (they trade header costs differently).
	rng := rand.New(rand.NewSource(2))
	c := matgen.Banded(rng, 4000, 30, 12, matgen.Values{})
	d, _ := FromCOO(c)
	u, _ := csrdu.FromCOO(c)
	dIdx := float64(len(d.Cmds))
	uIdx := float64(len(u.Ctl))
	if dIdx > 1.6*uIdx || uIdx > 1.6*dIdx {
		t.Errorf("index streams diverge: dcsr %v bytes vs csr-du %v bytes", dIdx, uIdx)
	}
}

func TestEmptyRowsViaRowJmp(t *testing.T) {
	c := core.NewCOO(100, 10)
	c.Add(0, 3, 1)
	c.Add(99, 7, 2)
	c.Finalize()
	m, _ := FromCOO(c)
	st := m.Stats()
	if st.PerOp[opRowJmp] == 0 {
		t.Error("expected ROWJMP for 98 empty rows")
	}
	x := make([]float64, 10)
	x[3], x[7] = 2, 3
	y := make([]float64, 100)
	m.SpMV(y, x)
	if y[0] != 2 || y[99] != 6 {
		t.Errorf("y[0]=%v y[99]=%v", y[0], y[99])
	}
	for i := 1; i < 99; i++ {
		if y[i] != 0 {
			t.Fatalf("y[%d] = %v", i, y[i])
		}
	}
}

func TestCorruptStreamPanics(t *testing.T) {
	c := core.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Finalize()
	m, _ := FromCOO(c)
	m.Cmds[0] = 200 // invalid opcode
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupt stream did not panic")
		}
		// The panic value is a typed error so the parallel executor
		// can recover it into a returned error.
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %v (%T) is not an error", r, r)
		}
		if !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("panic error %v does not wrap core.ErrCorrupt", err)
		}
	}()
	m.SpMV(make([]float64, 2), make([]float64, 2))
}

func BenchmarkSpMVBandedDCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	c := matgen.Banded(rng, 20000, 50, 16, matgen.Values{})
	m, _ := FromCOO(c)
	x := make([]float64, m.Cols())
	y := make([]float64, m.Rows())
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	b.SetBytes(m.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SpMV(y, x)
	}
}
