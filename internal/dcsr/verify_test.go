package dcsr

import (
	"errors"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
)

func TestVerifyClean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fix := map[string]*core.COO{
		"stencil": matgen.Stencil2D(6),
		"banded":  matgen.Banded(rng, 40, 8, 5, matgen.Values{}),
		"sparse":  matgen.RandomUniform(rng, 200, 200, 1, matgen.Values{}),
		"empty":   core.NewCOO(3, 3),
	}
	for name, c := range fix {
		m, err := FromCOO(c)
		if err != nil {
			t.Fatalf("%s: FromCOO: %v", name, err)
		}
		if err := m.Verify(); err != nil {
			t.Errorf("%s: Verify on freshly encoded matrix: %v", name, err)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	build := func(t *testing.T) *Matrix {
		t.Helper()
		m, err := FromCOO(matgen.Stencil2D(5))
		if err != nil {
			t.Fatalf("FromCOO: %v", err)
		}
		return m
	}
	t.Run("invalid opcode", func(t *testing.T) {
		m := build(t)
		m.Cmds[0] = 200
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated stream", func(t *testing.T) {
		m := build(t)
		m.Cmds = m.Cmds[:len(m.Cmds)-1]
		err := m.Verify()
		if err == nil {
			t.Fatal("truncated stream passed Verify")
		}
	})
	t.Run("tampered mark", func(t *testing.T) {
		m := build(t)
		m.marks[1].val++
		if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("value count mismatch", func(t *testing.T) {
		m := build(t)
		m.Values = m.Values[:len(m.Values)-1]
		if err := m.Verify(); !errors.Is(err, core.ErrShape) {
			t.Fatalf("got %v, want ErrShape", err)
		}
	})
}

func TestFromRawRoundTrip(t *testing.T) {
	orig, _ := FromCOO(matgen.Stencil2D(6))
	m, err := FromRaw(orig.Cmds, orig.Values, orig.Rows(), orig.Cols())
	if err != nil {
		t.Fatalf("FromRaw on clean stream: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify after FromRaw: %v", err)
	}
	x := make([]float64, orig.Cols())
	for i := range x {
		x[i] = float64(i%3) + 1
	}
	y1 := make([]float64, orig.Rows())
	y2 := make([]float64, orig.Rows())
	orig.SpMV(y1, x)
	m.SpMV(y2, x)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("row %d: original %v, rebuilt %v", i, y1[i], y2[i])
		}
	}
}

// TestCmdSingleByteFlips: every single-byte flip of a real command
// stream is either rejected by FromRaw with a typed error, or the
// accepted matrix stays in bounds and agrees with a reference CSR of
// its own decode. (Byte-exact detection of silent value changes is the
// matfile container's CRC job.)
func TestCmdSingleByteFlips(t *testing.T) {
	orig, _ := FromCOO(matgen.Stencil2D(5))
	rows, cols := orig.Rows(), orig.Cols()
	x := make([]float64, cols)
	for i := range x {
		x[i] = float64(i%7) + 0.5
	}
	for pos := 0; pos < len(orig.Cmds); pos++ {
		for _, bit := range []byte{0x01, 0x10, 0x80} {
			cmds := make([]byte, len(orig.Cmds))
			copy(cmds, orig.Cmds)
			cmds[pos] ^= bit
			m, err := FromRaw(cmds, orig.Values, rows, cols)
			if err != nil {
				if !errors.Is(err, core.ErrCorrupt) && !errors.Is(err, core.ErrTruncated) && !errors.Is(err, core.ErrShape) {
					t.Fatalf("flip byte %d bit %#x: error %v does not wrap a core sentinel", pos, bit, err)
				}
				continue
			}
			if verr := m.Verify(); verr != nil {
				t.Fatalf("flip byte %d bit %#x: FromRaw accepted but Verify rejects: %v", pos, bit, verr)
			}
			ref, err := csr.FromCOO(m.Triplets())
			if err != nil {
				t.Fatalf("flip byte %d bit %#x: reference CSR: %v", pos, bit, err)
			}
			y := make([]float64, rows)
			yref := make([]float64, rows)
			m.SpMV(y, x)
			ref.SpMV(yref, x)
			for i := range y {
				if y[i] != yref[i] {
					t.Fatalf("flip byte %d bit %#x: row %d: kernel %v, reference %v", pos, bit, i, y[i], yref[i])
				}
			}
		}
	}
}
