// Package matgen generates synthetic sparse matrices that stand in for
// the paper's 77-matrix University of Florida collection subset (§VI-B).
//
// The paper's evaluation depends on three aggregate matrix properties,
// each of which the generators expose as a parameter:
//
//   - working-set size relative to the cache (controls the M_S / M_L
//     split and therefore memory-boundedness),
//   - the distribution of column deltas within rows (controls which
//     CSR-DU unit types apply and the index compression ratio),
//   - the total-to-unique values ratio "ttu" (controls CSR-VI
//     applicability; the paper uses ttu > 5).
//
// Stencil and FEM-like generators produce the small-delta, low-unique
// value matrices typical of PDE discretizations; the random and
// power-law generators produce the scattered, high-entropy matrices
// where compression is hard.
package matgen

import (
	"math"
	"math/rand"
	"sort"

	"spmv/internal/core"
)

// Values describes how numerical values are drawn.
type Values struct {
	// Unique > 0 draws from a fixed pool of that many distinct values,
	// giving ttu ≈ nnz/Unique. Unique == 0 draws fresh random values
	// (every value distinct with probability ~1).
	Unique int
}

// pool pre-draws the unique value pool.
func (v Values) pool(rng *rand.Rand) []float64 {
	if v.Unique <= 0 {
		return nil
	}
	p := make([]float64, v.Unique)
	seen := make(map[float64]bool, v.Unique)
	for i := range p {
		for {
			x := math.Round(rng.NormFloat64()*1e4) / 1e3
			if !core.IsZero(x) && !seen[x] {
				seen[x] = true
				p[i] = x
				break
			}
		}
	}
	return p
}

type valueSource struct {
	rng  *rand.Rand
	pool []float64
}

func newValueSource(rng *rand.Rand, v Values) *valueSource {
	return &valueSource{rng: rng, pool: v.pool(rng)}
}

func (s *valueSource) next() float64 {
	if s.pool != nil {
		return s.pool[s.rng.Intn(len(s.pool))]
	}
	for {
		if v := s.rng.NormFloat64(); !core.IsZero(v) {
			return v
		}
	}
}

// Stencil2D returns the 5-point Laplacian on an n×n grid: the canonical
// SPD PDE matrix (rows = n², ≤5 nnz/row, values {4, -1} so ttu = nnz/2).
func Stencil2D(n int) *core.COO {
	c := core.NewCOO(n*n, n*n)
	idx := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r := idx(i, j)
			c.Add(r, r, 4)
			if i > 0 {
				c.Add(r, idx(i-1, j), -1)
			}
			if i < n-1 {
				c.Add(r, idx(i+1, j), -1)
			}
			if j > 0 {
				c.Add(r, idx(i, j-1), -1)
			}
			if j < n-1 {
				c.Add(r, idx(i, j+1), -1)
			}
		}
	}
	c.Finalize()
	return c
}

// Stencil3D returns the 7-point Laplacian on an n×n×n grid
// (rows = n³, values {6, -1}).
func Stencil3D(n int) *core.COO {
	c := core.NewCOO(n*n*n, n*n*n)
	idx := func(i, j, k int) int { return (i*n+j)*n + k }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				r := idx(i, j, k)
				c.Add(r, r, 6)
				if i > 0 {
					c.Add(r, idx(i-1, j, k), -1)
				}
				if i < n-1 {
					c.Add(r, idx(i+1, j, k), -1)
				}
				if j > 0 {
					c.Add(r, idx(i, j-1, k), -1)
				}
				if j < n-1 {
					c.Add(r, idx(i, j+1, k), -1)
				}
				if k > 0 {
					c.Add(r, idx(i, j, k-1), -1)
				}
				if k < n-1 {
					c.Add(r, idx(i, j, k+1), -1)
				}
			}
		}
	}
	c.Finalize()
	return c
}

// Stencil2D9 returns the 9-point Laplacian on an n×n grid
// (values {8, -1}, denser rows than Stencil2D).
func Stencil2D9(n int) *core.COO {
	c := core.NewCOO(n*n, n*n)
	idx := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r := idx(i, j)
			for di := -1; di <= 1; di++ {
				for dj := -1; dj <= 1; dj++ {
					ii, jj := i+di, j+dj
					if ii < 0 || ii >= n || jj < 0 || jj >= n {
						continue
					}
					if di == 0 && dj == 0 {
						c.Add(r, r, 8)
					} else {
						c.Add(r, idx(ii, jj), -1)
					}
				}
			}
		}
	}
	c.Finalize()
	return c
}

// Banded returns an n×n matrix whose non-zeros lie within halfBand of
// the diagonal, with about perRow entries per row (diagonal always
// present). Column deltas are small, so CSR-DU compresses well.
func Banded(rng *rand.Rand, n, halfBand, perRow int, vals Values) *core.COO {
	src := newValueSource(rng, vals)
	c := core.NewCOO(n, n)
	used := newRowSet()
	for i := 0; i < n; i++ {
		used.reset()
		used.add(i)
		c.Add(i, i, src.next())
		for k := 1; k < perRow; k++ {
			off := rng.Intn(2*halfBand+1) - halfBand
			j := i + off
			if j < 0 || j >= n || !used.add(j) {
				continue
			}
			c.Add(i, j, src.next())
		}
	}
	c.Finalize()
	return c
}

// rowSet tracks the columns already used in the current row so that
// generators never emit duplicate coordinates: duplicates would be
// summed by Finalize, silently creating values outside the unique pool
// and corrupting the ttu ratio the experiments control for.
type rowSet struct{ m map[int]struct{} }

func newRowSet() *rowSet { return &rowSet{m: make(map[int]struct{}, 32)} }

func (s *rowSet) reset() {
	for k := range s.m {
		delete(s.m, k)
	}
}

// add reports whether j was newly added (false if already present).
func (s *rowSet) add(j int) bool {
	if _, ok := s.m[j]; ok {
		return false
	}
	s.m[j] = struct{}{}
	return true
}

// RandomUniform returns a rows×cols matrix with about perRow uniformly
// scattered non-zeros per row. Column deltas are large (≈cols/perRow),
// the worst case for delta encoding.
func RandomUniform(rng *rand.Rand, rows, cols, perRow int, vals Values) *core.COO {
	src := newValueSource(rng, vals)
	c := core.NewCOO(rows, cols)
	used := newRowSet()
	for i := 0; i < rows; i++ {
		used.reset()
		want := perRow
		if want > cols {
			want = cols
		}
		for tries := 0; want > 0 && tries < 8*perRow+16; tries++ {
			j := rng.Intn(cols)
			if used.add(j) {
				c.Add(i, j, src.next())
				want--
			}
		}
	}
	c.Finalize()
	return c
}

// PowerLaw returns an n×n scale-free adjacency-like matrix: row i has
// degree ≈ max(1, scale/(i+1)^alpha), columns drawn uniformly. A few
// rows are very long and most are short — the matrix class for which
// the paper's per-row unit limitation and loop overheads matter.
func PowerLaw(rng *rand.Rand, n int, avgDeg float64, alpha float64, vals Values) *core.COO {
	// Normalize so the mean degree is avgDeg.
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
	}
	scale := avgDeg * float64(n) / sum
	src := newValueSource(rng, vals)
	c := core.NewCOO(n, n)
	used := newRowSet()
	for i := 0; i < n; i++ {
		deg := int(scale * math.Pow(float64(i+1), -alpha))
		if deg < 1 {
			deg = 1
		}
		if deg > n {
			deg = n
		}
		used.reset()
		for tries := 0; deg > 0 && tries < 8*deg+16; tries++ {
			j := rng.Intn(n)
			if used.add(j) {
				c.Add(i, j, src.next())
				deg--
			}
		}
	}
	c.Finalize()
	return c
}

// SkewedRows returns an n×n matrix in which the designated row holds
// heavyFrac of the total non-zeros (as nearly as the n-column cap
// allows) and every other row carries about perRow uniformly scattered
// entries — the isolated row-length-skew pathology. Row-granular
// partitioning cannot balance it (the heavy row is atomic, so its
// owner's load is at least heavyFrac of the matrix), which makes it the
// reference input for the non-zero-split scheduler.
func SkewedRows(rng *rand.Rand, n, perRow, heavyRow int, heavyFrac float64, vals Values) *core.COO {
	if heavyRow < 0 || heavyRow >= n {
		panic(core.Usagef("matgen: SkewedRows heavy row %d outside [0,%d)", heavyRow, n))
	}
	if heavyFrac <= 0 || heavyFrac >= 1 {
		panic(core.Usagef("matgen: SkewedRows heavyFrac %v outside (0,1)", heavyFrac))
	}
	light := (n - 1) * perRow
	deg := int(heavyFrac/(1-heavyFrac)*float64(light) + 0.5)
	if deg > n {
		deg = n
	}
	if deg < 1 {
		deg = 1
	}
	src := newValueSource(rng, vals)
	c := core.NewCOO(n, n)
	used := newRowSet()
	for i := 0; i < n; i++ {
		if i == heavyRow {
			// The heavy row's degree may approach n; a permutation
			// avoids rejection-sampling a nearly-full row.
			for _, j := range rng.Perm(n)[:deg] {
				c.Add(i, j, src.next())
			}
			continue
		}
		want := perRow
		if want > n {
			want = n
		}
		used.reset()
		for tries := 0; want > 0 && tries < 8*perRow+16; tries++ {
			j := rng.Intn(n)
			if used.add(j) {
				c.Add(i, j, src.next())
				want--
			}
		}
	}
	c.Finalize()
	return c
}

// RMAT returns a 2^scale × 2^scale recursive-matrix (R-MAT) graph
// adjacency with about avgDeg non-zeros per row: the standard synthetic
// web/social-graph model (Graph500). Probabilities (a, b, c) steer each
// edge into the (top-left, top-right, bottom-left) quadrant
// recursively; d = 1-a-b-c. Defaults of (0.57, 0.19, 0.19) give the
// usual heavy skew. Duplicate edges are dropped, and every row keeps at
// least one entry so row partitioning stays meaningful.
func RMAT(rng *rand.Rand, scale int, avgDeg float64, a, b, c float64, vals Values) *core.COO {
	if a <= 0 && b <= 0 && c <= 0 {
		a, b, c = 0.57, 0.19, 0.19
	}
	n := 1 << scale
	src := newValueSource(rng, vals)
	edges := int(float64(n) * avgDeg)
	seen := make(map[[2]int32]struct{}, edges)
	out := core.NewCOO(n, n)
	for e := 0; e < edges; e++ {
		i, j := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a: // top-left
			case r < a+b: // top-right
				j |= 1 << bit
			case r < a+b+c: // bottom-left
				i |= 1 << bit
			default: // bottom-right
				i |= 1 << bit
				j |= 1 << bit
			}
		}
		key := [2]int32{int32(i), int32(j)}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out.Add(i, j, src.next())
	}
	// Guarantee non-empty rows (isolated vertices get a self-loop).
	rowSeen := make([]bool, n)
	for k := range seen {
		rowSeen[k[0]] = true
	}
	for i := 0; i < n; i++ {
		if !rowSeen[i] {
			out.Add(i, i, src.next())
		}
	}
	out.Finalize()
	return out
}

// BlockDiag returns a matrix of nblocks dense bsize×bsize blocks along
// the diagonal: unit-stride column deltas, ideal for CSR-DU's u8 and
// RLE units and for BCSR.
func BlockDiag(rng *rand.Rand, nblocks, bsize int, vals Values) *core.COO {
	n := nblocks * bsize
	src := newValueSource(rng, vals)
	c := core.NewCOO(n, n)
	for b := 0; b < nblocks; b++ {
		for i := 0; i < bsize; i++ {
			for j := 0; j < bsize; j++ {
				c.Add(b*bsize+i, b*bsize+j, src.next())
			}
		}
	}
	c.Finalize()
	return c
}

// FEMLike returns an n×n symmetric-pattern matrix resembling an
// unstructured finite-element discretization: each row couples to
// ~perRow neighbours clustered around the diagonal with an occasional
// long-range entry, mixing small and large column deltas.
func FEMLike(rng *rand.Rand, n, perRow int, vals Values) *core.COO {
	src := newValueSource(rng, vals)
	// Collect the pattern in a set first: symmetric insertion would
	// otherwise produce duplicates whose folded sums fall outside the
	// unique value pool.
	pattern := make(map[[2]int32]struct{}, n*perRow)
	spread := n/64 + 2
	for i := 0; i < n; i++ {
		pattern[[2]int32{int32(i), int32(i)}] = struct{}{}
		for k := 1; k < perRow; k++ {
			var j int
			if rng.Float64() < 0.9 {
				j = i + int(rng.NormFloat64()*float64(spread))
			} else {
				j = rng.Intn(n)
			}
			if j < 0 || j >= n {
				continue
			}
			pattern[[2]int32{int32(i), int32(j)}] = struct{}{}
			pattern[[2]int32{int32(j), int32(i)}] = struct{}{}
		}
	}
	// Iterate the pattern in sorted order so values are deterministic.
	keys := make([][2]int32, 0, len(pattern))
	for p := range pattern {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	c := core.NewCOO(n, n)
	for _, p := range keys {
		c.Add(int(p[0]), int(p[1]), src.next())
	}
	c.Finalize()
	return c
}

// Quantize returns a copy of c whose values are snapped to a pool of at
// most unique distinct values (round-robin over value rank), raising the
// ttu ratio without changing the sparsity pattern. Used to derive
// CSR-VI-friendly variants of any matrix.
func Quantize(c *core.COO, rng *rand.Rand, unique int) *core.COO {
	out := c.Clone()
	out.Finalize()
	pool := Values{Unique: unique}.pool(rng)
	src := rand.New(rand.NewSource(rng.Int63()))
	q := core.NewCOO(out.Rows(), out.Cols())
	for k := 0; k < out.Len(); k++ {
		i, j, _ := out.At(k)
		q.Add(i, j, pool[src.Intn(len(pool))])
	}
	q.Finalize()
	return q
}

// Symmetrize returns (A + A^T)/2, a numerically symmetric matrix with
// A's sparsity pattern union its transpose. Used to derive inputs for
// the symmetric storage format.
func Symmetrize(c *core.COO) *core.COO {
	c.Finalize()
	t := c.Transpose()
	out := core.NewCOO(c.Rows(), c.Cols())
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		out.Add(i, j, v/2)
	}
	for k := 0; k < t.Len(); k++ {
		i, j, v := t.At(k)
		out.Add(i, j, v/2)
	}
	out.Finalize()
	return out
}

// TTU returns the total-to-unique values ratio of a finalized COO
// (paper §VI-E): nnz divided by the number of distinct stored values.
func TTU(c *core.COO) float64 {
	if c.Len() == 0 {
		return 0
	}
	seen := make(map[float64]struct{})
	for k := 0; k < c.Len(); k++ {
		_, _, v := c.At(k)
		seen[v] = struct{}{}
	}
	return float64(c.Len()) / float64(len(seen))
}
