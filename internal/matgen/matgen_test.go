package matgen

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
)

func TestStencil2DShape(t *testing.T) {
	n := 8
	c := Stencil2D(n)
	if c.Rows() != n*n || c.Cols() != n*n {
		t.Fatalf("dims = %dx%d, want %dx%d", c.Rows(), c.Cols(), n*n, n*n)
	}
	// nnz = 5n² - 4n (boundary rows lose neighbours).
	want := 5*n*n - 4*n
	if c.Len() != want {
		t.Errorf("nnz = %d, want %d", c.Len(), want)
	}
	// Exactly two unique values: 4 and -1.
	if ttu := TTU(c); ttu != float64(c.Len())/2 {
		t.Errorf("ttu = %v, want %v", ttu, float64(c.Len())/2)
	}
}

func TestStencil2DSymmetricSPDish(t *testing.T) {
	c := Stencil2D(6)
	d := core.DenseFromCOO(c)
	for i := 0; i < d.R; i++ {
		// Diagonally dominant and symmetric.
		var off float64
		for j := 0; j < d.C; j++ {
			if d.At(i, j) != d.At(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
			if i != j {
				off += absf(d.At(i, j))
			}
		}
		if d.At(i, i) < off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestStencil3DShape(t *testing.T) {
	n := 4
	c := Stencil3D(n)
	if c.Rows() != n*n*n {
		t.Fatalf("rows = %d, want %d", c.Rows(), n*n*n)
	}
	want := 7*n*n*n - 6*n*n
	if c.Len() != want {
		t.Errorf("nnz = %d, want %d", c.Len(), want)
	}
}

func TestStencil2D9Shape(t *testing.T) {
	n := 6
	c := Stencil2D9(n)
	// Interior rows have 9 entries; corners 4; edges 6.
	want := 9*(n-2)*(n-2) + 6*4*(n-2) + 4*4
	if c.Len() != want {
		t.Errorf("nnz = %d, want %d", c.Len(), want)
	}
}

func TestBandedWithinBand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, hb := 200, 11
	c := Banded(rng, n, hb, 8, Values{})
	for k := 0; k < c.Len(); k++ {
		i, j, _ := c.At(k)
		if j < i-hb || j > i+hb {
			t.Fatalf("entry (%d,%d) outside band %d", i, j, hb)
		}
	}
	// Diagonal present in every row.
	counts := c.RowCounts()
	for i, n := range counts {
		if n < 1 {
			t.Fatalf("row %d empty", i)
		}
	}
}

func TestRandomUniformEveryRowNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := RandomUniform(rng, 150, 90, 5, Values{})
	for i, n := range c.RowCounts() {
		if n < 1 {
			t.Fatalf("row %d empty", i)
		}
	}
	if c.Cols() != 90 {
		t.Fatalf("cols = %d", c.Cols())
	}
}

func TestPowerLawSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := PowerLaw(rng, 2000, 8, 0.9, Values{})
	counts := c.RowCounts()
	if counts[0] < 10*counts[len(counts)-1] {
		t.Errorf("expected skew: first row %d nnz vs last row %d", counts[0], counts[len(counts)-1])
	}
	for i, n := range counts {
		if n < 1 {
			t.Fatalf("row %d empty", i)
		}
	}
}

func TestBlockDiagDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := BlockDiag(rng, 5, 4, Values{})
	if c.Len() != 5*4*4 {
		t.Fatalf("nnz = %d, want 80", c.Len())
	}
	for k := 0; k < c.Len(); k++ {
		i, j, _ := c.At(k)
		if i/4 != j/4 {
			t.Fatalf("entry (%d,%d) off block diagonal", i, j)
		}
	}
}

func TestFEMLikeSymmetricPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := FEMLike(rng, 300, 6, Values{})
	d := core.DenseFromCOO(c)
	for i := 0; i < d.R; i++ {
		for j := 0; j < d.C; j++ {
			if (d.At(i, j) != 0) != (d.At(j, i) != 0) {
				t.Fatalf("pattern asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestValuesUniquePool(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := RandomUniform(rng, 400, 400, 10, Values{Unique: 16})
	ttu := TTU(c)
	// Pool of 16: ttu should be close to nnz/16 (some values may be unused).
	if ttu < float64(c.Len())/16/2 {
		t.Errorf("ttu = %v too small for pool of 16 (nnz %d)", ttu, c.Len())
	}
}

func TestQuantizeRaisesTTUKeepsPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	c := RandomUniform(rng, 200, 200, 8, Values{})
	q := Quantize(c, rng, 10)
	if q.Len() != c.Len() {
		t.Fatalf("Quantize changed nnz: %d -> %d", c.Len(), q.Len())
	}
	for k := 0; k < c.Len(); k++ {
		i1, j1, _ := c.At(k)
		i2, j2, _ := q.At(k)
		if i1 != i2 || j1 != j2 {
			t.Fatalf("Quantize changed pattern at entry %d", k)
		}
	}
	if TTU(q) <= TTU(c) {
		t.Errorf("ttu did not increase: %v -> %v", TTU(c), TTU(q))
	}
	if TTU(q) < float64(q.Len())/10/2 {
		t.Errorf("ttu after quantize = %v, want near %v", TTU(q), float64(q.Len())/10)
	}
}

func TestTTUEmpty(t *testing.T) {
	c := core.NewCOO(3, 3)
	c.Finalize()
	if TTU(c) != 0 {
		t.Errorf("TTU(empty) = %v", TTU(c))
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Banded(rand.New(rand.NewSource(42)), 100, 5, 6, Values{Unique: 8})
	b := Banded(rand.New(rand.NewSource(42)), 100, 5, 6, Values{Unique: 8})
	if a.Len() != b.Len() {
		t.Fatalf("nondeterministic nnz: %d vs %d", a.Len(), b.Len())
	}
	for k := 0; k < a.Len(); k++ {
		i1, j1, v1 := a.At(k)
		i2, j2, v2 := b.At(k)
		if i1 != i2 || j1 != j2 || v1 != v2 {
			t.Fatalf("nondeterministic at entry %d", k)
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRMATSkewAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := RMAT(rng, 12, 8, 0, 0, 0, Values{})
	if c.Rows() != 1<<12 {
		t.Fatalf("rows = %d", c.Rows())
	}
	counts := c.RowCounts()
	maxDeg, minDeg := 0, 1<<30
	for _, d := range counts {
		if d > maxDeg {
			maxDeg = d
		}
		if d < minDeg {
			minDeg = d
		}
	}
	if minDeg < 1 {
		t.Error("empty row despite self-loop guarantee")
	}
	// R-MAT with default parameters is heavily skewed.
	if maxDeg < 10*(c.Len()/c.Rows()) {
		t.Errorf("max degree %d not skewed vs avg %d", maxDeg, c.Len()/c.Rows())
	}
	// Deterministic.
	c2 := RMAT(rand.New(rand.NewSource(21)), 12, 8, 0, 0, 0, Values{})
	if c2.Len() != c.Len() {
		t.Error("nondeterministic")
	}
}

func TestSymmetrizeProducesSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := RandomUniform(rng, 60, 60, 4, Values{})
	s := Symmetrize(c)
	d := core.DenseFromCOO(s)
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			if d.At(i, j) != d.At(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}
