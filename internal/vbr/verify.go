package vbr

import "spmv/internal/core"

// Verify implements core.Verifier: both partitions are strictly
// increasing and span their dimension, the block-row pointer is a
// valid CSR over the blocks, every block's value range matches its
// group geometry, and the per-block-row logical prefix is monotone and
// sums to nnz. O(blocks + groups).
func (m *Matrix) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("vbr: negative dimensions %dx%d", m.rows, m.cols)
	}
	if err := verifyPart(m.RowPart, m.rows, "row"); err != nil {
		return err
	}
	if err := verifyPart(m.ColPart, m.cols, "col"); err != nil {
		return err
	}
	R := len(m.RowPart) - 1
	C := len(m.ColPart) - 1
	if len(m.BRowPtr) != R+1 {
		return core.Shapef("vbr: block row pointer length %d, want %d", len(m.BRowPtr), R+1)
	}
	if err := core.CheckRowPtr(m.BRowPtr, len(m.BColInd)); err != nil {
		return err
	}
	nblocks := len(m.BColInd)
	if len(m.BOff) != nblocks+1 {
		return core.Shapef("vbr: block offset length %d, want %d", len(m.BOff), nblocks+1)
	}
	if nblocks > 0 && m.BOff[0] != 0 {
		return core.Corruptf("vbr: block offsets start at %d, want 0", m.BOff[0])
	}
	for br := 0; br < R; br++ {
		bh := int64(m.RowPart[br+1] - m.RowPart[br])
		for b := m.BRowPtr[br]; b < m.BRowPtr[br+1]; b++ {
			bc := m.BColInd[b]
			if bc < 0 || int(bc) >= C {
				return core.Corruptf("vbr: block %d column group %d out of range [0,%d)", b, bc, C)
			}
			bw := int64(m.ColPart[bc+1] - m.ColPart[bc])
			if m.BOff[b+1]-m.BOff[b] != bh*bw {
				return core.Corruptf("vbr: block %d spans %d values, want %dx%d",
					b, m.BOff[b+1]-m.BOff[b], bh, bw)
			}
		}
	}
	if nblocks > 0 && m.BOff[nblocks] != int64(len(m.Values)) {
		return core.Shapef("vbr: block offsets end at %d, want %d values", m.BOff[nblocks], len(m.Values))
	}
	if len(m.logPrefix) != R+1 {
		return core.Shapef("vbr: logical prefix length %d, want %d", len(m.logPrefix), R+1)
	}
	for br := 0; br < R; br++ {
		if m.logPrefix[br+1] < m.logPrefix[br] {
			return core.Corruptf("vbr: logical prefix not monotone at block row %d", br)
		}
	}
	if R >= 0 && len(m.logPrefix) > 0 {
		if m.logPrefix[0] != 0 || m.logPrefix[R] != int64(m.nnz) {
			return core.Corruptf("vbr: logical prefix spans [%d,%d], want [0,%d]",
				m.logPrefix[0], m.logPrefix[R], m.nnz)
		}
	}
	return nil
}

// verifyPart checks a group boundary sequence: starts at 0, strictly
// increasing, ends at dim.
func verifyPart(part []int32, dim int, what string) error {
	if len(part) < 1 || part[0] != 0 {
		return core.Corruptf("vbr: %s partition must start at 0", what)
	}
	for i := 1; i < len(part); i++ {
		if part[i] <= part[i-1] {
			return core.Corruptf("vbr: %s partition not strictly increasing at %d", what, i)
		}
	}
	if int(part[len(part)-1]) != dim {
		return core.Shapef("vbr: %s partition ends at %d, want %d", what, part[len(part)-1], dim)
	}
	return nil
}
