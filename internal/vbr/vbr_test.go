package vbr

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

// evenPart builds uniform group boundaries of width w.
func evenPart(n, w int) []int32 {
	var p []int32
	for i := 0; i < n; i += w {
		p = append(p, int32(i))
	}
	return append(p, int32(n))
}

func TestConformanceEvenGroups(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) {
		return FromCOO(c, evenPart(c.Rows(), 2), evenPart(c.Cols(), 3))
	})
}

func TestConformanceAuto(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) {
		return FromCOOAuto(c)
	})
}

func TestAutoDetectsBlockStructure(t *testing.T) {
	// Rows within a dense diagonal block share a pattern, so auto
	// grouping must find the 6-row blocks exactly.
	rng := rand.New(rand.NewSource(1))
	c := matgen.BlockDiag(rng, 30, 6, matgen.Values{})
	m, err := FromCOOAuto(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.RowPart) - 1; got != 30 {
		t.Errorf("row groups = %d, want 30", got)
	}
	if m.Fill() != 1.0 {
		t.Errorf("Fill = %v on perfectly blocked matrix", m.Fill())
	}
	if m.Blocks() != 30 {
		t.Errorf("Blocks = %d, want 30", m.Blocks())
	}
	// Per-block indexing: far less index data than CSR.
	ref, _ := csr.FromCOO(c)
	if m.SizeBytes() >= ref.SizeBytes() {
		t.Errorf("vbr %d >= csr %d on blocky matrix", m.SizeBytes(), ref.SizeBytes())
	}
}

func TestAutoDegeneratesGracefully(t *testing.T) {
	// No repeated patterns: groups collapse to single rows and VBR is
	// CSR-like with per-block bookkeeping (bigger, never wrong).
	rng := rand.New(rand.NewSource(2))
	c := matgen.RandomUniform(rng, 200, 300, 5, matgen.Values{})
	m, err := FromCOOAuto(c)
	if err != nil {
		t.Fatal(err)
	}
	d := core.DenseFromCOO(c)
	x := testmat.RandVec(rng, 300)
	want := make([]float64, 200)
	got := make([]float64, 200)
	d.SpMV(want, x)
	m.SpMV(got, x)
	testmat.AssertClose(t, "degenerate vbr", got, want, 1e-10)
}

func TestMultiDOFFEMBlocks(t *testing.T) {
	// Simulated 3-dof FEM: each logical node expands to 3 rows with the
	// same pattern — the structure VBR is built for.
	rng := rand.New(rand.NewSource(3))
	nodes := 80
	dof := 3
	node := matgen.FEMLike(rng, nodes, 4, matgen.Values{})
	c := core.NewCOO(nodes*dof, nodes*dof)
	for k := 0; k < node.Len(); k++ {
		i, j, _ := node.At(k)
		for di := 0; di < dof; di++ {
			for dj := 0; dj < dof; dj++ {
				c.Add(i*dof+di, j*dof+dj, rng.NormFloat64())
			}
		}
	}
	c.Finalize()
	m, err := FromCOOAuto(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.RowPart) - 1; got != nodes {
		t.Errorf("row groups = %d, want %d (3-dof nodes)", got, nodes)
	}
	if m.Fill() != 1.0 {
		t.Errorf("Fill = %v: dof blocks are dense", m.Fill())
	}
}

func TestFromCOORejectsBadPartitions(t *testing.T) {
	c := matgen.Stencil2D(3)
	good := evenPart(9, 3)
	for name, p := range map[string][]int32{
		"missing zero": {1, 9},
		"short":        {0},
		"overshoot":    {0, 12},
		"non-monotone": {0, 5, 3, 9},
		"repeated":     {0, 5, 5, 9},
	} {
		if _, err := FromCOO(c, p, good); err == nil {
			t.Errorf("%s row partition accepted", name)
		}
		if _, err := FromCOO(c, good, p); err == nil {
			t.Errorf("%s col partition accepted", name)
		}
	}
}

func TestSplitBalancedByStoredValues(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := matgen.BlockDiag(rng, 64, 4, matgen.Values{})
	m, _ := FromCOOAuto(c)
	chunks := m.Split(4)
	if len(chunks) != 4 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	total := 0
	for _, ch := range chunks {
		total += ch.NNZ()
	}
	if total != m.NNZ() {
		t.Errorf("chunk nnz sums to %d, want %d", total, m.NNZ())
	}
}
