// Package vbr implements Variable Block Row storage (VBR, from
// SPARSKIT — reference [18] of the paper, cited in §III-B as a blocking
// method that stores only per-block index information). Rows and
// columns are partitioned into variable-sized groups; every block-row ×
// block-column intersection containing a non-zero is stored as a dense
// block. Unlike BCSR the block sizes adapt to the matrix, so matrices
// with natural multi-row structure (FEM with multiple degrees of
// freedom per node) get large blocks without fill explosions.
package vbr

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/partition"
)

// Matrix is a sparse matrix in VBR form.
type Matrix struct {
	rows, cols int
	nnz        int
	RowPart    []int32 // row-group boundaries, len R+1
	ColPart    []int32 // col-group boundaries, len C+1
	BRowPtr    []int32 // first block of each block row, len R+1
	BColInd    []int32 // block-column group of each block
	BOff       []int64 // offset of each block's values, len nblocks+1
	Values     []float64
	logPrefix  []int64 // logical nnz prefix per block row
}

var (
	_ core.Format   = (*Matrix)(nil)
	_ core.Splitter = (*Matrix)(nil)
)

// FromCOO builds VBR with explicit row and column group boundaries
// (each a strictly increasing sequence starting at 0 and ending at the
// dimension).
func FromCOO(c *core.COO, rowPart, colPart []int32) (*Matrix, error) {
	c.Finalize()
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("vbr: %d non-zeros exceed supported range", c.Len())
	}
	if err := checkPart(rowPart, c.Rows()); err != nil {
		return nil, fmt.Errorf("vbr: row partition: %w", err)
	}
	if err := checkPart(colPart, c.Cols()); err != nil {
		return nil, fmt.Errorf("vbr: col partition: %w", err)
	}
	R := len(rowPart) - 1
	m := &Matrix{
		rows: c.Rows(), cols: c.Cols(), nnz: c.Len(),
		RowPart: rowPart, ColPart: colPart,
		BRowPtr: make([]int32, R+1),
	}
	rowGroup := groupIndex(rowPart, c.Rows())
	colGroup := groupIndex(colPart, c.Cols())

	// Pass 1: which blocks exist.
	type key struct{ br, bc int32 }
	present := map[key]struct{}{}
	perRow := make([][]int32, R)
	for k := 0; k < c.Len(); k++ {
		i, j, _ := c.At(k)
		br, bc := rowGroup[i], colGroup[j]
		if _, ok := present[key{br, bc}]; !ok {
			present[key{br, bc}] = struct{}{}
			perRow[br] = append(perRow[br], bc)
		}
	}
	nblocks := 0
	blockIdx := map[key]int32{}
	m.BOff = append(m.BOff, 0)
	for br := 0; br < R; br++ {
		sortInt32(perRow[br])
		m.BRowPtr[br] = int32(nblocks)
		bh := int64(rowPart[br+1] - rowPart[br])
		for _, bc := range perRow[br] {
			blockIdx[key{int32(br), bc}] = int32(nblocks)
			m.BColInd = append(m.BColInd, bc)
			bw := int64(m.ColPart[bc+1] - m.ColPart[bc])
			m.BOff = append(m.BOff, m.BOff[len(m.BOff)-1]+bh*bw)
			nblocks++
		}
	}
	m.BRowPtr[R] = int32(nblocks)
	m.Values = make([]float64, m.BOff[nblocks])

	// Pass 2: scatter values (row-major within each block) and count
	// logical non-zeros per block row for load balancing.
	m.logPrefix = make([]int64, R+1)
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		br, bc := rowGroup[i], colGroup[j]
		b := blockIdx[key{br, bc}]
		bw := int(m.ColPart[bc+1] - m.ColPart[bc])
		local := int64(i-int(rowPart[br]))*int64(bw) + int64(j-int(m.ColPart[bc]))
		m.Values[m.BOff[b]+local] += v
		m.logPrefix[br+1]++
	}
	for br := 0; br < R; br++ {
		m.logPrefix[br+1] += m.logPrefix[br]
	}
	return m, nil
}

// FromCOOAuto builds VBR with automatically detected groups:
// consecutive rows (and, on the transpose, columns) with identical
// sparsity patterns merge into one group. Matrices with repeated row
// structure get their natural blocks; others degenerate to 1×1 groups
// (i.e. CSR with extra overhead — VBR's documented behaviour).
func FromCOOAuto(c *core.COO) (*Matrix, error) {
	c.Finalize()
	rowPart := detectGroups(c)
	colPart := detectGroups(c.Transpose())
	return FromCOO(c, rowPart, colPart)
}

// detectGroups merges consecutive rows with identical column lists.
func detectGroups(c *core.COO) []int32 {
	n := c.Rows()
	// Collect per-row column lists from the finalized (row-major) COO.
	rows := make([][]int32, n)
	for k := 0; k < c.Len(); k++ {
		i, j, _ := c.At(k)
		rows[i] = append(rows[i], int32(j))
	}
	part := []int32{0}
	for i := 1; i < n; i++ {
		if !equalInt32(rows[i], rows[i-1]) {
			part = append(part, int32(i))
		}
	}
	return append(part, int32(n))
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkPart(p []int32, n int) error {
	if len(p) < 2 || p[0] != 0 || int(p[len(p)-1]) != n {
		return fmt.Errorf("boundaries must span [0, %d]", n)
	}
	for i := 1; i < len(p); i++ {
		if p[i] <= p[i-1] {
			return fmt.Errorf("boundaries not strictly increasing at %d", i)
		}
	}
	return nil
}

// groupIndex maps each element index to its group.
func groupIndex(part []int32, n int) []int32 {
	out := make([]int32, n)
	g := int32(0)
	for i := 0; i < n; i++ {
		for int32(i) >= part[g+1] {
			g++
		}
		out[i] = g
	}
	return out
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Name implements core.Format.
func (m *Matrix) Name() string { return "vbr" }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.cols }

// NNZ implements core.Format (logical non-zeros).
func (m *Matrix) NNZ() int { return m.nnz }

// Blocks returns the stored block count.
func (m *Matrix) Blocks() int { return len(m.BColInd) }

// Fill returns stored values (block padding included) per logical
// non-zero.
func (m *Matrix) Fill() float64 {
	if m.nnz == 0 {
		return 1
	}
	return float64(len(m.Values)) / float64(m.nnz)
}

// SizeBytes implements core.Format: padded values plus per-block (not
// per-element) index data, plus the partitions.
func (m *Matrix) SizeBytes() int64 {
	return int64(len(m.Values))*core.ValSize +
		int64(len(m.BColInd))*core.IdxSize +
		int64(len(m.BRowPtr))*core.IdxSize +
		int64(len(m.BOff))*8 +
		int64(len(m.RowPart)+len(m.ColPart))*core.IdxSize
}

// SpMV computes y = A*x.
func (m *Matrix) SpMV(y, x []float64) { m.spmvRange(y, x, 0, len(m.BRowPtr)-1) }

func (m *Matrix) spmvRange(y, x []float64, blo, bhi int) {
	for br := blo; br < bhi; br++ {
		i0 := int(m.RowPart[br])
		i1 := int(m.RowPart[br+1])
		for i := i0; i < i1; i++ {
			y[i] = 0
		}
		for b := m.BRowPtr[br]; b < m.BRowPtr[br+1]; b++ {
			bc := m.BColInd[b]
			j0 := int(m.ColPart[bc])
			bw := int(m.ColPart[bc+1]) - j0
			vals := m.Values[m.BOff[b]:m.BOff[b+1]]
			for bi := 0; bi < i1-i0; bi++ {
				sum := 0.0
				row := vals[bi*bw : (bi+1)*bw]
				for bj, v := range row {
					sum += v * x[j0+bj]
				}
				y[i0+bi] += sum
			}
		}
	}
}

// Split implements core.Splitter at block-row granularity, weighted by
// stored values.
func (m *Matrix) Split(n int) []core.Chunk {
	R := len(m.BRowPtr) - 1
	prefix := make([]int64, R+1)
	for br := 0; br < R; br++ {
		prefix[br+1] = m.BOff[m.BRowPtr[br+1]]
	}
	bounds := partition.SplitPrefix(prefix, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		chunks = append(chunks, &chunk{m: m, blo: bounds[i], bhi: bounds[i+1]})
	}
	return chunks
}

type chunk struct {
	m        *Matrix
	blo, bhi int
}

func (c *chunk) RowRange() (int, int) {
	return int(c.m.RowPart[c.blo]), int(c.m.RowPart[c.bhi])
}

// NNZ returns the logical non-zero count of the chunk's block rows.
func (c *chunk) NNZ() int {
	return int(c.m.logPrefix[c.bhi] - c.m.logPrefix[c.blo])
}

func (c *chunk) SpMV(y, x []float64) { c.m.spmvRange(y, x, c.blo, c.bhi) }
