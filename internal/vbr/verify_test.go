package vbr

import (
	"errors"
	"testing"

	"spmv/internal/core"
)

func buildVerifyFixture(t *testing.T) *Matrix {
	t.Helper()
	c := core.NewCOO(8, 8)
	for i := 0; i < 8; i++ {
		c.Add(i, i, 2)
		c.Add(i, (i+2)%8, -1)
	}
	m, err := FromCOO(c, []int32{0, 2, 4, 6, 8}, []int32{0, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVerifyClean(t *testing.T) {
	if err := buildVerifyFixture(t).Verify(); err != nil {
		t.Fatalf("Verify on valid matrix: %v", err)
	}
}

func TestVerifyCorrupt(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Matrix)
	}{
		{"rowpart-not-increasing", func(m *Matrix) { m.RowPart[1] = m.RowPart[2] }},
		{"colpart-wrong-span", func(m *Matrix) { m.ColPart[len(m.ColPart)-1] = 7 }},
		{"bcolind-out-of-range", func(m *Matrix) { m.BColInd[0] = 9 }},
		{"boff-geometry-mismatch", func(m *Matrix) { m.BOff[1] += 3 }},
		{"values-short", func(m *Matrix) { m.Values = m.Values[:len(m.Values)-1] }},
		{"logprefix-non-monotone", func(m *Matrix) { m.logPrefix[1] = m.logPrefix[2] + 5 }},
		{"logprefix-wrong-total", func(m *Matrix) { m.logPrefix[len(m.logPrefix)-1] = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := buildVerifyFixture(t)
			tc.corrupt(m)
			err := m.Verify()
			if err == nil {
				t.Fatal("Verify accepted corrupted matrix")
			}
			if !errors.Is(err, core.ErrCorrupt) && !errors.Is(err, core.ErrShape) {
				t.Fatalf("Verify error %v is not typed", err)
			}
		})
	}
}
