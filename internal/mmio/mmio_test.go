package mmio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
)

func TestReadGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 1.5
2 3 -2.0
3 4 4e2
`
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 3 || c.Cols() != 4 || c.Len() != 3 {
		t.Fatalf("shape %dx%d nnz %d", c.Rows(), c.Cols(), c.Len())
	}
	i, j, v := c.At(2)
	if i != 2 || j != 3 || v != 400 {
		t.Errorf("last entry = (%d,%d,%v)", i, j, v)
	}
}

func TestReadSymmetricExpands(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2.0
2 1 -1.0
3 2 5.0
`
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 5 {
		t.Fatalf("nnz = %d, want 5 (2 off-diag mirrored)", c.Len())
	}
	d := core.DenseFromCOO(c)
	if d.At(0, 1) != -1 || d.At(1, 0) != -1 {
		t.Error("mirror missing")
	}
	if d.At(1, 2) != 5 || d.At(2, 1) != 5 {
		t.Error("mirror missing for (3,2)")
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d := core.DenseFromCOO(c)
	if d.At(1, 0) != 3 || d.At(0, 1) != -3 {
		t.Errorf("skew expand wrong: %v %v", d.At(1, 0), d.At(0, 1))
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	_, _, v := c.At(0)
	if v != 1 {
		t.Errorf("pattern value = %v, want 1", v)
	}
}

func TestReadInteger(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
2 2 1
1 1 42
`
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	_, _, v := c.At(0)
	if v != 42 {
		t.Errorf("value = %v", v)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad banner":    "%%NotMatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n",
		"array format":  "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"bad field":     "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry":  "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"bad size":      "%%MatrixMarket matrix coordinate real general\n0 3 1\n1 1 1\n",
		"short entry":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"oob coord":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 5\n",
		"missing entry": "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5\n",
		"bad value":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := matgen.FEMLike(rng, 60, 4, matgen.Values{Unique: 7})
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != orig.Rows() || back.Cols() != orig.Cols() || back.Len() != orig.Len() {
		t.Fatalf("shape mismatch after round trip")
	}
	for k := 0; k < orig.Len(); k++ {
		i1, j1, v1 := orig.At(k)
		i2, j2, v2 := back.At(k)
		if i1 != i2 || j1 != j2 || v1 != v2 {
			t.Fatalf("entry %d: (%d,%d,%v) vs (%d,%d,%v)", k, i1, j1, v1, i2, j2, v2)
		}
	}
}

func TestDuplicatesSummed(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 2
1 1 1.5
1 1 2.5
`
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("nnz = %d after fold", c.Len())
	}
	_, _, v := c.At(0)
	if v != 4 {
		t.Errorf("folded value = %v", v)
	}
}

func TestCaseInsensitiveBanner(t *testing.T) {
	in := "%%MatrixMarket MATRIX Coordinate REAL General\n1 1 1\n1 1 9\n"
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	_, _, v := c.At(0)
	if v != 9 {
		t.Errorf("value = %v", v)
	}
}

func TestReadStreamMatchesRead(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2.0
2 1 -1.0
3 2 5.0
`
	var sized *Size
	var got [][3]float64
	size, err := ReadStream(strings.NewReader(in),
		func(s Size) { sized = &s },
		func(i, j int, v float64) { got = append(got, [3]float64{float64(i), float64(j), v}) })
	if err != nil {
		t.Fatal(err)
	}
	if sized == nil || sized.Rows != 3 || sized.NNZ != 3 {
		t.Fatalf("onSize: %+v", sized)
	}
	if size.Header.Symmetry != "symmetric" {
		t.Errorf("header: %+v", size.Header)
	}
	// 3 file entries, 2 mirrored => 5 emits.
	if len(got) != 5 {
		t.Fatalf("emits = %d, want 5", len(got))
	}
}

func TestReadCRLFLineEndings(t *testing.T) {
	// Files written on Windows (or fetched in text mode) arrive with
	// \r\n terminators; the reader must not choke on the trailing \r.
	in := "%%MatrixMarket matrix coordinate real general\r\n" +
		"% comment\r\n" +
		"2 2 2\r\n" +
		"1 1 1.5\r\n" +
		"2 2 -3.0\r\n"
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("nnz = %d, want 2", c.Len())
	}
	_, _, v := c.At(1)
	if v != -3 {
		t.Errorf("value = %v, want -3", v)
	}
}

func TestReadRejectsNonFinite(t *testing.T) {
	for _, bad := range []string{"NaN", "nan", "Inf", "+Inf", "-Inf", "infinity"} {
		in := "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 " + bad + "\n"
		_, err := Read(strings.NewReader(in))
		if err == nil {
			t.Errorf("value %q accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("value %q: error %v does not mention non-finite", bad, err)
		}
	}
}

func TestReadLongCommentLine(t *testing.T) {
	// A 2 MiB comment line exceeds the old 1 MiB scanner cap; the raised
	// limit must carry it.
	in := "%%MatrixMarket matrix coordinate real general\n" +
		"%" + strings.Repeat("x", 2<<20) + "\n" +
		"1 1 1\n1 1 7\n"
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	_, _, v := c.At(0)
	if v != 7 {
		t.Errorf("value = %v, want 7", v)
	}
}

func TestReadStreamNilOnSize(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 3\n"
	n := 0
	if _, err := ReadStream(strings.NewReader(in), nil, func(i, j int, v float64) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("emits = %d", n)
	}
}

// Regression tests for symmetric expansion at the diagonal: the
// expansion mirrors strictly off-diagonal entries only. Mirroring a
// diagonal entry would fold into a doubled value (symmetric) or a
// cancelled zero (skew-symmetric) after Finalize — both silent data
// corruption, invisible to shape checks.

func TestSymmetricDiagonalNotDuplicated(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 2.0
2 2 7.0
3 1 -1.0
3 3 4.0
`
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// 3 diagonal entries stored once each + 1 off-diagonal mirrored.
	if c.Len() != 5 {
		t.Fatalf("nnz = %d, want 5", c.Len())
	}
	d := core.DenseFromCOO(c)
	for k, want := range map[int]float64{0: 2, 1: 7, 2: 4} {
		if got := d.At(k, k); got != want {
			t.Errorf("diag[%d] = %v, want %v (duplicated diagonal folds to 2x)", k, got, want)
		}
	}
	if d.At(0, 2) != -1 || d.At(2, 0) != -1 {
		t.Error("off-diagonal mirror missing")
	}
}

func TestSkewSymmetricDiagonalNotMirrored(t *testing.T) {
	// Skew-symmetric files should not store the (identically zero)
	// diagonal, but a reader must not make things worse when one does:
	// mirroring (i,i,v) as (i,i,-v) would cancel the entry entirely.
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 2
1 1 2.0
2 1 3.0
`
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d := core.DenseFromCOO(c)
	if got := d.At(0, 0); got != 2 {
		t.Errorf("diag = %v, want 2 (a mirrored diagonal cancels to 0)", got)
	}
	if d.At(1, 0) != 3 || d.At(0, 1) != -3 {
		t.Errorf("skew mirror wrong: (1,0)=%v (0,1)=%v", d.At(1, 0), d.At(0, 1))
	}
}

func TestSymmetricExpansionDuplicateFold(t *testing.T) {
	// Duplicate stored entries pass through the expansion and are summed
	// by Finalize — on both sides of the mirror.
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
2 1 1.25
2 1 0.75
3 3 5.0
`
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// (2,1)+(2,1) fold to one entry, its mirror likewise, plus the diagonal.
	if c.Len() != 3 {
		t.Fatalf("nnz = %d after fold, want 3", c.Len())
	}
	d := core.DenseFromCOO(c)
	if d.At(1, 0) != 2 || d.At(0, 1) != 2 {
		t.Errorf("folded mirror pair = %v/%v, want 2/2", d.At(1, 0), d.At(0, 1))
	}
	if d.At(2, 2) != 5 {
		t.Errorf("diagonal = %v, want 5", d.At(2, 2))
	}
}
