// Package mmio reads and writes the NIST Matrix Market exchange format,
// the distribution format of the University of Florida sparse matrix
// collection from which the paper draws its matrix set (§VI-B). The
// coordinate format with real, integer and pattern fields and general,
// symmetric and skew-symmetric symmetry is supported — enough to load
// any matrix in the paper's set.
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"spmv/internal/core"
)

// Header describes the matrix type line of a Matrix Market file.
type Header struct {
	Object   string // "matrix"
	Format   string // "coordinate" (dense "array" is not supported)
	Field    string // "real", "integer" or "pattern"
	Symmetry string // "general", "symmetric" or "skew-symmetric"
}

// Read parses a Matrix Market stream into a finalized COO matrix.
// Symmetric and skew-symmetric storage is expanded to general form
// (mirrored entries materialized), as the paper's CSR loader would.
func Read(r io.Reader) (*core.COO, error) {
	var c *core.COO
	_, err := ReadStream(r,
		func(s Size) { c = core.NewCOO(s.Rows, s.Cols) },
		func(i, j int, v float64) { c.Add(i, j, v) })
	if err != nil {
		return nil, err
	}
	c.Finalize()
	return c, nil
}

func readHeader(sc *bufio.Scanner) (Header, error) {
	if !sc.Scan() {
		return Header{}, fmt.Errorf("mmio: empty input")
	}
	line := strings.TrimSpace(sc.Text())
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" {
		return Header{}, fmt.Errorf("mmio: bad banner %q", line)
	}
	h := Header{Object: fields[1], Format: fields[2], Field: fields[3], Symmetry: fields[4]}
	if h.Object != "matrix" {
		return h, fmt.Errorf("mmio: unsupported object %q", h.Object)
	}
	if h.Format != "coordinate" {
		return h, fmt.Errorf("mmio: unsupported format %q (only coordinate)", h.Format)
	}
	switch h.Field {
	case "real", "integer", "pattern":
	default:
		return h, fmt.Errorf("mmio: unsupported field %q", h.Field)
	}
	switch h.Symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return h, fmt.Errorf("mmio: unsupported symmetry %q", h.Symmetry)
	}
	return h, nil
}

// nextLine returns the next line with comments stripped; io.EOF when
// exhausted.
func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// Write emits a finalized COO as a general real coordinate Matrix
// Market file.
func Write(w io.Writer, c *core.COO) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", c.Rows(), c.Cols(), c.Len()); err != nil {
		return err
	}
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}
