package mmio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Size describes a coordinate file's declared shape.
type Size struct {
	Rows, Cols, NNZ int
	Header          Header
}

// ReadStream parses a Matrix Market stream without materializing a COO:
// onSize (optional) fires once after the header and size line; emit is
// then called once per stored entry (symmetric entries are expanded, so
// emit may fire up to twice per file line). Use it for matrices too
// large to hold twice in memory, or to feed assembly pipelines
// directly. Read is built on top of it.
func ReadStream(r io.Reader, onSize func(Size), emit func(i, j int, v float64)) (Size, error) {
	sc := bufio.NewScanner(r)
	// Real-world Matrix Market files carry kilobyte-scale comment blocks
	// and some generators emit very long lines; start small but allow
	// lines up to 16 MiB before giving up (bufio.ErrTooLong otherwise).
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)

	h, err := readHeader(sc)
	if err != nil {
		return Size{}, err
	}
	var size Size
	size.Header = h
	for {
		line, err := nextLine(sc)
		if err != nil {
			return size, fmt.Errorf("mmio: missing size line: %w", err)
		}
		if line == "" {
			continue
		}
		if _, err := fmt.Sscan(line, &size.Rows, &size.Cols, &size.NNZ); err != nil {
			return size, fmt.Errorf("mmio: bad size line %q: %w", line, err)
		}
		break
	}
	if size.Rows <= 0 || size.Cols <= 0 || size.NNZ < 0 {
		return size, fmt.Errorf("mmio: invalid size %d %d %d", size.Rows, size.Cols, size.NNZ)
	}
	if onSize != nil {
		onSize(size)
	}
	for k := 0; k < size.NNZ; k++ {
		line, err := nextLine(sc)
		if err != nil {
			return size, fmt.Errorf("mmio: entry %d/%d: %w", k+1, size.NNZ, err)
		}
		if line == "" {
			k--
			continue
		}
		fields := strings.Fields(line)
		minFields := 3
		if h.Field == "pattern" {
			minFields = 2
		}
		if len(fields) < minFields {
			return size, fmt.Errorf("mmio: entry %d: short line %q", k+1, line)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return size, fmt.Errorf("mmio: entry %d: bad coordinates %q", k+1, line)
		}
		if i < 1 || i > size.Rows || j < 1 || j > size.Cols {
			return size, fmt.Errorf("mmio: entry %d: coordinate (%d,%d) outside %dx%d", k+1, i, j, size.Rows, size.Cols)
		}
		v := 1.0
		if h.Field != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return size, fmt.Errorf("mmio: entry %d: bad value %q", k+1, fields[2])
			}
			// NaN/Inf would silently poison every downstream dot product
			// and convergence test; fail at the door with a clear message.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return size, fmt.Errorf("mmio: entry %d: non-finite value %q", k+1, fields[2])
			}
		}
		emit(i-1, j-1, v)
		if i != j {
			switch h.Symmetry {
			case "symmetric":
				emit(j-1, i-1, v)
			case "skew-symmetric":
				emit(j-1, i-1, -v)
			}
		}
	}
	return size, nil
}
