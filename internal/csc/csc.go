// Package csc implements the Compressed Sparse Column format (paper
// §II-B) and the column-partitioned SpMV of §II-C. CSC is the natural
// format for column partitioning: each thread owns a contiguous column
// range — and therefore a contiguous slice of x, giving good temporal
// locality on x — but all threads contribute to all of y, so the
// multithreaded runtime reduces per-thread private y vectors.
package csc

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/partition"
)

// Matrix is a sparse matrix in CSC form: Values holds non-zeros in
// column-major order, RowInd the row of each, ColPtr the offset of each
// column's first non-zero (len cols+1).
type Matrix struct {
	rows, cols int
	ColPtr     []int32
	RowInd     []int32
	Values     []float64
}

var (
	_ core.Format      = (*Matrix)(nil)
	_ core.SpMVAdd     = (*Matrix)(nil)
	_ core.ColSplitter = (*Matrix)(nil)
)

// FromCOO builds a CSC matrix from a triplet matrix.
func FromCOO(c *core.COO) (*Matrix, error) {
	c.Finalize()
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("csc: %d non-zeros exceed 32-bit index range", c.Len())
	}
	m := &Matrix{
		rows:   c.Rows(),
		cols:   c.Cols(),
		ColPtr: make([]int32, c.Cols()+1),
		RowInd: make([]int32, c.Len()),
		Values: make([]float64, c.Len()),
	}
	for k := 0; k < c.Len(); k++ {
		_, j, _ := c.At(k)
		m.ColPtr[j+1]++
	}
	for j := 0; j < c.Cols(); j++ {
		m.ColPtr[j+1] += m.ColPtr[j]
	}
	next := make([]int32, c.Cols())
	copy(next, m.ColPtr[:c.Cols()])
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		p := next[j]
		next[j]++
		m.RowInd[p] = int32(i)
		m.Values[p] = v
	}
	return m, nil
}

// Name implements core.Format.
func (m *Matrix) Name() string { return "csc" }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.cols }

// NNZ implements core.Format.
func (m *Matrix) NNZ() int { return len(m.Values) }

// SizeBytes implements core.Format.
func (m *Matrix) SizeBytes() int64 {
	return int64(m.NNZ())*(core.IdxSize+core.ValSize) + int64(m.cols+1)*core.IdxSize
}

// SpMV computes y = A*x by column scatter.
func (m *Matrix) SpMV(y, x []float64) {
	for i := 0; i < m.rows; i++ {
		y[i] = 0
	}
	m.addRange(y, x, 0, m.cols)
}

// SpMVAdd computes y += A*x.
func (m *Matrix) SpMVAdd(y, x []float64) { m.addRange(y, x, 0, m.cols) }

func (m *Matrix) addRange(y, x []float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		xj := x[j]
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			y[m.RowInd[k]] += m.Values[k] * xj
		}
	}
}

// SplitCols implements core.ColSplitter with nnz-balanced partitioning.
func (m *Matrix) SplitCols(n int) []core.ColChunk {
	bounds := partition.SplitRowsByNNZ(m.ColPtr, n)
	var chunks []core.ColChunk
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		chunks = append(chunks, &colChunk{m: m, lo: bounds[i], hi: bounds[i+1]})
	}
	return chunks
}

type colChunk struct {
	m      *Matrix
	lo, hi int
}

func (c *colChunk) ColRange() (int, int) { return c.lo, c.hi }
func (c *colChunk) NNZ() int             { return int(c.m.ColPtr[c.hi] - c.m.ColPtr[c.lo]) }
func (c *colChunk) SpMVAdd(y, x []float64) {
	c.m.addRange(y, x, c.lo, c.hi)
}
