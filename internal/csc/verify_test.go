package csc

import (
	"errors"
	"testing"

	"spmv/internal/core"
)

func buildVerifyFixture(t *testing.T) *Matrix {
	t.Helper()
	c := core.NewCOO(5, 4)
	c.Add(0, 0, 1)
	c.Add(2, 0, 2)
	c.Add(1, 1, 3)
	c.Add(4, 2, 4)
	c.Add(3, 3, 5)
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVerifyClean(t *testing.T) {
	if err := buildVerifyFixture(t).Verify(); err != nil {
		t.Fatalf("Verify on valid matrix: %v", err)
	}
}

func TestVerifyCorrupt(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Matrix)
	}{
		{"colptr-short", func(m *Matrix) { m.ColPtr = m.ColPtr[:3] }},
		{"colptr-decreasing", func(m *Matrix) { m.ColPtr[1] = 4; m.ColPtr[2] = 1 }},
		{"rowind-out-of-range", func(m *Matrix) { m.RowInd[0] = 99 }},
		{"rowind-negative", func(m *Matrix) { m.RowInd[0] = -1 }},
		{"length-mismatch", func(m *Matrix) { m.Values = m.Values[:len(m.Values)-1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := buildVerifyFixture(t)
			tc.corrupt(m)
			err := m.Verify()
			if err == nil {
				t.Fatal("Verify accepted corrupted matrix")
			}
			if !errors.Is(err, core.ErrCorrupt) && !errors.Is(err, core.ErrShape) {
				t.Fatalf("Verify error %v is not typed", err)
			}
		})
	}
}
