package csc

import "spmv/internal/core"

// Verify implements core.Verifier: column pointer monotone and
// spanning exactly nnz, row indices inside [0, rows), index and value
// arrays the same length. O(nnz).
func (m *Matrix) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("csc: negative dimensions %dx%d", m.rows, m.cols)
	}
	if len(m.ColPtr) != m.cols+1 {
		return core.Shapef("csc: column pointer length %d, want %d", len(m.ColPtr), m.cols+1)
	}
	if len(m.RowInd) != len(m.Values) {
		return core.Shapef("csc: %d row indices for %d values", len(m.RowInd), len(m.Values))
	}
	if err := core.CheckRowPtr(m.ColPtr, len(m.Values)); err != nil {
		return err
	}
	for k, i := range m.RowInd {
		if i < 0 || int(i) >= m.rows {
			return core.Corruptf("csc: row index %d at position %d out of range [0,%d)", i, k, m.rows)
		}
	}
	return nil
}
