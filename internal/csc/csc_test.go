package csc

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestConformance(t *testing.T) {
	// CSC is not a row Splitter, so the battery covers meta + SpMV only.
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return FromCOO(c) })
}

func TestColPtrStructure(t *testing.T) {
	// Fig 1 matrix: column 0 holds rows {0,4,5}.
	vals := [][]float64{
		{5.4, 1.1, 0, 0, 0, 0},
		{0, 6.3, 0, 7.7, 0, 8.8},
		{0, 0, 1.1, 0, 0, 0},
		{0, 0, 2.9, 0, 3.7, 2.9},
		{9.0, 0, 0, 1.1, 4.5, 0},
		{1.1, 0, 2.9, 3.7, 0, 1.1},
	}
	c := core.NewCOO(6, 6)
	for i, row := range vals {
		for j, v := range row {
			if v != 0 {
				c.Add(i, j, v)
			}
		}
	}
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	wantColPtr := []int32{0, 3, 5, 8, 11, 13, 16}
	for i, w := range wantColPtr {
		if m.ColPtr[i] != w {
			t.Fatalf("ColPtr = %v, want %v", m.ColPtr, wantColPtr)
		}
	}
	// Rows within each column are sorted (finalized COO is row-major,
	// so the counting sort preserves row order per column).
	for j := 0; j < 6; j++ {
		for k := m.ColPtr[j] + 1; k < m.ColPtr[j+1]; k++ {
			if m.RowInd[k] <= m.RowInd[k-1] {
				t.Fatalf("column %d rows not sorted: %v", j, m.RowInd[m.ColPtr[j]:m.ColPtr[j+1]])
			}
		}
	}
}

func TestSplitColsCoversAndMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := matgen.FEMLike(rng, 300, 5, matgen.Values{})
	m, _ := FromCOO(c)
	d := core.DenseFromCOO(c)
	x := testmat.RandVec(rng, m.Cols())
	want := make([]float64, m.Rows())
	d.SpMV(want, x)

	for _, n := range []int{1, 3, 8} {
		chunks := m.SplitCols(n)
		if len(chunks) > n {
			t.Fatalf("SplitCols(%d) gave %d chunks", n, len(chunks))
		}
		next := 0
		total := 0
		for _, ch := range chunks {
			lo, hi := ch.ColRange()
			if lo < next || hi <= lo {
				t.Fatalf("bad chunk range [%d,%d)", lo, hi)
			}
			next = hi
			total += ch.NNZ()
		}
		if total != m.NNZ() {
			t.Fatalf("chunk nnz sums to %d, want %d", total, m.NNZ())
		}
		// Accumulating all chunks into a zero y reproduces SpMV.
		got := make([]float64, m.Rows())
		for _, ch := range chunks {
			ch.SpMVAdd(got, x)
		}
		testmat.AssertClose(t, "column chunks", got, want, 1e-10)
	}
}

func TestSpMVOverwritesY(t *testing.T) {
	c := core.NewCOO(3, 3)
	c.Add(1, 1, 2)
	c.Finalize()
	m, _ := FromCOO(c)
	y := []float64{7, 7, 7}
	m.SpMV(y, []float64{1, 1, 1})
	if y[0] != 0 || y[1] != 2 || y[2] != 0 {
		t.Errorf("y = %v", y)
	}
}

func BenchmarkSpMVCSC(b *testing.B) {
	m, _ := FromCOO(matgen.Stencil2D(128))
	x := make([]float64, m.Cols())
	y := make([]float64, m.Rows())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.SetBytes(m.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SpMV(y, x)
	}
}
