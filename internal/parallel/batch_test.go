package parallel

import (
	"errors"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csc"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrduvi"
	"spmv/internal/csrvi"
	"spmv/internal/ell"
	"spmv/internal/matgen"
	"spmv/internal/obs"
	"spmv/internal/testmat"
)

// batchReference computes the expected panel column by column from the
// dense reference.
func batchReference(c *core.COO, x []float64, k int) []float64 {
	d := core.DenseFromCOO(c)
	want := make([]float64, c.Rows()*k)
	xc := make([]float64, c.Cols())
	yc := make([]float64, c.Rows())
	for cc := 0; cc < k; cc++ {
		for j := range xc {
			xc[j] = x[j*k+cc]
		}
		d.SpMV(yc, xc)
		for i, v := range yc {
			want[i*k+cc] = v
		}
	}
	return want
}

// TestRunBatchMatchesReference covers both executor paths: the fused
// dispatch (every chunk a BatchChunk: the csr/csr-du/csr-vi family)
// and the per-column fallback (ell chunks have no batch kernel).
func TestRunBatchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := matgen.FEMLike(rng, 300, 6, matgen.Values{Unique: 25})

	builders := map[string]func() (core.Format, error){
		"csr":       func() (core.Format, error) { return csr.FromCOO(c) },
		"csr-du":    func() (core.Format, error) { return csrdu.FromCOO(c) },
		"csr-vi":    func() (core.Format, error) { return csrvi.FromCOO(c) },
		"csr-du-vi": func() (core.Format, error) { return csrduvi.FromCOO(c) },
		"ell":       func() (core.Format, error) { return ell.FromCOO(c) }, // fallback path
	}
	for name, build := range builders {
		f, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, k := range []int{1, 3, 4, 8} {
			x := testmat.RandVec(rng, c.Cols()*k)
			want := batchReference(c, x, k)
			e, err := NewExecutor(f, 4)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			y := make([]float64, c.Rows()*k)
			if err := e.RunBatch(y, x, k); err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			testmat.AssertClose(t, name, y, want, 1e-10)
			// Repeat on the same executor: scratch reuse must not leak
			// state between runs.
			if err := e.RunBatchIters(3, y, x, k); err != nil {
				t.Fatalf("%s k=%d iters: %v", name, k, err)
			}
			testmat.AssertClose(t, name+" iters", y, want, 1e-10)
			e.Close()
		}
	}
}

// TestRunBatchGapRowsZeroed: rows owned by no chunk (empty tail) must
// come out zero in every panel column, on both executor paths.
func TestRunBatchGapRowsZeroed(t *testing.T) {
	c := core.NewCOO(40, 40)
	for i := 0; i < 30; i++ { // rows 30..39 empty
		c.Add(i, i, float64(i+1))
	}
	c.Finalize()
	const k = 4
	for name, f := range map[string]core.Format{
		"csr": mustFormat(csr.FromCOO(c)),
		"ell": mustFormat(ell.FromCOO(c)),
	} {
		e, err := NewExecutor(f, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y := make([]float64, 40*k)
		for i := range y {
			y[i] = 7
		}
		if err := e.RunBatch(y, make([]float64, 40*k), k); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, v := range y {
			if v != 0 {
				t.Fatalf("%s: y[%d] = %v, want 0", name, i, v)
			}
		}
		e.Close()
	}
}

// TestRunBatchTelemetry: one batched run is one RunStat with
// Vectors = k on both the fused and fallback paths.
func TestRunBatchTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := matgen.Banded(rng, 200, 9, 5, matgen.Values{})
	for name, f := range map[string]core.Format{
		"csr": mustFormat(csr.FromCOO(c)),
		"ell": mustFormat(ell.FromCOO(c)),
	} {
		e, err := NewExecutor(f, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rec := &obs.Recorder{}
		e.SetCollector(rec)
		const k = 4
		y := make([]float64, c.Rows()*k)
		x := testmat.RandVec(rng, c.Cols()*k)
		if err := e.RunBatch(y, x, k); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := rec.Runs(); got != 1 {
			t.Fatalf("%s: %d RunStats for one RunBatch, want 1", name, got)
		}
		if s := rec.Snapshot(); s.Last.Vectors != k || s.Vectors != k {
			t.Errorf("%s: Last.Vectors = %d, total = %d, want %d",
				name, s.Last.Vectors, s.Vectors, k)
		}
		// The scalar path reports Vectors = 1.
		if err := e.Run(y[:c.Rows()], x[:c.Cols()]); err != nil {
			t.Fatal(err)
		}
		if s := rec.Snapshot(); s.Last.Vectors != 1 || s.Vectors != k+1 {
			t.Errorf("%s: after scalar run Last.Vectors = %d, total = %d, want 1 and %d",
				name, s.Last.Vectors, s.Vectors, k+1)
		}
		e.Close()
	}
}

// TestRunBatchErrors: closed executors and bad panel shapes produce the
// typed sentinels before any worker runs.
func TestRunBatchErrors(t *testing.T) {
	f := mustFormat(csr.FromCOO(matgen.Stencil2D(5)))
	e, err := NewExecutor(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := f.Rows(), f.Cols()
	y := make([]float64, rows*2)
	x := make([]float64, cols*2)
	if err := e.RunBatch(y, x, 0); !errors.Is(err, core.ErrUsage) {
		t.Errorf("k=0: %v, want ErrUsage", err)
	}
	if err := e.RunBatch(y[:rows*2-1], x, 2); !errors.Is(err, core.ErrShape) {
		t.Errorf("short y: %v, want ErrShape", err)
	}
	e.Close()
	if err := e.RunBatch(y, x, 2); !errors.Is(err, core.ErrUsage) {
		t.Errorf("closed: %v, want ErrUsage", err)
	}
}

// TestColBlockRunBatch: the reducing executors run batches per column;
// results must still match the reference.
func TestColBlockRunBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := matgen.FEMLike(rng, 250, 5, matgen.Values{})
	const k = 3
	x := testmat.RandVec(rng, c.Cols()*k)
	want := batchReference(c, x, k)

	cs := mustFormat(csc.FromCOO(c))
	ce, err := NewColExecutor(cs, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()
	y := make([]float64, c.Rows()*k)
	if err := ce.RunBatch(y, x, k); err != nil {
		t.Fatal(err)
	}
	testmat.AssertClose(t, "col", y, want, 1e-10)

	be, err := NewBlockExecutor(c, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	for i := range y {
		y[i] = 7
	}
	if err := be.RunBatch(y, x, k); err != nil {
		t.Fatal(err)
	}
	testmat.AssertClose(t, "block", y, want, 1e-10)
}

// TestNewExecOptions covers the options constructor: default and named
// partitions, thread defaulting, collector attachment, and the typed
// unknown-partition error.
func TestNewExecOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	c := matgen.Banded(rng, 120, 6, 4, matgen.Values{})
	f := mustFormat(csr.FromCOO(c))
	x := testmat.RandVec(rng, c.Cols())
	want := reference(c, x)

	fc := mustFormat(csc.FromCOO(c))
	rec := &obs.Recorder{}
	for _, partition := range []string{"", "row", "col"} {
		ff := f
		if partition == "col" {
			ff = fc // column partitioning needs a ColSplitter format
		}
		r, err := New(ff, ExecOptions{Threads: 2, Collector: rec, Partition: partition})
		if err != nil {
			t.Fatalf("%q: %v", partition, err)
		}
		y := make([]float64, c.Rows())
		if err := r.Run(y, x); err != nil {
			t.Fatalf("%q: %v", partition, err)
		}
		testmat.AssertClose(t, "New "+partition, y, want, 1e-10)
		if r.Threads() <= 0 {
			t.Errorf("%q: Threads = %d", partition, r.Threads())
		}
		r.Close()
	}
	if rec.Runs() != 3 {
		t.Errorf("collector saw %d runs, want 3", rec.Runs())
	}

	// Threads <= 0 defaults to GOMAXPROCS rather than erroring.
	r, err := New(f, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()

	if _, err := New(f, ExecOptions{Partition: "diagonal"}); !errors.Is(err, core.ErrUsage) {
		t.Errorf("unknown partition: %v, want ErrUsage", err)
	}
}
