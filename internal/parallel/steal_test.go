package parallel

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/obs"
	"spmv/internal/testmat"
)

func TestStealExecutorMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	coos := map[string]*core.COO{
		"stencil":  matgen.Stencil2D(12),
		"fem":      matgen.FEMLike(rng, 300, 6, matgen.Values{Unique: 30}),
		"powerlaw": matgen.PowerLaw(rng, 400, 4, 0.9, matgen.Values{}),
		"skewed":   matgen.SkewedRows(rng, 200, 3, 100, 0.4, matgen.Values{}),
	}
	for name, c := range coos {
		f, err := csr.FromCOO(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := testmat.RandVec(rng, c.Cols())
		want := reference(c, x)
		for _, threads := range []int{1, 2, 4, 8} {
			e, err := NewStealExecutor(f, threads)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, threads, err)
			}
			y := make([]float64, c.Rows())
			for iter := 0; iter < 3; iter++ {
				if err := e.Run(y, x); err != nil {
					t.Fatalf("%s/%d: %v", name, threads, err)
				}
				testmat.AssertClose(t, name, y, want, 1e-10)
			}
			e.Close()
		}
	}
}

// TestStealDrainStealsAll drives the claim protocol deterministically:
// with the other workers idle, one worker's drain must first exhaust
// its own queue (no steals counted), then claim every chunk of every
// other queue via the CAS path, counting each as a steal — and the
// assembled y must be the complete product.
func TestStealDrainStealsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	c := matgen.SkewedRows(rng, 300, 3, 150, 0.4, matgen.Values{})
	f, err := csr.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewStealExecutor(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Split may drop empty ranges, so over-decomposition lands near,
	// not exactly at, stealFactor chunks per worker.
	if len(e.queues) != 4 || len(e.chunks) <= 2*4 || len(e.chunks) > stealFactor*4 {
		t.Fatalf("%d queues over %d chunks, want 4 over ~%d",
			len(e.queues), len(e.chunks), stealFactor*4)
	}

	x := testmat.RandVec(rng, c.Cols())
	y := make([]float64, c.Rows())
	stats := make([]obs.ChunkStat, len(e.queues))
	e.drain(0, job{y: y, x: x, stats: stats})

	wantSteals := len(e.chunks) - len(e.queues[0])
	if stats[0].Steals != wantSteals {
		t.Errorf("worker 0 stole %d chunks, want %d", stats[0].Steals, wantSteals)
	}
	if stats[0].NNZ != f.NNZ() {
		t.Errorf("worker 0 executed %d nnz, want all %d", stats[0].NNZ, f.NNZ())
	}
	testmat.AssertClose(t, "steal-drain", y, reference(c, x), 1e-10)
}

func TestStealExecutorCollector(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := matgen.SkewedRows(rng, 400, 3, 200, 0.4, matgen.Values{})
	f, err := csr.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewStealExecutor(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := obs.NewRecorder()
	e.SetCollector(rec)
	x := testmat.RandVec(rng, c.Cols())
	y := make([]float64, c.Rows())
	if err := e.Run(y, x); err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	if s.Runs != 1 || s.Last.Partition != "steal" {
		t.Fatalf("snapshot = %+v, want 1 run with partition steal", s.Last)
	}
	// Every chunk ran on some worker, so the per-worker executed-nnz
	// counts sum to the matrix total regardless of who stole what.
	var nnz, steals int
	for _, cs := range s.Last.Chunks {
		nnz += cs.NNZ
		steals += cs.Steals
	}
	if nnz != f.NNZ() {
		t.Errorf("executed nnz sums to %d, want %d", nnz, f.NNZ())
	}
	if steals != s.Last.Steals {
		t.Errorf("RunStat.Steals = %d, chunk sum %d", s.Last.Steals, steals)
	}
}

func TestStealExecutorBatchAndClose(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	c := matgen.FEMLike(rng, 200, 5, matgen.Values{Unique: 20})
	f, err := csr.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewStealExecutor(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	x := testmat.RandVec(rng, c.Cols()*k)
	y := make([]float64, c.Rows()*k)
	if err := e.RunBatch(y, x, k); err != nil {
		t.Fatal(err)
	}
	for col := 0; col < k; col++ {
		xc := make([]float64, c.Cols())
		yc := make([]float64, c.Rows())
		for j := range xc {
			xc[j] = x[j*k+col]
		}
		for i := range yc {
			yc[i] = y[i*k+col]
		}
		testmat.AssertClose(t, "steal-batch", yc, reference(c, xc), 1e-10)
	}
	e.Close()
	if err := e.Run(make([]float64, c.Rows()), x[:c.Cols()]); !errors.Is(err, core.ErrUsage) {
		t.Errorf("Run after Close = %v, want core.ErrUsage", err)
	}
}

func TestNewWithStealAndNNZOptions(t *testing.T) {
	f, err := csr.FromCOO(matgen.Stencil2D(10))
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(f, ExecOptions{Threads: 2, Steal: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*StealExecutor); !ok {
		t.Errorf("Steal option built %T", r)
	}
	r.Close()

	r, err = New(f, ExecOptions{Threads: 2, Partition: "nnz"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*NNZExecutor); !ok {
		t.Errorf("nnz partition built %T", r)
	}
	r.Close()

	if _, err := New(f, ExecOptions{Threads: 2, Partition: "col", Steal: true}); !errors.Is(err, core.ErrUsage) {
		t.Errorf("Steal+col = %v, want core.ErrUsage", err)
	}
	if _, err := New(f, ExecOptions{Threads: 2, Partition: "bogus"}); !errors.Is(err, core.ErrUsage) {
		t.Errorf("unknown partition = %v, want core.ErrUsage", err)
	}
}

// failEveryFormat is a minimal row-partitionable format whose kernel
// panics on its Nth SpMV call — the FailEvery hook for exercising the
// executors' failure paths without corrupting a real matrix. Its
// chunks deliberately do not implement core.BatchChunk, forcing the
// per-column RunBatch fallback.
type failEveryFormat struct {
	n     int
	fail  int // panic on this (1-based) kernel call; 0 ⇒ never
	calls int
}

func (f *failEveryFormat) Name() string     { return "fail-every" }
func (f *failEveryFormat) Rows() int        { return f.n }
func (f *failEveryFormat) Cols() int        { return f.n }
func (f *failEveryFormat) NNZ() int         { return f.n }
func (f *failEveryFormat) SizeBytes() int64 { return int64(f.n) }
func (f *failEveryFormat) SpMV(y, x []float64) {
	copy(y[:f.n], x[:f.n])
}

func (f *failEveryFormat) Split(int) []core.Chunk {
	return []core.Chunk{&failEveryChunk{f: f}}
}

type failEveryChunk struct{ f *failEveryFormat }

func (c *failEveryChunk) RowRange() (int, int) { return 0, c.f.n }
func (c *failEveryChunk) NNZ() int             { return c.f.n }
func (c *failEveryChunk) SpMV(y, x []float64) {
	c.f.calls++
	if c.f.calls == c.f.fail {
		panic("fail-every: injected kernel failure")
	}
	copy(y[:c.f.n], x[:c.f.n])
}

// TestRunBatchFallbackReportsFailedRun pins the satellite bugfix: the
// per-column RunBatch fallback used to return straight out of the
// column loop on a failed column, skipping the collector's RunDone —
// a failing batch left no RunStat at all. The fixed path emits exactly
// one RunStat with Err set and Vectors = k.
func TestRunBatchFallbackReportsFailedRun(t *testing.T) {
	f := &failEveryFormat{n: 8, fail: 2} // column 0 succeeds, column 1 panics
	e, err := NewExecutor(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := obs.NewRecorder()
	e.SetCollector(rec)

	const k = 3
	y := make([]float64, f.n*k)
	x := make([]float64, f.n*k)
	batchErr := e.RunBatch(y, x, k)
	if batchErr == nil {
		t.Fatal("RunBatch with injected failure succeeded")
	}
	if !strings.Contains(batchErr.Error(), "batch column 1") {
		t.Errorf("error %q does not name the failed column", batchErr)
	}
	if got := rec.Runs(); got != 1 {
		t.Fatalf("recorder saw %d runs after failed batch, want 1", got)
	}
	s := rec.Snapshot()
	if s.Last.Err == "" || !strings.Contains(s.Last.Err, "batch column 1") {
		t.Errorf("RunStat.Err = %q, want the batch failure", s.Last.Err)
	}
	if s.Last.Vectors != k {
		t.Errorf("RunStat.Vectors = %d, want %d", s.Last.Vectors, k)
	}
}
