package parallel

import (
	"fmt"
	"sync"

	"spmv/internal/core"
)

// ColExecutor runs column-partitioned multithreaded SpMV (§II-C).
// Each worker owns a column range and a private y vector; after the
// multiply phase the private vectors are reduced into y, also in
// parallel (each worker reduces a row range across all private
// vectors). This is the paper's "each thread uses its own y array and
// performs a reducing addition at the end".
type ColExecutor struct {
	chunks  []core.ColChunk
	rows    int
	private [][]float64

	start []chan colJob
	wg    sync.WaitGroup
	once  sync.Once
}

type colJob struct {
	x      []float64
	y      []float64
	reduce [2]int // row range this worker reduces
}

// NewColExecutor partitions f into at most nthreads column chunks.
func NewColExecutor(f core.Format, nthreads int) (*ColExecutor, error) {
	s, ok := f.(core.ColSplitter)
	if !ok {
		return nil, fmt.Errorf("parallel: format %s does not support column partitioning", f.Name())
	}
	if nthreads <= 0 {
		return nil, fmt.Errorf("parallel: invalid thread count %d", nthreads)
	}
	e := &ColExecutor{chunks: s.SplitCols(nthreads), rows: f.Rows()}
	e.private = make([][]float64, len(e.chunks))
	e.start = make([]chan colJob, len(e.chunks))
	for i := range e.chunks {
		e.private[i] = make([]float64, e.rows)
		e.start[i] = make(chan colJob)
		go e.worker(i)
	}
	return e, nil
}

func (e *ColExecutor) worker(i int) {
	ch := e.chunks[i]
	mine := e.private[i]
	for j := range e.start[i] {
		if j.y == nil {
			// Phase 1: multiply into the private vector.
			for k := range mine {
				mine[k] = 0
			}
			ch.SpMVAdd(mine, j.x)
		} else {
			// Phase 2: reduce a row range across all private vectors.
			lo, hi := j.reduce[0], j.reduce[1]
			for k := lo; k < hi; k++ {
				sum := 0.0
				for _, p := range e.private {
					sum += p[k]
				}
				j.y[k] = sum
			}
		}
		e.wg.Done()
	}
}

// Threads returns the number of workers.
func (e *ColExecutor) Threads() int { return len(e.chunks) }

// Run computes y = A*x: a multiply phase over column chunks, a barrier,
// then a parallel reduction over row ranges.
func (e *ColExecutor) Run(y, x []float64) {
	n := len(e.chunks)
	e.wg.Add(n)
	for i := range e.start {
		e.start[i] <- colJob{x: x}
	}
	e.wg.Wait()
	e.wg.Add(n)
	for i := range e.start {
		lo := i * e.rows / n
		hi := (i + 1) * e.rows / n
		e.start[i] <- colJob{y: y, reduce: [2]int{lo, hi}}
	}
	e.wg.Wait()
}

// RunIters performs iters consecutive SpMV operations.
func (e *ColExecutor) RunIters(iters int, y, x []float64) {
	for k := 0; k < iters; k++ {
		e.Run(y, x)
	}
}

// Close stops the workers.
func (e *ColExecutor) Close() {
	e.once.Do(func() {
		for i := range e.start {
			close(e.start[i])
		}
	})
}
