package parallel

import (
	"context"
	"errors"
	"fmt"
	rtrace "runtime/trace"
	"sync"
	"time"

	"spmv/internal/core"
	"spmv/internal/obs"
)

// ColExecutor runs column-partitioned multithreaded SpMV (§II-C).
// Each worker owns a column range and a private y vector; after the
// multiply phase the private vectors are reduced into y, also in
// parallel (each worker reduces a row range across all private
// vectors). This is the paper's "each thread uses its own y array and
// performs a reducing addition at the end".
type ColExecutor struct {
	chunks  []core.ColChunk
	rows    int
	cols    int
	private [][]float64

	start []chan colJob
	errs  []error
	wg    sync.WaitGroup

	mu     sync.Mutex // serializes Run/RunBatch/Close; guards closed
	closed bool

	scratchY, scratchX []float64 // RunBatch per-column scratch

	collector  obs.Collector
	stats      []obs.ChunkStat // reused telemetry buffer; nil ⇒ collection off
	traceNames []string        // per-worker runtime/trace region names
}

type colJob struct {
	x      []float64
	y      []float64
	reduce [2]int          // row range this worker reduces
	stats  []obs.ChunkStat // nil ⇒ workers skip timing entirely
	ctx    context.Context // non-nil ⇒ wrap the phase in a trace region
}

// NewColExecutor partitions f into at most nthreads column chunks.
func NewColExecutor(f core.Format, nthreads int) (*ColExecutor, error) {
	s, ok := f.(core.ColSplitter)
	if !ok {
		return nil, fmt.Errorf("parallel: format %s does not support column partitioning", f.Name())
	}
	if nthreads <= 0 {
		return nil, fmt.Errorf("parallel: invalid thread count %d", nthreads)
	}
	e := &ColExecutor{chunks: s.SplitCols(nthreads), rows: f.Rows(), cols: f.Cols()}
	e.private = make([][]float64, len(e.chunks))
	e.start = make([]chan colJob, len(e.chunks))
	e.errs = make([]error, len(e.chunks))
	for i := range e.chunks {
		e.private[i] = make([]float64, e.rows)
		e.start[i] = make(chan colJob)
		go workerLabeled("col", i, func() { e.worker(i) })
	}
	return e, nil
}

// SetCollector attaches (or, with nil, detaches) a telemetry sink.
// It takes the run lock, so attaching mid-stream is safe. A worker's
// reported busy time covers both its multiply and reduction phases;
// its Lo/Hi span is its column range.
func (e *ColExecutor) SetCollector(c obs.Collector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.collector = c
	if c == nil {
		e.stats = nil
		return
	}
	e.stats = make([]obs.ChunkStat, len(e.chunks))
	for i, ch := range e.chunks {
		lo, hi := ch.ColRange()
		e.stats[i] = obs.ChunkStat{Worker: i, Lo: lo, Hi: hi, NNZ: ch.NNZ()}
	}
	e.traceNames = traceNames("col", len(e.chunks))
}

func (e *ColExecutor) worker(i int) {
	ch := e.chunks[i]
	mine := e.private[i]
	for j := range e.start[i] {
		if j.stats == nil {
			e.errs[i] = e.runColJob(ch, mine, j)
		} else {
			t0 := time.Now()
			if j.ctx != nil {
				rtrace.WithRegion(j.ctx, e.traceNames[i], func() {
					e.errs[i] = e.runColJob(ch, mine, j)
				})
			} else {
				e.errs[i] = e.runColJob(ch, mine, j)
			}
			j.stats[i].Busy += time.Since(t0)
		}
		e.wg.Done()
	}
}

// runColJob executes one phase of a column-partitioned run with panic
// containment. Multiply-phase errors are tagged with the chunk's
// column range, reduce-phase errors with the reduced row range.
func (e *ColExecutor) runColJob(ch core.ColChunk, mine []float64, j colJob) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = colJobError(ch, j, r)
		}
	}()
	if j.y == nil {
		// Phase 1: multiply into the private vector.
		for k := range mine {
			mine[k] = 0
		}
		ch.SpMVAdd(mine, j.x)
	} else {
		// Phase 2: reduce a row range across all private vectors.
		lo, hi := j.reduce[0], j.reduce[1]
		for k := lo; k < hi; k++ {
			sum := 0.0
			for _, p := range e.private {
				sum += p[k]
			}
			j.y[k] = sum
		}
	}
	return nil
}

// colJobError converts a recovered column-worker panic into an error:
// multiply-phase errors name the chunk's column range, reduce-phase
// errors the reduced row range. Kept out of runColJob so the hot
// function stays free of formatting calls.
func colJobError(ch core.ColChunk, j colJob, r any) error {
	if j.y == nil {
		lo, hi := ch.ColRange()
		return fmt.Errorf("parallel: chunk cols [%d,%d): %w", lo, hi, core.PanicError(r))
	}
	return fmt.Errorf("parallel: reduce rows [%d,%d): %w", j.reduce[0], j.reduce[1], core.PanicError(r))
}

// Threads returns the number of workers.
func (e *ColExecutor) Threads() int { return len(e.chunks) }

// Run computes y = A*x: a multiply phase over column chunks, a barrier,
// then a parallel reduction over row ranges. A failed multiply phase
// returns before the reduction, leaving y untouched. After Close, Run
// returns an error wrapping core.ErrUsage. Run, RunBatch and Close
// serialize on an internal mutex (see Executor).
func (e *ColExecutor) Run(y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(nil, y, x)
}

// RunCtx is Run with a cancellation context, checked before each
// dispatch phase (see Executor.RunCtx for the preemption contract).
func (e *ColExecutor) RunCtx(ctx context.Context, y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(ctx, y, x)
}

// run is Run without the lock; ctx may be nil.
func (e *ColExecutor) run(ctx context.Context, y, x []float64) error {
	if e.closed {
		return errClosed()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if err := core.CheckVectorDims(e.rows, e.cols, y, x); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	n := len(e.chunks)
	for i := range e.errs {
		e.errs[i] = nil
	}
	var t0 time.Time
	var tctx context.Context
	if e.collector != nil {
		for i := range e.stats {
			e.stats[i].Busy = 0
		}
		var end func()
		tctx, end = traceTask("spmv.col.run")
		defer end()
		t0 = time.Now()
	}
	e.wg.Add(n)
	for i := range e.start {
		e.start[i] <- colJob{x: x, stats: e.stats, ctx: tctx}
	}
	e.wg.Wait()
	if err := errors.Join(e.errs...); err != nil {
		return err
	}
	e.wg.Add(n)
	for i := range e.start {
		lo := i * e.rows / n
		hi := (i + 1) * e.rows / n
		e.start[i] <- colJob{y: y, reduce: [2]int{lo, hi}, stats: e.stats, ctx: tctx}
	}
	e.wg.Wait()
	if e.collector != nil {
		e.collector.RunDone(&obs.RunStat{
			Partition: "col",
			Vectors:   1,
			Wall:      time.Since(t0),
			Chunks:    append([]obs.ChunkStat(nil), e.stats...),
		})
	}
	return errors.Join(e.errs...)
}

// RunBatch computes Y = A*X over row-major n×k panels by running the
// column-partitioned scalar pipeline once per panel column. Column
// partitioning reduces into a shared y, so there is no fused multi-
// vector path; RunBatch exists for Runner parity and correctness, not
// amortization — use the row-partitioned executor for batched work.
func (e *ColExecutor) RunBatch(y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(nil, y, x, k)
}

// RunBatchCtx is RunBatch with a cancellation context, checked before
// each panel column.
func (e *ColExecutor) RunBatchCtx(ctx context.Context, y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(ctx, y, x, k)
}

// runBatch is RunBatch without the lock; ctx may be nil.
func (e *ColExecutor) runBatch(ctx context.Context, y, x []float64, k int) error {
	if e.closed {
		return errClosed()
	}
	if err := core.CheckPanelDims(e.rows, e.cols, y, x, k); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	if k == 1 {
		return e.run(ctx, y[:e.rows], x[:e.cols])
	}
	if e.scratchY == nil {
		e.scratchY = make([]float64, e.rows)
		e.scratchX = make([]float64, e.cols)
	}
	return runBatchColumns(ctx, y, x, k, e.scratchY, e.scratchX,
		func(yc, xc []float64) error { return e.run(ctx, yc, xc) })
}

// RunBatchIters performs iters consecutive batched multiplications.
// It stops at the first failing iteration.
func (e *ColExecutor) RunBatchIters(iters int, y, x []float64, k int) error {
	for n := 0; n < iters; n++ {
		if err := e.RunBatch(y, x, k); err != nil {
			return fmt.Errorf("iteration %d: %w", n, err)
		}
	}
	return nil
}

// RunIters performs iters consecutive SpMV operations. It stops at the
// first failing iteration.
func (e *ColExecutor) RunIters(iters int, y, x []float64) error {
	for k := 0; k < iters; k++ {
		if err := e.Run(y, x); err != nil {
			return fmt.Errorf("iteration %d: %w", k, err)
		}
	}
	return nil
}

// Close stops the workers. Run and RunIters return an error wrapping
// core.ErrUsage afterwards. Close is idempotent and safe to call
// concurrently with itself and with Run/RunBatch.
func (e *ColExecutor) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for i := range e.start {
		close(e.start[i])
	}
}
