package parallel

import (
	"errors"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csc"
	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/obs"
	"spmv/internal/testmat"
)

// Regression tests for the Run-after-Close bug: all three executors
// used to die with "send on closed channel"; they must return a typed
// core.ErrUsage error instead, and stay (harmlessly) reusable.

func TestRunAfterCloseRowExecutor(t *testing.T) {
	c := matgen.Stencil2D(8)
	f, _ := csr.FromCOO(c)
	e, err := NewExecutor(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, c.Rows())
	x := make([]float64, c.Cols())
	e.Close()
	if err := e.Run(y, x); !errors.Is(err, core.ErrUsage) {
		t.Fatalf("Run after Close: err = %v, want ErrUsage", err)
	}
	if err := e.RunIters(3, y, x); !errors.Is(err, core.ErrUsage) {
		t.Fatalf("RunIters after Close: err = %v, want ErrUsage", err)
	}
}

func TestRunAfterCloseColExecutor(t *testing.T) {
	c := matgen.Stencil2D(8)
	f, _ := csc.FromCOO(c)
	e, err := NewColExecutor(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, c.Rows())
	x := make([]float64, c.Cols())
	e.Close()
	if err := e.Run(y, x); !errors.Is(err, core.ErrUsage) {
		t.Fatalf("Run after Close: err = %v, want ErrUsage", err)
	}
	if err := e.RunIters(2, y, x); !errors.Is(err, core.ErrUsage) {
		t.Fatalf("RunIters after Close: err = %v, want ErrUsage", err)
	}
}

func TestRunAfterCloseBlockExecutor(t *testing.T) {
	c := matgen.Stencil2D(8)
	e, err := NewBlockExecutor(c, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, c.Rows())
	x := make([]float64, c.Cols())
	e.Close()
	if err := e.Run(y, x); !errors.Is(err, core.ErrUsage) {
		t.Fatalf("Run after Close: err = %v, want ErrUsage", err)
	}
	if err := e.RunIters(2, y, x); !errors.Is(err, core.ErrUsage) {
		t.Fatalf("RunIters after Close: err = %v, want ErrUsage", err)
	}
}

// checkRunStats validates the invariants every executor's telemetry
// must satisfy: one chunk per worker, chunk nnz summing to the matrix
// nnz, and a positive wall time.
func checkRunStats(t *testing.T, snap obs.Snapshot, wantRuns, wantWorkers, wantNNZ int, partition string) {
	t.Helper()
	if snap.Runs != wantRuns {
		t.Errorf("runs = %d, want %d", snap.Runs, wantRuns)
	}
	if snap.Last.Partition != partition {
		t.Errorf("partition = %q, want %q", snap.Last.Partition, partition)
	}
	if got := len(snap.Last.Chunks); got != wantWorkers {
		t.Errorf("chunks = %d, want %d workers", got, wantWorkers)
	}
	totalNNZ := 0
	for i, c := range snap.Last.Chunks {
		if c.Worker != i {
			t.Errorf("chunk %d has worker index %d", i, c.Worker)
		}
		if c.Hi < c.Lo {
			t.Errorf("chunk %d has inverted range [%d,%d)", i, c.Lo, c.Hi)
		}
		totalNNZ += c.NNZ
	}
	if totalNNZ != wantNNZ {
		t.Errorf("chunk nnz sums to %d, want %d", totalNNZ, wantNNZ)
	}
	if snap.Wall <= 0 {
		t.Errorf("wall = %v, want > 0", snap.Wall)
	}
	if snap.MeanTimeImbalance < 1 || snap.MaxTimeImbalance < snap.MeanTimeImbalance {
		t.Errorf("imbalance mean/max = %v/%v out of order", snap.MeanTimeImbalance, snap.MaxTimeImbalance)
	}
}

func TestExecutorCollectorRow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := matgen.FEMLike(rng, 300, 6, matgen.Values{})
	f, _ := csr.FromCOO(c)
	e, err := NewExecutor(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := obs.NewRecorder()
	e.SetCollector(rec)
	x := testmat.RandVec(rng, c.Cols())
	y := make([]float64, c.Rows())
	if err := e.RunIters(5, y, x); err != nil {
		t.Fatal(err)
	}
	checkRunStats(t, rec.Snapshot(), 5, e.Threads(), c.Len(), "row")
	// Row chunks tile the row space in order.
	chunks := rec.Snapshot().Last.Chunks
	if chunks[0].Lo != 0 || chunks[len(chunks)-1].Hi != c.Rows() {
		t.Errorf("chunks do not cover [0,%d): first %+v last %+v", c.Rows(), chunks[0], chunks[len(chunks)-1])
	}
	// The result must be unaffected by instrumentation.
	testmat.AssertClose(t, "instrumented run", y, reference(c, x), 1e-10)

	// Detaching stops collection.
	e.SetCollector(nil)
	if err := e.Run(y, x); err != nil {
		t.Fatal(err)
	}
	if rec.Runs() != 5 {
		t.Errorf("detached recorder grew to %d runs", rec.Runs())
	}
}

func TestExecutorCollectorCol(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := matgen.FEMLike(rng, 250, 5, matgen.Values{})
	f, _ := csc.FromCOO(c)
	e, err := NewColExecutor(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := obs.NewRecorder()
	e.SetCollector(rec)
	x := testmat.RandVec(rng, c.Cols())
	y := make([]float64, c.Rows())
	if err := e.RunIters(3, y, x); err != nil {
		t.Fatal(err)
	}
	checkRunStats(t, rec.Snapshot(), 3, e.Threads(), c.Len(), "col")
	testmat.AssertClose(t, "instrumented col run", y, reference(c, x), 1e-10)
}

func TestExecutorCollectorBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := matgen.FEMLike(rng, 200, 5, matgen.Values{})
	e, err := NewBlockExecutor(c, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := obs.NewRecorder()
	e.SetCollector(rec)
	x := testmat.RandVec(rng, c.Cols())
	y := make([]float64, c.Rows())
	if err := e.RunIters(2, y, x); err != nil {
		t.Fatal(err)
	}
	checkRunStats(t, rec.Snapshot(), 2, e.Threads(), c.Len(), "block")
	testmat.AssertClose(t, "instrumented block run", y, reference(c, x), 1e-10)
}

// TestCollectorDisabledIsDefault pins the zero-cost default: a fresh
// executor carries no stats buffer, so the hot path's only added work
// is the nil check.
func TestCollectorDisabledIsDefault(t *testing.T) {
	c := matgen.Stencil2D(6)
	f, _ := csr.FromCOO(c)
	e, err := NewExecutor(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.stats != nil || e.collector != nil {
		t.Error("fresh executor has instrumentation enabled")
	}
	y := make([]float64, c.Rows())
	if err := e.Run(y, make([]float64, c.Cols())); err != nil {
		t.Fatal(err)
	}
}
