package parallel

import (
	"context"
	"errors"
	"fmt"
	rtrace "runtime/trace"
	"sync"
	"time"

	"spmv/internal/core"
	"spmv/internal/obs"
)

// SymExecutor parallelizes scatter-kernel formats — built for the
// symmetric CSR of internal/sym, whose kernel applies each stored
// element twice and so writes all over y — with private-vector
// accumulation and a tree reduction:
//
//  1. multiply phase: each worker applies its chunk into a private
//     full-length y (no shared writes, no atomics);
//  2. ceil(log2(P)) reduction rounds: in round s the private vector of
//     worker i+s is added into worker i's (i ≡ 0 mod 2s). Every
//     round's pair-adds are row-sliced across ALL workers, so the
//     reduction itself runs at full parallelism; the final round
//     writes its sums straight into the caller's y.
//
// The tree is fixed by the worker count, so for a given P the
// floating-point summation order is deterministic — runs are bitwise
// reproducible regardless of scheduling, unlike reductions ordered by
// arrival. The flat ColExecutor reduction sweeps all P private vectors
// in one pass (P-1 adds deep); the tree does the same adds in log2(P)
// passes of depth 1, trading barriers for cache-sized streams.
type SymExecutor struct {
	chunks  []core.ColChunk
	rows    int
	cols    int
	private [][]float64

	start []chan symJob
	errs  []error
	wg    sync.WaitGroup

	mu     sync.Mutex // serializes Run/RunBatch/Close; guards closed
	closed bool

	scratchY, scratchX []float64 // RunBatch per-column scratch

	collector  obs.Collector
	stats      []obs.ChunkStat
	traceNames []string
}

type symJob struct {
	x      []float64 // multiply phase when y == nil and stride == 0
	y      []float64 // non-nil ⇒ final reduction round, writing y
	stride int       // reduction round stride; 0 with y ⇒ plain copy
	reduce [2]int    // row range this worker reduces
	stats  []obs.ChunkStat
	ctx    context.Context
}

// NewSymExecutor partitions f into at most nthreads scatter chunks
// (core.ColSplitter; sym-csr implements it with stored-triangle row
// ranges) and starts one worker per chunk.
func NewSymExecutor(f core.Format, nthreads int) (*SymExecutor, error) {
	s, ok := f.(core.ColSplitter)
	if !ok {
		return nil, fmt.Errorf("parallel: format %s does not support scatter partitioning", f.Name())
	}
	if nthreads <= 0 {
		return nil, fmt.Errorf("parallel: invalid thread count %d", nthreads)
	}
	e := &SymExecutor{chunks: s.SplitCols(nthreads), rows: f.Rows(), cols: f.Cols()}
	e.private = make([][]float64, len(e.chunks))
	e.start = make([]chan symJob, len(e.chunks))
	e.errs = make([]error, len(e.chunks))
	for i := range e.chunks {
		e.private[i] = make([]float64, e.rows)
		e.start[i] = make(chan symJob)
		go workerLabeled("sym", i, func() { e.worker(i) })
	}
	return e, nil
}

// SetCollector attaches (or, with nil, detaches) a telemetry sink. A
// worker's busy time covers its multiply phase plus its slices of
// every reduction round.
func (e *SymExecutor) SetCollector(c obs.Collector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.collector = c
	if c == nil {
		e.stats = nil
		e.traceNames = nil
		return
	}
	e.stats = make([]obs.ChunkStat, len(e.chunks))
	for i, ch := range e.chunks {
		lo, hi := ch.ColRange()
		e.stats[i] = obs.ChunkStat{Worker: i, Lo: lo, Hi: hi, NNZ: ch.NNZ()}
	}
	e.traceNames = traceNames("sym", len(e.chunks))
}

func (e *SymExecutor) worker(i int) {
	ch := e.chunks[i]
	mine := e.private[i]
	for j := range e.start[i] {
		if j.stats == nil {
			e.errs[i] = e.runSymJob(ch, mine, j)
		} else {
			t0 := time.Now()
			if j.ctx != nil {
				rtrace.WithRegion(j.ctx, e.traceNames[i], func() {
					e.errs[i] = e.runSymJob(ch, mine, j)
				})
			} else {
				e.errs[i] = e.runSymJob(ch, mine, j)
			}
			j.stats[i].Busy += time.Since(t0)
		}
		e.wg.Done()
	}
}

// runSymJob executes one phase of a tree-reduced run with panic
// containment: the multiply phase scatters into the worker's private
// vector; a reduction round adds this worker's row slice of every
// active pair of private vectors (the final round writes y instead).
func (e *SymExecutor) runSymJob(ch core.ColChunk, mine []float64, j symJob) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = symJobError(ch, j, r)
		}
	}()
	if j.y == nil && j.stride == 0 {
		for k := range mine {
			mine[k] = 0
		}
		ch.SpMVAdd(mine, j.x)
		return nil
	}
	lo, hi := j.reduce[0], j.reduce[1]
	s := j.stride
	if j.y != nil {
		if s == 0 {
			copy(j.y[lo:hi], e.private[0][lo:hi])
			return nil
		}
		dst := e.private[0]
		src := e.private[s]
		for k := lo; k < hi; k++ {
			j.y[k] = dst[k] + src[k]
		}
		return nil
	}
	for i := 0; i+s < len(e.private); i += 2 * s {
		dst := e.private[i]
		src := e.private[i+s]
		for k := lo; k < hi; k++ {
			dst[k] += src[k]
		}
	}
	return nil
}

// symJobError converts a recovered phase panic into an error naming
// the phase; kept out of runSymJob so the hot function stays free of
// formatting calls.
func symJobError(ch core.ColChunk, j symJob, r any) error {
	if j.y == nil && j.stride == 0 {
		lo, hi := ch.ColRange()
		return fmt.Errorf("parallel: sym chunk rows [%d,%d): %w", lo, hi, core.PanicError(r))
	}
	return fmt.Errorf("parallel: sym reduce stride %d rows [%d,%d): %w",
		j.stride, j.reduce[0], j.reduce[1], core.PanicError(r))
}

// Threads returns the number of workers.
func (e *SymExecutor) Threads() int { return len(e.chunks) }

// Run computes y = A*x: one scatter phase into private vectors, then
// ceil(log2(P)) row-sliced tree-reduction rounds, the last of which
// writes y. A failed multiply phase returns before any reduction,
// leaving y untouched. Error and lifecycle semantics match Executor.
func (e *SymExecutor) Run(y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(nil, y, x)
}

// RunCtx is Run with a cancellation context, checked before each
// dispatch phase (see Executor.RunCtx for the preemption contract).
func (e *SymExecutor) RunCtx(ctx context.Context, y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(ctx, y, x)
}

// run is Run without the lock; ctx may be nil.
func (e *SymExecutor) run(ctx context.Context, y, x []float64) error {
	if e.closed {
		return errClosed()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if err := core.CheckVectorDims(e.rows, e.cols, y, x); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	for i := range e.errs {
		e.errs[i] = nil
	}
	var t0 time.Time
	var tctx context.Context
	if e.collector != nil {
		for i := range e.stats {
			e.stats[i].Busy = 0
		}
		var end func()
		tctx, end = traceTask("spmv.sym.run")
		defer end()
		t0 = time.Now()
	}
	e.dispatch(symJob{x: x, stats: e.stats, ctx: tctx})
	if err := errors.Join(e.errs...); err != nil {
		return err
	}
	p := len(e.private)
	s := 1
	for ; 2*s < p; s *= 2 {
		e.dispatch(symJob{stride: s, stats: e.stats, ctx: tctx})
	}
	if p == 1 {
		s = 0 // single private vector: the final "round" is a copy
	}
	e.dispatch(symJob{y: y, stride: s, stats: e.stats, ctx: tctx})
	err := errors.Join(e.errs...)
	if e.collector != nil {
		e.collector.RunDone(&obs.RunStat{
			Partition: "sym",
			Vectors:   1,
			Wall:      time.Since(t0),
			Err:       errString(err),
			Chunks:    append([]obs.ChunkStat(nil), e.stats...),
		})
	}
	return err
}

// dispatch hands one phase to every worker, row-slicing the reduction
// range, and blocks until the phase completes.
func (e *SymExecutor) dispatch(j symJob) {
	n := len(e.start)
	e.wg.Add(n)
	for i := range e.start {
		j.reduce = [2]int{i * e.rows / n, (i + 1) * e.rows / n}
		e.start[i] <- j
	}
	e.wg.Wait()
}

// RunBatch computes Y = A*X over row-major n×k panels by running the
// tree-reduced scalar pipeline once per panel column; the reduction
// needs a pass per vector, so there is no fused multi-vector path.
func (e *SymExecutor) RunBatch(y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(nil, y, x, k)
}

// RunBatchCtx is RunBatch with a cancellation context, checked before
// each panel column.
func (e *SymExecutor) RunBatchCtx(ctx context.Context, y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(ctx, y, x, k)
}

// runBatch is RunBatch without the lock; ctx may be nil.
func (e *SymExecutor) runBatch(ctx context.Context, y, x []float64, k int) error {
	if e.closed {
		return errClosed()
	}
	if err := core.CheckPanelDims(e.rows, e.cols, y, x, k); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	if k == 1 {
		return e.run(ctx, y[:e.rows], x[:e.cols])
	}
	if e.scratchY == nil {
		e.scratchY = make([]float64, e.rows)
		e.scratchX = make([]float64, e.cols)
	}
	return runBatchColumns(ctx, y, x, k, e.scratchY, e.scratchX,
		func(yc, xc []float64) error { return e.run(ctx, yc, xc) })
}

// RunBatchIters performs iters consecutive batched multiplications.
// It stops at the first failing iteration.
func (e *SymExecutor) RunBatchIters(iters int, y, x []float64, k int) error {
	for n := 0; n < iters; n++ {
		if err := e.RunBatch(y, x, k); err != nil {
			return fmt.Errorf("iteration %d: %w", n, err)
		}
	}
	return nil
}

// RunIters performs iters consecutive SpMV operations. It stops at the
// first failing iteration.
func (e *SymExecutor) RunIters(iters int, y, x []float64) error {
	for k := 0; k < iters; k++ {
		if err := e.Run(y, x); err != nil {
			return fmt.Errorf("iteration %d: %w", k, err)
		}
	}
	return nil
}

// Close stops the workers (idempotent; see Executor.Close).
func (e *SymExecutor) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for i := range e.start {
		close(e.start[i])
	}
}
