package parallel

import (
	"errors"
	"strings"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csc"
	"spmv/internal/dcsr"
	"spmv/internal/matgen"
)

// corruptDCSR builds a dcsr matrix whose command stream is corrupted
// AFTER construction (so it bypasses FromCOO's validation), the way a
// shared-memory or mmap'd stream would rot underneath a live executor.
func corruptDCSR(t *testing.T) *dcsr.Matrix {
	t.Helper()
	m, err := dcsr.FromCOO(matgen.Stencil2D(8))
	if err != nil {
		t.Fatal(err)
	}
	m.Cmds[len(m.Cmds)/2] = 200 // invalid opcode mid-stream
	return m
}

func TestRunRecoversKernelPanic(t *testing.T) {
	m := corruptDCSR(t)
	e, err := NewExecutor(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	y := make([]float64, m.Rows())
	x := make([]float64, m.Cols())
	runErr := e.Run(y, x)
	if runErr == nil {
		t.Fatal("Run on corrupt stream returned nil")
	}
	if !errors.Is(runErr, core.ErrCorrupt) {
		t.Fatalf("error %v does not wrap core.ErrCorrupt", runErr)
	}
	if !strings.Contains(runErr.Error(), "chunk rows [") {
		t.Fatalf("error %v does not name the chunk row range", runErr)
	}
	// The executor survives the failure: it can run again (and fail
	// again) without deadlocking on its worker pool.
	if err := e.Run(y, x); err == nil {
		t.Fatal("second Run on corrupt stream returned nil")
	}
	// And Verify would have caught the corruption up front.
	if err := m.Verify(); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("Verify: got %v, want ErrCorrupt", err)
	}
}

func TestRunItersStopsOnError(t *testing.T) {
	m := corruptDCSR(t)
	e, err := NewExecutor(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	y := make([]float64, m.Rows())
	x := make([]float64, m.Cols())
	if err := e.RunIters(10, y, x); err == nil {
		t.Fatal("RunIters on corrupt stream returned nil")
	} else if !strings.Contains(err.Error(), "iteration 0") {
		t.Fatalf("error %v does not name the failing iteration", err)
	}
}

func TestRunRejectsShortVectors(t *testing.T) {
	m, err := dcsr.FromCOO(matgen.Stencil2D(6))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	y := make([]float64, m.Rows())
	x := make([]float64, m.Cols())
	if err := e.Run(y[:len(y)-1], x); !errors.Is(err, core.ErrShape) {
		t.Fatalf("short y: got %v, want ErrShape", err)
	}
	if err := e.Run(y, x[:len(x)-1]); !errors.Is(err, core.ErrShape) {
		t.Fatalf("short x: got %v, want ErrShape", err)
	}
	if err := e.Run(y, x); err != nil {
		t.Fatalf("full-length vectors rejected: %v", err)
	}
}

func TestColExecutorRejectsShortVectors(t *testing.T) {
	c := matgen.Stencil2D(6)
	m, err := csc.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewColExecutor(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	y := make([]float64, m.Rows())
	x := make([]float64, m.Cols())
	if err := e.Run(y[:len(y)-1], x); !errors.Is(err, core.ErrShape) {
		t.Fatalf("short y: got %v, want ErrShape", err)
	}
	if err := e.Run(y, x); err != nil {
		t.Fatalf("full-length vectors rejected: %v", err)
	}
}

func TestBlockExecutorRejectsShortVectors(t *testing.T) {
	c := matgen.Stencil2D(6)
	e, err := NewBlockExecutor(c, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	y := make([]float64, c.Rows())
	x := make([]float64, c.Cols())
	if err := e.Run(y[:len(y)-1], x); !errors.Is(err, core.ErrShape) {
		t.Fatalf("short y: got %v, want ErrShape", err)
	}
	if err := e.Run(y, x); err != nil {
		t.Fatalf("full-length vectors rejected: %v", err)
	}
}
