package parallel

import (
	"context"
	"errors"
	"fmt"
	rtrace "runtime/trace"
	"sync"
	"time"

	"spmv/internal/core"
	"spmv/internal/obs"
)

// NNZExecutor runs non-zero-partitioned multithreaded SpMV: chunk
// boundaries are placed every nnz/parts stored elements, mid-row where
// necessary, so static load imbalance stays within one element per
// worker even when a single row holds most of the matrix — the
// row-length-skew pathology that row-granular partitioning cannot fix
// (a row is atomic to core.Splitter, so its owner inherits its whole
// weight).
//
// Rows wholly inside one chunk are written to y directly, as with row
// partitioning. The at-most-two boundary rows a chunk shares with its
// neighbours are privatized: each worker stores its piece of a shared
// row into its own partial slots (no atomics, no false sharing on y),
// and Run finishes with an O(parts) serial fix-up pass summing the
// pieces into y. Lifecycle, locking, panic containment and telemetry
// follow Executor.
type NNZExecutor struct {
	chunks []core.NNZChunk
	rows   int
	cols   int
	gaps   [][2]int  // rows covered by no chunk (zeroed per run)
	parts  []float64 // 2 partial slots per chunk, indexed 2*worker
	fixups []fixup   // one per split row, in row order

	start []chan job
	errs  []error
	wg    sync.WaitGroup

	mu     sync.Mutex // serializes Run/RunBatch/Close; guards closed
	closed bool

	scratchY, scratchX []float64 // RunBatch per-column scratch

	collector  obs.Collector
	stats      []obs.ChunkStat
	traceNames []string
}

// fixup is the reduction recipe for one split row: y[row] is the sum
// of the listed slots of the executor's partial buffer.
type fixup struct {
	row   int
	slots []int
}

// NewNNZExecutor partitions f into at most nthreads nnz-balanced
// chunks with mid-row boundaries and starts one worker per chunk. It
// returns an error if the format does not support non-zero splitting
// (core.NNZSplitter; CSR implements it).
func NewNNZExecutor(f core.Format, nthreads int) (*NNZExecutor, error) {
	s, ok := f.(core.NNZSplitter)
	if !ok {
		return nil, fmt.Errorf("parallel: format %s does not support nnz partitioning", f.Name())
	}
	if nthreads <= 0 {
		return nil, fmt.Errorf("parallel: invalid thread count %d", nthreads)
	}
	e := &NNZExecutor{chunks: s.SplitNNZ(nthreads), rows: f.Rows(), cols: f.Cols()}
	e.parts = make([]float64, 2*len(e.chunks))

	// Collect the split rows and their contributing partial slots. A
	// chunk strictly inside one row reports head == tail and uses only
	// its head slot; otherwise head and tail are distinct rows.
	slotsByRow := map[int][]int{}
	for i, ch := range e.chunks {
		head, tail := ch.Boundary()
		if head >= 0 {
			slotsByRow[head] = append(slotsByRow[head], 2*i)
		}
		if tail >= 0 && tail != head {
			slotsByRow[tail] = append(slotsByRow[tail], 2*i+1)
		}
	}

	// Rows covered by no chunk hold no non-zeros; Run zeroes them.
	// Neighbouring chunks may share a boundary row, so ranges overlap.
	next := 0
	for _, ch := range e.chunks {
		lo, hi := ch.RowRange()
		if lo > next {
			e.gaps = append(e.gaps, [2]int{next, lo})
		}
		if hi > next {
			next = hi
		}
	}
	if next < e.rows {
		e.gaps = append(e.gaps, [2]int{next, e.rows})
	}

	// Deterministic fix-up order: ascending row, slots in chunk order
	// (map iteration order must not leak into float summation order).
	for i, ch := range e.chunks {
		head, tail := ch.Boundary()
		for _, r := range [2]int{head, tail} {
			if slots, ok := slotsByRow[r]; ok && slots[0]/2 == i {
				e.fixups = append(e.fixups, fixup{row: r, slots: slots})
			}
		}
	}

	e.start = make([]chan job, len(e.chunks))
	e.errs = make([]error, len(e.chunks))
	for i := range e.chunks {
		e.start[i] = make(chan job)
		go workerLabeled("nnz", i, func() { e.worker(i) })
	}
	return e, nil
}

// SetCollector attaches (or, with nil, detaches) a telemetry sink.
// Lo/Hi report the chunk's touched row range; boundary rows shared
// with a neighbour appear in both chunks' spans.
func (e *NNZExecutor) SetCollector(c obs.Collector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.collector = c
	if c == nil {
		e.stats = nil
		e.traceNames = nil
		return
	}
	e.stats = make([]obs.ChunkStat, len(e.chunks))
	for i, ch := range e.chunks {
		lo, hi := ch.RowRange()
		e.stats[i] = obs.ChunkStat{Worker: i, Lo: lo, Hi: hi, NNZ: ch.NNZ()}
	}
	e.traceNames = traceNames("nnz", len(e.chunks))
}

func (e *NNZExecutor) worker(i int) {
	ch := e.chunks[i]
	partial := e.parts[2*i : 2*i+2]
	for j := range e.start[i] {
		if j.stats == nil {
			e.errs[i] = runNNZChunk(ch, partial, j)
		} else {
			t0 := time.Now()
			if j.ctx != nil {
				rtrace.WithRegion(j.ctx, e.traceNames[i], func() {
					e.errs[i] = runNNZChunk(ch, partial, j)
				})
			} else {
				e.errs[i] = runNNZChunk(ch, partial, j)
			}
			j.stats[i].Busy += time.Since(t0)
		}
		e.wg.Done()
	}
}

// runNNZChunk executes one chunk's partial kernel with panic
// containment (see runChunk).
func runNNZChunk(ch core.NNZChunk, partial []float64, j job) (err error) {
	lo, hi := ch.RowRange()
	defer func() {
		if r := recover(); r != nil {
			err = chunkError(lo, hi, r)
		}
	}()
	ch.SpMVPartial(j.y, j.x, partial)
	return nil
}

// Threads returns the number of workers.
func (e *NNZExecutor) Threads() int { return len(e.chunks) }

// Run computes y = A*x. Error semantics match Executor.Run.
func (e *NNZExecutor) Run(y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(nil, y, x)
}

// RunCtx is Run with a cancellation context (see Executor.RunCtx for
// the preemption contract).
func (e *NNZExecutor) RunCtx(ctx context.Context, y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(ctx, y, x)
}

// run is Run without the lock; ctx may be nil.
func (e *NNZExecutor) run(ctx context.Context, y, x []float64) error {
	if e.closed {
		return errClosed()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if err := core.CheckVectorDims(e.rows, e.cols, y, x); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	for _, g := range e.gaps {
		for i := g[0]; i < g[1]; i++ {
			y[i] = 0
		}
	}
	for i := range e.errs {
		e.errs[i] = nil
	}
	var t0 time.Time
	var tctx context.Context
	if e.collector != nil {
		for i := range e.stats {
			e.stats[i].Busy = 0
		}
		var end func()
		tctx, end = traceTask("spmv.nnz.run")
		defer end()
		t0 = time.Now()
	}
	e.dispatch(job{y: y, x: x, stats: e.stats, ctx: tctx})
	// Fix-up pass: every split row is the sum of its privatized pieces.
	// No chunk writes y for split rows, so this is a plain overwrite;
	// slots are summed left to right in chunk order, keeping results
	// deterministic for a fixed chunk count.
	for i := range e.fixups {
		f := &e.fixups[i]
		sum := 0.0
		for _, s := range f.slots {
			sum += e.parts[s]
		}
		y[f.row] = sum
	}
	err := errors.Join(e.errs...)
	if e.collector != nil {
		e.collector.RunDone(&obs.RunStat{
			Partition: "nnz",
			Vectors:   1,
			Wall:      time.Since(t0),
			Err:       errString(err),
			Chunks:    append([]obs.ChunkStat(nil), e.stats...),
		})
	}
	return err
}

// dispatch hands one job to every worker and blocks until all finish.
func (e *NNZExecutor) dispatch(j job) {
	e.wg.Add(len(e.chunks))
	for i := range e.start {
		e.start[i] <- j
	}
	e.wg.Wait()
}

// RunBatch computes Y = A*X over row-major n×k panels by running the
// nnz-partitioned scalar pipeline once per panel column: the partial
// fix-up needs a reduction per vector, so there is no fused
// multi-vector path — use the row-partitioned executor for batched
// work on balanced matrices.
func (e *NNZExecutor) RunBatch(y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(nil, y, x, k)
}

// RunBatchCtx is RunBatch with a cancellation context, checked before
// each panel column.
func (e *NNZExecutor) RunBatchCtx(ctx context.Context, y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(ctx, y, x, k)
}

// runBatch is RunBatch without the lock; ctx may be nil.
func (e *NNZExecutor) runBatch(ctx context.Context, y, x []float64, k int) error {
	if e.closed {
		return errClosed()
	}
	if err := core.CheckPanelDims(e.rows, e.cols, y, x, k); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	if k == 1 {
		return e.run(ctx, y[:e.rows], x[:e.cols])
	}
	if e.scratchY == nil {
		e.scratchY = make([]float64, e.rows)
		e.scratchX = make([]float64, e.cols)
	}
	return runBatchColumns(ctx, y, x, k, e.scratchY, e.scratchX,
		func(yc, xc []float64) error { return e.run(ctx, yc, xc) })
}

// RunBatchIters performs iters consecutive batched multiplications.
// It stops at the first failing iteration.
func (e *NNZExecutor) RunBatchIters(iters int, y, x []float64, k int) error {
	for n := 0; n < iters; n++ {
		if err := e.RunBatch(y, x, k); err != nil {
			return fmt.Errorf("iteration %d: %w", n, err)
		}
	}
	return nil
}

// RunIters performs iters consecutive SpMV operations. It stops at the
// first failing iteration.
func (e *NNZExecutor) RunIters(iters int, y, x []float64) error {
	for k := 0; k < iters; k++ {
		if err := e.Run(y, x); err != nil {
			return fmt.Errorf("iteration %d: %w", k, err)
		}
	}
	return nil
}

// Close stops the workers (idempotent; see Executor.Close).
func (e *NNZExecutor) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for i := range e.start {
		close(e.start[i])
	}
}
