package parallel

import (
	"context"
	"errors"
	"fmt"
	rtrace "runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"spmv/internal/core"
	"spmv/internal/obs"
	"spmv/internal/partition"
)

// stealFactor is the over-decomposition ratio of the work-stealing
// executor: the matrix is split into stealFactor×threads row chunks so
// that a worker slowed by a cache-hostile or long chunk sheds its
// remaining queue to idle neighbours at chunk granularity.
const stealFactor = 4

// StealExecutor is the row-partitioned executor with dynamic load
// balancing: chunks are dealt to per-worker queues up front (contiguous
// blocks, preserving the static schedule's locality when load is even),
// each worker drains its own queue through an atomic cursor, and a
// worker that runs dry claims chunks from its neighbours' queues by
// CAS-advancing their cursors. Chunks write disjoint y row ranges, so a
// stolen chunk needs no extra synchronization — the cursor is the only
// shared state.
//
// Steal counts are reported per worker through obs.ChunkStat.Steals
// and summed in obs.RunStat.Steals. On a balanced matrix the queues
// drain without stealing and the only cost over Executor is one atomic
// increment per chunk; on skewed or noisy-neighbour runs the tail
// chunks migrate to idle workers instead of stretching the barrier.
type StealExecutor struct {
	chunks []core.Chunk
	rows   int
	cols   int
	gaps   [][2]int // row ranges covered by no chunk (zeroed per run)
	batch  bool     // every chunk implements core.BatchChunk

	queues  [][]int       // static chunk-index blocks, one per worker
	cursors []stealCursor // per-queue claim cursor, reset each run

	start []chan job
	errs  []error // per-chunk error slot for the current run
	wg    sync.WaitGroup

	mu     sync.Mutex // serializes Run/RunBatch/Close; guards closed
	closed bool

	scratchY, scratchX []float64 // RunBatch per-column scratch

	collector  obs.Collector
	stats      []obs.ChunkStat // one per worker; NNZ/Steals are per-run
	traceNames []string
}

// stealCursor is a queue cursor padded to a cache line: cursors are
// the executor's only contended words, and packing them would put every
// CAS on every worker's line.
type stealCursor struct {
	n atomic.Int64
	_ [56]byte
}

// NewStealExecutor builds a work-stealing row executor with nthreads
// workers over stealFactor×nthreads chunks. Formats must support row
// partitioning, as for NewExecutor.
func NewStealExecutor(f core.Format, nthreads int) (*StealExecutor, error) {
	s, ok := f.(core.Splitter)
	if !ok {
		return nil, fmt.Errorf("parallel: format %s does not support row partitioning", f.Name())
	}
	if nthreads <= 0 {
		return nil, fmt.Errorf("parallel: invalid thread count %d", nthreads)
	}
	e := &StealExecutor{chunks: s.Split(stealFactor * nthreads), rows: f.Rows(), cols: f.Cols()}
	next := 0
	for _, ch := range e.chunks {
		lo, hi := ch.RowRange()
		if lo > next {
			e.gaps = append(e.gaps, [2]int{next, lo})
		}
		next = hi
	}
	if next < e.rows {
		e.gaps = append(e.gaps, [2]int{next, e.rows})
	}
	e.batch = true
	for _, ch := range e.chunks {
		if _, ok := ch.(core.BatchChunk); !ok {
			e.batch = false
			break
		}
	}

	nworkers := nthreads
	if nworkers > len(e.chunks) {
		nworkers = len(e.chunks)
	}
	if nworkers < 1 {
		nworkers = 1
	}
	qb := partition.Even(len(e.chunks), nworkers)
	e.queues = make([][]int, nworkers)
	for w := 0; w < nworkers; w++ {
		q := make([]int, 0, qb[w+1]-qb[w])
		for ci := qb[w]; ci < qb[w+1]; ci++ {
			q = append(q, ci)
		}
		e.queues[w] = q
	}
	e.cursors = make([]stealCursor, nworkers)
	e.errs = make([]error, len(e.chunks))
	e.start = make([]chan job, nworkers)
	for w := 0; w < nworkers; w++ {
		e.start[w] = make(chan job)
		go workerLabeled("steal", w, func() { e.worker(w) })
	}
	return e, nil
}

// SetCollector attaches (or, with nil, detaches) a telemetry sink.
// Chunk stats are per worker; Lo/Hi are zero because a stealing
// worker's rows are not contiguous — NNZ and Steals are filled per run
// with what the worker actually executed.
func (e *StealExecutor) SetCollector(c obs.Collector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.collector = c
	if c == nil {
		e.stats = nil
		e.traceNames = nil
		return
	}
	e.stats = make([]obs.ChunkStat, len(e.queues))
	for w := range e.stats {
		e.stats[w] = obs.ChunkStat{Worker: w}
	}
	e.traceNames = traceNames("steal", len(e.queues))
}

func (e *StealExecutor) worker(w int) {
	for j := range e.start[w] {
		if j.stats == nil {
			e.drain(w, j)
		} else {
			t0 := time.Now()
			if j.ctx != nil {
				rtrace.WithRegion(j.ctx, e.traceNames[w], func() { e.drain(w, j) })
			} else {
				e.drain(w, j)
			}
			j.stats[w].Busy += time.Since(t0)
		}
		e.wg.Done()
	}
}

// drain executes worker w's share of one run: first its own queue, then
// whatever remains in the other workers' queues. Each chunk index is
// claimed by exactly one atomic ticket (the owner's fetch-add or a
// thief's CAS), so every chunk runs exactly once and the per-chunk
// error slots are written race-free.
func (e *StealExecutor) drain(w int, j job) {
	own := e.queues[w]
	for {
		idx := e.cursors[w].n.Add(1) - 1
		if idx >= int64(len(own)) {
			break
		}
		ci := own[idx]
		e.errs[ci] = runChunk(e.chunks[ci], j)
		if j.stats != nil {
			j.stats[w].NNZ += e.chunks[ci].NNZ()
		}
	}
	for d := 1; d < len(e.queues); d++ {
		v := w + d
		if v >= len(e.queues) {
			v -= len(e.queues)
		}
		q := e.queues[v]
		for {
			cur := e.cursors[v].n.Load()
			if cur >= int64(len(q)) {
				break
			}
			if !e.cursors[v].n.CompareAndSwap(cur, cur+1) {
				continue
			}
			ci := q[cur]
			e.errs[ci] = runChunk(e.chunks[ci], j)
			if j.stats != nil {
				j.stats[w].NNZ += e.chunks[ci].NNZ()
				j.stats[w].Steals++
			}
		}
	}
}

// Threads returns the number of workers.
func (e *StealExecutor) Threads() int { return len(e.queues) }

// Run computes y = A*x. Error semantics match Executor.Run.
func (e *StealExecutor) Run(y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(nil, y, x)
}

// RunCtx is Run with a cancellation context (see Executor.RunCtx).
func (e *StealExecutor) RunCtx(ctx context.Context, y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(ctx, y, x)
}

// run is Run without the lock; ctx may be nil.
func (e *StealExecutor) run(ctx context.Context, y, x []float64) error {
	if e.closed {
		return errClosed()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if err := core.CheckVectorDims(e.rows, e.cols, y, x); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	for _, g := range e.gaps {
		for i := g[0]; i < g[1]; i++ {
			y[i] = 0
		}
	}
	var t0 time.Time
	var tctx context.Context
	if e.collector != nil {
		for w := range e.stats {
			e.stats[w].Busy, e.stats[w].NNZ, e.stats[w].Steals = 0, 0, 0
		}
		var end func()
		tctx, end = traceTask("spmv.steal.run")
		defer end()
		t0 = time.Now()
	}
	e.dispatch(job{y: y, x: x, stats: e.stats, ctx: tctx})
	err := errors.Join(e.errs...)
	if e.collector != nil {
		steals := 0
		for w := range e.stats {
			steals += e.stats[w].Steals
		}
		e.collector.RunDone(&obs.RunStat{
			Partition: "steal",
			Vectors:   1,
			Wall:      time.Since(t0),
			Steals:    steals,
			Err:       errString(err),
			Chunks:    append([]obs.ChunkStat(nil), e.stats...),
		})
	}
	return err
}

// dispatch resets the claim cursors and per-chunk error slots, hands
// the job to every worker, and blocks until the queues are drained.
// Workers are quiescent between runs (wg.Wait below, callers hold the
// run lock), so the resets need no synchronization beyond the channel
// sends that publish them.
func (e *StealExecutor) dispatch(j job) {
	for w := range e.cursors {
		e.cursors[w].n.Store(0)
	}
	for i := range e.errs {
		e.errs[i] = nil
	}
	e.wg.Add(len(e.start))
	for w := range e.start {
		e.start[w] <- j
	}
	e.wg.Wait()
}

// RunBatch computes Y = A*X over row-major n×k panels; chunks with a
// fused batch kernel traverse the matrix once for all k vectors, other
// formats fall back to per-column scalar runs (see Executor.RunBatch).
func (e *StealExecutor) RunBatch(y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(nil, y, x, k)
}

// RunBatchCtx is RunBatch with a cancellation context.
func (e *StealExecutor) RunBatchCtx(ctx context.Context, y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(ctx, y, x, k)
}

// runBatch is RunBatch without the lock; ctx may be nil.
func (e *StealExecutor) runBatch(ctx context.Context, y, x []float64, k int) error {
	if e.closed {
		return errClosed()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if err := core.CheckPanelDims(e.rows, e.cols, y, x, k); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	if k == 1 {
		return e.run(ctx, y[:e.rows], x[:e.cols])
	}
	if !e.batch {
		if e.scratchY == nil {
			e.scratchY = make([]float64, e.rows)
			e.scratchX = make([]float64, e.cols)
		}
		return runBatchColumns(ctx, y, x, k, e.scratchY, e.scratchX,
			func(yc, xc []float64) error { return e.run(ctx, yc, xc) })
	}
	for _, g := range e.gaps {
		yr := y[g[0]*k : g[1]*k]
		for i := range yr {
			yr[i] = 0
		}
	}
	var t0 time.Time
	var tctx context.Context
	if e.collector != nil {
		for w := range e.stats {
			e.stats[w].Busy, e.stats[w].NNZ, e.stats[w].Steals = 0, 0, 0
		}
		var end func()
		tctx, end = traceTask("spmv.steal.batch")
		defer end()
		t0 = time.Now()
	}
	e.dispatch(job{y: y, x: x, k: k, stats: e.stats, ctx: tctx})
	err := errors.Join(e.errs...)
	if e.collector != nil {
		steals := 0
		for w := range e.stats {
			steals += e.stats[w].Steals
		}
		e.collector.RunDone(&obs.RunStat{
			Partition: "steal",
			Vectors:   k,
			Wall:      time.Since(t0),
			Steals:    steals,
			Err:       errString(err),
			Chunks:    append([]obs.ChunkStat(nil), e.stats...),
		})
	}
	return err
}

// RunBatchIters performs iters consecutive batched multiplications.
// It stops at the first failing iteration.
func (e *StealExecutor) RunBatchIters(iters int, y, x []float64, k int) error {
	for n := 0; n < iters; n++ {
		if err := e.RunBatch(y, x, k); err != nil {
			return fmt.Errorf("iteration %d: %w", n, err)
		}
	}
	return nil
}

// RunIters performs iters consecutive SpMV operations. It stops at the
// first failing iteration.
func (e *StealExecutor) RunIters(iters int, y, x []float64) error {
	for k := 0; k < iters; k++ {
		if err := e.Run(y, x); err != nil {
			return fmt.Errorf("iteration %d: %w", k, err)
		}
	}
	return nil
}

// Close stops the workers (idempotent; see Executor.Close).
func (e *StealExecutor) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for w := range e.start {
		close(e.start[w])
	}
}
