package parallel

import (
	"bytes"
	"math/rand"
	rtrace "runtime/trace"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csc"
	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/obs"
)

func traceMatrix(t *testing.T) (*core.COO, core.Format) {
	t.Helper()
	c := matgen.Banded(rand.New(rand.NewSource(5)), 400, 10, 4, matgen.Values{})
	f, err := csr.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, f
}

// collectTrace runs fn between trace.Start and trace.Stop and returns
// the raw trace bytes. Region and task names appear verbatim in the
// trace's string table, so containment checks need no parser.
func collectTrace(t *testing.T, fn func()) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rtrace.Start(&buf); err != nil {
		t.Fatalf("trace.Start: %v", err)
	}
	fn()
	rtrace.Stop()
	return buf.Bytes()
}

// TestTraceRegionsRowExecutor: with a collector attached and tracing
// active, each Run emits a task and per-chunk regions.
func TestTraceRegionsRowExecutor(t *testing.T) {
	_, f := traceMatrix(t)
	e, err := NewExecutor(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetCollector(obs.NewRecorder())
	y := make([]float64, f.Rows())
	x := make([]float64, f.Cols())
	data := collectTrace(t, func() {
		if err := e.RunIters(3, y, x); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"spmv.row.run", "spmv.row.chunk0", "spmv.row.chunk1"} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("trace does not contain %q", want)
		}
	}
}

// TestTraceQuietWithoutCollector: the disabled path emits no spmv
// tasks or regions even while tracing is active — the hook hangs off
// the collector nil check, not the trace state.
func TestTraceQuietWithoutCollector(t *testing.T) {
	_, f := traceMatrix(t)
	e, err := NewExecutor(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	y := make([]float64, f.Rows())
	x := make([]float64, f.Cols())
	data := collectTrace(t, func() {
		if err := e.RunIters(3, y, x); err != nil {
			t.Error(err)
		}
	})
	if bytes.Contains(data, []byte("spmv.row")) {
		t.Error("trace contains spmv.row events with no collector attached")
	}
}

// TestTraceRegionsColAndBlock: the reducing executors emit their own
// partition-named tasks and regions.
func TestTraceRegionsColAndBlock(t *testing.T) {
	c, f := traceMatrix(t)
	y := make([]float64, f.Rows())
	x := make([]float64, f.Cols())

	cs, err := csc.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := NewColExecutor(cs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()
	ce.SetCollector(obs.NewRecorder())

	be, err := NewBlockExecutor(c, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	be.SetCollector(obs.NewRecorder())

	data := collectTrace(t, func() {
		if err := ce.Run(y, x); err != nil {
			t.Error(err)
		}
		if err := be.Run(y, x); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"spmv.col.run", "spmv.col.chunk0", "spmv.block.run", "spmv.block.chunk0"} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("trace does not contain %q", want)
		}
	}
}

// TestTraceInactiveStillCollects: without an active trace the
// collector path still works and passes no context to workers.
func TestTraceInactiveStillCollects(t *testing.T) {
	_, f := traceMatrix(t)
	e, err := NewExecutor(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := obs.NewRecorder()
	e.SetCollector(rec)
	y := make([]float64, f.Rows())
	x := make([]float64, f.Cols())
	if err := e.RunIters(2, y, x); err != nil {
		t.Fatal(err)
	}
	if rec.Runs() != 2 {
		t.Errorf("recorder saw %d runs, want 2", rec.Runs())
	}
}
