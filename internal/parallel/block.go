package parallel

import (
	"fmt"
	"sync"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/partition"
)

// BlockExecutor runs block-partitioned multithreaded SpMV (§II-C):
// the matrix is cut into a gridR×gridC grid of two-dimensional blocks,
// one worker per block. Workers in the same block row write the same y
// rows, so each keeps a private partial vector for its row range and a
// per-block-row reduction combines them. Block partitioning bounds both
// the x range (like column partitioning) and the y range (like row
// partitioning) each worker touches — the property the paper notes
// matters for processors with small local stores.
type BlockExecutor struct {
	gridR, gridC int
	rowB, colB   []int         // grid boundaries
	blocks       []*csr.Matrix // gridR*gridC, row-major
	partial      [][]float64   // one per block

	start []chan blockJob
	wg    sync.WaitGroup
	once  sync.Once
}

type blockJob struct {
	x []float64
	y []float64 // nil for multiply phase
}

// NewBlockExecutor cuts the matrix into a gridR×gridC block grid with
// nnz-balanced row and column boundaries and builds a CSR submatrix
// per block.
func NewBlockExecutor(c *core.COO, gridR, gridC int) (*BlockExecutor, error) {
	if gridR <= 0 || gridC <= 0 {
		return nil, fmt.Errorf("parallel: invalid block grid %dx%d", gridR, gridC)
	}
	c.Finalize()
	full, err := csr.FromCOO(c)
	if err != nil {
		return nil, err
	}
	e := &BlockExecutor{gridR: gridR, gridC: gridC}
	e.rowB = partition.SplitRowsByNNZ(full.RowPtr, gridR)
	colCounts := make([]int, c.Cols())
	for k := 0; k < c.Len(); k++ {
		_, j, _ := c.At(k)
		colCounts[j]++
	}
	e.colB = partition.SplitByCounts(colCounts, gridC)

	e.blocks = make([]*csr.Matrix, gridR*gridC)
	e.partial = make([][]float64, gridR*gridC)
	for ri := 0; ri < gridR; ri++ {
		for ci := 0; ci < gridC; ci++ {
			sub := c.Slice(e.rowB[ri], e.rowB[ri+1], e.colB[ci], e.colB[ci+1])
			b, err := csr.FromCOO(sub)
			if err != nil {
				return nil, err
			}
			idx := ri*gridC + ci
			e.blocks[idx] = b
			e.partial[idx] = make([]float64, maxInt(e.rowB[ri+1]-e.rowB[ri], 1))
		}
	}
	e.start = make([]chan blockJob, len(e.blocks))
	for i := range e.blocks {
		e.start[i] = make(chan blockJob)
		go e.worker(i)
	}
	return e, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (e *BlockExecutor) worker(idx int) {
	ri := idx / e.gridC
	ci := idx % e.gridC
	b := e.blocks[idx]
	mine := e.partial[idx]
	for j := range e.start[idx] {
		if j.y == nil {
			// Multiply phase: private partial over the block's columns.
			// Zero first: an empty block skips the kernel and must not
			// contribute stale values from the previous run.
			for k := range mine {
				mine[k] = 0
			}
			if e.rowB[ri+1] > e.rowB[ri] && e.colB[ci+1] > e.colB[ci] {
				b.SpMV(mine, j.x[e.colB[ci]:e.colB[ci+1]])
			}
		} else if ci == 0 {
			// Reduction phase: worker (ri, 0) sums its block row.
			lo, hi := e.rowB[ri], e.rowB[ri+1]
			for k := lo; k < hi; k++ {
				sum := 0.0
				for cj := 0; cj < e.gridC; cj++ {
					sum += e.partial[ri*e.gridC+cj][k-lo]
				}
				j.y[k] = sum
			}
		}
		e.wg.Done()
	}
}

// Threads returns the worker count (gridR*gridC).
func (e *BlockExecutor) Threads() int { return len(e.blocks) }

// Run computes y = A*x.
func (e *BlockExecutor) Run(y, x []float64) {
	n := len(e.blocks)
	e.wg.Add(n)
	for i := range e.start {
		e.start[i] <- blockJob{x: x}
	}
	e.wg.Wait()
	e.wg.Add(n)
	for i := range e.start {
		e.start[i] <- blockJob{x: x, y: y}
	}
	e.wg.Wait()
	// Rows beyond the last grid boundary cannot exist (boundaries cover
	// all rows), but zero-row grids leave y untouched; guard for safety.
}

// RunIters performs iters consecutive SpMV operations.
func (e *BlockExecutor) RunIters(iters int, y, x []float64) {
	for k := 0; k < iters; k++ {
		e.Run(y, x)
	}
}

// Close stops the workers.
func (e *BlockExecutor) Close() {
	e.once.Do(func() {
		for i := range e.start {
			close(e.start[i])
		}
	})
}
