package parallel

import (
	"context"
	"errors"
	"fmt"
	rtrace "runtime/trace"
	"sync"
	"time"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/obs"
	"spmv/internal/partition"
)

// BlockExecutor runs block-partitioned multithreaded SpMV (§II-C):
// the matrix is cut into a gridR×gridC grid of two-dimensional blocks,
// one worker per block. Workers in the same block row write the same y
// rows, so each keeps a private partial vector for its row range and a
// per-block-row reduction combines them. Block partitioning bounds both
// the x range (like column partitioning) and the y range (like row
// partitioning) each worker touches — the property the paper notes
// matters for processors with small local stores.
type BlockExecutor struct {
	gridR, gridC int
	rowB, colB   []int         // grid boundaries
	blocks       []*csr.Matrix // gridR*gridC, row-major
	partial      [][]float64   // one per block

	start []chan blockJob
	errs  []error
	wg    sync.WaitGroup

	mu     sync.Mutex // serializes Run/RunBatch/Close; guards closed
	closed bool

	scratchY, scratchX []float64 // RunBatch per-column scratch

	collector  obs.Collector
	stats      []obs.ChunkStat // reused telemetry buffer; nil ⇒ collection off
	traceNames []string        // per-worker runtime/trace region names
}

type blockJob struct {
	x     []float64
	y     []float64       // nil for multiply phase
	stats []obs.ChunkStat // nil ⇒ workers skip timing entirely
	ctx   context.Context // non-nil ⇒ wrap the phase in a trace region
}

// NewBlockExecutor cuts the matrix into a gridR×gridC block grid with
// nnz-balanced row and column boundaries and builds a CSR submatrix
// per block.
func NewBlockExecutor(c *core.COO, gridR, gridC int) (*BlockExecutor, error) {
	if gridR <= 0 || gridC <= 0 {
		return nil, fmt.Errorf("parallel: invalid block grid %dx%d", gridR, gridC)
	}
	c.Finalize()
	full, err := csr.FromCOO(c)
	if err != nil {
		return nil, err
	}
	e := &BlockExecutor{gridR: gridR, gridC: gridC}
	e.rowB = partition.SplitRowsByNNZ(full.RowPtr, gridR)
	colCounts := make([]int, c.Cols())
	for k := 0; k < c.Len(); k++ {
		_, j, _ := c.At(k)
		colCounts[j]++
	}
	e.colB = partition.SplitByCounts(colCounts, gridC)

	e.blocks = make([]*csr.Matrix, gridR*gridC)
	e.partial = make([][]float64, gridR*gridC)
	for ri := 0; ri < gridR; ri++ {
		for ci := 0; ci < gridC; ci++ {
			sub := c.Slice(e.rowB[ri], e.rowB[ri+1], e.colB[ci], e.colB[ci+1])
			b, err := csr.FromCOO(sub)
			if err != nil {
				return nil, err
			}
			idx := ri*gridC + ci
			e.blocks[idx] = b
			e.partial[idx] = make([]float64, maxInt(e.rowB[ri+1]-e.rowB[ri], 1))
		}
	}
	e.start = make([]chan blockJob, len(e.blocks))
	e.errs = make([]error, len(e.blocks))
	for i := range e.blocks {
		e.start[i] = make(chan blockJob)
		go workerLabeled("block", i, func() { e.worker(i) })
	}
	return e, nil
}

// SetCollector attaches (or, with nil, detaches) a telemetry sink.
// It takes the run lock, so attaching mid-stream is safe. A worker's
// Lo/Hi span is its grid block's row range; workers in column 0
// additionally accumulate their block row's reduction time.
func (e *BlockExecutor) SetCollector(c obs.Collector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.collector = c
	if c == nil {
		e.stats = nil
		return
	}
	e.stats = make([]obs.ChunkStat, len(e.blocks))
	for i, b := range e.blocks {
		ri := i / e.gridC
		e.stats[i] = obs.ChunkStat{Worker: i, Lo: e.rowB[ri], Hi: e.rowB[ri+1], NNZ: b.NNZ()}
	}
	e.traceNames = traceNames("block", len(e.blocks))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (e *BlockExecutor) worker(idx int) {
	for j := range e.start[idx] {
		if j.stats == nil {
			e.errs[idx] = e.runBlockJob(idx, j)
		} else {
			t0 := time.Now()
			if j.ctx != nil {
				rtrace.WithRegion(j.ctx, e.traceNames[idx], func() {
					e.errs[idx] = e.runBlockJob(idx, j)
				})
			} else {
				e.errs[idx] = e.runBlockJob(idx, j)
			}
			j.stats[idx].Busy += time.Since(t0)
		}
		e.wg.Done()
	}
}

// runBlockJob executes one phase for one grid block with panic
// containment; errors name the block's row range.
func (e *BlockExecutor) runBlockJob(idx int, j blockJob) (err error) {
	ri := idx / e.gridC
	ci := idx % e.gridC
	defer func() {
		if r := recover(); r != nil {
			err = chunkError(e.rowB[ri], e.rowB[ri+1], r)
		}
	}()
	b := e.blocks[idx]
	mine := e.partial[idx]
	if j.y == nil {
		// Multiply phase: private partial over the block's columns.
		// Zero first: an empty block skips the kernel and must not
		// contribute stale values from the previous run.
		for k := range mine {
			mine[k] = 0
		}
		if e.rowB[ri+1] > e.rowB[ri] && e.colB[ci+1] > e.colB[ci] {
			b.SpMV(mine, j.x[e.colB[ci]:e.colB[ci+1]])
		}
	} else if ci == 0 {
		// Reduction phase: worker (ri, 0) sums its block row.
		lo, hi := e.rowB[ri], e.rowB[ri+1]
		for k := lo; k < hi; k++ {
			sum := 0.0
			for cj := 0; cj < e.gridC; cj++ {
				sum += e.partial[ri*e.gridC+cj][k-lo]
			}
			j.y[k] = sum
		}
	}
	return nil
}

// Threads returns the worker count (gridR*gridC).
func (e *BlockExecutor) Threads() int { return len(e.blocks) }

// Run computes y = A*x. A failed multiply phase returns before the
// reduction, leaving y untouched. After Close, Run returns an error
// wrapping core.ErrUsage. Run, RunBatch and Close serialize on an
// internal mutex (see Executor).
func (e *BlockExecutor) Run(y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(nil, y, x)
}

// RunCtx is Run with a cancellation context, checked before each
// dispatch phase (see Executor.RunCtx for the preemption contract).
func (e *BlockExecutor) RunCtx(ctx context.Context, y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(ctx, y, x)
}

// run is Run without the lock; ctx may be nil.
func (e *BlockExecutor) run(ctx context.Context, y, x []float64) error {
	if e.closed {
		return errClosed()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	rows := e.rowB[e.gridR]
	cols := e.colB[e.gridC]
	if err := core.CheckVectorDims(rows, cols, y, x); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	n := len(e.blocks)
	for i := range e.errs {
		e.errs[i] = nil
	}
	var t0 time.Time
	var tctx context.Context
	if e.collector != nil {
		for i := range e.stats {
			e.stats[i].Busy = 0
		}
		var end func()
		tctx, end = traceTask("spmv.block.run")
		defer end()
		t0 = time.Now()
	}
	e.wg.Add(n)
	for i := range e.start {
		e.start[i] <- blockJob{x: x, stats: e.stats, ctx: tctx}
	}
	e.wg.Wait()
	if err := errors.Join(e.errs...); err != nil {
		return err
	}
	e.wg.Add(n)
	for i := range e.start {
		e.start[i] <- blockJob{x: x, y: y, stats: e.stats, ctx: tctx}
	}
	e.wg.Wait()
	if e.collector != nil {
		e.collector.RunDone(&obs.RunStat{
			Partition: "block",
			Vectors:   1,
			Wall:      time.Since(t0),
			Chunks:    append([]obs.ChunkStat(nil), e.stats...),
		})
	}
	// Rows beyond the last grid boundary cannot exist (boundaries cover
	// all rows), but zero-row grids leave y untouched; guard for safety.
	return errors.Join(e.errs...)
}

// RunBatch computes Y = A*X over row-major n×k panels by running the
// block-partitioned scalar pipeline once per panel column. As with the
// column executor, the reduction phase shares y across workers, so
// there is no fused multi-vector path.
func (e *BlockExecutor) RunBatch(y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(nil, y, x, k)
}

// RunBatchCtx is RunBatch with a cancellation context, checked before
// each panel column.
func (e *BlockExecutor) RunBatchCtx(ctx context.Context, y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(ctx, y, x, k)
}

// runBatch is RunBatch without the lock; ctx may be nil.
func (e *BlockExecutor) runBatch(ctx context.Context, y, x []float64, k int) error {
	if e.closed {
		return errClosed()
	}
	rows := e.rowB[e.gridR]
	cols := e.colB[e.gridC]
	if err := core.CheckPanelDims(rows, cols, y, x, k); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	if k == 1 {
		return e.run(ctx, y[:rows], x[:cols])
	}
	if e.scratchY == nil {
		e.scratchY = make([]float64, rows)
		e.scratchX = make([]float64, cols)
	}
	return runBatchColumns(ctx, y, x, k, e.scratchY, e.scratchX,
		func(yc, xc []float64) error { return e.run(ctx, yc, xc) })
}

// RunBatchIters performs iters consecutive batched multiplications.
// It stops at the first failing iteration.
func (e *BlockExecutor) RunBatchIters(iters int, y, x []float64, k int) error {
	for n := 0; n < iters; n++ {
		if err := e.RunBatch(y, x, k); err != nil {
			return fmt.Errorf("iteration %d: %w", n, err)
		}
	}
	return nil
}

// RunIters performs iters consecutive SpMV operations. It stops at the
// first failing iteration.
func (e *BlockExecutor) RunIters(iters int, y, x []float64) error {
	for k := 0; k < iters; k++ {
		if err := e.Run(y, x); err != nil {
			return fmt.Errorf("iteration %d: %w", k, err)
		}
	}
	return nil
}

// Close stops the workers. Run and RunIters return an error wrapping
// core.ErrUsage afterwards. Close is idempotent and safe to call
// concurrently with itself and with Run/RunBatch.
func (e *BlockExecutor) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for i := range e.start {
		close(e.start[i])
	}
}
