package parallel

import (
	"context"
	"fmt"
	"runtime"

	"spmv/internal/core"
	"spmv/internal/obs"
)

// Runner is the interface all executors in this package satisfy: the
// scalar and batched run entry points plus lifecycle and telemetry.
// Code that only drives multiplications (benchmarks, solvers, the CLI)
// should accept a Runner so the partition scheme stays a construction-
// time choice.
type Runner interface {
	// Run computes y = A*x.
	Run(y, x []float64) error
	// RunCtx is Run with a cancellation context: a context that is done
	// before dispatch returns ctx.Err() without running. Contexts bound
	// queueing delay, not kernel time — an in-flight chunk kernel is
	// never preempted.
	RunCtx(ctx context.Context, y, x []float64) error
	// RunIters performs iters consecutive scalar multiplications.
	RunIters(iters int, y, x []float64) error
	// RunBatch computes Y = A*X over row-major n×k panels.
	RunBatch(y, x []float64, k int) error
	// RunBatchCtx is RunBatch with a cancellation context, checked
	// before dispatch and between fallback panel columns.
	RunBatchCtx(ctx context.Context, y, x []float64, k int) error
	// RunBatchIters performs iters consecutive batched multiplications.
	RunBatchIters(iters int, y, x []float64, k int) error
	// Threads returns the worker count.
	Threads() int
	// SetCollector attaches (or detaches, with nil) a telemetry sink.
	SetCollector(obs.Collector)
	// Close stops the workers; Run afterwards wraps core.ErrUsage.
	// Close is idempotent and safe concurrently with Run/RunBatch.
	Close()
}

var (
	_ Runner = (*Executor)(nil)
	_ Runner = (*ColExecutor)(nil)
	_ Runner = (*BlockExecutor)(nil)
	_ Runner = (*NNZExecutor)(nil)
	_ Runner = (*StealExecutor)(nil)
	_ Runner = (*SymExecutor)(nil)
)

// ExecOptions configures New.
type ExecOptions struct {
	// Threads is the worker count; 0 or negative means GOMAXPROCS.
	Threads int
	// Collector, when non-nil, is attached with SetCollector.
	Collector obs.Collector
	// Partition selects the execution scheme: "row" (the default, also
	// selected by ""), "col", or "nnz" (non-zero-granular boundaries
	// that split long rows; CSR only). Block partitioning needs the
	// original triplets, not a built format — use NewBlockExecutor
	// directly.
	Partition string
	// Steal over-decomposes the row partition and lets idle workers
	// steal queued chunks (see StealExecutor). Only meaningful with the
	// row scheme; combining it with another Partition is a usage error.
	Steal bool
}

// New builds an executor for f according to opts. It is the options
// counterpart of NewExecutor/NewColExecutor and the construction path
// the public spmv package exposes.
func New(f core.Format, opts ExecOptions) (Runner, error) {
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	var (
		r   Runner
		err error
	)
	if opts.Steal && opts.Partition != "" && opts.Partition != "row" {
		return nil, core.Usagef("parallel: Steal applies to the row partition, not %q", opts.Partition)
	}
	switch {
	case opts.Steal:
		r, err = NewStealExecutor(f, threads)
	case opts.Partition == "" || opts.Partition == "row":
		r, err = NewExecutor(f, threads)
	case opts.Partition == "col":
		r, err = NewColExecutor(f, threads)
	case opts.Partition == "nnz":
		r, err = NewNNZExecutor(f, threads)
	default:
		return nil, core.Usagef("parallel: unknown partition %q (valid: row, col, nnz)", opts.Partition)
	}
	if err != nil {
		return nil, err
	}
	if opts.Collector != nil {
		r.SetCollector(opts.Collector)
	}
	return r, nil
}

// runBatchColumns is the executor-level batch fallback shared by the
// reducing executors: gather each panel column into contiguous scratch
// vectors, run the scalar executor, scatter the result column back.
// The scalar path's own telemetry fires once per column, each an
// honest single-vector run. A non-nil ctx is checked before each
// column, so a canceled batch stops between columns.
func runBatchColumns(ctx context.Context, y, x []float64, k int, yc, xc []float64, run func(y, x []float64) error) error {
	for c := 0; c < k; c++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("batch column %d: %w", c, err)
			}
		}
		for j := range xc {
			xc[j] = x[j*k+c]
		}
		if err := run(yc, xc); err != nil {
			return fmt.Errorf("batch column %d: %w", c, err)
		}
		for i, v := range yc {
			y[i*k+c] = v
		}
	}
	return nil
}
