package parallel

import (
	"math/rand"
	"runtime"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csc"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrvi"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func reference(c *core.COO, x []float64) []float64 {
	d := core.DenseFromCOO(c)
	y := make([]float64, c.Rows())
	d.SpMV(y, x)
	return y
}

func TestExecutorMatchesSerialAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := matgen.FEMLike(rng, 400, 6, matgen.Values{Unique: 30})
	x := testmat.RandVec(rng, c.Cols())
	want := reference(c, x)

	builders := map[string]func() (core.Format, error){
		"csr":    func() (core.Format, error) { return csr.FromCOO(c) },
		"csr-du": func() (core.Format, error) { return csrdu.FromCOO(c) },
		"csr-vi": func() (core.Format, error) { return csrvi.FromCOO(c) },
	}
	for name, build := range builders {
		f, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, threads := range []int{1, 2, 4, 8} {
			e, err := NewExecutor(f, threads)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, threads, err)
			}
			y := make([]float64, c.Rows())
			e.Run(y, x)
			testmat.AssertClose(t, name, y, want, 1e-10)
			e.Close()
		}
	}
}

func TestExecutorRepeatedRuns(t *testing.T) {
	c := matgen.Stencil2D(20)
	f, _ := csr.FromCOO(c)
	e, _ := NewExecutor(f, 4)
	defer e.Close()
	x := testmat.RandVec(rand.New(rand.NewSource(2)), c.Cols())
	want := reference(c, x)
	y := make([]float64, c.Rows())
	e.RunIters(10, y, x)
	testmat.AssertClose(t, "after 10 iters", y, want, 1e-10)
}

func TestExecutorEmptyMatrix(t *testing.T) {
	c := core.NewCOO(50, 50)
	c.Finalize()
	for name, f := range map[string]core.Format{
		"csr":    mustFormat(csr.FromCOO(c)),
		"csr-du": mustFormat(csrdu.FromCOO(c)),
	} {
		e, err := NewExecutor(f, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y := make([]float64, 50)
		for i := range y {
			y[i] = 7
		}
		e.Run(y, make([]float64, 50))
		for i, v := range y {
			if v != 0 {
				t.Fatalf("%s: y[%d] = %v, want 0", name, i, v)
			}
		}
		e.Close()
	}
}

func mustFormat(f core.Format, err error) core.Format {
	if err != nil {
		panic(err)
	}
	return f
}

func TestExecutorRejectsBadArgs(t *testing.T) {
	c := matgen.Stencil2D(4)
	f, _ := csr.FromCOO(c)
	if _, err := NewExecutor(f, 0); err == nil {
		t.Error("accepted 0 threads")
	}
	cs, _ := csc.FromCOO(c)
	if _, err := NewExecutor(cs, 2); err == nil {
		t.Error("accepted non-Splitter format")
	}
}

func TestExecutorThreadsCappedByRows(t *testing.T) {
	c := core.NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(1, 1, 1)
	c.Add(2, 2, 1)
	c.Finalize()
	f, _ := csr.FromCOO(c)
	e, _ := NewExecutor(f, 16)
	defer e.Close()
	if e.Threads() > 3 {
		t.Errorf("Threads = %d for a 3-row matrix", e.Threads())
	}
}

func TestExecutorCloseIdempotent(t *testing.T) {
	f, _ := csr.FromCOO(matgen.Stencil2D(4))
	e, _ := NewExecutor(f, 2)
	e.Close()
	e.Close() // must not panic
}

func TestColExecutorMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := matgen.FEMLike(rng, 350, 5, matgen.Values{})
	f, _ := csc.FromCOO(c)
	x := testmat.RandVec(rng, c.Cols())
	want := reference(c, x)
	for _, threads := range []int{1, 2, 4, 8} {
		e, err := NewColExecutor(f, threads)
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, c.Rows())
		for i := range y {
			y[i] = 99 // must be overwritten by reduction
		}
		e.Run(y, x)
		testmat.AssertClose(t, "col executor", y, want, 1e-10)
		// Second run must not accumulate.
		e.Run(y, x)
		testmat.AssertClose(t, "col executor run 2", y, want, 1e-10)
		e.Close()
	}
}

func TestColExecutorRejectsRowOnlyFormat(t *testing.T) {
	f, _ := csr.FromCOO(matgen.Stencil2D(4))
	if _, err := NewColExecutor(f, 2); err == nil {
		t.Error("accepted non-ColSplitter format")
	}
}

func TestBlockExecutorMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := matgen.FEMLike(rng, 300, 5, matgen.Values{})
	x := testmat.RandVec(rng, c.Cols())
	want := reference(c, x)
	for _, grid := range [][2]int{{1, 1}, {2, 2}, {2, 4}, {4, 2}, {3, 3}} {
		e, err := NewBlockExecutor(c, grid[0], grid[1])
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, c.Rows())
		e.Run(y, x)
		testmat.AssertClose(t, "block executor", y, want, 1e-10)
		e.Run(y, x)
		testmat.AssertClose(t, "block executor run 2", y, want, 1e-10)
		e.Close()
	}
}

func TestBlockExecutorMoreGridsThanRows(t *testing.T) {
	c := core.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, 2)
	c.Finalize()
	e, err := NewBlockExecutor(c, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	y := make([]float64, 2)
	e.Run(y, []float64{3, 5})
	if y[0] != 3 || y[1] != 10 {
		t.Errorf("y = %v, want [3 10]", y)
	}
}

func TestExecutorConcurrencyIsReal(t *testing.T) {
	// Smoke test that chunks actually run on multiple goroutines: with
	// GOMAXPROCS>1 and a big matrix, parallel should not be slower than
	// ~3x serial (catching accidental serialization would need timing;
	// here we just verify correctness under -race with many runs).
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single CPU")
	}
	c := matgen.Stencil2D(64)
	f, _ := csr.FromCOO(c)
	e, _ := NewExecutor(f, 8)
	defer e.Close()
	x := testmat.RandVec(rand.New(rand.NewSource(5)), c.Cols())
	want := reference(c, x)
	y := make([]float64, c.Rows())
	for k := 0; k < 50; k++ {
		e.Run(y, x)
	}
	testmat.AssertClose(t, "repeated parallel", y, want, 1e-10)
}
