package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csc"
	"spmv/internal/csr"
	"spmv/internal/matgen"
)

// closeHarness builds one executor of each partition scheme over the
// same small matrix, so the lifecycle tests cover all three drivers.
func closeHarness(t *testing.T) map[string]func() Runner {
	t.Helper()
	c := matgen.Stencil2D(12)
	return map[string]func() Runner{
		"row": func() Runner {
			f, err := csr.FromCOO(c)
			if err != nil {
				t.Fatalf("csr: %v", err)
			}
			e, err := NewExecutor(f, 4)
			if err != nil {
				t.Fatalf("row: %v", err)
			}
			return e
		},
		"col": func() Runner {
			f, err := csc.FromCOO(c)
			if err != nil {
				t.Fatalf("csc: %v", err)
			}
			e, err := NewColExecutor(f, 4)
			if err != nil {
				t.Fatalf("col: %v", err)
			}
			return e
		},
		"block": func() Runner {
			e, err := NewBlockExecutor(c, 2, 2)
			if err != nil {
				t.Fatalf("block: %v", err)
			}
			return e
		},
	}
}

// TestCloseConcurrentIdempotent drives many simultaneous Close calls
// on every executor kind: exactly one must win, the rest must be
// no-ops, and a subsequent Run must report the usage error rather than
// panicking on a doubly closed channel. Run under -race this is the
// regression test for the server executor pool's double-Close hazard.
func TestCloseConcurrentIdempotent(t *testing.T) {
	for name, mk := range closeHarness(t) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					e.Close()
				}()
			}
			wg.Wait()
			y := make([]float64, 12*12)
			x := make([]float64, 12*12)
			if err := e.Run(y, x); !errors.Is(err, core.ErrUsage) {
				t.Fatalf("Run after concurrent Close: got %v, want ErrUsage", err)
			}
		})
	}
}

// TestCloseVsRunRace closes each executor while another goroutine is
// mid Run loop. Every Run must either complete cleanly or return the
// typed closed-executor error; the old unsynchronized close could
// instead panic sending on a closed channel.
func TestCloseVsRunRace(t *testing.T) {
	for name, mk := range closeHarness(t) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			y := make([]float64, 12*12)
			x := make([]float64, 12*12)
			for i := range x {
				x[i] = 1
			}
			done := make(chan error, 1)
			go func() {
				for {
					if err := e.Run(y, x); err != nil {
						done <- err
						return
					}
				}
			}()
			e.Close()
			if err := <-done; !errors.Is(err, core.ErrUsage) {
				t.Fatalf("racing Run: got %v, want ErrUsage", err)
			}
		})
	}
}

// TestRunCtxCanceled checks the context-aware entry points reject an
// already-canceled context without dispatching, on the scalar and
// batched paths of all three executors.
func TestRunCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, mk := range closeHarness(t) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			defer e.Close()
			y := make([]float64, 12*12*2)
			x := make([]float64, 12*12*2)
			if err := e.RunCtx(ctx, y[:12*12], x[:12*12]); !errors.Is(err, context.Canceled) {
				t.Fatalf("RunCtx: got %v, want context.Canceled", err)
			}
			if err := e.RunBatchCtx(ctx, y, x, 2); !errors.Is(err, context.Canceled) {
				t.Fatalf("RunBatchCtx: got %v, want context.Canceled", err)
			}
		})
	}
}

// TestRunCtxLiveMatchesRun checks a live context leaves results
// identical to the plain entry points.
func TestRunCtxLiveMatchesRun(t *testing.T) {
	c := matgen.Stencil2D(12)
	f, err := csr.FromCOO(c)
	if err != nil {
		t.Fatalf("csr: %v", err)
	}
	e, err := NewExecutor(f, 3)
	if err != nil {
		t.Fatalf("executor: %v", err)
	}
	defer e.Close()
	n := c.Rows()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) + 0.5
	}
	want := make([]float64, n)
	if err := e.Run(want, x); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := make([]float64, n)
	if err := e.RunCtx(context.Background(), got, x); err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	for i := range got {
		if !core.SameBits(got[i], want[i]) {
			t.Fatalf("RunCtx diverges from Run at %d: %v != %v", i, got[i], want[i])
		}
	}
}
