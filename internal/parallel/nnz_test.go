package parallel

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/obs"
	"spmv/internal/partition"
	"spmv/internal/testmat"
)

func TestNNZExecutorMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	coos := map[string]*core.COO{
		"stencil":  matgen.Stencil2D(12),
		"fem":      matgen.FEMLike(rng, 300, 6, matgen.Values{Unique: 30}),
		"powerlaw": matgen.PowerLaw(rng, 400, 4, 0.9, matgen.Values{}),
		"skewed":   matgen.SkewedRows(rng, 200, 3, 100, 0.5, matgen.Values{}),
	}
	for name, c := range coos {
		f, err := csr.FromCOO(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := testmat.RandVec(rng, c.Cols())
		want := reference(c, x)
		for _, threads := range []int{1, 2, 3, 4, 8, 16} {
			e, err := NewNNZExecutor(f, threads)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, threads, err)
			}
			y := make([]float64, c.Rows())
			for iter := 0; iter < 3; iter++ {
				if err := e.Run(y, x); err != nil {
					t.Fatalf("%s/%d: %v", name, threads, err)
				}
				testmat.AssertClose(t, name, y, want, 1e-10)
			}
			e.Close()
		}
	}
}

// TestNNZExecutorEmptyRows checks gap-row zeroing: rows with no stored
// non-zeros belong to no chunk and must still be written as zero, even
// at the matrix edges.
func TestNNZExecutorEmptyRows(t *testing.T) {
	c := core.NewCOO(10, 10)
	// Rows 0, 3, 4, 9 stay empty; row 5 is heavy.
	c.Add(1, 1, 2)
	c.Add(2, 0, 3)
	for j := 0; j < 10; j++ {
		c.Add(5, j, float64(j+1))
	}
	c.Add(6, 6, -1)
	c.Add(8, 2, 4)
	c.Finalize()
	f, err := csr.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	x := testmat.RandVec(rand.New(rand.NewSource(5)), 10)
	want := reference(c, x)
	for _, threads := range []int{1, 2, 4, 8} {
		e, err := NewNNZExecutor(f, threads)
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, 10)
		for i := range y {
			y[i] = 99 // stale values must be overwritten, gaps zeroed
		}
		if err := e.Run(y, x); err != nil {
			t.Fatal(err)
		}
		testmat.AssertClose(t, "empty-rows", y, want, 1e-12)
		e.Close()
	}
}

// TestNNZSplitBeatsRowSplitOnSkew is the acceptance criterion: with one
// row holding over a quarter of the non-zeros, row-granular splitting
// at 8 threads is stuck above 2x imbalance while non-zero splitting
// stays within 1.25x.
func TestNNZSplitBeatsRowSplitOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := matgen.SkewedRows(rng, 2000, 2, 1000, 0.3, matgen.Values{})
	m, err := csr.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	const threads = 8
	prefix := make([]int64, m.Rows()+1)
	for i := range prefix {
		prefix[i] = int64(m.RowPtr[i])
	}
	rowImb := partition.Imbalance(prefix, partition.SplitRowsByNNZ(m.RowPtr, threads))
	if rowImb <= 2.0 {
		t.Fatalf("row-granular imbalance %v, want > 2 (matrix not skewed enough)", rowImb)
	}

	chunks := m.SplitNNZ(threads)
	cp := make([]int64, len(chunks)+1)
	cb := make([]int, len(chunks)+1)
	for i, ch := range chunks {
		cp[i+1] = cp[i] + int64(ch.NNZ())
		cb[i+1] = i + 1
	}
	nnzImb := partition.Imbalance(cp, cb)
	if nnzImb > 1.25 {
		t.Errorf("nnz-split imbalance %v, want <= 1.25 (row-granular: %v)", nnzImb, rowImb)
	}
}

func TestNNZExecutorBatchAndCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := matgen.SkewedRows(rng, 150, 3, 75, 0.4, matgen.Values{})
	f, err := csr.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewNNZExecutor(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const k = 3
	x := testmat.RandVec(rng, c.Cols()*k)
	y := make([]float64, c.Rows()*k)
	if err := e.RunBatch(y, x, k); err != nil {
		t.Fatal(err)
	}
	for col := 0; col < k; col++ {
		xc := make([]float64, c.Cols())
		yc := make([]float64, c.Rows())
		for j := range xc {
			xc[j] = x[j*k+col]
		}
		for i := range yc {
			yc[i] = y[i*k+col]
		}
		testmat.AssertClose(t, "batch", yc, reference(c, xc), 1e-10)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunCtx(ctx, make([]float64, c.Rows()), x[:c.Cols()]); !errors.Is(err, context.Canceled) {
		t.Errorf("RunCtx on cancelled context = %v, want context.Canceled", err)
	}
	if err := e.RunBatchCtx(ctx, y, x, k); !errors.Is(err, context.Canceled) {
		t.Errorf("RunBatchCtx on cancelled context = %v, want context.Canceled", err)
	}
}

func TestNNZExecutorCollector(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := matgen.SkewedRows(rng, 100, 3, 50, 0.4, matgen.Values{})
	f, err := csr.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewNNZExecutor(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := obs.NewRecorder()
	e.SetCollector(rec)
	x := testmat.RandVec(rng, c.Cols())
	y := make([]float64, c.Rows())
	if err := e.Run(y, x); err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	if s.Runs != 1 || s.Last.Partition != "nnz" {
		t.Fatalf("snapshot = %+v, want 1 run with partition nnz", s)
	}
	if got := len(s.Last.Chunks); got != e.Threads() {
		t.Errorf("chunk stats %d, want %d", got, e.Threads())
	}
	var nnz int
	for _, cs := range s.Last.Chunks {
		nnz += cs.NNZ
	}
	if nnz != f.NNZ() {
		t.Errorf("chunk nnz sums to %d, want %d", nnz, f.NNZ())
	}
	if s.Last.Err != "" {
		t.Errorf("RunStat.Err = %q on success", s.Last.Err)
	}
}

func TestNNZExecutorPanicContainment(t *testing.T) {
	c := matgen.Stencil2D(8)
	m, err := csr.FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	m.ColInd[len(m.ColInd)/2] = 10000 // out of range: kernel panics
	e, err := NewNNZExecutor(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := obs.NewRecorder()
	e.SetCollector(rec)
	x := make([]float64, m.Cols())
	y := make([]float64, m.Rows())
	runErr := e.Run(y, x)
	if runErr == nil {
		t.Fatal("Run on corrupt matrix succeeded")
	}
	if !strings.Contains(runErr.Error(), "chunk rows") {
		t.Errorf("error %q does not name the chunk", runErr)
	}
	if s := rec.Snapshot(); s.Last.Err == "" {
		t.Errorf("RunStat.Err empty after failed run")
	}
	// The executor survives: a subsequent run still reports cleanly.
	if err := e.Run(y, x); err == nil {
		t.Fatal("second Run on corrupt matrix succeeded")
	}
}

func TestNNZExecutorClosed(t *testing.T) {
	m, err := csr.FromCOO(matgen.Stencil2D(4))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewNNZExecutor(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	y := make([]float64, m.Rows())
	x := make([]float64, m.Cols())
	if err := e.Run(y, x); !errors.Is(err, core.ErrUsage) {
		t.Errorf("Run after Close = %v, want core.ErrUsage", err)
	}
	if err := e.RunBatch(y, x, 1); !errors.Is(err, core.ErrUsage) {
		t.Errorf("RunBatch after Close = %v, want core.ErrUsage", err)
	}
}

// BenchmarkSchedulersSkewed compares the three row-oriented schedulers
// on a matrix whose heaviest row holds 30% of the non-zeros — the
// workload where row-granular splitting hits imbalance 2.4 at 8
// threads while nonzero splitting stays at 1.0 (pinned by
// TestNNZSplitBeatsRowSplitOnSkew). Wall-clock differences only
// appear with >= 8 hardware threads; on fewer cores the OS
// multiplexes the workers and static imbalance costs nothing.
func BenchmarkSchedulersSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	c := matgen.SkewedRows(rng, 100000, 2, 50000, 0.30, matgen.Values{})
	f, err := csr.FromCOO(c)
	if err != nil {
		b.Fatal(err)
	}
	x := testmat.RandVec(rng, c.Cols())
	y := make([]float64, c.Rows())
	for _, bc := range []struct {
		name string
		opts ExecOptions
	}{
		{"row8", ExecOptions{Threads: 8}},
		{"nnz8", ExecOptions{Threads: 8, Partition: "nnz"}},
		{"steal8", ExecOptions{Threads: 8, Steal: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			e, err := New(f, bc.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Run(y, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
