// Package parallel is the multithreaded SpMV runtime: the Go analogue
// of the paper's pthread row-partitioned kernel driver (§II-C, §VI-A).
//
// An Executor owns one persistent worker goroutine per chunk — the
// analogue of a pinned thread — so that iterative workloads (the paper
// measures 128 consecutive SpMV operations) pay goroutine startup once,
// not per iteration. Row partitioning needs no reduction because chunks
// write disjoint y ranges; the column- and block-partitioned executors
// give each worker a private y and reduce, as §II-C prescribes.
//
// Every executor accepts an obs.Collector (SetCollector) that receives
// per-run telemetry: per-chunk busy time, non-zero counts and load
// imbalance. With no collector attached the instrumentation cost is one
// nil check per Run and per chunk dispatch — no clock reads, no
// allocation — so benchmarks with collection disabled measure the same
// kernels the spmvlint compile gate baselines.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"sync"
	"time"

	"spmv/internal/core"
	"spmv/internal/obs"
)

// Executor runs row-partitioned multithreaded SpMV for one matrix.
// Create with NewExecutor, use Run/RunIters any number of times, and
// Close when done. Run after Close returns an error wrapping
// core.ErrUsage.
//
// Run, RunBatch and Close serialize on an internal mutex, so a server
// pool may share one executor across goroutines and shut it down while
// runs are in flight: concurrent calls queue, double-Close is a no-op,
// and a Close racing a Run never panics — the loser observes the
// closed state and returns the usage error.
//
// The executor is fault-tolerant: operand lengths are validated before
// any worker touches them, and a kernel panic inside a worker — the
// compressed formats' kernels trust their streams and panic on corrupt
// bytes — is recovered and returned as an error naming the offending
// chunk's row range, instead of killing the process.
type Executor struct {
	chunks []core.Chunk
	rows   int
	cols   int
	gaps   [][2]int // row ranges covered by no chunk (zeroed per run)
	batch  bool     // every chunk implements core.BatchChunk

	start []chan job
	errs  []error // per-worker error slot for the current run
	wg    sync.WaitGroup

	mu     sync.Mutex // serializes Run/RunBatch/Close; guards closed
	closed bool

	// Per-column scratch for the RunBatch fallback on formats without a
	// fused batch kernel; allocated on first use. scratchY is zeroed at
	// allocation and chunk-owned rows are overwritten every run, so gap
	// rows stay zero without per-run work.
	scratchY, scratchX []float64

	collector  obs.Collector
	stats      []obs.ChunkStat // reused telemetry buffer; nil ⇒ collection off
	traceNames []string        // per-worker runtime/trace region names
}

type job struct {
	y, x  []float64
	k     int             // panel width; <= 1 ⇒ scalar SpMV
	stats []obs.ChunkStat // nil ⇒ workers skip timing entirely
	ctx   context.Context // non-nil ⇒ wrap the kernel in a trace region
}

// NewExecutor partitions f into at most nthreads nnz-balanced row
// chunks and starts one worker per chunk. It returns an error if the
// format does not support row partitioning.
func NewExecutor(f core.Format, nthreads int) (*Executor, error) {
	s, ok := f.(core.Splitter)
	if !ok {
		return nil, fmt.Errorf("parallel: format %s does not support row partitioning", f.Name())
	}
	if nthreads <= 0 {
		return nil, fmt.Errorf("parallel: invalid thread count %d", nthreads)
	}
	e := &Executor{chunks: s.Split(nthreads), rows: f.Rows(), cols: f.Cols()}
	// Rows covered by no chunk hold no non-zeros; record them so Run
	// can zero them (SpMV overwrites y).
	next := 0
	for _, ch := range e.chunks {
		lo, hi := ch.RowRange()
		if lo > next {
			e.gaps = append(e.gaps, [2]int{next, lo})
		}
		next = hi
	}
	if next < e.rows {
		e.gaps = append(e.gaps, [2]int{next, e.rows})
	}
	e.batch = true
	for _, ch := range e.chunks {
		if _, ok := ch.(core.BatchChunk); !ok {
			e.batch = false
			break
		}
	}
	e.start = make([]chan job, len(e.chunks))
	e.errs = make([]error, len(e.chunks))
	for i := range e.chunks {
		e.start[i] = make(chan job)
		go workerLabeled("row", i, func() { e.worker(i) })
	}
	return e, nil
}

// workerLabeled runs fn as a worker goroutine body with pprof labels
// identifying the partition scheme and worker index, so CPU profiles of
// a multithreaded run attribute samples to individual workers.
func workerLabeled(partition string, i int, fn func()) {
	pprof.Do(context.Background(),
		pprof.Labels("spmv_partition", partition, "spmv_worker", strconv.Itoa(i)),
		func(context.Context) { fn() })
}

// traceNames precomputes the per-worker runtime/trace region names for
// a partition scheme ("spmv.<scheme>.chunk<i>"), so the enabled path
// never formats strings per dispatch.
func traceNames(partition string, n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "spmv." + partition + ".chunk" + strconv.Itoa(i)
	}
	return names
}

// traceTask opens a runtime/trace task covering one Run when tracing
// is active. Executors call it only on the collector-enabled path, so
// the disabled path keeps its single nil check; with tracing inactive
// it costs one atomic load and returns a nil context, which workers
// read as "no region". The returned end function is never nil.
func traceTask(name string) (context.Context, func()) {
	if !rtrace.IsEnabled() {
		return nil, func() {}
	}
	ctx, task := rtrace.NewTask(context.Background(), name)
	return ctx, task.End
}

// SetCollector attaches (or, with nil, detaches) a telemetry sink.
// It takes the run lock, so attaching mid-stream is safe; set it up
// right after construction alongside the executor's other
// configuration all the same.
func (e *Executor) SetCollector(c obs.Collector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.collector = c
	if c == nil {
		e.stats = nil
		e.traceNames = nil
		return
	}
	e.stats = make([]obs.ChunkStat, len(e.chunks))
	for i, ch := range e.chunks {
		lo, hi := ch.RowRange()
		e.stats[i] = obs.ChunkStat{Worker: i, Lo: lo, Hi: hi, NNZ: ch.NNZ()}
	}
	e.traceNames = traceNames("row", len(e.chunks))
}

func (e *Executor) worker(i int) {
	ch := e.chunks[i]
	for j := range e.start[i] {
		if j.stats == nil {
			e.errs[i] = runChunk(ch, j)
		} else {
			t0 := time.Now()
			if j.ctx != nil {
				rtrace.WithRegion(j.ctx, e.traceNames[i], func() {
					e.errs[i] = runChunk(ch, j)
				})
			} else {
				e.errs[i] = runChunk(ch, j)
			}
			j.stats[i].Busy += time.Since(t0)
		}
		e.wg.Done()
	}
}

// runChunk executes one chunk kernel with panic containment, so a
// corrupt stream takes down one Run call, not the process. Jobs with
// k > 1 run the chunk's fused batch kernel; RunBatch only dispatches
// them when every chunk implements core.BatchChunk.
func runChunk(ch core.Chunk, j job) (err error) {
	lo, hi := ch.RowRange()
	defer func() {
		if r := recover(); r != nil {
			err = chunkError(lo, hi, r)
		}
	}()
	if j.k > 1 {
		ch.(core.BatchChunk).SpMVBatch(j.y, j.x, j.k)
	} else {
		ch.SpMV(j.y, j.x)
	}
	return nil
}

// chunkError converts a recovered worker panic into an error naming
// the row range the worker owned. core.PanicError preserves the typed
// sentinel chain, so errors.Is(err, core.ErrCorrupt) holds for corrupt
// streams.
func chunkError(lo, hi int, r any) error {
	return fmt.Errorf("parallel: chunk rows [%d,%d): %w", lo, hi, core.PanicError(r))
}

// errClosed is the typed error every executor returns from Run and
// RunIters after Close; errors.Is(err, core.ErrUsage) holds. Before
// this the send on the closed start channel panicked.
func errClosed() error {
	return core.Usagef("parallel: Run on closed executor")
}

// errString renders an error for obs.RunStat.Err; empty for nil.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Threads returns the number of workers (may be less than requested
// for small matrices).
func (e *Executor) Threads() int { return len(e.chunks) }

// Run computes y = A*x using all workers and blocks until complete.
// It returns an error if the executor is closed, if the operand
// lengths do not cover the matrix dimensions, or if any worker's
// kernel panicked (the error names the offending chunk's row range and
// wraps the core sentinels). On error y is left partially written; the
// matrix itself is untouched, so the caller can Verify it and retry or
// fail over.
func (e *Executor) Run(y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(nil, y, x)
}

// RunCtx is Run with a cancellation context: a context that is already
// done when the run would start returns ctx.Err() without dispatching.
// A kernel already in flight is never preempted — SpMV over one chunk
// is short and preemption points would cost the hot loop — so the
// context bounds queueing delay, not kernel time.
func (e *Executor) RunCtx(ctx context.Context, y, x []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.run(ctx, y, x)
}

// run is Run without the lock; ctx may be nil.
func (e *Executor) run(ctx context.Context, y, x []float64) error {
	if e.closed {
		return errClosed()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if err := core.CheckVectorDims(e.rows, e.cols, y, x); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	for _, g := range e.gaps {
		for i := g[0]; i < g[1]; i++ {
			y[i] = 0
		}
	}
	for i := range e.errs {
		e.errs[i] = nil
	}
	var t0 time.Time
	var tctx context.Context
	if e.collector != nil {
		for i := range e.stats {
			e.stats[i].Busy = 0
		}
		var end func()
		tctx, end = traceTask("spmv.row.run")
		defer end()
		t0 = time.Now()
	}
	e.dispatch(job{y: y, x: x, stats: e.stats, ctx: tctx})
	err := errors.Join(e.errs...)
	if e.collector != nil {
		// Workers are quiescent after Wait, so handing the collector a
		// copy of the stats buffer is race-free.
		e.collector.RunDone(&obs.RunStat{
			Partition: "row",
			Vectors:   1,
			Wall:      time.Since(t0),
			Err:       errString(err),
			Chunks:    append([]obs.ChunkStat(nil), e.stats...),
		})
	}
	return err
}

// dispatch hands one job to every worker and blocks until all finish.
func (e *Executor) dispatch(j job) {
	e.wg.Add(len(e.chunks))
	for i := range e.start {
		e.start[i] <- j
	}
	e.wg.Wait()
}

// RunBatch computes Y = A*X over row-major n×k panels (X[j*k+c] is
// element j of right-hand side c) using all workers. When every chunk
// has a fused batch kernel the matrix stream is traversed — and, for
// the compressed formats, decoded — once for all k vectors; otherwise
// the executor gathers each panel column into scratch vectors and runs
// the scalar kernels k times (correct, but without the amortization).
// Error semantics match Run; on a collector the whole batch is one
// RunStat with Vectors = k.
func (e *Executor) RunBatch(y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(nil, y, x, k)
}

// RunBatchCtx is RunBatch with a cancellation context, checked before
// dispatch and between fallback columns (see RunCtx for the preemption
// contract).
func (e *Executor) RunBatchCtx(ctx context.Context, y, x []float64, k int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runBatch(ctx, y, x, k)
}

// runBatch is RunBatch without the lock; ctx may be nil.
func (e *Executor) runBatch(ctx context.Context, y, x []float64, k int) error {
	if e.closed {
		return errClosed()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if err := core.CheckPanelDims(e.rows, e.cols, y, x, k); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	if k == 1 {
		return e.run(ctx, y[:e.rows], x[:e.cols])
	}
	for i := range e.errs {
		e.errs[i] = nil
	}
	var t0 time.Time
	var tctx context.Context
	if e.collector != nil {
		for i := range e.stats {
			e.stats[i].Busy = 0
		}
		var end func()
		tctx, end = traceTask("spmv.row.batch")
		defer end()
		t0 = time.Now()
	}
	var err error
	if e.batch {
		for _, g := range e.gaps {
			yr := y[g[0]*k : g[1]*k]
			for i := range yr {
				yr[i] = 0
			}
		}
		e.dispatch(job{y: y, x: x, k: k, stats: e.stats, ctx: tctx})
		err = errors.Join(e.errs...)
	} else {
		// The per-column fallback must not return out of the loop: an
		// early return on a failed column skipped the collector's
		// RunDone, so a failing batch left no RunStat behind — the
		// telemetry stream under-counted exactly the runs worth
		// investigating. Break instead and report below with Err set.
		if e.scratchY == nil {
			e.scratchY = make([]float64, e.rows)
			e.scratchX = make([]float64, e.cols)
		}
		for c := 0; c < k; c++ {
			if ctx != nil {
				if cerr := ctx.Err(); cerr != nil {
					err = fmt.Errorf("batch column %d: %w", c, cerr)
					break
				}
			}
			for j := range e.scratchX {
				e.scratchX[j] = x[j*k+c]
			}
			e.dispatch(job{y: e.scratchY, x: e.scratchX, stats: e.stats, ctx: tctx})
			if cerr := errors.Join(e.errs...); cerr != nil {
				err = fmt.Errorf("batch column %d: %w", c, cerr)
				break
			}
			for i, v := range e.scratchY {
				y[i*k+c] = v
			}
		}
	}
	if e.collector != nil {
		e.collector.RunDone(&obs.RunStat{
			Partition: "row",
			Vectors:   k,
			Wall:      time.Since(t0),
			Err:       errString(err),
			Chunks:    append([]obs.ChunkStat(nil), e.stats...),
		})
	}
	return err
}

// RunBatchIters performs iters consecutive batched multiplications,
// reusing the same panels. It stops at the first failing iteration.
func (e *Executor) RunBatchIters(iters int, y, x []float64, k int) error {
	for n := 0; n < iters; n++ {
		if err := e.RunBatch(y, x, k); err != nil {
			return fmt.Errorf("iteration %d: %w", n, err)
		}
	}
	return nil
}

// RunIters performs iters consecutive SpMV operations (the paper's
// measurement loop), reusing the same x and y. It stops at the first
// failing iteration.
func (e *Executor) RunIters(iters int, y, x []float64) error {
	for k := 0; k < iters; k++ {
		if err := e.Run(y, x); err != nil {
			return fmt.Errorf("iteration %d: %w", k, err)
		}
	}
	return nil
}

// Close stops the workers. Run and RunIters return an error wrapping
// core.ErrUsage afterwards. Close is idempotent and safe to call
// concurrently with itself and with Run/RunBatch: it waits for an
// in-flight run to finish, then closes the worker channels exactly
// once.
func (e *Executor) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for i := range e.start {
		close(e.start[i])
	}
}
