// Package parallel is the multithreaded SpMV runtime: the Go analogue
// of the paper's pthread row-partitioned kernel driver (§II-C, §VI-A).
//
// An Executor owns one persistent worker goroutine per chunk — the
// analogue of a pinned thread — so that iterative workloads (the paper
// measures 128 consecutive SpMV operations) pay goroutine startup once,
// not per iteration. Row partitioning needs no reduction because chunks
// write disjoint y ranges; the column- and block-partitioned executors
// give each worker a private y and reduce, as §II-C prescribes.
package parallel

import (
	"fmt"
	"sync"

	"spmv/internal/core"
)

// Executor runs row-partitioned multithreaded SpMV for one matrix.
// Create with NewExecutor, use Run/RunIters any number of times
// (not concurrently), and Close when done.
type Executor struct {
	chunks []core.Chunk
	rows   int
	gaps   [][2]int // row ranges covered by no chunk (zeroed per run)

	start []chan job
	wg    sync.WaitGroup
	once  sync.Once
}

type job struct {
	y, x []float64
}

// NewExecutor partitions f into at most nthreads nnz-balanced row
// chunks and starts one worker per chunk. It returns an error if the
// format does not support row partitioning.
func NewExecutor(f core.Format, nthreads int) (*Executor, error) {
	s, ok := f.(core.Splitter)
	if !ok {
		return nil, fmt.Errorf("parallel: format %s does not support row partitioning", f.Name())
	}
	if nthreads <= 0 {
		return nil, fmt.Errorf("parallel: invalid thread count %d", nthreads)
	}
	e := &Executor{chunks: s.Split(nthreads), rows: f.Rows()}
	// Rows covered by no chunk hold no non-zeros; record them so Run
	// can zero them (SpMV overwrites y).
	next := 0
	for _, ch := range e.chunks {
		lo, hi := ch.RowRange()
		if lo > next {
			e.gaps = append(e.gaps, [2]int{next, lo})
		}
		next = hi
	}
	if next < e.rows {
		e.gaps = append(e.gaps, [2]int{next, e.rows})
	}
	e.start = make([]chan job, len(e.chunks))
	for i := range e.chunks {
		e.start[i] = make(chan job)
		go e.worker(i)
	}
	return e, nil
}

func (e *Executor) worker(i int) {
	ch := e.chunks[i]
	for j := range e.start[i] {
		ch.SpMV(j.y, j.x)
		e.wg.Done()
	}
}

// Threads returns the number of workers (may be less than requested
// for small matrices).
func (e *Executor) Threads() int { return len(e.chunks) }

// Run computes y = A*x using all workers and blocks until complete.
func (e *Executor) Run(y, x []float64) {
	for _, g := range e.gaps {
		for i := g[0]; i < g[1]; i++ {
			y[i] = 0
		}
	}
	e.wg.Add(len(e.chunks))
	for i := range e.start {
		e.start[i] <- job{y: y, x: x}
	}
	e.wg.Wait()
}

// RunIters performs iters consecutive SpMV operations (the paper's
// measurement loop), reusing the same x and y.
func (e *Executor) RunIters(iters int, y, x []float64) {
	for k := 0; k < iters; k++ {
		e.Run(y, x)
	}
}

// Close stops the workers. The Executor must not be used afterwards.
func (e *Executor) Close() {
	e.once.Do(func() {
		for i := range e.start {
			close(e.start[i])
		}
	})
}
