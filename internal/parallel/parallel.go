// Package parallel is the multithreaded SpMV runtime: the Go analogue
// of the paper's pthread row-partitioned kernel driver (§II-C, §VI-A).
//
// An Executor owns one persistent worker goroutine per chunk — the
// analogue of a pinned thread — so that iterative workloads (the paper
// measures 128 consecutive SpMV operations) pay goroutine startup once,
// not per iteration. Row partitioning needs no reduction because chunks
// write disjoint y ranges; the column- and block-partitioned executors
// give each worker a private y and reduce, as §II-C prescribes.
package parallel

import (
	"errors"
	"fmt"
	"sync"

	"spmv/internal/core"
)

// Executor runs row-partitioned multithreaded SpMV for one matrix.
// Create with NewExecutor, use Run/RunIters any number of times
// (not concurrently), and Close when done.
//
// The executor is fault-tolerant: operand lengths are validated before
// any worker touches them, and a kernel panic inside a worker — the
// compressed formats' kernels trust their streams and panic on corrupt
// bytes — is recovered and returned as an error naming the offending
// chunk's row range, instead of killing the process.
type Executor struct {
	chunks []core.Chunk
	rows   int
	cols   int
	gaps   [][2]int // row ranges covered by no chunk (zeroed per run)

	start []chan job
	errs  []error // per-worker error slot for the current run
	wg    sync.WaitGroup
	once  sync.Once
}

type job struct {
	y, x []float64
}

// NewExecutor partitions f into at most nthreads nnz-balanced row
// chunks and starts one worker per chunk. It returns an error if the
// format does not support row partitioning.
func NewExecutor(f core.Format, nthreads int) (*Executor, error) {
	s, ok := f.(core.Splitter)
	if !ok {
		return nil, fmt.Errorf("parallel: format %s does not support row partitioning", f.Name())
	}
	if nthreads <= 0 {
		return nil, fmt.Errorf("parallel: invalid thread count %d", nthreads)
	}
	e := &Executor{chunks: s.Split(nthreads), rows: f.Rows(), cols: f.Cols()}
	// Rows covered by no chunk hold no non-zeros; record them so Run
	// can zero them (SpMV overwrites y).
	next := 0
	for _, ch := range e.chunks {
		lo, hi := ch.RowRange()
		if lo > next {
			e.gaps = append(e.gaps, [2]int{next, lo})
		}
		next = hi
	}
	if next < e.rows {
		e.gaps = append(e.gaps, [2]int{next, e.rows})
	}
	e.start = make([]chan job, len(e.chunks))
	e.errs = make([]error, len(e.chunks))
	for i := range e.chunks {
		e.start[i] = make(chan job)
		go e.worker(i)
	}
	return e, nil
}

func (e *Executor) worker(i int) {
	ch := e.chunks[i]
	for j := range e.start[i] {
		e.errs[i] = runChunk(ch, j.y, j.x)
		e.wg.Done()
	}
}

// runChunk executes one chunk kernel with panic containment, so a
// corrupt stream takes down one Run call, not the process.
func runChunk(ch core.Chunk, y, x []float64) (err error) {
	lo, hi := ch.RowRange()
	defer func() {
		if r := recover(); r != nil {
			err = chunkError(lo, hi, r)
		}
	}()
	ch.SpMV(y, x)
	return nil
}

// chunkError converts a recovered worker panic into an error naming
// the row range the worker owned. core.PanicError preserves the typed
// sentinel chain, so errors.Is(err, core.ErrCorrupt) holds for corrupt
// streams.
func chunkError(lo, hi int, r any) error {
	return fmt.Errorf("parallel: chunk rows [%d,%d): %w", lo, hi, core.PanicError(r))
}

// Threads returns the number of workers (may be less than requested
// for small matrices).
func (e *Executor) Threads() int { return len(e.chunks) }

// Run computes y = A*x using all workers and blocks until complete.
// It returns an error if the operand lengths do not cover the matrix
// dimensions, or if any worker's kernel panicked (the error names the
// offending chunk's row range and wraps the core sentinels). On error
// y is left partially written; the matrix itself is untouched, so the
// caller can Verify it and retry or fail over.
func (e *Executor) Run(y, x []float64) error {
	if err := core.CheckVectorDims(e.rows, e.cols, y, x); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	for _, g := range e.gaps {
		for i := g[0]; i < g[1]; i++ {
			y[i] = 0
		}
	}
	for i := range e.errs {
		e.errs[i] = nil
	}
	e.wg.Add(len(e.chunks))
	for i := range e.start {
		e.start[i] <- job{y: y, x: x}
	}
	e.wg.Wait()
	return errors.Join(e.errs...)
}

// RunIters performs iters consecutive SpMV operations (the paper's
// measurement loop), reusing the same x and y. It stops at the first
// failing iteration.
func (e *Executor) RunIters(iters int, y, x []float64) error {
	for k := 0; k < iters; k++ {
		if err := e.Run(y, x); err != nil {
			return fmt.Errorf("iteration %d: %w", k, err)
		}
	}
	return nil
}

// Close stops the workers. The Executor must not be used afterwards.
func (e *Executor) Close() {
	e.once.Do(func() {
		for i := range e.start {
			close(e.start[i])
		}
	})
}
