package prof

import (
	"spmv/internal/obs"
	"spmv/internal/roofline"
)

// StreamShare is one stream's slice of a measured run: the predicted
// bytes restated as a traffic fraction and the bandwidth that fraction
// effectively moved at.
type StreamShare struct {
	Name  string  `json:"name"`
	Bytes int64   `json:"bytes"`
	Frac  float64 `json:"frac"`
	GBps  float64 `json:"gbps"`
}

// Attribution joins a structural profile with a measured timing: the
// predicted per-iteration traffic (the §II-B model the profile
// itemizes) divided by the measured seconds, decomposed per stream.
// Under the bandwidth-bound thesis the per-stream GB/s says which
// stream the kernel spends its memory time on — the ctl/val split is
// exactly what separates an index-bound from a value-bound matrix.
type Attribution struct {
	// SecsPerIter is the measured steady-state seconds per SpMV.
	SecsPerIter float64 `json:"secs_per_iter"`
	// PredictedBytes is obs.BytesPerSpMV for the profiled format — by
	// construction the sum of the profile's streams.
	PredictedBytes int64 `json:"predicted_bytes_per_iter"`
	// GBps is the effective bandwidth of the whole run.
	GBps float64 `json:"gbps"`
	// Streams decomposes the traffic; Fracs sum to 1 and GBps entries
	// sum to the total.
	Streams []StreamShare `json:"streams"`

	// Threads, TimeImbalance and NNZImbalance carry the last measured
	// run's executor telemetry when a RunStat was supplied.
	Threads       int     `json:"threads,omitempty"`
	WallSecs      float64 `json:"measured_wall_secs,omitempty"`
	BusySecs      float64 `json:"measured_busy_secs,omitempty"`
	TimeImbalance float64 `json:"time_imbalance,omitempty"`
	NNZImbalance  float64 `json:"nnz_imbalance,omitempty"`

	// CeilingGBps, PctRoofline and RooflineSource anchor GBps to the
	// host's bandwidth roofline when a model was supplied
	// (AttributeRoofline): PctRoofline = GBps / CeilingGBps, the
	// fraction of the memory wall the run actually hit. A kernel near
	// 1.0 is bandwidth-bound — the paper's premise — and can only go
	// faster by shrinking PredictedBytes; one well below 1.0 is leaving
	// bandwidth on the table (latency- or compute-bound).
	CeilingGBps    float64 `json:"ceiling_gbps,omitempty"`
	PctRoofline    float64 `json:"pct_roofline,omitempty"`
	RooflineSource string  `json:"roofline_source,omitempty"`
}

// Attribute builds the predicted-vs-measured bandwidth attribution for
// a profile and stores it on the profile. secsPerIter is the measured
// timing; last, when non-nil, is the most recent run's telemetry (its
// thread count and imbalance are copied through). It returns the
// attribution for convenience.
func Attribute(p *FormatProfile, secsPerIter float64, last *obs.RunStat) *Attribution {
	a := &Attribution{
		SecsPerIter:    secsPerIter,
		PredictedBytes: p.WorkingSet,
		GBps:           obs.GBps(p.WorkingSet, secsPerIter),
	}
	for _, s := range p.Streams {
		share := StreamShare{Name: s.Name, Bytes: s.Bytes}
		if p.WorkingSet > 0 {
			share.Frac = float64(s.Bytes) / float64(p.WorkingSet)
		}
		share.GBps = share.Frac * a.GBps
		a.Streams = append(a.Streams, share)
	}
	if last != nil && last.Threads() > 0 {
		a.Threads = last.Threads()
		a.WallSecs = last.Wall.Seconds()
		a.BusySecs = last.Busy().Seconds()
		a.TimeImbalance = last.TimeImbalance()
		a.NNZImbalance = last.NNZImbalance()
	}
	p.Attribution = a
	return a
}

// AttributeRoofline is Attribute plus roofline anchoring: the
// attribution's effective bandwidth is divided by the model's ceiling
// at the run's thread count (threads as given, falling back to the
// RunStat's worker count when threads <= 0). A nil model degrades to
// plain Attribute — the roofline fields stay zero.
func AttributeRoofline(p *FormatProfile, secsPerIter float64, last *obs.RunStat, m *roofline.Model, threads int) *Attribution {
	a := Attribute(p, secsPerIter, last)
	if m == nil {
		return a
	}
	if threads <= 0 {
		threads = a.Threads
	}
	if c := m.CeilingGBps(threads); c > 0 {
		a.CeilingGBps = c
		a.PctRoofline = a.GBps / c
		a.RooflineSource = m.Source
	}
	return a
}
