package prof

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"spmv/internal/obs"
)

// Series is an obs.Collector that records every run as a time-series
// point: wall time and per-worker busy times, iteration by iteration.
// Where Recorder aggregates, Series preserves order — the view that
// makes imbalance *drift* visible (a matrix whose tail rows decode
// wider units slows specific workers as the x vector churns the cache,
// which an aggregate mean hides).
//
// Series is safe for concurrent use and bounded: past the point cap
// new runs are counted in Dropped rather than stored.
type Series struct {
	mu      sync.Mutex
	max     int
	points  []Point
	dropped int
}

// DefaultMaxPoints bounds a Series when NewSeries is given n <= 0.
const DefaultMaxPoints = 4096

// Point is one recorded run.
type Point struct {
	// Run is the 0-based index of the run in arrival order.
	Run int `json:"run"`
	// WallNS is the run's wall time; Vectors its result-vector count.
	WallNS  int64 `json:"wall_ns"`
	Vectors int   `json:"vectors"`
	// Imbalance is the run's measured time imbalance (1.0 = perfect).
	Imbalance float64 `json:"imbalance"`
	// BusyNS holds each worker's busy time.
	BusyNS []int64 `json:"busy_ns"`
}

// NewSeries returns a Series storing at most maxPoints runs
// (DefaultMaxPoints when maxPoints <= 0).
func NewSeries(maxPoints int) *Series {
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	return &Series{max: maxPoints}
}

// RunDone implements obs.Collector.
func (s *Series) RunDone(st *obs.RunStat) {
	busy := make([]int64, len(st.Chunks))
	for i := range st.Chunks {
		busy[i] = int64(st.Chunks[i].Busy)
	}
	im := st.TimeImbalance()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) >= s.max {
		s.dropped++
		return
	}
	s.points = append(s.points, Point{
		Run:       len(s.points) + s.dropped,
		WallNS:    int64(st.Wall),
		Vectors:   st.Vectors,
		Imbalance: im,
		BusyNS:    busy,
	})
}

// SeriesSummary condenses a recorded series: per-iteration means and
// the imbalance drift between the first and second half, which is the
// one-number answer to "is the load balance degrading over iterations".
type SeriesSummary struct {
	Runs          int     `json:"runs"`
	Dropped       int     `json:"dropped,omitempty"`
	MeanWallSecs  float64 `json:"mean_wall_secs"`
	MeanImbalance float64 `json:"mean_imbalance"`
	MaxImbalance  float64 `json:"max_imbalance"`
	// ImbalanceDrift is mean(second half) - mean(first half); positive
	// means balance worsens as iterations accumulate.
	ImbalanceDrift float64 `json:"imbalance_drift"`
}

// SeriesDoc is the JSON document WriteJSON emits.
type SeriesDoc struct {
	Summary SeriesSummary `json:"summary"`
	Points  []Point       `json:"points"`
}

// Snapshot returns a copy of the recorded points.
func (s *Series) Snapshot() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Doc assembles the exportable document: summary plus points.
func (s *Series) Doc() SeriesDoc {
	s.mu.Lock()
	pts := make([]Point, len(s.points))
	copy(pts, s.points)
	dropped := s.dropped
	s.mu.Unlock()

	doc := SeriesDoc{Points: pts}
	doc.Summary.Runs = len(pts)
	doc.Summary.Dropped = dropped
	if len(pts) == 0 {
		return doc
	}
	var wall time.Duration
	sumIm := 0.0
	for _, p := range pts {
		wall += time.Duration(p.WallNS)
		sumIm += p.Imbalance
		if p.Imbalance > doc.Summary.MaxImbalance {
			doc.Summary.MaxImbalance = p.Imbalance
		}
	}
	n := len(pts)
	doc.Summary.MeanWallSecs = wall.Seconds() / float64(n)
	doc.Summary.MeanImbalance = sumIm / float64(n)
	if n >= 2 {
		half := n / 2
		first, second := 0.0, 0.0
		for _, p := range pts[:half] {
			first += p.Imbalance
		}
		for _, p := range pts[half:] {
			second += p.Imbalance
		}
		doc.Summary.ImbalanceDrift = second/float64(n-half) - first/float64(half)
	}
	return doc
}

// WriteJSON emits the series with its summary as indented JSON.
func (s *Series) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Doc())
}
