// Package prof is the structural profiling layer: it explains *why* a
// format performs the way the runtime observability layer (internal/obs)
// measures. A FormatProfile decomposes a built format into its memory
// streams — the §II-B working-set model itemized — and attaches the
// format-specific structure that drives those sizes: the CSR-DU unit
// mix and delta-width histograms, the CSR-VI unique-value count and
// val_ind width, the BCSR fill ratio. Attribution then joins the
// predicted stream bytes with a measured timing to report which streams
// dominate the traffic and what bandwidth each effectively moved at.
//
// The invariant the package maintains (and its tests pin) is exact
// reconciliation with the traffic model: the profiled stream bytes of
// any format sum to obs.BytesPerSpMV — the same number the bench
// metrics layer divides by. Profiles never estimate; they itemize.
package prof

import (
	"encoding/json"
	"fmt"
	"io"

	"spmv/internal/bcsr"
	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrduvi"
	"spmv/internal/csrvi"
	"spmv/internal/obs"
)

// DefaultRegions is the row-band count of the CSR-DU per-region
// breakdown in New.
const DefaultRegions = 8

// Stream is one component of a format's per-iteration memory traffic.
type Stream struct {
	// Name identifies the stream: matrix-side streams use the paper's
	// names (row_ptr, col_ind, values, ctl, val_ind, vals_unique,
	// brow_ptr, bcol_ind), and every profile ends with the dense
	// vectors "x" and "y".
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
}

// VIProfile is the value-indirection structure of CSR-VI and
// CSR-DU-VI (§V).
type VIProfile struct {
	// UniqueValues is the size of the vals_unique table.
	UniqueValues int `json:"unique_values"`
	// IndexWidth is the val_ind element width in bytes (1, 2 or 4).
	IndexWidth int `json:"index_width_bytes"`
	// TTU is the total-to-unique ratio; Applicable is the paper's
	// ttu > 5 criterion (§VI-E).
	TTU        float64 `json:"ttu"`
	Applicable bool    `json:"applicable"`
}

// BlockProfile is the blocking structure of BCSR.
type BlockProfile struct {
	R int `json:"r"`
	C int `json:"c"`
	// Blocks is the stored block count; Fill is stored values (padding
	// included) per logical non-zero, 1.0 = perfect blocking.
	Blocks    int     `json:"blocks"`
	Fill      float64 `json:"fill"`
	PaddedNNZ int     `json:"padded_nnz"`
}

// FormatProfile is the structural profile of one built format: the
// working-set breakdown by stream plus the format-specific structure.
type FormatProfile struct {
	Format string `json:"format"`
	Rows   int    `json:"rows"`
	Cols   int    `json:"cols"`
	NNZ    int    `json:"nnz"`

	// MatrixBytes is the encoded matrix size (Format.SizeBytes);
	// VectorBytes the x+y traffic; WorkingSet their sum — exactly
	// obs.BytesPerSpMV, the §II-B model.
	MatrixBytes int64 `json:"matrix_bytes"`
	VectorBytes int64 `json:"vector_bytes"`
	WorkingSet  int64 `json:"working_set_bytes"`
	// CSRBytes is the baseline CSR encoding of the same matrix;
	// CompressionRatio = MatrixBytes/CSRBytes.
	CSRBytes         int64   `json:"csr_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`
	BytesPerNNZ      float64 `json:"bytes_per_nnz"`

	// Streams itemizes WorkingSet; the entries always sum to it
	// exactly.
	Streams []Stream `json:"streams"`

	// DU is present for the CSR-DU family, VI for the value-indirected
	// formats, Block for BCSR.
	DU    *csrdu.Profile `json:"du,omitempty"`
	VI    *VIProfile     `json:"vi,omitempty"`
	Block *BlockProfile  `json:"block,omitempty"`

	// Attribution joins the profile with a measured timing; nil until
	// Attribute fills it.
	Attribution *Attribution `json:"attribution,omitempty"`
}

// New profiles a built format. Formats outside the compressed families
// get the generic single "matrix" stream; every profile's streams sum
// to obs.BytesPerSpMV(f) exactly.
func New(f core.Format) *FormatProfile {
	p := &FormatProfile{
		Format:      f.Name(),
		Rows:        f.Rows(),
		Cols:        f.Cols(),
		NNZ:         f.NNZ(),
		MatrixBytes: f.SizeBytes(),
		VectorBytes: core.VectorBytes(f.Rows(), f.Cols(), core.ValSize),
		WorkingSet:  obs.BytesPerSpMV(f),
		CSRBytes:    core.CSRBytes(f.Rows(), f.NNZ(), core.IdxSize, core.ValSize),
		BytesPerNNZ: core.BytesPerNNZ(f),
	}
	p.CompressionRatio = core.CompressionRatio(f)
	xy := []Stream{
		{Name: "x", Bytes: int64(f.Cols()) * core.ValSize},
		{Name: "y", Bytes: int64(f.Rows()) * core.ValSize},
	}
	switch m := f.(type) {
	case *csr.Matrix:
		p.Streams = []Stream{
			{Name: "row_ptr", Bytes: int64(len(m.RowPtr)) * core.IdxSize},
			{Name: "col_ind", Bytes: int64(len(m.ColInd)) * core.IdxSize},
			{Name: "values", Bytes: int64(len(m.Values)) * core.ValSize},
		}
	case *csr.Matrix16:
		p.Streams = []Stream{
			{Name: "row_ptr", Bytes: int64(len(m.RowPtr)) * core.IdxSize},
			{Name: "col_ind", Bytes: int64(len(m.ColInd)) * 2},
			{Name: "values", Bytes: int64(len(m.Values)) * core.ValSize},
		}
	case *csr.Matrix32:
		p.Streams = []Stream{
			{Name: "row_ptr", Bytes: int64(len(m.RowPtr)) * core.IdxSize},
			{Name: "col_ind", Bytes: int64(len(m.ColInd)) * core.IdxSize},
			{Name: "values", Bytes: int64(len(m.Values)) * 4},
		}
	case *csrdu.Matrix:
		p.Streams = []Stream{
			{Name: "ctl", Bytes: int64(len(m.Ctl))},
			{Name: "values", Bytes: int64(len(m.Values)) * core.ValSize},
		}
		p.DU = m.Profile(DefaultRegions)
	case *csrvi.Matrix:
		p.Streams = []Stream{
			{Name: "row_ptr", Bytes: int64(len(m.RowPtr)) * core.IdxSize},
			{Name: "col_ind", Bytes: int64(len(m.ColInd)) * core.IdxSize},
			{Name: "val_ind", Bytes: m.ValIndBytes()},
			{Name: "vals_unique", Bytes: int64(len(m.Unique)) * core.ValSize},
		}
		p.VI = &VIProfile{
			UniqueValues: len(m.Unique),
			IndexWidth:   m.IndexWidth(),
			TTU:          m.TTU(),
			Applicable:   m.Applicable(),
		}
	case *csrduvi.Matrix:
		p.Streams = []Stream{
			{Name: "ctl", Bytes: int64(m.CtlBytes())},
			{Name: "val_ind", Bytes: m.ValIndBytes()},
			{Name: "vals_unique", Bytes: int64(len(m.Unique)) * core.ValSize},
		}
		p.DU = m.Profile(DefaultRegions)
		p.VI = &VIProfile{
			UniqueValues: len(m.Unique),
			IndexWidth:   m.IndexWidth(),
			TTU:          m.TTU(),
			Applicable:   m.TTU() > csrvi.MinTTU,
		}
	case *bcsr.Matrix:
		p.Streams = []Stream{
			{Name: "brow_ptr", Bytes: int64(len(m.BRowPtr)) * core.IdxSize},
			{Name: "bcol_ind", Bytes: int64(len(m.BColInd)) * core.IdxSize},
			{Name: "values", Bytes: int64(m.PaddedNNZ()) * core.ValSize},
		}
		p.Block = &BlockProfile{
			R: m.R, C: m.C,
			Blocks:    m.Blocks(),
			Fill:      m.Fill(),
			PaddedNNZ: m.PaddedNNZ(),
		}
	default:
		p.Streams = []Stream{{Name: "matrix", Bytes: f.SizeBytes()}}
	}
	p.Streams = append(p.Streams, xy...)
	return p
}

// WriteJSON emits the profile as indented JSON.
func (p *FormatProfile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// Fprint writes a human-readable rendering of the profile.
func (p *FormatProfile) Fprint(w io.Writer) error {
	pw := &errWriter{w: w}
	pw.f("format %s: %d x %d, %d nnz\n", p.Format, p.Rows, p.Cols, p.NNZ)
	pw.f("  working set %s = matrix %s + vectors %s (csr %s, ratio %.3f, %.2f B/nnz)\n",
		mb(p.WorkingSet), mb(p.MatrixBytes), mb(p.VectorBytes),
		mb(p.CSRBytes), p.CompressionRatio, p.BytesPerNNZ)
	for _, s := range p.Streams {
		pw.f("  stream %-12s %12d B  %5.1f%%\n", s.Name, s.Bytes, pct(s.Bytes, p.WorkingSet))
	}
	if d := p.DU; d != nil {
		pw.f("  csr-du: %d units (avg %.1f nnz), u8/u16/u32/u64 = %d/%d/%d/%d, rle %d, nr %d, rjmp %d\n",
			d.Units, d.AvgUnitSize, d.PerClass[0], d.PerClass[1], d.PerClass[2], d.PerClass[3],
			d.RLEUnits, d.NRUnits, d.RJMPUnits)
		pw.f("  csr-du ctl: header %d + jump %d + delta %d = %d B\n",
			d.HeaderBytes, d.JumpBytes, d.DeltaBytes, d.CtlBytes)
		pw.f("  unit sizes %s\n", histLine(d.USizeHist, histPow2Label))
		pw.f("  ujmp widths %s\n", histLine(d.UJmpWidthHist, func(i int) string { return fmt.Sprintf("%dB", i+1) }))
		if d.RLEUnits > 0 {
			pw.f("  rle runs %s\n", histLine(d.RLERunHist, histPow2Label))
		}
	}
	if v := p.VI; v != nil {
		pw.f("  csr-vi: %d unique values, %d-byte val_ind, ttu %.1f, applicable %v\n",
			v.UniqueValues, v.IndexWidth, v.TTU, v.Applicable)
	}
	if b := p.Block; b != nil {
		pw.f("  bcsr: %dx%d blocks, %d stored, fill %.2f, padded nnz %d\n",
			b.R, b.C, b.Blocks, b.Fill, b.PaddedNNZ)
	}
	if a := p.Attribution; a != nil {
		pw.f("  measured: %.4g s/iter -> %.2f GB/s over %d predicted bytes\n",
			a.SecsPerIter, a.GBps, a.PredictedBytes)
		for _, s := range a.Streams {
			pw.f("  traffic %-12s %5.1f%%  %8.2f GB/s\n", s.Name, s.Frac*100, s.GBps)
		}
		if a.Threads > 0 {
			pw.f("  threads %d, time imbalance %.3f, nnz imbalance %.3f\n",
				a.Threads, a.TimeImbalance, a.NNZImbalance)
		}
	}
	return pw.err
}

// histPow2Label renders the power-of-two bucket labels of
// csrdu.Profile histograms.
func histPow2Label(i int) string {
	if i <= 1 {
		return fmt.Sprintf("%d", i+1)
	}
	return fmt.Sprintf("%d-%d", 1<<(i-1)+1, 1<<i)
}

// histLine renders the non-empty buckets of a histogram on one line.
func histLine(h []int, label func(int) string) string {
	out := ""
	for i, n := range h {
		if n == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("[%s]=%d", label(i), n)
	}
	if out == "" {
		return "(empty)"
	}
	return out
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func mb(b int64) string {
	return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
}

// errWriter latches the first write error so the printers stay
// readable while still propagating failures.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) f(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
