package prof

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"

	"spmv/internal/core"
	"spmv/internal/formats"
	"spmv/internal/matgen"
	"spmv/internal/obs"
)

func testCOO(t *testing.T) *core.COO {
	t.Helper()
	// Quantized values keep CSR-VI's val_ind narrow and the band keeps
	// every format (incl. csr16's 2-byte columns) constructible.
	return matgen.Banded(rand.New(rand.NewSource(7)), 4000, 25, 6, matgen.Values{Unique: 64})
}

// TestStreamsReconcileWithTrafficModel pins the acceptance criterion:
// for every registered format the profiled stream bytes sum exactly to
// obs.BytesPerSpMV — the traffic model and the profile itemization
// never disagree.
func TestStreamsReconcileWithTrafficModel(t *testing.T) {
	required := map[string]bool{"csr": true, "csr-du": true, "csr-vi": true, "csr-du-vi": true}
	for _, name := range formats.Names() {
		c := testCOO(t)
		f, err := formats.Build(name, c)
		if err != nil {
			// Some formats reject unsuitable matrices (cds bounds its
			// diagonal fill); the reconciliation matters wherever a
			// format actually builds, and always for the paper's four.
			if required[name] {
				t.Fatalf("%s: %v", name, err)
			}
			t.Logf("%s: skipped: %v", name, err)
			continue
		}
		p := New(f)
		var sum int64
		for _, s := range p.Streams {
			sum += s.Bytes
		}
		want := obs.BytesPerSpMV(f)
		if sum != want {
			t.Errorf("%s: stream bytes sum %d != BytesPerSpMV %d (streams %+v)",
				name, sum, want, p.Streams)
		}
		if p.WorkingSet != want {
			t.Errorf("%s: WorkingSet %d != BytesPerSpMV %d", name, p.WorkingSet, want)
		}
		if p.MatrixBytes != f.SizeBytes() {
			t.Errorf("%s: MatrixBytes %d != SizeBytes %d", name, p.MatrixBytes, f.SizeBytes())
		}
	}
}

// TestProfileStructuralLegs checks the format-specific sections: the
// DU histogram totals match the encoder's unit count, VI carries the
// unique table, BCSR the fill ratio.
func TestProfileStructuralLegs(t *testing.T) {
	c := testCOO(t)

	duf, err := formats.Build("csr-du", c)
	if err != nil {
		t.Fatal(err)
	}
	p := New(duf)
	if p.DU == nil {
		t.Fatal("csr-du profile has no DU section")
	}
	classTotal := 0
	for _, n := range p.DU.PerClass {
		classTotal += n
	}
	if classTotal+p.DU.RLEUnits != p.DU.Units || p.DU.Units == 0 {
		t.Errorf("DU unit histogram total %d+%d != units %d",
			classTotal, p.DU.RLEUnits, p.DU.Units)
	}
	if p.VI != nil || p.Block != nil {
		t.Error("csr-du profile has VI/Block sections")
	}

	vif, err := formats.Build("csr-vi", c)
	if err != nil {
		t.Fatal(err)
	}
	p = New(vif)
	if p.VI == nil || p.VI.UniqueValues == 0 || p.VI.IndexWidth != 1 {
		t.Errorf("csr-vi profile VI section = %+v, want 64-ish uniques at width 1", p.VI)
	}

	dvf, err := formats.Build("csr-du-vi", c)
	if err != nil {
		t.Fatal(err)
	}
	p = New(dvf)
	if p.DU == nil || p.VI == nil {
		t.Error("csr-du-vi profile missing DU or VI section")
	}

	bf, err := formats.Build("bcsr2x2", c)
	if err != nil {
		t.Fatal(err)
	}
	p = New(bf)
	if p.Block == nil || p.Block.R != 2 || p.Block.C != 2 || p.Block.Fill < 1 {
		t.Errorf("bcsr profile Block section = %+v", p.Block)
	}
}

// TestAttribute checks the predicted-vs-measured join: fractions sum
// to 1, per-stream bandwidths sum to the total, telemetry is copied.
func TestAttribute(t *testing.T) {
	c := testCOO(t)
	f, err := formats.Build("csr-du", c)
	if err != nil {
		t.Fatal(err)
	}
	p := New(f)
	last := &obs.RunStat{
		Partition: "row", Vectors: 1, Wall: 2 * time.Millisecond,
		Chunks: []obs.ChunkStat{
			{Worker: 0, Lo: 0, Hi: 2000, NNZ: 12000, Busy: time.Millisecond},
			{Worker: 1, Lo: 2000, Hi: 4000, NNZ: 12000, Busy: time.Millisecond},
		},
	}
	a := Attribute(p, 1e-3, last)
	if p.Attribution != a {
		t.Error("Attribute did not store the attribution on the profile")
	}
	if a.PredictedBytes != p.WorkingSet {
		t.Errorf("PredictedBytes %d != WorkingSet %d", a.PredictedBytes, p.WorkingSet)
	}
	fracSum, gbpsSum := 0.0, 0.0
	for _, s := range a.Streams {
		fracSum += s.Frac
		gbpsSum += s.GBps
	}
	if math.Abs(fracSum-1) > 1e-9 {
		t.Errorf("stream fractions sum to %v, want 1", fracSum)
	}
	if math.Abs(gbpsSum-a.GBps) > 1e-9*a.GBps {
		t.Errorf("stream GBps sum %v != total %v", gbpsSum, a.GBps)
	}
	if a.Threads != 2 || a.TimeImbalance < 1 || a.NNZImbalance < 1 {
		t.Errorf("telemetry not copied: %+v", a)
	}
}

// TestProfileJSONAndText checks both renderings stay well-formed.
func TestProfileJSONAndText(t *testing.T) {
	c := testCOO(t)
	f, err := formats.Build("csr-du-vi", c)
	if err != nil {
		t.Fatal(err)
	}
	p := New(f)
	Attribute(p, 1e-3, nil)

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back FormatProfile
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("profile JSON does not round-trip: %v", err)
	}
	if back.Format != "csr-du-vi" || len(back.Streams) != len(p.Streams) {
		t.Errorf("round-trip lost data: %+v", back)
	}

	buf.Reset()
	if err := p.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"format csr-du-vi", "stream ctl", "csr-vi:", "traffic"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("text rendering missing %q:\n%s", want, buf.String())
		}
	}
}

// TestSeries checks ordering, the bound, and the drift summary.
func TestSeries(t *testing.T) {
	s := NewSeries(3)
	stat := func(busy0, busy1 time.Duration) *obs.RunStat {
		return &obs.RunStat{
			Partition: "row", Vectors: 1, Wall: busy0 + busy1,
			Chunks: []obs.ChunkStat{
				{Worker: 0, NNZ: 10, Busy: busy0},
				{Worker: 1, NNZ: 10, Busy: busy1},
			},
		}
	}
	// Two balanced runs, then increasingly skewed ones (last dropped).
	s.RunDone(stat(time.Millisecond, time.Millisecond))
	s.RunDone(stat(time.Millisecond, time.Millisecond))
	s.RunDone(stat(3*time.Millisecond, time.Millisecond))
	s.RunDone(stat(4*time.Millisecond, time.Millisecond))

	doc := s.Doc()
	if doc.Summary.Runs != 3 || doc.Summary.Dropped != 1 {
		t.Fatalf("runs=%d dropped=%d, want 3,1", doc.Summary.Runs, doc.Summary.Dropped)
	}
	for i, p := range doc.Points {
		if p.Run != i {
			t.Errorf("point %d has run index %d", i, p.Run)
		}
		if len(p.BusyNS) != 2 {
			t.Errorf("point %d has %d busy entries", i, len(p.BusyNS))
		}
	}
	if doc.Summary.ImbalanceDrift <= 0 {
		t.Errorf("skewed tail should drift positive, got %v", doc.Summary.ImbalanceDrift)
	}
	if doc.Summary.MaxImbalance < doc.Summary.MeanImbalance {
		t.Errorf("max %v < mean %v", doc.Summary.MaxImbalance, doc.Summary.MeanImbalance)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back SeriesDoc
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("series JSON does not round-trip: %v", err)
	}
	if len(back.Points) != 3 {
		t.Errorf("round-trip lost points: %d", len(back.Points))
	}
}
