package archive

import (
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// synth builds a record from synthetic samples drawn around mean with
// the given relative noise, mimicking what the bench layer stores.
func synth(name string, rng *rand.Rand, mean, relNoise float64, n int) Record {
	var xs []float64
	for i := 0; i < n; i++ {
		xs = append(xs, mean*(1+relNoise*rng.NormFloat64()))
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	m := sum / float64(n)
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return Record{
		Name: name, Scale: 0.25, Iters: 10, Samples: n,
		MeanSecs: m, StddevSecs: math.Sqrt(ss / float64(n-1)),
	}
}

// TestComparatorSelfTest pins the acceptance criterion: an injected
// ~10% slowdown on synthetic archive data is flagged significant (and,
// above the threshold, a regression); equal-distribution data is not.
func TestComparatorSelfTest(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var old, cur []Record
	// 1% measurement noise, 10 samples: a 12% shift is far outside
	// noise, a resample of the same distribution is not.
	for i := 0; i < 8; i++ {
		name := CellName("synthetic", "csr", i+1)
		old = append(old, synth(name, rng, 1e-3, 0.01, 10))
		cur = append(cur, synth(name, rng, 1.12e-3, 0.01, 10))
	}
	results, err := Compare(old, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results, want 8", len(results))
	}
	for _, r := range results {
		if !r.Significant || !r.Regression {
			t.Errorf("%s: injected 12%% slowdown not flagged: %+v", r.Name, r)
		}
		if r.Method != "welch" {
			t.Errorf("%s: expected welch method, got %s", r.Name, r.Method)
		}
	}

	// Equal distributions: expect no regressions. A single cell can
	// trip a 5% test by construction; all eight at once must not.
	old, cur = nil, nil
	for i := 0; i < 8; i++ {
		name := CellName("synthetic", "csr", i+1)
		old = append(old, synth(name, rng, 1e-3, 0.01, 10))
		cur = append(cur, synth(name, rng, 1e-3, 0.01, 10))
	}
	results, err = Compare(old, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(results); len(regs) != 0 {
		t.Errorf("equal distributions flagged as regressions: %+v", regs)
	}
}

// TestComparatorImprovementNotRegression: a significant speedup is
// significant but never a regression.
func TestComparatorImprovementNotRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	name := CellName("m", "csr-du", 4)
	old := []Record{synth(name, rng, 1e-3, 0.01, 10)}
	cur := []Record{synth(name, rng, 0.8e-3, 0.01, 10)}
	results, err := Compare(old, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Significant || results[0].Regression {
		t.Errorf("20%% speedup: %+v", results[0])
	}
}

// TestComparatorCIFallback: single-sample records use the interval
// heuristic — a big shift is caught, a sub-percent one is not.
func TestComparatorCIFallback(t *testing.T) {
	name := CellName("m", "csr", 1)
	one := func(mean float64) Record {
		return Record{Name: name, Scale: 1, Samples: 1, MeanSecs: mean}
	}
	results, err := Compare([]Record{one(1e-3)}, []Record{one(1.2e-3)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := results[0]; r.Method != "ci" || !r.Significant || !r.Regression {
		t.Errorf("single-sample 20%% slowdown: %+v", r)
	}
	results, err = Compare([]Record{one(1e-3)}, []Record{one(1.005e-3)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := results[0]; r.Significant {
		t.Errorf("0.5%% shift inside the 1%% interval flagged: %+v", r)
	}
}

// TestCompareGuards: scale mismatches error, unmatched cells skip,
// threshold is honored.
func TestCompareGuards(t *testing.T) {
	a := Record{Name: "x/csr/t1", Scale: 1, Samples: 1, MeanSecs: 1}
	b := a
	b.Scale = 0.5
	if _, err := Compare([]Record{a}, []Record{b}, Options{}); err == nil {
		t.Error("scale mismatch not rejected")
	}
	results, err := Compare([]Record{a}, []Record{{Name: "y/csr/t1", Scale: 1, Samples: 1, MeanSecs: 2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("unmatched cell compared: %+v", results)
	}
	// 15% slowdown with a 25% threshold: significant, not a regression.
	rng := rand.New(rand.NewSource(9))
	old := []Record{synth("m/csr/t1", rng, 1e-3, 0.01, 10)}
	cur := []Record{synth("m/csr/t1", rng, 1.15e-3, 0.01, 10)}
	results, err = Compare(old, cur, Options{Slowdown: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if r := results[0]; !r.Significant || r.Regression {
		t.Errorf("threshold not honored: %+v", r)
	}
}

func TestTCritical(t *testing.T) {
	for _, tc := range []struct{ df, lo, hi float64 }{
		{1, 12.7, 12.71}, {5, 2.57, 2.58}, {13, 2.145, 2.179}, {1000, 1.95, 1.97},
	} {
		got := tCritical(tc.df)
		if got < tc.lo || got > tc.hi {
			t.Errorf("tCritical(%v) = %v, want in [%v,%v]", tc.df, got, tc.lo, tc.hi)
		}
	}
}

// TestArchiveRoundTrip: Write then Load preserves records; schema and
// host conventions hold.
func TestArchiveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := DefaultPath(dir, "test host!")
	if base := filepath.Base(path); base != "BENCH_test-host-.json" {
		t.Errorf("DefaultPath sanitized to %q", base)
	}
	f := &File{
		Host: "testhost", GitSHA: "abc123", Date: "2026-08-05",
		Records: []Record{
			{Name: "b/csr/t2", Matrix: "b", Format: "csr", Threads: 2, Scale: 0.25,
				Iters: 10, Samples: 5, MeanSecs: 2e-3, StddevSecs: 1e-5,
				BytesPerIter: 1 << 20, GBps: 0.5},
			{Name: "a/csr/t1", Matrix: "a", Format: "csr", Threads: 1, Scale: 0.25,
				Iters: 10, Samples: 5, MeanSecs: 1e-3, StddevSecs: 1e-5},
		},
	}
	if err := Write(path, f); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Host != "testhost" || len(back.Records) != 2 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	if back.Records[0].Name != "a/csr/t1" {
		t.Errorf("records not sorted by name: %v", back.Records[0].Name)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load of missing file succeeded")
	}
}

func TestPrintVerdicts(t *testing.T) {
	var sb strings.Builder
	err := Print(&sb, []Result{
		{Name: "a", OldMean: 1, NewMean: 1.2, Delta: 0.2, Method: "welch", Significant: true, Regression: true},
		{Name: "b", OldMean: 1, NewMean: 0.8, Delta: -0.2, Method: "welch", Significant: true},
		{Name: "c", OldMean: 1, NewMean: 1.001, Delta: 0.001, Method: "ci"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"REGRESSION", "improved", "~"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing verdict %q in:\n%s", want, out)
		}
	}
}
