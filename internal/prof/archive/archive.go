// Package archive is the longitudinal leg of the profiling subsystem:
// benchmark results persisted as BENCH_<host>.json records and a
// benchstat-style statistical comparator over them. A timing without
// repetition and a significance test is an anecdote (Schubert et al.'s
// point about SpMV measurement); the archive stores mean, stddev and
// sample count per cell so a later run — same host, different commit —
// can be compared with Welch's t-test instead of eyeballing.
package archive

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Schema is the current archive file schema version.
const Schema = 1

// Record is one benchmark cell: a (matrix, format, threads)
// configuration measured over Samples repetitions.
type Record struct {
	// Name is the cell key "<matrix>/<format>/t<threads>"; comparisons
	// match records by it.
	Name    string `json:"name"`
	Matrix  string `json:"matrix"`
	Format  string `json:"format"`
	Threads int    `json:"threads"`
	// Scale is the suite size multiplier of the run; comparing runs at
	// different scales is meaningless, so Compare refuses mismatches.
	Scale float64 `json:"scale"`
	// Iters is the timed iterations behind each sample; Samples the
	// number of repeated measurements summarized by Mean/Stddev.
	Iters   int `json:"iters"`
	Samples int `json:"samples"`
	// MeanSecs and StddevSecs summarize seconds per iteration across
	// samples (sample stddev, n-1 denominator; 0 when Samples < 2).
	MeanSecs   float64 `json:"mean_secs_per_iter"`
	StddevSecs float64 `json:"stddev_secs_per_iter"`
	// BytesPerIter is the §II-B traffic model; GBps the effective
	// bandwidth at MeanSecs.
	BytesPerIter int64   `json:"bytes_per_iter,omitempty"`
	GBps         float64 `json:"gbps,omitempty"`
}

// CellName builds a Record's Name from its coordinates.
func CellName(matrix, format string, threads int) string {
	return fmt.Sprintf("%s/%s/t%d", matrix, format, threads)
}

// File is the persisted archive document.
type File struct {
	Schema int `json:"schema"`
	// Host, GoOS, GoArch identify where the numbers were taken; a
	// cross-host comparison is flagged, not silently performed.
	Host   string `json:"host"`
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	// GitSHA and Date identify when.
	GitSHA  string   `json:"git_sha,omitempty"`
	Date    string   `json:"date,omitempty"`
	Records []Record `json:"records"`
}

// DefaultPath returns the conventional archive path for a host inside
// dir: BENCH_<host>.json (an unknown host becomes "unknown").
func DefaultPath(dir, host string) string {
	host = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, host)
	if host == "" {
		host = "unknown"
	}
	return filepath.Join(dir, "BENCH_"+host+".json")
}

// Load reads and validates an archive file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("archive: %s: unsupported schema %d (want %d)", path, f.Schema, Schema)
	}
	return &f, nil
}

// Write persists the archive as indented JSON, sorted by record name
// so diffs of committed archives stay readable.
func Write(path string, f *File) error {
	f.Schema = Schema
	sort.Slice(f.Records, func(i, j int) bool { return f.Records[i].Name < f.Records[j].Name })
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}
