package archive

import (
	"fmt"
	"io"
	"math"
	"sort"

	"spmv/internal/core"
)

// Result is the comparison of one benchmark cell across two archives.
type Result struct {
	Name string `json:"name"`
	// OldMean and NewMean are seconds per iteration; Delta is
	// (new-old)/old, positive = slower.
	OldMean float64 `json:"old_mean_secs"`
	NewMean float64 `json:"new_mean_secs"`
	Delta   float64 `json:"delta"`
	// Method is "welch" when both sides had >= 2 samples with spread,
	// "ci" for the overlapping-interval fallback.
	Method string `json:"method"`
	// T and DF are the Welch statistic and degrees of freedom (welch
	// method only).
	T  float64 `json:"t,omitempty"`
	DF float64 `json:"df,omitempty"`
	// Significant reports a statistically distinguishable change;
	// Regression additionally requires the slowdown to exceed the
	// caller's threshold.
	Significant bool `json:"significant"`
	Regression  bool `json:"regression"`
}

// Options configure Compare. The zero value uses the defaults.
type Options struct {
	// Slowdown is the relative slowdown a significant change must
	// exceed to count as a regression; 0 means the default of 0.10
	// (the CI gate's ">10% slower" rule).
	Slowdown float64
}

func (o Options) withDefaults() Options {
	if core.IsZero(o.Slowdown) {
		o.Slowdown = 0.10
	}
	return o
}

// Compare matches old and new records by Name and tests each pair for
// a statistically significant timing change: Welch's t-test at α=0.05
// when both sides carry sample spread, an overlapping-interval
// heuristic otherwise. Cells present on only one side are skipped —
// a new benchmark is not a regression. Records measured at different
// scales error out rather than comparing apples to oranges.
func Compare(old, cur []Record, o Options) ([]Result, error) {
	o = o.withDefaults()
	byName := make(map[string]Record, len(old))
	for _, r := range old {
		byName[r.Name] = r
	}
	var out []Result
	for _, n := range cur {
		p, ok := byName[n.Name]
		if !ok {
			continue
		}
		if math.Abs(p.Scale-n.Scale) > 1e-12 {
			return nil, fmt.Errorf("archive: %s: scale changed %g -> %g; rebuild the baseline",
				n.Name, p.Scale, n.Scale)
		}
		r := compareCell(p, n)
		r.Regression = r.Significant && r.Delta > o.Slowdown
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// compareCell tests one matched pair.
func compareCell(old, cur Record) Result {
	r := Result{Name: cur.Name, OldMean: old.MeanSecs, NewMean: cur.MeanSecs}
	if old.MeanSecs > 0 {
		r.Delta = (cur.MeanSecs - old.MeanSecs) / old.MeanSecs
	}
	if old.Samples >= 2 && cur.Samples >= 2 && old.StddevSecs > 0 && cur.StddevSecs > 0 {
		r.Method = "welch"
		r.T, r.DF = welch(old, cur)
		r.Significant = math.Abs(r.T) > tCritical(r.DF)
		return r
	}
	// Fallback: treat each mean as the center of an interval of
	// half-width max(2s/sqrt(n), 1% of mean) and call the change
	// significant only when the intervals do not overlap. With a
	// single sample (or zero spread) this is the honest "clearly
	// outside noise" test benchstat falls back to.
	r.Method = "ci"
	r.Significant = math.Abs(cur.MeanSecs-old.MeanSecs) > halfWidth(old)+halfWidth(cur)
	return r
}

func halfWidth(rec Record) float64 {
	hw := 0.01 * rec.MeanSecs
	if rec.Samples >= 2 && rec.StddevSecs > 0 {
		if s := 2 * rec.StddevSecs / math.Sqrt(float64(rec.Samples)); s > hw {
			hw = s
		}
	}
	return hw
}

// welch computes the Welch t statistic and the Welch–Satterthwaite
// degrees of freedom for two summarized samples.
func welch(a, b Record) (t, df float64) {
	va := a.StddevSecs * a.StddevSecs / float64(a.Samples)
	vb := b.StddevSecs * b.StddevSecs / float64(b.Samples)
	se := math.Sqrt(va + vb)
	if se <= 0 {
		return 0, 1
	}
	t = (b.MeanSecs - a.MeanSecs) / se
	num := (va + vb) * (va + vb)
	den := va*va/float64(a.Samples-1) + vb*vb/float64(b.Samples-1)
	if den <= 0 {
		return t, 1
	}
	return t, num / den
}

// tTable holds two-sided α=0.05 critical values of Student's t.
var tTable = []struct{ df, t float64 }{
	{1, 12.706}, {2, 4.303}, {3, 3.182}, {4, 2.776}, {5, 2.571},
	{6, 2.447}, {7, 2.365}, {8, 2.306}, {9, 2.262}, {10, 2.228},
	{12, 2.179}, {14, 2.145}, {16, 2.120}, {18, 2.101}, {20, 2.086},
	{25, 2.060}, {30, 2.042}, {40, 2.021}, {60, 2.000}, {120, 1.980},
}

// tCritical interpolates the α=0.05 two-sided critical value for the
// given degrees of freedom, approaching the normal 1.96 above df=120.
func tCritical(df float64) float64 {
	if df <= tTable[0].df {
		return tTable[0].t
	}
	for i := 1; i < len(tTable); i++ {
		if df <= tTable[i].df {
			lo, hi := tTable[i-1], tTable[i]
			frac := (df - lo.df) / (hi.df - lo.df)
			return lo.t + frac*(hi.t-lo.t)
		}
	}
	return 1.96
}

// Regressions filters the results down to flagged regressions.
func Regressions(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Regression {
			out = append(out, r)
		}
	}
	return out
}

// Print renders the comparison as a benchstat-style table.
func Print(w io.Writer, results []Result) error {
	if _, err := fmt.Fprintf(w, "%-40s %12s %12s %8s  %s\n",
		"benchmark", "old s/iter", "new s/iter", "delta", "verdict"); err != nil {
		return err
	}
	for _, r := range results {
		verdict := "~"
		switch {
		case r.Regression:
			verdict = "REGRESSION"
		case r.Significant && r.Delta < 0:
			verdict = "improved"
		case r.Significant:
			verdict = "slower"
		}
		if _, err := fmt.Fprintf(w, "%-40s %12.4g %12.4g %+7.1f%%  %s (%s)\n",
			r.Name, r.OldMean, r.NewMean, r.Delta*100, verdict, r.Method); err != nil {
			return err
		}
	}
	return nil
}
