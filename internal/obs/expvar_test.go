package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"testing"
)

// expvarName returns a registry-unique name; the expvar registry is
// process-global, so every test (and every -count=N rerun) needs its
// own. Shares the sequence counter with obs_test.go.
func expvarName() string {
	return fmt.Sprintf("obs-expvar-test-%d", expvarTestSeq.Add(1))
}

// readSnapshot fetches a published var and decodes it back into a
// Snapshot — the same round trip a /debug/vars scraper performs.
func readSnapshot(t *testing.T, name string) Snapshot {
	t.Helper()
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not found", name)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar %q output is not valid JSON: %v", name, err)
	}
	return snap
}

// TestPublishExpvarLiveUpdates: the published var is a live view of the
// recorder, not a copy — each read reflects all runs completed so far.
func TestPublishExpvarLiveUpdates(t *testing.T) {
	name := expvarName()
	r := NewRecorder()
	if err := PublishExpvar(name, r); err != nil {
		t.Fatal(err)
	}

	if snap := readSnapshot(t, name); snap.Runs != 0 {
		t.Errorf("fresh recorder reports %d runs", snap.Runs)
	}

	r.RunDone(sampleRun())
	r.RunDone(sampleRun())
	snap := readSnapshot(t, name)
	if snap.Runs != 2 {
		t.Errorf("after two runs: snapshot runs = %d", snap.Runs)
	}
	if snap.Vectors != 2 {
		t.Errorf("after two scalar runs: vectors = %d", snap.Vectors)
	}
	if len(snap.Last.Chunks) != 2 {
		t.Errorf("last run chunks = %d, want 2", len(snap.Last.Chunks))
	}

	r.RunDone(sampleRun())
	if snap := readSnapshot(t, name); snap.Runs != 3 {
		t.Errorf("third run not visible: runs = %d", snap.Runs)
	}

	// Reset propagates too: the var tracks the recorder's state.
	r.Reset()
	if snap := readSnapshot(t, name); snap.Runs != 0 || snap.Vectors != 0 {
		t.Errorf("reset not visible through expvar: %+v", snap)
	}
}

// TestPublishExpvarSnapshotFields: the JSON a scraper sees carries the
// derived statistics, not just counters.
func TestPublishExpvarSnapshotFields(t *testing.T) {
	name := expvarName()
	r := NewRecorder()
	r.RunDone(sampleRun())
	if err := PublishExpvar(name, r); err != nil {
		t.Fatal(err)
	}
	snap := readSnapshot(t, name)
	// sampleRun: busy 1ms/3ms → imbalance 1.5; wall 4ms.
	if snap.MeanTimeImbalance < 1.49 || snap.MeanTimeImbalance > 1.51 {
		t.Errorf("mean time imbalance = %v, want 1.5", snap.MeanTimeImbalance)
	}
	if snap.Last.Partition != "row" {
		t.Errorf("last partition = %q", snap.Last.Partition)
	}
	if snap.Last.Wall <= 0 {
		t.Errorf("last wall = %v", snap.Last.Wall)
	}
}
