package obs

import (
	"sync"
	"time"
)

// Recorder is the standard Collector: it accumulates run counts, wall
// and busy time, and imbalance statistics, and keeps a copy of the most
// recent RunStat. It is safe for concurrent use — executors report from
// their Run goroutines while an expvar endpoint or a progress printer
// reads a Snapshot.
type Recorder struct {
	mu sync.Mutex

	runs      int
	vectors   int
	wall      time.Duration
	busy      time.Duration
	sumTimeIm float64
	maxTimeIm float64
	last      RunStat
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// RunDone implements Collector.
func (r *Recorder) RunDone(s *RunStat) {
	im := s.TimeImbalance()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs++
	if s.Vectors > 1 {
		r.vectors += s.Vectors
	} else {
		r.vectors++ // legacy producers leave Vectors zero
	}
	r.wall += s.Wall
	r.busy += s.Busy()
	r.sumTimeIm += im
	if im > r.maxTimeIm {
		r.maxTimeIm = im
	}
	r.last = RunStat{Partition: s.Partition, Vectors: s.Vectors, Wall: s.Wall,
		Steals: s.Steals, Err: s.Err,
		Chunks: append([]ChunkStat(nil), s.Chunks...)}
}

// Snapshot is a point-in-time summary of a Recorder.
type Snapshot struct {
	// Runs is the number of completed Run calls observed.
	Runs int `json:"runs"`
	// Vectors is the total number of result vectors those runs
	// produced: a scalar Run adds 1, a RunBatch adds its panel width.
	// Wall/Vectors is the mean seconds per result vector — the honest
	// denominator when batched and scalar runs are mixed.
	Vectors int `json:"vectors"`
	// Wall is the summed wall time of those runs; Wall/Runs is the
	// mean seconds per SpMV as the executor saw it.
	Wall time.Duration `json:"wall_ns"`
	// Busy is the summed worker busy time across all runs.
	Busy time.Duration `json:"busy_ns"`
	// MeanTimeImbalance and MaxTimeImbalance summarize the measured
	// per-run load imbalance (1.0 = perfect).
	MeanTimeImbalance float64 `json:"mean_time_imbalance"`
	MaxTimeImbalance  float64 `json:"max_time_imbalance"`
	// Last is the most recent run's full telemetry (per-chunk times).
	Last RunStat `json:"last"`
}

// Snapshot returns a consistent copy of the accumulated statistics.
func (r *Recorder) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Runs: r.runs, Vectors: r.vectors, Wall: r.wall, Busy: r.busy,
		MaxTimeImbalance: r.maxTimeIm,
		Last: RunStat{Partition: r.last.Partition, Vectors: r.last.Vectors,
			Wall: r.last.Wall, Steals: r.last.Steals, Err: r.last.Err,
			Chunks: append([]ChunkStat(nil), r.last.Chunks...)},
	}
	if r.runs > 0 {
		s.MeanTimeImbalance = r.sumTimeIm / float64(r.runs)
	}
	return s
}

// Runs returns the number of completed runs observed so far.
func (r *Recorder) Runs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}

// Reset clears the accumulated statistics.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs, r.vectors, r.wall, r.busy = 0, 0, 0, 0
	r.sumTimeIm, r.maxTimeIm = 0, 0
	r.last = RunStat{}
}

// SecsPerRun returns the mean wall seconds per observed run, 0 when
// nothing has been recorded.
func (r *Recorder) SecsPerRun() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.runs == 0 {
		return 0
	}
	return r.wall.Seconds() / float64(r.runs)
}
