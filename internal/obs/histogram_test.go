package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHistogramBucketGeometry(t *testing.T) {
	// Exact unit buckets below histSubCount.
	for v := int64(0); v < histSubCount; v++ {
		if got := histBucketIndex(v); got != int(v) {
			t.Fatalf("bucket(%d) = %d, want %d", v, got, v)
		}
		if got := histBucketUpper(int(v)); got != v {
			t.Fatalf("upper(%d) = %d, want %d", v, got, v)
		}
	}
	// Every value must land in a bucket whose range contains it, and
	// bucket indices must be monotone in the value.
	prev := -1
	for _, v := range []int64{15, 16, 17, 31, 32, 33, 100, 1000, 1 << 20,
		(1 << 20) + 12345, 1 << 40, math.MaxInt64} {
		i := histBucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucket(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("bucket index not monotone at %d", v)
		}
		prev = i
		upper := histBucketUpper(i)
		if v > upper {
			t.Fatalf("value %d above its bucket upper edge %d (bucket %d)", v, upper, i)
		}
		if i > 0 && v <= histBucketUpper(i-1) {
			t.Fatalf("value %d at or below previous bucket's edge %d", v, histBucketUpper(i-1))
		}
		// Relative quantization error bound: 1/16.
		if v >= histSubCount {
			if rel := float64(upper-v) / float64(v); rel > 1.0/histSubCount {
				t.Fatalf("value %d: upper edge %d overshoots by %.4f > 1/16", v, upper, rel)
			}
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform spread across six decades, like latencies.
		v := int64(math.Exp(rng.Float64() * math.Log(1e9)))
		vals[i] = v
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if h.Count() != int64(n) {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %d, want %d", h.Sum(), sum)
	}
	if h.Min() != vals[0] || h.Max() != vals[n-1] {
		t.Fatalf("Min/Max = %d/%d, want %d/%d", h.Min(), h.Max(), vals[0], vals[n-1])
	}
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0} {
		got := h.Quantile(q)
		exact := vals[int(math.Ceil(q*float64(n)))-1]
		// Bucket-edge estimates are >= the true order statistic and
		// overshoot by at most 1/16 relative (7% leaves slack).
		if got < exact {
			t.Errorf("q=%v: estimate %d below exact %d", q, got, exact)
		}
		if exact >= histSubCount {
			if rel := float64(got-exact) / float64(exact); rel > 0.07 {
				t.Errorf("q=%v: estimate %d overshoots exact %d by %.4f", q, got, exact, rel)
			}
		} else if got != exact {
			t.Errorf("q=%v: small-value estimate %d != exact %d", q, got, exact)
		}
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 10; v++ {
		h.Record(v)
	}
	for _, q := range []float64{0.1, 0.5, 1.0} {
		exact := int64(math.Ceil(q*10)) - 1
		if got := h.Quantile(q); got != exact {
			t.Errorf("Quantile(%v) = %d, want exact %d", q, got, exact)
		}
	}
	h.Record(-5) // clamps to 0
	if h.Min() != 0 {
		t.Errorf("negative record: Min = %d", h.Min())
	}
	if h.Count() != 11 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zeroed: %+v", h.SnapshotHist())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %d", got)
	}
	snap := h.SnapshotHist()
	if snap.Count != 0 || snap.P99Ns != 0 {
		t.Fatalf("empty snapshot: %+v", snap)
	}
}

func fillHistogram(seed int64, n int) *Histogram {
	rng := rand.New(rand.NewSource(seed))
	h := NewHistogram()
	for i := 0; i < n; i++ {
		h.Record(int64(rng.Intn(1 << 30)))
	}
	return h
}

func TestHistogramMergeAssociativity(t *testing.T) {
	mk := func() (*Histogram, *Histogram, *Histogram) {
		return fillHistogram(1, 500), fillHistogram(2, 700), fillHistogram(3, 300)
	}

	// (a+b)+c
	a1, b1, c1 := mk()
	a1.Merge(b1)
	a1.Merge(c1)
	// a+(b+c)
	a2, b2, c2 := mk()
	b2.Merge(c2)
	a2.Merge(b2)

	if a1.Count() != a2.Count() || a1.Sum() != a2.Sum() ||
		a1.Min() != a2.Min() || a1.Max() != a2.Max() {
		t.Fatalf("merge groupings differ: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			a1.Count(), a1.Sum(), a1.Min(), a1.Max(),
			a2.Count(), a2.Sum(), a2.Min(), a2.Max())
	}
	for i := 0; i < histBuckets; i++ {
		if a1.counts[i].Load() != a2.counts[i].Load() {
			t.Fatalf("bucket %d differs: %d vs %d", i, a1.counts[i].Load(), a2.counts[i].Load())
		}
	}
	// Merging nil and empty is a no-op.
	before := a1.Count()
	a1.Merge(nil)
	a1.Merge(NewHistogram())
	if a1.Count() != before {
		t.Fatalf("nil/empty merge changed count")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Record(int64(rng.Intn(1 << 24)))
			}
		}(int64(w))
	}
	// Concurrent readers exercise the lock-free read paths under -race.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Quantile(0.99)
			_ = h.SnapshotHist()
			_ = h.CumulativeLE([]int64{1000, 1 << 20})
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("Count = %d, want %d (lost updates)", got, workers*perWorker)
	}
	var buckets int64
	for i := 0; i < histBuckets; i++ {
		buckets += h.counts[i].Load()
	}
	if buckets != workers*perWorker {
		t.Fatalf("bucket total = %d, want %d", buckets, workers*perWorker)
	}
	if h.Max() >= 1<<24 || h.Min() < 0 {
		t.Fatalf("Min/Max out of range: %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramCumulativeLE(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 5, 5, 100, 1000, 1 << 20} {
		h.Record(v)
	}
	bounds := []int64{0, 5, 50, 2000, math.MaxInt64}
	got := h.CumulativeLE(bounds)
	want := []int64{0, 3, 3, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CumulativeLE(%v) = %v, want %v", bounds, got, want)
		}
	}
	// Cumulative counts must be non-decreasing and end at Count for a
	// +Inf-like bound — the Prometheus histogram invariant.
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("cumulative counts decrease: %v", got)
		}
	}
	if got[len(got)-1] != h.Count() {
		t.Fatalf("final bound %d != Count %d", got[len(got)-1], h.Count())
	}
	if out := h.CumulativeLE(nil); len(out) != 0 {
		t.Fatalf("nil bounds: %v", out)
	}
}

func TestHistogramSnapshotOrdering(t *testing.T) {
	h := fillHistogram(7, 2000)
	s := h.SnapshotHist()
	if !(s.MinNs <= s.P50Ns && s.P50Ns <= s.P90Ns && s.P90Ns <= s.P99Ns && s.P99Ns <= s.MaxNs) {
		t.Fatalf("snapshot quantiles out of order: %+v", s)
	}
	if s.Count != 2000 {
		t.Fatalf("snapshot count %d", s.Count)
	}
}
