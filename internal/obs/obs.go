// Package obs is the runtime observability layer of the multithreaded
// SpMV runtime: per-chunk wall time, per-run load imbalance, and the
// bytes-moved accounting that turns "seconds per SpMV" into effective
// memory bandwidth.
//
// The paper's central claim (§II, §VI) is that SpMV is bandwidth-bound
// and compression wins by shrinking the stream; end-to-end seconds can
// only support that claim indirectly. This package makes it directly
// measurable: each parallel executor reports what every worker did on
// every Run through a Collector hook, and the bandwidth helpers convert
// a timing plus a Format's working set into effective GB/s per
// format/thread-count.
//
// Instrumentation is nil-check cheap: an executor with no Collector
// attached pays one nil check per Run and one per chunk dispatch —
// no timestamps, no allocation — so the hot kernels stay exactly as
// the spmvlint BCE/escape gate baselines them.
package obs

import (
	"math"
	"time"

	"spmv/internal/core"
	"spmv/internal/partition"
)

// ChunkStat is one worker's share of one Run: the slice of the matrix
// it owned and how long its kernel (and, for the reducing executors,
// its reduction phase) kept it busy.
type ChunkStat struct {
	// Worker is the worker index within the executor, [0, Threads).
	Worker int `json:"worker"`
	// Lo and Hi are the half-open index range the worker owned: rows
	// for the row- and block-partitioned executors, columns for the
	// column-partitioned one.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// NNZ is the worker's non-zero count — its static load-balance
	// weight (§II-C assigns approximately equal non-zeros per thread).
	NNZ int `json:"nnz"`
	// Busy is the time the worker spent executing its jobs during the
	// Run: the kernel for row partitioning, kernel plus reduction for
	// the column- and block-partitioned executors.
	Busy time.Duration `json:"busy_ns"`
	// Steals is the number of chunks this worker executed that were
	// originally assigned to another worker's queue. Always zero
	// outside the work-stealing executor.
	Steals int `json:"steals,omitempty"`
}

// RunStat is the telemetry of one Executor.Run or RunBatch call.
type RunStat struct {
	// Partition names the execution scheme: "row", "col", "block",
	// "nnz", "steal" or "sym".
	Partition string `json:"partition"`
	// Vectors is the number of right-hand-side vectors the run computed:
	// 1 for Run, the panel width k for RunBatch. Bandwidth accounting
	// must divide by it — a batched run moves the matrix stream once for
	// Vectors results.
	Vectors int `json:"vectors"`
	// Wall is the caller-observed duration of the whole Run, including
	// dispatch and barriers.
	Wall time.Duration `json:"wall_ns"`
	// Steals is the total number of stolen chunk executions across
	// workers (see ChunkStat.Steals). Zero for static schedules.
	Steals int `json:"steals,omitempty"`
	// Err records the run's error, if any, so sinks that archive
	// RunStats retain failed runs distinguishably. Empty on success.
	Err string `json:"err,omitempty"`
	// Chunks has one entry per worker, indexed by worker.
	Chunks []ChunkStat `json:"chunks"`
}

// Threads returns the worker count of the run.
func (s *RunStat) Threads() int { return len(s.Chunks) }

// Busy returns the summed busy time across workers. Wall*Threads -
// Busy is time lost to dispatch, barriers and imbalance.
func (s *RunStat) Busy() time.Duration {
	var total time.Duration
	for i := range s.Chunks {
		total += s.Chunks[i].Busy
	}
	return total
}

// TimeImbalance is the measured load imbalance of the run:
// max(worker busy) / mean(worker busy), computed with
// partition.Imbalance over the per-worker busy times. 1.0 means all
// workers finished together; the parallel region's wall time is bounded
// below by mean*imbalance.
func (s *RunStat) TimeImbalance() float64 {
	return s.imbalance(func(c *ChunkStat) int64 { return int64(c.Busy) })
}

// NNZImbalance is the static load imbalance the partitioner accepted:
// max(worker nnz) / mean(worker nnz). The nnz-balanced splitters keep
// this near 1; a gap between NNZImbalance and TimeImbalance means
// non-zeros are not costing uniformly (cache effects, decode-width
// skew).
func (s *RunStat) NNZImbalance() float64 {
	return s.imbalance(func(c *ChunkStat) int64 { return int64(c.NNZ) })
}

// imbalance evaluates partition.Imbalance with one part per worker and
// the given per-worker weight.
func (s *RunStat) imbalance(weight func(*ChunkStat) int64) float64 {
	n := len(s.Chunks)
	if n == 0 {
		return 1
	}
	prefix := make([]int64, n+1)
	for i := range s.Chunks {
		prefix[i+1] = prefix[i] + weight(&s.Chunks[i])
	}
	return partition.Imbalance(prefix, partition.Even(n, n))
}

// Collector receives executor telemetry. Attach one to an executor
// with SetCollector; the executor invokes RunDone once per completed
// Run, from the goroutine that called Run, after all workers have
// finished (so reading the RunStat is race-free). The RunStat and its
// Chunks slice are owned by the callee and remain valid after RunDone
// returns.
//
// Implementations that are shared across executors or inspected
// concurrently (expvar, a debug endpoint) must synchronize internally;
// Recorder does.
type Collector interface {
	RunDone(s *RunStat)
}

// Tee fans each RunStat out to every non-nil collector. It returns nil
// when no collectors remain (so callers can pass the result straight to
// SetCollector and keep the zero-cost disabled path), and the sole
// collector unwrapped when only one remains.
func Tee(cs ...Collector) Collector {
	var keep []Collector
	for _, c := range cs {
		if c != nil {
			keep = append(keep, c)
		}
	}
	switch len(keep) {
	case 0:
		return nil
	case 1:
		return keep[0]
	}
	return tee(keep)
}

type tee []Collector

func (t tee) RunDone(s *RunStat) {
	for _, c := range t {
		c.RunDone(s)
	}
}

// BytesPerSpMV estimates the memory traffic of one y = A*x with a cold
// cache: the matrix's encoded bytes are streamed once, x is read and y
// written once. This is the paper's working-set model (§II-B) applied
// per iteration — the quantity compression shrinks — and the numerator
// of the effective-bandwidth metric.
func BytesPerSpMV(f core.Format) int64 {
	return core.WorkingSetOf(f)
}

// BytesPerSpMM estimates the memory traffic of one batched Y = A*X
// over k right-hand sides with a cold cache: the matrix stream is read
// once — that is the point of batching — while the panels contribute k
// vectors' worth of reads and writes.
func BytesPerSpMM(f core.Format, k int) int64 {
	if k < 1 {
		k = 1
	}
	return f.SizeBytes() + int64(k)*core.VectorBytes(f.Rows(), f.Cols(), core.ValSize)
}

// BytesPerVector is the per-result-vector traffic of one batched
// multiplication: BytesPerSpMM(f, k)/k. At k=1 it equals BytesPerSpMV;
// as k grows it falls toward the irreducible vector traffic, which is
// the honest denominator for GB/s-per-vector comparisons across k.
func BytesPerVector(f core.Format, k int) float64 {
	if k < 1 {
		k = 1
	}
	return float64(BytesPerSpMM(f, k)) / float64(k)
}

// GBps converts a per-iteration byte estimate and a seconds-per-
// iteration timing into effective bandwidth in GB/s (10^9 bytes per
// second). It returns 0 for non-positive, NaN, or infinite timings,
// and for timings so small the division overflows: callers embed the
// result in JSON metric reports, whose encoder rejects non-finite
// floats outright.
func GBps(bytesPerIter int64, secsPerIter float64) float64 {
	if secsPerIter <= 0 || math.IsNaN(secsPerIter) || math.IsInf(secsPerIter, 0) {
		return 0
	}
	g := float64(bytesPerIter) / secsPerIter / 1e9
	if math.IsInf(g, 0) || math.IsNaN(g) {
		return 0
	}
	return g
}
