package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func sampleRun() *RunStat {
	return &RunStat{
		Partition: "row",
		Wall:      4 * time.Millisecond,
		Chunks: []ChunkStat{
			{Worker: 0, Lo: 0, Hi: 10, NNZ: 100, Busy: 1 * time.Millisecond},
			{Worker: 1, Lo: 10, Hi: 20, NNZ: 100, Busy: 3 * time.Millisecond},
		},
	}
}

func TestRunStatImbalance(t *testing.T) {
	s := sampleRun()
	// Busy: 1ms and 3ms → mean 2ms, max 3ms → imbalance 1.5.
	if got := s.TimeImbalance(); !closeTo(got, 1.5, 1e-12) {
		t.Errorf("TimeImbalance = %v, want 1.5", got)
	}
	// NNZ is perfectly balanced.
	if got := s.NNZImbalance(); !closeTo(got, 1.0, 1e-12) {
		t.Errorf("NNZImbalance = %v, want 1.0", got)
	}
	if got := s.Busy(); got != 4*time.Millisecond {
		t.Errorf("Busy = %v, want 4ms", got)
	}
	if s.Threads() != 2 {
		t.Errorf("Threads = %d, want 2", s.Threads())
	}
}

func TestRunStatImbalanceEmpty(t *testing.T) {
	s := &RunStat{}
	if got := s.TimeImbalance(); got != 1 {
		t.Errorf("empty TimeImbalance = %v, want 1", got)
	}
	// All-zero busy times (a run faster than the clock resolution) must
	// not divide by zero.
	s.Chunks = []ChunkStat{{}, {}}
	if got := s.TimeImbalance(); got != 1 {
		t.Errorf("zero-busy TimeImbalance = %v, want 1", got)
	}
}

func TestRecorderAccumulates(t *testing.T) {
	r := NewRecorder()
	if r.Runs() != 0 || r.SecsPerRun() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.RunDone(sampleRun())
	r.RunDone(sampleRun())
	snap := r.Snapshot()
	if snap.Runs != 2 {
		t.Errorf("Runs = %d, want 2", snap.Runs)
	}
	if snap.Wall != 8*time.Millisecond {
		t.Errorf("Wall = %v, want 8ms", snap.Wall)
	}
	if snap.Busy != 8*time.Millisecond {
		t.Errorf("Busy = %v, want 8ms", snap.Busy)
	}
	if !closeTo(snap.MeanTimeImbalance, 1.5, 1e-12) || !closeTo(snap.MaxTimeImbalance, 1.5, 1e-12) {
		t.Errorf("imbalance mean/max = %v/%v, want 1.5/1.5", snap.MeanTimeImbalance, snap.MaxTimeImbalance)
	}
	if len(snap.Last.Chunks) != 2 || snap.Last.Partition != "row" {
		t.Errorf("Last = %+v", snap.Last)
	}
	if !closeTo(r.SecsPerRun(), 0.004, 1e-12) {
		t.Errorf("SecsPerRun = %v, want 0.004", r.SecsPerRun())
	}

	// The snapshot owns its chunk slice: mutating it must not reach the
	// recorder's copy.
	snap.Last.Chunks[0].NNZ = -1
	if r.Snapshot().Last.Chunks[0].NNZ == -1 {
		t.Error("Snapshot shares chunk storage with the recorder")
	}

	r.Reset()
	if r.Runs() != 0 {
		t.Error("Reset did not clear runs")
	}
}

// TestRecorderConcurrent exercises the locking under -race: writers
// report while readers snapshot.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.RunDone(sampleRun())
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = r.Snapshot()
				_ = r.SecsPerRun()
			}
		}()
	}
	wg.Wait()
	if r.Runs() != 400 {
		t.Errorf("Runs = %d, want 400", r.Runs())
	}
}

// fakeFormat is a minimal core.Format for byte accounting tests.
type fakeFormat struct {
	rows, cols, nnz int
	size            int64
}

func (f fakeFormat) Name() string        { return "fake" }
func (f fakeFormat) Rows() int           { return f.rows }
func (f fakeFormat) Cols() int           { return f.cols }
func (f fakeFormat) NNZ() int            { return f.nnz }
func (f fakeFormat) SizeBytes() int64    { return f.size }
func (f fakeFormat) SpMV(y, x []float64) {}

func TestBytesPerSpMV(t *testing.T) {
	f := fakeFormat{rows: 10, cols: 20, nnz: 5, size: 1000}
	// Matrix stream + one read of x (20 float64) + one write of y (10).
	want := int64(1000 + (10+20)*8)
	if got := BytesPerSpMV(f); got != want {
		t.Errorf("BytesPerSpMV = %d, want %d", got, want)
	}
}

func TestBytesPerSpMM(t *testing.T) {
	f := fakeFormat{rows: 10, cols: 20, nnz: 5, size: 1000}
	// One matrix stream plus k panels of x and y.
	for _, k := range []int{1, 4, 8} {
		want := int64(1000 + k*(10+20)*8)
		if got := BytesPerSpMM(f, k); got != want {
			t.Errorf("BytesPerSpMM(k=%d) = %d, want %d", k, got, want)
		}
	}
	// k=1 agrees with the scalar estimate, and k<1 clamps to it.
	if BytesPerSpMM(f, 1) != BytesPerSpMV(f) {
		t.Error("BytesPerSpMM(f, 1) != BytesPerSpMV(f)")
	}
	if BytesPerSpMM(f, 0) != BytesPerSpMV(f) {
		t.Error("BytesPerSpMM(f, 0) did not clamp k to 1")
	}
	// Per-vector traffic falls monotonically with k: the matrix stream
	// amortizes.
	if !(BytesPerVector(f, 8) < BytesPerVector(f, 4) &&
		BytesPerVector(f, 4) < BytesPerVector(f, 1)) {
		t.Errorf("BytesPerVector not decreasing: k1=%v k4=%v k8=%v",
			BytesPerVector(f, 1), BytesPerVector(f, 4), BytesPerVector(f, 8))
	}
}

func TestRecorderVectors(t *testing.T) {
	r := NewRecorder()
	s := sampleRun()
	r.RunDone(s) // legacy producer: Vectors zero counts as one vector
	s2 := sampleRun()
	s2.Vectors = 8
	r.RunDone(s2)
	snap := r.Snapshot()
	if snap.Vectors != 9 {
		t.Errorf("total vectors = %d, want 9", snap.Vectors)
	}
	if snap.Last.Vectors != 8 {
		t.Errorf("last vectors = %d, want 8", snap.Last.Vectors)
	}
	r.Reset()
	if r.Snapshot().Vectors != 0 {
		t.Error("Reset did not clear vector count")
	}
}

func TestGBps(t *testing.T) {
	// 1e9 bytes in 1 second is 1 GB/s.
	if got := GBps(1e9, 1.0); !closeTo(got, 1.0, 1e-12) {
		t.Errorf("GBps(1e9, 1) = %v, want 1", got)
	}
	// 300 MB in 0.1s → 3 GB/s.
	if got := GBps(300e6, 0.1); !closeTo(got, 3.0, 1e-9) {
		t.Errorf("GBps(300e6, 0.1) = %v, want 3", got)
	}
	if GBps(1e9, 0) != 0 || GBps(1e9, -1) != 0 {
		t.Error("non-positive timings must yield 0")
	}
}

// TestGBpsNonFinite: degenerate timings must never leak ±Inf or NaN
// into a result — those poison downstream JSON encoding, which rejects
// non-finite floats.
func TestGBpsNonFinite(t *testing.T) {
	// A denormal-positive timing passes a `<= 0` guard but overflows
	// the division to +Inf.
	if got := GBps(1<<40, 5e-324); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("GBps(1<<40, 5e-324) = %v, want finite", got)
	}
	if got := GBps(1e9, math.NaN()); got != 0 {
		t.Errorf("GBps(1e9, NaN) = %v, want 0", got)
	}
	if got := GBps(1e9, math.Inf(1)); got != 0 {
		t.Errorf("GBps(1e9, +Inf) = %v, want 0", got)
	}
}

// expvarTestSeq makes each TestPublishExpvar invocation pick a fresh
// name: the expvar registry is process-global and go test -count=N
// reruns tests in one process.
var expvarTestSeq atomic.Int64

func TestPublishExpvar(t *testing.T) {
	name := fmt.Sprintf("obs-test-%d", expvarTestSeq.Add(1))
	r := NewRecorder()
	r.RunDone(sampleRun())
	if err := PublishExpvar(name, r); err != nil {
		t.Fatal(err)
	}
	if err := PublishExpvar(name, NewRecorder()); err == nil {
		t.Error("duplicate publish accepted")
	}
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("published var not found")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v", err)
	}
	if snap.Runs != 1 {
		t.Errorf("expvar snapshot runs = %d, want 1", snap.Runs)
	}
}
