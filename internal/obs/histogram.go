package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: log-linear, HDR-style. Values below
// histSubCount land in exact unit buckets; above that, each power-of-
// two octave is divided into histSubCount linear sub-buckets, so the
// relative quantization error is bounded by 1/histSubCount (6.25%)
// across the full int64 range. 976 buckets cover [0, 2^63).
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	histBuckets  = (64 - histSubBits) * histSubCount
)

// Histogram is a lock-free, mergeable latency histogram. Record is a
// handful of atomic adds on preallocated counters — no allocation, no
// locks — so it is safe on the server's request path under the
// spmvlint alloc gate. Readers (quantiles, snapshots, merges) may run
// concurrently with writers; they observe some consistent-enough
// recent state, the usual monitoring contract.
//
// Values are int64 and non-negative (negatives clamp to 0); the
// natural unit here is nanoseconds, with RecordSince as the
// span-timing shorthand.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // math.MaxInt64 until the first Record
	max    atomic.Int64
	counts [histBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// histBucketIndex maps a non-negative value to its bucket.
func histBucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	exp := uint(bits.Len64(u)) - histSubBits - 1
	return int((uint64(exp)+1)<<histSubBits) + int(u>>exp) - histSubCount
}

// histBucketUpper returns the largest value a bucket holds — the
// estimate quantile reporting uses, so estimates never undershoot.
func histBucketUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	exp := uint(i/histSubCount) - 1
	m := uint64(i%histSubCount) + histSubCount
	return int64((m+1)<<exp) - 1
}

// Record adds one value. Negative values clamp to 0 (a time.Since
// can go slightly negative under clock steps; losing sign beats
// corrupting a bucket index).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histBucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordSince records the elapsed nanoseconds since t0.
func (h *Histogram) RecordSince(t0 time.Time) {
	h.Record(int64(time.Since(t0)))
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the exact sum of recorded values (not bucketized).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Min returns the smallest recorded value, 0 when empty.
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest recorded value, 0 when empty.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Merge adds o's counts into h. Merging is commutative and
// associative up to concurrent writes: merging the same set of
// histograms in any grouping yields identical bucket counts, which is
// what lets per-shard histograms roll up into one.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if om := o.min.Load(); om != math.MaxInt64 {
		for {
			cur := h.min.Load()
			if om >= cur || h.min.CompareAndSwap(cur, om) {
				break
			}
		}
	}
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded
// values: the upper edge of the bucket holding the ceil(q*count)-th
// smallest value. The estimate is >= the true order statistic and
// overshoots it by at most a factor of 1 + 1/16 (values below 16 are
// exact). Returns 0 when empty; q outside (0, 1] clamps.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			u := histBucketUpper(i)
			if m := h.max.Load(); u > m {
				// The top bucket's edge can exceed the true maximum;
				// the exact max is a better (and still >=) estimate.
				u = m
			}
			return u
		}
	}
	return h.max.Load()
}

// CumulativeLE returns, for each bound, the number of recorded values
// whose bucket upper edge is <= it — the cumulative counts a
// Prometheus-style histogram exposition needs. Bounds must be
// ascending; the returned slice has the same length. The count is
// exact whenever a bound is >= a bucket's upper edge, and otherwise
// conservatively excludes the straddling bucket.
func (h *Histogram) CumulativeLE(bounds []int64) []int64 {
	out := make([]int64, len(bounds))
	if len(bounds) == 0 {
		return out
	}
	var cum int64
	b := 0
	for i := 0; i < histBuckets && b < len(bounds); i++ {
		u := histBucketUpper(i)
		for b < len(bounds) && u > bounds[b] {
			out[b] = cum
			b++
		}
		if b >= len(bounds) {
			break
		}
		cum += h.counts[i].Load()
	}
	for ; b < len(bounds); b++ {
		out[b] = cum
	}
	return out
}

// HistogramSnapshot is a point-in-time summary for JSON metric
// documents: counts, exact sum/min/max, and estimated quantiles in
// seconds (the server's spans are recorded in nanoseconds).
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// SumNs/MinNs/MaxNs are exact; the P* quantiles are bucket-edge
	// estimates (<= 6.25% relative overshoot).
	SumNs int64 `json:"sum_ns"`
	MinNs int64 `json:"min_ns"`
	MaxNs int64 `json:"max_ns"`
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// SnapshotHist summarizes the histogram.
func (h *Histogram) SnapshotHist() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		SumNs: h.Sum(),
		MinNs: h.Min(),
		MaxNs: h.Max(),
		P50Ns: h.Quantile(0.50),
		P90Ns: h.Quantile(0.90),
		P99Ns: h.Quantile(0.99),
	}
}
