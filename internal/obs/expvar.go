package obs

import (
	"expvar"
	"fmt"
)

// PublishExpvar exposes a Recorder's Snapshot under the given expvar
// name, so a process that serves the expvar handler (cmd/spmvbench
// -debug does) reports live run counts, mean wall time and imbalance at
// /debug/vars while a benchmark or solve is in flight.
//
// expvar panics on duplicate names; like expvar.Publish this is
// intended for one-time setup from a main package. It returns an error
// instead of panicking when the name is already taken, so callers that
// may be re-invoked (tests) can handle it.
func PublishExpvar(name string, r *Recorder) error {
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return nil
}
