package analyze

import (
	"math"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csrdu"
	"spmv/internal/csrvi"
	"spmv/internal/matgen"
)

func TestAnalyzeStencil(t *testing.T) {
	n := 24
	c := matgen.Stencil2D(n)
	a := Analyze(c)
	if a.Rows != n*n || a.NNZ != c.Len() {
		t.Fatalf("shape: %+v", a)
	}
	if a.Unique != 2 || a.TTU != float64(a.NNZ)/2 {
		t.Errorf("unique=%d ttu=%v", a.Unique, a.TTU)
	}
	if a.Diagonals != 5 {
		t.Errorf("Diagonals = %d, want 5", a.Diagonals)
	}
	if a.Bandwidth != n {
		t.Errorf("Bandwidth = %d, want %d", a.Bandwidth, n)
	}
	if !a.Symmetric {
		t.Error("stencil not detected symmetric")
	}
	// Deltas within rows are 1 or n-ish: all fit u8 for n=24.
	if a.DeltaFrac[0] < 0.99 {
		t.Errorf("DeltaFrac = %v", a.DeltaFrac)
	}
}

func TestAnalyzeDeltaClasses(t *testing.T) {
	c := core.NewCOO(1, 1<<20)
	c.Add(0, 0, 1)
	c.Add(0, 10, 2)    // delta 10: u8
	c.Add(0, 1000, 3)  // delta 990: u16
	c.Add(0, 1<<19, 4) // delta ~523288: u32
	c.Finalize()
	a := Analyze(c)
	want := [4]float64{1.0 / 3, 1.0 / 3, 1.0 / 3, 0}
	for i := range want {
		if math.Abs(a.DeltaFrac[i]-want[i]) > 1e-12 {
			t.Fatalf("DeltaFrac = %v, want %v", a.DeltaFrac, want)
		}
	}
}

func TestAnalyzeEmptyAndRowStats(t *testing.T) {
	c := core.NewCOO(5, 5)
	c.Add(0, 0, 1)
	c.Add(0, 1, 1)
	c.Add(0, 2, 1)
	c.Add(4, 4, 1)
	c.Finalize()
	a := Analyze(c)
	if a.EmptyRows != 3 || a.MaxRowNNZ != 3 {
		t.Errorf("EmptyRows=%d MaxRowNNZ=%d", a.EmptyRows, a.MaxRowNNZ)
	}
	empty := core.NewCOO(3, 3)
	empty.Finalize()
	ae := Analyze(empty)
	if ae.TTU != 0 || len(ae.Recommend()) != 1 {
		t.Errorf("empty analysis: %+v", ae)
	}
}

func TestRecommendStencilPrefersCombined(t *testing.T) {
	c := matgen.Stencil2D(40)
	recs := Analyze(c).Recommend()
	if recs[0].Format != "csr-du-vi" && recs[0].Format != "cds" {
		t.Errorf("top recommendation = %+v, want csr-du-vi or cds", recs[0])
	}
	// All ratios sorted ascending.
	for i := 1; i < len(recs); i++ {
		if recs[i].Ratio < recs[i-1].Ratio {
			t.Error("recommendations not sorted")
		}
	}
	// CSR-VI must be present (ttu huge) and well under 1.
	found := false
	for _, r := range recs {
		if r.Format == "csr-vi" {
			found = true
			if r.Ratio > 0.6 {
				t.Errorf("csr-vi predicted ratio %v", r.Ratio)
			}
		}
	}
	if !found {
		t.Error("csr-vi not recommended for ttu>>5 matrix")
	}
}

func TestRecommendRandomSkipsVIAndCDS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := matgen.RandomUniform(rng, 400, 1<<20, 6, matgen.Values{})
	recs := Analyze(c).Recommend()
	for _, r := range recs {
		// ELL is fine here (uniform rows); value indexing and diagonal
		// storage are not.
		if r.Format == "csr-vi" || r.Format == "cds" {
			t.Errorf("%s recommended for scattered unique-valued matrix", r.Format)
		}
	}
	// Skewed rows must disqualify ELLPACK.
	skew := matgen.PowerLaw(rng, 2000, 4, 1.1, matgen.Values{})
	for _, r := range Analyze(skew).Recommend() {
		if r.Format == "ell" {
			t.Error("ell recommended for power-law rows")
		}
	}
}

func TestPredictionsMatchRealEncoders(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mats := map[string]*core.COO{
		"stencil":  matgen.Stencil2D(30),
		"banded-q": matgen.Banded(rng, 3000, 20, 8, matgen.Values{Unique: 32}),
		"femlike":  matgen.FEMLike(rng, 1500, 5, matgen.Values{Unique: 64}),
	}
	for name, c := range mats {
		a := Analyze(c)
		for _, r := range a.Recommend() {
			var real float64
			switch r.Format {
			case "csr-du":
				m, _ := csrdu.FromCOO(c)
				real = float64(m.SizeBytes())
			case "csr-vi":
				m, _ := csrvi.FromCOO(c)
				real = float64(m.SizeBytes())
			default:
				continue
			}
			base := float64(core.CSRBytes(a.Rows, a.NNZ, core.IdxSize, core.ValSize))
			realRatio := real / base
			if math.Abs(realRatio-r.Ratio) > 0.08 {
				t.Errorf("%s/%s: predicted ratio %.3f, real %.3f", name, r.Format, r.Ratio, realRatio)
			}
		}
	}
}

func TestSymmetryDetection(t *testing.T) {
	asym := core.NewCOO(3, 3)
	asym.Add(0, 1, 1)
	asym.Finalize()
	if Analyze(asym).Symmetric {
		t.Error("asymmetric detected symmetric")
	}
	rect := core.NewCOO(2, 3)
	rect.Add(0, 0, 1)
	rect.Finalize()
	if Analyze(rect).Symmetric {
		t.Error("rectangular detected symmetric")
	}
}

func TestPickFastestReturnsMeasurements(t *testing.T) {
	c := matgen.Stencil2D(24)
	best, timings, err := PickFastest(c, []string{"csr", "csr-du", "csr-vi"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best == "" {
		t.Fatal("no winner")
	}
	if len(timings) != 3 {
		t.Fatalf("timings = %d", len(timings))
	}
	for _, tm := range timings {
		if tm.Err == nil && (tm.PerSpMV <= 0 || tm.Size <= 0) {
			t.Errorf("%s: empty measurement %+v", tm.Format, tm)
		}
	}
}

func TestPickFastestDefaultsToRecommendations(t *testing.T) {
	c := matgen.Stencil2D(16)
	best, timings, err := PickFastest(c, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best == "" || len(timings) == 0 {
		t.Fatalf("best=%q timings=%d", best, len(timings))
	}
}

func TestPickFastestSkipsRefusingFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	skew := matgen.PowerLaw(rng, 1500, 4, 1.2, matgen.Values{})
	best, timings, err := PickFastest(skew, []string{"ell", "csr"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best != "csr" {
		t.Errorf("best = %q, want csr (ell must refuse)", best)
	}
	if timings[0].Err == nil {
		t.Error("ell should have errored on skewed matrix")
	}
}
