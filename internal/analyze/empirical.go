package analyze

import (
	"fmt"
	"time"

	"spmv/internal/core"
	"spmv/internal/formats"
)

// Timing is one measured candidate of an empirical selection.
type Timing struct {
	Format  string
	PerSpMV time.Duration
	Size    int64
	Err     error // non-nil if the format refused the matrix
}

// PickFastest builds every candidate format, times iters serial SpMV
// operations each, and returns the fastest along with all measurements
// — the empirical counterpart of Recommend, in the style of
// measurement-driven autotuners like OSKI. Formats that refuse the
// matrix (e.g. ELLPACK on skewed rows) are reported with their error
// and skipped. If candidates is nil the analytic recommendations are
// used as the candidate list.
func PickFastest(c *core.COO, candidates []string, iters int) (string, []Timing, error) {
	c.Finalize()
	if iters <= 0 {
		iters = 5
	}
	if candidates == nil {
		for _, r := range Analyze(c).Recommend() {
			candidates = append(candidates, r.Format)
		}
	}
	if len(candidates) == 0 {
		return "", nil, fmt.Errorf("analyze: no candidate formats")
	}
	x := make([]float64, c.Cols())
	y := make([]float64, c.Rows())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	best := ""
	var bestTime time.Duration
	var out []Timing
	for _, name := range candidates {
		f, err := formats.Build(name, c)
		if err != nil {
			out = append(out, Timing{Format: name, Err: err})
			continue
		}
		f.SpMV(y, x) // warm
		start := time.Now()
		for k := 0; k < iters; k++ {
			f.SpMV(y, x)
		}
		per := time.Since(start) / time.Duration(iters)
		out = append(out, Timing{Format: name, PerSpMV: per, Size: f.SizeBytes()})
		if best == "" || per < bestTime {
			best, bestTime = name, per
		}
	}
	if best == "" {
		return "", out, fmt.Errorf("analyze: every candidate format refused the matrix")
	}
	return best, out, nil
}
