// Package analyze inspects a matrix's structure through the lens of the
// paper's compression schemes — column-delta distribution (what CSR-DU
// can do), total-to-unique values ratio (what CSR-VI can do), diagonal
// and blocking structure, row-length skew — and recommends storage
// formats with predicted sizes. It is the "which format should I use"
// front door of the library, in the spirit of autotuners like OSKI but
// analytic rather than empirical.
package analyze

import (
	"fmt"
	"math"
	"sort"

	"spmv/internal/core"
)

// Analysis summarizes the format-relevant structure of a matrix.
type Analysis struct {
	Rows, Cols, NNZ int
	WS              int64   // CSR working set (§II-B)
	TTU             float64 // total-to-unique values ratio (§VI-E)
	Unique          int

	AvgRowNNZ float64
	MaxRowNNZ int
	EmptyRows int

	// DeltaFrac[c] is the fraction of within-row column deltas whose
	// narrowest width class is c (u8/u16/u32/u64). First elements of
	// rows are excluded (they are ujmp varints in CSR-DU).
	DeltaFrac [4]float64
	// UnitDeltaEq1 is the fraction of deltas equal to 1 (RLE/dense-run
	// potential).
	DeltaEq1 float64

	Bandwidth int
	Diagonals int // distinct non-zero diagonals (CDS feasibility)

	Symmetric bool // pattern-symmetric with equal values
}

// Analyze computes the Analysis of a finalized COO in O(nnz) plus a
// hash of the values.
func Analyze(c *core.COO) Analysis {
	c.Finalize()
	a := Analysis{Rows: c.Rows(), Cols: c.Cols(), NNZ: c.Len()}
	a.WS = core.WorkingSet(c.Rows(), c.Cols(), c.Len())

	unique := make(map[uint64]struct{})
	diags := make(map[int32]struct{})
	var deltas, eq1 int64
	var classCount [4]int64

	counts := c.RowCounts()
	for _, n := range counts {
		if n == 0 {
			a.EmptyRows++
		}
		if n > a.MaxRowNNZ {
			a.MaxRowNNZ = n
		}
	}
	if c.Rows() > 0 {
		a.AvgRowNNZ = float64(c.Len()) / float64(c.Rows())
	}
	prevRow, prevCol := -1, 0
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		unique[math.Float64bits(v)] = struct{}{}
		diags[int32(j-i)] = struct{}{}
		if d := i - j; d > a.Bandwidth {
			a.Bandwidth = d
		} else if -d > a.Bandwidth {
			a.Bandwidth = -d
		}
		if i == prevRow {
			d := uint64(j - prevCol)
			deltas++
			if d == 1 {
				eq1++
			}
			switch {
			case d < 1<<8:
				classCount[0]++
			case d < 1<<16:
				classCount[1]++
			case d < 1<<32:
				classCount[2]++
			default:
				classCount[3]++
			}
		}
		prevRow, prevCol = i, j
	}
	a.Unique = len(unique)
	if a.NNZ > 0 {
		a.TTU = float64(a.NNZ) / float64(a.Unique)
	}
	a.Diagonals = len(diags)
	if deltas > 0 {
		for i := range classCount {
			a.DeltaFrac[i] = float64(classCount[i]) / float64(deltas)
		}
		a.DeltaEq1 = float64(eq1) / float64(deltas)
	}
	a.Symmetric = isSymmetric(c)
	return a
}

func isSymmetric(c *core.COO) bool {
	if c.Rows() != c.Cols() {
		return false
	}
	t := c.Transpose()
	if t.Len() != c.Len() {
		return false
	}
	for k := 0; k < c.Len(); k++ {
		i1, j1, v1 := c.At(k)
		i2, j2, v2 := t.At(k)
		if i1 != i2 || j1 != j2 || !core.SameBits(v1, v2) {
			return false
		}
	}
	return true
}

// Recommendation is one format suggestion with its predicted size.
type Recommendation struct {
	Format string
	// Ratio is the predicted SizeBytes relative to baseline CSR.
	Ratio  float64
	Reason string
}

// Recommend returns format suggestions ordered by predicted size
// (smallest first). Predictions use closed-form estimates from the
// analysis; they are within a few percent of the real encoders on the
// generator suite (see tests).
func (a Analysis) Recommend() []Recommendation {
	if a.NNZ == 0 {
		return []Recommendation{{Format: "csr", Ratio: 1, Reason: "empty matrix"}}
	}
	base := float64(core.CSRBytes(a.Rows, a.NNZ, core.IdxSize, core.ValSize))
	var recs []Recommendation
	add := func(format string, bytes float64, reason string) {
		recs = append(recs, Recommendation{Format: format, Ratio: bytes / base, Reason: reason})
	}

	add("csr", base, "baseline")

	// CSR16: halve col_ind when columns fit 16 bits.
	if a.Cols <= 1<<16 {
		add("csr16", base-2*float64(a.NNZ), "column count fits 16-bit indices")
	}

	// CSR-DU: ctl ≈ per-delta width + ~4 bytes/row of headers+jump.
	duIdx := a.DeltaFrac[0]*1 + a.DeltaFrac[1]*2 + a.DeltaFrac[2]*4 + a.DeltaFrac[3]*8
	nonEmpty := float64(a.Rows - a.EmptyRows)
	ctl := duIdx*float64(a.NNZ) + 4*nonEmpty
	add("csr-du", ctl+8*float64(a.NNZ), fmt.Sprintf("%.0f%% of column deltas fit one byte", 100*a.DeltaFrac[0]))

	// CSR-VI: only when the paper's ttu criterion holds.
	if a.TTU > 5 {
		w := valIndexWidth(a.Unique)
		viBytes := float64(core.CSRBytes(a.Rows, a.NNZ, core.IdxSize, 0)) +
			float64(a.NNZ)*float64(w) + 8*float64(a.Unique)
		add("csr-vi", viBytes, fmt.Sprintf("ttu %.0f > 5: %d unique values need %d-byte indices", a.TTU, a.Unique, w))
		add("csr-du-vi", ctl+float64(a.NNZ)*float64(w)+8*float64(a.Unique),
			"both index and value compression apply")
	}

	// CDS: only when the diagonal count keeps fill sane.
	if fill := float64(a.Diagonals) * float64(a.Rows) / float64(a.NNZ); fill <= 4 {
		add("cds", float64(a.Diagonals)*float64(a.Rows)*8+float64(a.Diagonals)*4,
			fmt.Sprintf("%d diagonals cover the pattern (fill %.1f)", a.Diagonals, fill))
	}

	// ELLPACK: only for near-uniform rows.
	if fill := float64(a.MaxRowNNZ) * float64(a.Rows) / float64(a.NNZ); fill <= 1.5 {
		add("ell", float64(a.MaxRowNNZ)*float64(a.Rows)*12,
			fmt.Sprintf("uniform row lengths (fill %.2f)", fill))
	}

	// Symmetric storage halves off-diagonal data.
	if a.Symmetric {
		offDiag := float64(a.NNZ-minInt(a.Rows, a.NNZ)) / 2 // approximation: full diagonal
		add("sym-csr", offDiag*12+float64(a.Rows)*8+float64(a.Rows+1)*4,
			"matrix is symmetric: store one triangle")
	}

	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Ratio < recs[j].Ratio })
	return recs
}

func valIndexWidth(unique int) int {
	switch {
	case unique <= 1<<8:
		return 1
	case unique <= 1<<16:
		return 2
	default:
		return 4
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
