package srccheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"spmv/internal/srccheck/flow"
)

// goroleakRule flags goroutines whose blocking channel operation can
// outlive the function that spawned them. The shape it targets:
//
//	ch := make(chan T)        // unbuffered
//	go func() { ch <- v }()   // blocking send
//	if err := ...; err != nil {
//	    return err            // nobody will ever receive: goroutine leaks
//	}
//	<-ch
//
// The fix the server codifies is a buffer of one — the goroutine's
// send always completes and the result is garbage-collected if the
// spawner bailed out. The rule only fires when all three parts are
// visible intra-procedurally: the channel is made unbuffered in the
// spawning declaration, the spawned literal sends or receives on it
// unconditionally (not as one arm of a multi-way select), and some
// path from the go statement reaches the function exit without ever
// touching the channel again (no receive, no send, no close, no
// handing it to another function).
type goroleakRule struct{}

func (goroleakRule) Name() string { return "goroleak" }
func (goroleakRule) Doc() string {
	return "go-spawned blocking channel op on a local unbuffered channel the spawner can abandon; buffer the channel or consume on every path"
}

func (r goroleakRule) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	forEachFuncBody(pkg, func(fb funcBody) {
		r.checkBody(pkg, fb, report)
	})
}

func (r goroleakRule) checkBody(pkg *Package, fb funcBody, report func(pos token.Pos, format string, args ...any)) {
	var gos []*ast.GoStmt
	walkShallow(fb.body, func(n ast.Node) {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
	})
	if len(gos) == 0 {
		return
	}
	var g *flow.Graph
	for _, stmt := range gos {
		lit, ok := stmt.Call.Fun.(*ast.FuncLit)
		if !ok {
			continue
		}
		for _, ch := range r.blockingChans(pkg, lit) {
			capacity, capKnown := chanProvenance(pkg, fb.decl, ch)
			if !capKnown || capacity > 0 {
				continue // buffered, or provenance unknown: assume intentional
			}
			obj := identObj(pkg, ch)
			if obj == nil {
				continue
			}
			if g == nil {
				g = flow.New(fb.body)
			}
			site, ok := g.FindNode(stmt)
			if !ok {
				continue
			}
			touches := func(n ast.Node) bool { return touchesChan(pkg, n, obj, stmt) }
			if g.CanReachExitWithout(site, touches) {
				report(stmt.Pos(),
					"goroutine blocks on unbuffered channel %s but %s can return without consuming it (leak); use make(chan ..., 1) or drain on every path",
					exprKey(ch), fb.name)
				break // one report per go statement
			}
		}
	}
}

// blockingChans collects channels the literal's body sends to or
// receives from unconditionally: plain send/receive statements and
// the single comm of a one-clause select without default. Ops inside
// nested literals belong to yet another goroutine and are skipped; ops
// inside a multi-way select or one with a default can be bypassed and
// do not pin the goroutine.
func (r goroleakRule) blockingChans(pkg *Package, lit *ast.FuncLit) []ast.Expr {
	var chans []ast.Expr
	var visit func(stmts []ast.Stmt)
	var visitStmt func(s ast.Stmt)
	visitStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.SendStmt:
			chans = append(chans, s.Chan)
		case *ast.ExprStmt:
			if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				chans = append(chans, u.X)
			}
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					chans = append(chans, u.X)
				}
			}
		case *ast.SelectStmt:
			if len(s.Body.List) == 1 {
				if comm, ok := s.Body.List[0].(*ast.CommClause); ok && comm.Comm != nil {
					visitStmt(comm.Comm)
				}
			}
		}
	}
	visit = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			visitStmt(s)
			switch s := s.(type) {
			case *ast.BlockStmt:
				visit(s.List)
			case *ast.IfStmt:
				visit(s.Body.List)
				if b, ok := s.Else.(*ast.BlockStmt); ok {
					visit(b.List)
				}
			case *ast.ForStmt:
				visit(s.Body.List)
			case *ast.RangeStmt:
				if id, ok := s.X.(*ast.Ident); ok {
					if tv, ok := pkg.Info.Types[id]; ok {
						if isChanType(tv.Type) {
							chans = append(chans, s.X)
						}
					}
				}
				visit(s.Body.List)
			}
		}
	}
	visit(lit.Body.List)
	return chans
}

// touchesChan reports whether a spawner-side node references the
// channel object again: a receive, send, close, assignment, return or
// a call/goroutine that takes the channel along. Any mention counts —
// the rule is deliberately easy to satisfy, because its job is the
// fire-and-forget case where the channel is never looked at again.
func touchesChan(pkg *Package, n ast.Node, obj types.Object, spawn *ast.GoStmt) bool {
	if n == spawn {
		return false
	}
	switch n := n.(type) {
	case *ast.Ident:
		if identUseOrDef(pkg, n) == obj {
			return true
		}
	case *ast.GoStmt, *ast.DeferStmt:
		// A later goroutine or deferred closure that captures the channel
		// is a consumer; nodeSatisfies skips literal bodies, so inspect
		// the whole subtree here.
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && !found {
				if identUseOrDef(pkg, id) == obj {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}

// identObj resolves an identifier expression to its object.
func identObj(pkg *Package, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return identUseOrDef(pkg, id)
}

func identUseOrDef(pkg *Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}
