package srccheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotPathRule polices the hot-kernel set (IsHotFunc: SpMV entry
// points, decode loops, dense vector kernels). The paper's premise is
// that SpMV is bandwidth-bound and the compressed kernels spend their
// saved bandwidth on decode instructions, so the loops cannot afford
// hidden work: no fmt/log formatting, no print builtins, and no
// interface boxing — a concrete value passed as an interface argument
// heap-allocates on every call. Arguments of a panic call are exempt:
// that path executes at most once, on corrupt data.
type hotPathRule struct{}

func (hotPathRule) Name() string { return "hotpath" }
func (hotPathRule) Doc() string {
	return "no fmt/log calls or interface boxing inside hot-kernel functions (SpMV, Mul, decode loops)"
}

// hotPathFormatPkgs are packages whose mere presence in a kernel means
// formatting or I/O on the hot path.
var hotPathFormatPkgs = map[string]bool{
	"fmt": true, "log": true, "log/slog": true, "os": true,
}

func (r hotPathRule) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isLibraryPkg(pkg) {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !IsHotFunc(fd.Name.Name) {
				continue
			}
			r.checkBody(pkg, fd, report)
		}
	}
}

func (r hotPathRule) checkBody(pkg *Package, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				switch b.Name() {
				case "panic":
					// Cold trap path: skip the whole argument subtree, so
					// panic(core.Corruptf(...)) stays legal in kernels.
					return false
				case "print", "println":
					report(call.Pos(), "%s in hot kernel %s", b.Name(), fd.Name.Name)
					return false
				}
				return true // other builtins (len, cap, append, ...) are fine
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if x, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := pkg.Info.Uses[x].(*types.PkgName); ok && hotPathFormatPkgs[pn.Imported().Path()] {
					report(call.Pos(), "call to %s.%s in hot kernel %s", pn.Imported().Path(), sel.Sel.Name, fd.Name.Name)
					return true
				}
			}
		}
		r.checkBoxing(pkg, fd, call, report)
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkBoxing reports concrete values passed to interface-typed
// parameters (including variadic interface parameters and conversions
// to interface types), each of which allocates.
func (r hotPathRule) checkBoxing(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, report func(pos token.Pos, format string, args ...any)) {
	funTV, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	if funTV.IsType() {
		// Conversion T(x): boxing when T is an interface and x is not.
		if types.IsInterface(funTV.Type) && len(call.Args) == 1 && isConcrete(pkg.Info.Types[call.Args[0]].Type) {
			report(call.Pos(), "conversion boxes %s into %s in hot kernel %s",
				types.TypeString(pkg.Info.Types[call.Args[0]].Type, types.RelativeTo(pkg.Types)),
				types.TypeString(funTV.Type, types.RelativeTo(pkg.Types)), fd.Name.Name)
		}
		return
	}
	sig, ok := funTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(paramType) {
			continue
		}
		argType := pkg.Info.Types[arg].Type
		if isConcrete(argType) {
			report(arg.Pos(), "argument boxes %s into %s in hot kernel %s",
				types.TypeString(argType, types.RelativeTo(pkg.Types)),
				types.TypeString(paramType, types.RelativeTo(pkg.Types)), fd.Name.Name)
		}
	}
}

// isConcrete reports whether t is a concrete (non-interface, non-nil)
// type whose assignment to an interface boxes.
func isConcrete(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(t)
}
