package srccheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Issue is one rule finding, located and attributed to its enclosing
// function so the allowlist can target it.
type Issue struct {
	Rule string         `json:"rule"`
	Pos  token.Position `json:"-"`
	File string         `json:"file"` // module-relative path
	Line int            `json:"line"`
	Col  int            `json:"col"`
	Func string         `json:"func,omitempty"` // enclosing function name ("" at package scope)
	Msg  string         `json:"msg"`
}

func (i Issue) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", i.File, i.Line, i.Col, i.Rule, i.Msg)
}

// Rule is one project-specific check. Check is called once per package
// and reports findings through report.
type Rule interface {
	Name() string
	// Doc is a one-line description shown by spmvlint's usage text.
	Doc() string
	Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any))
}

// DefaultRules returns the full rule suite in stable order.
func DefaultRules() []Rule {
	return []Rule{
		panicRule{},
		verifierRule{},
		droppedErrRule{},
		floatEqRule{},
		hotPathRule{},
		lockbalanceRule{},
		goroleakRule{},
		ctxflowRule{},
		wgbalanceRule{},
		deferloopRule{},
	}
}

// Run executes the rules over every package of the module, resolves
// positions and enclosing functions, and filters through the allowlist.
// Issues come back sorted by file, line and column.
func Run(m *Module, rules []Rule, allow *Allowlist) []Issue {
	var issues []Issue
	for _, pkg := range m.Pkgs {
		funcs := newFuncIndex(m.Fset, pkg)
		for _, rule := range rules {
			rule.Check(m, pkg, func(pos token.Pos, format string, args ...any) {
				p := m.Fset.Position(pos)
				rel, err := filepath.Rel(m.Root, p.Filename)
				if err != nil {
					rel = p.Filename
				}
				rel = filepath.ToSlash(rel)
				fn := funcs.at(pos)
				if allow != nil && allow.Match(rule.Name(), rel, fn) {
					return
				}
				issues = append(issues, Issue{
					Rule: rule.Name(),
					Pos:  p,
					File: rel,
					Line: p.Line,
					Col:  p.Column,
					Func: fn,
					Msg:  fmt.Sprintf(format, args...),
				})
			})
		}
	}
	sort.Slice(issues, func(i, j int) bool {
		a, b := issues[i], issues[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return issues
}

// funcIndex maps positions to their enclosing top-level function
// declaration. Function literals attribute to the declaration that
// contains them.
type funcIndex struct {
	spans []funcSpan
}

type funcSpan struct {
	start, end token.Pos
	name       string
}

func newFuncIndex(fset *token.FileSet, pkg *Package) *funcIndex {
	idx := &funcIndex{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			idx.spans = append(idx.spans, funcSpan{start: fd.Pos(), end: fd.End(), name: fd.Name.Name})
		}
	}
	return idx
}

func (idx *funcIndex) at(pos token.Pos) string {
	for _, s := range idx.spans {
		if s.start <= pos && pos < s.end {
			return s.name
		}
	}
	return ""
}

// IsHotFunc reports whether a function name belongs to the hot-kernel
// set: the SpMV entry points, the row/unit decode loops and the dense
// vector kernels the solvers hang off. The BCE/escape gate and the
// hot-path purity rule share this definition. Qualified names
// ("(*Matrix).SpMV") match on their last segment.
func IsHotFunc(name string) bool {
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	switch name {
	case "SpMV", "SpMVAdd", "SpMVT", "SpMM", "SpMVBatch", "SpMVPartial",
		"Mul", "MulAdd", "MulTrans",
		"Dot", "Axpy", "DecodeAt", "dotRange",
		"runChunk", "runColJob", "runBlockJob", "runNNZChunk", "runSymJob":
		return true
	}
	for _, prefix := range []string{"spmv", "decode", "addRange"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// IsRequestPathFunc reports whether a function name sits on the
// server's per-request path: the HTTP handlers, the coalescer's
// enqueue/take/execute cycle, the registry read path, the executor's
// dispatch machinery — plus everything IsHotFunc already covers. The
// allocation gate holds these to their baselined heap-allocation
// counts: a new escape in a handler shows up as a per-request GC tax
// long before it shows up in a profile. Qualified names
// ("(*coalescer).enqueue") match on their last segment.
func IsRequestPathFunc(name string) bool {
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	if IsHotFunc(name) {
		return true
	}
	switch name {
	case "ServeHTTP",
		"enqueue", "take", "execute", "loop", "depth",
		"get", "recordWidth",
		"requestDeadline", "clientID", "acquireClient", "releaseClient",
		"statusFor", "httpError", "writeVector",
		"Run", "RunCtx", "RunBatch", "RunBatchCtx",
		"dispatch", "worker", "drain":
		return true
	}
	return strings.HasPrefix(name, "handle")
}

// isLibraryPkg reports whether a package is library code: the module
// root package or anything under internal/.
func isLibraryPkg(pkg *Package) bool {
	return pkg.RelPath == "" || pkg.RelPath == "internal" ||
		strings.HasPrefix(pkg.RelPath, "internal/")
}

// isCmdPkg reports whether a package is a command.
func isCmdPkg(pkg *Package) bool {
	return pkg.RelPath == "cmd" || strings.HasPrefix(pkg.RelPath, "cmd/")
}
