package srccheck

import (
	"bytes"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
)

// droppedErrRule flags discarded errors in internal/ and cmd/: a call
// whose error result vanishes in an expression statement (including
// defer and go), or an error explicitly assigned to the blank
// identifier. PR 1 threaded typed errors through every decode and I/O
// path; this rule keeps them from silently leaking back out of the
// chain.
type droppedErrRule struct{}

func (droppedErrRule) Name() string { return "droppederr" }
func (droppedErrRule) Doc() string {
	return "no dropped error returns (bare calls or assignment to _) in internal/ and cmd/"
}

func (r droppedErrRule) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isLibraryPkg(pkg) && !isCmdPkg(pkg) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				r.checkCall(m, pkg, st.X, "", report)
			case *ast.DeferStmt:
				r.checkCall(m, pkg, st.Call, "defer ", report)
			case *ast.GoStmt:
				r.checkCall(m, pkg, st.Call, "go ", report)
			case *ast.AssignStmt:
				r.checkAssign(m, pkg, st, report)
			}
			return true
		})
	}
}

// checkCall reports a call statement that returns an error among its
// results.
func (droppedErrRule) checkCall(m *Module, pkg *Package, expr ast.Expr, prefix string, report func(pos token.Pos, format string, args ...any)) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return
	}
	if errorResultIndex(pkg.Info, call) < 0 {
		return
	}
	if isExemptPrint(pkg, call) || isExemptSinkMethod(pkg, call) {
		return
	}
	report(call.Pos(), "%serror result of %s dropped; handle it or propagate it", prefix, exprString(m.Fset, call.Fun))
}

// isExemptPrint exempts fmt's print family when the destination cannot
// meaningfully fail: Print/Printf/Println (console), and
// Fprint/Fprintf/Fprintln to os.Stdout, os.Stderr, or an in-memory
// sink (*bytes.Buffer, *strings.Builder). Fprint* to any other writer
// — a file, a network connection, an io.Writer parameter — stays
// flagged: those errors are real.
func isExemptPrint(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[x].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return false
	}
	switch sel.Sel.Name {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		return len(call.Args) > 0 && isExemptWriter(pkg, call.Args[0])
	}
	return false
}

// isExemptSinkMethod exempts the write methods of the in-memory sinks
// themselves (buf.WriteByte, sb.WriteString, ...), which are
// documented to always return a nil error.
func isExemptSinkMethod(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return false
	}
	return isMemSink(pkg, sel.X)
}

// isExemptWriter reports whether e is os.Stdout/os.Stderr or an
// in-memory sink.
func isExemptWriter(pkg *Package, e ast.Expr) bool {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "os" {
				return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
			}
		}
	}
	return isMemSink(pkg, e)
}

// isMemSink reports whether e has static type bytes.Buffer or
// strings.Builder (or a pointer to one), whose writes never return a
// non-nil error.
func isMemSink(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.Types[e].Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "bytes.Buffer" || full == "strings.Builder"
}

// checkAssign reports error values assigned to the blank identifier.
func (droppedErrRule) checkAssign(m *Module, pkg *Package, st *ast.AssignStmt, report func(pos token.Pos, format string, args ...any)) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value call: x, _ := f(). Find blank slots holding errors.
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pkg.Info.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(st.Lhs) {
			return
		}
		for i, lhs := range st.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				report(lhs.Pos(), "error result of %s assigned to _; handle it or propagate it", exprString(m.Fset, call.Fun))
			}
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) || !isBlank(lhs) {
			continue
		}
		if isErrorType(pkg.Info.Types[st.Rhs[i]].Type) {
			report(lhs.Pos(), "error value %s assigned to _; handle it or propagate it", exprString(m.Fset, st.Rhs[i]))
		}
	}
}

// errorResultIndex returns the index of the first error among the
// call's results, or -1. Type conversions and calls with no error
// results return -1.
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || !tv.IsValue() {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(t) {
			return 0
		}
	}
	return -1
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// exprString renders a short source form of an expression for messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := format.Node(&buf, fset, e); err != nil {
		return "call"
	}
	return buf.String()
}
