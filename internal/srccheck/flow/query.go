package flow

import "go/ast"

// Reachable returns the set of blocks reachable from Entry. Statements
// in unreachable blocks (code after return/break, bodies of dead
// branches the builder still visits) are excluded from path queries.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	return seen
}

// Site locates one AST node inside the graph: the block holding it and
// its index in the block's node list.
type Site struct {
	Block *Block
	Index int
}

// FindNode locates n (by identity) in the graph, or returns a zero
// Site with ok=false. Nodes nested inside a block-level statement
// (e.g. a call inside an assignment) are found through their
// containing block node.
func (g *Graph) FindNode(n ast.Node) (Site, bool) {
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			if node == n {
				return Site{Block: b, Index: i}, true
			}
			found := false
			ast.Inspect(node, func(x ast.Node) bool {
				if x == n {
					found = true
				}
				return !found
			})
			if found {
				return Site{Block: b, Index: i}, true
			}
		}
	}
	return Site{}, false
}

// CanReachExitWithout reports whether some path from the given site
// (starting after the node at from.Index) reaches the function exit
// without first passing a node that satisfies cut. Nodes satisfying
// cut end the search along their path — they "satisfy" it — so the
// query reads: can the function return while the obligation expressed
// by cut is still outstanding?
//
// Terminating blocks (panic paths, infinite loops with no break) never
// reach Exit and therefore never count against the obligation. cut is
// evaluated on every block-level node and, via ast.Inspect, on its
// descendants, so a cut predicate matching a call expression works
// whether the call is a statement, an assignment operand or a deferred
// call.
func (g *Graph) CanReachExitWithout(from Site, cut func(ast.Node) bool) bool {
	// state: 0 unvisited, 1 visiting/visited.
	visited := map[*Block]bool{}
	var walk func(b *Block, startIdx int) bool
	walk = func(b *Block, startIdx int) bool {
		for i := startIdx; i < len(b.Nodes); i++ {
			if nodeSatisfies(b.Nodes[i], cut) {
				return false // obligation met on this path
			}
		}
		if b == g.Exit {
			return true
		}
		for _, s := range b.Succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	return walk(from.Block, from.Index+1)
}

// MustReach reports whether every path from the site to the function
// exit passes a node satisfying want. It is the negation of
// CanReachExitWithout; paths that never return (panic, endless loop)
// are vacuously satisfied.
func (g *Graph) MustReach(from Site, want func(ast.Node) bool) bool {
	return !g.CanReachExitWithout(from, want)
}

// nodeSatisfies applies pred to n and its descendants — except the
// bodies of nested function literals, which execute (if ever) in a
// different control-flow context: a receive inside a spawned goroutine
// is not a receive on the spawner's path. Predicates that do want to
// look inside a literal (lockbalance's deferred-closure unlock) get
// the enclosing DeferStmt/GoStmt node first and can inspect it
// themselves.
func nodeSatisfies(n ast.Node, pred func(ast.Node) bool) bool {
	if n == nil {
		return false
	}
	ok := false
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil || ok {
			return false
		}
		if pred(x) {
			ok = true
			return false
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		return true
	})
	return ok
}
