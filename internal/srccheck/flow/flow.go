// Package flow is spmvlint's intra-procedural control-flow layer: it
// builds a statement-level control-flow graph for one function body
// out of the already-parsed AST — branches, loops, switches, selects,
// labeled break/continue, goto and defer are all modeled — and offers
// the reachability queries the concurrency rules are written against.
//
// The engine is deliberately small and stdlib-only, mirroring the
// loader in the parent package: no x/tools, no SSA. Rules do not need
// value numbering — they ask path questions ("can the function return
// without this lock being released?", "does every path from this go
// statement pass a receive?"), and those reduce to reachability over a
// CFG where the nodes satisfying a predicate cut the search.
//
// Two modeling choices matter to the rules:
//
//   - Terminating calls (panic, os.Exit, log.Fatal*, runtime.Goexit)
//     end their block with no successor instead of an edge to Exit, so
//     a panic path never counts as "reaching the function exit". A
//     lock held at a panic is the deferred-unlock pattern's problem,
//     not lockbalance's.
//   - defer statements are ordinary nodes in their block. A rule that
//     treats a deferred call as satisfying its predicate (the usual
//     reading: the deferred call runs at every exit downstream of the
//     defer) gets defer-aware path semantics for free, because the
//     defer node cuts the search exactly on the paths that executed it.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of statements. Nodes holds the
// statements (and the control expressions of the constructs that ended
// the block: if/for conditions, switch tags, range operands) in
// execution order. A block with no successors that is not the graph's
// Exit ends in a terminating call or falls off a dead branch.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// LoopDepth counts the for/range statements enclosing the block; a
	// defer in a block with LoopDepth > 0 runs once per iteration's
	// registration but executes only at function exit.
	LoopDepth int
}

// Graph is the CFG of one function body. Entry starts the body; Exit
// is the single synthetic exit every return (and the fall-off end)
// feeds into.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// New builds the CFG for a function body. A nil body (declaration
// without body) yields a graph whose entry connects straight to exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: map[string]*labelBlocks{},
	}
	b.g.Entry = b.newBlock(0)
	b.g.Exit = b.newBlock(0)
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.g.Exit)
	return b.g
}

// labelBlocks tracks the targets a label can name: the labeled
// statement itself (for goto) and, when the label names a loop or
// switch, its break/continue targets.
type labelBlocks struct {
	target  *Block // goto target (start of the labeled statement)
	breakTo *Block
	contTo  *Block
}

type builder struct {
	g   *Graph
	cur *Block

	// break/continue target stacks for the innermost enclosing
	// breakable (for/range/switch/select) and continuable (for/range)
	// statements.
	breaks    []*Block
	continues []*Block

	labels    map[string]*labelBlocks
	loopDepth int
	// pendingLabel is the label naming the next loop/switch statement,
	// so "continue L"/"break L" resolve to the right construct.
	pendingLabel string
}

func (b *builder) newBlock(depth int) *Block {
	blk := &Block{Index: len(b.g.Blocks), LoopDepth: depth}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds an edge cur→to (if cur can still fall through) and leaves
// cur untouched.
func (b *builder) jump(to *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, to)
	}
}

// startBlock makes blk the current block.
func (b *builder) startBlock(blk *Block) { b.cur = blk }

// terminate ends the current block with no successor (panic/os.Exit
// path) and continues in a fresh unreachable block.
func (b *builder) terminate() {
	b.cur = b.newBlock(b.loopDepth)
}

func (b *builder) add(n ast.Node) {
	if n != nil && b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		thenB := b.newBlock(b.loopDepth)
		after := b.newBlock(b.loopDepth)
		b.jump(thenB)
		if s.Else != nil {
			elseB := b.newBlock(b.loopDepth)
			b.jump(elseB)
			b.startBlock(thenB)
			b.stmt(s.Body)
			b.jump(after)
			b.startBlock(elseB)
			b.stmt(s.Else)
			b.jump(after)
		} else {
			b.jump(after)
			b.startBlock(thenB)
			b.stmt(s.Body)
			b.jump(after)
		}
		b.startBlock(after)

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock(b.loopDepth)
		body := b.newBlock(b.loopDepth + 1)
		post := b.newBlock(b.loopDepth + 1)
		after := b.newBlock(b.loopDepth)
		b.jump(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.jump(body)
			b.jump(after)
		} else {
			b.jump(body) // for {}: after is reachable only via break
		}
		b.pushLoop(after, post, label, head)
		b.startBlock(body)
		b.loopDepth++
		b.stmt(s.Body)
		b.loopDepth--
		b.jump(post)
		b.startBlock(post)
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.jump(head)
		b.popLoop()
		b.startBlock(after)

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock(b.loopDepth)
		body := b.newBlock(b.loopDepth + 1)
		after := b.newBlock(b.loopDepth)
		b.jump(head)
		b.startBlock(head)
		b.add(s) // the range step itself (receives for channel ranges)
		b.jump(body)
		b.jump(after)
		b.pushLoop(after, head, label, head)
		b.startBlock(body)
		b.loopDepth++
		b.stmt(s.Body)
		b.loopDepth--
		b.jump(head)
		b.popLoop()
		b.startBlock(after)

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body, label, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body, label, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock(b.loopDepth)
		b.pushBreak(after, label)
		entry := b.cur
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			caseB := b.newBlock(b.loopDepth)
			b.startBlock(entry)
			b.jump(caseB)
			b.startBlock(caseB)
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(after)
		}
		if len(s.Body.List) == 0 {
			// select {} blocks forever: no successor.
			b.startBlock(entry)
			b.terminate()
		}
		b.popBreak()
		b.startBlock(after)

	case *ast.LabeledStmt:
		// A forward goto may already have created the target block as a
		// placeholder; the labeled statement then flows through it.
		lb := b.labelInfo(s.Label.Name)
		target := lb.target
		if target == nil {
			target = b.newBlock(b.loopDepth)
			lb.target = target
		}
		b.jump(target)
		b.startBlock(target)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if to := b.breakTarget(s.Label); to != nil {
				b.jump(to)
			}
			b.terminate()
		case token.CONTINUE:
			if to := b.continueTarget(s.Label); to != nil {
				b.jump(to)
			}
			b.terminate()
		case token.GOTO:
			lb := b.labelInfo(s.Label.Name)
			if lb.target == nil {
				// Forward goto: create the target now; the LabeledStmt
				// reuses the same block when it is reached.
				lb.target = b.newBlock(b.loopDepth)
			}
			b.jump(lb.target)
			b.terminate()
		case token.FALLTHROUGH:
			// Handled by caseClauses via the fallthrough edge; nothing
			// to do here (the clause linker inspects the last statement).
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
		b.terminate()

	case *ast.DeferStmt, *ast.GoStmt, *ast.SendStmt, *ast.AssignStmt,
		*ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminatingCall(s.X) {
			b.terminate()
		}

	default:
		b.add(s)
	}
}

// caseClauses links a switch body: entry fans out to every case (and
// to after when there is no default), cases flow to after, and a
// trailing fallthrough flows into the next case's body instead.
func (b *builder) caseClauses(body *ast.BlockStmt, label string, _ *Block) {
	after := b.newBlock(b.loopDepth)
	entry := b.cur
	b.pushBreak(after, label)
	hasDefault := false
	// Build each case body block first so fallthrough can link forward.
	caseBodies := make([]*Block, len(body.List))
	for i := range body.List {
		caseBodies[i] = b.newBlock(b.loopDepth)
	}
	for i, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.startBlock(entry)
		for _, e := range cc.List {
			b.add(e)
		}
		b.jump(caseBodies[i])
		b.startBlock(caseBodies[i])
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(body.List) {
			b.jump(caseBodies[i+1])
			b.terminate()
		} else {
			b.jump(after)
		}
	}
	if !hasDefault {
		b.startBlock(entry)
		b.jump(after)
	}
	b.popBreak()
	b.startBlock(after)
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// ---- break/continue/label bookkeeping ----

func (b *builder) labelInfo(name string) *labelBlocks {
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{}
		b.labels[name] = lb
	}
	return lb
}

// takeLabel consumes the pending label (set by the enclosing
// LabeledStmt) for the statement being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) pushLoop(breakTo, contTo *Block, label string, _ *Block) {
	b.breaks = append(b.breaks, breakTo)
	b.continues = append(b.continues, contTo)
	if label != "" {
		lb := b.labelInfo(label)
		lb.breakTo = breakTo
		lb.contTo = contTo
	}
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreak(to *Block, label string) {
	b.breaks = append(b.breaks, to)
	b.continues = append(b.continues, nil)
	if label != "" {
		b.labelInfo(label).breakTo = to
	}
}

func (b *builder) popBreak() { b.popLoop() }

func (b *builder) breakTarget(label *ast.Ident) *Block {
	if label != nil {
		return b.labelInfo(label.Name).breakTo
	}
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if b.breaks[i] != nil {
			return b.breaks[i]
		}
	}
	return nil
}

func (b *builder) continueTarget(label *ast.Ident) *Block {
	if label != nil {
		return b.labelInfo(label.Name).contTo
	}
	for i := len(b.continues) - 1; i >= 0; i-- {
		if b.continues[i] != nil {
			return b.continues[i]
		}
	}
	return nil
}

// isTerminatingCall reports whether an expression statement is a call
// that never returns: the panic builtin, os.Exit, runtime.Goexit and
// the log.Fatal family. Matching is syntactic — spmvlint's loader has
// type info, but a shadowed "panic" or a local "os" are vanishingly
// rare and the cost of a miss is one conservative extra CFG edge.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Goexit", "Fatal", "Fatalf", "Fatalln":
			return true
		}
	}
	return false
}
