package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses one function body and builds its CFG.
func buildFunc(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// callPred matches a call to a plain identifier with the given name.
func callPred(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

// findCall locates the call site of a named function in the graph.
func findCall(t *testing.T, g *Graph, name string) Site {
	t.Helper()
	pred := callPred(name)
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if nodeSatisfies(n, pred) {
				return Site{Block: b, Index: i}
			}
		}
	}
	t.Fatalf("no call to %s in graph", name)
	return Site{}
}

// mustAfter asserts whether every path from the call to `from` passes
// a call to `want` before exit.
func mustAfter(t *testing.T, body, from, want string, expect bool) {
	t.Helper()
	g := buildFunc(t, body)
	site := findCall(t, g, from)
	if got := g.MustReach(site, callPred(want)); got != expect {
		t.Errorf("MustReach(%s → %s) = %v, want %v in:\n%s", from, want, got, expect, body)
	}
}

func TestIfShapes(t *testing.T) {
	// Unlock on both branches: balanced.
	mustAfter(t, `
		lock()
		if cond() {
			unlock()
			return
		}
		unlock()
	`, "lock", "unlock", true)

	// Early return without unlock: a leaking path exists.
	mustAfter(t, `
		lock()
		if cond() {
			return
		}
		unlock()
	`, "lock", "unlock", false)

	// if/else where only one arm unlocks.
	mustAfter(t, `
		lock()
		if cond() {
			unlock()
		} else {
			other()
		}
	`, "lock", "unlock", false)
}

func TestForShapes(t *testing.T) {
	// The obligation is met after the loop regardless of iteration count.
	mustAfter(t, `
		lock()
		for i := 0; i < n; i++ {
			work()
		}
		unlock()
	`, "lock", "unlock", true)

	// break skips the in-loop unlock; the loop exit path lacks it.
	mustAfter(t, `
		lock()
		for {
			if cond() {
				break
			}
			unlock()
			return
		}
	`, "lock", "unlock", false)

	// continue loops back; unlock after the loop still dominates exit.
	mustAfter(t, `
		lock()
		for i := 0; i < n; i++ {
			if cond() {
				continue
			}
			work()
		}
		unlock()
	`, "lock", "unlock", true)

	// An endless loop with no break never reaches exit: vacuously met.
	mustAfter(t, `
		lock()
		for {
			work()
		}
	`, "lock", "unlock", true)

	// range loop.
	mustAfter(t, `
		lock()
		for range xs {
			work()
		}
		unlock()
	`, "lock", "unlock", true)
}

func TestSwitchShapes(t *testing.T) {
	// default covers every path.
	mustAfter(t, `
		lock()
		switch tag() {
		case 1:
			unlock()
		default:
			unlock()
		}
	`, "lock", "unlock", true)

	// No default: the no-match path bypasses both cases.
	mustAfter(t, `
		lock()
		switch tag() {
		case 1:
			unlock()
		case 2:
			unlock()
		}
	`, "lock", "unlock", false)

	// fallthrough reaches the next case's unlock.
	mustAfter(t, `
		lock()
		switch tag() {
		case 1:
			work()
			fallthrough
		case 2:
			unlock()
		default:
			unlock()
		}
	`, "lock", "unlock", true)

	// Terminating panic in one case is vacuously satisfied.
	mustAfter(t, `
		lock()
		switch tag() {
		case 1:
			panic("boom")
		default:
			unlock()
		}
	`, "lock", "unlock", true)
}

func TestSelectShapes(t *testing.T) {
	// Both comm cases unlock.
	mustAfter(t, `
		lock()
		select {
		case <-a:
			unlock()
		case <-b:
			unlock()
		}
	`, "lock", "unlock", true)

	// One case returns without unlocking.
	mustAfter(t, `
		lock()
		select {
		case <-a:
			unlock()
		case <-b:
			return
		}
	`, "lock", "unlock", false)
}

func TestGotoShapes(t *testing.T) {
	// Forward goto jumps over the unlock.
	mustAfter(t, `
		lock()
		if cond() {
			goto out
		}
		unlock()
	out:
		work()
	`, "lock", "unlock", false)

	// Forward goto into the cleanup label: every path unlocks.
	mustAfter(t, `
		lock()
		if cond() {
			goto out
		}
		work()
	out:
		unlock()
	`, "lock", "unlock", true)

	// Backward goto forms a loop; the path out still unlocks.
	mustAfter(t, `
		lock()
	again:
		if cond() {
			goto again
		}
		unlock()
	`, "lock", "unlock", true)
}

func TestDeferNodes(t *testing.T) {
	// A defer is an ordinary node: a cut predicate matching the deferred
	// call sees it on every path downstream of the defer statement.
	mustAfter(t, `
		lock()
		defer unlock()
		if cond() {
			return
		}
		work()
	`, "lock", "unlock", true)

	// The defer only covers paths that executed it.
	mustAfter(t, `
		lock()
		if cond() {
			return
		}
		defer unlock()
	`, "lock", "unlock", false)
}

func TestLoopDepth(t *testing.T) {
	g := buildFunc(t, `
		defer top()
		for i := 0; i < n; i++ {
			defer inner()
			for range xs {
				defer innermost()
			}
		}
	`)
	depths := map[string]int{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			d, ok := n.(*ast.DeferStmt)
			if !ok {
				continue
			}
			depths[d.Call.Fun.(*ast.Ident).Name] = b.LoopDepth
		}
	}
	want := map[string]int{"top": 0, "inner": 1, "innermost": 2}
	for name, d := range want {
		if depths[name] != d {
			t.Errorf("defer %s at loop depth %d, want %d", name, depths[name], d)
		}
	}
}

func TestTerminatingCalls(t *testing.T) {
	// os.Exit ends the path: the missing unlock is vacuously satisfied.
	mustAfter(t, `
		lock()
		if cond() {
			os.Exit(1)
		}
		unlock()
	`, "lock", "unlock", true)

	// log.Fatalf likewise.
	mustAfter(t, `
		lock()
		if cond() {
			log.Fatalf("x")
		}
		unlock()
	`, "lock", "unlock", true)
}

func TestReachable(t *testing.T) {
	g := buildFunc(t, `
		work()
		return
		dead()
	`)
	reach := g.Reachable()
	deadSite := findCall(t, g, "dead")
	if reach[deadSite.Block] {
		t.Errorf("statements after return counted as reachable")
	}
	workSite := findCall(t, g, "work")
	if !reach[workSite.Block] {
		t.Errorf("entry statements not reachable")
	}
}

func TestFindNodeNested(t *testing.T) {
	// A node nested in an assignment resolves to the containing block
	// statement's site.
	g := buildFunc(t, `
		x := helper()
		use(x)
	`)
	site := findCall(t, g, "helper")
	if site.Block == nil {
		t.Fatalf("nested call not located")
	}
	if !g.MustReach(site, callPred("use")) {
		t.Errorf("use() should dominate exit from the assignment site")
	}
}

func TestPredicateDoesNotEnterFuncLit(t *testing.T) {
	// The unlock inside the spawned goroutine must not satisfy the
	// spawner's obligation.
	mustAfter(t, `
		lock()
		go func() {
			unlock()
		}()
	`, "lock", "unlock", false)
}
