package compile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Baseline files live one per gated package, named by the package's
// module-relative dir with slashes flattened ("internal/csr" →
// "internal_csr.txt"). Each line is
//
//	count<TAB>file<TAB>func<TAB>category
//
// sorted, with #-comment headers. Line numbers are deliberately
// absent: the identity of a diagnostic is (file, function, category),
// so reformatting a file does not churn the baseline.

// BaselineFile returns the baseline filename for a package dir.
func BaselineFile(dir, pkg string) string {
	return filepath.Join(dir, strings.ReplaceAll(pkg, "/", "_")+".txt")
}

// LoadBaseline reads a package baseline; a missing file is an empty
// baseline (useful for brand-new packages, and what makes a first
// -update-baseline run bootstrap the gate).
func LoadBaseline(dir, pkg string) (map[string]int, error) {
	data, err := os.ReadFile(BaselineFile(dir, pkg))
	if os.IsNotExist(err) {
		return map[string]int{}, nil
	}
	if err != nil {
		return nil, err
	}
	base := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: want \"count\\tfile\\tfunc\\tcategory\", got %q", BaselineFile(dir, pkg), i+1, line)
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%s:%d: bad count %q", BaselineFile(dir, pkg), i+1, fields[0])
		}
		key := fields[1] + "|" + fields[2] + "|" + fields[3]
		base[key] += n
	}
	return base, nil
}

// WriteBaseline writes the baseline for a package from its current
// diagnostics, overwriting any previous file.
func WriteBaseline(dir, pkg string, diags []Diag) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	counts := Counts(diags)
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# spmvlint compile-gate baseline for %s\n", pkg)
	fmt.Fprintf(&buf, "# count\tfile\tfunc\tcategory — regenerate with: go run ./cmd/spmvlint -update-baseline\n")
	for _, k := range keys {
		parts := strings.SplitN(k, "|", 3)
		fmt.Fprintf(&buf, "%d\t%s\t%s\t%s\n", counts[k], parts[0], parts[1], parts[2])
	}
	return os.WriteFile(BaselineFile(dir, pkg), buf.Bytes(), 0o644)
}
